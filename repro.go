// Package repro is a Go reproduction of Jackson Y. K. Chan's 1979 thesis
// "Dimensioning of Message-Switched Computer-Communication Networks with
// End-to-End Window Flow Control" (University of Ottawa / SIGCOMM 1979):
// the WINDIM algorithm and every substrate it rests on.
//
// This package is the public facade; it re-exports the library's main
// workflow so a downstream user needs a single import:
//
//	net := repro.Canada2Class(20, 20)           // or repro.ParseSpec(json)
//	res, err := repro.Dimension(net, repro.DimensionOptions{})
//	fmt.Println(res.Windows, res.Metrics.Power) // power-optimal windows
//
//	simRes, err := repro.Simulate(net, repro.SimConfig{
//	    Windows: res.Windows, Duration: 5000, Warmup: 500,
//	})
//
// The layers underneath (usable directly from within this module):
//
//   - internal/qnet        — the separable queueing-network model (Ch. 3)
//   - internal/convolution — exact multichain convolution solver
//   - internal/mva         — exact and approximate mean value analysis
//   - internal/markov      — brute-force CTMC oracle
//   - internal/pattern     — Hooke–Jeeves integer pattern search
//   - internal/power       — the throughput/delay "power" criterion
//   - internal/netmodel    — message-switched network descriptions
//   - internal/core        — WINDIM itself
//   - internal/sim         — discrete-event network simulator
//   - internal/experiments — the thesis's tables and figures
package repro

import (
	"repro/internal/core"
	"repro/internal/netmodel"
	"repro/internal/numeric"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/topo"
)

// Network describes a message-switched store-and-forward network with
// end-to-end window flow control.
type Network = netmodel.Network

// Node, Channel and Class are the components of a Network.
type (
	Node    = netmodel.Node
	Channel = netmodel.Channel
	Class   = netmodel.Class
)

// WindowVector is a per-class window-size vector.
type WindowVector = numeric.IntVector

// Metrics is the performance summary (throughput, delay, power) of one
// operating point.
type Metrics = power.Metrics

// DimensionOptions configures the WINDIM run; the zero value reproduces
// the thesis's configuration.
type DimensionOptions = core.Options

// DimensionResult is the outcome of a WINDIM run.
type DimensionResult = core.Result

// Evaluator constants select the per-candidate model solver.
const (
	EvalSigmaMVA      = core.EvalSigmaMVA
	EvalSchweitzerMVA = core.EvalSchweitzerMVA
	EvalExactMVA      = core.EvalExactMVA
)

// Search constants select the optimiser.
const (
	PatternSearch    = core.PatternSearch
	ExhaustiveSearch = core.ExhaustiveSearch
)

// SimConfig and SimResult parameterise and report simulation runs.
type (
	SimConfig = sim.Config
	SimResult = sim.Result
)

// Source-model constants for SimConfig.
const (
	SourceThrottled  = sim.SourceThrottled
	SourceBacklogged = sim.SourceBacklogged
)

// ParseSpec decodes a JSON network specification (see netmodel.Spec for
// the schema) into a validated Network.
func ParseSpec(data []byte) (*Network, error) { return netmodel.ParseSpec(data) }

// Dimension runs WINDIM: it searches window space for the settings that
// maximise network power.
func Dimension(n *Network, opts DimensionOptions) (*DimensionResult, error) {
	return core.Dimension(n, opts)
}

// Evaluate computes the power metrics of the network at a fixed window
// vector.
func Evaluate(n *Network, windows WindowVector, opts DimensionOptions) (*Metrics, error) {
	return core.Evaluate(n, windows, opts)
}

// KleinrockWindows returns the hop-count rule-of-thumb window vector.
func KleinrockWindows(n *Network) WindowVector { return core.KleinrockWindows(n) }

// Simulate runs the discrete-event simulator on the network.
func Simulate(n *Network, cfg SimConfig) (*SimResult, error) { return sim.Run(n, cfg) }

// Canada2Class returns the thesis's 2-class 6-node example network
// (Fig. 4.5) with the given class arrival rates.
func Canada2Class(s1, s2 float64) *Network { return topo.Canada2Class(s1, s2) }

// Canada4Class returns the thesis's 4-class example network (Fig. 4.10).
func Canada4Class(s1, s2, s3, s4 float64) *Network { return topo.Canada4Class(s1, s2, s3, s4) }

// Tandem returns a p-hop linear network with a single class — Kleinrock's
// reference topology.
func Tandem(hops int, capacityBps, rate, meanLengthBits float64) (*Network, error) {
	return topo.Tandem(hops, capacityBps, rate, meanLengthBits)
}
