package repro_test

import (
	"fmt"

	"repro"
)

// Dimension the thesis's 2-class example network at a symmetric load and
// print the power-optimal windows.
func ExampleDimension() {
	network := repro.Canada2Class(20, 20)
	res, err := repro.Dimension(network, repro.DimensionOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Println("windows:", res.Windows)
	// Output:
	// windows: (4,4)
}

// Evaluate the Kleinrock hop-count rule on the 4-class network and
// compare with WINDIM — the Table 4.12 story in four lines.
func ExampleEvaluate() {
	network := repro.Canada4Class(20, 20, 20, 40)
	hop, err := repro.Evaluate(network, repro.KleinrockWindows(network), repro.DimensionOptions{})
	if err != nil {
		panic(err)
	}
	opt, err := repro.Dimension(network, repro.DimensionOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("hop rule %v beats WINDIM %v: %v\n",
		repro.KleinrockWindows(network), opt.Windows, hop.Power > opt.Metrics.Power)
	// Output:
	// hop rule (4,4,3,1) beats WINDIM (1,1,1,2): false
}

// Simulate a dimensioned network and check the analytic model's power
// prediction against measurement.
func ExampleSimulate() {
	network := repro.Canada2Class(20, 20)
	res, err := repro.Dimension(network, repro.DimensionOptions{})
	if err != nil {
		panic(err)
	}
	sim, err := repro.Simulate(network, repro.SimConfig{
		Windows: res.Windows, Duration: 5000, Warmup: 500, Seed: 1,
	})
	if err != nil {
		panic(err)
	}
	rel := (sim.Power - res.Metrics.Power) / res.Metrics.Power
	fmt.Printf("simulation within 5%% of the model: %v\n", rel < 0.05 && rel > -0.05)
	// Output:
	// simulation within 5% of the model: true
}

// Parse a network from its JSON wire form.
func ExampleParseSpec() {
	spec := `{
	  "name": "two-hop",
	  "nodes": ["a", "b", "c"],
	  "channels": [
	    {"name": "ab", "from": "a", "to": "b", "capacity_bps": 50000},
	    {"name": "bc", "from": "b", "to": "c", "capacity_bps": 50000}
	  ],
	  "classes": [
	    {"name": "vc1", "rate_msg_per_sec": 20, "mean_length_bits": 1000,
	     "route": ["ab", "bc"], "window": 2}
	  ]
	}`
	network, err := repro.ParseSpec([]byte(spec))
	if err != nil {
		panic(err)
	}
	fmt.Println(network.Name, "hops:", network.Hops(0))
	// Output:
	// two-hop hops: 2
}
