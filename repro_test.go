package repro

import (
	"math"
	"testing"
)

func TestFacadeDimensionAndSimulate(t *testing.T) {
	n := Canada2Class(25, 25)
	res, err := Dimension(n, DimensionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Windows) != 2 || res.Windows[0] < 1 {
		t.Fatalf("windows = %v", res.Windows)
	}
	simRes, err := Simulate(n, SimConfig{
		Windows: res.Windows, Duration: 3000, Warmup: 300, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(simRes.Power-res.Metrics.Power) / res.Metrics.Power; rel > 0.10 {
		t.Errorf("simulated power %v vs analytic %v", simRes.Power, res.Metrics.Power)
	}
}

func TestFacadeEvaluateAndKleinrock(t *testing.T) {
	n := Canada4Class(6, 6, 6, 12)
	kw := KleinrockWindows(n)
	m, err := Evaluate(n, kw, DimensionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Power <= 0 {
		t.Errorf("power = %v", m.Power)
	}
}

func TestFacadeParseSpec(t *testing.T) {
	n, err := Tandem(3, 50000, 10, 1000)
	if err != nil {
		t.Fatal(err)
	}
	data, err := n.MarshalSpec()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Channels) != 3 {
		t.Errorf("round trip lost channels: %d", len(back.Channels))
	}
}
