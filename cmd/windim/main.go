// Command windim dimensions the end-to-end flow-control windows of a
// message-switched network: the thesis's WINDIM algorithm as a CLI.
//
// Usage:
//
//	windim -example canada2 -rates 20,20
//	windim -spec network.json -evaluator exact -search exhaustive -max-window 8
//	windim -example canada4 -objective min-class
//	windim -example canada2 -sweep 0.5,1,2,4
//	windim -example canada4 -scenarios scenarios.json -robust minmax
//	windim -topo clos:8,4,24 -reduce -search pattern
//
// The network comes from a JSON spec (-spec), a built-in example
// (-example canada2 | canada4 | tandemN), or a synthetic topology
// generator (-topo clos:L,S,C | scalefree:N,M,C | mesh:N,E,C, seeded by
// -topo-seed; rates are scaled to 50% peak channel utilisation). -reduce
// applies the exact model reduction — pruning channels no route uses,
// pruning isolated nodes, merging propagation delays of channels with
// identical using-class sets — before dimensioning. The tool prints the
// power-optimal window vector, the performance at that point, the
// Kleinrock hop-count baseline, and the search trace; -sweep dimensions
// across scaled loads (a Table 4.7 for any network), -objective swaps in
// the fairness criteria.
//
// With -scenarios the tool dimensions robustly against a JSON set of
// operating-condition scenarios (per-channel capacity scales, per-class
// rate scales, optional weights — see examples/scenarios.json): it first
// finds the nominal optimum, then re-optimises the worst-scenario power
// (-robust minmax) or the weighted mean power (-robust weighted) seeded
// from the nominal vector, and prints both vectors' per-scenario
// exposure side by side. -sample-scenarios N generates the scenario set
// instead (deterministic under -scenario-seed, dominated scenarios
// pruned); -degrade-after and -min-scenarios control graceful scenario
// degradation during the robust search.
//
// Long searches can be made durable: -checkpoint writes the search state
// atomically on every commit (cadence -checkpoint-every), and -resume
// restarts from such a file, converging to the bit-identical result of
// an uninterrupted run. -checkpoint-full-every N keeps a per-commit
// cadence cheap by appending delta records to <checkpoint>.delta between
// full snapshots. -eval-timeout arms a per-candidate watchdog that
// reroutes stalled fixed points into the solver fallback chain.
//
// -exact-engine accelerates exact evaluations (-evaluator exact, and the
// exact tier of the solver fallback chain) by serving every candidate
// from one shared convolution lattice grown incrementally over the
// search, instead of running a fresh exponential recursion per candidate.
// It composes with -workers: lattice sweeps are hyperplane-parallel and
// bit-identical to serial, so the search trajectory is unchanged.
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/netmodel"
	"repro/internal/report"
	"repro/internal/shard"
)

func main() {
	// Worker mode must be dispatched before flag parsing: the sharded
	// search coordinator (windim-shard) execs this binary with only this
	// flag, the slab assignment travelling in the SHARD_* environment.
	if len(os.Args) == 2 && os.Args[1] == "-shard-worker" {
		os.Exit(shard.WorkerMain())
	}
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "windim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("windim", flag.ContinueOnError)
	spec := fs.String("spec", "", "JSON network spec file")
	example := fs.String("example", "", "built-in example: canada2, canada4, tandemN")
	topoSpec := fs.String("topo", "", "generate a synthetic topology: clos:L,S,C | scalefree:N,M,C | mesh:N,E,C")
	topoSeed := fs.Uint64("topo-seed", 1, "seed for -topo (same spec and seed, same network)")
	reduce := fs.Bool("reduce", false, "apply exact model reduction (prune unused channels/nodes, merge same-route propagation delays) before dimensioning")
	rates := fs.String("rates", "", "override class arrival rates, e.g. 20,20")
	evaluator := fs.String("evaluator", "sigma", "candidate evaluator: sigma, schweitzer, linearizer, exact")
	search := fs.String("search", "pattern", "optimiser: pattern, exhaustive")
	objective := fs.String("objective", "power", "criterion: power, min-class, sum-class")
	maxWindow := fs.Int("max-window", 0, "upper bound on every window (0 = default)")
	workers := fs.Int("workers", 1, "parallel candidate evaluations: splits the exhaustive box, and speculatively evaluates pattern-search probes (same result as serial)")
	start := fs.String("start", "", "initial windows for the pattern search (default: hop counts)")
	trace := fs.Bool("trace", false, "print the pattern-search base-point trace")
	sweep := fs.String("sweep", "", "comma-separated load scale factors; dimensions the network at each (e.g. 0.5,1,2)")
	timeout := fs.Duration("timeout", 0, "wall-clock budget for the search, e.g. 10s (0 = none); on expiry the best-so-far windows are reported")
	noFallback := fs.Bool("no-fallback", false, "disable the resilient solver chain (non-converged candidates fail immediately)")
	scenarioFile := fs.String("scenarios", "", "JSON scenario set; dimensions robustly against it instead of the nominal point only")
	robust := fs.String("robust", "minmax", "robust criterion with -scenarios: minmax (worst-scenario power) or weighted (probability-weighted mean power)")
	sampleScenarios := fs.Int("sample-scenarios", 0, "generate N random capacity/rate scenarios and dimension robustly against them (dominated scenarios pruned)")
	scenarioSeed := fs.Uint64("scenario-seed", 1, "seed for -sample-scenarios (same seed, same set)")
	degradeAfter := fs.Int("degrade-after", 0, "exclude a scenario after this many non-converged candidates instead of vetoing them (0 = off)")
	minScenarios := fs.Int("min-scenarios", 0, "abort if scenario degradation would leave fewer active scenarios than this (0 = 1)")
	checkpoint := fs.String("checkpoint", "", "write durable search checkpoints to this file (pattern search only)")
	checkpointEvery := fs.Int("checkpoint-every", 0, "commit cadence of checkpoint writes (0 = every commit)")
	checkpointFullEvery := fs.Int("checkpoint-full-every", 0, "write a full snapshot only every Nth durable write, appending cheap delta records to <checkpoint>.delta in between (<= 1 = always full)")
	resume := fs.String("resume", "", "resume the search from a checkpoint file written by a previous run with the same model and options")
	exactEngine := fs.Bool("exact-engine", false, "serve exact evaluations from one shared incremental convolution lattice per search instead of a fresh recursion per candidate (exact-evaluator runs and the exact fallback tier)")
	evalTimeout := fs.Duration("eval-timeout", 0, "per-candidate watchdog: a solve exceeding max(this, 8x the rolling mean solve time) is rerouted into the fallback chain (0 = off)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rateVec, err := cliutil.ParseRates(*rates)
	if err != nil {
		return err
	}
	var n *netmodel.Network
	if *topoSpec != "" {
		if *spec != "" || *example != "" {
			return fmt.Errorf("-topo is mutually exclusive with -spec and -example")
		}
		if rateVec != nil {
			return fmt.Errorf("-rates does not apply to -topo (generated rates are utilisation-scaled); use -sweep to rescale loads")
		}
		n, err = cliutil.ParseTopo(*topoSpec, *topoSeed)
	} else {
		n, err = cliutil.LoadNetwork(*spec, *example, rateVec)
	}
	if err != nil {
		return err
	}
	if *reduce {
		reduced, red, rerr := netmodel.Reduce(n)
		if rerr != nil {
			return rerr
		}
		if red.Total() > 0 {
			fmt.Printf("model reduction: %v\n", red)
		}
		n = reduced
	}
	opts := core.Options{
		MaxWindow:           *maxWindow,
		Workers:             *workers,
		DisableFallback:     *noFallback,
		EvalTimeout:         *evalTimeout,
		CheckpointPath:      *checkpoint,
		CheckpointEvery:     *checkpointEvery,
		CheckpointFullEvery: *checkpointFullEvery,
		ResumePath:          *resume,
		ExactEngine:         *exactEngine,
		DegradeAfter:        *degradeAfter,
		MinScenarios:        *minScenarios,
	}
	// Ctrl-C (and a service manager's SIGTERM) cancels the search instead
	// of killing the process: the best-so-far windows are reported and any
	// -checkpoint file stays resumable. A second signal kills immediately.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	opts.Context = ctx
	switch *evaluator {
	case "sigma":
		opts.Evaluator = core.EvalSigmaMVA
	case "schweitzer":
		opts.Evaluator = core.EvalSchweitzerMVA
	case "linearizer":
		opts.Evaluator = core.EvalLinearizerMVA
	case "exact":
		opts.Evaluator = core.EvalExactMVA
	default:
		return fmt.Errorf("unknown evaluator %q", *evaluator)
	}
	switch *search {
	case "pattern":
		opts.Search = core.PatternSearch
	case "exhaustive":
		opts.Search = core.ExhaustiveSearch
	default:
		return fmt.Errorf("unknown search %q", *search)
	}
	switch *objective {
	case "power":
		opts.Objective = core.ObjNetworkPower
	case "min-class":
		opts.Objective = core.ObjMinClassPower
	case "sum-class":
		opts.Objective = core.ObjSumClassPower
	default:
		return fmt.Errorf("unknown objective %q", *objective)
	}
	if *start != "" {
		iw, err := cliutil.ParseWindows(*start)
		if err != nil {
			return err
		}
		opts.InitialWindows = iw
	}

	if *sweep != "" {
		scales, err := cliutil.ParseRates(*sweep)
		if err != nil {
			return err
		}
		return runSweep(n, opts, scales)
	}

	if *scenarioFile != "" || *sampleScenarios > 0 {
		var kind core.RobustKind
		switch *robust {
		case "minmax":
			kind = core.RobustMinimax
		case "weighted":
			kind = core.RobustWeighted
		default:
			return fmt.Errorf("unknown robust criterion %q (want minmax or weighted)", *robust)
		}
		var scenarios []core.Scenario
		switch {
		case *scenarioFile != "" && *sampleScenarios > 0:
			return fmt.Errorf("-scenarios and -sample-scenarios are mutually exclusive")
		case *scenarioFile != "":
			data, err := os.ReadFile(*scenarioFile)
			if err != nil {
				return err
			}
			scenarios, err = core.ParseScenarios(data, n)
			if err != nil {
				return err
			}
		default:
			sampled, err := core.SampleScenarios(n, core.SampleOptions{
				Count: *sampleScenarios,
				Seed:  *scenarioSeed,
				// The weighted criterion averages over ALL scenarios, so
				// dominance pruning (a minimax-only argument) must stay off.
				KeepDominated: kind == core.RobustWeighted,
			})
			if err != nil {
				return err
			}
			if pruned := *sampleScenarios - len(sampled); pruned > 0 {
				fmt.Printf("sampled %d scenarios (seed %d), pruned %d dominated\n",
					*sampleScenarios, *scenarioSeed, pruned)
			} else {
				fmt.Printf("sampled %d scenarios (seed %d)\n", *sampleScenarios, *scenarioSeed)
			}
			scenarios = sampled
		}
		return runRobust(n, opts, scenarios, kind)
	}

	res, err := core.Dimension(n, opts)
	if err != nil {
		if res == nil {
			return err
		}
		// Deadline expired mid-search: the partial result still carries
		// the best window vector found before cancellation.
		fmt.Fprintf(os.Stderr, "windim: %v (reporting best-so-far)\n", err)
	}
	kw := core.KleinrockWindows(n)
	base, err := core.Evaluate(n, kw, opts)
	if err != nil {
		return err
	}

	fmt.Printf("network: %s (%d nodes, %d channels, %d classes)\n",
		n.Name, len(n.Nodes), len(n.Channels), len(n.Classes))
	fmt.Printf("evaluator: %v, search: %v\n\n", opts.Evaluator, opts.Search)
	fmt.Printf("optimal windows : %s\n", report.Windows(res.Windows))
	fmt.Printf("network power   : %s (throughput %s msg/s, delay %s s)\n",
		report.Float(res.Metrics.Power, 1),
		report.Float(res.Metrics.Throughput, 2),
		report.Float(res.Metrics.Delay, 4))
	fmt.Printf("kleinrock rule  : %s -> power %s\n\n",
		report.Windows(kw), report.Float(base.Power, 1))

	t := &report.Table{
		Title:   "Per-class performance at the optimal windows",
		Headers: []string{"Class", "Window", "Throughput (msg/s)", "Delay (s)"},
	}
	for r := range n.Classes {
		t.AddRow(n.Classes[r].Name,
			fmt.Sprint(res.Windows[r]),
			report.Float(res.Metrics.ClassThroughput[r], 2),
			report.Float(res.Metrics.ClassDelay[r], 4))
	}
	if _, err := t.WriteTo(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("\nsearch: %d objective evaluations, %d cache hits, %d non-converged candidates\n",
		res.Search.Evaluations, res.Search.CacheHits, res.NonConverged)
	if rescued := res.Fallbacks.Rescued(); rescued > 0 {
		fmt.Printf("fallback chain: %d candidate(s) rescued (%v)\n", rescued, res.Fallbacks)
	}
	if res.WatchdogTrips > 0 {
		fmt.Printf("watchdog: %d solve(s) cut short into the fallback chain\n", res.WatchdogTrips)
	}
	if *trace {
		fmt.Println("base points:")
		for _, p := range res.Search.BasePoints {
			fmt.Printf("  %s\n", report.Windows(p))
		}
	}
	return nil
}

// runRobust dimensions the nominal optimum first, then re-optimises the
// robust criterion over the scenario set seeded from the nominal vector
// (which guarantees the minimax result protects the worst scenario at
// least as well), and prints both vectors' per-scenario exposure.
func runRobust(n *netmodel.Network, opts core.Options, scenarios []core.Scenario, kind core.RobustKind) error {
	// Checkpoint/resume applies to the long robust search, not the nominal
	// seeding run (whose checkpoint would also collide on the same path).
	nopts := opts
	nopts.CheckpointPath = ""
	nopts.ResumePath = ""
	nominal, err := core.Dimension(n, nopts)
	if err != nil {
		if nominal == nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "windim: nominal search: %v (continuing with best-so-far)\n", err)
	}
	ropts := opts
	ropts.InitialWindows = nominal.Windows
	res, err := core.DimensionRobust(n, scenarios, kind, ropts)
	if err != nil {
		if res == nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "windim: %v (reporting best-so-far)\n", err)
	}
	nominalPowers, err := core.EvaluateScenarios(n, scenarios, nominal.Windows, opts)
	if err != nil {
		return err
	}

	fmt.Printf("network: %s (%d nodes, %d channels, %d classes)\n",
		n.Name, len(n.Nodes), len(n.Channels), len(n.Classes))
	fmt.Printf("evaluator: %v, robust criterion: %v, %d scenarios\n\n", opts.Evaluator, kind, len(scenarios))
	fmt.Printf("nominal windows : %s\n", report.Windows(nominal.Windows))
	fmt.Printf("robust windows  : %s\n\n", report.Windows(res.Windows))

	t := &report.Table{
		Title:   "Per-scenario power of both window vectors",
		Headers: []string{"Scenario", "Weight", "Nominal windows", "Robust windows"},
	}
	nominalWorst := math.Inf(1)
	for i := range scenarios {
		if nominalPowers[i] < nominalWorst {
			nominalWorst = nominalPowers[i]
		}
		weight := scenarios[i].Weight
		if weight <= 0 {
			weight = 1
		}
		t.AddRow(scenarios[i].Name, report.Float(weight, 2),
			report.Float(nominalPowers[i], 1), report.Float(res.ScenarioPower[i], 1))
	}
	if _, err := t.WriteTo(os.Stdout); err != nil {
		return err
	}
	if res.WorstScenario >= 0 {
		fmt.Printf("\nworst scenario  : %s\n", scenarios[res.WorstScenario].Name)
	}
	fmt.Printf("worst-case power: %s robust vs %s nominal\n",
		report.Float(res.WorstPower, 1), report.Float(nominalWorst, 1))
	fmt.Printf("weighted power  : %s robust\n", report.Float(res.WeightedPower, 1))
	fmt.Printf("search: %d objective evaluations, %d non-converged candidates\n",
		res.Search.Evaluations, res.NonConverged)
	if rescued := res.Fallbacks.Rescued(); rescued > 0 {
		fmt.Printf("fallback chain: %d evaluation(s) rescued (%v)\n", rescued, res.Fallbacks)
	}
	if res.WatchdogTrips > 0 {
		fmt.Printf("watchdog: %d solve(s) cut short into the fallback chain\n", res.WatchdogTrips)
	}
	for _, d := range res.Degraded {
		fmt.Printf("degraded scenario %q: %s\n", d.Name, d.Reason)
	}
	return nil
}

// runSweep dimensions the network at each load scale: every class rate
// is multiplied by the factor, producing a Table 4.7-style report for
// arbitrary networks.
func runSweep(n *netmodel.Network, opts core.Options, scales []float64) error {
	base := make([]float64, len(n.Classes))
	for r := range n.Classes {
		base[r] = n.Classes[r].Rate
	}
	t := &report.Table{
		Title:   fmt.Sprintf("Load sweep — %s", n.Name),
		Headers: []string{"Scale", "Total rate (msg/s)", "Optimal windows", "Power", "Throughput", "Delay (s)"},
	}
	for _, scale := range scales {
		if scale <= 0 {
			return fmt.Errorf("sweep scale %v must be positive", scale)
		}
		total := 0.0
		for r := range n.Classes {
			n.Classes[r].Rate = base[r] * scale
			total += n.Classes[r].Rate
		}
		res, err := core.Dimension(n, opts)
		if err != nil {
			return fmt.Errorf("sweep scale %v: %w", scale, err)
		}
		t.AddRow(report.Float(scale, 2), report.Float(total, 1),
			report.Windows(res.Windows), report.Float(res.Metrics.Power, 1),
			report.Float(res.Metrics.Throughput, 2), report.Float(res.Metrics.Delay, 4))
	}
	_, err := t.WriteTo(os.Stdout)
	return err
}
