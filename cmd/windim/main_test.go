package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunHappyPath(t *testing.T) {
	if err := run([]string{"-example", "canada2", "-rates", "20,20"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunExactExhaustive(t *testing.T) {
	if err := run([]string{"-example", "canada2", "-evaluator", "exact",
		"-search", "exhaustive", "-max-window", "6", "-trace"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSchweitzerWithStart(t *testing.T) {
	if err := run([]string{"-example", "canada4", "-evaluator", "schweitzer",
		"-start", "2,2,2,2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSweep(t *testing.T) {
	if err := run([]string{"-example", "canada2", "-sweep", "0.8,1.5"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-example", "canada2", "-sweep", "x"}); err == nil {
		t.Error("expected sweep parse error")
	}
	if err := run([]string{"-example", "canada2", "-sweep", "-1"}); err == nil {
		t.Error("expected positive-scale error")
	}
}

func TestRunRobustScenarios(t *testing.T) {
	for _, kind := range []string{"minmax", "weighted"} {
		if err := run([]string{"-example", "canada4", "-scenarios", "../../examples/scenarios.json",
			"-robust", kind}); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
	}
}

func TestRunRobustErrors(t *testing.T) {
	dir := t.TempDir()
	badJSON := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(badJSON, []byte(`{"scenarios": [{"capacity_scale": {"nosuch": 0.5}}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := [][]string{
		{"-example", "canada4", "-scenarios", "../../examples/scenarios.json", "-robust", "psychic"},
		{"-example", "canada4", "-scenarios", filepath.Join(dir, "missing.json")},
		{"-example", "canada4", "-scenarios", badJSON},
		// canada2 lacks class4, so the canada4 scenario file must be rejected.
		{"-example", "canada2", "-scenarios", "../../examples/scenarios.json"},
	}
	for i, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("case %d (%v): expected error", i, args)
		}
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{},                   // no network
		{"-example", "nope"}, // unknown example
		{"-example", "canada2", "-evaluator", "psychic"},
		{"-example", "canada2", "-search", "random"},
		{"-example", "canada2", "-rates", "1"},     // wrong rate count
		{"-example", "canada2", "-start", "1,2,3"}, // wrong start length
		{"-example", "canada2", "-start", "a,b"},   // bad start syntax
		{"-bogus-flag"},                            // flag error
	}
	for i, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("case %d (%v): expected error", i, args)
		}
	}
}

func TestRunGeneratedTopology(t *testing.T) {
	if err := run([]string{"-topo", "clos:5,2,8", "-reduce"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-topo", "mesh:8,3,6", "-topo-seed", "9"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-example", "canada4", "-reduce"}); err != nil {
		t.Fatal(err)
	}
	cases := [][]string{
		{"-topo", "clos:5,2,8", "-example", "canada2"}, // mutually exclusive
		{"-topo", "clos:5,2,8", "-spec", "x.json"},     // mutually exclusive
		{"-topo", "clos:5,2,8", "-rates", "1,2"},       // rates are generated
		{"-topo", "torus:5,2,8"},                       // unknown family
	}
	for i, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("case %d (%v): expected error", i, args)
		}
	}
}
