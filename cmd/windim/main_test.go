package main

import "testing"

func TestRunHappyPath(t *testing.T) {
	if err := run([]string{"-example", "canada2", "-rates", "20,20"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunExactExhaustive(t *testing.T) {
	if err := run([]string{"-example", "canada2", "-evaluator", "exact",
		"-search", "exhaustive", "-max-window", "6", "-trace"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSchweitzerWithStart(t *testing.T) {
	if err := run([]string{"-example", "canada4", "-evaluator", "schweitzer",
		"-start", "2,2,2,2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSweep(t *testing.T) {
	if err := run([]string{"-example", "canada2", "-sweep", "0.8,1.5"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-example", "canada2", "-sweep", "x"}); err == nil {
		t.Error("expected sweep parse error")
	}
	if err := run([]string{"-example", "canada2", "-sweep", "-1"}); err == nil {
		t.Error("expected positive-scale error")
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{},                   // no network
		{"-example", "nope"}, // unknown example
		{"-example", "canada2", "-evaluator", "psychic"},
		{"-example", "canada2", "-search", "random"},
		{"-example", "canada2", "-rates", "1"},     // wrong rate count
		{"-example", "canada2", "-start", "1,2,3"}, // wrong start length
		{"-example", "canada2", "-start", "a,b"},   // bad start syntax
		{"-bogus-flag"},                            // flag error
	}
	for i, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("case %d (%v): expected error", i, args)
		}
	}
}
