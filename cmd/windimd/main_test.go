package main

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

func TestParseBytes(t *testing.T) {
	good := map[string]int64{
		"":        0,
		"0":       0,
		"123":     123,
		"10b":     10,
		"5KiB":    5 << 10,
		"10kb":    10 << 10,
		"64m":     64 << 20,
		"256MiB":  256 << 20,
		"1g":      1 << 30,
		"2GiB":    2 << 30,
		" 7 mib ": 7 << 20,
	}
	for in, want := range good {
		got, err := parseBytes(in)
		if err != nil {
			t.Errorf("parseBytes(%q): %v", in, err)
		} else if got != want {
			t.Errorf("parseBytes(%q) = %d, want %d", in, got, want)
		}
	}
	for _, in := range []string{"x", "-5", "1.5m", "mib", "10q", "9223372036854775807g"} {
		if _, err := parseBytes(in); err == nil {
			t.Errorf("parseBytes(%q) accepted", in)
		}
	}
}

func TestRunFlagErrors(t *testing.T) {
	if err := run([]string{"-no-such-flag"}); err == nil {
		t.Error("unknown flag accepted")
	}
	if err := run([]string{"-mem-budget", "lots"}); err == nil {
		t.Error("bad -mem-budget accepted")
	}
	// A spool path that is a regular file cannot hold a journal.
	f := filepath.Join(t.TempDir(), "file")
	if err := os.WriteFile(f, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-spool", f, "-addr", "127.0.0.1:0"}); err == nil {
		t.Error("file spool accepted")
	}
}

// TestRunStartupAndDrain is the startup smoke test: boot the daemon on a
// loopback port, see it healthy, read /stats (including the per-job
// detail the shard/windimd observability rides on), then SIGTERM it and
// require a clean exit — the same drain discipline the sharded
// coordinator follows.
func TestRunStartupAndDrain(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	spool := filepath.Join(t.TempDir(), "spool")
	done := make(chan error, 1)
	go func() { done <- run([]string{"-addr", addr, "-spool", spool, "-jobs", "1"}) }()

	base := "http://" + addr
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("daemon never became healthy")
		}
		time.Sleep(20 * time.Millisecond)
	}

	resp, err := http.Get(base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("/stats: %d %v", resp.StatusCode, err)
	}
	var stats map[string]any
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatalf("/stats not JSON: %v\n%s", err, body)
	}
	for _, key := range []string{"checkpoints_discarded", "watchdog_trips", "jobs_detail"} {
		if _, ok := stats[key]; !ok {
			t.Errorf("/stats missing %q: %s", key, body)
		}
	}

	// Give run() a beat to register its signal handler (healthz races it
	// by a few instructions), then drain.
	time.Sleep(100 * time.Millisecond)
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain exit: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("drain timed out")
	}
}
