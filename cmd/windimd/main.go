// Command windimd runs WINDIM as a crash-safe, multi-tenant daemon:
// dimensioning jobs are submitted as JSON over HTTP, run on a bounded
// worker pool with admission control and per-job fault containment, and
// journalled durably in a spool directory so a killed daemon resumes
// interrupted searches on restart — converging to the bit-identical
// result an uninterrupted run would have produced.
//
// Usage:
//
//	windimd -addr :8080 -spool /var/spool/windimd -jobs 2 -mem-budget 256MiB
//
// API:
//
//	POST   /jobs             submit a job (see internal/service.JobSpec)
//	GET    /jobs             list jobs
//	GET    /jobs/{id}        one job's record (spec, state, retries, result)
//	DELETE /jobs/{id}        cancel a job
//	GET    /jobs/{id}/events stream progress as NDJSON (commits, retries, done)
//	GET    /healthz          liveness (503 while draining)
//	GET    /stats            queue/pool occupancy, admission and resilience counters
//
// SIGTERM or SIGINT drains gracefully: admissions stop, running jobs are
// cancelled (their best-so-far state is already checkpointed), the
// journal is flushed, and the process exits 0. Jobs interrupted by a
// drain — or by a crash — are re-admitted on the next start from the
// same spool.
//
// Jobs submitted with "kind":"shard" run the exhaustive search through
// the multi-process sharded coordinator (internal/shard): the daemon
// relaunches itself as slab workers via the hidden -shard-worker mode,
// and the coordinator spool lives next to the job record so drains and
// crashes resume mid-slab.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"math"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/service"
	"repro/internal/shard"
)

func main() {
	// Hidden worker mode: kind:"shard" jobs relaunch this executable as
	// slab workers; the slab contract travels in the environment.
	if len(os.Args) == 2 && os.Args[1] == "-shard-worker" {
		os.Exit(shard.WorkerMain())
	}
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "windimd:", err)
		os.Exit(1)
	}
}

// parseBytes reads a byte size like "256MiB", "64m", "1g" or a plain
// integer byte count.
func parseBytes(s string) (int64, error) {
	if s == "" || s == "0" {
		return 0, nil
	}
	low := strings.ToLower(strings.TrimSpace(s))
	mult := int64(1)
	for _, u := range []struct {
		suffix string
		mult   int64
	}{
		{"kib", 1 << 10}, {"mib", 1 << 20}, {"gib", 1 << 30},
		{"kb", 1 << 10}, {"mb", 1 << 20}, {"gb", 1 << 30},
		{"k", 1 << 10}, {"m", 1 << 20}, {"g", 1 << 30},
		{"b", 1},
	} {
		if strings.HasSuffix(low, u.suffix) {
			low = strings.TrimSuffix(low, u.suffix)
			mult = u.mult
			break
		}
	}
	n, err := strconv.ParseInt(strings.TrimSpace(low), 10, 64)
	if err != nil || n < 0 || n > math.MaxInt64/mult {
		return 0, fmt.Errorf("bad byte size %q", s)
	}
	return n * mult, nil
}

func run(args []string) error {
	fs := flag.NewFlagSet("windimd", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "HTTP listen address")
	spool := fs.String("spool", "spool", "job journal directory (records + search checkpoints); restart on the same spool resumes interrupted jobs")
	jobs := fs.Int("jobs", 2, "worker-pool size: jobs dimensioned concurrently")
	queue := fs.Int("queue", 16, "bounded admission queue; a full queue rejects with 429")
	memBudget := fs.String("mem-budget", "0", "convolution-oracle memory budget, e.g. 256MiB (0 = unbounded); exact-engine jobs beyond it are rejected with 429")
	jobTimeout := fs.Duration("job-timeout", 0, "default per-attempt deadline, e.g. 10m (0 = none); on expiry a job reports best-so-far windows marked partial")
	evalTimeout := fs.Duration("eval-timeout", 0, "default per-candidate watchdog (0 = off)")
	retries := fs.Int("retries", 2, "default automatic retries of transient failures per job")
	searchWorkers := fs.Int("search-workers", 4, "clamp on per-job search parallelism")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "how long a SIGTERM drain waits for running jobs to checkpoint and stop")
	if err := fs.Parse(args); err != nil {
		return err
	}
	budget, err := parseBytes(*memBudget)
	if err != nil {
		return err
	}
	if *retries == 0 {
		*retries = -1 // Config: negative disables, zero means default.
	}
	srv, err := service.New(service.Config{
		Spool:            *spool,
		MaxJobs:          *jobs,
		QueueDepth:       *queue,
		MemoryBudget:     budget,
		JobTimeout:       *jobTimeout,
		EvalTimeout:      *evalTimeout,
		MaxRetries:       *retries,
		MaxSearchWorkers: *searchWorkers,
	})
	if err != nil {
		return err
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv}
	errc := make(chan error, 1)
	go func() {
		log.Printf("windimd: listening on %s (spool %s, %d workers)", *addr, *spool, *jobs)
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		log.Printf("windimd: %v: draining (running jobs checkpoint and requeue; second signal kills)", sig)
	}
	signal.Reset(os.Interrupt, syscall.SIGTERM) // a second signal kills directly

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	log.Printf("windimd: drained cleanly")
	return nil
}
