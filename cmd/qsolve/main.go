// Command qsolve solves the closed multichain queueing model of a
// message-switched network at a fixed window setting, printing per-queue
// statistics. It exposes all four solvers of the repository so their
// outputs can be compared directly:
//
//	qsolve -example canada2 -windows 5,5 -solver exact
//	qsolve -spec net.json -windows 3,3 -solver convolution
//	qsolve -example canada4 -windows 4,4,3,1 -solver sigma
//	qsolve -example tandem2 -windows 2 -solver ctmc
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cliutil"
	"repro/internal/convolution"
	"repro/internal/markov"
	"repro/internal/mva"
	"repro/internal/numeric"
	"repro/internal/power"
	"repro/internal/qnet"
	"repro/internal/report"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "qsolve:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("qsolve", flag.ContinueOnError)
	spec := fs.String("spec", "", "JSON network spec file")
	example := fs.String("example", "", "built-in example: canada2, canada4, tandemN")
	rates := fs.String("rates", "", "override class arrival rates, e.g. 20,20")
	windows := fs.String("windows", "", "window vector, e.g. 5,5 (default: spec windows)")
	solver := fs.String("solver", "exact", "solver: exact, convolution, ctmc, sigma, schweitzer, linearizer")
	marginals := fs.Bool("marginals", false, "print per-queue length distributions (convolution solver)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rateVec, err := cliutil.ParseRates(*rates)
	if err != nil {
		return err
	}
	n, err := cliutil.LoadNetwork(*spec, *example, rateVec)
	if err != nil {
		return err
	}
	wv, err := cliutil.ParseWindows(*windows)
	if err != nil {
		return err
	}
	model, sources, err := n.ClosedModel(wv)
	if err != nil {
		return err
	}

	sol, label, err := solve(model, *solver)
	if err != nil {
		return err
	}
	metrics, err := power.FromSolution(model, sol, sources)
	if err != nil {
		return err
	}

	fmt.Printf("network: %s, solver: %s, windows: %s\n\n",
		n.Name, label, report.Windows(model.Populations()))
	t := &report.Table{
		Title:   "Per-queue statistics",
		Headers: []string{"Queue", "Utilisation", "Mean queue", "Mean time/visit (s)"},
	}
	util := sol.Utilization(model)
	for i := 0; i < model.N(); i++ {
		totalQ := sol.TotalQueueLen(i)
		// Mean time per visit, averaged over visiting chains weighted by
		// their visit throughput.
		num, den := 0.0, 0.0
		for r := 0; r < model.R(); r++ {
			if model.Chains[r].Visits[i] > 0 {
				w := sol.Throughput[r] * model.Chains[r].Visits[i]
				num += w * sol.QueueTime.At(i, r)
				den += w
			}
		}
		meanTime := 0.0
		if den > 0 {
			meanTime = num / den
		}
		t.AddRow(model.Stations[i].Name,
			report.Float(util[i], 4), report.Float(totalQ, 4), report.Float(meanTime, 5))
	}
	if _, err := t.WriteTo(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	ct := &report.Table{
		Title:   "Per-class performance",
		Headers: []string{"Class", "Window", "Throughput (msg/s)", "Network delay (s)"},
	}
	for r := range n.Classes {
		ct.AddRow(n.Classes[r].Name, fmt.Sprint(model.Chains[r].Population),
			report.Float(metrics.ClassThroughput[r], 3),
			report.Float(metrics.ClassDelay[r], 5))
	}
	if _, err := ct.WriteTo(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("\nnetwork throughput: %s msg/s, delay: %s s, power: %s\n",
		report.Float(metrics.Throughput, 3),
		report.Float(metrics.Delay, 5),
		report.Float(metrics.Power, 1))
	if *marginals {
		fmt.Println()
		if err := printMarginals(model); err != nil {
			return err
		}
	}
	return nil
}

// printMarginals renders each station's exact queue-length distribution
// (Table 3.7's p(h) made concrete) from the convolution solution.
func printMarginals(model *qnet.Network) error {
	c, err := convolution.Solve(model)
	if err != nil {
		return fmt.Errorf("marginals need the convolution solver: %w", err)
	}
	maxLen := 0
	for _, m := range c.Marginal {
		if len(m) > maxLen {
			maxLen = len(m)
		}
	}
	headers := []string{"Queue"}
	for k := 0; k < maxLen; k++ {
		headers = append(headers, fmt.Sprintf("P(N=%d)", k))
	}
	t := &report.Table{Title: "Exact queue-length distributions", Headers: headers}
	for i := 0; i < model.N(); i++ {
		cells := []string{model.Stations[i].Name}
		for k := 0; k < maxLen; k++ {
			if k < len(c.Marginal[i]) {
				cells = append(cells, report.Float(c.Marginal[i][k], 4))
			} else {
				cells = append(cells, "")
			}
		}
		t.AddRow(cells...)
	}
	_, err = t.WriteTo(os.Stdout)
	return err
}

// solve runs the selected solver, adapting every output to the mva
// Solution shape so the reporting code is shared.
func solve(model *qnet.Network, name string) (*mva.Solution, string, error) {
	switch name {
	case "exact":
		sol, err := mva.ExactMultichain(model)
		return sol, "exact multichain MVA", err
	case "sigma":
		sol, err := mva.Approximate(model, mva.Options{Method: mva.SigmaHeuristic})
		return sol, "sigma-heuristic AMVA", err
	case "schweitzer":
		sol, err := mva.Approximate(model, mva.Options{Method: mva.Schweitzer})
		return sol, "Schweitzer AMVA", err
	case "linearizer":
		sol, err := mva.Linearizer(model, mva.Options{})
		return sol, "Linearizer AMVA", err
	case "convolution":
		c, err := convolution.Solve(model)
		if err != nil {
			return nil, "", err
		}
		return adaptConvolution(model, c), "convolution (exact product form)", nil
	case "ctmc":
		m, err := markov.Solve(model)
		if err != nil {
			return nil, "", err
		}
		return adaptCTMC(model, m), fmt.Sprintf("CTMC balance equations (%d states)", m.States), nil
	default:
		return nil, "", fmt.Errorf("unknown solver %q", name)
	}
}

func adaptConvolution(model *qnet.Network, c *convolution.Solution) *mva.Solution {
	sol := &mva.Solution{
		Throughput: c.Throughput,
		QueueLen:   c.QueueLen,
		QueueTime:  numeric.NewMatrix(model.N(), model.R()),
	}
	fillQueueTimes(model, sol)
	return sol
}

func adaptCTMC(model *qnet.Network, m *markov.Solution) *mva.Solution {
	sol := &mva.Solution{
		Throughput: m.Throughput,
		QueueLen:   m.QueueLen,
		QueueTime:  numeric.NewMatrix(model.N(), model.R()),
	}
	fillQueueTimes(model, sol)
	return sol
}

// fillQueueTimes derives per-visit queue times from queue lengths by
// Little's law: t_ir = N_ir / (lambda_r V_ir).
func fillQueueTimes(model *qnet.Network, sol *mva.Solution) {
	for i := 0; i < model.N(); i++ {
		for r := 0; r < model.R(); r++ {
			v := model.Chains[r].Visits[i]
			if v > 0 && sol.Throughput[r] > 0 {
				sol.QueueTime.Set(i, r, sol.QueueLen.At(i, r)/(sol.Throughput[r]*v))
			}
		}
	}
}
