package main

import "testing"

func TestRunSolvers(t *testing.T) {
	for _, solver := range []string{"exact", "convolution", "sigma", "schweitzer"} {
		if err := run([]string{"-example", "canada2", "-windows", "3,3", "-solver", solver}); err != nil {
			t.Fatalf("%s: %v", solver, err)
		}
	}
	// The CTMC is exponential; exercise it on a small tandem only.
	if err := run([]string{"-example", "tandem2", "-windows", "3", "-solver", "ctmc"}); err != nil {
		t.Fatalf("ctmc: %v", err)
	}
	if err := run([]string{"-example", "tandem2", "-windows", "3", "-marginals"}); err != nil {
		t.Fatalf("marginals: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{},
		{"-example", "canada2", "-solver", "ouija"},
		{"-example", "canada2", "-windows", "oops"},
		{"-example", "canada2", "-windows", "1,2,3"}, // wrong length
		{"-example", "canada2", "-rates", "zz"},
		{"-what"},
	}
	for i, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("case %d (%v): expected error", i, args)
		}
	}
}
