// Command netsim runs the discrete-event simulator on a message-switched
// network with end-to-end window flow control, optionally with local
// (finite-buffer) and isarithmic (global-permit) control:
//
//	netsim -example canada2 -windows 4,4 -duration 5000 -warmup 500
//	netsim -spec net.json -windows 0,0 -buffers 4 -source backlogged
//	netsim -example canada4 -windows 1,1,1,4 -permits 10
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cliutil"
	"repro/internal/report"
	"repro/internal/sim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "netsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("netsim", flag.ContinueOnError)
	spec := fs.String("spec", "", "JSON network spec file")
	example := fs.String("example", "", "built-in example: canada2, canada4, tandemN")
	rates := fs.String("rates", "", "override class arrival rates, e.g. 20,20")
	windows := fs.String("windows", "", "window vector, e.g. 4,4 (0 disables control for a class)")
	duration := fs.Float64("duration", 5000, "simulated seconds")
	warmup := fs.Float64("warmup", 500, "warmup seconds excluded from statistics")
	seed := fs.Uint64("seed", 1, "random seed")
	source := fs.String("source", "throttled", "source model: throttled, backlogged")
	buffers := fs.Int("buffers", 0, "per-node buffer limit K (0 = infinite)")
	permits := fs.Int("permits", 0, "isarithmic permit pool size (0 = disabled)")
	correlated := fs.Bool("correlated-lengths", false, "carry each message's length across hops (break the independence assumption)")
	lengthCV := fs.Float64("length-cv", 0, "message-length coefficient of variation (0 = exponential)")
	burstiness := fs.Float64("burstiness", 0, "on-off source peak factor B (0 = Poisson)")
	burstOn := fs.Float64("burst-on", 0, "mean on-period seconds when bursty (default 1)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rateVec, err := cliutil.ParseRates(*rates)
	if err != nil {
		return err
	}
	n, err := cliutil.LoadNetwork(*spec, *example, rateVec)
	if err != nil {
		return err
	}
	wv, err := cliutil.ParseWindows(*windows)
	if err != nil {
		return err
	}
	cfg := sim.Config{
		Windows:           wv,
		Seed:              *seed,
		Duration:          *duration,
		Warmup:            *warmup,
		CorrelatedLengths: *correlated,
		GlobalPermits:     *permits,
		LengthCV:          *lengthCV,
		Burstiness:        *burstiness,
		BurstOn:           *burstOn,
	}
	switch *source {
	case "throttled":
		cfg.Source = sim.SourceThrottled
	case "backlogged":
		cfg.Source = sim.SourceBacklogged
	default:
		return fmt.Errorf("unknown source model %q", *source)
	}
	if *buffers > 0 {
		cfg.NodeBuffers = make([]int, len(n.Nodes))
		for i := range cfg.NodeBuffers {
			cfg.NodeBuffers[i] = *buffers
		}
	}
	res, err := sim.Run(n, cfg)
	if err != nil {
		return err
	}

	fmt.Printf("network: %s, %s source, %.0f s simulated (%.0f s warmup), seed %d\n\n",
		n.Name, cfg.Source, *duration, *warmup, *seed)
	ct := &report.Table{
		Title:   "Per-class results",
		Headers: []string{"Class", "Offered", "Throughput", "Delay (s)", "±CI95", "In network", "Backlog"},
	}
	for r := range res.PerClass {
		c := &res.PerClass[r]
		ct.AddRow(n.Classes[r].Name,
			report.Float(c.Offered, 2), report.Float(c.Throughput, 2),
			report.Float(c.MeanDelay, 5), report.Float(c.DelayCI95, 5),
			report.Float(c.MeanInNetwork, 3), report.Float(c.MeanBacklog, 2))
	}
	if _, err := ct.WriteTo(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	lt := &report.Table{
		Title:   "Per-channel results",
		Headers: []string{"Channel", "Utilisation", "Mean stored"},
	}
	for l := range res.ChannelUtilization {
		lt.AddRow(n.Channels[l].Name,
			report.Float(res.ChannelUtilization[l], 4),
			report.Float(res.ChannelMeanQueue[l], 4))
	}
	if _, err := lt.WriteTo(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("\nnetwork throughput: %s msg/s, delay: %s s, power: %s\n",
		report.Float(res.Throughput, 3), report.Float(res.Delay, 5), report.Float(res.Power, 1))
	if res.Deadlocked {
		fmt.Println("WARNING: the run ended in store-and-forward deadlock")
	}
	return nil
}
