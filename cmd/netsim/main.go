// Command netsim runs the discrete-event simulator on a message-switched
// network with end-to-end window flow control, optionally with local
// (finite-buffer) and isarithmic (global-permit) control:
//
//	netsim -example canada2 -windows 4,4 -duration 5000 -warmup 500
//	netsim -spec net.json -windows 0,0 -buffers 4 -source backlogged
//	netsim -example canada4 -windows 1,1,1,4 -permits 10
//	netsim -example canada2 -windows 4,4 -faults faults.json
//
// A -faults file injects deterministic off-nominal windows (channel
// outages, service-rate degradations, per-class traffic surges) into
// every replication; see examples/faults.json for the format.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"syscall"

	"repro/internal/cliutil"
	"repro/internal/netmodel"
	"repro/internal/report"
	"repro/internal/sim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "netsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("netsim", flag.ContinueOnError)
	spec := fs.String("spec", "", "JSON network spec file")
	example := fs.String("example", "", "built-in example: canada2, canada4, tandemN")
	rates := fs.String("rates", "", "override class arrival rates, e.g. 20,20")
	windows := fs.String("windows", "", "window vector, e.g. 4,4 (0 disables control for a class)")
	duration := fs.Float64("duration", 5000, "simulated seconds")
	warmup := fs.Float64("warmup", 500, "warmup seconds excluded from statistics")
	seed := fs.Uint64("seed", 1, "random seed")
	source := fs.String("source", "throttled", "source model: throttled, backlogged")
	buffers := fs.Int("buffers", 0, "per-node buffer limit K (0 = infinite)")
	permits := fs.Int("permits", 0, "isarithmic permit pool size (0 = disabled)")
	correlated := fs.Bool("correlated-lengths", false, "carry each message's length across hops (break the independence assumption)")
	lengthCV := fs.Float64("length-cv", 0, "message-length coefficient of variation (0 = exponential)")
	burstiness := fs.Float64("burstiness", 0, "on-off source peak factor B (0 = Poisson)")
	burstOn := fs.Float64("burst-on", 0, "mean on-period seconds when bursty (default 1)")
	faults := fs.String("faults", "", "JSON fault spec file: outage/degradation/surge windows by channel and class name")
	reps := fs.Int("reps", 1, "independent replications (each with a derived sub-seed); >1 reports replication means with 95% CIs")
	timeout := fs.Duration("timeout", 0, "wall-clock budget for the whole batch, e.g. 30s (0 = none); on expiry the completed replications are reported")
	scheduler := fs.String("scheduler", "calendar", "event-queue implementation: calendar, heap (outputs are bit-identical; heap is the reference)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file at exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *reps < 1 {
		return fmt.Errorf("-reps must be at least 1, got %d", *reps)
	}
	rateVec, err := cliutil.ParseRates(*rates)
	if err != nil {
		return err
	}
	n, err := cliutil.LoadNetwork(*spec, *example, rateVec)
	if err != nil {
		return err
	}
	wv, err := cliutil.ParseWindows(*windows)
	if err != nil {
		return err
	}
	sched, err := sim.ParseScheduler(*scheduler)
	if err != nil {
		return err
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "netsim:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "netsim:", err)
			}
		}()
	}
	cfg := sim.Config{
		Windows:           wv,
		Scheduler:         sched,
		Seed:              *seed,
		Duration:          *duration,
		Warmup:            *warmup,
		CorrelatedLengths: *correlated,
		GlobalPermits:     *permits,
		LengthCV:          *lengthCV,
		Burstiness:        *burstiness,
		BurstOn:           *burstOn,
	}
	switch *source {
	case "throttled":
		cfg.Source = sim.SourceThrottled
	case "backlogged":
		cfg.Source = sim.SourceBacklogged
	default:
		return fmt.Errorf("unknown source model %q", *source)
	}
	if *faults != "" {
		data, err := os.ReadFile(*faults)
		if err != nil {
			return err
		}
		f, err := sim.ParseFaultSpec(data, n)
		if err != nil {
			return err
		}
		cfg.Faults = f
	}
	if *buffers > 0 {
		cfg.NodeBuffers = make([]int, len(n.Nodes))
		for i := range cfg.NodeBuffers {
			cfg.NodeBuffers[i] = *buffers
		}
	}
	// Ctrl-C / SIGTERM cancels the batch; completed replications are still
	// reported below. A second signal kills immediately.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	batch, batchErr := sim.RunReplications(ctx, n, cfg, *reps, runtime.NumCPU())
	if batch == nil {
		return batchErr
	}
	if batchErr != nil {
		// Cancelled mid-batch: report what completed.
		fmt.Fprintf(os.Stderr, "netsim: %v\n", batchErr)
	}

	fmt.Printf("network: %s, %s source, %.0f s simulated (%.0f s warmup), seed %d\n\n",
		n.Name, cfg.Source, *duration, *warmup, *seed)
	if *reps > 1 {
		return printBatch(n, batch, *reps)
	}
	res := batch.Reps[0].Result
	if res == nil {
		return batch.Reps[0].Err
	}
	ct := &report.Table{
		Title:   "Per-class results",
		Headers: []string{"Class", "Offered", "Throughput", "Delay (s)", "±CI95", "In network", "Backlog"},
	}
	for r := range res.PerClass {
		c := &res.PerClass[r]
		ct.AddRow(n.Classes[r].Name,
			report.Float(c.Offered, 2), report.Float(c.Throughput, 2),
			report.Float(c.MeanDelay, 5), report.Float(c.DelayCI95, 5),
			report.Float(c.MeanInNetwork, 3), report.Float(c.MeanBacklog, 2))
	}
	if _, err := ct.WriteTo(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	lt := &report.Table{
		Title:   "Per-channel results",
		Headers: []string{"Channel", "Utilisation", "Mean stored"},
	}
	for l := range res.ChannelUtilization {
		lt.AddRow(n.Channels[l].Name,
			report.Float(res.ChannelUtilization[l], 4),
			report.Float(res.ChannelMeanQueue[l], 4))
	}
	if _, err := lt.WriteTo(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("\nnetwork throughput: %s msg/s, delay: %s s, power: %s\n",
		report.Float(res.Throughput, 3), report.Float(res.Delay, 5), report.Float(res.Power, 1))
	if res.Deadlocked {
		fmt.Println("WARNING: the run ended in store-and-forward deadlock")
	}
	return nil
}

// printBatch renders the aggregate view of a multi-replication run:
// replication means with Student-t 95% half-widths instead of the
// single-run detail tables.
func printBatch(n *netmodel.Network, b *sim.BatchResult, reps int) error {
	fmt.Printf("replications: %d completed, %d failed (of %d requested)\n\n",
		b.Completed, b.Failed, reps)
	ct := &report.Table{
		Title:   "Per-class results (replication means, 95% CI)",
		Headers: []string{"Class", "Throughput", "±CI95", "Delay (s)", "±CI95"},
	}
	for r := range b.PerClass {
		c := &b.PerClass[r]
		ct.AddRow(n.Classes[r].Name,
			report.Float(c.Throughput, 2), report.Float(c.ThroughputCI95, 2),
			report.Float(c.Delay, 5), report.Float(c.DelayCI95, 5))
	}
	if _, err := ct.WriteTo(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("\nnetwork throughput: %s ±%s msg/s, delay: %s ±%s s, power: %s ±%s\n",
		report.Float(b.Throughput, 3), report.Float(b.ThroughputCI95, 3),
		report.Float(b.Delay, 5), report.Float(b.DelayCI95, 5),
		report.Float(b.Power, 1), report.Float(b.PowerCI95, 1))
	if b.Deadlocked > 0 {
		fmt.Printf("WARNING: %d replication(s) ended in store-and-forward deadlock\n", b.Deadlocked)
	}
	for i := range b.Reps {
		if b.Reps[i].Err != nil {
			fmt.Printf("replication %d failed: %v\n", i, b.Reps[i].Err)
		}
	}
	return nil
}
