package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/topo"
)

func TestRunBasic(t *testing.T) {
	if err := run([]string{"-example", "canada2", "-windows", "4,4",
		"-duration", "200", "-warmup", "20"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithControls(t *testing.T) {
	if err := run([]string{"-example", "canada2", "-windows", "0,0",
		"-duration", "100", "-warmup", "10",
		"-source", "backlogged", "-buffers", "4", "-permits", "6",
		"-correlated-lengths"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithFaults(t *testing.T) {
	if err := run([]string{"-example", "canada2", "-windows", "4,4",
		"-duration", "3000", "-warmup", "300",
		"-faults", "../../examples/faults.json"}); err != nil {
		t.Fatal(err)
	}
	// Replicated faulted runs work too.
	if err := run([]string{"-example", "canada2", "-windows", "4,4",
		"-duration", "500", "-warmup", "50", "-reps", "3",
		"-faults", "../../examples/faults.json"}); err != nil {
		t.Fatal(err)
	}
}

// TestRunFaultsRejectedVerbatim: an invalid fault file is refused with
// the exact error the spec's own validation produces.
func TestRunFaultsRejectedVerbatim(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"surges": [
		{"class": "class1", "start_sec": 1, "end_sec": 10, "factor": 2},
		{"class": "class1", "start_sec": 5, "end_sec": 15, "factor": 3}
	]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-example", "canada2", "-windows", "4,4",
		"-duration", "100", "-warmup", "10", "-faults", bad})
	if err == nil {
		t.Fatal("invalid fault file accepted")
	}
	want := (&sim.FaultSpec{Surges: []sim.Surge{
		{Class: 0, Start: 1, End: 10, Factor: 2},
		{Class: 0, Start: 5, End: 15, Factor: 3},
	}}).Validate(topo.Canada2Class(20, 20))
	if want == nil || err.Error() != want.Error() {
		t.Errorf("error %q, want the validate error %q verbatim", err, want)
	}

	if err := run([]string{"-example", "canada2", "-windows", "4,4",
		"-faults", filepath.Join(dir, "missing.json")}); err == nil {
		t.Error("missing fault file accepted")
	}
	unknown := filepath.Join(dir, "unknown.json")
	if err := os.WriteFile(unknown, []byte(`{"outages": [{"channel": "nosuch", "start_sec": 1, "end_sec": 2}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	err = run([]string{"-example", "canada2", "-windows", "4,4", "-faults", unknown})
	if err == nil || !strings.Contains(err.Error(), `unknown channel "nosuch"`) {
		t.Errorf("unknown-channel error: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{},
		{"-example", "canada2", "-source", "telepathic"},
		{"-example", "canada2", "-windows", "x"},
		{"-example", "canada2", "-duration", "-5"},
		{"-nope"},
	}
	for i, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("case %d (%v): expected error", i, args)
		}
	}
}

func TestRunSchedulerFlag(t *testing.T) {
	for _, sched := range []string{"heap", "calendar"} {
		if err := run([]string{"-example", "canada2", "-windows", "4,4",
			"-duration", "100", "-warmup", "10",
			"-scheduler", sched}); err != nil {
			t.Fatalf("-scheduler %s: %v", sched, err)
		}
	}
	err := run([]string{"-example", "canada2", "-windows", "4,4",
		"-duration", "100", "-warmup", "10", "-scheduler", "bogus"})
	if err == nil || !strings.Contains(err.Error(), "unknown scheduler") {
		t.Fatalf("bogus scheduler: got %v, want unknown-scheduler error", err)
	}
}

func TestRunProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	if err := run([]string{"-example", "canada2", "-windows", "4,4",
		"-duration", "200", "-warmup", "20",
		"-cpuprofile", cpu, "-memprofile", mem}); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s not written: %v", p, err)
		}
		if st.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
}
