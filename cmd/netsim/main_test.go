package main

import "testing"

func TestRunBasic(t *testing.T) {
	if err := run([]string{"-example", "canada2", "-windows", "4,4",
		"-duration", "200", "-warmup", "20"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithControls(t *testing.T) {
	if err := run([]string{"-example", "canada2", "-windows", "0,0",
		"-duration", "100", "-warmup", "10",
		"-source", "backlogged", "-buffers", "4", "-permits", "6",
		"-correlated-lengths"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{},
		{"-example", "canada2", "-source", "telepathic"},
		{"-example", "canada2", "-windows", "x"},
		{"-example", "canada2", "-duration", "-5"},
		{"-nope"},
	}
	for i, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("case %d (%v): expected error", i, args)
		}
	}
}
