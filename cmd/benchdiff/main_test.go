package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeBench(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const baseJSON = `{"go":"go1.24.0","workers":4,"results":[
	{"name":"A","ns_per_op":1000,"allocs_per_op":10,"bytes_per_op":100,"evaluations":5},
	{"name":"B","ns_per_op":2000,"allocs_per_op":0,"bytes_per_op":0,"evaluations":0}]}`

func TestBenchdiffWithinTolerance(t *testing.T) {
	dir := t.TempDir()
	base := writeBench(t, dir, "base.json", baseJSON)
	cur := writeBench(t, dir, "cur.json", `{"go":"go1.24.0","workers":4,"results":[
		{"name":"A","ns_per_op":1200,"allocs_per_op":10,"bytes_per_op":100,"evaluations":5},
		{"name":"B","ns_per_op":1900,"allocs_per_op":0,"bytes_per_op":0,"evaluations":0}]}`)
	if err := run([]string{"-baseline", base, "-current", cur}); err != nil {
		t.Fatalf("in-band diff failed: %v", err)
	}
}

func TestBenchdiffTimeRegression(t *testing.T) {
	dir := t.TempDir()
	base := writeBench(t, dir, "base.json", baseJSON)
	cur := writeBench(t, dir, "cur.json", `{"go":"go1.24.0","workers":4,"results":[
		{"name":"A","ns_per_op":9000,"allocs_per_op":10,"bytes_per_op":100,"evaluations":5},
		{"name":"B","ns_per_op":2000,"allocs_per_op":0,"bytes_per_op":0,"evaluations":0}]}`)
	err := run([]string{"-baseline", base, "-current", cur})
	if err == nil || !strings.Contains(err.Error(), "regressed") {
		t.Fatalf("9x slowdown passed the gate: %v", err)
	}
}

func TestBenchdiffZeroAllocBaseline(t *testing.T) {
	// A benchmark the baseline records as allocation-free must stay that
	// way: any allocation trips the gate regardless of tolerance.
	dir := t.TempDir()
	base := writeBench(t, dir, "base.json", baseJSON)
	cur := writeBench(t, dir, "cur.json", `{"go":"go1.24.0","workers":4,"results":[
		{"name":"A","ns_per_op":1000,"allocs_per_op":10,"bytes_per_op":100,"evaluations":5},
		{"name":"B","ns_per_op":2000,"allocs_per_op":3,"bytes_per_op":64,"evaluations":0}]}`)
	if err := run([]string{"-baseline", base, "-current", cur}); err == nil {
		t.Fatal("new allocations on a zero-alloc benchmark passed the gate")
	}
}

func TestBenchdiffMissingBenchmark(t *testing.T) {
	dir := t.TempDir()
	base := writeBench(t, dir, "base.json", baseJSON)
	cur := writeBench(t, dir, "cur.json", `{"go":"go1.24.0","workers":4,"results":[
		{"name":"A","ns_per_op":1000,"allocs_per_op":10,"bytes_per_op":100,"evaluations":5}]}`)
	if err := run([]string{"-baseline", base, "-current", cur}); err == nil {
		t.Fatal("dropped benchmark passed the gate")
	}
}

func TestBenchdiffNewBenchmarkAllowed(t *testing.T) {
	dir := t.TempDir()
	base := writeBench(t, dir, "base.json", baseJSON)
	cur := writeBench(t, dir, "cur.json", `{"go":"go1.24.0","workers":4,"results":[
		{"name":"A","ns_per_op":1000,"allocs_per_op":10,"bytes_per_op":100,"evaluations":5},
		{"name":"B","ns_per_op":2000,"allocs_per_op":0,"bytes_per_op":0,"evaluations":0},
		{"name":"C","ns_per_op":500,"allocs_per_op":1,"bytes_per_op":8,"evaluations":1}]}`)
	if err := run([]string{"-baseline", base, "-current", cur}); err != nil {
		t.Fatalf("new benchmark failed the gate: %v", err)
	}
}

func TestBenchdiffEnvMismatchWarnsOnly(t *testing.T) {
	// A baseline measured on different hardware (CPU model, GOMAXPROCS)
	// must produce a warning, never a failure: the results themselves are
	// in band here.
	dir := t.TempDir()
	base := writeBench(t, dir, "base.json",
		`{"go":"go1.24.0","cpu":"Old CPU @ 2.0GHz","gomaxprocs":4,"workers":4,"results":[
		{"name":"A","ns_per_op":1000,"allocs_per_op":10,"bytes_per_op":100,"evaluations":5}]}`)
	cur := writeBench(t, dir, "cur.json",
		`{"go":"go1.24.0","cpu":"New CPU @ 5.0GHz","gomaxprocs":16,"workers":4,"results":[
		{"name":"A","ns_per_op":1100,"allocs_per_op":10,"bytes_per_op":100,"evaluations":5}]}`)
	if err := run([]string{"-baseline", base, "-current", cur}); err != nil {
		t.Fatalf("machine mismatch failed the gate: %v", err)
	}
	// Files without the machine fields (older baselines) stay silent and green.
	legacy := writeBench(t, dir, "legacy.json", baseJSON)
	curLegacy := writeBench(t, dir, "curlegacy.json", baseJSON)
	if err := run([]string{"-baseline", legacy, "-current", curLegacy}); err != nil {
		t.Fatalf("legacy headers failed the gate: %v", err)
	}
}

func TestBenchdiffEvalRegression(t *testing.T) {
	dir := t.TempDir()
	base := writeBench(t, dir, "base.json", baseJSON)
	cur := writeBench(t, dir, "cur.json", `{"go":"go1.24.0","workers":4,"results":[
		{"name":"A","ns_per_op":1000,"allocs_per_op":10,"bytes_per_op":100,"evaluations":9},
		{"name":"B","ns_per_op":2000,"allocs_per_op":0,"bytes_per_op":0,"evaluations":0}]}`)
	if err := run([]string{"-baseline", base, "-current", cur}); err == nil {
		t.Fatal("80% more objective evaluations passed the gate")
	}
}

func TestBenchdiffMissingNamesInError(t *testing.T) {
	// The failure message must name the lost baseline entries so the
	// operator knows which coverage disappeared, not just that some did.
	dir := t.TempDir()
	base := writeBench(t, dir, "base.json", baseJSON)
	cur := writeBench(t, dir, "cur.json", `{"go":"go1.24.0","workers":4,"results":[
		{"name":"A","ns_per_op":1000,"allocs_per_op":10,"bytes_per_op":100,"evaluations":5}]}`)
	err := run([]string{"-baseline", base, "-current", cur})
	if err == nil {
		t.Fatal("dropped benchmark passed the gate")
	}
	if !strings.Contains(err.Error(), "missing from the current run: B") {
		t.Fatalf("error must name the missing benchmark: %v", err)
	}
	if !strings.Contains(err.Error(), "geomean") {
		t.Fatalf("error must carry the geomean ratio: %v", err)
	}
}

func TestBenchdiffGeomeanLine(t *testing.T) {
	// A 0.5x, B 1.0x: the verdict line must report geomean sqrt(0.5) = 0.707x.
	dir := t.TempDir()
	base := writeBench(t, dir, "base.json", baseJSON)
	cur := writeBench(t, dir, "cur.json", `{"go":"go1.24.0","workers":4,"results":[
		{"name":"A","ns_per_op":500,"allocs_per_op":10,"bytes_per_op":100,"evaluations":5},
		{"name":"B","ns_per_op":2000,"allocs_per_op":0,"bytes_per_op":0,"evaluations":0}]}`)
	old := os.Stdout
	rp, wp, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = wp
	runErr := run([]string{"-baseline", base, "-current", cur})
	wp.Close()
	os.Stdout = old
	out, err := io.ReadAll(rp)
	if err != nil {
		t.Fatal(err)
	}
	if runErr != nil {
		t.Fatalf("in-band diff failed: %v", runErr)
	}
	if !strings.Contains(string(out), "geomean ns/op ratio 0.707x") {
		t.Fatalf("verdict line missing geomean ratio:\n%s", out)
	}
}
