// Command benchdiff compares a `paperbench -json` run against a committed
// baseline and fails when a benchmark regressed beyond the tolerance band.
// It is the CI perf gate:
//
//	paperbench -json bench.json
//	benchdiff -baseline BENCH_baseline.json -current bench.json
//
// Timings are wall-clock and noisy on shared runners, so the time band is
// wide by default; allocation counts and objective-evaluation counts are
// deterministic, so their bands are tight. A benchmark present in the
// baseline but missing from the current run fails the gate (coverage was
// lost); a new benchmark only in the current run is reported but passes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"repro/internal/report"
)

// benchResult mirrors paperbench's -json entry.
type benchResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Evaluations int     `json:"evaluations"`
}

type benchFile struct {
	Go         string        `json:"go"`
	CPU        string        `json:"cpu,omitempty"`
	Gomaxprocs int           `json:"gomaxprocs,omitempty"`
	Workers    int           `json:"workers"`
	Results    []benchResult `json:"results"`
}

// warnEnvMismatch flags baseline/current machine differences on stderr.
// Non-fatal: the gate still runs, but a SLOWER verdict measured on
// different hardware (or a different GOMAXPROCS) is circumstantial
// evidence, and the operator should know the band was crossed unfairly.
func warnEnvMismatch(base, cur *benchFile) {
	if base.CPU != "" && cur.CPU != "" && base.CPU != cur.CPU {
		fmt.Fprintf(os.Stderr, "benchdiff: warning: baseline CPU %q vs current %q — wall-clock comparisons may mislead\n",
			base.CPU, cur.CPU)
	}
	if base.Gomaxprocs > 0 && cur.Gomaxprocs > 0 && base.Gomaxprocs != cur.Gomaxprocs {
		fmt.Fprintf(os.Stderr, "benchdiff: warning: baseline GOMAXPROCS %d vs current %d — parallel timings may mislead\n",
			base.Gomaxprocs, cur.Gomaxprocs)
	}
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	baseline := fs.String("baseline", "BENCH_baseline.json", "committed baseline JSON")
	current := fs.String("current", "", "freshly measured JSON (required)")
	timeTol := fs.Float64("time-tol", 0.50, "allowed fractional ns/op increase (wall clock is noisy)")
	allocTol := fs.Float64("alloc-tol", 0.15, "allowed fractional allocs/op increase")
	evalTol := fs.Float64("eval-tol", 0.25, "allowed fractional objective-evaluation increase")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *current == "" {
		return fmt.Errorf("-current is required")
	}
	base, err := load(*baseline)
	if err != nil {
		return err
	}
	cur, err := load(*current)
	if err != nil {
		return err
	}
	warnEnvMismatch(base, cur)
	curByName := make(map[string]benchResult, len(cur.Results))
	for _, r := range cur.Results {
		curByName[r.Name] = r
	}
	baseNames := make(map[string]bool, len(base.Results))

	t := &report.Table{
		Title:   fmt.Sprintf("Benchmark diff — baseline %s (%s) vs current %s (%s)", *baseline, base.Go, *current, cur.Go),
		Headers: []string{"Benchmark", "ns/op", "Δ%", "allocs/op", "Δ%", "evals", "Δ%", "verdict"},
	}
	failures := 0
	var missing []string
	logRatioSum, ratioCount := 0.0, 0
	for _, b := range base.Results {
		baseNames[b.Name] = true
		c, ok := curByName[b.Name]
		if !ok {
			t.AddRow(b.Name, "-", "-", "-", "-", "-", "-", "MISSING")
			failures++
			missing = append(missing, b.Name)
			continue
		}
		if b.NsPerOp > 0 && c.NsPerOp > 0 {
			logRatioSum += math.Log(c.NsPerOp / b.NsPerOp)
			ratioCount++
		}
		verdict := "ok"
		dTime := frac(c.NsPerOp, b.NsPerOp)
		dAlloc := frac(float64(c.AllocsPerOp), float64(b.AllocsPerOp))
		dEval := frac(float64(c.Evaluations), float64(b.Evaluations))
		if dTime > *timeTol {
			verdict = "SLOWER"
			failures++
		} else if dAlloc > *allocTol {
			verdict = "MORE ALLOCS"
			failures++
		} else if dEval > *evalTol {
			verdict = "MORE EVALS"
			failures++
		}
		t.AddRow(b.Name,
			report.Float(c.NsPerOp, 0), pct(dTime),
			fmt.Sprint(c.AllocsPerOp), pct(dAlloc),
			fmt.Sprint(c.Evaluations), pct(dEval),
			verdict)
	}
	for _, c := range cur.Results {
		if !baseNames[c.Name] {
			t.AddRow(c.Name, report.Float(c.NsPerOp, 0), "-",
				fmt.Sprint(c.AllocsPerOp), "-", fmt.Sprint(c.Evaluations), "-", "new")
		}
	}
	if _, err := t.WriteTo(os.Stdout); err != nil {
		return err
	}
	// The geometric mean of the per-benchmark ns/op ratios is the one
	// drift number comparable across runs: 1.00x means no aggregate
	// movement regardless of which individual benchmarks wobbled.
	geomean := "n/a"
	if ratioCount > 0 {
		geomean = fmt.Sprintf("%.3fx", math.Exp(logRatioSum/float64(ratioCount)))
	}
	if failures > 0 {
		if len(missing) > 0 {
			return fmt.Errorf("%d benchmark(s) failed the gate (geomean ns/op ratio %s); baseline entries missing from the current run: %s — coverage was lost, re-run paperbench with the full suite or refresh the baseline",
				failures, geomean, strings.Join(missing, ", "))
		}
		return fmt.Errorf("%d benchmark(s) regressed beyond tolerance (geomean ns/op ratio %s; time %+.0f%%, allocs %+.0f%%, evals %+.0f%%)",
			failures, geomean, *timeTol*100, *allocTol*100, *evalTol*100)
	}
	fmt.Printf("\nall %d benchmarks within tolerance, geomean ns/op ratio %s\n", len(base.Results), geomean)
	return nil
}

// frac returns the fractional increase of cur over base; a zero or
// negative base compares only for increases from nothing (any positive
// cur over a zero base counts as +inf-like 1e9, a sentinel the tolerances
// always catch — a benchmark that allocated nothing must stay that way).
func frac(cur, base float64) float64 {
	if base <= 0 {
		if cur <= 0 {
			return 0
		}
		return 1e9
	}
	return cur/base - 1
}

func pct(f float64) string {
	if f >= 1e9 {
		return "+inf"
	}
	return fmt.Sprintf("%+.1f%%", f*100)
}

func load(path string) (*benchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f benchFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(f.Results) == 0 {
		return nil, fmt.Errorf("%s: no benchmark results", path)
	}
	return &f, nil
}
