// Command flowdim dimensions the other two flow-control families the
// thesis's Chapter 5 points at — local (per-node buffer limits) and
// global (isarithmic permit pool) — on top of already-chosen end-to-end
// windows:
//
//	flowdim -example canada2 -windows 4,4 -mode buffers -eps 0.01
//	flowdim -example canada2 -mode isarithmic -max-permits 30
//	flowdim -example canada2 -windows 3,3 -mode quantiles -eps 0.05
//
// Modes:
//
//	buffers    — per-node storage limits K_i from simulated occupancy
//	             quantiles (P(occupancy > K) <= eps)
//	isarithmic — permit pool size maximising simulated power
//	quantiles  — per-channel queue-length quantiles from the exact
//	             product-form marginals (analytic counterpart)
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/sim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "flowdim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("flowdim", flag.ContinueOnError)
	spec := fs.String("spec", "", "JSON network spec file")
	example := fs.String("example", "", "built-in example: canada2, canada4, tandemN")
	rates := fs.String("rates", "", "override class arrival rates, e.g. 20,20")
	windows := fs.String("windows", "", "end-to-end windows held fixed, e.g. 4,4")
	mode := fs.String("mode", "buffers", "what to dimension: buffers, isarithmic, quantiles")
	eps := fs.Float64("eps", 0.01, "target exceedance probability for buffers/quantiles")
	maxPermits := fs.Int("max-permits", 40, "isarithmic search upper bound")
	duration := fs.Float64("duration", 2000, "simulated seconds per evaluation")
	warmup := fs.Float64("warmup", 200, "warmup seconds")
	seed := fs.Uint64("seed", 1, "random seed")
	reps := fs.Int("reps", 1, "independent replications per simulation")
	workers := fs.Int("workers", 0, "goroutines for replications (0 = one per replication)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rateVec, err := cliutil.ParseRates(*rates)
	if err != nil {
		return err
	}
	n, err := cliutil.LoadNetwork(*spec, *example, rateVec)
	if err != nil {
		return err
	}
	wv, err := cliutil.ParseWindows(*windows)
	if err != nil {
		return err
	}
	simCfg := sim.Config{Duration: *duration, Warmup: *warmup, Seed: *seed, Windows: wv}
	ext := core.ExtOptions{Reps: *reps, Workers: *workers}

	switch *mode {
	case "buffers":
		sizes, err := core.SizeBuffers(n, wv, *eps, simCfg, ext)
		if err != nil {
			return err
		}
		t := &report.Table{
			Title:   fmt.Sprintf("Node buffer limits K_i with P(occupancy > K) <= %g", *eps),
			Headers: []string{"Node", "K"},
		}
		for i, k := range sizes {
			t.AddRow(n.Nodes[i].Name, fmt.Sprint(k))
		}
		_, err = t.WriteTo(os.Stdout)
		return err
	case "isarithmic":
		res, err := core.DimensionIsarithmic(n, simCfg, *maxPermits, ext)
		if err != nil {
			return err
		}
		fmt.Printf("optimal permit pool: %d (simulated power %s ± %s over %d replications, %d candidates)\n",
			res.Permits, report.Float(res.Power, 1), report.Float(res.PowerCI95, 1), res.Reps, res.Evaluations)
		return nil
	case "quantiles":
		q, err := core.ChannelQueueQuantiles(n, wv, *eps)
		if err != nil {
			return err
		}
		t := &report.Table{
			Title:   fmt.Sprintf("Channel queue-length quantiles with P(N > k) <= %g (exact product form)", *eps),
			Headers: []string{"Channel", "k"},
		}
		for l, k := range q {
			t.AddRow(n.Channels[l].Name, fmt.Sprint(k))
		}
		_, err = t.WriteTo(os.Stdout)
		return err
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
}
