package main

import "testing"

func TestRunBuffers(t *testing.T) {
	if err := run([]string{"-example", "canada2", "-windows", "3,3",
		"-mode", "buffers", "-duration", "300", "-warmup", "30"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunIsarithmic(t *testing.T) {
	if err := run([]string{"-example", "canada2", "-mode", "isarithmic",
		"-max-permits", "20", "-duration", "200", "-warmup", "20"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunQuantiles(t *testing.T) {
	if err := run([]string{"-example", "canada2", "-windows", "3,3",
		"-mode", "quantiles", "-eps", "0.05"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{},
		{"-example", "canada2", "-mode", "astrology"},
		{"-example", "canada2", "-mode", "buffers", "-eps", "2"},
		{"-example", "canada2", "-windows", "xx"},
		{"-example", "canada2", "-rates", "xx"},
		{"-undefined"},
	}
	for i, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("case %d (%v): expected error", i, args)
		}
	}
}
