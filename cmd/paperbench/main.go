// Command paperbench regenerates the thesis's evaluation: every table and
// figure of Chapter 4.5 plus the validation and ablation studies.
//
//	paperbench -all
//	paperbench -table 4.7
//	paperbench -table 4.8
//	paperbench -table 4.12
//	paperbench -figure 4.9
//	paperbench -figure 2.1
//	paperbench -validate
//	paperbench -ablation
//
// Outputs are text tables and ASCII charts in the same layout as the
// thesis; EXPERIMENTS.md records the paper-vs-measured comparison.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "paperbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("paperbench", flag.ContinueOnError)
	table := fs.String("table", "", "regenerate a table: 4.7, 4.8, 4.12")
	figure := fs.String("figure", "", "regenerate a figure: 4.9, 2.1")
	validate := fs.Bool("validate", false, "cross-solver validation table")
	ablation := fs.Bool("ablation", false, "WINDIM design ablation table")
	scaling := fs.Bool("scaling", false, "larger-network (10-node ARPANET mesh) study")
	robustness := fs.Bool("robustness", false, "assumption-breaking robustness study (simulated)")
	robustdim := fs.Bool("robustdim", false, "nominal vs minimax-robust window dimensioning over a scenario set")
	sensitivity := fs.Bool("sensitivity", false, "static-vs-retuned window sensitivity study")
	all := fs.Bool("all", false, "run everything")
	evaluator := fs.String("evaluator", "sigma", "candidate evaluator for the tables: sigma, schweitzer, exact")
	workers := fs.Int("workers", 1, "parallel candidate evaluations for the dimensioning runs")
	jsonOut := fs.String("json", "", "run the benchmark suite and write machine-readable results to this file (- for stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts := core.Options{Workers: *workers}
	switch *evaluator {
	case "sigma":
		opts.Evaluator = core.EvalSigmaMVA
	case "schweitzer":
		opts.Evaluator = core.EvalSchweitzerMVA
	case "exact":
		opts.Evaluator = core.EvalExactMVA
	default:
		return fmt.Errorf("unknown evaluator %q", *evaluator)
	}
	if *jsonOut != "" {
		return runJSONBench(*jsonOut, opts)
	}
	ran := false
	runIf := func(cond bool, f func() error) error {
		if !cond {
			return nil
		}
		ran = true
		if err := f(); err != nil {
			return err
		}
		fmt.Println()
		return nil
	}
	if err := runIf(*all || *table == "4.7", func() error {
		rows, err := experiments.Table47(opts)
		if err != nil {
			return err
		}
		return experiments.RenderTable47(os.Stdout, rows)
	}); err != nil {
		return err
	}
	if err := runIf(*all || *table == "4.8", func() error {
		rows, err := experiments.Table48(opts)
		if err != nil {
			return err
		}
		return experiments.RenderTable48(os.Stdout, rows)
	}); err != nil {
		return err
	}
	if err := runIf(*all || *figure == "4.9", func() error {
		series, err := experiments.Fig49(opts)
		if err != nil {
			return err
		}
		return experiments.RenderFig49(os.Stdout, series)
	}); err != nil {
		return err
	}
	if err := runIf(*all || *table == "4.12", func() error {
		rows, err := experiments.Table412(opts)
		if err != nil {
			return err
		}
		return experiments.RenderTable412(os.Stdout, rows)
	}); err != nil {
		return err
	}
	if err := runIf(*all || *figure == "2.1", func() error {
		uncontrolled, err := experiments.Fig21(experiments.Fig21Config{Window: 0, Buffers: 32, Seed: 5})
		if err != nil {
			return err
		}
		controlled, err := experiments.Fig21(experiments.Fig21Config{Window: 3, Buffers: 32, Seed: 5})
		if err != nil {
			return err
		}
		return experiments.RenderFig21(os.Stdout, uncontrolled, controlled)
	}); err != nil {
		return err
	}
	if err := runIf(*all || *validate, func() error {
		rows, err := experiments.Validate(20, 3)
		if err != nil {
			return err
		}
		return experiments.RenderValidation(os.Stdout, 20, rows)
	}); err != nil {
		return err
	}
	if err := runIf(*all || *ablation, func() error {
		s := [4]float64{6, 6, 6, 12}
		rows, err := experiments.Ablation(s)
		if err != nil {
			return err
		}
		return experiments.RenderAblation(os.Stdout, s, rows)
	}); err != nil {
		return err
	}
	if err := runIf(*all || *scaling, func() error {
		r, err := experiments.Scaling(8, 3)
		if err != nil {
			return err
		}
		return experiments.RenderScaling(os.Stdout, 8, r)
	}); err != nil {
		return err
	}
	if err := runIf(*all || *robustness, func() error {
		rows, err := experiments.Robustness(3, 3)
		if err != nil {
			return err
		}
		return experiments.RenderRobustness(os.Stdout, rows)
	}); err != nil {
		return err
	}
	if err := runIf(*all || *robustdim, func() error {
		res, err := experiments.RobustDimensioning(3, 3)
		if err != nil {
			return err
		}
		return experiments.RenderRobustDimensioning(os.Stdout, res)
	}); err != nil {
		return err
	}
	if err := runIf(*all || *sensitivity, func() error {
		static, rows, err := experiments.Sensitivity(20, experiments.DefaultSensitivitySweep, opts)
		if err != nil {
			return err
		}
		return experiments.RenderSensitivity(os.Stdout, 20, static, rows)
	}); err != nil {
		return err
	}
	if !ran {
		return fmt.Errorf("nothing selected; use -all or see -h")
	}
	return nil
}
