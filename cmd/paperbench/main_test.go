package main

import "testing"

func TestRunIndividualSelections(t *testing.T) {
	// The cheap selections run for real; 4.9/4.12/-all are covered by the
	// root benchmarks and the experiments package tests.
	for _, args := range [][]string{
		{"-table", "4.7"},
		{"-table", "4.8"},
		{"-validate"},
	} {
		if err := run(args); err != nil {
			t.Fatalf("%v: %v", args, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("expected nothing-selected error")
	}
	if err := run([]string{"-evaluator", "crystal"}); err == nil {
		t.Error("expected evaluator error")
	}
	if err := run([]string{"-flagless"}); err == nil {
		t.Error("expected flag error")
	}
}
