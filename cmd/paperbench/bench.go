package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/netmodel"
	"repro/internal/numeric"
	"repro/internal/sim"
	"repro/internal/topo"
)

// BenchResult is one entry of the -json output: the machine-readable perf
// record future PRs diff against BENCH_baseline.json.
type BenchResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// Evaluations counts the objective evaluations one run of the
	// benchmarked operation performs (0 where not applicable).
	Evaluations int `json:"evaluations"`
}

type benchFile struct {
	Go string `json:"go"`
	// CPU and Gomaxprocs record the machine the baseline was measured on;
	// benchdiff warns (without failing) when they differ from the current
	// run, since wall-clock bands across different hardware mean little.
	CPU        string        `json:"cpu,omitempty"`
	Gomaxprocs int           `json:"gomaxprocs,omitempty"`
	Workers    int           `json:"workers"`
	Results    []BenchResult `json:"results"`
}

// cpuModel names the measuring CPU: the first "model name" of
// /proc/cpuinfo where available, the architecture otherwise.
func cpuModel() string {
	if data, err := os.ReadFile("/proc/cpuinfo"); err == nil {
		for _, line := range strings.Split(string(data), "\n") {
			if rest, ok := strings.CutPrefix(line, "model name"); ok {
				if _, v, ok := strings.Cut(rest, ":"); ok {
					return strings.TrimSpace(v)
				}
			}
		}
	}
	return runtime.GOARCH
}

// robustBenchScenarios is the fixed three-scenario set behind the
// DimensionRobust benchmark entry: nominal, a degraded shared trunk, and
// a surged short class.
func robustBenchScenarios() []core.Scenario {
	capScale := []float64{1, 1, 1, 1, 1, 1, 1}
	capScale[topo.ChWT] = 0.6
	return []core.Scenario{
		{Name: "nominal", Weight: 0.6},
		{Name: "trunk-degraded", CapacityScale: capScale, Weight: 0.2},
		{Name: "class4-surge", RateScale: []float64{1, 1, 1, 2}, Weight: 0.2},
	}
}

// runJSONBench times the representative WINDIM workloads and writes the
// results as JSON to path ("-" for stdout).
func runJSONBench(path string, opts core.Options) error {
	canada2 := topo.Canada2Class(20, 20)
	canada4 := topo.Canada4Class(9.957, 4.419, 7.656, 7.968)
	cold := opts
	cold.ColdStart = true
	serial := opts
	serial.Workers = 1
	parallel := opts
	if parallel.Workers < 2 {
		parallel.Workers = 4
	}
	// The exact-oracle pair: the same exhaustive box over Canada4Class
	// solved exactly per candidate (the baseline the thesis-era code paid)
	// versus served from one shared convolution lattice — the tentpole's
	// headline speedup.
	exhaustiveExact := serial
	exhaustiveExact.Evaluator = core.EvalExactMVA
	exhaustiveExact.Search = core.ExhaustiveSearch
	exhaustiveExact.MaxWindow = 7
	exhaustiveExactEngine := exhaustiveExact
	exhaustiveExactEngine.ExactEngine = true

	// evals runs a dimensioning once, purely to report the objective
	// evaluation count next to its timing.
	evals := func(res *core.Result, err error) (int, error) {
		if err != nil {
			return 0, err
		}
		return res.Search.Evaluations, nil
	}
	sumTable47 := func() (int, error) {
		rows, err := experiments.Table47(opts)
		if err != nil {
			return 0, err
		}
		n := 0
		for _, r := range rows {
			n += r.Evaluations
		}
		return n, nil
	}
	sumTable48 := func() (int, error) {
		rows, err := experiments.Table48(opts)
		if err != nil {
			return 0, err
		}
		n := 0
		for _, r := range rows {
			n += r.Evaluations
		}
		return n, nil
	}

	suite := []struct {
		name  string
		evals func() (int, error)
		body  func() error
	}{
		{"Table47", sumTable47, func() error {
			_, err := experiments.Table47(opts)
			return err
		}},
		{"Table48", sumTable48, func() error {
			_, err := experiments.Table48(opts)
			return err
		}},
		{"EvaluateEngine/canada4", nil, nil}, // filled below: needs shared engine state
		{"DimensionCold/canada2", func() (int, error) {
			return evals(core.Dimension(canada2, cold))
		}, func() error {
			_, err := core.Dimension(canada2, cold)
			return err
		}},
		{"DimensionWarm/canada2", func() (int, error) {
			return evals(core.Dimension(canada2, serial))
		}, func() error {
			_, err := core.Dimension(canada2, serial)
			return err
		}},
		{"DimensionParallel/canada4", func() (int, error) {
			return evals(core.Dimension(canada4, parallel))
		}, func() error {
			_, err := core.Dimension(canada4, parallel)
			return err
		}},
		{"robust_dimension", func() (int, error) {
			res, err := core.DimensionRobust(canada4, robustBenchScenarios(), core.RobustMinimax, serial)
			if err != nil {
				return 0, err
			}
			return res.Search.Evaluations, nil
		}, func() error {
			_, err := core.DimensionRobust(canada4, robustBenchScenarios(), core.RobustMinimax, serial)
			return err
		}},
		{"exact_engine", nil, nil}, // filled below: evals inside a prebuilt lattice
		{"exhaustive_exact", func() (int, error) {
			return evals(core.Dimension(canada4, exhaustiveExactEngine))
		}, func() error {
			_, err := core.Dimension(canada4, exhaustiveExactEngine)
			return err
		}},
		{"exhaustive_exact_solve", func() (int, error) {
			return evals(core.Dimension(canada4, exhaustiveExact))
		}, func() error {
			_, err := core.Dimension(canada4, exhaustiveExact)
			return err
		}},
	}
	// The engine micro-benchmark reuses one engine across iterations —
	// that is the steady state it exists to measure.
	eng, err := core.NewEngine(canada4, opts)
	if err != nil {
		return err
	}
	w := numeric.IntVector{4, 4, 3, 2}
	suite[2].body = func() error {
		_, err := eng.ObjectiveValue(w, opts.Objective)
		return err
	}
	// exact_engine measures a candidate evaluation INSIDE an already-built
	// convolution lattice — the steady state of an engine-backed search,
	// which must cost slice reads, not a recursion over the box.
	exactSteady := serial
	exactSteady.Evaluator = core.EvalExactMVA
	exactSteady.ExactEngine = true
	exactEng, err := core.NewEngine(canada2, exactSteady)
	if err != nil {
		return err
	}
	if _, err := exactEng.ObjectiveValue(numeric.IntVector{6, 6}, exactSteady.Objective); err != nil {
		return err // builds the (6,6) box once; the benchmark stays inside it
	}
	wInside := numeric.IntVector{4, 5}
	suite[7].body = func() error {
		_, err := exactEng.ObjectiveValue(wInside, exactSteady.Objective)
		return err
	}

	// amva_sparse: one warm engine candidate evaluation (the dimensioning
	// inner loop) on networks of increasing station count but fixed route
	// lengths. With the sparse station-major solver the ns/op column grows
	// with total route length, not station count — mesh64 vs mesh256
	// quadruples the stations at an identical chain count.
	sparseNets := []struct {
		name string
		n    *netmodel.Network
		err  error
	}{
		{name: "amva_sparse/canada4", n: canada4},
		{}, {}, {},
	}
	sparseNets[1].n, sparseNets[1].err = topo.Clos(12, 6, 48, topo.GenConfig{Seed: 1})
	sparseNets[1].name = "amva_sparse/clos12x6"
	sparseNets[2].n, sparseNets[2].err = topo.Mesh(64, 64, 48, topo.GenConfig{Seed: 1})
	sparseNets[2].name = "amva_sparse/mesh64"
	sparseNets[3].n, sparseNets[3].err = topo.Mesh(256, 256, 48, topo.GenConfig{Seed: 1})
	sparseNets[3].name = "amva_sparse/mesh256"
	for _, sn := range sparseNets {
		if sn.err != nil {
			return fmt.Errorf("bench %s: %w", sn.name, sn.err)
		}
		sparseEng, err := core.NewEngine(sn.n, serial)
		if err != nil {
			return fmt.Errorf("bench %s: %w", sn.name, err)
		}
		hw := sn.n.HopVector()
		if _, err := sparseEng.ObjectiveValue(hw, serial.Objective); err != nil {
			return fmt.Errorf("bench %s: %w", sn.name, err)
		}
		sparseEng.Commit(hw) // measure the warm steady state of a search
		suite = append(suite, struct {
			name  string
			evals func() (int, error)
			body  func() error
		}{sn.name, nil, func() error {
			_, err := sparseEng.ObjectiveValue(hw, serial.Objective)
			return err
		}})
	}

	// sim_event: one full simulator replication on the Fig. 4.6 Canada-4
	// workload through a reused Runner — the zero-alloc steady state
	// RunReplications lives in. Evaluations records the executed event
	// count, so benchdiff can derive ns/event and catch event-count drift
	// (a scheduler or model change) separately from wall-clock noise.
	simCfg := sim.Config{
		Windows:  numeric.IntVector{4, 4, 3, 2},
		Duration: 200,
		Warmup:   20,
	}
	simRunner, err := sim.NewRunner(canada4, simCfg)
	if err != nil {
		return err
	}
	simEvents := 0
	if res, err := simRunner.Run(1); err != nil {
		return err
	} else {
		simEvents = int(res.Events)
	}
	suite = append(suite, struct {
		name  string
		evals func() (int, error)
		body  func() error
	}{"sim_event/canada4", func() (int, error) { return simEvents, nil }, func() error {
		_, err := simRunner.Run(1)
		return err
	}})

	// sim_replications: the end-to-end batch path — replications with a
	// fault schedule (outage, degradation, surge) through RunReplications'
	// pooled per-worker runners. Evaluations is the total event count.
	repCfg := sim.Config{
		Windows:  numeric.IntVector{4, 4},
		Duration: 300,
		Warmup:   30,
		Faults: &sim.FaultSpec{
			Outages:      []sim.Outage{{Channel: 1, Start: 60, End: 80}},
			Degradations: []sim.Degradation{{Channel: 0, Start: 100, End: 160, Factor: 0.5}},
			Surges:       []sim.Surge{{Class: 1, Start: 120, End: 200, Factor: 2.5}},
		},
	}
	const simReps = 4
	repEvents := func() (int, error) {
		batch, err := sim.RunReplications(context.Background(), canada2, repCfg, simReps, 1)
		if err != nil {
			return 0, err
		}
		n := int64(0)
		for i := range batch.Reps {
			if r := batch.Reps[i].Result; r != nil {
				n += r.Events
			}
		}
		return int(n), nil
	}
	suite = append(suite, struct {
		name  string
		evals func() (int, error)
		body  func() error
	}{"sim_replications/canada2", repEvents, func() error {
		_, err := sim.RunReplications(context.Background(), canada2, repCfg, simReps, 1)
		return err
	}})

	out := benchFile{
		Go:         runtime.Version(),
		CPU:        cpuModel(),
		Gomaxprocs: runtime.GOMAXPROCS(0),
		Workers:    parallel.Workers,
	}
	for _, s := range suite {
		var benchErr error
		body := s.body
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := body(); err != nil {
					benchErr = err
					b.FailNow()
				}
			}
		})
		if benchErr != nil {
			return fmt.Errorf("bench %s: %w", s.name, benchErr)
		}
		rec := BenchResult{
			Name:        s.name,
			NsPerOp:     float64(r.NsPerOp()),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		if s.evals != nil {
			n, err := s.evals()
			if err != nil {
				return fmt.Errorf("bench %s evaluations: %w", s.name, err)
			}
			rec.Evaluations = n
		}
		out.Results = append(out.Results, rec)
		fmt.Fprintf(os.Stderr, "%-28s %12.0f ns/op %8d allocs/op %6d evals\n",
			rec.Name, rec.NsPerOp, rec.AllocsPerOp, rec.Evaluations)
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
