package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/shard"
)

// TestMain mirrors main's worker-mode dispatch: the coordinator under
// test re-execs this test binary with -shard-worker, exactly as the
// installed windim-shard binary re-execs itself.
func TestMain(m *testing.M) {
	if len(os.Args) == 2 && os.Args[1] == "-shard-worker" {
		os.Exit(shard.WorkerMain())
	}
	os.Exit(m.Run())
}

func TestRunFlagErrors(t *testing.T) {
	if err := run([]string{"-no-such-flag"}); err == nil {
		t.Error("unknown flag accepted")
	}
	if err := run([]string{"-example", "canada2"}); err == nil {
		t.Error("missing -spool accepted")
	}
	spool := t.TempDir()
	if err := run([]string{"-example", "canada2", "-spool", spool, "-evaluator", "psychic"}); err == nil {
		t.Error("unknown evaluator accepted")
	}
	if err := run([]string{"-example", "canada2", "-spool", spool, "-objective", "vibes"}); err == nil {
		t.Error("unknown objective accepted")
	}
	if err := run([]string{"-spool", spool}); err == nil {
		t.Error("missing network accepted")
	}
}

func TestRunShardedSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	spool := filepath.Join(t.TempDir(), "spool")
	events := filepath.Join(t.TempDir(), "events.ndjson")
	args := []string{
		"-example", "canada2", "-rates", "20,20",
		"-max-window", "6", "-spool", spool,
		"-procs", "2", "-slabs", "3",
		"-progress", events,
	}
	if err := run(args); err != nil {
		t.Fatalf("run: %v", err)
	}
	if data, err := os.ReadFile(events); err != nil || len(data) == 0 {
		t.Fatalf("progress stream empty: %v", err)
	}
	// A second run over the same spool recovers every slab from its
	// durable result — the resume path end to end through the CLI.
	if err := run(args); err != nil {
		t.Fatalf("resumed run: %v", err)
	}
}
