// Command windim-shard runs the fault-tolerant sharded exhaustive
// search: it slab-partitions the window box along one class axis,
// launches worker processes over a fsynced spool directory, supervises
// them (lease-fenced slab ownership, heartbeats, deadlines,
// backoff-paced retries, per-host health with blacklisting, quarantine
// of torn or stale-epoch results, graceful degradation of permanently
// lost slabs and hosts), and merges the per-slab optima into a result
// bit-identical to the single-process `windim -search exhaustive` run.
//
// Usage:
//
//	windim-shard -example canada2 -rates 20,20 -max-window 8 -spool /tmp/spool
//	windim-shard -spec network.json -procs 4 -slabs 8 -evaluator exact -exact-engine
//	windim-shard -example canada2 -max-window 6 -spool s -progress events.ndjson
//	windim-shard -example canada2 -max-window 6 -spool /mnt/nfs/spool \
//	    -transport ssh -hosts node1,node2 -max-hosts-lost 1
//
// Transports. -transport local (default) runs workers as children of
// this process. -transport ssh launches them through the system ssh
// client on the -hosts fleet; the spool must resolve to the same shared
// storage on every host, and the worker binary must exist at the same
// path remotely. -transport fake simulates a multi-host fleet
// in-process (workers are goroutines) for chaos tests and CI smokes;
// the SHARD_FAKE_CHAOS environment variable ("hostdown:slab1",
// "partition:slab2") injects machine loss and network partitions keyed
// on durable spool state.
//
// By default the coordinator re-execs its own binary in worker mode
// (the hidden -shard-worker flag); -worker-cmd points at a different
// worker binary, e.g. `windim -shard-worker`. Re-running over the same
// spool resumes: finished slabs are recovered from their durable
// results without relaunch, slabs whose lease is still live are adopted
// rather than double-launched, and interrupted slabs resume from their
// delta checkpoints. SIGTERM drains — every reachable worker
// checkpoints its slab before exit — so the next run picks up where
// this one stopped.
//
// The SHARD_FAULT environment variable ("crash:slab2,hang:slab0",
// "partition:slab1", "zombie:slab0") is a fault-injection hook honoured
// by worker mode; the chaos tests and the CI chaos smoke jobs use it to
// prove crash recovery, lease fencing and merge determinism.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/shard"
	"repro/internal/shard/transport"
)

func main() {
	if len(os.Args) == 2 && os.Args[1] == "-shard-worker" {
		os.Exit(shard.WorkerMain())
	}
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "windim-shard:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("windim-shard", flag.ContinueOnError)
	spec := fs.String("spec", "", "JSON network spec file")
	example := fs.String("example", "", "built-in example: canada2, canada4, tandemN")
	rates := fs.String("rates", "", "override class arrival rates, e.g. 20,20")
	evaluator := fs.String("evaluator", "sigma", "candidate evaluator: sigma, schweitzer, linearizer, exact")
	objective := fs.String("objective", "power", "criterion: power, min-class, sum-class")
	maxWindow := fs.Int("max-window", 0, "upper bound on every window (0 = default)")
	workers := fs.Int("workers", 1, "search goroutines inside each worker process")
	noFallback := fs.Bool("no-fallback", false, "disable the resilient solver chain in the workers")
	exactEngine := fs.Bool("exact-engine", false, "serve exact evaluations from a slab-bounded convolution lattice per worker")
	spool := fs.String("spool", "", "spool directory for manifest, leases, slab checkpoints and results (required; reuse to resume)")
	transportName := fs.String("transport", "local", "worker transport: local, ssh, fake")
	hosts := fs.String("hosts", "", "comma-separated worker hosts (ssh and fake transports)")
	sshClient := fs.String("ssh", "ssh", "ssh client binary (ssh transport)")
	sshOpts := fs.String("ssh-opts", "", "extra ssh client options, space-separated, e.g. '-p 2222' (ssh transport)")
	procs := fs.Int("procs", 2, "concurrently running worker processes")
	slabs := fs.Int("slabs", 0, "slab count (0 = 2x procs, clamped to the axis width)")
	axis := fs.Int("axis", -1, "class axis to partition (-1 = widest)")
	retries := fs.Int("retries", 2, "relaunches per slab beyond the first attempt before it is lost")
	allowLost := fs.Int("allow-lost", 0, "tolerate up to this many lost slabs, degrading gracefully with recorded reasons")
	maxHostsLost := fs.Int("max-hosts-lost", 0, "tolerate up to this many permanently lost hosts, redistributing their slabs")
	leaseTTL := fs.Duration("lease-ttl", shard.DefaultLeaseTTL, "slab lease renewal deadline (bounds the zombie window and adoption wait)")
	slabDeadline := fs.Duration("slab-deadline", 2*time.Minute, "per-stride progress deadline before a worker is presumed hung and its slab reassigned")
	killGrace := fs.Duration("kill-grace", 10*time.Second, "how long a kill waits for the worker's exit before the attempt is superseded")
	workerCmd := fs.String("worker-cmd", "", "worker command line (default: this binary with -shard-worker)")
	progress := fs.String("progress", "", "append the NDJSON progress event stream to this file ('-' = stderr)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *spool == "" {
		return fmt.Errorf("-spool is required")
	}
	rateVec, err := cliutil.ParseRates(*rates)
	if err != nil {
		return err
	}
	n, err := cliutil.LoadNetwork(*spec, *example, rateVec)
	if err != nil {
		return err
	}

	copts := core.Options{
		Search:          core.ExhaustiveSearch,
		MaxWindow:       *maxWindow,
		Workers:         *workers,
		DisableFallback: *noFallback,
		ExactEngine:     *exactEngine,
	}
	switch *evaluator {
	case "sigma":
		copts.Evaluator = core.EvalSigmaMVA
	case "schweitzer":
		copts.Evaluator = core.EvalSchweitzerMVA
	case "linearizer":
		copts.Evaluator = core.EvalLinearizerMVA
	case "exact":
		copts.Evaluator = core.EvalExactMVA
	default:
		return fmt.Errorf("unknown evaluator %q", *evaluator)
	}
	switch *objective {
	case "power":
		copts.Objective = core.ObjNetworkPower
	case "min-class":
		copts.Objective = core.ObjMinClassPower
	case "sum-class":
		copts.Objective = core.ObjSumClassPower
	default:
		return fmt.Errorf("unknown objective %q", *objective)
	}

	argv := []string{os.Args[0], "-shard-worker"}
	if *workerCmd != "" {
		argv = strings.Fields(*workerCmd)
	}

	tr, err := buildTransport(*transportName, *hosts, *sshClient, *sshOpts)
	if err != nil {
		return err
	}

	var progW io.Writer
	switch *progress {
	case "":
	case "-":
		progW = os.Stderr
	default:
		f, err := os.OpenFile(*progress, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		defer f.Close()
		progW = f
	}

	// SIGTERM/Ctrl-C drains: every reachable worker checkpoints its slab
	// before exit, and re-running over the spool resumes the search.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	res, err := shard.Run(n, copts, shard.Options{
		Dir:          *spool,
		WorkerArgv:   argv,
		Transport:    tr,
		Procs:        *procs,
		Slabs:        *slabs,
		Axis:         *axis,
		MaxRetries:   *retries,
		AllowLost:    *allowLost,
		MaxHostsLost: *maxHostsLost,
		LeaseTTL:     *leaseTTL,
		SlabDeadline: *slabDeadline,
		KillGrace:    *killGrace,
		Progress:     progW,
		Context:      ctx,
		Logf: func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", a...)
		},
	})
	if err != nil {
		return err
	}

	fmt.Printf("network: %s (%d nodes, %d channels, %d classes)\n",
		n.Name, len(n.Nodes), len(n.Channels), len(n.Classes))
	fmt.Printf("evaluator: %v, search: sharded exhaustive (%d slabs on axis %d)\n\n",
		copts.Evaluator, res.Slabs, res.Axis)
	fmt.Printf("optimal windows : %s\n", report.Windows(res.Windows))
	fmt.Printf("network power   : %s (throughput %s msg/s, delay %s s)\n",
		report.Float(res.Metrics.Power, 1),
		report.Float(res.Metrics.Throughput, 2),
		report.Float(res.Metrics.Delay, 4))
	fmt.Printf("\nsearch: %d objective evaluations, %d non-converged candidates\n",
		res.Evaluations, res.NonConverged)
	fmt.Printf("shards: %d recovered, %d adopted, %d retries, %d reassigned, %d superseded, %d fenced, %d quarantined\n",
		res.Recovered, res.Adopted, res.Retries, res.Reassigned, res.Superseded, res.Fenced, res.Quarantined)
	for _, d := range res.Degraded {
		fmt.Printf("degraded slab %d: %s\n", d.Slab, d.Reason)
	}
	for _, h := range res.HostsLost {
		fmt.Printf("lost host %s: slabs redistributed\n", h)
	}
	return nil
}

// buildTransport resolves the -transport/-hosts flags. nil means the
// local transport (the shard package's default).
func buildTransport(name, hosts, sshClient, sshOpts string) (transport.Transport, error) {
	var fleet []string
	for _, h := range strings.Split(hosts, ",") {
		if h = strings.TrimSpace(h); h != "" {
			fleet = append(fleet, h)
		}
	}
	switch name {
	case "local":
		if len(fleet) > 0 {
			return nil, fmt.Errorf("-hosts only applies to the ssh and fake transports")
		}
		return nil, nil
	case "ssh":
		if len(fleet) == 0 {
			return nil, fmt.Errorf("-transport ssh requires -hosts")
		}
		return transport.NewSSH(fleet, sshClient, strings.Fields(sshOpts)...)
	case "fake":
		if len(fleet) == 0 {
			fleet = []string{"sim0", "sim1"}
		}
		return transport.NewFake(fleet, shard.WorkerEnvMain, os.Getenv(transport.ChaosEnv))
	}
	return nil, fmt.Errorf("unknown transport %q (local, ssh, fake)", name)
}
