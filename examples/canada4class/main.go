// The thesis's second study (Fig. 4.10, Table 4.12): the 4-class network
// with heavy inter-class interaction, where Kleinrock's hop-count rule
// (4, 4, 3, 1) breaks down and WINDIM's search pays off.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	rows := [][4]float64{
		{6, 6, 6, 12}, // rates proportional to bottleneck capacities
		{12.5, 12.5, 12.5, 25},
		{20, 20, 20, 40},
		{17.61, 3.56, 3, 5.83}, // skewed rates, same total as row 1
	}
	fmt.Println("S1..S4                     E_opt       P_op   P_hoprule   gain")
	for _, s := range rows {
		network := repro.Canada4Class(s[0], s[1], s[2], s[3])
		res, err := repro.Dimension(network, repro.DimensionOptions{})
		if err != nil {
			log.Fatal(err)
		}
		base, err := repro.Evaluate(network, repro.KleinrockWindows(network), repro.DimensionOptions{})
		if err != nil {
			log.Fatal(err)
		}
		rates := fmt.Sprintf("%g, %g, %g, %g", s[0], s[1], s[2], s[3])
		fmt.Printf("%-25s  %-10v  %5.0f  %9.0f   %.2fx\n",
			rates, res.Windows, res.Metrics.Power, base.Power, res.Metrics.Power/base.Power)
	}

	fmt.Println()
	fmt.Println("Why the rule fails: class 4 crosses the one channel (WT) that")
	fmt.Println("classes 1 and 2 also traverse, so large windows on the long")
	fmt.Println("routes flood the shared queue; WINDIM clamps them to 1-2 and")
	fmt.Println("gives the short class a generous window instead.")

	// Verify the headline row by simulation.
	network := repro.Canada4Class(20, 20, 20, 40)
	res, err := repro.Dimension(network, repro.DimensionOptions{})
	if err != nil {
		log.Fatal(err)
	}
	sim, err := repro.Simulate(network, repro.SimConfig{
		Windows: res.Windows, Duration: 5000, Warmup: 500, Seed: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsimulated at E=%v: power %.0f (analytic %.0f)\n",
		res.Windows, sim.Power, res.Metrics.Power)
}
