// Satellite links: the thesis's model assumes negligible propagation
// delay (fine for 1970s terrestrial trunks), but the ARPA era also ran
// SATNET hops with ~270 ms one-way latency. This example dimensions a
// virtual channel over (a) a 3-hop terrestrial path and (b) a single
// geostationary satellite hop of equal end-to-end capacity, showing the
// bandwidth-delay product pushing the optimal window up — the effect the
// hop-count rule cannot see (it would say E=1 for the satellite).
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// (a) Terrestrial: 3 hops of 50 kb/s, no propagation delay.
	terrestrial, err := repro.Tandem(3, 50_000, 25, 1000)
	if err != nil {
		log.Fatal(err)
	}

	// (b) Satellite: one 50 kb/s hop with 270 ms one-way delay.
	satellite, err := repro.Tandem(1, 50_000, 25, 1000)
	if err != nil {
		log.Fatal(err)
	}
	satellite.Channels[0].PropDelay = 0.27
	satellite.Name = "satellite"

	for _, n := range []*repro.Network{terrestrial, satellite} {
		res, err := repro.Dimension(n, repro.DimensionOptions{})
		if err != nil {
			log.Fatal(err)
		}
		hop := repro.KleinrockWindows(n)
		base, err := repro.Evaluate(n, hop, repro.DimensionOptions{})
		if err != nil {
			log.Fatal(err)
		}
		sim, err := repro.Simulate(n, repro.SimConfig{
			Windows: res.Windows, Duration: 8000, Warmup: 800, Seed: 3,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s  E_opt=%-5v power=%6.1f (sim %6.1f)   hop rule E=%v -> power %.1f\n",
			n.Name, res.Windows, res.Metrics.Power, sim.Power, hop, base.Power)
	}

	fmt.Println()
	fmt.Println("The satellite path needs a window near its bandwidth-delay product")
	fmt.Println("(50 kb/s x 0.27 s / 1000 b ≈ 14 messages in flight), over ten times")
	fmt.Println("the hop-count rule's E=1; with E=1 the link idles through every")
	fmt.Println("round trip:")
	m, err := repro.Evaluate(satellite, repro.WindowVector{1}, repro.DimensionOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  satellite at E=1: throughput %.2f msg/s, power %.1f\n", m.Throughput, m.Power)
}
