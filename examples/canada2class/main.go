// The thesis's first study (Fig. 4.5, Tables 4.7–4.8): the 2-class
// 6-node Canadian network. This example dimensions the windows across a
// load sweep, shows the symmetric-load/symmetric-window property, the
// shrinking of windows with load, and the insensitivity of the optimum to
// dissimilar loadings.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	fmt.Println("== Symmetric loadings (Table 4.7) ==")
	fmt.Println("S1=S2   E_opt   power   throughput   delay")
	for _, s := range []float64{12.5, 20, 25, 50, 75} {
		network := repro.Canada2Class(s, s)
		res, err := repro.Dimension(network, repro.DimensionOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%5.1f   %-6v  %5.0f   %7.2f      %.4f\n",
			s, res.Windows, res.Metrics.Power, res.Metrics.Throughput, res.Metrics.Delay)
	}

	fmt.Println()
	fmt.Println("== Dissimilar loadings at total 25 msg/s (Table 4.8) ==")
	fmt.Println("S1     S2     ratio  E_opt   power")
	for _, p := range [][2]float64{{12, 13}, {10, 15}, {8.4, 16.6}, {7, 18}, {5, 20}} {
		network := repro.Canada2Class(p[0], p[1])
		res, err := repro.Dimension(network, repro.DimensionOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%5.1f  %5.1f  %5.2f  %-6v  %5.0f\n",
			p[0], p[1], p[1]/p[0], res.Windows, res.Metrics.Power)
	}

	// The optimum barely moves as the loads skew (the thesis's
	// "insensitivity" point) but the attainable power degrades — it pays
	// to balance class loadings.
	fmt.Println()
	fmt.Println("== Oversized windows waste power (Fig. 4.9's lesson) ==")
	network := repro.Canada2Class(50, 50)
	for _, e := range []int{1, 3, 5, 7, 10} {
		m, err := repro.Evaluate(network, repro.WindowVector{e, e}, repro.DimensionOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("E=(%2d,%2d): power %5.0f (throughput %6.2f, delay %.4f)\n",
			e, e, m.Power, m.Throughput, m.Delay)
	}
}
