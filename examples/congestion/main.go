// Congestion and flow control (Chapter 2): with finite node buffers and
// no flow control, raising the offered load past the knee *reduces*
// throughput — the Fig. 2.1 collapse, ending in store-and-forward
// deadlock at extreme load. End-to-end windows, or an isarithmic permit
// pool, keep the network on the flat part of the curve.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const buffers = 4 // messages of store per switching node

	fmt.Println("offered   no-control      windows(3,3)    isarithmic(8)")
	fmt.Println("(msg/s)   thruput  dead   thruput  dead   thruput  dead")
	for _, s := range []float64{10, 20, 30, 40, 60, 80, 120} {
		row := fmt.Sprintf("%7.0f", 2*s)
		for _, mode := range []struct {
			window  int
			permits int
		}{
			{window: 0, permits: 0}, // uncontrolled
			{window: 3, permits: 0}, // end-to-end windows
			{window: 0, permits: 8}, // isarithmic only
		} {
			network := repro.Canada2Class(s, s)
			nodeBuffers := make([]int, 6)
			for i := range nodeBuffers {
				nodeBuffers[i] = buffers
			}
			res, err := repro.Simulate(network, repro.SimConfig{
				Windows:       repro.WindowVector{mode.window, mode.window},
				Duration:      600,
				Warmup:        60,
				Seed:          7,
				Source:        repro.SourceBacklogged,
				NodeBuffers:   nodeBuffers,
				GlobalPermits: mode.permits,
			})
			if err != nil {
				log.Fatal(err)
			}
			row += fmt.Sprintf("   %7.2f  %-5v", res.Throughput, res.Deadlocked)
		}
		fmt.Println(row)
	}
	fmt.Println()
	fmt.Println("Without control the curve peaks and falls (negative-slope region")
	fmt.Println("= congestion); with windows or permits throughput holds its peak.")
}
