// Larger networks (Chapter 5): WINDIM on a 10-node ARPANET-style mesh
// with six interacting virtual channels, where exact analysis of every
// search candidate is already infeasible, plus dimensioning of the other
// two flow-control families on top of the chosen windows.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/topo"
)

func main() {
	network, err := topo.Arpa(nil) // six classes at 8 msg/s each
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %s — %d nodes, %d channels, %d virtual channels\n",
		network.Name, len(network.Nodes), len(network.Channels), len(network.Classes))
	for r, c := range network.Classes {
		fmt.Printf("  %-16s %d hops\n", c.Name, network.Hops(r))
	}

	// End-to-end windows first.
	res, err := repro.Dimension(network, repro.DimensionOptions{})
	if err != nil {
		log.Fatal(err)
	}
	hop := repro.KleinrockWindows(network)
	base, err := repro.Evaluate(network, hop, repro.DimensionOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nWINDIM windows  : %v  (power %.0f, %d evaluations)\n",
		res.Windows, res.Metrics.Power, res.Search.Evaluations)
	fmt.Printf("hop-count rule  : %v  (power %.0f)\n", hop, base.Power)

	// Then local flow control: size each node's store from open-loop
	// occupancy quantiles — and observe the §2.3 interplay: quantiles
	// measured WITHOUT blocking underestimate what blocking feedback
	// needs, so the exceedance target must be tightened until the
	// closed-loop simulation recovers the unconstrained power.
	fmt.Printf("\nbuffer sizing at the chosen windows (closed-loop check):\n")
	fmt.Printf("eps        node buffers K_i                 simulated power\n")
	for _, eps := range []float64{1e-2, 1e-4} {
		sizes, err := core.SizeBuffers(network, res.Windows, eps, sim.Config{
			Duration: 4000, Warmup: 400, Seed: 4,
		}, core.ExtOptions{})
		if err != nil {
			log.Fatal(err)
		}
		simRes, err := repro.Simulate(network, repro.SimConfig{
			Windows:     res.Windows,
			NodeBuffers: sizes,
			Duration:    4000,
			Warmup:      400,
			Seed:        5,
		})
		if err != nil {
			log.Fatal(err)
		}
		ks := ""
		for i, k := range sizes {
			if i > 0 {
				ks += " "
			}
			ks += fmt.Sprint(k)
		}
		fmt.Printf("%-8g   %-30s   %.0f (deadlocked: %v)\n", eps, ks, simRes.Power, simRes.Deadlocked)
	}
	fmt.Printf("analytic power with infinite buffers: %.0f\n", res.Metrics.Power)
	fmt.Println()
	fmt.Println("The 1% quantiles lose ~30% of the power: a stalled channel holds")
	fmt.Println("its message and the stall cascades (the thesis's warning that")
	fmt.Println("windows exceeding buffer capacity make end-to-end control")
	fmt.Println("ineffective). Tightened to 0.01%, the sized buffers match the")
	fmt.Println("infinite-buffer power — local and end-to-end control now agree.")
}
