// Model validation: the discrete-event simulator against the analytic
// solvers across window settings, plus the effect of breaking the
// independence assumption (correlated message lengths across hops), which
// the product-form model cannot capture.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const s = 20.0
	fmt.Println("2-class Canadian network at S1=S2=20 msg/s")
	fmt.Println()
	fmt.Println("windows   exact-MVA power   simulated power   sim (correlated lengths)")
	for _, e := range []int{1, 2, 3, 4, 5, 6} {
		w := repro.WindowVector{e, e}
		network := repro.Canada2Class(s, s)
		analytic, err := repro.Evaluate(network, w, repro.DimensionOptions{
			Evaluator: repro.EvalExactMVA,
		})
		if err != nil {
			log.Fatal(err)
		}
		faithful, err := repro.Simulate(network, repro.SimConfig{
			Windows: w, Duration: 4000, Warmup: 400, Seed: 11,
		})
		if err != nil {
			log.Fatal(err)
		}
		correlated, err := repro.Simulate(network, repro.SimConfig{
			Windows: w, Duration: 4000, Warmup: 400, Seed: 11,
			CorrelatedLengths: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("(%d,%d)     %15.1f   %15.1f   %24.1f\n",
			e, e, analytic.Power, faithful.Power, correlated.Power)
	}
	fmt.Println()
	fmt.Println("The model-faithful simulation tracks exact MVA closely; keeping")
	fmt.Println("message lengths across hops (as a real network does) shifts the")
	fmt.Println("numbers — the cost of Kleinrock's independence assumption.")
}
