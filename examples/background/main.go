// Mixed networks (Chapter 3 §3.3.3): dimensioning windows when channels
// also carry uncontrolled cross-traffic. The analytic model folds the
// background load into the capacity function (equivalently, inflates the
// controlled classes' service times); the simulator injects the
// cross-traffic explicitly — both agree, and the optimal windows shrink
// as the background load eats the shared channel.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/topo"
)

func main() {
	fmt.Println("2-class Canadian network at S1=S2=20; background load on the shared WT channel")
	fmt.Println()
	fmt.Println("background   E_opt   analytic power   simulated power")
	for _, bg := range []float64{0, 0.2, 0.4, 0.6} {
		network := repro.Canada2Class(20, 20)
		network.Channels[topo.ChWT].Background = bg
		res, err := repro.Dimension(network, repro.DimensionOptions{})
		if err != nil {
			log.Fatal(err)
		}
		simRes, err := repro.Simulate(network, repro.SimConfig{
			Windows: res.Windows, Duration: 4000, Warmup: 400, Seed: 13,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%10.0f%%   %-6v  %14.1f   %15.1f\n",
			bg*100, res.Windows, res.Metrics.Power, simRes.Power)
	}
	fmt.Println()
	fmt.Println("Background traffic on the one channel both classes share steals its")
	fmt.Println("capacity: attainable power falls and tighter windows become optimal,")
	fmt.Println("exactly as heavier first-party load does in Table 4.7.")
}
