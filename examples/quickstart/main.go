// Quickstart: dimension the end-to-end window of a 4-hop virtual channel
// and check the result against a simulation — the smallest end-to-end use
// of the library.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// A 4-hop store-and-forward path of 50 kb/s channels carrying
	// 1000-bit messages offered at 20 msg/s.
	network, err := repro.Tandem(4, 50_000, 20, 1000)
	if err != nil {
		log.Fatal(err)
	}

	// WINDIM: find the window that maximises power = throughput/delay.
	res, err := repro.Dimension(network, repro.DimensionOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimal window: %v\n", res.Windows)
	fmt.Printf("analytic: throughput %.2f msg/s, delay %.4f s, power %.1f\n",
		res.Metrics.Throughput, res.Metrics.Delay, res.Metrics.Power)

	// Kleinrock's rule of thumb says window = hops for an isolated
	// virtual channel; with the source queue in the loop the optimum
	// sits nearby.
	fmt.Printf("hop-count rule: %v\n", repro.KleinrockWindows(network))

	// Confirm by discrete-event simulation.
	sim, err := repro.Simulate(network, repro.SimConfig{
		Windows:  res.Windows,
		Duration: 5000, // simulated seconds
		Warmup:   500,
		Seed:     1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated: throughput %.2f msg/s, delay %.4f s (±%.4f), power %.1f\n",
		sim.Throughput, sim.Delay, sim.PerClass[0].DelayCI95, sim.Power)
}
