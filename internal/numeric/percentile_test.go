package numeric

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPercentileKnown(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	if got := Percentile(xs, 0); got != 1 {
		t.Errorf("P0 = %v", got)
	}
	if got := Percentile(xs, 1); got != 9 {
		t.Errorf("P100 = %v", got)
	}
	// Median of sorted [1 1 2 3 4 5 6 9]: between 3 and 4.
	if got := Percentile(xs, 0.5); math.Abs(got-3.5) > 1e-12 {
		t.Errorf("P50 = %v", got)
	}
	// Input not mutated.
	if xs[0] != 3 || xs[5] != 9 {
		t.Error("Percentile mutated its input")
	}
}

func TestPercentileEdge(t *testing.T) {
	if got := Percentile(nil, 0.5); got != 0 {
		t.Errorf("empty = %v", got)
	}
	if got := Percentile([]float64{7}, 0.95); got != 7 {
		t.Errorf("single = %v", got)
	}
	if got := Percentile([]float64{1, 2}, -0.5); got != 1 {
		t.Errorf("clamped low = %v", got)
	}
	if got := Percentile([]float64{1, 2}, 2); got != 2 {
		t.Errorf("clamped high = %v", got)
	}
}

// Properties: monotone in p, bounded by min/max, exact on uniform grids.
func TestPercentileProperties(t *testing.T) {
	f := func(raw []int16, pRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, r := range raw {
			xs[i] = float64(r)
			lo = math.Min(lo, xs[i])
			hi = math.Max(hi, xs[i])
		}
		p := float64(pRaw) / 255
		v := Percentile(xs, p)
		if v < lo-1e-9 || v > hi+1e-9 {
			return false
		}
		// Monotonicity against a second point.
		p2 := p / 2
		return Percentile(xs, p2) <= v+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSortFloat64sLarge(t *testing.T) {
	// Exercise the quicksort path (n >= 16) with adversarial patterns.
	patterns := [][]float64{}
	asc := make([]float64, 100)
	desc := make([]float64, 100)
	same := make([]float64, 100)
	for i := range asc {
		asc[i] = float64(i)
		desc[i] = float64(100 - i)
		same[i] = 42
	}
	patterns = append(patterns, asc, desc, same)
	for pi, xs := range patterns {
		cp := make([]float64, len(xs))
		copy(cp, xs)
		sortFloat64s(cp)
		for i := 1; i < len(cp); i++ {
			if cp[i] < cp[i-1] {
				t.Fatalf("pattern %d not sorted at %d", pi, i)
			}
		}
	}
}
