package numeric

import (
	"testing"
	"testing/quick"
)

func TestIntVectorBasics(t *testing.T) {
	v := IntVector{1, 2, 3}
	if v.Sum() != 6 {
		t.Errorf("Sum = %d", v.Sum())
	}
	w := v.Clone()
	w[0] = 9
	if v[0] != 1 {
		t.Fatal("Clone aliases storage")
	}
	if !v.Equal(IntVector{1, 2, 3}) {
		t.Fatal("Equal false negative")
	}
	if v.Equal(IntVector{1, 2}) || v.Equal(IntVector{1, 2, 4}) {
		t.Fatal("Equal false positive")
	}
}

func TestIntVectorPredicates(t *testing.T) {
	if !(IntVector{0, 1}).AllNonNegative() {
		t.Error("AllNonNegative false negative")
	}
	if (IntVector{0, -1}).AllNonNegative() {
		t.Error("AllNonNegative false positive")
	}
	if !(IntVector{1, 2}).AllPositive() {
		t.Error("AllPositive false negative")
	}
	if (IntVector{1, 0}).AllPositive() {
		t.Error("AllPositive false positive")
	}
}

func TestIntVectorKey(t *testing.T) {
	if got := (IntVector{1, -2, 30}).Key(); got != "1,-2,30" {
		t.Errorf("Key = %q", got)
	}
	if got := (IntVector{}).Key(); got != "" {
		t.Errorf("empty Key = %q", got)
	}
	if got := (IntVector{5}).String(); got != "(5)" {
		t.Errorf("String = %q", got)
	}
}

func TestKeyUniquenessProperty(t *testing.T) {
	f := func(a, b []int8) bool {
		va := make(IntVector, len(a))
		vb := make(IntVector, len(b))
		for i, x := range a {
			va[i] = int(x)
		}
		for i, x := range b {
			vb[i] = int(x)
		}
		if va.Equal(vb) {
			return va.Key() == vb.Key()
		}
		return va.Key() != vb.Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLatticeSize(t *testing.T) {
	n, err := LatticeSize(IntVector{2, 3}, 1000)
	if err != nil || n != 12 {
		t.Errorf("LatticeSize = %d, %v; want 12", n, err)
	}
	if _, err := LatticeSize(IntVector{-1}, 1000); err == nil {
		t.Error("expected error for negative bound")
	}
	if _, err := LatticeSize(IntVector{1000, 1000, 1000}, 1e6); err == nil {
		t.Error("expected budget error")
	}
}

func TestLatticeWalkOrderAndCount(t *testing.T) {
	bound := IntVector{2, 1, 2}
	seen := map[string]bool{}
	count := 0
	LatticeWalk(bound, func(p IntVector) {
		count++
		key := p.Key()
		if seen[key] {
			t.Fatalf("point %v visited twice", p)
		}
		seen[key] = true
		// Dominance order: every p - e_k must already be visited.
		for k := range p {
			if p[k] > 0 {
				q := p.Clone()
				q[k]--
				if !seen[q.Key()] {
					t.Fatalf("point %v visited before dominated %v", p, q)
				}
			}
		}
	})
	if want := 3 * 2 * 3; count != want {
		t.Errorf("visited %d points, want %d", count, want)
	}
}

func TestLatticeIndexBijective(t *testing.T) {
	bound := IntVector{3, 2, 4}
	seen := map[int]bool{}
	LatticeWalk(bound, func(p IntVector) {
		idx := LatticeIndex(p, bound)
		if idx < 0 || seen[idx] {
			t.Fatalf("index %d for %v duplicated or negative", idx, p)
		}
		seen[idx] = true
	})
	size, _ := LatticeSize(bound, 1<<20)
	if len(seen) != size {
		t.Errorf("indices cover %d points, want %d", len(seen), size)
	}
}

func TestCompositionsCount(t *testing.T) {
	cases := []struct{ total, bins, want int }{
		{0, 0, 1},
		{1, 0, 0},
		{0, 3, 1},
		{2, 2, 3},
		{3, 3, 10},
		{5, 4, 56},
	}
	for _, c := range cases {
		if got := CompositionsCount(c.total, c.bins); got != c.want {
			t.Errorf("CompositionsCount(%d,%d) = %d, want %d", c.total, c.bins, got, c.want)
		}
	}
}

func TestCompositionsEnumerationMatchesCount(t *testing.T) {
	for total := 0; total <= 5; total++ {
		for bins := 0; bins <= 4; bins++ {
			n := 0
			Compositions(total, bins, func(c IntVector) {
				if c.Sum() != total {
					t.Fatalf("composition %v does not sum to %d", c, total)
				}
				if !c.AllNonNegative() {
					t.Fatalf("negative composition %v", c)
				}
				n++
			})
			if want := CompositionsCount(total, bins); n != want {
				t.Errorf("Compositions(%d,%d) yields %d, want %d", total, bins, n, want)
			}
		}
	}
}
