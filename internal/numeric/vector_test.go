package numeric

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestVectorSumDot(t *testing.T) {
	v := Vector{1, 2, 3}
	w := Vector{4, 5, 6}
	if got := v.Sum(); got != 6 {
		t.Errorf("Sum = %v, want 6", got)
	}
	if got := v.Dot(w); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
}

func TestVectorCloneIndependence(t *testing.T) {
	v := Vector{1, 2}
	w := v.Clone()
	w[0] = 99
	if v[0] != 1 {
		t.Fatal("Clone aliases original storage")
	}
}

func TestVectorScaleAdd(t *testing.T) {
	v := Vector{1, 2}.Scale(3)
	if v[0] != 3 || v[1] != 6 {
		t.Errorf("Scale = %v", v)
	}
	v.Add(Vector{1, 1})
	if v[0] != 4 || v[1] != 7 {
		t.Errorf("Add = %v", v)
	}
}

func TestVectorMax(t *testing.T) {
	v := Vector{3, 9, 2}
	best, at := v.Max()
	if best != 9 || at != 1 {
		t.Errorf("Max = (%v,%v), want (9,1)", best, at)
	}
	var empty Vector
	best, at = empty.Max()
	if !math.IsInf(best, -1) || at != -1 {
		t.Errorf("empty Max = (%v,%v)", best, at)
	}
}

func TestVectorDiffs(t *testing.T) {
	v := Vector{0, 0}
	w := Vector{3, 4}
	if got := v.MaxAbsDiff(w); got != 4 {
		t.Errorf("MaxAbsDiff = %v, want 4", got)
	}
	if got := v.L2Diff(w); !almostEqual(got, 5, 1e-12) {
		t.Errorf("L2Diff = %v, want 5", got)
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Vector{1}.Dot(Vector{1, 2})
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 {
		t.Fatal("Set/At roundtrip failed")
	}
	if got := m.Row(1); got[2] != 5 {
		t.Fatal("Row does not alias storage")
	}
	c := m.Clone()
	c.Set(0, 0, 7)
	if m.At(0, 0) != 0 {
		t.Fatal("Clone aliases storage")
	}
}

func TestMulVec(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 1)
	m.Set(0, 1, 2)
	m.Set(1, 0, 3)
	m.Set(1, 1, 4)
	got := m.MulVec(Vector{5, 6})
	if got[0] != 17 || got[1] != 39 {
		t.Errorf("MulVec = %v, want [17 39]", got)
	}
}

func TestSolveLinearKnown(t *testing.T) {
	// 2x + y = 5 ; x - y = 1 -> x=2, y=1
	a := NewMatrix(2, 2)
	a.Set(0, 0, 2)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, -1)
	x, err := SolveLinear(a, Vector{5, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(x[0], 2, 1e-12) || !almostEqual(x[1], 1, 1e-12) {
		t.Errorf("x = %v, want [2 1]", x)
	}
}

func TestSolveLinearNeedsPivoting(t *testing.T) {
	// Zero on the diagonal forces a row swap.
	a := NewMatrix(2, 2)
	a.Set(0, 0, 0)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 0)
	x, err := SolveLinear(a, Vector{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(x[0], 4, 1e-12) || !almostEqual(x[1], 3, 1e-12) {
		t.Errorf("x = %v, want [4 3]", x)
	}
}

func TestSolveLinearSingular(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 4)
	if _, err := SolveLinear(a, Vector{1, 2}); err == nil {
		t.Fatal("expected ErrSingular")
	}
}

func TestSolveLinearNonSquare(t *testing.T) {
	a := NewMatrix(2, 3)
	if _, err := SolveLinear(a, Vector{1, 2}); err == nil {
		t.Fatal("expected error for non-square matrix")
	}
	b := NewMatrix(2, 2)
	if _, err := SolveLinear(b, Vector{1}); err == nil {
		t.Fatal("expected error for rhs length mismatch")
	}
}

func TestSolveLinearDoesNotDestroyInputs(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 2)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 3)
	b := Vector{4, 5}
	if _, err := SolveLinear(a, b); err != nil {
		t.Fatal(err)
	}
	if a.At(0, 0) != 2 || a.At(1, 1) != 3 || b[0] != 4 || b[1] != 5 {
		t.Fatal("SolveLinear mutated its inputs")
	}
}

// Property: for random well-conditioned systems, A·x == b after solving.
func TestSolveLinearProperty(t *testing.T) {
	f := func(seed int64) bool {
		// Build a diagonally dominant 4x4 matrix from the seed: always
		// solvable and well-conditioned.
		s := seed
		next := func() float64 {
			s = s*6364136223846793005 + 1442695040888963407
			return float64(uint64(s)>>11) / float64(1<<53)
		}
		const n = 4
		a := NewMatrix(n, n)
		b := NewVector(n)
		for i := 0; i < n; i++ {
			rowSum := 0.0
			for j := 0; j < n; j++ {
				v := next() - 0.5
				a.Set(i, j, v)
				rowSum += math.Abs(v)
			}
			a.Set(i, i, a.At(i, i)+rowSum+1)
			b[i] = next()
		}
		x, err := SolveLinear(a, b)
		if err != nil {
			return false
		}
		r := a.MulVec(x)
		return r.MaxAbsDiff(b) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
