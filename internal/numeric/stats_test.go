package numeric

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWelfordKnown(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Errorf("N = %d", w.N())
	}
	if !almostEqual(w.Mean(), 5, 1e-12) {
		t.Errorf("Mean = %v", w.Mean())
	}
	// Population variance is 4; sample variance = 4*8/7.
	if want := 32.0 / 7.0; !almostEqual(w.Variance(), want, 1e-12) {
		t.Errorf("Variance = %v, want %v", w.Variance(), want)
	}
	if !almostEqual(w.StdDev(), math.Sqrt(32.0/7.0), 1e-12) {
		t.Errorf("StdDev = %v", w.StdDev())
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.StdErr() != 0 {
		t.Error("zero-value Welford should report zeros")
	}
	if _, err := w.ConfidenceInterval(0.95); err == nil {
		t.Error("expected error for CI with no data")
	}
	w.Add(3)
	if w.Mean() != 3 || w.Variance() != 0 {
		t.Error("single observation stats wrong")
	}
	if _, err := w.ConfidenceInterval(0.95); err == nil {
		t.Error("expected error for CI with one observation")
	}
}

// Property: Welford matches the naive two-pass computation.
func TestWelfordMatchesNaive(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) < 2 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r) / 100
		}
		var w Welford
		mean := 0.0
		for _, x := range xs {
			w.Add(x)
			mean += x
		}
		mean /= float64(len(xs))
		ss := 0.0
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		naiveVar := ss / float64(len(xs)-1)
		return almostEqual(w.Mean(), mean, 1e-9) && almostEqual(w.Variance(), naiveVar, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStudentTQuantileTable(t *testing.T) {
	cases := []struct {
		df    int
		level float64
		want  float64
	}{
		{1, 0.95, 12.706},
		{10, 0.95, 2.228},
		{30, 0.95, 2.042},
		{5, 0.90, 2.015},
		{2, 0.99, 9.925},
	}
	for _, c := range cases {
		if got := StudentTQuantile(c.df, c.level); !almostEqual(got, c.want, 1e-9) {
			t.Errorf("t(%d, %v) = %v, want %v", c.df, c.level, got, c.want)
		}
	}
	// Large df converges to the last table entry.
	if got := StudentTQuantile(1000, 0.95); !almostEqual(got, 2.021, 1e-9) {
		t.Errorf("t(1000, 0.95) = %v", got)
	}
	// df < 1 clamps.
	if got := StudentTQuantile(0, 0.95); !almostEqual(got, 12.706, 1e-9) {
		t.Errorf("t(0, 0.95) = %v", got)
	}
	// Interpolated region 30 < df < 40 must be between endpoints.
	mid := StudentTQuantile(35, 0.95)
	if mid >= 2.042 || mid <= 2.021 {
		t.Errorf("t(35, 0.95) = %v not interpolated", mid)
	}
}

func TestStudentTQuantileNormalFallback(t *testing.T) {
	// An untabulated level uses the normal quantile; 0.954499... ~ 2 sigma.
	got := StudentTQuantile(100, 0.9544997)
	if !almostEqual(got, 2.0, 1e-3) {
		t.Errorf("normal fallback = %v, want ~2", got)
	}
}

func TestNormalQuantile(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.975, 1.959964},
		{0.025, -1.959964},
		{0.995, 2.575829},
	}
	for _, c := range cases {
		if got := normalQuantile(c.p); !almostEqual(got, c.want, 1e-4) {
			t.Errorf("normalQuantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if !math.IsInf(normalQuantile(0), -1) || !math.IsInf(normalQuantile(1), 1) {
		t.Error("extreme quantiles should be infinite")
	}
}

func TestBatchMeans(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7} // 3 batches of 2, tail dropped
	w, err := BatchMeans(xs, 3)
	if err != nil {
		t.Fatal(err)
	}
	if w.N() != 3 {
		t.Errorf("N = %d", w.N())
	}
	if !almostEqual(w.Mean(), (1.5+3.5+5.5)/3, 1e-12) {
		t.Errorf("Mean = %v", w.Mean())
	}
	if _, err := BatchMeans(xs, 1); err == nil {
		t.Error("expected error for 1 batch")
	}
	if _, err := BatchMeans([]float64{1}, 2); err == nil {
		t.Error("expected error for too few observations")
	}
}
