package numeric

import "fmt"

// IntVector is an integer lattice point, used for multichain population
// vectors (window settings, chain populations).
type IntVector []int

// NewIntVector returns a zeroed integer vector of length n.
func NewIntVector(n int) IntVector { return make(IntVector, n) }

// Clone returns an independent copy of v.
func (v IntVector) Clone() IntVector {
	w := make(IntVector, len(v))
	copy(w, v)
	return w
}

// Sum returns the sum of all elements.
func (v IntVector) Sum() int {
	s := 0
	for _, x := range v {
		s += x
	}
	return s
}

// Equal reports whether v and w hold the same elements.
func (v IntVector) Equal(w IntVector) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if v[i] != w[i] {
			return false
		}
	}
	return true
}

// AllNonNegative reports whether every element is >= 0.
func (v IntVector) AllNonNegative() bool {
	for _, x := range v {
		if x < 0 {
			return false
		}
	}
	return true
}

// AllPositive reports whether every element is >= 1.
func (v IntVector) AllPositive() bool {
	for _, x := range v {
		if x < 1 {
			return false
		}
	}
	return true
}

// Key returns a compact unique string key for v, suitable as a map key for
// memoisation (the APL WINDIM program kept the analogous XCMP table).
func (v IntVector) Key() string {
	b := make([]byte, 0, len(v)*3)
	for i, x := range v {
		if i > 0 {
			b = append(b, ',')
		}
		b = appendInt(b, x)
	}
	return string(b)
}

func appendInt(b []byte, x int) []byte {
	if x < 0 {
		b = append(b, '-')
		x = -x
	}
	var tmp [20]byte
	i := len(tmp)
	for {
		i--
		tmp[i] = byte('0' + x%10)
		x /= 10
		if x == 0 {
			break
		}
	}
	return append(b, tmp[i:]...)
}

func (v IntVector) String() string { return "(" + v.Key() + ")" }

// LatticeSize returns the number of lattice points dominated by bound
// (inclusive), i.e. prod_i (bound[i]+1). It returns an error if any bound
// is negative or if the product overflows a practical budget; the exact
// multichain MVA recursion walks this lattice and must refuse absurd
// requests rather than hang.
func LatticeSize(bound IntVector, budget int) (int, error) {
	size := 1
	for i, b := range bound {
		if b < 0 {
			return 0, fmt.Errorf("numeric: negative lattice bound %d at index %d", b, i)
		}
		size *= b + 1
		if size > budget || size < 0 {
			return 0, fmt.Errorf("numeric: lattice of %v exceeds budget %d points", bound, budget)
		}
	}
	return size, nil
}

// LatticeIndex maps the point p (0 <= p <= bound elementwise) to its
// mixed-radix rank in the lattice enumeration order used by LatticeWalk.
func LatticeIndex(p, bound IntVector) int {
	idx := 0
	for i := range p {
		idx = idx*(bound[i]+1) + p[i]
	}
	return idx
}

// LatticeWalk visits every lattice point 0 <= p <= bound in an order where
// every point is visited after all points it dominates (i.e. p-e_k is
// visited before p). The same IntVector is reused across calls; callers
// must Clone it if they retain it.
func LatticeWalk(bound IntVector, visit func(p IntVector)) {
	LatticeWalkUntil(bound, func(p IntVector) bool {
		visit(p)
		return true
	})
}

// LatticeWalkUntil walks the lattice in LatticeWalk's order but stops as
// soon as visit returns false, so callers that hit an error mid-walk do
// not pay for the rest of the box. The same IntVector is reused across
// calls; callers must Clone it if they retain it.
func LatticeWalkUntil(bound IntVector, visit func(p IntVector) bool) {
	p := NewIntVector(len(bound))
	for {
		if !visit(p) {
			return
		}
		// Odometer increment (last index fastest). Lexicographic order
		// dominates: incrementing any digit moves strictly upward in the
		// dominance-compatible order because all lower digits reset to 0.
		i := len(p) - 1
		for i >= 0 {
			if p[i] < bound[i] {
				p[i]++
				break
			}
			p[i] = 0
			i--
		}
		if i < 0 {
			return
		}
	}
}

// CompositionsCount returns the number of ways to place total
// indistinguishable customers into bins queues, C(total+bins-1, bins-1),
// saturating at a large sentinel to avoid overflow.
func CompositionsCount(total, bins int) int {
	if bins <= 0 {
		if total == 0 {
			return 1
		}
		return 0
	}
	// Multiplicative binomial, with overflow saturation.
	const sentinel = int(1) << 62
	n := total + bins - 1
	k := bins - 1
	if k > n-k {
		k = n - k
	}
	res := 1
	for i := 1; i <= k; i++ {
		// res = res * (n-k+i) / i, exact at every step.
		res = res * (n - k + i) / i
		if res < 0 || res > sentinel {
			return sentinel
		}
	}
	return res
}

// Compositions visits every way to write total as an ordered sum of bins
// non-negative integers. The slice passed to visit is reused; clone to
// retain. Used by the CTMC state-space generator.
func Compositions(total, bins int, visit func(c IntVector)) {
	if bins == 0 {
		if total == 0 {
			visit(IntVector{})
		}
		return
	}
	c := NewIntVector(bins)
	var rec func(rem, i int)
	rec = func(rem, i int) {
		if i == bins-1 {
			c[i] = rem
			visit(c)
			return
		}
		for v := 0; v <= rem; v++ {
			c[i] = v
			rec(rem-v, i+1)
		}
	}
	rec(total, 0)
}
