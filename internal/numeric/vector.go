// Package numeric provides the small dense linear-algebra, statistics and
// combinatorics kernels used by the queueing solvers and the simulator.
//
// The package is deliberately self-contained (standard library only): the
// solvers in internal/convolution and internal/mva need nothing beyond
// Gaussian elimination, series convolution and population-lattice
// enumeration, so pulling in an external numerics dependency would be all
// cost and no benefit.
package numeric

import (
	"errors"
	"fmt"
	"math"
)

// Vector is a dense float64 vector.
type Vector []float64

// NewVector returns a zeroed vector of length n.
func NewVector(n int) Vector { return make(Vector, n) }

// Clone returns an independent copy of v.
func (v Vector) Clone() Vector {
	w := make(Vector, len(v))
	copy(w, v)
	return w
}

// Zero sets every element to 0.
func (v Vector) Zero() {
	for i := range v {
		v[i] = 0
	}
}

// Sum returns the sum of all elements.
func (v Vector) Sum() float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s
}

// Dot returns the inner product of v and w.
// It panics if the lengths differ.
func (v Vector) Dot(w Vector) float64 {
	if len(v) != len(w) {
		panic(fmt.Sprintf("numeric: Dot length mismatch %d vs %d", len(v), len(w)))
	}
	s := 0.0
	for i, x := range v {
		s += x * w[i]
	}
	return s
}

// Scale multiplies every element of v by a in place and returns v.
func (v Vector) Scale(a float64) Vector {
	for i := range v {
		v[i] *= a
	}
	return v
}

// Add adds w to v in place and returns v.
// It panics if the lengths differ.
func (v Vector) Add(w Vector) Vector {
	if len(v) != len(w) {
		panic(fmt.Sprintf("numeric: Add length mismatch %d vs %d", len(v), len(w)))
	}
	for i := range v {
		v[i] += w[i]
	}
	return v
}

// Max returns the maximum element and its index. For an empty vector it
// returns (-Inf, -1).
func (v Vector) Max() (float64, int) {
	best, at := math.Inf(-1), -1
	for i, x := range v {
		if x > best {
			best, at = x, i
		}
	}
	return best, at
}

// MaxAbsDiff returns max_i |v[i]-w[i]|, used as an iteration convergence
// criterion. It panics if the lengths differ.
func (v Vector) MaxAbsDiff(w Vector) float64 {
	if len(v) != len(w) {
		panic(fmt.Sprintf("numeric: MaxAbsDiff length mismatch %d vs %d", len(v), len(w)))
	}
	d := 0.0
	for i := range v {
		if a := math.Abs(v[i] - w[i]); a > d {
			d = a
		}
	}
	return d
}

// L2Diff returns the Euclidean distance between v and w (the APL WINDIM
// program's CRIT stopping value). It panics if the lengths differ.
func (v Vector) L2Diff(w Vector) float64 {
	if len(v) != len(w) {
		panic(fmt.Sprintf("numeric: L2Diff length mismatch %d vs %d", len(v), len(w)))
	}
	s := 0.0
	for i := range v {
		d := v[i] - w[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols, row-major
}

// NewMatrix returns a zeroed Rows x Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("numeric: negative matrix dimension")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, x float64) { m.Data[i*m.Cols+j] = x }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) Vector { return Vector(m.Data[i*m.Cols : (i+1)*m.Cols]) }

// Zero sets every element to 0.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Clone returns an independent copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// MulVec returns m·v. It panics if dimensions are incompatible.
func (m *Matrix) MulVec(v Vector) Vector {
	if len(v) != m.Cols {
		panic(fmt.Sprintf("numeric: MulVec dimension mismatch %dx%d · %d", m.Rows, m.Cols, len(v)))
	}
	out := NewVector(m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.Row(i).Dot(v)
	}
	return out
}

// ErrSingular is returned by the linear solvers when the system matrix is
// singular (or numerically indistinguishable from singular).
var ErrSingular = errors.New("numeric: singular matrix")

// SolveLinear solves A·x = b by Gaussian elimination with partial
// pivoting, destroying neither input. It returns ErrSingular when A has no
// usable pivot. Intended for the small systems (tens of unknowns) arising
// from traffic equations; O(n^3).
func SolveLinear(a *Matrix, b Vector) (Vector, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, fmt.Errorf("numeric: SolveLinear needs a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	if len(b) != n {
		return nil, fmt.Errorf("numeric: SolveLinear rhs length %d != %d", len(b), n)
	}
	// Work on copies.
	m := a.Clone()
	x := b.Clone()
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot, pivotAbs := col, math.Abs(m.At(col, col))
		for r := col + 1; r < n; r++ {
			if abs := math.Abs(m.At(r, col)); abs > pivotAbs {
				pivot, pivotAbs = r, abs
			}
		}
		if pivotAbs < 1e-300 {
			return nil, ErrSingular
		}
		if pivot != col {
			for j := 0; j < n; j++ {
				m.Data[col*n+j], m.Data[pivot*n+j] = m.Data[pivot*n+j], m.Data[col*n+j]
			}
			x[col], x[pivot] = x[pivot], x[col]
		}
		inv := 1.0 / m.At(col, col)
		for r := col + 1; r < n; r++ {
			f := m.At(r, col) * inv
			if f == 0 {
				continue
			}
			for j := col; j < n; j++ {
				m.Set(r, j, m.At(r, j)-f*m.At(col, j))
			}
			x[r] -= f * x[col]
		}
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= m.At(i, j) * x[j]
		}
		x[i] = s / m.At(i, i)
	}
	return x, nil
}
