package numeric

import (
	"errors"
	"math"
)

// Welford is an online mean/variance accumulator (Welford's algorithm).
// The zero value is ready to use.
type Welford struct {
	n    int64
	mean float64
	m2   float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int64 { return w.n }

// Mean returns the sample mean (0 when empty).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased sample variance (0 for fewer than two
// observations).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// StdErr returns the standard error of the mean.
func (w *Welford) StdErr() float64 {
	if w.n == 0 {
		return 0
	}
	return w.StdDev() / math.Sqrt(float64(w.n))
}

// ErrTooFewBatches is returned by ConfidenceInterval when fewer than two
// batches are available.
var ErrTooFewBatches = errors.New("numeric: need at least 2 observations for a confidence interval")

// ConfidenceInterval returns the half-width of the two-sided Student-t
// confidence interval at the given confidence level (e.g. 0.95) for the
// mean of the accumulated observations.
func (w *Welford) ConfidenceInterval(level float64) (halfWidth float64, err error) {
	if w.n < 2 {
		return 0, ErrTooFewBatches
	}
	t := StudentTQuantile(int(w.n-1), level)
	return t * w.StdErr(), nil
}

// StudentTQuantile returns the two-sided Student-t critical value with df
// degrees of freedom at the given confidence level. Levels 0.90, 0.95 and
// 0.99 are tabulated exactly for small df; other levels fall back to the
// normal approximation. df < 1 is treated as 1.
func StudentTQuantile(df int, level float64) float64 {
	if df < 1 {
		df = 1
	}
	var table []float64
	switch {
	case math.Abs(level-0.90) < 1e-9:
		table = t90
	case math.Abs(level-0.95) < 1e-9:
		table = t95
	case math.Abs(level-0.99) < 1e-9:
		table = t99
	default:
		return normalQuantileTwoSided(level)
	}
	if df <= len(table) {
		return table[df-1]
	}
	switch {
	case df <= 40:
		return table[29] + (table[len(table)-1]-table[29])*float64(df-30)/10
	default:
		return table[len(table)-1]
	}
}

// Two-sided critical values, df = 1..30 then df = 40 as the last entry.
var (
	t90 = []float64{
		6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833, 1.812,
		1.796, 1.782, 1.771, 1.761, 1.753, 1.746, 1.740, 1.734, 1.729, 1.725,
		1.721, 1.717, 1.714, 1.711, 1.708, 1.706, 1.703, 1.701, 1.699, 1.697,
		1.684,
	}
	t95 = []float64{
		12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
		2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
		2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
		2.021,
	}
	t99 = []float64{
		63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355, 3.250, 3.169,
		3.106, 3.055, 3.012, 2.977, 2.947, 2.921, 2.898, 2.878, 2.861, 2.845,
		2.831, 2.819, 2.807, 2.797, 2.787, 2.779, 2.771, 2.763, 2.756, 2.750,
		2.704,
	}
)

// normalQuantileTwoSided returns z such that P(|Z| <= z) = level for a
// standard normal Z, via the Beasley-Springer-Moro rational approximation.
func normalQuantileTwoSided(level float64) float64 {
	p := (1 + level) / 2
	return normalQuantile(p)
}

// normalQuantile returns the p-quantile of the standard normal
// distribution (Moro's rational approximation, abs error < 3e-9).
func normalQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	a := [4]float64{2.50662823884, -18.61500062529, 41.39119773534, -25.44106049637}
	b := [4]float64{-8.47351093090, 23.08336743743, -21.06224101826, 3.13082909833}
	c := [9]float64{
		0.3374754822726147, 0.9761690190917186, 0.1607979714918209,
		0.0276438810333863, 0.0038405729373609, 0.0003951896511919,
		0.0000321767881768, 0.0000002888167364, 0.0000003960315187,
	}
	y := p - 0.5
	if math.Abs(y) < 0.42 {
		r := y * y
		num := ((a[3]*r+a[2])*r+a[1])*r + a[0]
		den := (((b[3]*r+b[2])*r+b[1])*r+b[0])*r + 1
		return y * num / den
	}
	r := p
	if y > 0 {
		r = 1 - p
	}
	r = math.Log(-math.Log(r))
	x := c[0]
	pow := 1.0
	for i := 1; i < 9; i++ {
		pow *= r
		x += c[i] * pow
	}
	if y < 0 {
		return -x
	}
	return x
}

// Percentile returns the p-quantile (0 <= p <= 1) of xs by linear
// interpolation between order statistics, without mutating xs. An empty
// slice yields 0.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	// Only two order statistics enter the answer, so quickselect (O(n))
	// finds them instead of sorting the copy (O(n log n)). Order
	// statistics are exact values — the result is bit-identical to the
	// sorted implementation this replaced.
	work := make([]float64, len(xs))
	copy(work, xs)
	if p <= 0 {
		return minOf(work)
	}
	if p >= 1 {
		return maxOf(work)
	}
	pos := p * float64(len(work)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(work) {
		return maxOf(work)
	}
	a := quickselect(work, lo)
	// quickselect leaves work[lo+1:] holding exactly the ranks above lo,
	// so the next order statistic is their minimum.
	b := minOf(work[lo+1:])
	return a*(1-frac) + b*frac
}

func minOf(xs []float64) float64 {
	m := xs[0]
	for _, v := range xs[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

func maxOf(xs []float64) float64 {
	m := xs[0]
	for _, v := range xs[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// quickselect partially sorts xs in place so that xs[k] holds the k-th
// order statistic, everything before it is <= xs[k] and everything after
// is >= xs[k], and returns xs[k]. Median-of-three Hoare partitioning
// with an insertion-sort tail; deterministic for a given input.
func quickselect(xs []float64, k int) float64 {
	lo, hi := 0, len(xs)-1
	for hi > lo {
		if hi-lo < 16 {
			for i := lo + 1; i <= hi; i++ {
				for j := i; j > lo && xs[j] < xs[j-1]; j-- {
					xs[j], xs[j-1] = xs[j-1], xs[j]
				}
			}
			break
		}
		mid := lo + (hi-lo)/2
		if xs[mid] < xs[lo] {
			xs[mid], xs[lo] = xs[lo], xs[mid]
		}
		if xs[hi] < xs[mid] {
			xs[hi], xs[mid] = xs[mid], xs[hi]
			if xs[mid] < xs[lo] {
				xs[mid], xs[lo] = xs[lo], xs[mid]
			}
		}
		pivot := xs[mid]
		i, j := lo, hi
		for i <= j {
			for xs[i] < pivot {
				i++
			}
			for xs[j] > pivot {
				j--
			}
			if i <= j {
				xs[i], xs[j] = xs[j], xs[i]
				i++
				j--
			}
		}
		switch {
		case k <= j:
			hi = j
		case k >= i:
			lo = i
		default:
			return xs[k] // xs[j+1 .. i-1] all equal the pivot
		}
	}
	return xs[k]
}

// sortFloat64s is an in-place quicksort with insertion-sort cutoff
// (avoiding the sort package's interface overhead in the simulator's
// result path is immaterial; this simply keeps the package stdlib-free of
// sort.Slice allocations).
func sortFloat64s(xs []float64) {
	if len(xs) < 16 {
		for i := 1; i < len(xs); i++ {
			for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
				xs[j], xs[j-1] = xs[j-1], xs[j]
			}
		}
		return
	}
	pivot := xs[len(xs)/2]
	left, right := 0, len(xs)-1
	for left <= right {
		for xs[left] < pivot {
			left++
		}
		for xs[right] > pivot {
			right--
		}
		if left <= right {
			xs[left], xs[right] = xs[right], xs[left]
			left++
			right--
		}
	}
	sortFloat64s(xs[:right+1])
	sortFloat64s(xs[left:])
}

// BatchMeans groups the series xs into nbatches equal-size batches
// (discarding any remainder at the tail) and returns a Welford accumulator
// over the batch means. This is the classic output-analysis technique for
// correlated simulation series.
func BatchMeans(xs []float64, nbatches int) (*Welford, error) {
	if nbatches < 2 {
		return nil, errors.New("numeric: BatchMeans needs at least 2 batches")
	}
	size := len(xs) / nbatches
	if size < 1 {
		return nil, errors.New("numeric: BatchMeans has fewer observations than batches")
	}
	w := &Welford{}
	for b := 0; b < nbatches; b++ {
		s := 0.0
		for i := b * size; i < (b+1)*size; i++ {
			s += xs[i]
		}
		w.Add(s / float64(size))
	}
	return w, nil
}
