package convolution

import (
	"errors"
	"math"
	"testing"

	"repro/internal/mva"
	"repro/internal/numeric"
	"repro/internal/qnet"
)

func cyclic2(pop int, s1, s2 float64) *qnet.Network {
	return &qnet.Network{
		Stations: []qnet.Station{{Name: "a"}, {Name: "b"}},
		Chains: []qnet.Chain{{
			Name: "c", Population: pop,
			Visits:   []float64{1, 1},
			ServTime: []float64{s1, s2},
		}},
	}
}

func TestSolveBalancedCyclic(t *testing.T) {
	for k := 1; k <= 6; k++ {
		sol, err := Solve(cyclic2(k, 0.5, 0.5))
		if err != nil {
			t.Fatal(err)
		}
		want := float64(k) / (float64(k+1) * 0.5)
		if math.Abs(sol.Throughput[0]-want) > 1e-12 {
			t.Errorf("K=%d: lambda = %v, want %v", k, sol.Throughput[0], want)
		}
	}
}

func TestSolveMatchesExactMVA(t *testing.T) {
	nets := []*qnet.Network{
		cyclic2(4, 0.3, 0.8),
		func() *qnet.Network { // two chains over three stations
			return &qnet.Network{
				Stations: []qnet.Station{{Name: "s0"}, {Name: "shared"}, {Name: "s2"}},
				Chains: []qnet.Chain{
					{Name: "a", Population: 2, Visits: []float64{1, 1, 0}, ServTime: []float64{0.2, 0.1, 0}},
					{Name: "b", Population: 3, Visits: []float64{0, 1, 1}, ServTime: []float64{0, 0.1, 0.3}},
				},
			}
		}(),
		func() *qnet.Network { // IS station in the loop
			n := cyclic2(5, 2.0, 0.5)
			n.Stations[0].Kind = qnet.IS
			return n
		}(),
		func() *qnet.Network { // three chains
			return &qnet.Network{
				Stations: []qnet.Station{{Name: "x"}, {Name: "y"}, {Name: "z"}},
				Chains: []qnet.Chain{
					{Name: "a", Population: 2, Visits: []float64{1, 1, 0}, ServTime: []float64{0.3, 0.2, 0}},
					{Name: "b", Population: 2, Visits: []float64{0, 1, 1}, ServTime: []float64{0, 0.2, 0.4}},
					{Name: "c", Population: 1, Visits: []float64{1, 0, 1}, ServTime: []float64{0.3, 0, 0.4}},
				},
			}
		}(),
	}
	for ni, net := range nets {
		conv, err := Solve(net)
		if err != nil {
			t.Fatalf("net %d: %v", ni, err)
		}
		exact, err := mva.ExactMultichain(net)
		if err != nil {
			t.Fatalf("net %d: %v", ni, err)
		}
		for r := 0; r < net.R(); r++ {
			if math.Abs(conv.Throughput[r]-exact.Throughput[r]) > 1e-9*(1+exact.Throughput[r]) {
				t.Errorf("net %d chain %d: conv lambda %v vs mva %v", ni, r, conv.Throughput[r], exact.Throughput[r])
			}
		}
		for i := 0; i < net.N(); i++ {
			for r := 0; r < net.R(); r++ {
				if math.Abs(conv.QueueLen.At(i, r)-exact.QueueLen.At(i, r)) > 1e-8 {
					t.Errorf("net %d station %d chain %d: conv N %v vs mva %v",
						ni, i, r, conv.QueueLen.At(i, r), exact.QueueLen.At(i, r))
				}
			}
		}
	}
}

func TestSolveMarginalsSumToOne(t *testing.T) {
	net := cyclic2(4, 0.3, 0.8)
	sol, err := Solve(net)
	if err != nil {
		t.Fatal(err)
	}
	for i, marg := range sol.Marginal {
		sum := 0.0
		mean := 0.0
		for k, p := range marg {
			if p < -1e-12 {
				t.Errorf("station %d: negative marginal p(%d) = %v", i, k, p)
			}
			sum += p
			mean += float64(k) * p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("station %d: marginals sum to %v", i, sum)
		}
		if q := sol.QueueLen.At(i, 0); math.Abs(mean-q) > 1e-9 {
			t.Errorf("station %d: marginal mean %v vs queue length %v", i, mean, q)
		}
	}
}

func TestSolveUtilizationMatchesOffered(t *testing.T) {
	// For single-server fixed-rate stations, busy probability equals
	// offered utilisation lambda * demand.
	net := cyclic2(5, 0.3, 0.8)
	sol, err := Solve(net)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		offered := sol.Throughput[0] * net.Chains[0].Demand(i)
		if math.Abs(sol.Utilization[i]-offered) > 1e-9 {
			t.Errorf("station %d: utilisation %v vs offered %v", i, sol.Utilization[i], offered)
		}
	}
}

func TestSolveMultiServerStation(t *testing.T) {
	// Cyclic: IS think + 2-server queue. Cross-check against the
	// load-dependent single-chain MVA.
	net := cyclic2(4, 1.0, 1.0)
	net.Stations[0].Kind = qnet.IS
	net.Stations[1].Servers = 2
	sol, err := Solve(net)
	if err != nil {
		t.Fatal(err)
	}
	curve, err := mva.SingleChainLD(
		numeric.Vector{1, 1}, numeric.Vector{1, 1},
		[]qnet.Station{{Kind: qnet.IS}, {Servers: 2}}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Throughput[0]-curve.Throughput[3]) > 1e-9 {
		t.Errorf("conv lambda %v vs LD-MVA %v", sol.Throughput[0], curve.Throughput[3])
	}
	if math.Abs(sol.QueueLen.At(1, 0)-curve.QueueLen[3][1]) > 1e-9 {
		t.Errorf("conv N %v vs LD-MVA %v", sol.QueueLen.At(1, 0), curve.QueueLen[3][1])
	}
}

func TestSolveLimitedQueueDependent(t *testing.T) {
	// Explicit rate factors equivalent to 2 servers must agree with
	// Servers: 2.
	netA := cyclic2(3, 1.0, 0.7)
	netA.Stations[1].Servers = 2
	netB := cyclic2(3, 1.0, 0.7)
	netB.Stations[1].RateFactors = []float64{1, 2}
	a, err := Solve(netA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solve(netB)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Throughput[0]-b.Throughput[0]) > 1e-12 {
		t.Errorf("Servers vs RateFactors disagree: %v vs %v", a.Throughput[0], b.Throughput[0])
	}
}

func TestSolveZeroPopulation(t *testing.T) {
	net := cyclic2(0, 0.5, 0.5)
	sol, err := Solve(net)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Throughput[0] != 0 {
		t.Errorf("lambda = %v", sol.Throughput[0])
	}
	if sol.G != 1 {
		t.Errorf("G = %v, want 1 for empty lattice", sol.G)
	}
}

func TestSolveRejectsInvalid(t *testing.T) {
	net := cyclic2(2, 0.5, 0.5)
	net.Chains[0].Population = -1
	if _, err := Solve(net); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestSolveLatticeBudget(t *testing.T) {
	net := &qnet.Network{
		Stations: []qnet.Station{{Name: "a"}, {Name: "b"}},
	}
	for r := 0; r < 10; r++ {
		net.Chains = append(net.Chains, qnet.Chain{
			Name: "c", Population: 50,
			Visits:   []float64{1, 1},
			ServTime: []float64{0.5, 0.5},
		})
	}
	if _, err := Solve(net); err == nil {
		t.Fatal("expected budget error")
	}
}

func TestSolveScalingInvariance(t *testing.T) {
	// Multiplying all of one chain's service times by a constant must
	// scale its throughput down by that constant at fixed queue lengths'
	// structure — more simply: the solver's internal scaling must make a
	// network with huge demands solvable and consistent with MVA.
	net := cyclic2(8, 300, 800)
	conv, err := Solve(net)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := mva.ExactMultichain(net)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(conv.Throughput[0]-exact.Throughput[0]) > 1e-12*(1+exact.Throughput[0]) {
		t.Errorf("large-demand lambda %v vs mva %v", conv.Throughput[0], exact.Throughput[0])
	}
}

// TestSolveLargePopulationStable: before the stability guard, any lattice
// with total population > 170 produced NaN through the factorial tables of
// eq. 3.27 (when an IS or queue-dependent station is present) and the
// solver failed with "degenerate normalisation constant". The log2-space
// capacity coefficients plus the power-of-two rescaling extend the
// reachable range; the exact MVA recursion — stable by construction — is
// the oracle.
func TestSolveLargePopulationStable(t *testing.T) {
	const pop = 200
	n := cyclic2(pop, 2.0, 0.05) // IS think stage + fast queue
	n.Stations[0].Kind = qnet.IS
	sol, err := Solve(n)
	if err != nil {
		t.Fatalf("Solve at population %d: %v", pop, err)
	}
	curve, err := mva.ExactSingleChain(
		numeric.Vector{1, 1}, numeric.Vector{2.0, 0.05}, []bool{true, false}, pop)
	if err != nil {
		t.Fatal(err)
	}
	wantLam := curve.Throughput[pop-1]
	if math.Abs(sol.Throughput[0]-wantLam) > 1e-9*wantLam {
		t.Errorf("lambda = %v, exact MVA %v", sol.Throughput[0], wantLam)
	}
	wantQ := curve.QueueLen[pop-1]
	for i := 0; i < 2; i++ {
		if math.Abs(sol.QueueLen.At(i, 0)-wantQ[i]) > 1e-6*(1+wantQ[i]) {
			t.Errorf("station %d queue = %v, exact MVA %v", i, sol.QueueLen.At(i, 0), wantQ[i])
		}
	}
	// Marginals must still be a distribution.
	for i := range sol.Marginal {
		sum := 0.0
		for _, p := range sol.Marginal[i] {
			if p < -1e-12 {
				t.Fatalf("station %d: negative marginal %v", i, p)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Errorf("station %d: marginal mass %v", i, sum)
		}
	}
}

// TestSolveUnstableTyped: a computation that leaves the float64 range even
// after rescaling reports ErrUnstable rather than a silent NaN or a
// generic error string.
func TestSolveUnstableTyped(t *testing.T) {
	if _, err := rescalePow2([]float64{1, math.Inf(1)}); !errors.Is(err, ErrUnstable) {
		t.Errorf("overflowed array: err = %v, want ErrUnstable", err)
	}
	if _, err := rescalePow2([]float64{0, 0}); !errors.Is(err, ErrUnstable) {
		t.Errorf("all-zero array: err = %v, want ErrUnstable", err)
	}
	if _, err := rescalePow2([]float64{1, math.NaN()}); !errors.Is(err, ErrUnstable) {
		t.Errorf("NaN array: err = %v, want ErrUnstable", err)
	}
	// In range: no shift, values untouched.
	g := []float64{0.5, -2}
	shift, err := rescalePow2(g)
	if err != nil || shift != 0 || g[0] != 0.5 || g[1] != -2 {
		t.Errorf("in-range array modified: shift=%d err=%v g=%v", shift, err, g)
	}
	// Far out of range: exact power-of-two normalisation.
	big := math.Ldexp(1, 600)
	g = []float64{big, big / 4}
	shift, err = rescalePow2(g)
	if err != nil {
		t.Fatal(err)
	}
	if math.Ldexp(g[0], shift) != big || math.Ldexp(g[1], shift) != big/4 {
		t.Errorf("rescale not exact: shift=%d g=%v", shift, g)
	}
}
