package convolution

import (
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/numeric"
	"repro/internal/qnet"
)

// randomNetwork draws a small closed multichain network mixing fixed-rate,
// IS, multi-server, and explicitly queue-dependent stations, with service
// times spanning enough orders of magnitude to exercise the scaling and
// log2 paths.
func randomNetwork(rng *rand.Rand) (*qnet.Network, numeric.IntVector) {
	n := 1 + rng.Intn(4)
	w := 1 + rng.Intn(3)
	net := &qnet.Network{Stations: make([]qnet.Station, n), Chains: make([]qnet.Chain, w)}
	for i := range net.Stations {
		switch rng.Intn(5) {
		case 0:
			net.Stations[i].Kind = qnet.IS
		case 1:
			net.Stations[i].Servers = 2
		case 2:
			net.Stations[i].RateFactors = []float64{1, 1.5, 2}
		}
	}
	scale := math.Pow(10, float64(rng.Intn(7)-3)) // 1e-3 .. 1e3
	// FCFS product form requires chain-independent service times; draw
	// one mean per station and vary the visit ratios per chain.
	servTime := make([]float64, n)
	for i := range servTime {
		servTime[i] = scale * (0.05 + rng.Float64())
	}
	hmax := numeric.NewIntVector(w)
	for r := range net.Chains {
		c := &net.Chains[r]
		c.Visits = make([]float64, n)
		c.ServTime = make([]float64, n)
		visited := false
		for i := 0; i < n; i++ {
			if rng.Float64() < 0.7 || (!visited && i == n-1) {
				c.Visits[i] = 0.25 + rng.Float64()*2
				c.ServTime[i] = servTime[i]
				visited = true
			}
		}
		hmax[r] = 1 + rng.Intn(3)
	}
	return net, hmax
}

func solveFreshAt(t *testing.T, net *qnet.Network, h numeric.IntVector) (*Solution, error) {
	t.Helper()
	fresh := &qnet.Network{Stations: net.Stations, Chains: make([]qnet.Chain, len(net.Chains))}
	copy(fresh.Chains, net.Chains)
	for r := range fresh.Chains {
		fresh.Chains[r].Population = h[r]
	}
	return Solve(fresh)
}

func relDiff(a, b float64) float64 {
	return math.Abs(a-b) / (1 + math.Max(math.Abs(a), math.Abs(b)))
}

// compareSolutions checks that an engine evaluation agrees with a fresh
// Solve at the same population vector to within tol (relative on means,
// absolute on probabilities).
func compareSolutions(t *testing.T, tag string, got, want *Solution, tol float64) {
	t.Helper()
	for w := range want.Throughput {
		if relDiff(got.Throughput[w], want.Throughput[w]) > tol {
			t.Errorf("%s: chain %d throughput %v vs fresh %v", tag, w, got.Throughput[w], want.Throughput[w])
		}
	}
	rows, cols := len(want.Marginal), len(want.Throughput)
	for i := 0; i < rows; i++ {
		for w := 0; w < cols; w++ {
			if relDiff(got.QueueLen.At(i, w), want.QueueLen.At(i, w)) > tol {
				t.Errorf("%s: station %d chain %d queue %v vs fresh %v",
					tag, i, w, got.QueueLen.At(i, w), want.QueueLen.At(i, w))
			}
		}
		if relDiff(got.Utilization[i], want.Utilization[i]) > tol {
			t.Errorf("%s: station %d utilisation %v vs fresh %v", tag, i, got.Utilization[i], want.Utilization[i])
		}
		if len(got.Marginal[i]) != len(want.Marginal[i]) {
			t.Fatalf("%s: station %d marginal length %d vs %d", tag, i, len(got.Marginal[i]), len(want.Marginal[i]))
		}
		for k := range want.Marginal[i] {
			if math.Abs(got.Marginal[i][k]-want.Marginal[i][k]) > tol {
				t.Errorf("%s: station %d marginal p(%d) %v vs fresh %v",
					tag, i, k, got.Marginal[i][k], want.Marginal[i][k])
			}
		}
	}
	// The normalisation constants may carry different power-of-two
	// shifts; compare as true values via the shift difference.
	if want.G > 0 && got.G > 0 {
		ratio := got.G / want.G * math.Exp2(float64(got.GShift-want.GShift))
		if math.Abs(ratio-1) > tol {
			t.Errorf("%s: G %v<<%d vs fresh %v<<%d", tag, got.G, got.GShift, want.G, want.GShift)
		}
	}
}

// TestEngineMatchesSolveProperty is the property-test corpus of the
// acceptance criteria: EvalAt(H) for every H inside a randomized box must
// agree with a fresh Solve at H to 1e-9.
func TestEngineMatchesSolveProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		net, hmax := randomNetwork(rng)
		eng, err := NewEngine(net, hmax, EngineOptions{})
		if err != nil {
			t.Fatalf("trial %d: NewEngine(%v): %v", trial, hmax, err)
		}
		// Every point of the box, including the interior and h = 0.
		numeric.LatticeWalk(hmax, func(p numeric.IntVector) {
			h := p.Clone()
			got, err := eng.EvalAt(h)
			if err != nil {
				t.Fatalf("trial %d: EvalAt(%v): %v", trial, h, err)
			}
			want, err := solveFreshAt(t, net, h)
			if err != nil {
				t.Fatalf("trial %d: fresh Solve(%v): %v", trial, h, err)
			}
			compareSolutions(t, hmax.String()+"@"+h.String(), got, want, 1e-9)
		})
	}
}

// TestEngineExtensionMatchesFresh grows the box one coordinate at a time
// (the Hooke–Jeeves access pattern) and cross-checks every evaluation
// against a fresh solve after each extension.
func TestEngineExtensionMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		net, hmax := randomNetwork(rng)
		eng, err := NewEngine(net, hmax, EngineOptions{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		h := hmax.Clone()
		for step := 0; step < 4; step++ {
			h[rng.Intn(len(h))] += 1 + rng.Intn(2)
			got, err := eng.EvalAt(h)
			if err != nil {
				t.Fatalf("trial %d step %d: EvalAt(%v): %v", trial, step, h, err)
			}
			if !eng.lat.covers(h) {
				t.Fatalf("trial %d step %d: box %v does not cover %v", trial, step, eng.Hmax(), h)
			}
			want, err := solveFreshAt(t, net, h)
			if err != nil {
				t.Fatalf("trial %d step %d: %v", trial, step, err)
			}
			compareSolutions(t, "extend@"+h.String(), got, want, 1e-9)
			// Interior points must stay exact after the remap too.
			interior := numeric.NewIntVector(len(h))
			for w := range h {
				interior[w] = h[w] / 2
			}
			got, err = eng.EvalAt(interior)
			if err != nil {
				t.Fatalf("trial %d step %d: interior: %v", trial, step, err)
			}
			want, err = solveFreshAt(t, net, interior)
			if err != nil {
				t.Fatalf("trial %d step %d: interior fresh: %v", trial, step, err)
			}
			compareSolutions(t, "interior@"+interior.String(), got, want, 1e-9)
		}
	}
}

// TestEngineParallelBitIdentical requires the Workers > 1 lattice sweep
// to reproduce the serial build bit for bit, both on fresh builds and on
// incremental extensions.
func TestEngineParallelBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 20; trial++ {
		net, hmax := randomNetwork(rng)
		serial, err := NewEngine(net, hmax, EngineOptions{Workers: 1})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		parallel, err := NewEngine(net, hmax, EngineOptions{Workers: 4})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		grown := hmax.Clone()
		grown[trial%len(grown)] += 2
		for _, eng := range []*Engine{serial, parallel} {
			if err := eng.EnsureBox(grown); err != nil {
				t.Fatalf("trial %d: EnsureBox: %v", trial, err)
			}
			if _, err := eng.EvalAt(grown); err != nil {
				t.Fatalf("trial %d: EvalAt: %v", trial, err)
			}
		}
		sameScaled := func(tag string, a, b scaled) {
			if a.shift != b.shift || len(a.v) != len(b.v) {
				t.Fatalf("trial %d %s: shape/shift mismatch (%d vs %d)", trial, tag, a.shift, b.shift)
			}
			for k := range a.v {
				if math.Float64bits(a.v[k]) != math.Float64bits(b.v[k]) {
					t.Fatalf("trial %d %s[%d]: %v != %v", trial, tag, k, a.v[k], b.v[k])
				}
			}
		}
		ls, lp := serial.lat, parallel.lat
		for k := range ls.prefix {
			sameScaled("prefix", ls.prefix[k], lp.prefix[k])
			sameScaled("suffix", ls.suffix[k], lp.suffix[k])
		}
		for i := range ls.c {
			if (ls.c[i].v == nil) != (lp.c[i].v == nil) {
				t.Fatalf("trial %d: c[%d] presence mismatch", trial, i)
			}
			if ls.c[i].v != nil {
				sameScaled("c", ls.c[i], lp.c[i])
			}
			if ls.gPlus[i].v != nil {
				sameScaled("g+", ls.gPlus[i], lp.gPlus[i])
			}
			if ls.gMinus[i].v != nil {
				sameScaled("g-", ls.gMinus[i], lp.gMinus[i])
			}
		}
	}
}

// TestEngineMeansMatchesEval checks the cheap read path against the full
// solution path.
func TestEngineMeansMatchesEval(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 20; trial++ {
		net, hmax := randomNetwork(rng)
		eng, err := NewEngine(net, hmax, EngineOptions{})
		if err != nil {
			t.Fatal(err)
		}
		numeric.LatticeWalk(hmax, func(p numeric.IntVector) {
			m, err := eng.MeansAt(p)
			if err != nil {
				t.Fatalf("MeansAt(%v): %v", p, err)
			}
			sol, err := eng.EvalAt(p)
			if err != nil {
				t.Fatalf("EvalAt(%v): %v", p, err)
			}
			for w := range m.Throughput {
				if m.Throughput[w] != sol.Throughput[w] {
					t.Errorf("throughput mismatch at %v chain %d", p, w)
				}
			}
			for i := range net.Stations {
				for w := range m.Throughput {
					if relDiff(m.QueueLen.At(i, w), sol.QueueLen.At(i, w)) > 1e-12 {
						t.Errorf("queue mismatch at %v station %d chain %d", p, i, w)
					}
				}
			}
		})
	}
}

// TestEngineConcurrentEval hammers one engine from many goroutines, mixing
// in-box evaluations with box growth; run under -race this is the
// concurrency regression test.
func TestEngineConcurrentEval(t *testing.T) {
	net, hmax := randomNetwork(rand.New(rand.NewSource(5)))
	eng, err := NewEngine(net, hmax, EngineOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for k := 0; k < 40; k++ {
				h := numeric.NewIntVector(len(hmax))
				for w := range h {
					h[w] = rng.Intn(hmax[w] + 3)
				}
				if _, err := eng.MeansAt(h); err != nil {
					t.Errorf("MeansAt(%v): %v", h, err)
					return
				}
				if k%10 == 0 {
					if _, err := eng.EvalAt(h); err != nil {
						t.Errorf("EvalAt(%v): %v", h, err)
						return
					}
				}
			}
		}(int64(100 + g))
	}
	wg.Wait()
}

// TestEngineBudget: a box beyond the configured budget must be refused at
// construction and at growth, leaving the engine usable.
func TestEngineBudget(t *testing.T) {
	net := cyclic2(1, 0.5, 0.5)
	if _, err := NewEngine(net, numeric.IntVector{1000000}, EngineOptions{Budget: 1024}); err == nil {
		t.Fatal("expected budget error at construction")
	}
	eng, err := NewEngine(net, numeric.IntVector{10}, EngineOptions{Budget: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.EnsureBox(numeric.IntVector{1000}); err == nil {
		t.Fatal("expected budget error on growth")
	}
	// Engine still answers inside its old box.
	if _, err := eng.EvalAt(numeric.IntVector{10}); err != nil {
		t.Fatalf("engine unusable after refused growth: %v", err)
	}
}

// TestEngineUnstablePropagates: a network whose normalisation constant
// cannot be represented even after rescaling must report ErrUnstable, not
// NaN results.
func TestEngineUnstablePropagates(t *testing.T) {
	// Two stations with astronomically separated demands on one chain
	// push g's dynamic range past float64 even after per-chain scaling.
	net := &qnet.Network{
		Stations: []qnet.Station{{Name: "a"}, {Name: "b", RateFactors: []float64{1e-300, 1e300}}},
		Chains: []qnet.Chain{{
			Name: "c", Population: 4,
			Visits:   []float64{1, 1},
			ServTime: []float64{1e-280, 1e280},
		}},
	}
	_, err := NewEngine(net, numeric.IntVector{600}, EngineOptions{})
	if err == nil {
		return // representable after all — rescaling is allowed to win
	}
	if !errors.Is(err, ErrUnstable) {
		t.Fatalf("err = %v, want ErrUnstable", err)
	}
}

// TestEngineZeroPopulation mirrors TestSolveZeroPopulation through the
// cached path.
func TestEngineZeroPopulation(t *testing.T) {
	eng, err := NewEngine(cyclic2(0, 0.5, 0.5), numeric.IntVector{3}, EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := eng.EvalAt(numeric.IntVector{0})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Throughput[0] != 0 || sol.G != 1 {
		t.Fatalf("lambda = %v, G = %v", sol.Throughput[0], sol.G)
	}
}

// TestEngineMaxBox pins the hard box bound the sharded search's slab
// workers rely on: queries inside MaxBox are served (and bit-identical
// to an unbounded engine's), queries beyond it fail with ErrBoxBounded
// instead of growing the lattice, and construction beyond the bound is
// rejected outright.
func TestEngineMaxBox(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	net, hmax := randomNetwork(rng)

	bounded, err := NewEngine(net, hmax, EngineOptions{MaxBox: hmax.Clone()})
	if err != nil {
		t.Fatalf("NewEngine with MaxBox=hmax: %v", err)
	}
	free, err := NewEngine(net, hmax, EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}

	// Inside the bound: identical to the unbounded engine, bit for bit.
	numeric.LatticeWalk(hmax, func(p numeric.IntVector) {
		got, err := bounded.EvalAt(p.Clone())
		if err != nil {
			t.Fatalf("bounded EvalAt(%v): %v", p, err)
		}
		want, err := free.EvalAt(p.Clone())
		if err != nil {
			t.Fatalf("free EvalAt(%v): %v", p, err)
		}
		for w := range want.Throughput {
			if math.Float64bits(got.Throughput[w]) != math.Float64bits(want.Throughput[w]) {
				t.Fatalf("throughput at %v differs under MaxBox: %v vs %v", p, got.Throughput[w], want.Throughput[w])
			}
		}
	})

	// One past the bound on any axis: ErrBoxBounded, lattice unchanged.
	sizeBefore := bounded.Size()
	for w := range hmax {
		over := hmax.Clone()
		over[w]++
		if _, err := bounded.EvalAt(over); !errors.Is(err, ErrBoxBounded) {
			t.Fatalf("EvalAt(%v) beyond MaxBox: err = %v, want ErrBoxBounded", over, err)
		}
		if err := bounded.EnsureBox(over); !errors.Is(err, ErrBoxBounded) {
			t.Fatalf("EnsureBox(%v) beyond MaxBox: err = %v, want ErrBoxBounded", over, err)
		}
	}
	if bounded.Size() != sizeBefore {
		t.Fatalf("rejected queries grew the lattice: %d -> %d", sizeBefore, bounded.Size())
	}

	// Construction beyond the bound and dimension mismatches fail fast.
	small := hmax.Clone()
	small[0]--
	if small[0] >= 0 {
		if _, err := NewEngine(net, hmax, EngineOptions{MaxBox: small}); !errors.Is(err, ErrBoxBounded) {
			t.Fatalf("NewEngine beyond MaxBox: err = %v, want ErrBoxBounded", err)
		}
	}
	if _, err := NewEngine(net, hmax, EngineOptions{MaxBox: append(hmax.Clone(), 1)}); err == nil {
		t.Fatal("NewEngine accepted a MaxBox of the wrong dimension")
	}
}
