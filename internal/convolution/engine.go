// The incremental convolution engine: one shared normalisation-constant
// lattice per search instead of one full solve per candidate.
//
// A dimensioning search evaluates many population (window) vectors H that
// all live inside one bounding box Hmax. The convolution recursion already
// computes g at *every* lattice point 0 <= i <= Hmax on its way to
// g(Hmax), so the engine builds the per-station partial convolutions once
// at the box and answers EvalAt(H) for any H <= Hmax from cached slices:
//
//   - throughputs are the ratios beta_w * g(H-e_w)/g(H) (eq. 3.31),
//   - fixed-rate queue lengths read the cached g_(i+) array (eq. 3.36),
//   - marginals and queue-dependent queue lengths read the cached
//     g_(i-) arrays (eq. 3.24a) and capacity coefficients (eq. 3.27).
//
// The per-station g_(i-) arrays come from the classic prefix x suffix
// trick: prefix[k] convolves stations 0..k-1, suffix[k] convolves
// stations k..n-1, and g_(i-) = prefix[i] (*) suffix[i+1] — each station
// is convolved exactly once per direction instead of n-1 times.
//
// When a search grows the box along one chain (Hooke–Jeeves perturbs one
// coordinate at a time) the lattice is extended incrementally: retained
// arrays are remapped to the new strides and only the new region is
// computed. Station sweeps can be parallelised across hyperplanes of
// constant total population; every point's value is a rounding-identical
// expression of fully-computed earlier planes, so parallel results are
// bit-identical to serial ones.
package convolution

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/numeric"
	"repro/internal/qnet"
)

// DefaultEngineBudget caps the bounding-box lattice of an Engine when
// EngineOptions.Budget is zero. Engines keep Theta(stations) lattice-sized
// arrays alive, so the default is far below Solve's LatticeBudget.
const DefaultEngineBudget = 1 << 20

// hoistFloatBudget bounds the float64s the prefix/suffix reorganisation of
// Solve may retain; beyond it Solve reverts to the historical
// constant-memory per-station path.
const hoistFloatBudget = 1 << 26

// hoistFloats is the worst-case float64 count of a fully materialised
// lattice: prefix and suffix chains (n+1 each), capacity coefficients,
// g_(i+), g_(i-) (n each), plus the plane index.
func hoistFloats(n, size int) int { return (5*n + 3) * size }

// EngineOptions configures an Engine.
type EngineOptions struct {
	// Workers is the number of goroutines used for lattice sweeps when
	// building or extending the box. Values <= 1 run serially; parallel
	// sweeps are bit-identical to serial ones.
	Workers int
	// Budget caps the bounding-box lattice in points (not bytes).
	// Zero means DefaultEngineBudget.
	Budget int
	// MaxBox, when non-nil, is a hard per-chain ceiling on the bounding
	// box: construction beyond it fails and queries beyond it return
	// ErrBoxBounded instead of growing the lattice. A slab worker of the
	// sharded exhaustive search sets it to its slab corner so that no
	// query — however buggy the caller — can ever grow the lattice past
	// the memory the slab was budgeted for. The check is point-local (a
	// function of the queried population alone, never of growth history),
	// preserving the engine's determinism contract.
	MaxBox numeric.IntVector
}

// ErrBoxBounded is returned for queries beyond EngineOptions.MaxBox: the
// caller asked the engine to grow past the hard slab bound it was
// constructed with.
var ErrBoxBounded = errors.New("convolution: query exceeds the engine's hard box bound")

// Means is the cheap evaluation product of Engine.MeansAt: chain
// throughputs and per-station per-chain mean queue lengths, without the
// marginal distributions of a full Solution.
type Means struct {
	// Throughput[w] is chain w's throughput per unit visit ratio.
	Throughput numeric.Vector
	// QueueLen.At(i, w) is the mean number of chain-w customers at
	// station i.
	QueueLen *numeric.Matrix
	// G and GShift are the normalisation constant at the evaluated
	// population vector, as in Solution.
	G      float64
	GShift int
}

// Engine answers repeated exact evaluations of one network at many
// population vectors by caching the convolution lattice of a bounding
// box. It is safe for concurrent use: evaluations inside the current box
// proceed under a read lock, while box growth and lazy materialisation
// serialise under a write lock. The cache is rebuildable state derived
// from the network alone — it must never be serialised into checkpoints.
type Engine struct {
	mu   sync.RWMutex
	net  *qnet.Network // validated, effective-closed
	opts EngineOptions
	lat  *lattice
}

// NewEngine validates net and builds the convolution lattice at the
// bounding box hmax (one entry per chain). Chain populations recorded in
// net are ignored; EvalAt supplies the population vector per query.
func NewEngine(net *qnet.Network, hmax numeric.IntVector, opts EngineOptions) (*Engine, error) {
	if err := net.Validate(); err != nil {
		return nil, err
	}
	net = net.EffectiveClosed()
	if len(hmax) != net.R() {
		return nil, fmt.Errorf("convolution: box has %d chains, network has %d", len(hmax), net.R())
	}
	if opts.Budget <= 0 {
		opts.Budget = DefaultEngineBudget
	}
	if opts.Workers < 1 {
		opts.Workers = 1
	}
	if opts.MaxBox != nil {
		if len(opts.MaxBox) != net.R() {
			return nil, fmt.Errorf("convolution: MaxBox has %d chains, network has %d", len(opts.MaxBox), net.R())
		}
		for w, hw := range hmax {
			if hw > opts.MaxBox[w] {
				return nil, fmt.Errorf("%w: initial box %v exceeds MaxBox %v", ErrBoxBounded, hmax, opts.MaxBox)
			}
		}
	}
	e := &Engine{net: net, opts: opts}
	lat, err := e.buildAt(hmax.Clone())
	if err != nil {
		return nil, err
	}
	e.lat = lat
	return e, nil
}

func (e *Engine) buildAt(h numeric.IntVector) (*lattice, error) {
	s, err := newSolverAt(e.net, h, e.opts.Budget)
	if err != nil {
		return nil, err
	}
	return buildLattice(s, e.opts.Workers)
}

// Hmax returns a copy of the current bounding box.
func (e *Engine) Hmax() numeric.IntVector {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.lat.s.h.Clone()
}

// Size returns the number of lattice points in the current box.
func (e *Engine) Size() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.lat.s.size
}

// MemoryBytes reports the engine's retained lattice memory: every
// materialised float array (prefix/suffix chains, capacity coefficients,
// doubled and leave-one-out convolutions) plus the plane index. Callers
// budgeting a shared oracle cache (core.OracleCache) poll this after
// queries, since EnsureBox grows the footprint lazily.
func (e *Engine) MemoryBytes() int64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	var n int64
	for _, plane := range e.lat.planes {
		n += int64(len(plane)) * 4
	}
	for _, group := range [][]scaled{e.lat.prefix, e.lat.suffix, e.lat.c, e.lat.gPlus, e.lat.gMinus} {
		for i := range group {
			n += int64(len(group[i].v)) * 8
		}
	}
	return n
}

// EnsureBox grows the bounding box to cover h (elementwise maximum with
// the current box). Growth is incremental: retained arrays are remapped
// and only the new lattice region is computed. On any numerical trouble
// it falls back to a fresh build at the grown box; the engine keeps its
// previous consistent state if that fails too.
func (e *Engine) EnsureBox(h numeric.IntVector) error {
	if err := e.checkQuery(h); err != nil {
		return err
	}
	e.mu.RLock()
	covered := e.lat.covers(h)
	e.mu.RUnlock()
	if covered {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.growLocked(h)
}

func (e *Engine) growLocked(h numeric.IntVector) error {
	if e.lat.covers(h) {
		return nil
	}
	grown := e.lat.s.h.Clone()
	for w, hw := range h {
		if hw > grown[w] {
			grown[w] = hw
		}
	}
	s, err := newSolverAt(e.net, grown, e.opts.Budget)
	if err != nil {
		return err
	}
	lat, err := e.lat.extendTo(s, e.opts.Workers)
	if err != nil {
		// Incremental extension saw values the old scale cannot
		// represent (a fresh build rescales mid-chain); rebuild.
		lat, err = buildLattice(s, e.opts.Workers)
		if err != nil {
			return err
		}
	}
	e.lat = lat
	return nil
}

func (e *Engine) checkQuery(h numeric.IntVector) error {
	if len(h) != e.net.R() {
		return fmt.Errorf("convolution: query has %d chains, network has %d", len(h), e.net.R())
	}
	if !h.AllNonNegative() {
		return fmt.Errorf("convolution: negative population in query %v", h)
	}
	if e.opts.MaxBox != nil {
		for w, hw := range h {
			if hw > e.opts.MaxBox[w] {
				return fmt.Errorf("%w: population %v exceeds MaxBox %v", ErrBoxBounded, h, e.opts.MaxBox)
			}
		}
	}
	return nil
}

// EvalAt returns the full exact solution (throughputs, queue lengths,
// utilisations, marginals) at population vector h, growing the box if h
// lies outside it. Inside an already-built box the per-chain quantities
// are slice reads; marginals walk the sub-lattice dominated by h but
// rebuild nothing.
func (e *Engine) EvalAt(h numeric.IntVector) (*Solution, error) {
	if err := e.checkQuery(h); err != nil {
		return nil, err
	}
	e.mu.RLock()
	if e.lat.covers(h) && e.lat.gMinusReady() {
		sol, err := e.lat.evalAt(h)
		e.mu.RUnlock()
		return sol, err
	}
	e.mu.RUnlock()
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.growLocked(h); err != nil {
		return nil, err
	}
	if err := e.lat.ensureGMinus(-1); err != nil {
		return nil, err
	}
	return e.lat.evalAt(h)
}

// MeansAt returns throughputs and mean queue lengths at h. For networks
// of fixed-rate and IS stations (every window-dimensioning model) this is
// pure slice reads inside a built box; queue-dependent stations add a
// sub-lattice walk over cached arrays.
func (e *Engine) MeansAt(h numeric.IntVector) (*Means, error) {
	if err := e.checkQuery(h); err != nil {
		return nil, err
	}
	e.mu.RLock()
	if e.lat.covers(h) {
		m, err := e.lat.meansAt(h)
		e.mu.RUnlock()
		return m, err
	}
	e.mu.RUnlock()
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.growLocked(h); err != nil {
		return nil, err
	}
	return e.lat.meansAt(h)
}

// scaled is a lattice-sized array with a power-of-two exponent: true
// values are v[i] * 2^shift. All rescaling is exact, so shifts never
// perturb ratios.
type scaled struct {
	v     []float64
	shift int
}

// rescale renormalises the array if its peak drifted out of range.
func (a *scaled) rescale() error {
	exp, err := rescalePow2(a.v)
	if err != nil {
		return err
	}
	a.shift += exp
	return nil
}

// lattice is the cached convolution state of one bounding box.
type lattice struct {
	s      *solver
	planes [][]int32 // lattice indices grouped by total population
	// prefix[k] convolves stations 0..k-1 (prefix[0] is the identity);
	// prefix[n] is the full g array. suffix[k] convolves stations
	// k..n-1. cShift[k] accumulates the capacity-coefficient shifts of
	// stations 0..k-1 into prefix[k].shift (and symmetrically for
	// suffix), so shifts compare directly across arrays.
	prefix []scaled
	suffix []scaled
	// c[i] holds station i's capacity coefficients (nil for fixed-rate
	// stations), stored at a single power-of-two scale; every point is
	// evaluated by the point-local rule of capacityAt, so extension fills
	// new points bit-identically to a fresh build at the same scale.
	c []scaled
	// gPlus[i] is g with fixed-rate station i convolved twice
	// (eq. 3.36), nil for other stations. Built eagerly: every MeansAt
	// needs it.
	gPlus []scaled
	// gMinus[i] is the convolution of all stations except i
	// (eq. 3.24a). Materialised eagerly for queue-dependent stations
	// (MeansAt needs those) and lazily for the rest (only full EvalAt
	// marginals read them).
	gMinus []scaled
}

func (l *lattice) covers(h numeric.IntVector) bool {
	for w, hw := range h {
		if hw > l.s.h[w] {
			return false
		}
	}
	return true
}

func (l *lattice) gMinusReady() bool {
	for i := range l.gMinus {
		if l.gMinus[i].v == nil {
			return false
		}
	}
	return true
}

// general reports whether station i needs explicit capacity coefficients
// (IS or queue-dependent) rather than the fixed-rate recursion.
func (l *lattice) general(i int) bool {
	st := &l.s.net.Stations[i]
	return st.Kind == qnet.IS || st.IsQueueDependent()
}

// buildPlanes groups lattice indices by total population |p|; within a
// plane, indices appear in LatticeWalk order.
func buildPlanes(s *solver) [][]int32 {
	planes := make([][]int32, s.h.Sum()+1)
	idx := int32(0)
	numeric.LatticeWalk(s.h, func(p numeric.IntVector) {
		k := p.Sum()
		planes[k] = append(planes[k], idx)
		idx++
	})
	return planes
}

// buildLattice constructs the full cached state at the solver's box.
func buildLattice(s *solver, workers int) (*lattice, error) {
	if workers < 1 {
		workers = 1
	}
	n := s.n
	l := &lattice{
		s:      s,
		planes: buildPlanes(s),
		prefix: make([]scaled, n+1),
		suffix: make([]scaled, n+1),
		c:      make([]scaled, n),
		gPlus:  make([]scaled, n),
		gMinus: make([]scaled, n),
	}
	for i := 0; i < n; i++ {
		if l.general(i) {
			cv, cShift := s.capacityCoefficients(i)
			l.c[i] = scaled{v: cv, shift: cShift}
		}
	}
	l.prefix[0] = scaled{v: s.identity()}
	for i := 0; i < n; i++ {
		out, err := l.applyStation(i, l.prefix[i], workers)
		if err != nil {
			return nil, fmt.Errorf("prefix after station %d: %w", i, err)
		}
		l.prefix[i+1] = out
	}
	l.suffix[n] = scaled{v: s.identity()}
	for i := n - 1; i >= 0; i-- {
		out, err := l.applyStation(i, l.suffix[i+1], workers)
		if err != nil {
			return nil, fmt.Errorf("suffix after station %d: %w", i, err)
		}
		l.suffix[i] = out
	}
	for i := 0; i < n; i++ {
		if !l.general(i) {
			out := scaled{v: make([]float64, s.size), shift: l.prefix[n].shift}
			l.fixedRateInto(i, l.prefix[n].v, out.v, 1, l.planes, workers)
			if err := out.rescale(); err != nil {
				return nil, fmt.Errorf("g+ of station %d: %w", i, err)
			}
			l.gPlus[i] = out
		}
		if st := &s.net.Stations[i]; st.Kind != qnet.IS && st.IsQueueDependent() {
			if err := l.ensureGMinus(i); err != nil {
				return nil, err
			}
		}
	}
	return l, nil
}

func allFinite(v []float64) bool {
	for _, x := range v {
		if math.IsInf(x, 0) || math.IsNaN(x) {
			return false
		}
	}
	return true
}

// ensureGMinus materialises g_(i-) for station i (or, when i < 0, for all
// stations) as prefix[i] (*) suffix[i+1]. Must be called with the engine
// write lock held (buildLattice and extendTo run under it too).
func (l *lattice) ensureGMinus(i int) error {
	if i < 0 {
		for j := 0; j < l.s.n; j++ {
			if err := l.ensureGMinus(j); err != nil {
				return err
			}
		}
		return nil
	}
	if l.gMinus[i].v != nil {
		return nil
	}
	out, err := l.combine(l.prefix[i], l.suffix[i+1], 1)
	if err != nil {
		return fmt.Errorf("g- of station %d: %w", i, err)
	}
	l.gMinus[i] = out
	return nil
}

// applyStation convolves station i into g, returning a rescaled result
// whose shift accumulates g's shift, the station's capacity-coefficient
// shift, and any stability rescale.
func (l *lattice) applyStation(i int, g scaled, workers int) (scaled, error) {
	var out scaled
	if !l.general(i) {
		out = scaled{v: make([]float64, l.s.size), shift: g.shift}
		l.fixedRateInto(i, g.v, out.v, 1, l.planes, workers)
	} else {
		var err error
		out, err = l.combine(l.c[i], g, workers)
		if err != nil {
			return scaled{}, err
		}
	}
	if err := out.rescale(); err != nil {
		return scaled{}, err
	}
	return out, nil
}

// fixedRateInto applies eq. 3.30 on the listed planes:
// out(p) = factor*in(p) + sum_w rho_iw * out(p - e_w), sweeping
// hyperplanes of constant total population in ascending order — every
// dependency out(p - e_w) lies one plane below (or outside the swept
// region, where out must already hold valid values), so planes may be
// split across workers with bit-identical results. factor is an exact
// power of two reconciling input and output shifts.
func (l *lattice) fixedRateInto(i int, in, out []float64, factor float64, planes [][]int32, workers int) {
	s := l.s
	for _, plane := range planes {
		sweepChunks(plane, workers, func(chunk []int32) {
			p := numeric.NewIntVector(s.w)
			for _, idx := range chunk {
				l.point(idx, p)
				acc := in[idx] * factor
				for w := 0; w < s.w; w++ {
					if p[w] > 0 {
						if r := s.rho.At(i, w); r != 0 {
							acc += r * out[int(idx)-s.strideCache[w]]
						}
					}
				}
				out[idx] = acc
			}
		})
	}
}

// point decodes a lattice index into its population vector (the inverse
// of numeric.LatticeIndex for the current box).
func (l *lattice) point(idx int32, p numeric.IntVector) {
	s := l.s
	rest := int(idx)
	for w := s.w - 1; w >= 0; w-- {
		d := s.h[w] + 1
		p[w] = rest % d
		rest /= d
	}
}

// combine computes the truncated convolution a (*) b over the whole box
// (or only newPlanes points via combineInto), pre-scaling to keep the
// products of two near-limit arrays inside the float64 range. The
// pre-scale is an exact power of two folded into the result shift, so it
// never changes a stored mantissa.
func (l *lattice) combine(a, b scaled, workers int) (scaled, error) {
	out := scaled{v: make([]float64, l.s.size), shift: a.shift + b.shift}
	if err := l.combineInto(&out, a, b, nil, workers); err != nil {
		return scaled{}, err
	}
	if err := out.rescale(); err != nil {
		return scaled{}, err
	}
	return out, nil
}

// combineInto fills out (at out.shift) with a (*) b on newPlanes (nil =
// every plane).
func (l *lattice) combineInto(out *scaled, a, b scaled, newPlanes [][]int32, workers int) error {
	s := l.s
	av, bv := a.v, b.v
	// Pre-scale so peak(a)*peak(b) stays finite: products of two arrays
	// near the 2^±512 rescale limit would overflow before the result
	// rescale could fire.
	ea := peakExp(av)
	eb := peakExp(bv)
	pre := 0
	if d := ea + eb; d > rescaleExponentLimit || d < -rescaleExponentLimit {
		pre = -d
		scaledB := make([]float64, len(bv))
		for k, v := range bv {
			scaledB[k] = math.Ldexp(v, pre)
		}
		bv = scaledB
	}
	// Residual shift between the source product scale and out's stored
	// scale, applied as an exact factor per point.
	factor := math.Ldexp(1, a.shift+b.shift-pre-out.shift)
	planes := newPlanes
	if planes == nil {
		planes = l.planes
	}
	for _, plane := range planes {
		sweepChunks(plane, workers, func(chunk []int32) {
			p := numeric.NewIntVector(s.w)
			for _, idx := range chunk {
				rest := int(idx)
				for w := s.w - 1; w >= 0; w-- {
					d := s.h[w] + 1
					p[w] = rest % d
					rest /= d
				}
				acc := 0.0
				numeric.LatticeWalk(p, func(j numeric.IntVector) {
					jIdx := numeric.LatticeIndex(j, s.h)
					if aj := av[jIdx]; aj != 0 {
						diffIdx := 0
						for w := 0; w < s.w; w++ {
							diffIdx = diffIdx*(s.h[w]+1) + (p[w] - j[w])
						}
						acc += aj * bv[diffIdx]
					}
				})
				out.v[idx] = acc * factor
			}
		})
	}
	return nil
}

// peakExp returns the binary exponent of the largest magnitude in v
// (0 for an all-zero array).
func peakExp(v []float64) int {
	maxAbs := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 || math.IsInf(maxAbs, 0) || math.IsNaN(maxAbs) {
		return 0
	}
	_, exp := math.Frexp(maxAbs)
	return exp
}

// sweepChunks splits idxs across workers goroutines; each worker writes
// disjoint output indices, so the parallel sweep is race-free and
// bit-identical to the serial one.
func sweepChunks(idxs []int32, workers int, f func(chunk []int32)) {
	if workers <= 1 || len(idxs) < 2*workers {
		f(idxs)
		return
	}
	var wg sync.WaitGroup
	chunk := (len(idxs) + workers - 1) / workers
	for lo := 0; lo < len(idxs); lo += chunk {
		hi := lo + chunk
		if hi > len(idxs) {
			hi = len(idxs)
		}
		wg.Add(1)
		go func(part []int32) {
			defer wg.Done()
			f(part)
		}(idxs[lo:hi])
	}
	wg.Wait()
}

// evalAt is the full-solution read path; callers hold at least a read
// lock and have ensured the box covers h and every g_(i-) exists.
func (l *lattice) evalAt(h numeric.IntVector) (*Solution, error) {
	if err := l.ensureGMinus(-1); err != nil {
		return nil, err
	}
	s := l.s
	gAll := &l.prefix[s.n]
	topIdx := numeric.LatticeIndex(h, s.h)
	gH := gAll.v[topIdx]
	if gH <= 0 || math.IsNaN(gH) || math.IsInf(gH, 0) {
		return nil, fmt.Errorf("%w: degenerate normalisation constant %v (shift 2^%d)", ErrUnstable, gH, gAll.shift)
	}
	sol := &Solution{
		G:           gH,
		GShift:      gAll.shift,
		Throughput:  numeric.NewVector(s.w),
		QueueLen:    numeric.NewMatrix(s.n, s.w),
		Utilization: numeric.NewVector(s.n),
		Marginal:    make([][]float64, s.n),
	}
	l.fillMeans(h, topIdx, gH, sol.Throughput, sol.QueueLen)
	total := h.Sum()
	for i := 0; i < s.n; i++ {
		marg := make([]float64, total+1)
		l.marginalWalk(i, h, gH, gAll.shift, func(j numeric.IntVector, k int, p float64) {
			marg[k] += p
		})
		sol.Marginal[i] = marg
		if s.net.Stations[i].Kind == qnet.IS {
			mean := 0.0
			for k, p := range marg {
				mean += float64(k) * p
			}
			sol.Utilization[i] = mean
		} else {
			sol.Utilization[i] = 1 - marg[0]
		}
	}
	return sol, nil
}

// meansAt is the hot read path: throughputs and queue lengths only.
func (l *lattice) meansAt(h numeric.IntVector) (*Means, error) {
	s := l.s
	gAll := &l.prefix[s.n]
	topIdx := numeric.LatticeIndex(h, s.h)
	gH := gAll.v[topIdx]
	if gH <= 0 || math.IsNaN(gH) || math.IsInf(gH, 0) {
		return nil, fmt.Errorf("%w: degenerate normalisation constant %v (shift 2^%d)", ErrUnstable, gH, gAll.shift)
	}
	m := &Means{
		Throughput: numeric.NewVector(s.w),
		QueueLen:   numeric.NewMatrix(s.n, s.w),
		G:          gH,
		GShift:     gAll.shift,
	}
	l.fillMeans(h, topIdx, gH, m.Throughput, m.QueueLen)
	return m, nil
}

// fillMeans fills chain throughputs and queue lengths at h from the
// cached arrays: slice reads for fixed-rate and IS stations, a
// sub-lattice walk over cached arrays for queue-dependent ones.
func (l *lattice) fillMeans(h numeric.IntVector, topIdx int, gH float64, lam numeric.Vector, q *numeric.Matrix) {
	s := l.s
	gAll := &l.prefix[s.n]
	for w := 0; w < s.w; w++ {
		if h[w] == 0 {
			continue
		}
		lam[w] = s.beta[w] * gAll.v[topIdx-s.strideCache[w]] / gH
	}
	for i := 0; i < s.n; i++ {
		st := &s.net.Stations[i]
		switch {
		case st.Kind == qnet.IS:
			for w := 0; w < s.w; w++ {
				q.Set(i, w, s.net.Chains[w].Demand(i)*lam[w])
			}
		case !st.IsQueueDependent():
			gp := &l.gPlus[i]
			rel := gp.shift - gAll.shift
			for w := 0; w < s.w; w++ {
				if h[w] == 0 {
					continue
				}
				q.Set(i, w, math.Ldexp(s.rho.At(i, w)*gp.v[topIdx-s.strideCache[w]]/gH, rel))
			}
		default:
			l.marginalWalk(i, h, gH, gAll.shift, func(j numeric.IntVector, k int, p float64) {
				for w := 0; w < s.w; w++ {
					if j[w] > 0 {
						q.Set(i, w, q.At(i, w)+float64(j[w])*p)
					}
				}
			})
		}
	}
}

// marginalWalk visits every occupancy vector j <= h of station i with its
// probability p = c_i(j) g_(i-)(h-j) / g(h), reconciling the power-of-two
// scales of the cached arrays.
func (l *lattice) marginalWalk(i int, h numeric.IntVector, gH float64, gShift int, visit func(j numeric.IntVector, k int, p float64)) {
	s := l.s
	gm := &l.gMinus[i]
	var cv []float64
	cShift := 0
	if l.c[i].v != nil {
		cv = l.c[i].v
		cShift = l.c[i].shift
	}
	relShift := gm.shift + cShift - gShift
	numeric.LatticeWalk(h, func(j numeric.IntVector) {
		var cj float64
		if cv != nil {
			cj = cv[numeric.LatticeIndex(j, s.h)]
		} else {
			cj = fixedRateCoefficient(s, i, j)
		}
		if cj == 0 {
			return
		}
		compIdx := 0
		k := 0
		for w := 0; w < s.w; w++ {
			compIdx = compIdx*(s.h[w]+1) + (h[w] - j[w])
			k += j[w]
		}
		visit(j, k, math.Ldexp(cj*gm.v[compIdx]/gH, relShift))
	})
}

// fixedRateCoefficient is eq. 3.27 specialised to a fixed-rate station:
// c_i(j) = (|j| choose j) prod_w rho_iw^{j_w}, the multinomial times the
// scaled-demand powers. Fixed-rate stations never store a c array (the
// recursion of eq. 3.30 replaces it), so marginals evaluate this on the
// fly; the sub-lattice walk dominates the cost either way.
func fixedRateCoefficient(s *solver, i int, j numeric.IntVector) float64 {
	total := 0
	prod := 1.0
	for w := 0; w < s.w; w++ {
		jw := j[w]
		if jw == 0 {
			continue
		}
		r := s.rho.At(i, w)
		if r == 0 {
			return 0
		}
		// Multiply the multinomial incrementally: placing jw more
		// customers multiplies by C(total+jw, jw).
		for k := 1; k <= jw; k++ {
			total++
			prod *= float64(total) / float64(k) * r
		}
	}
	return prod
}

// extendTo returns a new lattice at s2's (strictly larger) box, reusing
// every cached value of the old box: retained arrays are remapped to the
// new strides and only lattice points outside the old box are computed,
// at each array's stored power-of-two scale. An error means the old scale
// cannot represent the new region (the caller rebuilds from scratch); the
// old lattice is never modified.
func (l *lattice) extendTo(s2 *solver, workers int) (*lattice, error) {
	old := l.s
	n := old.n
	nl := &lattice{
		s:      s2,
		planes: buildPlanes(s2),
		prefix: make([]scaled, n+1),
		suffix: make([]scaled, n+1),
		c:      make([]scaled, n),
		gPlus:  make([]scaled, n),
		gMinus: make([]scaled, n),
	}
	newPlanes := newRegionPlanes(s2, old.h)
	for i := 0; i < n; i++ {
		if l.c[i].v == nil {
			continue
		}
		nl.c[i] = remapTo(old, s2, l.c[i])
		if err := nl.extendCapacity(i, newPlanes, workers); err != nil {
			return nil, err
		}
	}
	nl.prefix[0] = remapTo(old, s2, l.prefix[0])
	for i := 0; i < n; i++ {
		out := remapTo(old, s2, l.prefix[i+1])
		if err := nl.extendStation(i, nl.prefix[i], &out, newPlanes, workers); err != nil {
			return nil, fmt.Errorf("extending prefix after station %d: %w", i, err)
		}
		nl.prefix[i+1] = out
	}
	nl.suffix[n] = remapTo(old, s2, l.suffix[n])
	for i := n - 1; i >= 0; i-- {
		out := remapTo(old, s2, l.suffix[i])
		if err := nl.extendStation(i, nl.suffix[i+1], &out, newPlanes, workers); err != nil {
			return nil, fmt.Errorf("extending suffix after station %d: %w", i, err)
		}
		nl.suffix[i] = out
	}
	for i := 0; i < n; i++ {
		if l.gPlus[i].v != nil {
			out := remapTo(old, s2, l.gPlus[i])
			factor := math.Ldexp(1, nl.prefix[n].shift-out.shift)
			nl.fixedRateInto(i, nl.prefix[n].v, out.v, factor, newPlanes, workers)
			if err := out.rescale(); err != nil {
				return nil, fmt.Errorf("extending g+ of station %d: %w", i, err)
			}
			nl.gPlus[i] = out
		}
		if l.gMinus[i].v != nil {
			out := remapTo(old, s2, l.gMinus[i])
			if err := nl.combineInto(&out, nl.prefix[i], nl.suffix[i+1], newPlanes, workers); err != nil {
				return nil, err
			}
			if err := out.rescale(); err != nil {
				return nil, fmt.Errorf("extending g- of station %d: %w", i, err)
			}
			nl.gMinus[i] = out
		}
	}
	return nl, nil
}

// extendStation fills the new-region points of a station convolution:
// out already holds the remapped old-box values at its stored scale and
// in is the fully extended input array.
func (l *lattice) extendStation(i int, in scaled, out *scaled, planes [][]int32, workers int) error {
	if !l.general(i) {
		factor := math.Ldexp(1, in.shift-out.shift)
		l.fixedRateInto(i, in.v, out.v, factor, planes, workers)
	} else {
		if err := l.combineInto(out, l.c[i], in, planes, workers); err != nil {
			return err
		}
	}
	return out.rescale()
}

// extendCapacity fills the new-region capacity coefficients of station i
// at the stored shift, using the same point-local rule as the initial
// build (capacityAt), so old and new points are computed identically. If
// a new point cannot be represented at the stored scale (the grown box
// reaches values the old normalisation flushes to ±Inf) it errors and the
// caller rebuilds the whole lattice at a fresh scale.
func (l *lattice) extendCapacity(i int, planes [][]int32, workers int) error {
	s := l.s
	t := s.capacityTablesFor(i)
	shift := l.c[i].shift
	cv := l.c[i].v
	for _, plane := range planes {
		sweepChunks(plane, workers, func(chunk []int32) {
			p := numeric.NewIntVector(s.w)
			for _, idx := range chunk {
				l.point(idx, p)
				v, lv, ok := s.capacityAt(i, t, p)
				cv[idx] = capacityStore(v, lv, ok, shift)
			}
		})
	}
	if !allFinite(cv) {
		return fmt.Errorf("convolution: capacity coefficients of station %d not finite after extension", i)
	}
	return nil
}

// remapTo copies a lattice array from the old box geometry into the new
// one: values at points inside the old box land at their new mixed-radix
// indices, new-region points start at zero.
func remapTo(olds, news *solver, a scaled) scaled {
	out := make([]float64, news.size)
	oldIdx := 0
	numeric.LatticeWalk(olds.h, func(p numeric.IntVector) {
		out[numeric.LatticeIndex(p, news.h)] = a.v[oldIdx]
		oldIdx++
	})
	return scaled{v: out, shift: a.shift}
}

// newRegionPlanes groups the lattice points of the grown box that lie
// OUTSIDE the old box by total population, in LatticeWalk order within
// each plane.
func newRegionPlanes(s *solver, oldH numeric.IntVector) [][]int32 {
	planes := make([][]int32, s.h.Sum()+1)
	idx := int32(0)
	numeric.LatticeWalk(s.h, func(p numeric.IntVector) {
		for w := range p {
			if p[w] > oldH[w] {
				planes[p.Sum()] = append(planes[p.Sum()], idx)
				break
			}
		}
		idx++
	})
	return planes
}
