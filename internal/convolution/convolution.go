// Package convolution implements the exact product-form solution of
// closed multichain queueing networks by the convolution algorithm
// (Buzen 1973 for single chains; Reiser–Kobayashi 1975 for multiple
// chains), following Chapter 3 of the thesis (eqs. 3.25–3.37 and
// Tables 3.6–3.9).
//
// The normalisation constant g(H) is the N-fold convolution of the
// per-station capacity-function inverses over the population lattice
// 0 <= i <= H. Fixed-rate stations use the O(W) in-place recursion
// (eq. 3.30); infinite-server and queue-dependent stations use a direct
// truncated convolution with the capacity coefficients of eq. 3.27.
//
// Cost is Theta(prod_w (H_w+1)) space and a small multiple of that in
// time — exactly the exponential blow-up that motivates the thesis's
// approximate MVA. The solver is therefore the *reference oracle* of this
// repository (tests verify MVA and the simulator against it on small
// populations), not the production evaluator.
package convolution

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/numeric"
	"repro/internal/qnet"
)

// ErrUnstable reports that the normalisation-constant computation left the
// representable floating-point range even after power-of-two rescaling —
// the population lattice is too extreme for the convolution algorithm in
// 64-bit arithmetic. Callers should fall back to MVA (which works in
// per-station means, not lattice-sized products) for such models.
var ErrUnstable = errors.New("convolution: normalisation constant numerically unstable")

// Solution is the exact steady-state solution of a closed multichain
// network.
type Solution struct {
	// G is the normalisation constant at the full population vector,
	// under the internal per-chain demand scaling (its absolute value is
	// implementation-defined; ratios of g values are what carry meaning).
	// The true constant under that scaling is G × 2^GShift.
	G float64
	// GShift is the power-of-two exponent stripped from G by the
	// stability rescaling. Zero whenever the computation stayed well
	// inside the floating-point range (all small-population oracles).
	GShift int
	// Throughput[w] is chain w's throughput in customers/second per unit
	// visit ratio: the throughput observed at station i is
	// Visits[w][i] * Throughput[w].
	Throughput numeric.Vector
	// QueueLen.At(i, w) is the mean number of chain-w customers at
	// station i.
	QueueLen *numeric.Matrix
	// Utilization[i] is the probability that station i is non-empty
	// (for IS stations: the mean number in service).
	Utilization numeric.Vector
	// Marginal[i][k] is the probability that station i holds exactly k
	// customers (all chains combined), k = 0..H_total.
	Marginal [][]float64
}

// LatticeBudget caps the population lattice size Solve will attempt. The
// exact algorithms are exponential in the number of chains; beyond this
// many lattice points the caller should use MVA approximations instead.
const LatticeBudget = 1 << 24

// Solve computes the exact solution of the closed multichain network.
// It returns an error if the network is invalid or the population lattice
// exceeds LatticeBudget.
//
// Internally Solve builds the shared prefix/suffix lattice (the same
// machinery behind Engine) so each station is convolved exactly once per
// direction; when that would exceed hoistFloatBudget floats of memory it
// falls back to the historical per-station recomputation, which uses only
// a constant number of lattice-sized arrays.
func Solve(net *qnet.Network) (*Solution, error) {
	if err := net.Validate(); err != nil {
		return nil, err
	}
	net = net.EffectiveClosed()
	s, err := newSolverAt(net, net.Populations(), LatticeBudget)
	if err != nil {
		return nil, err
	}
	if hoistFloats(s.n, s.size) <= hoistFloatBudget {
		lat, err := buildLattice(s, 1)
		if err != nil {
			return nil, err
		}
		return lat.evalAt(s.h)
	}
	return s.solve()
}

type solver struct {
	net         *qnet.Network
	h           numeric.IntVector // full population vector (lattice bound)
	size        int
	w           int             // number of chains
	n           int             // number of stations
	rho         *numeric.Matrix // scaled demands rho[station][chain]
	beta        numeric.Vector  // per-chain demand scaling: rho = beta * trueDemand
	strideCache []int           // mixed-radix strides for e_w steps
}

// newSolverAt prepares a solver for the population box h, which need not
// match net's chain populations (the Engine evaluates many population
// vectors inside one bounding box).
func newSolverAt(net *qnet.Network, h numeric.IntVector, budget int) (*solver, error) {
	size, err := numeric.LatticeSize(h, budget)
	if err != nil {
		return nil, fmt.Errorf("convolution: %w", err)
	}
	s := &solver{net: net, h: h, size: size, w: net.R(), n: net.N()}
	// Per-chain scaling keeps rho^H near unity for numerical range.
	s.beta = numeric.NewVector(s.w)
	s.rho = numeric.NewMatrix(s.n, s.w)
	for w := 0; w < s.w; w++ {
		maxD := 0.0
		for i := 0; i < s.n; i++ {
			if d := net.Chains[w].Demand(i); d > maxD {
				maxD = d
			}
		}
		if maxD == 0 {
			maxD = 1
		}
		s.beta[w] = 1 / maxD
		for i := 0; i < s.n; i++ {
			s.rho.Set(i, w, net.Chains[w].Demand(i)*s.beta[w])
		}
	}
	// Stride of chain w in the lattice index.
	s.strideCache = make([]int, s.w)
	stride := 1
	for w := s.w - 1; w >= 0; w-- {
		s.strideCache[w] = stride
		stride *= h[w] + 1
	}
	return s, nil
}

// identity returns the unit of convolution: g(0) = 1.
func (s *solver) identity() []float64 {
	g := make([]float64, s.size)
	g[0] = 1
	return g
}

// rescaleExponentLimit is the binary-exponent drift tolerated in a running
// normalisation array before it is renormalised. Far from the float64
// limits (±1024), so a single station's convolution cannot push a
// just-rescaled array into overflow unless it multiplies magnitudes by
// more than 2^512 at once — which the rescale step then reports as
// ErrUnstable instead of letting ±Inf/NaN propagate silently.
const rescaleExponentLimit = 512

// rescalePow2 renormalises g in place when its peak magnitude has drifted
// beyond 2^±rescaleExponentLimit, returning the power-of-two exponent
// stripped (true values = stored × 2^shift). Scaling by powers of two is
// EXACT, so results are bit-identical whether or not a rescale fired —
// the guard changes no oracle value, it only extends the reachable range.
func rescalePow2(g []float64) (int, error) {
	maxAbs := 0.0
	for _, v := range g {
		if math.IsNaN(v) {
			return 0, fmt.Errorf("%w: NaN in normalisation array", ErrUnstable)
		}
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 || math.IsInf(maxAbs, 0) {
		return 0, fmt.Errorf("%w: normalisation array peak %v", ErrUnstable, maxAbs)
	}
	_, exp := math.Frexp(maxAbs)
	if exp >= -rescaleExponentLimit && exp <= rescaleExponentLimit {
		return 0, nil
	}
	for i := range g {
		g[i] = math.Ldexp(g[i], -exp)
	}
	return exp, nil
}

// convolveStation returns the convolution of g with station i's capacity
// inverse, truncated to the lattice, plus the power-of-two shift the
// station's capacity coefficients carry (nonzero only on the log2 path).
func (s *solver) convolveStation(i int, g []float64) ([]float64, int) {
	st := &s.net.Stations[i]
	if st.Kind != qnet.IS && !st.IsQueueDependent() {
		return s.convolveFixedRate(i, g), 0
	}
	c, cShift := s.capacityCoefficients(i)
	return s.convolveGeneral(c, g), cShift
}

// convolveFixedRate applies eq. 3.30 in place on a copy:
// g'(i) = g(i) + sum_w rho_nw * g'(i - e_w).
func (s *solver) convolveFixedRate(n int, g []float64) []float64 {
	out := make([]float64, s.size)
	copy(out, g)
	idx := 0
	numeric.LatticeWalk(s.h, func(p numeric.IntVector) {
		acc := out[idx]
		for w := 0; w < s.w; w++ {
			if p[w] > 0 {
				if r := s.rho.At(n, w); r != 0 {
					acc += r * out[idx-s.strideCache[w]]
				}
			}
		}
		out[idx] = acc
		idx++
	})
	return out
}

// factorialOverflowTotal is the largest population whose factorial is
// finite in float64 (171! overflows); beyond it the direct eq. 3.27
// evaluation is guaranteed to produce ±Inf intermediates.
const factorialOverflowTotal = 170

// capacityTables precomputes the per-station lookup tables the capacity
// coefficient c_n(j) of eq. 3.27 reads: the direct factorial and
// rate-factor products up to factorialOverflowTotal customers, their
// log2-space counterparts up to the full box total, and the log2 scaled
// demands. One instance serves both the initial build and incremental
// extension, so the two compute bit-identical values.
type capacityTables struct {
	a, fact   []float64 // direct tables, indices 0..directMax
	la, lfact []float64 // log2 tables, indices 0..maxTotal
	lrho      []float64 // log2 of the scaled demands, per chain
	directMax int
}

func (s *solver) capacityTablesFor(n int) *capacityTables {
	st := &s.net.Stations[n]
	maxTotal := s.h.Sum()
	t := &capacityTables{directMax: min(maxTotal, factorialOverflowTotal)}
	t.a = make([]float64, t.directMax+1)
	t.fact = make([]float64, t.directMax+1)
	t.a[0], t.fact[0] = 1, 1
	for k := 1; k <= t.directMax; k++ {
		t.a[k] = t.a[k-1] / st.RateFactor(k)
		t.fact[k] = t.fact[k-1] * float64(k)
	}
	t.la = make([]float64, maxTotal+1)
	t.lfact = make([]float64, maxTotal+1)
	for k := 1; k <= maxTotal; k++ {
		t.la[k] = t.la[k-1] - math.Log2(st.RateFactor(k))
		t.lfact[k] = t.lfact[k-1] + math.Log2(float64(k))
	}
	t.lrho = make([]float64, s.w)
	for w := 0; w < s.w; w++ {
		t.lrho[w] = math.Log2(s.rho.At(n, w))
	}
	return t
}

// capacityAt evaluates c_n(j) at one occupancy vector j, returning either
// the direct value of eq. 3.27 (ok true) or its log2 (ok false; -Inf marks
// a structural zero). The rule is POINT-LOCAL — direct wherever the
// factorial products stay finite, log2 beyond — so the value never depends
// on the bounding box the point is evaluated in. That independence is what
// lets an Engine answer a population vector identically whether its box
// was built at the vector, grown to it incrementally, or built far beyond
// it.
func (s *solver) capacityAt(n int, t *capacityTables, j numeric.IntVector) (v, l float64, ok bool) {
	total := 0
	acc := 0.0
	for w := 0; w < s.w; w++ {
		if jw := j[w]; jw > 0 {
			total += jw
			acc += float64(jw)*t.lrho[w] - t.lfact[jw]
		}
	}
	l = t.la[total] + t.lfact[total] + acc
	if total <= t.directMax {
		prod := 1.0
		for w := 0; w < s.w; w++ {
			if jw := j[w]; jw > 0 {
				prod *= math.Pow(s.rho.At(n, w), float64(jw)) / t.fact[jw]
			}
		}
		if v = t.a[total] * t.fact[total] * prod; !math.IsInf(v, 0) && !math.IsNaN(v) {
			return v, l, true
		}
	}
	return 0, l, false
}

// capacityStore renders a capacityAt result at the array scale 2^shift.
// Direct values are shifted by the exact power of two; log2 values use the
// canonical form mantissa 2^(l-floor(l)) in [1, 2) times 2^(floor(l)-shift),
// whose rounding is also independent of the box (and of shift, barring
// over/underflow at the float64 range limits).
func capacityStore(v, l float64, direct bool, shift int) float64 {
	if direct {
		if shift == 0 {
			return v
		}
		return math.Ldexp(v, -shift)
	}
	if math.IsInf(l, -1) {
		return 0
	}
	fl := math.Floor(l)
	return math.Ldexp(math.Exp2(l-fl), int(fl)-shift)
}

// capacityCoefficients returns c_n(j) for all lattice points j
// (eq. 3.27): c_n(j) = a_n(|j|) * |j|! * prod_w rho_nw^{j_w} / j_w!,
// with a_n(k) = 1 / prod_{l=1..k} RateFactor(l), together with a
// power-of-two shift (true = returned × 2^shift).
//
// Each point uses the point-local rule of capacityAt: the direct
// evaluation wherever it stays finite — when every point does, the array
// carries shift 0 and is bit-identical to the historical code — and the
// canonical log2-space form beyond (populations past 170 overflow the
// |j|! table; extreme rate factors overflow earlier). The whole array is
// normalised by a single power-of-two shift near the log2-space peak.
func (s *solver) capacityCoefficients(n int) ([]float64, int) {
	t := s.capacityTablesFor(n)
	c := make([]float64, s.size)
	lc := make([]float64, s.size)
	isDirect := make([]bool, s.size)
	anyLog2 := false
	peak := math.Inf(-1)
	idx := 0
	numeric.LatticeWalk(s.h, func(p numeric.IntVector) {
		v, l, ok := s.capacityAt(n, t, p)
		c[idx], lc[idx], isDirect[idx] = v, l, ok
		if !ok {
			anyLog2 = true
		}
		if l > peak {
			peak = l
		}
		idx++
	})
	shift := 0
	if anyLog2 && !math.IsInf(peak, -1) && !math.IsNaN(peak) {
		shift = int(peak)
	}
	for i := range c {
		c[i] = capacityStore(c[i], lc[i], isDirect[i], shift)
	}
	return c, shift
}

// convolveGeneral performs the direct truncated convolution out = c * g.
func (s *solver) convolveGeneral(c, g []float64) []float64 {
	out := make([]float64, s.size)
	// out(p) = sum_{0<=j<=p} c(j) g(p-j). Enumerate p, then j <= p.
	p := numeric.NewIntVector(s.w)
	numeric.LatticeWalk(s.h, func(pp numeric.IntVector) {
		copy(p, pp)
		pIdx := numeric.LatticeIndex(p, s.h)
		acc := 0.0
		// Walk sub-lattice j <= p.
		numeric.LatticeWalk(p, func(j numeric.IntVector) {
			jIdx := numeric.LatticeIndex(j, s.h)
			if cj := c[jIdx]; cj != 0 {
				// index of p - j
				diffIdx := 0
				for w := 0; w < s.w; w++ {
					diffIdx = diffIdx*(s.h[w]+1) + (p[w] - j[w])
				}
				acc += cj * g[diffIdx]
			}
		})
		out[pIdx] = acc
	})
	return out
}

// convolveAllExcept returns the convolution of all stations except skip
// (the g_(n-) array of eq. 3.24a), or of all stations when skip < 0,
// together with the power-of-two shift the array carries (true values =
// returned × 2^shift). The shift accumulates the stability rescales and
// any scaled capacity coefficients; it is zero on every network the
// historical code could solve.
func (s *solver) convolveAllExcept(skip int) ([]float64, int, error) {
	g := s.identity()
	shift := 0
	for i := 0; i < s.n; i++ {
		if i == skip {
			continue
		}
		var cShift int
		g, cShift = s.convolveStation(i, g)
		shift += cShift
		exp, err := rescalePow2(g)
		if err != nil {
			return nil, 0, fmt.Errorf("after station %d: %w", i, err)
		}
		shift += exp
	}
	return g, shift, nil
}

func (s *solver) solve() (*Solution, error) {
	g, gShift, err := s.convolveAllExcept(-1)
	if err != nil {
		return nil, err
	}
	topIdx := numeric.LatticeIndex(s.h, s.h)
	gH := g[topIdx]
	if gH <= 0 || math.IsNaN(gH) || math.IsInf(gH, 0) {
		return nil, fmt.Errorf("%w: degenerate normalisation constant %v (shift 2^%d)", ErrUnstable, gH, gShift)
	}
	sol := &Solution{
		G:           gH,
		GShift:      gShift,
		Throughput:  numeric.NewVector(s.w),
		QueueLen:    numeric.NewMatrix(s.n, s.w),
		Utilization: numeric.NewVector(s.n),
		Marginal:    make([][]float64, s.n),
	}
	// Chain throughputs: lambda_w = beta_w * g(H - e_w) / g(H).
	for w := 0; w < s.w; w++ {
		if s.h[w] == 0 {
			continue
		}
		sol.Throughput[w] = s.beta[w] * g[topIdx-s.strideCache[w]] / gH
	}
	// Queue lengths and marginals.
	for i := 0; i < s.n; i++ {
		st := &s.net.Stations[i]
		switch {
		case st.Kind == qnet.IS:
			// q_iw = rho_iw * lambda_w (in true units: demand * throughput).
			for w := 0; w < s.w; w++ {
				sol.QueueLen.Set(i, w, s.net.Chains[w].Demand(i)*sol.Throughput[w])
			}
		case !st.IsQueueDependent():
			// Fixed rate: q_iw = rho_iw * g_(i+)(H - e_w) / g(H), where
			// g_(i+) convolves station i a second time (eq. 3.36).
			gPlus := s.convolveFixedRate(i, g)
			for w := 0; w < s.w; w++ {
				if s.h[w] == 0 {
					continue
				}
				q := s.rho.At(i, w) * gPlus[topIdx-s.strideCache[w]] / gH
				sol.QueueLen.Set(i, w, q)
			}
		default:
			// Queue-dependent: use the marginal distribution over the
			// per-chain occupancy vector at station i.
			if err := s.queueDependentQueueLens(i, sol, gH, gShift); err != nil {
				return nil, err
			}
		}
	}
	// Marginal distribution of the total count at each station, via
	// g_(i-) and the station's capacity coefficients:
	// P(station i holds vector j) = c_i(j) g_(i-)(H - j) / g(H).
	for i := 0; i < s.n; i++ {
		if err := s.marginals(i, sol, gH, gShift); err != nil {
			return nil, err
		}
	}
	return sol, nil
}

// queueDependentQueueLens fills QueueLen for queue-dependent station i
// from the per-vector marginal probabilities. relShift reconciles the
// power-of-two scales of the three factor arrays (zero unless some array
// was rescaled); the probabilities themselves are order-1, so the Ldexp
// always lands back in range.
func (s *solver) queueDependentQueueLens(i int, sol *Solution, gH float64, gShift int) error {
	gMinus, mShift, err := s.convolveAllExcept(i)
	if err != nil {
		return err
	}
	c, cShift := s.capacityCoefficients(i)
	relShift := mShift + cShift - gShift
	numeric.LatticeWalk(s.h, func(j numeric.IntVector) {
		jIdx := numeric.LatticeIndex(j, s.h)
		if c[jIdx] == 0 {
			return
		}
		compIdx := 0
		for w := 0; w < s.w; w++ {
			compIdx = compIdx*(s.h[w]+1) + (s.h[w] - j[w])
		}
		p := math.Ldexp(c[jIdx]*gMinus[compIdx]/gH, relShift)
		for w := 0; w < s.w; w++ {
			if j[w] > 0 {
				sol.QueueLen.Set(i, w, sol.QueueLen.At(i, w)+float64(j[w])*p)
			}
		}
	})
	return nil
}

// marginals fills Marginal[i] and Utilization[i].
func (s *solver) marginals(i int, sol *Solution, gH float64, gShift int) error {
	gMinus, mShift, err := s.convolveAllExcept(i)
	if err != nil {
		return err
	}
	c, cShift := s.capacityCoefficients(i)
	relShift := mShift + cShift - gShift
	total := s.h.Sum()
	marg := make([]float64, total+1)
	numeric.LatticeWalk(s.h, func(j numeric.IntVector) {
		jIdx := numeric.LatticeIndex(j, s.h)
		if c[jIdx] == 0 {
			return
		}
		compIdx := 0
		k := 0
		for w := 0; w < s.w; w++ {
			compIdx = compIdx*(s.h[w]+1) + (s.h[w] - j[w])
			k += j[w]
		}
		marg[k] += math.Ldexp(c[jIdx]*gMinus[compIdx]/gH, relShift)
	})
	sol.Marginal[i] = marg
	if s.net.Stations[i].Kind == qnet.IS {
		mean := 0.0
		for k, p := range marg {
			mean += float64(k) * p
		}
		sol.Utilization[i] = mean
	} else {
		sol.Utilization[i] = 1 - marg[0]
	}
	return nil
}
