package qnet

// Sparse is a compiled, population-independent view of a Network's chain
// structure: per-chain visit lists in increasing station order (CSR over
// chains) plus the station-major transpose (CSR over stations) listing the
// chains visiting each station. Window flow-control chains visit roughly
// hop-count stations out of potentially hundreds, so the solvers' hot
// loops iterate these lists instead of dense Visits arrays, making a
// fixed-point sweep cost O(total route length) rather than O(N·R).
//
// Two contracts make the compiled form a pure accelerator:
//
//   - Entries are stored in increasing station order per chain (and
//     increasing chain order per station) — exactly the order the dense
//     loops visit them. Skipped terms all have visit ratio exactly 0 and
//     contribute an exact +0.0 to every non-negative accumulation, so
//     sparse sums reproduce dense sums bit for bit.
//   - The compiled arrays copy the chain data; populations are NOT
//     captured. A Sparse therefore stays valid across candidate window
//     vectors (core.Engine compiles once at construction and reuses it for
//     every evaluation) as long as the stations, visit ratios and service
//     times are untouched — which the solvers' immutability convention
//     guarantees.
type Sparse struct {
	// NSt and NCh are the compiled network's station and chain counts.
	NSt, NCh int

	// Chain-major CSR: chain r's entries are ChainPtr[r]..ChainPtr[r+1]
	// (exclusive), in increasing station order.
	ChainPtr []int32
	// EntStation[e] is the station index of entry e.
	EntStation []int32
	// EntVisit[e] and EntServ[e] are the chain's visit ratio and mean
	// service time at the entry's station (always Visit > 0).
	EntVisit []float64
	EntServ  []float64
	// EntDemand[e] = EntVisit[e]*EntServ[e], hoisted out of the sweeps so
	// the fixed points never recompute Visits[i]*ServTime[i].
	EntDemand []float64
	// EntIS[e] marks entries at infinite-server (pure delay) stations.
	EntIS []bool

	// Station-major CSR (the transpose): station i's visiting chains are
	// StatPtr[i]..StatPtr[i+1] (exclusive), in increasing chain order.
	StatPtr []int32
	// StatChain[m] is the chain index of transpose entry m.
	StatChain []int32
	// StatEntry[m] is the chain-major entry index of the same
	// (chain, station) pair, giving the transpose loops O(1) access to the
	// precomputed demand/service values.
	StatEntry []int32

	// IsIS[i] marks infinite-server stations.
	IsIS []bool
	// DemandSum[r] is chain r's total service demand sum_i V_ir*s_ir,
	// accumulated in increasing station order (the cold-seed throughput
	// denominator).
	DemandSum []float64

	// Identity of the source arrays, for Matches: a network whose station
	// and per-chain slices are the very same backing arrays is guaranteed
	// (by the immutability convention) to carry the same compiled values.
	stations *Station
	visitPtr []*float64
	servPtr  []*float64
}

// Compile builds the sparse view of a validated network. The network's
// populations are ignored; see the type comment for the reuse contract.
func Compile(n *Network) *Sparse {
	nSt, nCh := n.N(), n.R()
	total := 0
	for r := range n.Chains {
		for _, v := range n.Chains[r].Visits {
			if v > 0 {
				total++
			}
		}
	}
	sp := &Sparse{
		NSt:        nSt,
		NCh:        nCh,
		ChainPtr:   make([]int32, nCh+1),
		EntStation: make([]int32, total),
		EntVisit:   make([]float64, total),
		EntServ:    make([]float64, total),
		EntDemand:  make([]float64, total),
		EntIS:      make([]bool, total),
		IsIS:       make([]bool, nSt),
		DemandSum:  make([]float64, nCh),
		visitPtr:   make([]*float64, nCh),
		servPtr:    make([]*float64, nCh),
	}
	if nSt > 0 {
		sp.stations = &n.Stations[0]
	}
	for i := range n.Stations {
		sp.IsIS[i] = n.Stations[i].Kind == IS
	}
	e := 0
	for r := range n.Chains {
		ch := &n.Chains[r]
		sp.ChainPtr[r] = int32(e)
		if len(ch.Visits) > 0 {
			sp.visitPtr[r] = &ch.Visits[0]
		}
		if len(ch.ServTime) > 0 {
			sp.servPtr[r] = &ch.ServTime[0]
		}
		d := 0.0
		for i := 0; i < nSt; i++ {
			// The full-range sum (not just the entries) mirrors the dense
			// cold seed bit for bit; zero-visit terms contribute an exact 0.
			d += ch.Visits[i] * ch.ServTime[i]
			if ch.Visits[i] <= 0 {
				continue
			}
			sp.EntStation[e] = int32(i)
			sp.EntVisit[e] = ch.Visits[i]
			sp.EntServ[e] = ch.ServTime[i]
			sp.EntDemand[e] = ch.Visits[i] * ch.ServTime[i]
			sp.EntIS[e] = sp.IsIS[i]
			e++
		}
		sp.DemandSum[r] = d
	}
	sp.ChainPtr[nCh] = int32(e)

	// Transpose: counting sort over stations keeps chains ascending per
	// station because the chain-major pass above runs in chain order.
	sp.StatPtr = make([]int32, nSt+1)
	sp.StatChain = make([]int32, total)
	sp.StatEntry = make([]int32, total)
	for _, i := range sp.EntStation {
		sp.StatPtr[i+1]++
	}
	for i := 0; i < nSt; i++ {
		sp.StatPtr[i+1] += sp.StatPtr[i]
	}
	next := make([]int32, nSt)
	copy(next, sp.StatPtr[:nSt])
	for r := 0; r < nCh; r++ {
		for e := sp.ChainPtr[r]; e < sp.ChainPtr[r+1]; e++ {
			i := sp.EntStation[e]
			m := next[i]
			next[i]++
			sp.StatChain[m] = int32(r)
			sp.StatEntry[m] = e
		}
	}
	return sp
}

// Deg returns the number of stations chain r visits (its route length in
// the compiled model).
func (s *Sparse) Deg(r int) int { return int(s.ChainPtr[r+1] - s.ChainPtr[r]) }

// Entries returns the total number of (chain, station) visit pairs — the
// quantity the sparse sweeps scale with.
func (s *Sparse) Entries() int { return len(s.EntStation) }

// Matches reports whether the compiled view was built from this network's
// very backing arrays (station slice and every chain's Visits/ServTime
// data pointers). Under the solvers' immutability convention a match
// guarantees the compiled values are current; populations are free to
// differ. Engine-pooled model copies share the reference network's slices,
// so they match the engine's one compiled Sparse.
func (s *Sparse) Matches(n *Network) bool {
	if n.N() != s.NSt || n.R() != s.NCh {
		return false
	}
	if s.NSt > 0 && &n.Stations[0] != s.stations {
		return false
	}
	for r := range n.Chains {
		ch := &n.Chains[r]
		if len(ch.Visits) != s.NSt || len(ch.ServTime) != s.NSt {
			return false
		}
		if s.NSt > 0 && (&ch.Visits[0] != s.visitPtr[r] || &ch.ServTime[0] != s.servPtr[r]) {
			return false
		}
	}
	return true
}
