package qnet

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/numeric"
)

// twoStationNet returns a minimal valid 2-station, 1-chain closed network.
func twoStationNet() *Network {
	return &Network{
		Stations: []Station{{Name: "a"}, {Name: "b"}},
		Chains: []Chain{{
			Name:       "c0",
			Population: 3,
			Visits:     []float64{1, 1},
			ServTime:   []float64{0.5, 0.25},
		}},
	}
}

func TestDisciplineString(t *testing.T) {
	cases := map[Discipline]string{FCFS: "FCFS", PS: "PS", LCFSPR: "LCFSPR", IS: "IS", Discipline(9): "Discipline(9)"}
	for d, want := range cases {
		if got := d.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(d), got, want)
		}
	}
}

func TestRateFactorSingleServer(t *testing.T) {
	s := Station{}
	if s.RateFactor(0) != 0 || s.RateFactor(-1) != 0 {
		t.Error("RateFactor for empty queue should be 0")
	}
	for j := 1; j <= 5; j++ {
		if got := s.RateFactor(j); got != 1 {
			t.Errorf("single server RateFactor(%d) = %v", j, got)
		}
	}
}

func TestRateFactorMultiServer(t *testing.T) {
	s := Station{Servers: 3}
	want := []float64{1, 2, 3, 3, 3}
	for j := 1; j <= 5; j++ {
		if got := s.RateFactor(j); got != want[j-1] {
			t.Errorf("3-server RateFactor(%d) = %v, want %v", j, got, want[j-1])
		}
	}
}

func TestRateFactorIS(t *testing.T) {
	s := Station{Kind: IS}
	for j := 1; j <= 4; j++ {
		if got := s.RateFactor(j); got != float64(j) {
			t.Errorf("IS RateFactor(%d) = %v", j, got)
		}
	}
}

func TestRateFactorExplicit(t *testing.T) {
	s := Station{RateFactors: []float64{1, 1.8, 2.2}}
	if got := s.RateFactor(2); got != 1.8 {
		t.Errorf("RateFactor(2) = %v", got)
	}
	if got := s.RateFactor(9); got != 2.2 {
		t.Errorf("RateFactor(9) = %v, want clamp to last", got)
	}
}

func TestIsQueueDependent(t *testing.T) {
	if (&Station{}).IsQueueDependent() {
		t.Error("single-server FCFS misreported as queue-dependent")
	}
	if !(&Station{Servers: 2}).IsQueueDependent() {
		t.Error("2-server station should be queue-dependent")
	}
	if !(&Station{Kind: IS}).IsQueueDependent() {
		t.Error("IS should be queue-dependent")
	}
	if (&Station{RateFactors: []float64{2, 2}}).IsQueueDependent() {
		t.Error("constant rate factors are not queue-dependent")
	}
	if !(&Station{RateFactors: []float64{1, 2}}).IsQueueDependent() {
		t.Error("varying rate factors are queue-dependent")
	}
}

func TestValidateOK(t *testing.T) {
	if err := twoStationNet().Validate(); err != nil {
		t.Fatalf("valid network rejected: %v", err)
	}
}

func TestValidateFailures(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Network)
		substr string
	}{
		{"no stations", func(n *Network) { n.Stations = nil }, "no stations"},
		{"no chains", func(n *Network) { n.Chains = nil }, "no chains"},
		{"dim mismatch", func(n *Network) { n.Chains[0].Visits = []float64{1} }, "visits"},
		{"negative pop", func(n *Network) { n.Chains[0].Population = -1 }, "negative population"},
		{"negative visit", func(n *Network) { n.Chains[0].Visits[0] = -1 }, "visit ratio"},
		{"zero service where visited", func(n *Network) { n.Chains[0].ServTime[0] = 0 }, "service time"},
		{"nan service", func(n *Network) { n.Chains[0].ServTime[0] = math.NaN() }, "service time"},
		{"no visits", func(n *Network) { n.Chains[0].Visits = []float64{0, 0} }, "visits no station"},
		{"bad rate factor", func(n *Network) { n.Stations[0].RateFactors = []float64{0} }, "rate factor"},
	}
	for _, c := range cases {
		n := twoStationNet()
		c.mutate(n)
		err := n.Validate()
		if err == nil {
			t.Errorf("%s: expected error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.substr) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.substr)
		}
	}
}

func TestValidateFCFSClassIndependence(t *testing.T) {
	n := twoStationNet()
	n.Chains = append(n.Chains, Chain{
		Name:       "c1",
		Population: 1,
		Visits:     []float64{1, 0},
		ServTime:   []float64{0.9, 0}, // differs from chain 0's 0.5 at FCFS station 0
	})
	if err := n.Validate(); err == nil || !strings.Contains(err.Error(), "class-dependent") {
		t.Fatalf("expected class-dependence error, got %v", err)
	}
	// PS stations may be class-dependent.
	n.Stations[0].Kind = PS
	if err := n.Validate(); err != nil {
		t.Fatalf("PS station should allow class-dependent service: %v", err)
	}
}

func TestWithPopulations(t *testing.T) {
	n := twoStationNet()
	m, err := n.WithPopulations(numeric.IntVector{7})
	if err != nil {
		t.Fatal(err)
	}
	if m.Chains[0].Population != 7 || n.Chains[0].Population != 3 {
		t.Error("WithPopulations wrong or mutated original")
	}
	if _, err := n.WithPopulations(numeric.IntVector{1, 2}); err == nil {
		t.Error("expected dimension error")
	}
	if _, err := n.WithPopulations(numeric.IntVector{-1}); err == nil {
		t.Error("expected negativity error")
	}
}

func TestChainStationsAndStationChains(t *testing.T) {
	n := &Network{
		Stations: make([]Station, 3),
		Chains: []Chain{
			{Name: "a", Population: 1, Visits: []float64{1, 0, 1}, ServTime: []float64{1, 0, 1}},
			{Name: "b", Population: 1, Visits: []float64{0, 1, 1}, ServTime: []float64{0, 1, 1}},
		},
	}
	cs := n.ChainStations()
	if len(cs[0]) != 2 || cs[0][0] != 0 || cs[0][1] != 2 {
		t.Errorf("ChainStations[0] = %v", cs[0])
	}
	sc := n.StationChains()
	if len(sc[2]) != 2 || len(sc[0]) != 1 || sc[0][0] != 0 {
		t.Errorf("StationChains = %v", sc)
	}
}

func TestVisitsFromRoutingCycle(t *testing.T) {
	// 3-station cycle: 0 -> 1 -> 2 -> 0. All visit ratios equal.
	p := numeric.NewMatrix(3, 3)
	p.Set(0, 1, 1)
	p.Set(1, 2, 1)
	p.Set(2, 0, 1)
	e, err := VisitsFromRouting(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range e {
		if math.Abs(v-1) > 1e-9 {
			t.Errorf("e[%d] = %v, want 1", i, v)
		}
	}
}

func TestVisitsFromRoutingBranch(t *testing.T) {
	// Station 0 splits 30/70 to stations 1 and 2, both return to 0.
	p := numeric.NewMatrix(3, 3)
	p.Set(0, 1, 0.3)
	p.Set(0, 2, 0.7)
	p.Set(1, 0, 1)
	p.Set(2, 0, 1)
	e, err := VisitsFromRouting(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e[0]-1) > 1e-9 || math.Abs(e[1]-0.3) > 1e-9 || math.Abs(e[2]-0.7) > 1e-9 {
		t.Errorf("e = %v, want [1 0.3 0.7]", e)
	}
}

func TestVisitsFromRoutingErrors(t *testing.T) {
	p := numeric.NewMatrix(2, 3)
	if _, err := VisitsFromRouting(p, 0); err == nil {
		t.Error("expected non-square error")
	}
	q := numeric.NewMatrix(2, 2)
	q.Set(0, 1, 0.5) // row sums to 0.5: invalid for a closed chain
	q.Set(1, 0, 1)
	if _, err := VisitsFromRouting(q, 0); err == nil {
		t.Error("expected row-sum error")
	}
	r := numeric.NewMatrix(2, 2)
	r.Set(0, 1, -1)
	r.Set(0, 0, 2)
	r.Set(1, 0, 1)
	if _, err := VisitsFromRouting(r, 0); err == nil {
		t.Error("expected negativity error")
	}
	s := numeric.NewMatrix(2, 2)
	s.Set(0, 1, 1)
	s.Set(1, 0, 1)
	if _, err := VisitsFromRouting(s, 5); err == nil {
		t.Error("expected reference range error")
	}
}

func TestCyclicChain(t *testing.T) {
	c, err := CyclicChain("vc1", 5, 4, []int{0, 2, 3}, []float64{0.1, 0.2, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if c.Population != 4 {
		t.Errorf("Population = %d", c.Population)
	}
	if c.Visits[0] != 1 || c.Visits[1] != 0 || c.Visits[2] != 1 || c.Visits[3] != 1 || c.Visits[4] != 0 {
		t.Errorf("Visits = %v", c.Visits)
	}
	if c.ServTime[3] != 0.3 {
		t.Errorf("ServTime = %v", c.ServTime)
	}
	if c.Demand(2) != 0.2 {
		t.Errorf("Demand(2) = %v", c.Demand(2))
	}
}

func TestCyclicChainErrors(t *testing.T) {
	if _, err := CyclicChain("x", 3, 1, nil, nil); err == nil {
		t.Error("expected empty-route error")
	}
	if _, err := CyclicChain("x", 3, 1, []int{0}, []float64{1, 2}); err == nil {
		t.Error("expected length-mismatch error")
	}
	if _, err := CyclicChain("x", 3, 1, []int{7}, []float64{1}); err == nil {
		t.Error("expected out-of-range error")
	}
	if _, err := CyclicChain("x", 3, 1, []int{0, 0}, []float64{1, 1}); err == nil {
		t.Error("expected duplicate-station error")
	}
}

// Property: VisitsFromRouting solutions satisfy the traffic equations.
func TestVisitsFromRoutingProperty(t *testing.T) {
	f := func(seed int64) bool {
		s := seed
		next := func() float64 {
			s = s*6364136223846793005 + 1442695040888963407
			return float64(uint64(s)>>11) / float64(1<<53)
		}
		const n = 4
		p := numeric.NewMatrix(n, n)
		for i := 0; i < n; i++ {
			row := make([]float64, n)
			sum := 0.0
			for j := 0; j < n; j++ {
				row[j] = next() + 0.05 // strictly positive: irreducible
				sum += row[j]
			}
			for j := 0; j < n; j++ {
				p.Set(i, j, row[j]/sum)
			}
		}
		e, err := VisitsFromRouting(p, 0)
		if err != nil {
			return false
		}
		if math.Abs(e[0]-1) > 1e-9 {
			return false
		}
		for i := 0; i < n; i++ {
			sum := 0.0
			for j := 0; j < n; j++ {
				sum += e[j] * p.At(j, i)
			}
			if math.Abs(sum-e[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
