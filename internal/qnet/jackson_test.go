package qnet

import (
	"errors"
	"math"
	"testing"

	"repro/internal/numeric"
)

// singleMM1 builds an open network that is a lone M/M/1 queue.
func singleMM1(lambda, s float64) *OpenNetwork {
	return &OpenNetwork{
		Stations:  []Station{{Name: "q"}},
		Exogenous: numeric.Vector{lambda},
		Routing:   numeric.NewMatrix(1, 1),
		ServTime:  numeric.Vector{s},
	}
}

func TestSolveOpenMM1(t *testing.T) {
	// lambda = 2, mu = 5 -> rho = 0.4, N = 2/3, T = 1/3.
	res, err := singleMM1(2, 0.2).SolveOpen()
	if err != nil {
		t.Fatal(err)
	}
	st := res.PerStation[0]
	if math.Abs(st.Utilization-0.4) > 1e-12 {
		t.Errorf("rho = %v", st.Utilization)
	}
	if math.Abs(st.MeanQueue-2.0/3.0) > 1e-12 {
		t.Errorf("N = %v", st.MeanQueue)
	}
	if math.Abs(st.MeanTime-1.0/3.0) > 1e-12 {
		t.Errorf("T = %v", st.MeanTime)
	}
	if math.Abs(res.MeanDelay-1.0/3.0) > 1e-12 {
		t.Errorf("network delay = %v", res.MeanDelay)
	}
	if res.Throughput != 2 {
		t.Errorf("throughput = %v", res.Throughput)
	}
}

func TestSolveOpenUnstable(t *testing.T) {
	_, err := singleMM1(6, 0.2).SolveOpen()
	if !errors.Is(err, ErrUnstable) {
		t.Fatalf("expected ErrUnstable, got %v", err)
	}
}

func TestSolveOpenTandem(t *testing.T) {
	// Two M/M/1 queues in tandem; delay adds.
	o := &OpenNetwork{
		Stations:  []Station{{Name: "a"}, {Name: "b"}},
		Exogenous: numeric.Vector{3, 0},
		Routing:   numeric.NewMatrix(2, 2),
		ServTime:  numeric.Vector{0.1, 0.2},
	}
	o.Routing.Set(0, 1, 1)
	res, err := o.SolveOpen()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.PerStation[1].Lambda-3) > 1e-12 {
		t.Errorf("lambda_b = %v", res.PerStation[1].Lambda)
	}
	wantDelay := 0.1/(1-0.3) + 0.2/(1-0.6)
	if math.Abs(res.MeanDelay-wantDelay) > 1e-12 {
		t.Errorf("delay = %v, want %v", res.MeanDelay, wantDelay)
	}
}

func TestSolveOpenFeedback(t *testing.T) {
	// One queue with feedback probability 0.5: effective lambda doubles.
	o := singleMM1(1, 0.2)
	o.Routing.Set(0, 0, 0.5)
	res, err := o.SolveOpen()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.PerStation[0].Lambda-2) > 1e-9 {
		t.Errorf("lambda = %v, want 2", res.PerStation[0].Lambda)
	}
}

func TestSolveOpenIS(t *testing.T) {
	o := singleMM1(4, 0.5)
	o.Stations[0].Kind = IS
	res, err := o.SolveOpen()
	if err != nil {
		t.Fatal(err)
	}
	st := res.PerStation[0]
	if math.Abs(st.MeanQueue-2) > 1e-12 || math.Abs(st.MeanTime-0.5) > 1e-12 {
		t.Errorf("IS N=%v T=%v, want 2, 0.5", st.MeanQueue, st.MeanTime)
	}
}

func TestSolveOpenMM2(t *testing.T) {
	// M/M/2 with lambda = 3, s = 0.5 => a = 1.5, rho = 0.75.
	// Exact: P_queue (Erlang C) = (a^2/2!)/( (1-rho)(1 + a) + a^2/2 ) ... use known value.
	o := singleMM1(3, 0.5)
	o.Stations[0].Servers = 2
	res, err := o.SolveOpen()
	if err != nil {
		t.Fatal(err)
	}
	st := res.PerStation[0]
	// Erlang-C for m=2, a=1.5: C = a^2/(2!(1-rho)) / (1 + a + a^2/(2!(1-rho)))
	c := (1.5 * 1.5 / (2 * 0.25)) / (1 + 1.5 + 1.5*1.5/(2*0.25))
	wantN := 1.5 + c*0.75/0.25
	if math.Abs(st.MeanQueue-wantN) > 1e-9 {
		t.Errorf("M/M/2 N = %v, want %v", st.MeanQueue, wantN)
	}
}

func TestSolveOpenValidation(t *testing.T) {
	empty := &OpenNetwork{}
	if _, err := empty.SolveOpen(); err == nil {
		t.Error("expected error for empty network")
	}
	o := singleMM1(1, 0.1)
	o.Exogenous = numeric.Vector{1, 2}
	if _, err := o.SolveOpen(); err == nil {
		t.Error("expected dimension error")
	}
	o2 := singleMM1(-1, 0.1)
	if _, err := o2.SolveOpen(); err == nil {
		t.Error("expected negative-rate error")
	}
	o3 := singleMM1(1, 0.1)
	o3.Routing.Set(0, 0, 1.5)
	if _, err := o3.SolveOpen(); err == nil {
		t.Error("expected row-sum error")
	}
}

func TestMM1MeanQueue(t *testing.T) {
	if got := MM1MeanQueue(0.5); math.Abs(got-1) > 1e-12 {
		t.Errorf("MM1MeanQueue(0.5) = %v", got)
	}
	if !math.IsInf(MM1MeanQueue(1), 1) {
		t.Error("MM1MeanQueue(1) should be +Inf")
	}
	if got := MM1MeanQueue(-0.1); got != 0 {
		t.Errorf("MM1MeanQueue(-0.1) = %v", got)
	}
}

func TestErlangCLimits(t *testing.T) {
	// m=1: Erlang C equals rho.
	for _, rho := range []float64{0.1, 0.5, 0.9} {
		if got := erlangC(1, rho); math.Abs(got-rho) > 1e-12 {
			t.Errorf("erlangC(1, %v) = %v", rho, got)
		}
	}
}
