package qnet

import (
	"math"
	"testing"
)

func TestValidateOpenLoad(t *testing.T) {
	n := twoStationNet()
	n.Stations[0].OpenLoad = 0.5
	if err := n.Validate(); err != nil {
		t.Fatalf("valid open load rejected: %v", err)
	}
	n.Stations[0].OpenLoad = 1.0
	if err := n.Validate(); err == nil {
		t.Error("expected error for open load 1")
	}
	n.Stations[0].OpenLoad = -0.1
	if err := n.Validate(); err == nil {
		t.Error("expected error for negative open load")
	}
	n.Stations[0].OpenLoad = 0.5
	n.Stations[0].Servers = 2
	if err := n.Validate(); err == nil {
		t.Error("expected error for open load on a queue-dependent station")
	}
	// IS stations accept open load (it is a no-op).
	m := twoStationNet()
	m.Stations[0].Kind = IS
	m.Stations[0].OpenLoad = 0.5
	if err := m.Validate(); err != nil {
		t.Errorf("IS open load rejected: %v", err)
	}
}

func TestEffectiveClosedNoOp(t *testing.T) {
	n := twoStationNet()
	if got := n.EffectiveClosed(); got != n {
		t.Error("pure closed network should be returned unchanged")
	}
}

func TestEffectiveClosedInflation(t *testing.T) {
	n := twoStationNet() // service times 0.5, 0.25
	n.Stations[0].OpenLoad = 0.5
	eff := n.EffectiveClosed()
	if eff == n {
		t.Fatal("mixed network should be copied")
	}
	if got := eff.Chains[0].ServTime[0]; math.Abs(got-1.0) > 1e-12 {
		t.Errorf("inflated service time = %v, want 1.0", got)
	}
	if got := eff.Chains[0].ServTime[1]; got != 0.25 {
		t.Errorf("unloaded station's service time changed: %v", got)
	}
	if eff.Stations[0].OpenLoad != 0 {
		t.Error("effective network still carries open load")
	}
	// Original untouched.
	if n.Chains[0].ServTime[0] != 0.5 || n.Stations[0].OpenLoad != 0.5 {
		t.Error("EffectiveClosed mutated its receiver")
	}
}

func TestEffectiveClosedISUntouched(t *testing.T) {
	n := twoStationNet()
	n.Stations[0].Kind = IS
	n.Stations[0].OpenLoad = 0.5
	n.Stations[1].OpenLoad = 0.2
	eff := n.EffectiveClosed()
	if eff.Chains[0].ServTime[0] != 0.5 {
		t.Errorf("IS service time inflated: %v", eff.Chains[0].ServTime[0])
	}
	if math.Abs(eff.Chains[0].ServTime[1]-0.25/0.8) > 1e-12 {
		t.Errorf("FCFS service time = %v", eff.Chains[0].ServTime[1])
	}
}
