package qnet

import (
	"fmt"
	"math"

	"repro/internal/numeric"
)

// OpenNetwork is an open Jackson network (Ch. 3 §3.3.2): stations with
// exponential servers, exogenous Poisson arrivals, Markovian routing.
type OpenNetwork struct {
	Stations []Station
	// Exogenous[i] is the external Poisson arrival rate gamma_i at
	// station i (customers/second).
	Exogenous numeric.Vector
	// Routing[i][j] is the probability of proceeding to station j after
	// service at station i; the residual 1 - sum_j Routing[i][j] is the
	// departure probability.
	Routing *numeric.Matrix
	// ServTime[i] is the mean service time at station i.
	ServTime numeric.Vector
}

// OpenStationResult carries the per-station solution of an open network.
type OpenStationResult struct {
	// Lambda is the total (exogenous + internal) arrival rate.
	Lambda float64
	// Utilization is lambda * s / m for an m-server station, or the
	// offered load lambda*s for IS.
	Utilization float64
	// MeanQueue is the mean number of customers at the station, in queue
	// and in service.
	MeanQueue float64
	// MeanTime is the mean sojourn time (wait + service).
	MeanTime float64
}

// OpenResult is the solution of an open Jackson network.
type OpenResult struct {
	PerStation []OpenStationResult
	// Throughput is the total exogenous arrival rate (== departure rate
	// in steady state).
	Throughput float64
	// MeanDelay is the mean end-to-end time in the network per customer
	// (Little's law over the whole network).
	MeanDelay float64
}

// ErrUnstable is wrapped in the error returned by SolveOpen when some
// station's utilisation is >= 1 (Ch. 3 §3.2.5).
var ErrUnstable = fmt.Errorf("qnet: open network is unstable")

// SolveOpen solves the open Jackson network: traffic equations (3.1), then
// per-station M/M/m results, then the product-form joint solution's
// network-wide measures.
func (o *OpenNetwork) SolveOpen() (*OpenResult, error) {
	n := len(o.Stations)
	if n == 0 {
		return nil, ErrNoStations
	}
	if len(o.Exogenous) != n || len(o.ServTime) != n {
		return nil, fmt.Errorf("qnet: open network dimension mismatch (%d stations, %d exogenous, %d service times)",
			n, len(o.Exogenous), len(o.ServTime))
	}
	if o.Routing == nil || o.Routing.Rows != n || o.Routing.Cols != n {
		return nil, fmt.Errorf("qnet: open network routing matrix must be %dx%d", n, n)
	}
	for i := 0; i < n; i++ {
		if o.Exogenous[i] < 0 {
			return nil, fmt.Errorf("qnet: negative exogenous rate at station %d", i)
		}
		sum := 0.0
		for j := 0; j < n; j++ {
			v := o.Routing.At(i, j)
			if v < 0 {
				return nil, fmt.Errorf("qnet: negative routing probability P[%d][%d]", i, j)
			}
			sum += v
		}
		if sum > 1+1e-9 {
			return nil, fmt.Errorf("qnet: routing row %d sums to %v > 1", i, sum)
		}
	}
	// Traffic equations: lambda = gamma + P^T lambda.
	a := numeric.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := -o.Routing.At(j, i)
			if i == j {
				v++
			}
			a.Set(i, j, v)
		}
	}
	lambda, err := numeric.SolveLinear(a, o.Exogenous)
	if err != nil {
		return nil, fmt.Errorf("qnet: open traffic equations: %w", err)
	}
	res := &OpenResult{PerStation: make([]OpenStationResult, n)}
	totalQueue := 0.0
	for i := 0; i < n; i++ {
		st := &o.Stations[i]
		li := lambda[i]
		if li < 0 {
			if li > -1e-12 {
				li = 0
			} else {
				return nil, fmt.Errorf("qnet: negative arrival rate %v at station %d", li, i)
			}
		}
		s := o.ServTime[i]
		if li > 0 && s <= 0 {
			return nil, fmt.Errorf("qnet: station %d visited with non-positive service time %v", i, s)
		}
		r := &res.PerStation[i]
		r.Lambda = li
		if li == 0 {
			continue
		}
		switch {
		case st.Kind == IS:
			r.Utilization = li * s
			r.MeanQueue = li * s
			r.MeanTime = s
		default:
			m := st.Servers
			if m < 1 {
				m = 1
			}
			rho := li * s / float64(m)
			r.Utilization = rho
			if rho >= 1 {
				return nil, fmt.Errorf("%w: station %d (%s) has utilisation %.4f",
					ErrUnstable, i, st.Name, rho)
			}
			if m == 1 {
				r.MeanQueue = rho / (1 - rho)
			} else {
				// M/M/m via Erlang-C.
				c := erlangC(m, li*s)
				r.MeanQueue = float64(m)*rho + c*rho/(1-rho)
			}
			r.MeanTime = r.MeanQueue / li
		}
		totalQueue += r.MeanQueue
	}
	res.Throughput = o.Exogenous.Sum()
	if res.Throughput > 0 {
		res.MeanDelay = totalQueue / res.Throughput
	}
	return res, nil
}

// erlangC returns the Erlang-C probability of queueing for an M/M/m queue
// with offered load a = lambda*s (requires a/m < 1).
func erlangC(m int, a float64) float64 {
	// Iterative Erlang-B then convert: B(0)=1; B(k) = a*B(k-1)/(k+a*B(k-1)).
	b := 1.0
	for k := 1; k <= m; k++ {
		b = a * b / (float64(k) + a*b)
	}
	rho := a / float64(m)
	return b / (1 - rho + rho*b)
}

// MM1MeanQueue returns the M/M/1 mean number in system at utilisation rho.
// It returns +Inf for rho >= 1.
func MM1MeanQueue(rho float64) float64 {
	if rho >= 1 {
		return math.Inf(1)
	}
	if rho < 0 {
		return 0
	}
	return rho / (1 - rho)
}
