// Package qnet defines the queueing-network model shared by every solver
// in this repository: the exact convolution algorithm, the exact and
// approximate mean-value analyses, the brute-force CTMC, and the
// discrete-event simulator all consume the same Network value.
//
// The model is the class Q* of separable ("BCMP" / product-form) networks
// described in Chapter 3 of the thesis: work-conserving stations (FCFS
// with exponential class-independent service, PS, LCFS-PR, IS, or a
// limited queue-dependent rate server) visited by closed routing chains.
// A chain is characterised by its per-station visit ratios and mean
// service times; for the window-dimensioning problem each virtual channel
// contributes one cyclic chain whose population is the window size.
package qnet

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/numeric"
)

// Discipline enumerates the work-conserving queueing disciplines with
// product-form solutions (Ch. 3 §3.2.4).
type Discipline int

const (
	// FCFS is first-come-first-served with exponential service times
	// identical across classes (the BCMP type-1 station).
	FCFS Discipline = iota
	// PS is processor sharing (BCMP type-2).
	PS
	// LCFSPR is last-come-first-served preemptive-resume (BCMP type-4).
	LCFSPR
	// IS is the infinite-server (pure delay) station (BCMP type-3).
	IS
)

func (d Discipline) String() string {
	switch d {
	case FCFS:
		return "FCFS"
	case PS:
		return "PS"
	case LCFSPR:
		return "LCFSPR"
	case IS:
		return "IS"
	default:
		return fmt.Sprintf("Discipline(%d)", int(d))
	}
}

// Station is one service centre.
//
// The zero value is a single-server FCFS station; set Servers or
// RateFactors for queue-dependent rates. The station's base service rate
// is implied by the chains' mean service times, so the station itself only
// carries the *shape* of the capacity function mu(j)/mu(1) (Table 3.6).
type Station struct {
	// Name is a human-readable label used in reports.
	Name string
	// Kind is the queueing discipline.
	Kind Discipline
	// Servers is the number of parallel servers for FCFS/PS/LCFSPR
	// stations; values < 1 are treated as 1. Ignored for IS.
	Servers int
	// RateFactors optionally gives mu(j)/mu(1) for j = 1..len; beyond the
	// last entry the factor stays at the final value ("limited
	// queue-dependent" servers, Table 3.6 row 2). When set it overrides
	// Servers. Ignored for IS.
	RateFactors []float64
	// OpenLoad is the utilisation of the station by open (uncontrolled)
	// chains, in [0, 1). Mixed networks (Ch. 3 §3.3.3): open chains
	// shift the capacity function's argument, which for fixed-rate
	// stations is equivalent to inflating the closed chains' service
	// times by 1/(1-OpenLoad); for IS stations the shift is a constant
	// factor with no effect on closed-chain measures. Queue-dependent
	// stations do not admit the reduction and reject a non-zero value.
	OpenLoad float64
}

// RateFactor returns mu(j)/mu(1), the service-rate multiplier when j
// customers are present. For j <= 0 it returns 0.
func (s *Station) RateFactor(j int) float64 {
	if j <= 0 {
		return 0
	}
	if s.Kind == IS {
		return float64(j)
	}
	if len(s.RateFactors) > 0 {
		if j > len(s.RateFactors) {
			j = len(s.RateFactors)
		}
		return s.RateFactors[j-1]
	}
	m := s.Servers
	if m < 1 {
		m = 1
	}
	if j > m {
		j = m
	}
	return float64(j)
}

// IsQueueDependent reports whether the station's rate varies with queue
// length beyond a single fixed-rate server.
func (s *Station) IsQueueDependent() bool {
	if s.Kind == IS {
		return true
	}
	if len(s.RateFactors) > 0 {
		for _, f := range s.RateFactors {
			if f != s.RateFactors[0] {
				return true
			}
		}
		return false
	}
	return s.Servers > 1
}

// Chain is one closed routing chain (one customer class; the thesis's
// networks never change class membership, so class == chain).
type Chain struct {
	// Name is a human-readable label used in reports.
	Name string
	// Population is the number of customers circulating in the chain —
	// for a virtual channel under window flow control, the window size.
	Population int
	// Visits[i] is the visit ratio of the chain at station i (relative
	// arrival rate; any positive scaling is equivalent, throughputs are
	// reported per unit of visit ratio at the reference use). A zero
	// visit ratio means the chain does not visit the station.
	Visits []float64
	// ServTime[i] is the mean service time per visit at station i in
	// seconds. Must be positive wherever Visits[i] > 0.
	ServTime []float64
}

// Demand returns the service demand Visits[i]*ServTime[i] at station i.
func (c *Chain) Demand(i int) float64 { return c.Visits[i] * c.ServTime[i] }

// Network is a closed multichain queueing network.
type Network struct {
	Stations []Station
	Chains   []Chain
}

// N returns the number of stations.
func (n *Network) N() int { return len(n.Stations) }

// R returns the number of chains.
func (n *Network) R() int { return len(n.Chains) }

// Populations returns the chain population vector.
func (n *Network) Populations() numeric.IntVector {
	p := numeric.NewIntVector(n.R())
	for r := range n.Chains {
		p[r] = n.Chains[r].Population
	}
	return p
}

// WithPopulations returns a shallow copy of the network with the chain
// populations replaced by pop. Stations and per-chain slices are shared;
// solvers treat networks as immutable.
func (n *Network) WithPopulations(pop numeric.IntVector) (*Network, error) {
	if len(pop) != n.R() {
		return nil, fmt.Errorf("qnet: population vector has %d entries for %d chains", len(pop), n.R())
	}
	out := &Network{Stations: n.Stations, Chains: make([]Chain, n.R())}
	copy(out.Chains, n.Chains)
	for r := range out.Chains {
		if pop[r] < 0 {
			return nil, fmt.Errorf("qnet: negative population %d for chain %d", pop[r], r)
		}
		out.Chains[r].Population = pop[r]
	}
	return out, nil
}

// Errors returned by Validate.
var (
	ErrNoStations = errors.New("qnet: network has no stations")
	ErrNoChains   = errors.New("qnet: network has no chains")
)

// Validate checks the structural well-formedness of the network: matching
// dimensions, non-negative visit ratios, positive service times wherever
// visited, non-negative populations, every chain visiting at least one
// station, and the BCMP requirement that FCFS stations serve all chains
// with the same mean service time.
func (n *Network) Validate() error {
	if n.N() == 0 {
		return ErrNoStations
	}
	if n.R() == 0 {
		return ErrNoChains
	}
	for i := range n.Stations {
		st := &n.Stations[i]
		for j, f := range st.RateFactors {
			if f <= 0 || math.IsNaN(f) || math.IsInf(f, 0) {
				return fmt.Errorf("qnet: station %d (%s) rate factor %d is %v; need positive finite",
					i, st.Name, j+1, f)
			}
		}
		if st.OpenLoad < 0 || st.OpenLoad >= 1 || math.IsNaN(st.OpenLoad) {
			return fmt.Errorf("qnet: station %d (%s) open load %v outside [0, 1)", i, st.Name, st.OpenLoad)
		}
		if st.OpenLoad > 0 && st.Kind != IS && st.IsQueueDependent() {
			return fmt.Errorf("qnet: station %d (%s) is queue-dependent; open load requires fixed-rate or IS stations", i, st.Name)
		}
	}
	for r := range n.Chains {
		c := &n.Chains[r]
		if len(c.Visits) != n.N() || len(c.ServTime) != n.N() {
			return fmt.Errorf("qnet: chain %d (%s) has %d visits and %d service times for %d stations",
				r, c.Name, len(c.Visits), len(c.ServTime), n.N())
		}
		if c.Population < 0 {
			return fmt.Errorf("qnet: chain %d (%s) has negative population %d", r, c.Name, c.Population)
		}
		visited := false
		for i := range c.Visits {
			v, s := c.Visits[i], c.ServTime[i]
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("qnet: chain %d (%s) visit ratio at station %d is %v", r, c.Name, i, v)
			}
			if v > 0 {
				visited = true
				if s <= 0 || math.IsNaN(s) || math.IsInf(s, 0) {
					return fmt.Errorf("qnet: chain %d (%s) visits station %d with service time %v; need positive finite",
						r, c.Name, i, s)
				}
			}
		}
		if !visited {
			return fmt.Errorf("qnet: chain %d (%s) visits no station", r, c.Name)
		}
	}
	// BCMP condition: FCFS stations must be class-independent in mean
	// service time.
	for i := range n.Stations {
		if n.Stations[i].Kind != FCFS {
			continue
		}
		first := -1.0
		for r := range n.Chains {
			c := &n.Chains[r]
			if c.Visits[i] == 0 {
				continue
			}
			if first < 0 {
				first = c.ServTime[i]
			} else if math.Abs(c.ServTime[i]-first) > 1e-9*first {
				return fmt.Errorf("qnet: FCFS station %d (%s) has class-dependent service times (%v vs %v); product form requires equal means",
					i, n.Stations[i].Name, first, c.ServTime[i])
			}
		}
	}
	return nil
}

// EffectiveClosed returns the pure-closed network equivalent to this
// mixed network: at each fixed-rate station with open load rho0, every
// closed chain's service time is inflated to s/(1-rho0) and the open
// load zeroed (the §3.3.3 reduction). Networks without open load are
// returned unchanged (no copy). Reported queue lengths of the effective
// network count closed-chain customers only, as the thesis's analysis
// does ("we exclude the open chains completely").
func (n *Network) EffectiveClosed() *Network {
	mixed := false
	for i := range n.Stations {
		if n.Stations[i].OpenLoad > 0 {
			mixed = true
			break
		}
	}
	if !mixed {
		return n
	}
	out := &Network{
		Stations: make([]Station, n.N()),
		Chains:   make([]Chain, n.R()),
	}
	copy(out.Stations, n.Stations)
	for i := range out.Stations {
		out.Stations[i].OpenLoad = 0
	}
	for r := range n.Chains {
		c := n.Chains[r]
		st := make([]float64, len(c.ServTime))
		copy(st, c.ServTime)
		for i := range st {
			rho0 := n.Stations[i].OpenLoad
			if rho0 > 0 && n.Stations[i].Kind != IS {
				st[i] /= 1 - rho0
			}
		}
		c.ServTime = st
		out.Chains[r] = c
	}
	return out
}

// ChainStations returns, for each chain, the indices of the stations it
// visits (Q(r) in the thesis's notation).
func (n *Network) ChainStations() [][]int {
	out := make([][]int, n.R())
	for r := range n.Chains {
		for i, v := range n.Chains[r].Visits {
			if v > 0 {
				out[r] = append(out[r], i)
			}
		}
	}
	return out
}

// StationChains returns, for each station, the indices of the chains that
// visit it (R(i) in the thesis's notation).
func (n *Network) StationChains() [][]int {
	out := make([][]int, n.N())
	for r := range n.Chains {
		for i, v := range n.Chains[r].Visits {
			if v > 0 {
				out[i] = append(out[i], r)
			}
		}
	}
	return out
}

// VisitsFromRouting derives a closed chain's visit ratios from a routing
// probability matrix: e = e·P with e[ref] fixed to 1 (eq. 3.15a with
// q = 0). P must be a stochastic matrix over the stations the chain uses
// (rows summing to 1; rows of unvisited stations may be all zero). The
// reference station ref must be part of the chain's strongly-connected
// component.
func VisitsFromRouting(p *numeric.Matrix, ref int) (numeric.Vector, error) {
	n := p.Rows
	if p.Cols != n {
		return nil, fmt.Errorf("qnet: routing matrix must be square, got %dx%d", p.Rows, p.Cols)
	}
	if ref < 0 || ref >= n {
		return nil, fmt.Errorf("qnet: reference station %d out of range [0,%d)", ref, n)
	}
	for i := 0; i < n; i++ {
		sum := 0.0
		zero := true
		for j := 0; j < n; j++ {
			v := p.At(i, j)
			if v < 0 {
				return nil, fmt.Errorf("qnet: negative routing probability P[%d][%d] = %v", i, j, v)
			}
			if v != 0 {
				zero = false
			}
			sum += v
		}
		if !zero && math.Abs(sum-1) > 1e-9 {
			return nil, fmt.Errorf("qnet: routing row %d sums to %v, want 1", i, sum)
		}
	}
	// Solve e(I - P) = 0 with e[ref] = 1: transpose to (I - P^T) e^T = 0,
	// replace equation ref with e[ref] = 1.
	a := numeric.NewMatrix(n, n)
	b := numeric.NewVector(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			// Row i of a: balance at station i: e_i = sum_j e_j P[j][i].
			v := -p.At(j, i)
			if i == j {
				v++
			}
			a.Set(i, j, v)
		}
	}
	for j := 0; j < n; j++ {
		a.Set(ref, j, 0)
	}
	a.Set(ref, ref, 1)
	b[ref] = 1
	e, err := numeric.SolveLinear(a, b)
	if err != nil {
		return nil, fmt.Errorf("qnet: traffic equations unsolvable (disconnected routing?): %w", err)
	}
	for i, v := range e {
		if v < -1e-9 {
			return nil, fmt.Errorf("qnet: traffic equations yield negative visit ratio %v at station %d", v, i)
		}
		if v < 0 {
			e[i] = 0
		}
	}
	return e, nil
}

// CyclicChain builds a closed cyclic chain visiting the given stations in
// order, each exactly once per cycle, with the given per-visit mean
// service times. nStations is the total station count of the enclosing
// network. This is the shape every windowed virtual channel takes
// (Fig. 4.1): source queue, then the route's link queues.
func CyclicChain(name string, nStations int, population int, route []int, servTimes []float64) (Chain, error) {
	if len(route) == 0 {
		return Chain{}, fmt.Errorf("qnet: chain %s has an empty route", name)
	}
	if len(route) != len(servTimes) {
		return Chain{}, fmt.Errorf("qnet: chain %s has %d route stops but %d service times", name, len(route), len(servTimes))
	}
	c := Chain{
		Name:       name,
		Population: population,
		Visits:     make([]float64, nStations),
		ServTime:   make([]float64, nStations),
	}
	for k, i := range route {
		if i < 0 || i >= nStations {
			return Chain{}, fmt.Errorf("qnet: chain %s visits station %d outside [0,%d)", name, i, nStations)
		}
		if c.Visits[i] != 0 {
			return Chain{}, fmt.Errorf("qnet: chain %s visits station %d twice; cyclic chains visit each station once", name, i)
		}
		c.Visits[i] = 1
		c.ServTime[i] = servTimes[k]
	}
	return c, nil
}
