package qnet

import (
	"fmt"
	"testing"

	"repro/internal/rng"
)

func randomSparseNet(s *rng.Stream) *Network {
	nSt := 2 + s.Intn(12)
	nCh := 1 + s.Intn(6)
	net := &Network{Stations: make([]Station, nSt), Chains: make([]Chain, nCh)}
	for i := range net.Stations {
		kind := FCFS
		switch s.Intn(3) {
		case 1:
			kind = PS
		case 2:
			kind = IS
		}
		net.Stations[i] = Station{Name: fmt.Sprintf("s%d", i), Kind: kind}
	}
	for r := range net.Chains {
		visits := make([]float64, nSt)
		serv := make([]float64, nSt)
		deg := 1 + s.Intn(nSt)
		for placed := 0; placed < deg; {
			i := s.Intn(nSt)
			if visits[i] > 0 {
				continue
			}
			visits[i] = 0.25 * float64(1+s.Intn(8))
			serv[i] = 0.01 + s.Float64()
			placed++
		}
		net.Chains[r] = Chain{
			Name: fmt.Sprintf("c%d", r), Population: s.Intn(5),
			Visits: visits, ServTime: serv,
		}
	}
	return net
}

// TestCompileFidelity checks, over random networks, that the compiled
// sparse view is exactly the dense arrays' support: chain-major entries
// enumerate the positive visits in increasing station order with the
// dense values, the station-major transpose is its exact inverse in
// increasing chain order, and the per-chain demand sums match the dense
// full-range accumulation bitwise.
func TestCompileFidelity(t *testing.T) {
	master := rng.New(0xc0111)
	for trial := 0; trial < 50; trial++ {
		net := randomSparseNet(master.Split(uint64(trial)))
		sp := Compile(net)
		if sp.NSt != net.N() || sp.NCh != net.R() {
			t.Fatalf("trial %d: dims %dx%d, want %dx%d", trial, sp.NSt, sp.NCh, net.N(), net.R())
		}
		entries := 0
		for r := range net.Chains {
			ch := &net.Chains[r]
			e := sp.ChainPtr[r]
			lastStation := -1
			for i := 0; i < net.N(); i++ {
				if ch.Visits[i] <= 0 {
					continue
				}
				entries++
				if e >= sp.ChainPtr[r+1] {
					t.Fatalf("trial %d chain %d: ran out of entries at station %d", trial, r, i)
				}
				if int(sp.EntStation[e]) != i {
					t.Fatalf("trial %d chain %d entry %d: station %d, want %d", trial, r, e, sp.EntStation[e], i)
				}
				if int(sp.EntStation[e]) <= lastStation {
					t.Fatalf("trial %d chain %d: stations not increasing", trial, r)
				}
				lastStation = i
				if sp.EntVisit[e] != ch.Visits[i] || sp.EntServ[e] != ch.ServTime[i] {
					t.Fatalf("trial %d chain %d station %d: visit/serv mismatch", trial, r, i)
				}
				if sp.EntDemand[e] != ch.Visits[i]*ch.ServTime[i] {
					t.Fatalf("trial %d chain %d station %d: demand not bitwise Visits*ServTime", trial, r, i)
				}
				if sp.EntIS[e] != (net.Stations[i].Kind == IS) {
					t.Fatalf("trial %d chain %d station %d: IS flag wrong", trial, r, i)
				}
				e++
			}
			if e != sp.ChainPtr[r+1] {
				t.Fatalf("trial %d chain %d: %d extra entries", trial, r, sp.ChainPtr[r+1]-e)
			}
			if sp.Deg(r) != int(sp.ChainPtr[r+1]-sp.ChainPtr[r]) {
				t.Fatalf("trial %d chain %d: Deg inconsistent", trial, r)
			}
			sum := 0.0
			for i := 0; i < net.N(); i++ {
				sum += ch.Demand(i)
			}
			if sp.DemandSum[r] != sum {
				t.Fatalf("trial %d chain %d: demand sum %v, want %v (bitwise)", trial, r, sp.DemandSum[r], sum)
			}
		}
		if sp.Entries() != entries {
			t.Fatalf("trial %d: %d entries, want %d", trial, sp.Entries(), entries)
		}
		// Transpose: exact inverse, chains increasing per station.
		seen := make([]bool, entries)
		for i := 0; i < net.N(); i++ {
			lastChain := -1
			for m := sp.StatPtr[i]; m < sp.StatPtr[i+1]; m++ {
				r, e := int(sp.StatChain[m]), sp.StatEntry[m]
				if int(sp.EntStation[e]) != i {
					t.Fatalf("trial %d station %d: transpose entry maps to station %d", trial, i, sp.EntStation[e])
				}
				if e < sp.ChainPtr[r] || e >= sp.ChainPtr[r+1] {
					t.Fatalf("trial %d station %d: transpose entry outside chain %d's range", trial, i, r)
				}
				if r <= lastChain {
					t.Fatalf("trial %d station %d: chains not increasing", trial, i)
				}
				lastChain = r
				if seen[e] {
					t.Fatalf("trial %d: entry %d appears twice in transpose", trial, e)
				}
				seen[e] = true
			}
			if sp.IsIS[i] != (net.Stations[i].Kind == IS) {
				t.Fatalf("trial %d station %d: IsIS wrong", trial, i)
			}
		}
		for e, ok := range seen {
			if !ok {
				t.Fatalf("trial %d: entry %d missing from transpose", trial, e)
			}
		}
	}
}

func TestSparseMatches(t *testing.T) {
	net := randomSparseNet(rng.New(7))
	sp := Compile(net)
	if !sp.Matches(net) {
		t.Fatal("fresh compilation must match its source network")
	}
	// Population-only copies (the engine's pooled models) share backing
	// arrays and must match.
	pops := net.Populations()
	pops[0] += 3
	cand, err := net.WithPopulations(pops)
	if err != nil {
		t.Fatal(err)
	}
	if !sp.Matches(cand) {
		t.Fatal("population-only copy must match: backing arrays are shared")
	}
	// A structurally identical but independently allocated network must
	// NOT match — value equality is not checked, identity is.
	clone := &Network{Stations: append([]Station(nil), net.Stations...), Chains: make([]Chain, net.R())}
	copy(clone.Chains, net.Chains)
	for r := range clone.Chains {
		clone.Chains[r].Visits = append([]float64(nil), clone.Chains[r].Visits...)
	}
	if sp.Matches(clone) {
		t.Fatal("reallocated visit arrays must not match")
	}
	// Dimension mismatches.
	if sp.Matches(&Network{Stations: net.Stations}) {
		t.Fatal("chain-count mismatch must not match")
	}
}
