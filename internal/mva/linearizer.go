package mva

import (
	"fmt"

	"repro/internal/numeric"
	"repro/internal/qnet"
)

// Linearizer solves the closed multichain network by the Linearizer AMVA
// (Chandy & Neuse 1982) — the standard refinement of the Schweitzer
// approximation, included here as the "what came after the thesis"
// ablation point. It estimates the *fractional deviations*
//
//	F_irj = N_ir(D - e_j)/(D_r - δ_rj) - N_ir(D)/D_r
//
// by solving Schweitzer-style cores at the full population and at each
// one-removed population, updating F between sweeps. Accuracy is
// typically an order of magnitude better than Schweitzer at the cost of
// R+1 core solutions per sweep.
//
// Deviations are only ever non-zero where chain r visits station i, so F
// is stored per station-major visit-list entry — O(route lengths × R)
// instead of O(N·R²) — and the cores iterate the compiled visit lists the
// same way Approximate does.
func Linearizer(net *qnet.Network, opts Options) (*Solution, error) {
	opts = opts.withDefaults()
	if !opts.Prevalidated {
		if err := net.Validate(); err != nil {
			return nil, err
		}
		if err := checkSupported(net, false); err != nil {
			return nil, err
		}
		net = net.EffectiveClosed()
	}
	nSt, nCh := net.N(), net.R()

	pop := net.Populations()
	if !anyPositive(pop) {
		return newSolution(nSt, nCh), nil
	}

	sp := opts.Sparse
	if sp == nil || !sp.Matches(net) {
		sp = qnet.Compile(net)
	}

	// f[m*nCh+j]: deviation of chain StatChain[m]'s share at entry m's
	// station when one chain-j customer is removed. Initialised to zero
	// (= Schweitzer).
	f := make([]float64, len(sp.StatChain)*nCh)

	// The classic schedule: three outer sweeps suffice.
	const sweeps = 3
	// A warm seed (when its dimensions match) replaces the full-population
	// core's balanced initialisation; the one-removed cores keep the cold
	// rule — their populations differ from the seed's anyway.
	warm := opts.Warm
	if !warm.matches(nSt, nCh) {
		warm = nil
	}
	var full *coreResult
	for sweep := 0; sweep < sweeps; sweep++ {
		var err error
		full, err = linearizerCore(sp, pop, f, opts, warm)
		if err != nil {
			return nil, err
		}
		if sweep == sweeps-1 {
			break
		}
		reduced := make([]*coreResult, nCh)
		for j := 0; j < nCh; j++ {
			if pop[j] == 0 {
				continue
			}
			pj := pop.Clone()
			pj[j]--
			reduced[j], err = linearizerCore(sp, pj, f, opts, nil)
			if err != nil {
				return nil, err
			}
		}
		// Update deviations.
		for i := 0; i < nSt; i++ {
			for m := sp.StatPtr[i]; m < sp.StatPtr[i+1]; m++ {
				r := int(sp.StatChain[m])
				if pop[r] == 0 {
					continue
				}
				yFull := full.q.At(i, r) / float64(pop[r])
				fm := f[int(m)*nCh : int(m+1)*nCh]
				for j := 0; j < nCh; j++ {
					if reduced[j] == nil {
						continue
					}
					denom := float64(pop[r])
					if j == r {
						denom--
					}
					if denom <= 0 {
						fm[j] = 0
						continue
					}
					fm[j] = reduced[j].q.At(i, r)/denom - yFull
				}
			}
		}
	}
	sol := newSolution(nSt, nCh)
	sol.Iterations = full.iterations
	sol.Solver = "linearizer"
	copy(sol.Throughput, full.lam)
	for r := 0; r < nCh; r++ {
		for e := sp.ChainPtr[r]; e < sp.ChainPtr[r+1]; e++ {
			i := int(sp.EntStation[e])
			sol.QueueLen.Set(i, r, full.q.At(i, r))
			sol.QueueTime.Set(i, r, full.t.At(i, r))
		}
	}
	return sol, nil
}

type coreResult struct {
	lam        numeric.Vector
	q, t       *numeric.Matrix
	iterations int
}

// linearizerCore runs the Schweitzer-with-deviations fixed point at the
// given population: the arrival-instant estimate is
//
//	N_ij(pop - e_r) ≈ (pop_j - δ_jr) * (q_ij/pop_j + F[m(i,j)][r]).
func linearizerCore(sp *qnet.Sparse, pop numeric.IntVector, f []float64, opts Options, warm *WarmStart) (*coreResult, error) {
	nSt, nCh := sp.NSt, sp.NCh
	res := &coreResult{
		lam: numeric.NewVector(nCh),
		q:   numeric.NewMatrix(nSt, nCh),
		t:   numeric.NewMatrix(nSt, nCh),
	}
	if !anyPositive(pop) {
		return res, nil
	}
	// Balanced initialisation, or the warm seed where usable.
	for r := 0; r < nCh; r++ {
		if pop[r] == 0 {
			continue
		}
		if warm != nil && seedChainFromWarm(warm, sp, r, pop[r], res.q, res.lam) {
			continue
		}
		lo, hi := sp.ChainPtr[r], sp.ChainPtr[r+1]
		share := float64(pop[r]) / float64(hi-lo)
		for e := lo; e < hi; e++ {
			res.q.Set(int(sp.EntStation[e]), r, share)
		}
	}
	for iter := 1; iter <= opts.MaxIter; iter++ {
		if err := sweepGate(&opts, iter); err != nil {
			return nil, err
		}
		prev := res.lam.Clone()
		for r := 0; r < nCh; r++ {
			if pop[r] == 0 {
				continue
			}
			denom := 0.0
			for e := sp.ChainPtr[r]; e < sp.ChainPtr[r+1]; e++ {
				i := int(sp.EntStation[e])
				var ti float64
				if sp.EntIS[e] {
					ti = sp.EntServ[e]
				} else {
					seen := 0.0
					for m := sp.StatPtr[i]; m < sp.StatPtr[i+1]; m++ {
						j := int(sp.StatChain[m])
						if pop[j] == 0 {
							continue
						}
						nj := float64(pop[j])
						if j == r {
							nj--
						}
						if nj <= 0 {
							continue
						}
						est := res.q.At(i, j)/float64(pop[j]) + f[int(m)*nCh+r]
						if est < 0 {
							est = 0
						}
						seen += nj * est
					}
					ti = sp.EntServ[e] * (1 + seen)
				}
				res.t.Set(i, r, ti)
				denom += sp.EntVisit[e] * ti
			}
			res.lam[r] = float64(pop[r]) / denom
		}
		for r := 0; r < nCh; r++ {
			if pop[r] == 0 {
				continue
			}
			for e := sp.ChainPtr[r]; e < sp.ChainPtr[r+1]; e++ {
				i := int(sp.EntStation[e])
				next := res.lam[r] * sp.EntVisit[e] * res.t.At(i, r)
				res.q.Set(i, r, opts.Damping*next+(1-opts.Damping)*res.q.At(i, r))
			}
		}
		if res.lam.L2Diff(prev) < opts.Tol {
			res.iterations = iter
			return res, nil
		}
	}
	return nil, fmt.Errorf("%w: linearizer core at population %v after %d sweeps",
		ErrNotConverged, pop, opts.MaxIter)
}

func anyPositive(v numeric.IntVector) bool {
	for _, x := range v {
		if x > 0 {
			return true
		}
	}
	return false
}
