package mva

import (
	"errors"
	"math"
	"testing"
)

func TestMethodAndInitStrings(t *testing.T) {
	if SigmaHeuristic.String() != "sigma-heuristic" || Schweitzer.String() != "schweitzer" {
		t.Error("Method strings wrong")
	}
	if Method(9).String() == "" || Initialization(9).String() == "" {
		t.Error("unknown enum strings empty")
	}
	if Balanced.String() != "balanced" || Bottleneck.String() != "bottleneck" {
		t.Error("Initialization strings wrong")
	}
}

func TestApproximateSingleChainNearExact(t *testing.T) {
	// For a single chain, the sigma heuristic's sub-problem IS the exact
	// single-chain MVA (no other chains inflate service), so the fixed
	// point should land very close to exact MVA.
	net := cyclic2(6, 0.4, 0.7)
	exact, err := ExactMultichain(net)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Method{SigmaHeuristic, Schweitzer} {
		sol, err := Approximate(net, Options{Method: m})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		rel := math.Abs(sol.Throughput[0]-exact.Throughput[0]) / exact.Throughput[0]
		if rel > 0.05 {
			t.Errorf("%v: lambda %v vs exact %v (rel err %v)", m, sol.Throughput[0], exact.Throughput[0], rel)
		}
		if sol.Iterations < 1 {
			t.Errorf("%v: no iterations recorded", m)
		}
	}
}

func TestApproximateTwoChainsAccuracy(t *testing.T) {
	// Multichain accuracy against exact MVA: a few percent is the
	// expected regime for these heuristics.
	net := cyclic2(4, 0.5, 0.5)
	net.Chains = append(net.Chains, net.Chains[0])
	net.Chains[1].Name = "c2"
	net.Chains[1].Population = 3
	exact, err := ExactMultichain(net)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Method{SigmaHeuristic, Schweitzer} {
		sol, err := Approximate(net, Options{Method: m})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		for r := 0; r < 2; r++ {
			rel := math.Abs(sol.Throughput[r]-exact.Throughput[r]) / exact.Throughput[r]
			if rel > 0.10 {
				t.Errorf("%v chain %d: lambda %v vs exact %v (rel %v)", m, r, sol.Throughput[r], exact.Throughput[r], rel)
			}
		}
	}
}

func TestApproximatePopulationConservation(t *testing.T) {
	net := cyclic2(5, 0.3, 0.6)
	net.Chains = append(net.Chains, net.Chains[0])
	net.Chains[1].Population = 2
	for _, m := range []Method{SigmaHeuristic, Schweitzer} {
		sol, err := Approximate(net, Options{Method: m})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if err := littleCheck(net, sol, 1e-6); err != nil {
			t.Errorf("%v: %v", m, err)
		}
	}
}

func TestApproximateInitializationsAgree(t *testing.T) {
	net := cyclic2(5, 0.2, 0.9)
	a, err := Approximate(net, Options{Init: Balanced})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Approximate(net, Options{Init: Bottleneck})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Throughput[0]-b.Throughput[0]) > 1e-6 {
		t.Errorf("initialisations disagree: %v vs %v", a.Throughput[0], b.Throughput[0])
	}
}

func TestApproximateZeroPopulation(t *testing.T) {
	net := cyclic2(0, 0.5, 0.5)
	sol, err := Approximate(net, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Throughput[0] != 0 {
		t.Errorf("lambda = %v for empty chain", sol.Throughput[0])
	}
	// Mixed: one empty, one populated chain.
	net2 := cyclic2(4, 0.5, 0.5)
	net2.Chains = append(net2.Chains, net2.Chains[0])
	net2.Chains[1].Population = 0
	sol2, err := Approximate(net2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol2.Throughput[1] != 0 {
		t.Errorf("empty chain lambda = %v", sol2.Throughput[1])
	}
	if sol2.Throughput[0] <= 0 {
		t.Errorf("populated chain lambda = %v", sol2.Throughput[0])
	}
}

func TestApproximateMaxIterError(t *testing.T) {
	net := cyclic2(5, 0.4, 0.8)
	_, err := Approximate(net, Options{MaxIter: 1, Tol: 1e-14})
	if !errors.Is(err, ErrNotConverged) {
		t.Fatalf("expected ErrNotConverged, got %v", err)
	}
}

func TestApproximateDamping(t *testing.T) {
	net := cyclic2(6, 0.4, 0.7)
	plain, err := Approximate(net, Options{})
	if err != nil {
		t.Fatal(err)
	}
	damped, err := Approximate(net, Options{Damping: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(plain.Throughput[0]-damped.Throughput[0]) > 1e-5 {
		t.Errorf("damping changes fixed point: %v vs %v", plain.Throughput[0], damped.Throughput[0])
	}
}

func TestApproximateRejectsQueueDependent(t *testing.T) {
	net := cyclic2(3, 0.5, 0.5)
	net.Stations[1].Servers = 3
	if _, err := Approximate(net, Options{}); err == nil {
		t.Fatal("expected unsupported-station error")
	}
}

func TestApproximateRejectsInvalid(t *testing.T) {
	net := cyclic2(3, 0.5, 0.5)
	net.Chains[0].Visits = []float64{1}
	if _, err := Approximate(net, Options{}); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestApproximateWithISStation(t *testing.T) {
	// Machine repairman approximations should stay near exact values.
	net := cyclic2(6, 2.0, 0.5)
	net.Stations[0].Kind = 3 // IS
	exact, err := ExactMultichain(net)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := Approximate(net, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rel := math.Abs(sol.Throughput[0]-exact.Throughput[0]) / exact.Throughput[0]
	if rel > 0.05 {
		t.Errorf("IS network: lambda %v vs exact %v", sol.Throughput[0], exact.Throughput[0])
	}
}

// The heuristic must be asymptotically exact as populations grow (the
// thesis cites [26] for this property): relative error shrinks with K.
func TestSigmaHeuristicAsymptotics(t *testing.T) {
	relAt := func(k int) float64 {
		net := cyclic2(k, 0.5, 0.4)
		net.Chains = append(net.Chains, net.Chains[0])
		net.Chains[1].Population = k
		exact, err := ExactMultichain(net)
		if err != nil {
			t.Fatal(err)
		}
		sol, err := Approximate(net, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return math.Abs(sol.Throughput[0]-exact.Throughput[0]) / exact.Throughput[0]
	}
	small := relAt(1)
	large := relAt(25)
	if large > small+1e-6 {
		t.Errorf("error grew with population: %v (K=1) -> %v (K=25)", small, large)
	}
	if large > 0.02 {
		t.Errorf("large-population error %v too big", large)
	}
}
