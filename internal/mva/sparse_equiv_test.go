package mva

import (
	"fmt"
	"testing"

	"repro/internal/numeric"
	"repro/internal/qnet"
	"repro/internal/rng"
)

// randomNetwork builds a random sparse multichain network: PS and IS
// stations (PS so class-dependent service times are legal), chains
// visiting random station subsets with varied visit ratios. Service
// demands are kept moderate so the fixed points converge.
func randomNetwork(s *rng.Stream) *qnet.Network {
	nSt := 3 + s.Intn(8)
	nCh := 1 + s.Intn(5)
	net := &qnet.Network{Stations: make([]qnet.Station, nSt), Chains: make([]qnet.Chain, nCh)}
	for i := range net.Stations {
		kind := qnet.PS
		if s.Float64() < 0.25 {
			kind = qnet.IS
		}
		net.Stations[i] = qnet.Station{Name: fmt.Sprintf("s%d", i), Kind: kind}
	}
	for r := range net.Chains {
		deg := 2 + s.Intn(3)
		if deg > nSt {
			deg = nSt
		}
		visits := make([]float64, nSt)
		serv := make([]float64, nSt)
		placed := 0
		for placed < deg {
			i := s.Intn(nSt)
			if visits[i] > 0 {
				continue
			}
			visits[i] = []float64{0.5, 1, 1, 2}[s.Intn(4)]
			serv[i] = 0.05 + 0.4*s.Float64()
			placed++
		}
		net.Chains[r] = qnet.Chain{
			Name:       fmt.Sprintf("c%d", r),
			Population: 1 + s.Intn(4),
			Visits:     visits,
			ServTime:   serv,
		}
	}
	return net
}

func solutionsBitIdentical(t *testing.T, tag string, a, b *Solution) {
	t.Helper()
	if a.Iterations != b.Iterations {
		t.Errorf("%s: iterations %d vs %d", tag, a.Iterations, b.Iterations)
	}
	for r := range a.Throughput {
		if a.Throughput[r] != b.Throughput[r] {
			t.Errorf("%s chain %d: throughput %v vs %v (must be bitwise equal)",
				tag, r, a.Throughput[r], b.Throughput[r])
		}
	}
	for i := 0; i < a.QueueLen.Rows; i++ {
		for r := 0; r < a.QueueLen.Cols; r++ {
			if a.QueueLen.At(i, r) != b.QueueLen.At(i, r) {
				t.Errorf("%s: queue length (%d,%d) %v vs %v",
					tag, i, r, a.QueueLen.At(i, r), b.QueueLen.At(i, r))
			}
			if a.QueueTime.At(i, r) != b.QueueTime.At(i, r) {
				t.Errorf("%s: queue time (%d,%d) %v vs %v",
					tag, i, r, a.QueueTime.At(i, r), b.QueueTime.At(i, r))
			}
		}
	}
}

// TestApproximateSparseDenseBitIdentical is the dense↔sparse equivalence
// property test of the sparse rewrite: across random networks, methods,
// initialisation rules, damping values and warm starts, the production
// (sparse) Approximate must reproduce the preserved dense implementation
// bit for bit.
func TestApproximateSparseDenseBitIdentical(t *testing.T) {
	master := rng.New(0x5a1e)
	cases := 0
	for trial := 0; trial < 40; trial++ {
		s := master.Split(uint64(trial))
		net := randomNetwork(s)
		for _, m := range []Method{SigmaHeuristic, Schweitzer} {
			for _, init := range []Initialization{Balanced, Bottleneck} {
				for _, damping := range []float64{0, 0.5} {
					opts := Options{Method: m, Init: init, Damping: damping, MaxIter: 4000}
					dense, derr := denseApproximate(net, opts)
					sparse, serr := Approximate(net, opts)
					tag := fmt.Sprintf("trial %d %v/%v damping=%v", trial, m, init, damping)
					if (derr == nil) != (serr == nil) {
						t.Fatalf("%s: dense err %v, sparse err %v", tag, derr, serr)
					}
					if derr != nil {
						continue
					}
					cases++
					solutionsBitIdentical(t, tag, dense, sparse)

					// Warm-started from the identical previous solution at a
					// bumped population: both paths must again agree bitwise.
					warm := WarmFromSolution(sparse)
					bumped, err := net.WithPopulations(bumpedPops(net))
					if err != nil {
						t.Fatal(err)
					}
					wopts := opts
					wopts.Warm = warm
					dw, derr := denseApproximate(bumped, wopts)
					sw, serr := Approximate(bumped, wopts)
					if (derr == nil) != (serr == nil) {
						t.Fatalf("%s warm: dense err %v, sparse err %v", tag, derr, serr)
					}
					if derr == nil {
						solutionsBitIdentical(t, tag+" warm", dw, sw)
					}
				}
			}
		}
	}
	if cases < 100 {
		t.Fatalf("only %d converged comparison cases; generator too hostile", cases)
	}
}

func bumpedPops(net *qnet.Network) numeric.IntVector {
	pops := net.Populations()
	pops[0]++
	return pops
}

// TestApproximateWorkspaceReuseAcrossNetworks drives one workspace through
// alternating networks and populations — the engine's pooled-reuse shape
// plus the hostile same-dimensions-different-network shape — checking each
// solve against a fresh private one.
func TestApproximateWorkspaceReuseAcrossNetworks(t *testing.T) {
	master := rng.New(0xbeef)
	ws := NewWorkspace()
	a := randomNetwork(master.Split(1))
	// b: same dimensions as a but an independent visit pattern, so the
	// workspace's compiled-view cache must invalidate on every alternation.
	var b *qnet.Network
	for i := uint64(2); ; i++ {
		b = randomNetwork(master.Split(i))
		if b.N() == a.N() && b.R() == a.R() {
			break
		}
	}
	nets := []*qnet.Network{a, b, a, a, b}
	for k, net := range nets {
		for _, m := range []Method{SigmaHeuristic, Schweitzer} {
			pops := net.Populations()
			pops[k%len(pops)] = 1 + (k % 3)
			cand, err := net.WithPopulations(pops)
			if err != nil {
				t.Fatal(err)
			}
			opts := Options{Method: m, MaxIter: 4000}
			plain, perr := Approximate(cand, opts)
			opts.Workspace = ws
			backed, berr := Approximate(cand, opts)
			if (perr == nil) != (berr == nil) {
				t.Fatalf("step %d %v: private err %v, workspace err %v", k, m, perr, berr)
			}
			if perr != nil {
				continue
			}
			solutionsBitIdentical(t, fmt.Sprintf("step %d %v", k, m), plain, backed)
		}
	}
}

// TestExactMultichainSparseDenseBitIdentical: the sparse lattice walk must
// reproduce the dense one exactly.
func TestExactMultichainSparseDenseBitIdentical(t *testing.T) {
	master := rng.New(0xe4ac)
	for trial := 0; trial < 25; trial++ {
		net := randomNetwork(master.Split(uint64(trial)))
		dense, derr := denseExactMultichain(net)
		sparse, serr := ExactMultichain(net)
		if (derr == nil) != (serr == nil) {
			t.Fatalf("trial %d: dense err %v, sparse err %v", trial, derr, serr)
		}
		if derr != nil {
			continue
		}
		solutionsBitIdentical(t, fmt.Sprintf("exact trial %d", trial), dense, sparse)
	}
}

// TestLinearizerSparseDenseBitIdentical: the entry-indexed deviation array
// must reproduce the dense [N][R][R] one exactly, cold and warm.
func TestLinearizerSparseDenseBitIdentical(t *testing.T) {
	master := rng.New(0x11ea)
	for trial := 0; trial < 25; trial++ {
		net := randomNetwork(master.Split(uint64(trial)))
		opts := Options{MaxIter: 4000}
		dense, derr := denseLinearizer(net, opts)
		sparse, serr := Linearizer(net, opts)
		if (derr == nil) != (serr == nil) {
			t.Fatalf("trial %d: dense err %v, sparse err %v", trial, derr, serr)
		}
		if derr != nil {
			continue
		}
		solutionsBitIdentical(t, fmt.Sprintf("linearizer trial %d", trial), dense, sparse)

		warm := WarmFromSolution(sparse)
		bumped, err := net.WithPopulations(bumpedPops(net))
		if err != nil {
			t.Fatal(err)
		}
		wopts := opts
		wopts.Warm = warm
		dw, derr := denseLinearizer(bumped, wopts)
		sw, serr := Linearizer(bumped, wopts)
		if (derr == nil) != (serr == nil) {
			t.Fatalf("trial %d warm: dense err %v, sparse err %v", trial, derr, serr)
		}
		if derr == nil {
			solutionsBitIdentical(t, fmt.Sprintf("linearizer trial %d warm", trial), dw, sw)
		}
	}
}

// TestApproximateExplicitSparseOption: passing the precompiled view via
// Options.Sparse (the engine's path) must change nothing, and a mismatched
// view must be ignored rather than trusted.
func TestApproximateExplicitSparseOption(t *testing.T) {
	master := rng.New(0x0905)
	net := randomNetwork(master.Split(0))
	other := randomNetwork(master.Split(1))
	sp := qnet.Compile(net)
	for _, m := range []Method{SigmaHeuristic, Schweitzer} {
		base, err := Approximate(net, Options{Method: m})
		if err != nil {
			t.Fatal(err)
		}
		withSp, err := Approximate(net, Options{Method: m, Sparse: sp})
		if err != nil {
			t.Fatal(err)
		}
		solutionsBitIdentical(t, fmt.Sprintf("%v explicit sparse", m), base, withSp)
		// A view compiled from a different network must not be applied.
		mismatch, err := Approximate(net, Options{Method: m, Sparse: qnet.Compile(other)})
		if err != nil {
			t.Fatal(err)
		}
		solutionsBitIdentical(t, fmt.Sprintf("%v mismatched sparse", m), base, mismatch)
	}
}
