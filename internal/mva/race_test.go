//go:build race

package mva

func init() { raceEnabled = true }
