package mva

import (
	"math"

	"repro/internal/numeric"
	"repro/internal/qnet"
)

// WarmStart carries a previously converged solution used to seed STEP 1 of
// the approximate solvers in place of the balanced/bottleneck
// initialisation (eqs. 4.16–4.17). The queue-length columns are rescaled
// to the new chain populations, so a warm start remains valid when
// neighbouring candidates differ by a step in one window — exactly the
// structure of successive pattern-search probes, where the fixed points
// are nearly identical and the iteration converges in a fraction of the
// cold sweep count.
//
// Only mass at a chain's visited stations is read; a solver-produced seed
// (WarmFromSolution) never carries any elsewhere.
//
// Warm-started results converge to the same fixed point as cold ones only
// up to the solver tolerance; callers that need bit-deterministic values
// per candidate (core.Engine under speculative-parallel search) must
// derive the seed from state that depends only on the committed search
// trajectory, never on evaluation order.
type WarmStart struct {
	// Throughput is the previous solution's chain throughput vector.
	Throughput numeric.Vector
	// QueueLen is the previous solution's per-station, per-chain mean
	// queue-length matrix.
	QueueLen *numeric.Matrix
}

// WarmFromSolution clones the parts of a solution a warm start needs. The
// clone makes the seed immune to workspace reuse: solutions returned from
// a workspace-backed Approximate call are overwritten by the next call.
func WarmFromSolution(sol *Solution) *WarmStart {
	return &WarmStart{
		Throughput: sol.Throughput.Clone(),
		QueueLen:   sol.QueueLen.Clone(),
	}
}

// matches reports whether the seed's dimensions fit a network with nSt
// stations and nCh chains.
func (w *WarmStart) matches(nSt, nCh int) bool {
	return w != nil && len(w.Throughput) == nCh && w.QueueLen != nil &&
		w.QueueLen.Rows == nSt && w.QueueLen.Cols == nCh
}

// Workspace holds every buffer Approximate needs, so that repeated calls
// — the inner loop of WINDIM's pattern search — run with zero steady-state
// allocations. A workspace is NOT safe for concurrent use; concurrent
// evaluators (core.Engine's pool) hold one workspace each.
//
// Reusing a workspace never changes results: the buffers are reset per
// call and the incremental σ-curve cache only short-circuits recursions
// whose inputs are bit-identical, so a workspace-backed run reproduces the
// workspace-free run exactly.
type Workspace struct {
	nSt, nCh int

	active []bool
	q      *numeric.Matrix
	t      *numeric.Matrix
	sigma  *numeric.Matrix
	lam    numeric.Vector
	prev   numeric.Vector
	totQ   numeric.Vector

	// σ sub-problem scratch, indexed per visit-list entry (so at most nSt
	// long per chain).
	servInf numeric.Vector
	scT     numeric.Vector
	scZero  numeric.Vector // never written; N(0) of the recursion

	curves []chainCurve

	// compiledSp caches the sparse view Approximate compiles when the
	// caller supplies none; keyed by backing-array identity
	// (qnet.Sparse.Matches), so re-solving the same network — the engine
	// hot path when no Options.Sparse is threaded through — stays
	// allocation-free.
	compiledSp *qnet.Sparse
	// lastSp is the compiled view of the previous call. While it is
	// unchanged, per-call clearing touches only the visit-list support;
	// when it changes, everything is cleared densely and the σ curves are
	// dropped (their cached vectors are laid out per entry).
	lastSp *qnet.Sparse

	// sol is returned by workspace-backed Approximate calls; it is valid
	// only until the next call with the same workspace.
	sol *Solution
}

// chainCurve caches the exact single-chain recursion of one chain's σ
// sub-problem (eq. 4.12): q[d-1] is the queue-length vector at population
// d, valid for the stored inflated service times. Vectors are indexed per
// visit-list entry (length = the chain's route length, not the station
// count). When a sweep re-solves the sub-problem with bit-identical
// inflated service times — every sweep in a single-chain network, and the
// stabilised tail of any fixed point — the cached prefix is reused and
// only missing populations are extended. Extension reproduces the
// from-scratch recursion bit for bit, so the cache is purely a time
// optimisation.
type chainCurve struct {
	valid   bool
	deg     int // entry count the cached vectors are laid out for
	servInf []float64
	n       int         // populations 1..n are valid
	q       [][]float64 // backing buffers, reused across invalidations
}

// NewWorkspace returns an empty workspace; buffers are sized lazily from
// the first network solved with it.
func NewWorkspace() *Workspace { return &Workspace{} }

// ensure sizes the buffers for an nSt-station, nCh-chain network,
// reallocating only on dimension change.
func (w *Workspace) ensure(nSt, nCh int) {
	if w.nSt == nSt && w.nCh == nCh {
		return
	}
	w.nSt, w.nCh = nSt, nCh
	w.active = make([]bool, nCh)
	w.q = numeric.NewMatrix(nSt, nCh)
	w.t = numeric.NewMatrix(nSt, nCh)
	w.sigma = numeric.NewMatrix(nSt, nCh)
	w.lam = numeric.NewVector(nCh)
	w.prev = numeric.NewVector(nCh)
	w.totQ = numeric.NewVector(nSt)
	w.servInf = numeric.NewVector(nSt)
	w.scT = numeric.NewVector(nSt)
	w.scZero = numeric.NewVector(nSt)
	w.curves = make([]chainCurve, nCh)
	w.compiledSp = nil
	w.lastSp = nil
	w.sol = newSolution(nSt, nCh)
}

// compiled returns the sparse view to solve with: the caller's (when it
// matches the network's backing arrays), else the workspace's cached one,
// else a fresh compilation that is cached for the next call.
func (w *Workspace) compiled(net *qnet.Network, sp *qnet.Sparse) *qnet.Sparse {
	if sp != nil && sp.Matches(net) {
		return sp
	}
	if w.compiledSp != nil && w.compiledSp.Matches(net) {
		return w.compiledSp
	}
	w.compiledSp = qnet.Compile(net)
	return w.compiledSp
}

// reset clears the per-call numeric state (the curve cache survives: its
// hits are input-keyed and bit-faithful, see chainCurve). With the same
// compiled view as the previous call, only the visit-list support is
// cleared — everything off-support is already zero and stays zero, which
// is what keeps the reset O(route lengths) instead of O(stations×chains).
func (w *Workspace) reset(sp *qnet.Sparse) {
	if sp != w.lastSp {
		w.lastSp = sp
		w.q.Zero()
		w.t.Zero()
		w.sol.QueueLen.Zero()
		w.sol.QueueTime.Zero()
		for r := range w.curves {
			w.curves[r].valid = false
		}
	} else {
		for r := 0; r < sp.NCh; r++ {
			for e := sp.ChainPtr[r]; e < sp.ChainPtr[r+1]; e++ {
				i := int(sp.EntStation[e])
				w.q.Set(i, r, 0)
				w.t.Set(i, r, 0)
				w.sol.QueueLen.Set(i, r, 0)
				w.sol.QueueTime.Set(i, r, 0)
			}
		}
	}
	w.lam.Zero()
	w.sol.Throughput.Zero()
	w.sol.Iterations = 0
}

// curveUpTo returns the σ sub-problem's mean queue lengths at populations
// pop and pop-1 for chain r, extending or rebuilding the cached recursion
// as needed. servInf holds the inflated service times per visit-list entry
// of chain r; the returned vectors are per-entry and alias workspace
// storage.
func (w *Workspace) curveUpTo(r int, sp *qnet.Sparse, servInf []float64, pop int) (nAt, nPrev []float64) {
	c := &w.curves[r]
	deg := len(servInf)
	if c.deg != deg {
		c.deg = deg
		c.q = nil
		c.valid = false
	}
	if !c.valid || !floatsEqual(c.servInf, servInf) {
		c.valid = true
		if len(c.servInf) != deg {
			c.servInf = make([]float64, deg)
		}
		copy(c.servInf, servInf)
		c.n = 0
	}
	lo := sp.ChainPtr[r]
	for d := c.n + 1; d <= pop; d++ {
		if len(c.q) < d {
			c.q = append(c.q, make([]float64, deg))
		}
		prev := w.scZero[:deg]
		if d > 1 {
			prev = c.q[d-2]
		}
		// The exact single-chain MVA step, in ExactSingleChain's exact
		// arithmetic order so cached and uncached runs agree bitwise.
		t := w.scT[:deg]
		denom := 0.0
		for k := 0; k < deg; k++ {
			e := lo + int32(k)
			if sp.EntIS[e] {
				t[k] = c.servInf[k]
			} else {
				t[k] = c.servInf[k] * (1 + prev[k])
			}
			denom += sp.EntVisit[e] * t[k]
		}
		lam := float64(d) / denom
		q := c.q[d-1]
		for k := 0; k < deg; k++ {
			q[k] = lam * sp.EntVisit[lo+int32(k)] * t[k]
		}
	}
	if pop > c.n {
		c.n = pop
	}
	nAt = c.q[pop-1]
	nPrev = w.scZero[:deg]
	if pop > 1 {
		nPrev = c.q[pop-2]
	}
	return nAt, nPrev
}

func floatsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// seedChainFromWarm seeds chain r's STEP-1 state from a warm start,
// rescaling the queue-length column (its mass at the chain's visited
// stations) to the chain's current population. It reports false (leaving
// q and lam untouched) when the warm column is degenerate, so the caller
// can fall back to the cold initialisation.
func seedChainFromWarm(warm *WarmStart, sp *qnet.Sparse, r, pop int, q *numeric.Matrix, lam numeric.Vector) bool {
	lo, hi := sp.ChainPtr[r], sp.ChainPtr[r+1]
	colSum := 0.0
	for e := lo; e < hi; e++ {
		colSum += warm.QueueLen.At(int(sp.EntStation[e]), r)
	}
	wl := warm.Throughput[r]
	if !(colSum > 0) || math.IsInf(colSum, 0) || !(wl > 0) || math.IsInf(wl, 0) {
		return false
	}
	scale := float64(pop) / colSum
	for e := lo; e < hi; e++ {
		i := int(sp.EntStation[e])
		q.Set(i, r, warm.QueueLen.At(i, r)*scale)
	}
	lam[r] = wl
	return true
}
