package mva

import (
	"math"

	"repro/internal/numeric"
)

// WarmStart carries a previously converged solution used to seed STEP 1 of
// the approximate solvers in place of the balanced/bottleneck
// initialisation (eqs. 4.16–4.17). The queue-length columns are rescaled
// to the new chain populations, so a warm start remains valid when
// neighbouring candidates differ by a step in one window — exactly the
// structure of successive pattern-search probes, where the fixed points
// are nearly identical and the iteration converges in a fraction of the
// cold sweep count.
//
// Warm-started results converge to the same fixed point as cold ones only
// up to the solver tolerance; callers that need bit-deterministic values
// per candidate (core.Engine under speculative-parallel search) must
// derive the seed from state that depends only on the committed search
// trajectory, never on evaluation order.
type WarmStart struct {
	// Throughput is the previous solution's chain throughput vector.
	Throughput numeric.Vector
	// QueueLen is the previous solution's per-station, per-chain mean
	// queue-length matrix.
	QueueLen *numeric.Matrix
}

// WarmFromSolution clones the parts of a solution a warm start needs. The
// clone makes the seed immune to workspace reuse: solutions returned from
// a workspace-backed Approximate call are overwritten by the next call.
func WarmFromSolution(sol *Solution) *WarmStart {
	return &WarmStart{
		Throughput: sol.Throughput.Clone(),
		QueueLen:   sol.QueueLen.Clone(),
	}
}

// matches reports whether the seed's dimensions fit a network with nSt
// stations and nCh chains.
func (w *WarmStart) matches(nSt, nCh int) bool {
	return w != nil && len(w.Throughput) == nCh && w.QueueLen != nil &&
		w.QueueLen.Rows == nSt && w.QueueLen.Cols == nCh
}

// Workspace holds every buffer Approximate needs, so that repeated calls
// — the inner loop of WINDIM's pattern search — run with zero steady-state
// allocations. A workspace is NOT safe for concurrent use; concurrent
// evaluators (core.Engine's pool) hold one workspace each.
//
// Reusing a workspace never changes results: the buffers are reset per
// call and the incremental σ-curve cache only short-circuits recursions
// whose inputs are bit-identical, so a workspace-backed run reproduces the
// workspace-free run exactly.
type Workspace struct {
	nSt, nCh int

	active []bool
	q      *numeric.Matrix
	t      *numeric.Matrix
	sigma  *numeric.Matrix
	lam    numeric.Vector
	prev   numeric.Vector

	// σ sub-problem scratch.
	visits    numeric.Vector
	servInf   numeric.Vector
	isStation []bool
	scT       numeric.Vector
	scZero    numeric.Vector // never written; N(0) of the recursion

	curves []chainCurve

	// sol is returned by workspace-backed Approximate calls; it is valid
	// only until the next call with the same workspace.
	sol *Solution
}

// chainCurve caches the exact single-chain recursion of one chain's σ
// sub-problem (eq. 4.12): q[d-1] is the queue-length vector at population
// d, valid for the stored inflated service times. When a sweep re-solves
// the sub-problem with bit-identical inflated service times — every sweep
// in a single-chain network, and the stabilised tail of any fixed point —
// the cached prefix is reused and only missing populations are extended.
// Extension reproduces the from-scratch recursion bit for bit, so the
// cache is purely a time optimisation.
type chainCurve struct {
	valid   bool
	servInf numeric.Vector
	n       int              // populations 1..n are valid
	q       []numeric.Vector // backing buffers, reused across invalidations
}

// NewWorkspace returns an empty workspace; buffers are sized lazily from
// the first network solved with it.
func NewWorkspace() *Workspace { return &Workspace{} }

// ensure sizes the buffers for an nSt-station, nCh-chain network,
// reallocating only on dimension change.
func (w *Workspace) ensure(nSt, nCh int) {
	if w.nSt == nSt && w.nCh == nCh {
		return
	}
	w.nSt, w.nCh = nSt, nCh
	w.active = make([]bool, nCh)
	w.q = numeric.NewMatrix(nSt, nCh)
	w.t = numeric.NewMatrix(nSt, nCh)
	w.sigma = numeric.NewMatrix(nSt, nCh)
	w.lam = numeric.NewVector(nCh)
	w.prev = numeric.NewVector(nCh)
	w.visits = numeric.NewVector(nSt)
	w.servInf = numeric.NewVector(nSt)
	w.isStation = make([]bool, nSt)
	w.scT = numeric.NewVector(nSt)
	w.scZero = numeric.NewVector(nSt)
	w.curves = make([]chainCurve, nCh)
	w.sol = newSolution(nSt, nCh)
}

// reset clears the per-call numeric state (the curve cache survives: its
// hits are input-keyed and bit-faithful, see chainCurve).
func (w *Workspace) reset() {
	w.q.Zero()
	w.t.Zero()
	w.lam.Zero()
	w.sol.Throughput.Zero()
	w.sol.QueueLen.Zero()
	w.sol.QueueTime.Zero()
	w.sol.Iterations = 0
}

// curveUpTo returns the σ sub-problem's mean queue lengths at populations
// pop and pop-1 for chain r, extending or rebuilding the cached recursion
// as needed. visits/servInf/isStation describe the inflated single-chain
// problem; the returned vectors alias workspace storage.
func (w *Workspace) curveUpTo(r int, visits, servInf numeric.Vector, isStation []bool, pop int) (nAt, nPrev numeric.Vector) {
	c := &w.curves[r]
	if !c.valid || !vectorsEqual(c.servInf, servInf) {
		c.valid = true
		if c.servInf == nil {
			c.servInf = numeric.NewVector(len(servInf))
		}
		copy(c.servInf, servInf)
		c.n = 0
	}
	for d := c.n + 1; d <= pop; d++ {
		if len(c.q) < d {
			c.q = append(c.q, numeric.NewVector(w.nSt))
		}
		prev := w.scZero
		if d > 1 {
			prev = c.q[d-2]
		}
		// The exact single-chain MVA step, in ExactSingleChain's exact
		// arithmetic order so cached and uncached runs agree bitwise.
		t := w.scT
		denom := 0.0
		for i := range visits {
			if visits[i] == 0 {
				continue
			}
			if isStation[i] {
				t[i] = servInf[i]
			} else {
				t[i] = servInf[i] * (1 + prev[i])
			}
			denom += visits[i] * t[i]
		}
		lam := float64(d) / denom
		q := c.q[d-1]
		for i := range visits {
			if visits[i] > 0 {
				q[i] = lam * visits[i] * t[i]
			} else {
				q[i] = 0
			}
		}
	}
	if pop > c.n {
		c.n = pop
	}
	nAt = c.q[pop-1]
	nPrev = w.scZero
	if pop > 1 {
		nPrev = c.q[pop-2]
	}
	return nAt, nPrev
}

func vectorsEqual(a, b numeric.Vector) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// seedChainFromWarm seeds chain r's STEP-1 state from a warm start,
// rescaling the queue-length column to the chain's current population. It
// reports false (leaving q and lam untouched) when the warm column is
// degenerate, so the caller can fall back to the cold initialisation.
func seedChainFromWarm(warm *WarmStart, r, nSt, pop int, visits []float64, q *numeric.Matrix, lam numeric.Vector) bool {
	colSum := 0.0
	for i := 0; i < nSt; i++ {
		colSum += warm.QueueLen.At(i, r)
	}
	wl := warm.Throughput[r]
	if !(colSum > 0) || math.IsInf(colSum, 0) || !(wl > 0) || math.IsInf(wl, 0) {
		return false
	}
	scale := float64(pop) / colSum
	for i := 0; i < nSt; i++ {
		if visits[i] > 0 {
			q.Set(i, r, warm.QueueLen.At(i, r)*scale)
		}
	}
	lam[r] = wl
	return true
}
