// Package mva implements mean value analysis of closed multichain
// queueing networks (Ch. 4 §4.2 of the thesis): the exact single-chain
// and multichain recursions (eqs. 4.4–4.7, Reiser–Lavenberg 1980) and the
// approximate solvers that make window dimensioning tractable — the
// thesis's σ-heuristic (eqs. 4.8–4.15) and the Schweitzer–Bard fixed
// point (used here as an ablation baseline).
package mva

import (
	"fmt"
	"math"

	"repro/internal/numeric"
	"repro/internal/qnet"
)

// Solution holds the steady-state mean values of a closed multichain
// network.
type Solution struct {
	// Throughput[r] is chain r's throughput in customers/second per unit
	// visit ratio (station-level throughput is Visits[r][i]*Throughput[r]).
	Throughput numeric.Vector
	// QueueLen.At(i, r) is the mean number of chain-r customers at
	// station i.
	QueueLen *numeric.Matrix
	// QueueTime.At(i, r) is the mean time a chain-r customer spends per
	// visit to station i (queueing + service).
	QueueTime *numeric.Matrix
	// Iterations counts fixed-point sweeps for the approximate solvers
	// (0 for exact recursions).
	Iterations int
	// Solver names the algorithm that produced the solution ("exact-mva",
	// "sigma-heuristic", "schweitzer", "linearizer", ...). Resilient
	// evaluation layers (core.Engine's fallback chain) append a tier
	// suffix such as "+damped" when the answer did not come from the
	// configured primary solver.
	Solver string
}

func newSolution(n, r int) *Solution {
	return &Solution{
		Throughput: numeric.NewVector(r),
		QueueLen:   numeric.NewMatrix(n, r),
		QueueTime:  numeric.NewMatrix(n, r),
	}
}

// Utilization returns the per-station offered utilisation
// sum_r Throughput[r]*Visits[r][i]*ServTime[r][i] implied by the solution
// for the given network. For single-server fixed-rate stations this equals
// the busy probability.
func (s *Solution) Utilization(net *qnet.Network) numeric.Vector {
	u := numeric.NewVector(net.N())
	for i := 0; i < net.N(); i++ {
		for r := 0; r < net.R(); r++ {
			u[i] += s.Throughput[r] * net.Chains[r].Demand(i)
		}
	}
	return u
}

// TotalQueueLen returns the mean total population at station i.
func (s *Solution) TotalQueueLen(i int) float64 {
	t := 0.0
	for r := 0; r < s.QueueLen.Cols; r++ {
		t += s.QueueLen.At(i, r)
	}
	return t
}

// checkSupported rejects stations the MVA recursions cannot handle.
// allowLD permits queue-dependent stations (single-chain solvers only).
func checkSupported(net *qnet.Network, allowLD bool) error {
	for i := range net.Stations {
		st := &net.Stations[i]
		if st.Kind == qnet.IS {
			continue
		}
		if st.IsQueueDependent() && !allowLD {
			return fmt.Errorf("mva: station %d (%s) is queue-dependent; multichain MVA supports fixed-rate and IS stations only (use the convolution solver)",
				i, st.Name)
		}
	}
	return nil
}

// Prevalidate performs the per-call validation work of the approximate
// solvers once — structural Validate, the supported-station check, and the
// §3.3.3 mixed-network reduction — and returns the effective closed
// network, to be solved with Options.Prevalidated set. Validity is
// independent of chain populations (beyond non-negativity), so the result
// may be re-solved at any population vector; core.Engine relies on this to
// strip all three passes from its per-candidate hot path.
func Prevalidate(net *qnet.Network) (*qnet.Network, error) {
	if err := net.Validate(); err != nil {
		return nil, err
	}
	if err := checkSupported(net, false); err != nil {
		return nil, err
	}
	return net.EffectiveClosed(), nil
}

// littleCheck is a debug invariant: per-chain populations must match the
// queue-length totals to within tol. Returns an error naming the first
// violated chain.
func littleCheck(net *qnet.Network, s *Solution, tol float64) error {
	for r := 0; r < net.R(); r++ {
		sum := 0.0
		for i := 0; i < net.N(); i++ {
			sum += s.QueueLen.At(i, r)
		}
		if want := float64(net.Chains[r].Population); math.Abs(sum-want) > tol {
			return fmt.Errorf("mva: chain %d population leak: queue lengths sum to %v, want %v", r, sum, want)
		}
	}
	return nil
}
