package mva

// This file preserves the pre-sparse dense solver implementations
// verbatim (modulo renames) as executable references: the sparse rewrites
// in approx.go, exact.go and linearizer.go claim bit-identical results,
// and sparse_equiv_test.go checks that claim against these.

import (
	"fmt"
	"math"

	"repro/internal/numeric"
	"repro/internal/qnet"
)

// denseApproximate is the dense-loop Approximate: every per-chain loop
// walks all N stations guarded by `Visits[i] == 0`, STEP 3 re-sums all R
// chains per (station, chain) pair, and the σ sub-problem recursion is
// recomputed from population 1 each sweep (the curve cache it replaces is
// bit-faithful, so recomputing changes nothing).
func denseApproximate(net *qnet.Network, opts Options) (*Solution, error) {
	opts = opts.withDefaults()
	if !opts.Prevalidated {
		if err := net.Validate(); err != nil {
			return nil, err
		}
		if err := checkSupported(net, false); err != nil {
			return nil, err
		}
		net = net.EffectiveClosed()
	}
	nSt, nCh := net.N(), net.R()

	active := make([]bool, nCh)
	anyActive := false
	for r := 0; r < nCh; r++ {
		active[r] = net.Chains[r].Population > 0
		anyActive = anyActive || active[r]
	}
	sol := newSolution(nSt, nCh)
	if !anyActive {
		return sol, nil
	}

	q := numeric.NewMatrix(nSt, nCh)
	lam := numeric.NewVector(nCh)
	warm := opts.Warm
	if !warm.matches(nSt, nCh) {
		warm = nil
	}
	for r := 0; r < nCh; r++ {
		if !active[r] {
			continue
		}
		ch := &net.Chains[r]
		if warm != nil && denseSeedChainFromWarm(warm, r, nSt, ch.Population, ch.Visits, q, lam) {
			continue
		}
		if err := denseColdSeedChain(ch, r, nSt, opts.Init, q, lam); err != nil {
			return nil, err
		}
	}

	t := numeric.NewMatrix(nSt, nCh)
	sigma := numeric.NewMatrix(nSt, nCh)
	prev := numeric.NewVector(nCh)
	for iter := 1; iter <= opts.MaxIter; iter++ {
		switch opts.Method {
		case Schweitzer:
			for r := 0; r < nCh; r++ {
				if !active[r] {
					continue
				}
				inv := 1 / float64(net.Chains[r].Population)
				for i := 0; i < nSt; i++ {
					sigma.Set(i, r, q.At(i, r)*inv)
				}
			}
		default:
			if err := denseSigma(net, active, lam, sigma); err != nil {
				return nil, err
			}
		}
		for r := 0; r < nCh; r++ {
			if !active[r] {
				continue
			}
			ch := &net.Chains[r]
			for i := 0; i < nSt; i++ {
				if ch.Visits[i] == 0 {
					continue
				}
				if net.Stations[i].Kind == qnet.IS {
					t.Set(i, r, ch.ServTime[i])
					continue
				}
				total := 0.0
				for j := 0; j < nCh; j++ {
					total += q.At(i, j)
				}
				seen := total - sigma.At(i, r)
				if seen < 0 {
					seen = 0
				}
				t.Set(i, r, ch.ServTime[i]*(1+seen))
			}
		}
		copy(prev, lam)
		for r := 0; r < nCh; r++ {
			if !active[r] {
				continue
			}
			ch := &net.Chains[r]
			denom := 0.0
			for i := 0; i < nSt; i++ {
				if ch.Visits[i] > 0 {
					denom += ch.Visits[i] * t.At(i, r)
				}
			}
			lam[r] = float64(ch.Population) / denom
		}
		for r := 0; r < nCh; r++ {
			if !active[r] {
				continue
			}
			ch := &net.Chains[r]
			for i := 0; i < nSt; i++ {
				if ch.Visits[i] == 0 {
					continue
				}
				next := lam[r] * ch.Visits[i] * t.At(i, r)
				q.Set(i, r, opts.Damping*next+(1-opts.Damping)*q.At(i, r))
			}
		}
		if lam.L2Diff(prev) < opts.Tol {
			sol.Iterations = iter
			sol.Solver = opts.Method.String()
			copy(sol.Throughput, lam)
			for i := 0; i < nSt; i++ {
				for r := 0; r < nCh; r++ {
					sol.QueueTime.Set(i, r, t.At(i, r))
					sol.QueueLen.Set(i, r, q.At(i, r))
				}
			}
			return sol, nil
		}
	}
	return nil, fmt.Errorf("%w after %d sweeps (method %v, tol %g)",
		ErrNotConverged, opts.MaxIter, opts.Method, opts.Tol)
}

func denseColdSeedChain(ch *qnet.Chain, r, nSt int, init Initialization, q *numeric.Matrix, lam numeric.Vector) error {
	switch init {
	case Bottleneck:
		best, at := -1.0, -1
		for i := 0; i < nSt; i++ {
			if ch.Visits[i] > 0 && ch.Demand(i) > best {
				best, at = ch.Demand(i), i
			}
		}
		if at < 0 {
			return fmt.Errorf("mva: chain %d has no station with positive visits and demand", r)
		}
		q.Set(at, r, float64(ch.Population))
	default:
		cnt := 0
		for i := 0; i < nSt; i++ {
			if ch.Visits[i] > 0 {
				cnt++
			}
		}
		if cnt == 0 {
			return fmt.Errorf("mva: chain %d has no station with positive visits and demand", r)
		}
		share := float64(ch.Population) / float64(cnt)
		for i := 0; i < nSt; i++ {
			if ch.Visits[i] > 0 {
				q.Set(i, r, share)
			}
		}
	}
	d := 0.0
	for i := 0; i < nSt; i++ {
		d += ch.Demand(i)
	}
	lam[r] = float64(ch.Population) / d
	return nil
}

func denseSeedChainFromWarm(warm *WarmStart, r, nSt, pop int, visits []float64, q *numeric.Matrix, lam numeric.Vector) bool {
	colSum := 0.0
	for i := 0; i < nSt; i++ {
		colSum += warm.QueueLen.At(i, r)
	}
	wl := warm.Throughput[r]
	if !(colSum > 0) || math.IsInf(colSum, 0) || !(wl > 0) || math.IsInf(wl, 0) {
		return false
	}
	scale := float64(pop) / colSum
	for i := 0; i < nSt; i++ {
		if visits[i] > 0 {
			q.Set(i, r, warm.QueueLen.At(i, r)*scale)
		}
	}
	lam[r] = wl
	return true
}

func denseSigma(net *qnet.Network, active []bool, lam numeric.Vector, sigma *numeric.Matrix) error {
	nSt, nCh := net.N(), net.R()
	const maxRho = 0.999
	visits := numeric.NewVector(nSt)
	servInf := numeric.NewVector(nSt)
	isStation := make([]bool, nSt)
	for i := 0; i < nSt; i++ {
		isStation[i] = net.Stations[i].Kind == qnet.IS
	}
	for r := 0; r < nCh; r++ {
		if !active[r] {
			continue
		}
		ch := &net.Chains[r]
		anyVisit := false
		for i := 0; i < nSt; i++ {
			visits[i] = ch.Visits[i]
			servInf[i] = 0
			if ch.Visits[i] == 0 {
				continue
			}
			anyVisit = true
			if isStation[i] {
				servInf[i] = ch.ServTime[i]
				continue
			}
			other := 0.0
			for j := 0; j < nCh; j++ {
				if j != r {
					other += lam[j] * net.Chains[j].Demand(i)
				}
			}
			if other > maxRho {
				other = maxRho
			}
			servInf[i] = ch.ServTime[i] / (1 - other)
		}
		if !anyVisit {
			return fmt.Errorf("mva: sigma sub-problem for chain %d: chain visits no station", r)
		}
		// The single-chain recursion from population 1, in the exact
		// arithmetic order of the production curve cache.
		pop := ch.Population
		prevQ := numeric.NewVector(nSt)
		curQ := numeric.NewVector(nSt)
		t := numeric.NewVector(nSt)
		for d := 1; d <= pop; d++ {
			denom := 0.0
			for i := 0; i < nSt; i++ {
				if visits[i] == 0 {
					continue
				}
				if isStation[i] {
					t[i] = servInf[i]
				} else {
					t[i] = servInf[i] * (1 + curQ[i])
				}
				denom += visits[i] * t[i]
			}
			l := float64(d) / denom
			copy(prevQ, curQ)
			for i := 0; i < nSt; i++ {
				if visits[i] > 0 {
					curQ[i] = l * visits[i] * t[i]
				} else {
					curQ[i] = 0
				}
			}
		}
		for i := 0; i < nSt; i++ {
			if ch.Visits[i] > 0 {
				s := curQ[i] - prevQ[i]
				if s < 0 {
					s = 0
				} else if s > 1 {
					s = 1
				}
				sigma.Set(i, r, s)
			} else {
				sigma.Set(i, r, 0)
			}
		}
	}
	return nil
}

// denseExactMultichain is the dense-loop exact recursion.
func denseExactMultichain(net *qnet.Network) (*Solution, error) {
	if err := net.Validate(); err != nil {
		return nil, err
	}
	if err := checkSupported(net, false); err != nil {
		return nil, err
	}
	net = net.EffectiveClosed()
	h := net.Populations()
	size, err := numeric.LatticeSize(h, LatticeBudget)
	if err != nil {
		return nil, fmt.Errorf("mva: %w", err)
	}
	nSt, nCh := net.N(), net.R()
	totals := make([]float64, size*nSt)
	strides := make([]int, nCh)
	stride := 1
	for r := nCh - 1; r >= 0; r-- {
		strides[r] = stride
		stride *= h[r] + 1
	}
	sol := newSolution(nSt, nCh)
	sol.Solver = "exact-mva"
	t := numeric.NewMatrix(nSt, nCh)
	idx := 0
	numeric.LatticeWalk(h, func(p numeric.IntVector) {
		base := idx * nSt
		for r := 0; r < nCh; r++ {
			if p[r] == 0 {
				continue
			}
			ch := &net.Chains[r]
			prevBase := (idx - strides[r]) * nSt
			denom := 0.0
			for i := 0; i < nSt; i++ {
				v := ch.Visits[i]
				if v == 0 {
					continue
				}
				var ti float64
				if net.Stations[i].Kind == qnet.IS {
					ti = ch.ServTime[i]
				} else {
					ti = ch.ServTime[i] * (1 + totals[prevBase+i])
				}
				t.Set(i, r, ti)
				denom += v * ti
			}
			lam := float64(p[r]) / denom
			if idx == size-1 {
				sol.Throughput[r] = lam
				for i := 0; i < nSt; i++ {
					if ch.Visits[i] > 0 {
						sol.QueueTime.Set(i, r, t.At(i, r))
						sol.QueueLen.Set(i, r, lam*ch.Visits[i]*t.At(i, r))
					}
				}
			}
			for i := 0; i < nSt; i++ {
				if v := ch.Visits[i]; v > 0 {
					totals[base+i] += lam * v * t.At(i, r)
				}
			}
		}
		idx++
	})
	return sol, nil
}

// denseLinearizer is the dense-loop Linearizer with the full [N][R][R]
// deviation array.
func denseLinearizer(net *qnet.Network, opts Options) (*Solution, error) {
	opts = opts.withDefaults()
	if !opts.Prevalidated {
		if err := net.Validate(); err != nil {
			return nil, err
		}
		if err := checkSupported(net, false); err != nil {
			return nil, err
		}
		net = net.EffectiveClosed()
	}
	nSt, nCh := net.N(), net.R()
	pop := net.Populations()
	if !anyPositive(pop) {
		return newSolution(nSt, nCh), nil
	}
	f := make([][][]float64, nSt)
	for i := range f {
		f[i] = make([][]float64, nCh)
		for r := range f[i] {
			f[i][r] = make([]float64, nCh)
		}
	}
	const sweeps = 3
	warm := opts.Warm
	if !warm.matches(nSt, nCh) {
		warm = nil
	}
	var full *coreResult
	for sweep := 0; sweep < sweeps; sweep++ {
		var err error
		full, err = denseLinearizerCore(net, pop, f, opts, warm)
		if err != nil {
			return nil, err
		}
		if sweep == sweeps-1 {
			break
		}
		reduced := make([]*coreResult, nCh)
		for j := 0; j < nCh; j++ {
			if pop[j] == 0 {
				continue
			}
			pj := pop.Clone()
			pj[j]--
			reduced[j], err = denseLinearizerCore(net, pj, f, opts, nil)
			if err != nil {
				return nil, err
			}
		}
		for i := 0; i < nSt; i++ {
			for r := 0; r < nCh; r++ {
				if pop[r] == 0 {
					continue
				}
				yFull := full.q.At(i, r) / float64(pop[r])
				for j := 0; j < nCh; j++ {
					if reduced[j] == nil {
						continue
					}
					denom := float64(pop[r])
					if j == r {
						denom--
					}
					if denom <= 0 {
						f[i][r][j] = 0
						continue
					}
					f[i][r][j] = reduced[j].q.At(i, r)/denom - yFull
				}
			}
		}
	}
	sol := newSolution(nSt, nCh)
	sol.Iterations = full.iterations
	sol.Solver = "linearizer"
	copy(sol.Throughput, full.lam)
	for i := 0; i < nSt; i++ {
		for r := 0; r < nCh; r++ {
			sol.QueueLen.Set(i, r, full.q.At(i, r))
			sol.QueueTime.Set(i, r, full.t.At(i, r))
		}
	}
	return sol, nil
}

func denseLinearizerCore(net *qnet.Network, pop numeric.IntVector, f [][][]float64, opts Options, warm *WarmStart) (*coreResult, error) {
	nSt, nCh := net.N(), net.R()
	res := &coreResult{
		lam: numeric.NewVector(nCh),
		q:   numeric.NewMatrix(nSt, nCh),
		t:   numeric.NewMatrix(nSt, nCh),
	}
	if !anyPositive(pop) {
		return res, nil
	}
	for r := 0; r < nCh; r++ {
		if pop[r] == 0 {
			continue
		}
		ch := &net.Chains[r]
		if warm != nil && denseSeedChainFromWarm(warm, r, nSt, pop[r], ch.Visits, res.q, res.lam) {
			continue
		}
		cnt := 0
		for i := 0; i < nSt; i++ {
			if ch.Visits[i] > 0 {
				cnt++
			}
		}
		share := float64(pop[r]) / float64(cnt)
		for i := 0; i < nSt; i++ {
			if ch.Visits[i] > 0 {
				res.q.Set(i, r, share)
			}
		}
	}
	for iter := 1; iter <= opts.MaxIter; iter++ {
		prev := res.lam.Clone()
		for r := 0; r < nCh; r++ {
			if pop[r] == 0 {
				continue
			}
			ch := &net.Chains[r]
			denom := 0.0
			for i := 0; i < nSt; i++ {
				if ch.Visits[i] == 0 {
					continue
				}
				var ti float64
				if net.Stations[i].Kind == qnet.IS {
					ti = ch.ServTime[i]
				} else {
					seen := 0.0
					for j := 0; j < nCh; j++ {
						if pop[j] == 0 {
							continue
						}
						nj := float64(pop[j])
						if j == r {
							nj--
						}
						if nj <= 0 {
							continue
						}
						est := res.q.At(i, j)/float64(pop[j]) + f[i][j][r]
						if est < 0 {
							est = 0
						}
						seen += nj * est
					}
					ti = ch.ServTime[i] * (1 + seen)
				}
				res.t.Set(i, r, ti)
				denom += ch.Visits[i] * ti
			}
			res.lam[r] = float64(pop[r]) / denom
		}
		for r := 0; r < nCh; r++ {
			if pop[r] == 0 {
				continue
			}
			ch := &net.Chains[r]
			for i := 0; i < nSt; i++ {
				if ch.Visits[i] > 0 {
					next := res.lam[r] * ch.Visits[i] * res.t.At(i, r)
					res.q.Set(i, r, opts.Damping*next+(1-opts.Damping)*res.q.At(i, r))
				}
			}
		}
		if res.lam.L2Diff(prev) < opts.Tol {
			res.iterations = iter
			return res, nil
		}
	}
	return nil, fmt.Errorf("%w: dense linearizer core at population %v", ErrNotConverged, pop)
}
