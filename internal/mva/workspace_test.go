package mva

import (
	"math"
	"testing"

	"repro/internal/qnet"
)

// twoChain builds a 3-station network with two cyclic chains of the given
// populations, asymmetric enough that the fixed point takes real work.
func twoChain(p1, p2 int) *qnet.Network {
	return &qnet.Network{
		Stations: []qnet.Station{{Name: "a"}, {Name: "b"}, {Name: "c"}},
		Chains: []qnet.Chain{
			{
				Name: "c1", Population: p1,
				Visits:   []float64{1, 1, 0},
				ServTime: []float64{0.4, 0.7, 0},
			},
			{
				Name: "c2", Population: p2,
				Visits:   []float64{1, 0, 1},
				ServTime: []float64{0.4, 0, 0.3},
			},
		},
	}
}

// Satellite regression: an active chain with no positive-visit station used
// to drive the Bottleneck initialisation to q.Set(-1, ...), a panic. The
// public API rejects such networks in Validate, so the path is reached via
// Prevalidated (the engine's contract is that ITS validation ran; a buggy
// caller must still get an error, not a panic).
func TestBottleneckInitNoVisitedStation(t *testing.T) {
	net := twoChain(3, 2)
	net.Chains[1].Visits = []float64{0, 0, 0}
	for _, init := range []Initialization{Balanced, Bottleneck} {
		_, err := Approximate(net, Options{Init: init, Prevalidated: true})
		if err == nil {
			t.Fatalf("%v: expected initialisation error for chain with no visited station", init)
		}
	}
}

func TestWorkspaceBitIdentical(t *testing.T) {
	ws := NewWorkspace()
	for _, m := range []Method{SigmaHeuristic, Schweitzer} {
		for _, pops := range [][2]int{{1, 1}, {4, 2}, {2, 5}, {4, 2}} {
			net := twoChain(pops[0], pops[1])
			plain, err := Approximate(net, Options{Method: m})
			if err != nil {
				t.Fatal(err)
			}
			backed, err := Approximate(net, Options{Method: m, Workspace: ws})
			if err != nil {
				t.Fatal(err)
			}
			if plain.Iterations != backed.Iterations {
				t.Errorf("%v %v: iterations %d vs %d", m, pops, plain.Iterations, backed.Iterations)
			}
			for r := range plain.Throughput {
				if plain.Throughput[r] != backed.Throughput[r] {
					t.Errorf("%v %v chain %d: lambda %v vs %v (must be bitwise equal)",
						m, pops, r, plain.Throughput[r], backed.Throughput[r])
				}
			}
			for i := 0; i < net.N(); i++ {
				for r := 0; r < net.R(); r++ {
					if plain.QueueLen.At(i, r) != backed.QueueLen.At(i, r) {
						t.Errorf("%v %v: queue length (%d,%d) differs", m, pops, i, r)
					}
					if plain.QueueTime.At(i, r) != backed.QueueTime.At(i, r) {
						t.Errorf("%v %v: queue time (%d,%d) differs", m, pops, i, r)
					}
				}
			}
		}
	}
}

func TestWarmStartSameFixedPointFewerSweeps(t *testing.T) {
	cold1, err := Approximate(twoChain(4, 3), Options{})
	if err != nil {
		t.Fatal(err)
	}
	warm := WarmFromSolution(cold1)

	// The neighbouring candidate (one window bumped), cold and warm.
	next := twoChain(5, 3)
	cold2, err := Approximate(next, Options{})
	if err != nil {
		t.Fatal(err)
	}
	warm2, err := Approximate(next, Options{Warm: warm})
	if err != nil {
		t.Fatal(err)
	}
	for r := range cold2.Throughput {
		diff := math.Abs(cold2.Throughput[r] - warm2.Throughput[r])
		if diff > 1e-5 {
			t.Errorf("chain %d: warm fixed point drifted by %v", r, diff)
		}
	}
	if warm2.Iterations > cold2.Iterations {
		t.Errorf("warm start took %d sweeps, cold %d", warm2.Iterations, cold2.Iterations)
	}
}

func TestWarmStartDegenerateFallsBack(t *testing.T) {
	// A seed with the wrong dimensions, and one with a zero column, must
	// both fall back to the cold rule and still converge.
	net := twoChain(3, 2)
	cold, err := Approximate(net, Options{})
	if err != nil {
		t.Fatal(err)
	}
	bad := &WarmStart{} // dimension mismatch
	sol, err := Approximate(net, Options{Warm: bad})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Throughput[0] != cold.Throughput[0] {
		t.Error("mismatched seed should reproduce the cold run exactly")
	}
	zero := WarmFromSolution(cold)
	zero.Throughput[1] = 0 // degenerate column for chain 1 only
	sol2, err := Approximate(net, Options{Warm: zero})
	if err != nil {
		t.Fatal(err)
	}
	for r := range sol2.Throughput {
		if math.Abs(sol2.Throughput[r]-cold.Throughput[r]) > 1e-5 {
			t.Errorf("chain %d: partial seed diverged", r)
		}
	}
}

func TestLinearizerWarmStart(t *testing.T) {
	cold1, err := Linearizer(twoChain(4, 3), Options{})
	if err != nil {
		t.Fatal(err)
	}
	next := twoChain(5, 3)
	cold2, err := Linearizer(next, Options{})
	if err != nil {
		t.Fatal(err)
	}
	warm2, err := Linearizer(next, Options{Warm: WarmFromSolution(cold1)})
	if err != nil {
		t.Fatal(err)
	}
	for r := range cold2.Throughput {
		if math.Abs(cold2.Throughput[r]-warm2.Throughput[r]) > 1e-5 {
			t.Errorf("chain %d: warm Linearizer drifted", r)
		}
	}
}

// raceEnabled is set by race_test.go; the race detector instruments
// allocations, so counting them is only meaningful without it.
var raceEnabled bool

func TestApproximateSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	net := twoChain(4, 3)
	eff, err := Prevalidate(net)
	if err != nil {
		t.Fatal(err)
	}
	ws := NewWorkspace()
	opts := Options{Workspace: ws, Prevalidated: true}
	// Prime the workspace (sizes buffers, fills the curve cache).
	if _, err := Approximate(eff, opts); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := Approximate(eff, opts); err != nil {
			t.Fatal(err)
		}
	})
	// The σ curve cache may extend a vector on a fresh population mix;
	// steady state on a fixed candidate must be allocation-free.
	if allocs > 0 {
		t.Errorf("steady-state Approximate allocates %v times per call, want 0", allocs)
	}
}

func TestPrevalidateRejects(t *testing.T) {
	net := twoChain(3, 2)
	net.Stations[1].Servers = 3
	if _, err := Prevalidate(net); err == nil {
		t.Fatal("expected unsupported-station error")
	}
	bad := twoChain(3, 2)
	bad.Chains[0].Visits = []float64{1}
	if _, err := Prevalidate(bad); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestPrevalidateAppliesOpenLoadReduction(t *testing.T) {
	net := twoChain(3, 2)
	net.Stations[0].OpenLoad = 0.5
	eff, err := Prevalidate(net)
	if err != nil {
		t.Fatal(err)
	}
	want := net.Chains[0].ServTime[0] / (1 - 0.5)
	if math.Abs(eff.Chains[0].ServTime[0]-want) > 1e-15 {
		t.Errorf("service time %v, want inflated %v", eff.Chains[0].ServTime[0], want)
	}
	// Solving the prevalidated network must match the normal path.
	a, err := Approximate(net, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Approximate(eff, Options{Prevalidated: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.Throughput[0] != b.Throughput[0] {
		t.Errorf("prevalidated path diverges: %v vs %v", a.Throughput[0], b.Throughput[0])
	}
}
