package mva

import (
	"math"
	"testing"

	"repro/internal/qnet"
)

func TestLinearizerSingleChainNearExact(t *testing.T) {
	net := cyclic2(6, 0.4, 0.7)
	exact, err := ExactMultichain(net)
	if err != nil {
		t.Fatal(err)
	}
	lin, err := Linearizer(net, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rel := math.Abs(lin.Throughput[0]-exact.Throughput[0]) / exact.Throughput[0]
	if rel > 0.01 {
		t.Errorf("linearizer lambda %v vs exact %v (rel %v)", lin.Throughput[0], exact.Throughput[0], rel)
	}
}

func TestLinearizerBeatsSchweitzer(t *testing.T) {
	// On multichain networks the Linearizer should track exact MVA at
	// least as well as Schweitzer (aggregated over a few cases).
	nets := []*qnet.Network{}
	for _, pops := range [][2]int{{3, 3}, {2, 5}, {4, 2}} {
		n := cyclic2(pops[0], 0.5, 0.3)
		n.Chains = append(n.Chains, n.Chains[0])
		n.Chains[1].Population = pops[1]
		nets = append(nets, n)
	}
	sumLin, sumSchw := 0.0, 0.0
	for _, net := range nets {
		exact, err := ExactMultichain(net)
		if err != nil {
			t.Fatal(err)
		}
		lin, err := Linearizer(net, Options{})
		if err != nil {
			t.Fatal(err)
		}
		schw, err := Approximate(net, Options{Method: Schweitzer})
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < net.R(); r++ {
			sumLin += math.Abs(lin.Throughput[r]-exact.Throughput[r]) / exact.Throughput[r]
			sumSchw += math.Abs(schw.Throughput[r]-exact.Throughput[r]) / exact.Throughput[r]
		}
	}
	if sumLin > sumSchw+1e-9 {
		t.Errorf("linearizer total error %v worse than schweitzer %v", sumLin, sumSchw)
	}
	if sumLin > 0.05 {
		t.Errorf("linearizer total error %v too large", sumLin)
	}
}

func TestLinearizerPopulationConservation(t *testing.T) {
	net := cyclic2(4, 0.3, 0.6)
	net.Chains = append(net.Chains, net.Chains[0])
	net.Chains[1].Population = 3
	sol, err := Linearizer(net, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := littleCheck(net, sol, 1e-5); err != nil {
		t.Error(err)
	}
}

func TestLinearizerZeroAndInvalid(t *testing.T) {
	empty := cyclic2(0, 0.5, 0.5)
	sol, err := Linearizer(empty, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Throughput[0] != 0 {
		t.Errorf("lambda = %v", sol.Throughput[0])
	}
	bad := cyclic2(2, 0.5, 0.5)
	bad.Chains[0].ServTime[0] = -1
	if _, err := Linearizer(bad, Options{}); err == nil {
		t.Error("expected validation error")
	}
	qd := cyclic2(2, 0.5, 0.5)
	qd.Stations[0].Servers = 2
	if _, err := Linearizer(qd, Options{}); err == nil {
		t.Error("expected unsupported-station error")
	}
}

func TestLinearizerWithIS(t *testing.T) {
	net := cyclic2(5, 2.0, 0.5)
	net.Stations[0].Kind = qnet.IS
	exact, err := ExactMultichain(net)
	if err != nil {
		t.Fatal(err)
	}
	lin, err := Linearizer(net, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rel := math.Abs(lin.Throughput[0]-exact.Throughput[0]) / exact.Throughput[0]
	if rel > 0.02 {
		t.Errorf("linearizer %v vs exact %v", lin.Throughput[0], exact.Throughput[0])
	}
}

func TestAsymptoticBoundsBracketExact(t *testing.T) {
	nets := []*qnet.Network{
		cyclic2(1, 0.5, 0.3),
		cyclic2(4, 0.5, 0.3),
		cyclic2(12, 0.5, 0.3),
		func() *qnet.Network {
			n := cyclic2(3, 0.4, 0.2)
			n.Chains = append(n.Chains, n.Chains[0])
			n.Chains[1].Population = 4
			return n
		}(),
		func() *qnet.Network {
			n := cyclic2(5, 2.0, 0.5)
			n.Stations[0].Kind = qnet.IS
			return n
		}(),
	}
	for ni, net := range nets {
		exact, err := ExactMultichain(net)
		if err != nil {
			t.Fatalf("net %d: %v", ni, err)
		}
		b, err := AsymptoticBounds(net)
		if err != nil {
			t.Fatalf("net %d: %v", ni, err)
		}
		for r := 0; r < net.R(); r++ {
			lam := exact.Throughput[r]
			if lam < b.Lower[r]-1e-9 || lam > b.Upper[r]+1e-9 {
				t.Errorf("net %d chain %d: lambda %v outside bounds [%v, %v]",
					ni, r, lam, b.Lower[r], b.Upper[r])
			}
		}
	}
}

func TestAsymptoticBoundsTightAtExtremes(t *testing.T) {
	// Population 1: upper bound is exact (no queueing in a lone chain).
	net := cyclic2(1, 0.5, 0.3)
	exact, _ := ExactMultichain(net)
	b, err := AsymptoticBounds(net)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b.Upper[0]-exact.Throughput[0]) > 1e-12 {
		t.Errorf("upper bound %v not tight at K=1 (exact %v)", b.Upper[0], exact.Throughput[0])
	}
	// Large population: upper bound approaches the bottleneck rate and
	// exact approaches it too.
	big := cyclic2(60, 0.5, 0.3)
	exactBig, _ := ExactMultichain(big)
	bBig, _ := AsymptoticBounds(big)
	if math.Abs(bBig.Upper[0]-2.0) > 1e-12 { // 1/0.5
		t.Errorf("upper bound %v, want bottleneck 2", bBig.Upper[0])
	}
	if exactBig.Throughput[0] < 0.99*2.0 {
		t.Errorf("exact %v not near bottleneck", exactBig.Throughput[0])
	}
}

func TestAsymptoticBoundsValidation(t *testing.T) {
	bad := cyclic2(2, 0.5, 0.5)
	bad.Chains[0].Visits = []float64{1}
	if _, err := AsymptoticBounds(bad); err == nil {
		t.Error("expected validation error")
	}
	zero := cyclic2(0, 0.5, 0.5)
	b, err := AsymptoticBounds(zero)
	if err != nil {
		t.Fatal(err)
	}
	if b.Upper[0] != 0 || b.Lower[0] != 0 {
		t.Errorf("zero-population bounds = [%v, %v]", b.Lower[0], b.Upper[0])
	}
}
