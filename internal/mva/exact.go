package mva

import (
	"fmt"

	"repro/internal/numeric"
	"repro/internal/qnet"
)

// LatticeBudget caps the population lattice the exact multichain recursion
// will attempt (it stores one queue-length matrix per lattice point).
const LatticeBudget = 1 << 22

// ExactMultichain computes the exact MVA solution of a closed multichain
// network with fixed-rate (FCFS/PS/LCFSPR) and IS stations, by the full
// recursion over the population lattice (eqs. 4.4–4.7):
//
//	t_ir(D) = s_ir * (1 + N_i(D - e_r))   (queueing stations)
//	t_ir(D) = s_ir                        (IS stations)
//	lambda_r(D) = D_r / sum_i V_ir t_ir(D)
//	N_ir(D) = lambda_r(D) V_ir t_ir(D)
//
// Cost is Theta(N*R*prod_r (E_r+1)) — the exponential operations count the
// thesis quotes for the exact analysis.
func ExactMultichain(net *qnet.Network) (*Solution, error) {
	if err := net.Validate(); err != nil {
		return nil, err
	}
	if err := checkSupported(net, false); err != nil {
		return nil, err
	}
	net = net.EffectiveClosed()
	h := net.Populations()
	size, err := numeric.LatticeSize(h, LatticeBudget)
	if err != nil {
		return nil, fmt.Errorf("mva: %w", err)
	}
	nSt, nCh := net.N(), net.R()
	// The compiled visit lists make each lattice point cost O(total route
	// length); compilation itself is O(N·R), invisible next to the
	// exponential walk.
	sp := qnet.Compile(net)
	// totals[p*nSt + i] = total mean queue length at station i for
	// population vector p. Only totals are needed by the recursion; the
	// per-chain split is reconstructed at the top point.
	totals := make([]float64, size*nSt)
	strides := make([]int, nCh)
	stride := 1
	for r := nCh - 1; r >= 0; r-- {
		strides[r] = stride
		stride *= h[r] + 1
	}
	sol := newSolution(nSt, nCh)
	sol.Solver = "exact-mva"
	t := numeric.NewMatrix(nSt, nCh) // queue times at current point
	idx := 0
	numeric.LatticeWalk(h, func(p numeric.IntVector) {
		base := idx * nSt
		for r := 0; r < nCh; r++ {
			if p[r] == 0 {
				continue
			}
			lo, hi := sp.ChainPtr[r], sp.ChainPtr[r+1]
			prevBase := (idx - strides[r]) * nSt
			denom := 0.0
			for e := lo; e < hi; e++ {
				i := int(sp.EntStation[e])
				var ti float64
				if sp.EntIS[e] {
					ti = sp.EntServ[e]
				} else {
					ti = sp.EntServ[e] * (1 + totals[prevBase+i])
				}
				t.Set(i, r, ti)
				denom += sp.EntVisit[e] * ti
			}
			lam := float64(p[r]) / denom
			if idx == size-1 {
				sol.Throughput[r] = lam
				for e := lo; e < hi; e++ {
					i := int(sp.EntStation[e])
					sol.QueueTime.Set(i, r, t.At(i, r))
					sol.QueueLen.Set(i, r, lam*sp.EntVisit[e]*t.At(i, r))
				}
			}
			for e := lo; e < hi; e++ {
				i := int(sp.EntStation[e])
				totals[base+i] += lam * sp.EntVisit[e] * t.At(i, r)
			}
		}
		idx++
	})
	return sol, nil
}

// SingleChainCurve holds the exact single-chain MVA solution at every
// population 1..D: the building block of the thesis's σ-heuristic
// (eq. 4.12 needs N at both E_r and E_r-1) and of Fig. 4.1's simple
// cyclic chain analysis.
type SingleChainCurve struct {
	// Throughput[d] is the chain throughput with population d+1.
	Throughput numeric.Vector
	// QueueLen[d][i] is the mean queue length at station i with
	// population d+1.
	QueueLen []numeric.Vector
	// QueueTime[d][i] is the mean per-visit queueing time at station i
	// with population d+1.
	QueueTime []numeric.Vector
}

// At returns mean queue lengths for population d (0 <= d <= max). For
// d == 0 it returns a zero vector.
func (c *SingleChainCurve) At(d int) numeric.Vector {
	if d <= 0 {
		return numeric.NewVector(len(c.QueueLen[0]))
	}
	return c.QueueLen[d-1]
}

// ExactSingleChain runs the exact single-chain MVA recursion up to
// population maxPop over the given visit ratios and service times
// (stations not visited have visit ratio 0). isStation[i] marks IS
// stations (no queueing term). Queue-dependent stations are not supported
// here; use SingleChainLD.
func ExactSingleChain(visits, servTime numeric.Vector, isStation []bool, maxPop int) (*SingleChainCurve, error) {
	n := len(visits)
	if len(servTime) != n || (isStation != nil && len(isStation) != n) {
		return nil, fmt.Errorf("mva: single-chain dimension mismatch")
	}
	if maxPop < 1 {
		return nil, fmt.Errorf("mva: single-chain population must be >= 1, got %d", maxPop)
	}
	anyVisit := false
	for i := 0; i < n; i++ {
		if visits[i] > 0 {
			anyVisit = true
			if servTime[i] <= 0 {
				return nil, fmt.Errorf("mva: station %d visited with non-positive service time", i)
			}
		}
	}
	if !anyVisit {
		return nil, fmt.Errorf("mva: chain visits no station")
	}
	curve := &SingleChainCurve{
		Throughput: numeric.NewVector(maxPop),
		QueueLen:   make([]numeric.Vector, maxPop),
		QueueTime:  make([]numeric.Vector, maxPop),
	}
	prev := numeric.NewVector(n)
	for d := 1; d <= maxPop; d++ {
		t := numeric.NewVector(n)
		denom := 0.0
		for i := 0; i < n; i++ {
			if visits[i] == 0 {
				continue
			}
			if isStation != nil && isStation[i] {
				t[i] = servTime[i]
			} else {
				t[i] = servTime[i] * (1 + prev[i])
			}
			denom += visits[i] * t[i]
		}
		lam := float64(d) / denom
		q := numeric.NewVector(n)
		for i := 0; i < n; i++ {
			if visits[i] > 0 {
				q[i] = lam * visits[i] * t[i]
			}
		}
		curve.Throughput[d-1] = lam
		curve.QueueLen[d-1] = q
		curve.QueueTime[d-1] = t
		prev = q
	}
	return curve, nil
}

// SingleChainLD runs exact single-chain MVA with load-dependent stations,
// tracking the marginal queue-length probabilities p_i(j | d)
// (Reiser–Lavenberg): for a station with rate factors f(j),
//
//	t_i(d) = sum_{j=1..d} (j * s_i / f(j)) p_i(j-1 | d-1)
//	p_i(j|d) = (lambda(d) V_i s_i / f(j)) p_i(j-1 | d-1),  j >= 1
//	p_i(0|d) = 1 - sum_{j>=1} p_i(j|d)
//
// Stations with rateFactor nil behave as fixed-rate single servers.
func SingleChainLD(visits, servTime numeric.Vector, stations []qnet.Station, maxPop int) (*SingleChainCurve, error) {
	n := len(visits)
	if len(servTime) != n || len(stations) != n {
		return nil, fmt.Errorf("mva: single-chain LD dimension mismatch")
	}
	if maxPop < 1 {
		return nil, fmt.Errorf("mva: single-chain population must be >= 1, got %d", maxPop)
	}
	// p[i][j] = P(station i holds j customers | current population).
	p := make([]numeric.Vector, n)
	for i := range p {
		p[i] = numeric.NewVector(maxPop + 1)
		p[i][0] = 1
	}
	curve := &SingleChainCurve{
		Throughput: numeric.NewVector(maxPop),
		QueueLen:   make([]numeric.Vector, maxPop),
		QueueTime:  make([]numeric.Vector, maxPop),
	}
	for d := 1; d <= maxPop; d++ {
		t := numeric.NewVector(n)
		denom := 0.0
		for i := 0; i < n; i++ {
			if visits[i] == 0 {
				continue
			}
			st := &stations[i]
			if st.Kind == qnet.IS {
				t[i] = servTime[i]
			} else if st.IsQueueDependent() {
				for j := 1; j <= d; j++ {
					t[i] += float64(j) * servTime[i] / st.RateFactor(j) * p[i][j-1]
				}
			} else {
				// Fixed rate: t = s(1+N), N = sum j p(j).
				mean := 0.0
				for j := 1; j < d; j++ {
					mean += float64(j) * p[i][j]
				}
				t[i] = servTime[i] * (1 + mean)
			}
			denom += visits[i] * t[i]
		}
		lam := float64(d) / denom
		q := numeric.NewVector(n)
		for i := 0; i < n; i++ {
			if visits[i] == 0 {
				continue
			}
			st := &stations[i]
			q[i] = lam * visits[i] * t[i]
			if st.Kind != qnet.IS {
				// Update marginals from high j downwards using the
				// previous population's values.
				newP := numeric.NewVector(maxPop + 1)
				sum := 0.0
				for j := d; j >= 1; j-- {
					f := st.RateFactor(j)
					newP[j] = lam * visits[i] * servTime[i] / f * p[i][j-1]
					sum += newP[j]
				}
				newP[0] = 1 - sum
				if newP[0] < 0 {
					newP[0] = 0
				}
				p[i] = newP
			}
		}
		curve.Throughput[d-1] = lam
		curve.QueueLen[d-1] = q
		curve.QueueTime[d-1] = t
	}
	return curve, nil
}
