package mva

import (
	"repro/internal/numeric"
	"repro/internal/qnet"
)

// Bounds holds per-chain asymptotic throughput bounds.
type Bounds struct {
	// Lower[r] <= Throughput[r] <= Upper[r] for the exact solution.
	Lower, Upper numeric.Vector
}

// AsymptoticBounds computes classic asymptotic bounds on each chain's
// throughput (per unit visit ratio), cheap sanity brackets for any MVA
// result:
//
//	upper_r = min( E_r / (Z_r + sum_i D_ir),  1 / max_i D_ir )
//	lower_r = E_r / ( Z_r + sum_i D_ir * (1 + (E_tot - 1)) )
//
// where D_ir are chain r's queueing demands, Z_r its pure-delay (IS)
// demand, and E_tot the total network population. The upper bound is the
// single-chain asymptotic bound (interaction only slows a chain down);
// the lower bound assumes every arrival finds all other E_tot - 1
// customers queued ahead at every station, which FCFS class-independent
// service makes a worst case.
func AsymptoticBounds(net *qnet.Network) (*Bounds, error) {
	if err := net.Validate(); err != nil {
		return nil, err
	}
	if err := checkSupported(net, false); err != nil {
		return nil, err
	}
	net = net.EffectiveClosed()
	nCh := net.R()
	b := &Bounds{
		Lower: numeric.NewVector(nCh),
		Upper: numeric.NewVector(nCh),
	}
	total := 0
	for r := 0; r < nCh; r++ {
		total += net.Chains[r].Population
	}
	for r := 0; r < nCh; r++ {
		ch := &net.Chains[r]
		e := ch.Population
		if e == 0 {
			continue
		}
		sumD, maxD, z := 0.0, 0.0, 0.0
		for i := 0; i < net.N(); i++ {
			if ch.Visits[i] == 0 {
				continue
			}
			d := ch.Demand(i)
			if net.Stations[i].Kind == qnet.IS {
				z += d
				continue
			}
			sumD += d
			if d > maxD {
				maxD = d
			}
		}
		upper := float64(e) / (z + sumD)
		if maxD > 0 {
			if cap := 1 / maxD; cap < upper {
				upper = cap
			}
		}
		b.Upper[r] = upper
		b.Lower[r] = float64(e) / (z + sumD*float64(total))
	}
	return b, nil
}
