package mva

import (
	"context"
	"errors"
	"testing"

	"repro/internal/numeric"
	"repro/internal/topo"
)

// TestSolversHonourCancelledContext: every iterative solver must abandon a
// solve whose context is already dead, wrapping the context error.
func TestSolversHonourCancelledContext(t *testing.T) {
	n := topo.Canada2Class(20, 20)
	model, _, err := n.ClosedModel(numeric.IntVector{4, 4})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Approximate(model, Options{Method: SigmaHeuristic, Context: ctx}); !errors.Is(err, context.Canceled) {
		t.Fatalf("sigma: want context.Canceled, got %v", err)
	}
	if _, err := Approximate(model, Options{Method: Schweitzer, Context: ctx}); !errors.Is(err, context.Canceled) {
		t.Fatalf("schweitzer: want context.Canceled, got %v", err)
	}
	if _, err := Linearizer(model, Options{Context: ctx}); !errors.Is(err, context.Canceled) {
		t.Fatalf("linearizer: want context.Canceled, got %v", err)
	}
	// A cancelled context is NOT a convergence failure — the resilient
	// chain must not retry it.
	_, err = Approximate(model, Options{Method: SigmaHeuristic, Context: ctx})
	if errors.Is(err, ErrNotConverged) {
		t.Fatalf("cancellation error %v claims non-convergence", err)
	}
}

// TestSolverTagsAndLiveContext: a live context changes nothing, and every
// solver stamps its name into Solution.Solver.
func TestSolverTagsAndLiveContext(t *testing.T) {
	n := topo.Canada2Class(20, 20)
	model, _, err := n.ClosedModel(numeric.IntVector{4, 4})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Approximate(model, Options{Method: SigmaHeuristic})
	if err != nil {
		t.Fatal(err)
	}
	ctxed, err := Approximate(model, Options{Method: SigmaHeuristic, Context: context.Background()})
	if err != nil {
		t.Fatal(err)
	}
	for r := range plain.Throughput {
		if plain.Throughput[r] != ctxed.Throughput[r] {
			t.Fatalf("context changed chain %d throughput: %v vs %v", r, plain.Throughput[r], ctxed.Throughput[r])
		}
	}
	if plain.Solver != "sigma-heuristic" {
		t.Fatalf("solver tag %q", plain.Solver)
	}
}
