package mva

import (
	"math"
	"testing"

	"repro/internal/numeric"
	"repro/internal/qnet"
)

// cyclic2 builds a single-chain 2-station cyclic network.
func cyclic2(pop int, s1, s2 float64) *qnet.Network {
	return &qnet.Network{
		Stations: []qnet.Station{{Name: "a"}, {Name: "b"}},
		Chains: []qnet.Chain{{
			Name: "c", Population: pop,
			Visits:   []float64{1, 1},
			ServTime: []float64{s1, s2},
		}},
	}
}

func TestExactMultichainBalancedCyclic(t *testing.T) {
	// Balanced 2-station cyclic chain: lambda(K) = K/((K+1)s).
	for k := 1; k <= 6; k++ {
		net := cyclic2(k, 0.5, 0.5)
		sol, err := ExactMultichain(net)
		if err != nil {
			t.Fatal(err)
		}
		want := float64(k) / (float64(k+1) * 0.5)
		if math.Abs(sol.Throughput[0]-want) > 1e-12 {
			t.Errorf("K=%d: lambda = %v, want %v", k, sol.Throughput[0], want)
		}
		// Symmetry: equal queue lengths.
		if math.Abs(sol.QueueLen.At(0, 0)-sol.QueueLen.At(1, 0)) > 1e-12 {
			t.Errorf("K=%d: asymmetric queues %v vs %v", k, sol.QueueLen.At(0, 0), sol.QueueLen.At(1, 0))
		}
		if err := littleCheck(net, sol, 1e-9); err != nil {
			t.Errorf("K=%d: %v", k, err)
		}
	}
}

func TestExactMultichainMachineRepairman(t *testing.T) {
	// K customers, IS think time Z, single FCFS server s: the classic
	// machine-repairman closed network. Verify against the direct
	// birth-death solution.
	const (
		k = 4
		z = 2.0
		s = 0.5
	)
	net := &qnet.Network{
		Stations: []qnet.Station{{Name: "think", Kind: qnet.IS}, {Name: "cpu"}},
		Chains: []qnet.Chain{{
			Name: "c", Population: k,
			Visits:   []float64{1, 1},
			ServTime: []float64{z, s},
		}},
	}
	sol, err := ExactMultichain(net)
	if err != nil {
		t.Fatal(err)
	}
	// Birth-death over number j at the CPU: pi(j) ∝ (K!/(K-j)!) (s/z)^j.
	var probs [k + 1]float64
	norm := 0.0
	for j := 0; j <= k; j++ {
		p := 1.0
		for l := 0; l < j; l++ {
			p *= float64(k-l) * s / z
		}
		probs[j] = p
		norm += p
	}
	meanCPU, busy := 0.0, 0.0
	for j := 0; j <= k; j++ {
		probs[j] /= norm
		meanCPU += float64(j) * probs[j]
		if j > 0 {
			busy += probs[j]
		}
	}
	lambda := busy / s
	if math.Abs(sol.Throughput[0]-lambda) > 1e-9 {
		t.Errorf("lambda = %v, want %v", sol.Throughput[0], lambda)
	}
	if math.Abs(sol.QueueLen.At(1, 0)-meanCPU) > 1e-9 {
		t.Errorf("CPU queue = %v, want %v", sol.QueueLen.At(1, 0), meanCPU)
	}
	if err := littleCheck(net, sol, 1e-9); err != nil {
		t.Error(err)
	}
}

func TestExactMultichainTwoChains(t *testing.T) {
	// Two chains sharing a middle station; populations (2, 3).
	net := &qnet.Network{
		Stations: []qnet.Station{{Name: "s0"}, {Name: "shared"}, {Name: "s2"}},
		Chains: []qnet.Chain{
			{Name: "a", Population: 2, Visits: []float64{1, 1, 0}, ServTime: []float64{0.2, 0.1, 0}},
			{Name: "b", Population: 3, Visits: []float64{0, 1, 1}, ServTime: []float64{0, 0.1, 0.3}},
		},
	}
	sol, err := ExactMultichain(net)
	if err != nil {
		t.Fatal(err)
	}
	if err := littleCheck(net, sol, 1e-9); err != nil {
		t.Error(err)
	}
	// Sanity: both chains have positive throughput bounded by the shared
	// station's capacity 1/0.1 = 10.
	total := sol.Throughput[0] + sol.Throughput[1]
	if sol.Throughput[0] <= 0 || sol.Throughput[1] <= 0 || total >= 10 {
		t.Errorf("throughputs = %v", sol.Throughput)
	}
}

func TestExactMultichainZeroPopulationChain(t *testing.T) {
	net := &qnet.Network{
		Stations: []qnet.Station{{Name: "a"}, {Name: "b"}},
		Chains: []qnet.Chain{
			{Name: "c0", Population: 3, Visits: []float64{1, 1}, ServTime: []float64{0.5, 0.5}},
			{Name: "c1", Population: 0, Visits: []float64{1, 1}, ServTime: []float64{0.5, 0.5}},
		},
	}
	sol, err := ExactMultichain(net)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Throughput[1] != 0 {
		t.Errorf("zero-population chain throughput = %v", sol.Throughput[1])
	}
	// Chain 0 behaves as if alone.
	want := 3.0 / (4.0 * 0.5)
	if math.Abs(sol.Throughput[0]-want) > 1e-12 {
		t.Errorf("lambda0 = %v, want %v", sol.Throughput[0], want)
	}
}

func TestExactMultichainRejectsQueueDependent(t *testing.T) {
	net := cyclic2(2, 0.5, 0.5)
	net.Stations[0].Servers = 2
	if _, err := ExactMultichain(net); err == nil {
		t.Fatal("expected error for queue-dependent station")
	}
}

func TestExactMultichainRejectsInvalid(t *testing.T) {
	net := cyclic2(2, 0.5, 0.5)
	net.Chains[0].ServTime[0] = -1
	if _, err := ExactMultichain(net); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestExactMultichainLatticeBudget(t *testing.T) {
	net := &qnet.Network{
		Stations: []qnet.Station{{Name: "a"}, {Name: "b"}},
		Chains:   make([]qnet.Chain, 12),
	}
	for r := range net.Chains {
		net.Chains[r] = qnet.Chain{
			Name: "c", Population: 100,
			Visits:   []float64{1, 1},
			ServTime: []float64{0.5, 0.5},
		}
	}
	if _, err := ExactMultichain(net); err == nil {
		t.Fatal("expected lattice budget error")
	}
}

func TestExactSingleChainMatchesMultichain(t *testing.T) {
	net := cyclic2(5, 0.4, 0.7)
	multi, err := ExactMultichain(net)
	if err != nil {
		t.Fatal(err)
	}
	curve, err := ExactSingleChain(
		numeric.Vector{1, 1}, numeric.Vector{0.4, 0.7}, nil, 5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(curve.Throughput[4]-multi.Throughput[0]) > 1e-12 {
		t.Errorf("single %v vs multi %v", curve.Throughput[4], multi.Throughput[0])
	}
	for i := 0; i < 2; i++ {
		if math.Abs(curve.QueueLen[4][i]-multi.QueueLen.At(i, 0)) > 1e-12 {
			t.Errorf("station %d queue: %v vs %v", i, curve.QueueLen[4][i], multi.QueueLen.At(i, 0))
		}
	}
}

func TestExactSingleChainMonotoneThroughput(t *testing.T) {
	curve, err := ExactSingleChain(
		numeric.Vector{1, 1, 1}, numeric.Vector{0.2, 0.5, 0.3}, nil, 20)
	if err != nil {
		t.Fatal(err)
	}
	bottleneck := 1 / 0.5
	for d := 1; d < 20; d++ {
		if curve.Throughput[d] < curve.Throughput[d-1]-1e-12 {
			t.Errorf("throughput not monotone at %d: %v < %v", d+1, curve.Throughput[d], curve.Throughput[d-1])
		}
		if curve.Throughput[d] > bottleneck+1e-12 {
			t.Errorf("throughput %v exceeds bottleneck %v", curve.Throughput[d], bottleneck)
		}
	}
}

func TestExactSingleChainErrors(t *testing.T) {
	if _, err := ExactSingleChain(numeric.Vector{1}, numeric.Vector{1, 2}, nil, 1); err == nil {
		t.Error("expected dimension error")
	}
	if _, err := ExactSingleChain(numeric.Vector{1}, numeric.Vector{1}, nil, 0); err == nil {
		t.Error("expected population error")
	}
	if _, err := ExactSingleChain(numeric.Vector{0}, numeric.Vector{0}, nil, 1); err == nil {
		t.Error("expected no-visits error")
	}
	if _, err := ExactSingleChain(numeric.Vector{1}, numeric.Vector{0}, nil, 1); err == nil {
		t.Error("expected service-time error")
	}
}

func TestSingleChainCurveAt(t *testing.T) {
	curve, err := ExactSingleChain(numeric.Vector{1, 1}, numeric.Vector{0.5, 0.5}, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	zero := curve.At(0)
	if zero.Sum() != 0 {
		t.Errorf("At(0) = %v", zero)
	}
	if got := curve.At(2); math.Abs(got.Sum()-2) > 1e-12 {
		t.Errorf("At(2) sums to %v", got.Sum())
	}
}

func TestSingleChainLDMatchesFixedRate(t *testing.T) {
	visits := numeric.Vector{1, 1}
	serv := numeric.Vector{0.4, 0.7}
	stations := []qnet.Station{{}, {}}
	ld, err := SingleChainLD(visits, serv, stations, 6)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := ExactSingleChain(visits, serv, nil, 6)
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d < 6; d++ {
		if math.Abs(ld.Throughput[d]-plain.Throughput[d]) > 1e-9 {
			t.Errorf("pop %d: LD lambda %v vs plain %v", d+1, ld.Throughput[d], plain.Throughput[d])
		}
	}
}

func TestSingleChainLDWithIS(t *testing.T) {
	visits := numeric.Vector{1, 1}
	serv := numeric.Vector{2.0, 0.5}
	stations := []qnet.Station{{Kind: qnet.IS}, {}}
	ld, err := SingleChainLD(visits, serv, stations, 4)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := ExactSingleChain(visits, serv, []bool{true, false}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d < 4; d++ {
		if math.Abs(ld.Throughput[d]-plain.Throughput[d]) > 1e-9 {
			t.Errorf("pop %d: %v vs %v", d+1, ld.Throughput[d], plain.Throughput[d])
		}
	}
}

func TestSingleChainLDMultiServer(t *testing.T) {
	// Two-station cycle where station 1 has 2 servers. With K=2 and a
	// pure-delay companion, station 1 behaves like M/M/2 with no queueing:
	// both customers can be in service simultaneously.
	visits := numeric.Vector{1, 1}
	serv := numeric.Vector{1.0, 1.0}
	stations := []qnet.Station{{Kind: qnet.IS}, {Servers: 2}}
	ld, err := SingleChainLD(visits, serv, stations, 2)
	if err != nil {
		t.Fatal(err)
	}
	// With 2 servers and K=2, no customer ever queues: cycle time = 2,
	// lambda = 2/2 = 1.
	if math.Abs(ld.Throughput[1]-1) > 1e-9 {
		t.Errorf("lambda = %v, want 1", ld.Throughput[1])
	}
	// Against a single-server variant, throughput must be higher.
	single, _ := SingleChainLD(visits, serv, []qnet.Station{{Kind: qnet.IS}, {}}, 2)
	if ld.Throughput[1] <= single.Throughput[1] {
		t.Errorf("2-server lambda %v not above 1-server %v", ld.Throughput[1], single.Throughput[1])
	}
}

func TestSingleChainLDErrors(t *testing.T) {
	if _, err := SingleChainLD(numeric.Vector{1}, numeric.Vector{1}, nil, 1); err == nil {
		t.Error("expected dimension error")
	}
	if _, err := SingleChainLD(numeric.Vector{1}, numeric.Vector{1}, []qnet.Station{{}}, 0); err == nil {
		t.Error("expected population error")
	}
}
