package mva

import (
	"errors"
	"fmt"

	"repro/internal/numeric"
	"repro/internal/qnet"
)

// Method selects an approximate MVA variant.
type Method int

const (
	// SigmaHeuristic is the thesis's heuristic (Reiser 1979, eqs.
	// 4.8–4.15): the arrival-instant correction σ_ir is estimated from a
	// single-chain problem for chain r whose service times are inflated
	// by the other chains' utilisation, and only the arriving chain's own
	// queue length is corrected (σ_ij(r-) = 0 for j ≠ r, eq. 4.11).
	SigmaHeuristic Method = iota
	// Schweitzer is the Schweitzer–Bard proportional approximation:
	// N_ij(D - e_r) ≈ N_ij(D) * (D_j - δ_jr)/D_j. Included as the
	// ablation baseline the thesis's heuristic is judged against.
	Schweitzer
)

func (m Method) String() string {
	switch m {
	case SigmaHeuristic:
		return "sigma-heuristic"
	case Schweitzer:
		return "schweitzer"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Initialization selects how mean queue lengths are seeded (STEP 1 of the
// iterative heuristic, eqs. 4.16–4.17).
type Initialization int

const (
	// Balanced spreads each chain's population evenly over its stations
	// (the "totally balanced chain" assumption, eq. 4.17).
	Balanced Initialization = iota
	// Bottleneck places each chain's whole population at its
	// largest-demand station (the "static bottleneck" rule, eq. 4.16).
	Bottleneck
)

func (in Initialization) String() string {
	switch in {
	case Balanced:
		return "balanced"
	case Bottleneck:
		return "bottleneck"
	default:
		return fmt.Sprintf("Initialization(%d)", int(in))
	}
}

// Options configures the approximate solvers. The zero value is the
// thesis's configuration: σ-heuristic, balanced initialisation,
// tolerance 1e-8 on the throughput vector, up to 10000 sweeps.
type Options struct {
	Method Method
	Init   Initialization
	// Tol is the convergence threshold on the Euclidean distance between
	// successive throughput vectors (the APL program's CRIT). <= 0 means
	// 1e-8.
	Tol float64
	// MaxIter bounds fixed-point sweeps. <= 0 means 10000.
	MaxIter int
	// Damping in (0, 1] scales queue-length updates: new = damping*new +
	// (1-damping)*old. 0 means 1 (no damping). The undamped iteration
	// matches the APL program; damping 0.5 rescues rare oscillations.
	Damping float64
}

func (o Options) withDefaults() Options {
	if o.Tol <= 0 {
		o.Tol = 1e-8
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 10000
	}
	if o.Damping <= 0 || o.Damping > 1 {
		o.Damping = 1
	}
	return o
}

// ErrNotConverged is wrapped in the error returned when the fixed point
// fails to converge within MaxIter sweeps.
var ErrNotConverged = errors.New("mva: approximate MVA did not converge")

// Approximate solves the closed multichain network by the selected
// approximate MVA. Chains with zero population contribute nothing and get
// zero throughput.
func Approximate(net *qnet.Network, opts Options) (*Solution, error) {
	if err := net.Validate(); err != nil {
		return nil, err
	}
	if err := checkSupported(net, false); err != nil {
		return nil, err
	}
	net = net.EffectiveClosed()
	opts = opts.withDefaults()
	nSt, nCh := net.N(), net.R()

	// Active chains: population >= 1.
	active := make([]bool, nCh)
	anyActive := false
	for r := 0; r < nCh; r++ {
		if net.Chains[r].Population > 0 {
			active[r] = true
			anyActive = true
		}
	}
	sol := newSolution(nSt, nCh)
	if !anyActive {
		return sol, nil
	}

	// Initial queue lengths (STEP 1).
	q := numeric.NewMatrix(nSt, nCh)
	for r := 0; r < nCh; r++ {
		if !active[r] {
			continue
		}
		ch := &net.Chains[r]
		switch opts.Init {
		case Bottleneck:
			best, at := -1.0, -1
			for i := 0; i < nSt; i++ {
				if ch.Visits[i] > 0 && ch.Demand(i) > best {
					best, at = ch.Demand(i), i
				}
			}
			q.Set(at, r, float64(ch.Population))
		default: // Balanced
			cnt := 0
			for i := 0; i < nSt; i++ {
				if ch.Visits[i] > 0 {
					cnt++
				}
			}
			share := float64(ch.Population) / float64(cnt)
			for i := 0; i < nSt; i++ {
				if ch.Visits[i] > 0 {
					q.Set(i, r, share)
				}
			}
		}
	}
	// Initial throughputs: population over pure service demand (the APL
	// program's initialisation).
	lam := numeric.NewVector(nCh)
	for r := 0; r < nCh; r++ {
		if !active[r] {
			continue
		}
		d := 0.0
		for i := 0; i < nSt; i++ {
			d += net.Chains[r].Demand(i)
		}
		lam[r] = float64(net.Chains[r].Population) / d
	}

	t := numeric.NewMatrix(nSt, nCh)
	sigma := numeric.NewMatrix(nSt, nCh)
	for iter := 1; iter <= opts.MaxIter; iter++ {
		// STEP 2: arrival-instant correction.
		switch opts.Method {
		case Schweitzer:
			for r := 0; r < nCh; r++ {
				if !active[r] {
					continue
				}
				inv := 1 / float64(net.Chains[r].Population)
				for i := 0; i < nSt; i++ {
					sigma.Set(i, r, q.At(i, r)*inv)
				}
			}
		default: // SigmaHeuristic
			if err := sigmaFromSingleChains(net, active, lam, sigma); err != nil {
				return nil, err
			}
		}
		// STEP 3: queue times t_ir = s_ir (1 + sum_j N_ij - sigma_ir).
		for r := 0; r < nCh; r++ {
			if !active[r] {
				continue
			}
			ch := &net.Chains[r]
			for i := 0; i < nSt; i++ {
				if ch.Visits[i] == 0 {
					continue
				}
				if net.Stations[i].Kind == qnet.IS {
					t.Set(i, r, ch.ServTime[i])
					continue
				}
				total := 0.0
				for j := 0; j < nCh; j++ {
					total += q.At(i, j)
				}
				seen := total - sigma.At(i, r)
				if seen < 0 {
					seen = 0
				}
				t.Set(i, r, ch.ServTime[i]*(1+seen))
			}
		}
		// STEP 4: Little for chains.
		prev := lam.Clone()
		for r := 0; r < nCh; r++ {
			if !active[r] {
				continue
			}
			ch := &net.Chains[r]
			denom := 0.0
			for i := 0; i < nSt; i++ {
				if ch.Visits[i] > 0 {
					denom += ch.Visits[i] * t.At(i, r)
				}
			}
			lam[r] = float64(ch.Population) / denom
		}
		// STEP 5: Little for queues, with optional damping.
		for r := 0; r < nCh; r++ {
			if !active[r] {
				continue
			}
			ch := &net.Chains[r]
			for i := 0; i < nSt; i++ {
				if ch.Visits[i] == 0 {
					continue
				}
				next := lam[r] * ch.Visits[i] * t.At(i, r)
				q.Set(i, r, opts.Damping*next+(1-opts.Damping)*q.At(i, r))
			}
		}
		// STEP 6: stopping condition.
		if lam.L2Diff(prev) < opts.Tol {
			sol.Iterations = iter
			copy(sol.Throughput, lam)
			for i := 0; i < nSt; i++ {
				for r := 0; r < nCh; r++ {
					sol.QueueTime.Set(i, r, t.At(i, r))
					sol.QueueLen.Set(i, r, q.At(i, r))
				}
			}
			return sol, nil
		}
	}
	return nil, fmt.Errorf("%w after %d sweeps (method %v, tol %g)",
		ErrNotConverged, opts.MaxIter, opts.Method, opts.Tol)
}

// sigmaFromSingleChains fills sigma.At(i, r) with the thesis's heuristic
// estimate: isolate chain r into a single-chain network whose service
// times are inflated by the other chains' utilisation at each station,
// s'_ri = s_ri / (1 - rho_{-r,i}), run exact single-chain MVA up to E_r,
// and take σ_ir = N_i(E_r) - N_i(E_r - 1) (eq. 4.12). For other chains
// σ_ij(r-) is taken as zero (eq. 4.11), which STEP 3 realises by
// subtracting sigma only for the arriving chain.
func sigmaFromSingleChains(net *qnet.Network, active []bool, lam numeric.Vector, sigma *numeric.Matrix) error {
	nSt, nCh := net.N(), net.R()
	const maxRho = 0.999 // clamp: transient iterates can overshoot capacity
	visits := numeric.NewVector(nSt)
	servInf := numeric.NewVector(nSt)
	isStation := make([]bool, nSt)
	for i := 0; i < nSt; i++ {
		isStation[i] = net.Stations[i].Kind == qnet.IS
	}
	for r := 0; r < nCh; r++ {
		if !active[r] {
			continue
		}
		ch := &net.Chains[r]
		for i := 0; i < nSt; i++ {
			visits[i] = ch.Visits[i]
			servInf[i] = 0
			if ch.Visits[i] == 0 {
				continue
			}
			// IS stations have a server per customer: other chains
			// occupy them without delaying anyone, so no inflation.
			if isStation[i] {
				servInf[i] = ch.ServTime[i]
				continue
			}
			other := 0.0
			for j := 0; j < nCh; j++ {
				if j != r {
					other += lam[j] * net.Chains[j].Demand(i)
				}
			}
			if other > maxRho {
				other = maxRho
			}
			servInf[i] = ch.ServTime[i] / (1 - other)
		}
		pop := ch.Population
		curve, err := ExactSingleChain(visits, servInf, isStation, pop)
		if err != nil {
			return fmt.Errorf("mva: sigma sub-problem for chain %d: %w", r, err)
		}
		nAt := curve.At(pop)
		nPrev := curve.At(pop - 1)
		for i := 0; i < nSt; i++ {
			if ch.Visits[i] > 0 {
				s := nAt[i] - nPrev[i]
				if s < 0 {
					s = 0
				} else if s > 1 {
					s = 1
				}
				sigma.Set(i, r, s)
			} else {
				sigma.Set(i, r, 0)
			}
		}
	}
	return nil
}
