package mva

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/numeric"
	"repro/internal/qnet"
)

// Method selects an approximate MVA variant.
type Method int

const (
	// SigmaHeuristic is the thesis's heuristic (Reiser 1979, eqs.
	// 4.8–4.15): the arrival-instant correction σ_ir is estimated from a
	// single-chain problem for chain r whose service times are inflated
	// by the other chains' utilisation, and only the arriving chain's own
	// queue length is corrected (σ_ij(r-) = 0 for j ≠ r, eq. 4.11).
	SigmaHeuristic Method = iota
	// Schweitzer is the Schweitzer–Bard proportional approximation:
	// N_ij(D - e_r) ≈ N_ij(D) * (D_j - δ_jr)/D_j. Included as the
	// ablation baseline the thesis's heuristic is judged against.
	Schweitzer
)

func (m Method) String() string {
	switch m {
	case SigmaHeuristic:
		return "sigma-heuristic"
	case Schweitzer:
		return "schweitzer"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Initialization selects how mean queue lengths are seeded (STEP 1 of the
// iterative heuristic, eqs. 4.16–4.17).
type Initialization int

const (
	// Balanced spreads each chain's population evenly over its stations
	// (the "totally balanced chain" assumption, eq. 4.17).
	Balanced Initialization = iota
	// Bottleneck places each chain's whole population at its
	// largest-demand station (the "static bottleneck" rule, eq. 4.16).
	Bottleneck
)

func (in Initialization) String() string {
	switch in {
	case Balanced:
		return "balanced"
	case Bottleneck:
		return "bottleneck"
	default:
		return fmt.Sprintf("Initialization(%d)", int(in))
	}
}

// Options configures the approximate solvers. The zero value is the
// thesis's configuration: σ-heuristic, balanced initialisation,
// tolerance 1e-8 on the throughput vector, up to 10000 sweeps.
type Options struct {
	Method Method
	Init   Initialization
	// Tol is the convergence threshold on the Euclidean distance between
	// successive throughput vectors (the APL program's CRIT). <= 0 means
	// 1e-8.
	Tol float64
	// MaxIter bounds fixed-point sweeps. <= 0 means 10000.
	MaxIter int
	// Damping in (0, 1] scales queue-length updates: new = damping*new +
	// (1-damping)*old. 0 means 1 (no damping). The undamped iteration
	// matches the APL program; damping 0.5 rescues rare oscillations.
	Damping float64
	// Warm, when non-nil, seeds STEP 1 from a previous solution instead of
	// the Init rule: queue-length columns are rescaled to the current
	// populations and throughputs carried over. Chains whose warm column
	// is degenerate (or a seed whose dimensions do not match) fall back to
	// the cold initialisation. The fixed point reached agrees with the
	// cold one to within Tol, not bitwise. Only queue-length mass at the
	// chain's visited stations is used; WarmFromSolution seeds carry no
	// mass elsewhere.
	Warm *WarmStart
	// Workspace, when non-nil, supplies preallocated buffers so repeated
	// solves allocate nothing in steady state. The returned Solution then
	// aliases workspace storage and is valid only until the next call with
	// the same workspace; clone (or WarmFromSolution) to retain. Results
	// are bit-identical with and without a workspace. Not safe for
	// concurrent use.
	Workspace *Workspace
	// Sparse, when non-nil and compiled from this network's backing
	// arrays (qnet.Sparse.Matches), supplies the compiled visit lists the
	// sweeps iterate, skipping the per-call compilation. core.Engine
	// compiles once at construction and passes it for every candidate.
	// When nil or mismatched, the solver compiles (and, workspace-backed,
	// caches) its own; results are identical either way.
	Sparse *qnet.Sparse
	// Prevalidated promises the network is already validated, supported,
	// and free of open load (EffectiveClosed applied), skipping those
	// per-call passes. core.Engine validates and reduces its model once at
	// construction and sets this for every candidate evaluation.
	Prevalidated bool
	// Context, when non-nil, is polled between fixed-point sweeps so a
	// stuck or slow iteration can be abandoned from outside: the solver
	// returns an error wrapping ctx.Err(). nil means never cancelled.
	Context context.Context
	// SweepBudget, when non-nil, is polled between sweeps on the same
	// cadence as Context; returning false abandons the fixed point with an
	// error wrapping ErrNotConverged — unlike a Context cancellation, which
	// is terminal. This is the hook core's per-candidate watchdog uses: an
	// overlong iteration is reported as a convergence failure, so the
	// resilient fallback chain can rescue the candidate instead of the
	// whole search dying with it. The sweep count at the poll is passed for
	// diagnostics. nil means unbounded (MaxIter still applies).
	SweepBudget func(sweeps int) bool
}

// sweepGate polls ctx and the sweep budget on the first sweep (so a solve
// never starts against an already-dead context or an exhausted budget) and
// every ctxPollInterval sweeps after that — a per-sweep check would put a
// branch and an atomic load in the hot loop for no benefit; sweeps are
// microseconds.
const ctxPollInterval = 128

func sweepGate(opts *Options, iter int) error {
	if iter != 1 && iter%ctxPollInterval != 0 {
		return nil
	}
	if ctx := opts.Context; ctx != nil {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("mva: solve cancelled after %d sweeps: %w", iter, err)
		}
	}
	if opts.SweepBudget != nil && !opts.SweepBudget(iter) {
		return fmt.Errorf("%w: sweep budget exhausted after %d sweeps (method %v)",
			ErrNotConverged, iter, opts.Method)
	}
	return nil
}

func (o Options) withDefaults() Options {
	if o.Tol <= 0 {
		o.Tol = 1e-8
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 10000
	}
	if o.Damping <= 0 || o.Damping > 1 {
		o.Damping = 1
	}
	return o
}

// ErrNotConverged is wrapped in the error returned when the fixed point
// fails to converge within MaxIter sweeps.
var ErrNotConverged = errors.New("mva: approximate MVA did not converge")

// Approximate solves the closed multichain network by the selected
// approximate MVA. Chains with zero population contribute nothing and get
// zero throughput.
//
// The fixed-point sweeps iterate the network's compiled sparse visit lists
// (qnet.Sparse), so a sweep costs O(total route length) instead of
// O(stations × chains); on the window flow-control models, where each
// chain visits only its route's few stations, that is the difference
// between per-candidate cost scaling with the network and scaling with the
// routes. The sparse iteration visits exactly the dense loops' non-zero
// terms in the dense loops' order, so results are bit-identical to a dense
// evaluation.
func Approximate(net *qnet.Network, opts Options) (*Solution, error) {
	opts = opts.withDefaults()
	if !opts.Prevalidated {
		if err := net.Validate(); err != nil {
			return nil, err
		}
		if err := checkSupported(net, false); err != nil {
			return nil, err
		}
		net = net.EffectiveClosed()
	}
	nSt, nCh := net.N(), net.R()

	ws := opts.Workspace
	private := ws == nil
	if private {
		ws = NewWorkspace()
	}
	ws.ensure(nSt, nCh)
	sp := ws.compiled(net, opts.Sparse)
	ws.reset(sp)

	// Active chains: population >= 1.
	active := ws.active
	anyActive := false
	for r := 0; r < nCh; r++ {
		active[r] = net.Chains[r].Population > 0
		anyActive = anyActive || active[r]
	}
	sol := ws.sol
	if private {
		sol = newSolution(nSt, nCh)
	}
	if !anyActive {
		return sol, nil
	}

	// STEP 1: initial queue lengths and throughputs — from the warm seed
	// where one is supplied and usable, the Init rule otherwise.
	q, lam := ws.q, ws.lam
	warm := opts.Warm
	if !warm.matches(nSt, nCh) {
		warm = nil
	}
	for r := 0; r < nCh; r++ {
		if !active[r] {
			continue
		}
		ch := &net.Chains[r]
		if warm != nil && seedChainFromWarm(warm, sp, r, ch.Population, q, lam) {
			continue
		}
		if err := coldSeedChain(ch, sp, r, opts.Init, q, lam); err != nil {
			return nil, err
		}
	}

	t, sigma := ws.t, ws.sigma
	for iter := 1; iter <= opts.MaxIter; iter++ {
		if err := sweepGate(&opts, iter); err != nil {
			return nil, err
		}
		// STEP 2: arrival-instant correction.
		switch opts.Method {
		case Schweitzer:
			for r := 0; r < nCh; r++ {
				if !active[r] {
					continue
				}
				inv := 1 / float64(net.Chains[r].Population)
				for e := sp.ChainPtr[r]; e < sp.ChainPtr[r+1]; e++ {
					i := int(sp.EntStation[e])
					sigma.Set(i, r, q.At(i, r)*inv)
				}
			}
		default: // SigmaHeuristic
			if err := sigmaFromSingleChains(ws, net, sp, active, lam, sigma); err != nil {
				return nil, err
			}
		}
		// STEP 3: queue times t_ir = s_ir (1 + sum_j N_ij - sigma_ir).
		// The per-station totals do not change within the step, so they
		// are accumulated once per sweep from the station-major transpose
		// (chains ascending — the dense summation order) instead of per
		// (station, chain) pair.
		totQ := ws.totQ
		for i := 0; i < nSt; i++ {
			if sp.IsIS[i] {
				continue
			}
			total := 0.0
			for m := sp.StatPtr[i]; m < sp.StatPtr[i+1]; m++ {
				total += q.At(i, int(sp.StatChain[m]))
			}
			totQ[i] = total
		}
		for r := 0; r < nCh; r++ {
			if !active[r] {
				continue
			}
			for e := sp.ChainPtr[r]; e < sp.ChainPtr[r+1]; e++ {
				i := int(sp.EntStation[e])
				if sp.EntIS[e] {
					t.Set(i, r, sp.EntServ[e])
					continue
				}
				seen := totQ[i] - sigma.At(i, r)
				if seen < 0 {
					seen = 0
				}
				t.Set(i, r, sp.EntServ[e]*(1+seen))
			}
		}
		// STEP 4: Little for chains.
		prev := ws.prev
		copy(prev, lam)
		for r := 0; r < nCh; r++ {
			if !active[r] {
				continue
			}
			denom := 0.0
			for e := sp.ChainPtr[r]; e < sp.ChainPtr[r+1]; e++ {
				denom += sp.EntVisit[e] * t.At(int(sp.EntStation[e]), r)
			}
			lam[r] = float64(net.Chains[r].Population) / denom
		}
		// STEP 5: Little for queues, with optional damping.
		for r := 0; r < nCh; r++ {
			if !active[r] {
				continue
			}
			for e := sp.ChainPtr[r]; e < sp.ChainPtr[r+1]; e++ {
				i := int(sp.EntStation[e])
				next := lam[r] * sp.EntVisit[e] * t.At(i, r)
				q.Set(i, r, opts.Damping*next+(1-opts.Damping)*q.At(i, r))
			}
		}
		// STEP 6: stopping condition.
		if lam.L2Diff(prev) < opts.Tol {
			sol.Iterations = iter
			sol.Solver = opts.Method.String()
			copy(sol.Throughput, lam)
			for r := 0; r < nCh; r++ {
				for e := sp.ChainPtr[r]; e < sp.ChainPtr[r+1]; e++ {
					i := int(sp.EntStation[e])
					sol.QueueTime.Set(i, r, t.At(i, r))
					sol.QueueLen.Set(i, r, q.At(i, r))
				}
			}
			return sol, nil
		}
	}
	return nil, fmt.Errorf("%w after %d sweeps (method %v, tol %g)",
		ErrNotConverged, opts.MaxIter, opts.Method, opts.Tol)
}

// coldSeedChain applies the Init rule (eqs. 4.16–4.17) to chain r and
// seeds its throughput with population over pure service demand (the APL
// program's initialisation). A chain with no positive-demand station
// cannot be placed — the Bottleneck rule used to index q with -1 and
// panic — so both rules reject it with a validation error.
func coldSeedChain(ch *qnet.Chain, sp *qnet.Sparse, r int, init Initialization, q *numeric.Matrix, lam numeric.Vector) error {
	lo, hi := sp.ChainPtr[r], sp.ChainPtr[r+1]
	switch init {
	case Bottleneck:
		best, at := -1.0, -1
		for e := lo; e < hi; e++ {
			if sp.EntDemand[e] > best {
				best, at = sp.EntDemand[e], int(sp.EntStation[e])
			}
		}
		if at < 0 {
			return fmt.Errorf("mva: chain %d (%s) has no station with positive visits and demand; cannot initialise", r, ch.Name)
		}
		q.Set(at, r, float64(ch.Population))
	default: // Balanced
		if hi == lo {
			return fmt.Errorf("mva: chain %d (%s) has no station with positive visits and demand; cannot initialise", r, ch.Name)
		}
		share := float64(ch.Population) / float64(hi-lo)
		for e := lo; e < hi; e++ {
			q.Set(int(sp.EntStation[e]), r, share)
		}
	}
	lam[r] = float64(ch.Population) / sp.DemandSum[r]
	return nil
}

// sigmaFromSingleChains fills sigma.At(i, r) with the thesis's heuristic
// estimate: isolate chain r into a single-chain network whose service
// times are inflated by the other chains' utilisation at each station,
// s'_ri = s_ri / (1 - rho_{-r,i}), run exact single-chain MVA up to E_r,
// and take σ_ir = N_i(E_r) - N_i(E_r - 1) (eq. 4.12). For other chains
// σ_ij(r-) is taken as zero (eq. 4.11), which STEP 3 realises by
// subtracting sigma only for the arriving chain.
//
// The other chains' utilisation at a station is read off the station-major
// transpose (only the chains actually visiting the station contribute, via
// the precompiled demand array), and the recursion runs through the
// workspace's per-chain incremental curve cache: sweeps whose inflated
// service times are unchanged (always true for single-chain networks,
// whose sub-problem has no inflation) reuse the cached populations instead
// of recomputing from 1.
func sigmaFromSingleChains(ws *Workspace, net *qnet.Network, sp *qnet.Sparse, active []bool, lam numeric.Vector, sigma *numeric.Matrix) error {
	nCh := sp.NCh
	const maxRho = 0.999 // clamp: transient iterates can overshoot capacity
	for r := 0; r < nCh; r++ {
		if !active[r] {
			continue
		}
		lo, hi := sp.ChainPtr[r], sp.ChainPtr[r+1]
		deg := int(hi - lo)
		if deg == 0 {
			return fmt.Errorf("mva: sigma sub-problem for chain %d: chain visits no station", r)
		}
		servInf := ws.servInf[:deg]
		for k, e := 0, lo; e < hi; k, e = k+1, e+1 {
			// IS stations have a server per customer: other chains
			// occupy them without delaying anyone, so no inflation.
			if sp.EntIS[e] {
				servInf[k] = sp.EntServ[e]
				continue
			}
			i := sp.EntStation[e]
			other := 0.0
			for m := sp.StatPtr[i]; m < sp.StatPtr[i+1]; m++ {
				if j := int(sp.StatChain[m]); j != r {
					other += lam[j] * sp.EntDemand[sp.StatEntry[m]]
				}
			}
			if other > maxRho {
				other = maxRho
			}
			servInf[k] = sp.EntServ[e] / (1 - other)
		}
		pop := net.Chains[r].Population
		nAt, nPrev := ws.curveUpTo(r, sp, servInf, pop)
		for k, e := 0, lo; e < hi; k, e = k+1, e+1 {
			s := nAt[k] - nPrev[k]
			if s < 0 {
				s = 0
			} else if s > 1 {
				s = 1
			}
			sigma.Set(int(sp.EntStation[e]), r, s)
		}
	}
	return nil
}
