package core

import (
	"encoding/json"
	"testing"

	"repro/internal/pattern"
	"repro/internal/topo"
)

// FuzzParseScenarios checks the scenario-set parser never panics and that
// every set it accepts applies cleanly to the network it was resolved
// against.
func FuzzParseScenarios(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"scenarios": []}`))
	f.Add([]byte(`{"scenarios": [{"name": "nominal"}]}`))
	f.Add([]byte(`{"scenarios": [{"name": "cut", "capacity_scale": {"WT": 0.5}, "weight": 2}]}`))
	f.Add([]byte(`{"scenarios": [{"rate_scale": {"class1": 1.5}}]}`))
	f.Add([]byte(`{"scenarios": [{"capacity_scale": {"WT": 0}}]}`))
	f.Add([]byte(`{"scenarios": [{"capacity_scale": {"nope": 0.5}}]}`))
	f.Add([]byte(`{"scenarios": [{"weight": -1}]}`))
	n := topo.Canada2Class(20, 20)
	f.Fuzz(func(t *testing.T, data []byte) {
		scenarios, err := ParseScenarios(data, n)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		if len(scenarios) == 0 {
			t.Fatal("ParseScenarios accepted an empty set")
		}
		for _, sc := range scenarios {
			if sc.Name == "" {
				t.Fatal("accepted scenario without a name")
			}
			if _, err := sc.Apply(n); err != nil {
				t.Fatalf("accepted scenario %q does not apply: %v", sc.Name, err)
			}
		}
	})
}

// FuzzParseCheckpoint checks the checkpoint loader never panics and that
// every checkpoint it accepts survives a marshal/parse round trip.
func FuzzParseCheckpoint(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{"version": 1, "kind": "pattern-search", "dim": 2, "start": [1, 1], "best": [2, 3], "best_value": "-Inf", "step": [1, 1], "visited": {"2,3": 5.5}}`))
	f.Add([]byte(`{"version": 2, "kind": "pattern-search", "dim": 2, "start": [1, 1], "best": [1, 1], "step": [1, 1]}`))
	f.Add([]byte(`{"version": 1, "kind": "pattern-search", "dim": 2, "start": [1], "best": [1, 1], "step": [1, 1]}`))
	f.Add([]byte(`{"version": 1, "kind": "pattern-search", "dim": 1, "start": [1], "best": [1], "step": [1], "visited": {"bogus key": 1}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		ck, err := pattern.ParseCheckpoint(data)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		out, err := json.Marshal(ck)
		if err != nil {
			t.Fatalf("accepted checkpoint does not marshal: %v", err)
		}
		back, err := pattern.ParseCheckpoint(out)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if len(back.Visited) != len(ck.Visited) || back.Dim != ck.Dim {
			t.Fatalf("round trip changed checkpoint: %d/%d visited, dim %d/%d",
				len(back.Visited), len(ck.Visited), back.Dim, ck.Dim)
		}
	})
}
