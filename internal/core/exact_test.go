package core

import (
	"math"
	"testing"

	"repro/internal/mva"
	"repro/internal/numeric"
	"repro/internal/topo"
)

// TestExactEngineMatchesDirect: the convolution oracle must reproduce the
// exact MVA recursion's metrics at every candidate of a small box, and the
// shared lattice must actually be serving (one engine, reused across
// candidates).
func TestExactEngineMatchesDirect(t *testing.T) {
	n := topo.Canada2Class(20, 20)
	direct, err := NewEngine(n, Options{Evaluator: EvalExactMVA})
	if err != nil {
		t.Fatal(err)
	}
	engined, err := NewEngine(n, Options{Evaluator: EvalExactMVA, ExactEngine: true})
	if err != nil {
		t.Fatal(err)
	}
	if engined.conv == nil {
		t.Fatal("ExactEngine option did not attach an oracle")
	}
	for w1 := 1; w1 <= 5; w1++ {
		for w2 := 1; w2 <= 5; w2++ {
			w := numeric.IntVector{w1, w2}
			md, err := direct.Evaluate(w)
			if err != nil {
				t.Fatal(err)
			}
			me, err := engined.Evaluate(w)
			if err != nil {
				t.Fatal(err)
			}
			if rel := math.Abs(me.Power-md.Power) / md.Power; rel > 1e-9 {
				t.Errorf("windows %v: engine power %v vs exact MVA %v (rel %v)", w, me.Power, md.Power, rel)
			}
			if rel := math.Abs(me.Delay-md.Delay) / md.Delay; rel > 1e-9 {
				t.Errorf("windows %v: engine delay %v vs exact MVA %v", w, me.Delay, md.Delay)
			}
		}
	}
	engined.conv.mu.Lock()
	built := engined.conv.eng != nil
	engined.conv.mu.Unlock()
	if !built {
		t.Error("oracle never built its shared lattice")
	}
}

// TestExactEngineDimension: a full WINDIM run with the engine lands on the
// same windows as the per-candidate exact recursion, for both searches.
func TestExactEngineDimension(t *testing.T) {
	n := topo.Canada2Class(25, 25)
	for _, search := range []SearchKind{PatternSearch, ExhaustiveSearch} {
		base := Options{Evaluator: EvalExactMVA, Search: search, MaxWindow: 6}
		withEngine := base
		withEngine.ExactEngine = true
		rd, err := Dimension(n, base)
		if err != nil {
			t.Fatalf("%v direct: %v", search, err)
		}
		re, err := Dimension(n, withEngine)
		if err != nil {
			t.Fatalf("%v engine: %v", search, err)
		}
		if !rd.Windows.Equal(re.Windows) {
			t.Errorf("%v: engine windows %v vs direct %v", search, re.Windows, rd.Windows)
		}
		if rel := math.Abs(re.Metrics.Power-rd.Metrics.Power) / rd.Metrics.Power; rel > 1e-9 {
			t.Errorf("%v: engine power %v vs direct %v", search, re.Metrics.Power, rd.Metrics.Power)
		}
	}
}

// TestExactEngineParallelDeterministic: the engine-backed exhaustive and
// pattern searches must return the same result at any worker count (the
// oracle's answers are candidate-local, never box-history-dependent).
func TestExactEngineParallelDeterministic(t *testing.T) {
	n := topo.Canada2Class(25, 25)
	var got []*Result
	for _, workers := range []int{1, 4} {
		res, err := Dimension(n, Options{
			Evaluator: EvalExactMVA, Search: PatternSearch,
			MaxWindow: 8, ExactEngine: true, Workers: workers,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got = append(got, res)
	}
	if !got[0].Windows.Equal(got[1].Windows) {
		t.Errorf("serial windows %v vs parallel %v", got[0].Windows, got[1].Windows)
	}
	if got[0].Search.BestValue != got[1].Search.BestValue {
		t.Errorf("serial best value %v vs parallel %v", got[0].Search.BestValue, got[1].Search.BestValue)
	}
}

// TestExactEngineFallbackTier: with every iterative tier forced to fail,
// the exact rescue must come from the convolution oracle, tagged as such,
// and agree with the plain exact rescue.
func TestExactEngineFallbackTier(t *testing.T) {
	n := topo.Canada2Class(20, 20)
	w := numeric.IntVector{4, 4}
	eng, err := NewEngine(n, Options{
		Evaluator:   EvalSchweitzerMVA,
		MVA:         mva.Options{MaxIter: 1},
		ExactEngine: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, tier, err := eng.EvaluateWithTier(w)
	if err != nil {
		t.Fatalf("fallback chain failed: %v", err)
	}
	if tier != TierExact {
		t.Fatalf("answered by tier %v, want %v", tier, TierExact)
	}
	eng.conv.mu.Lock()
	built := eng.conv.eng != nil
	eng.conv.mu.Unlock()
	if !built {
		t.Fatal("exact rescue did not come from the convolution oracle")
	}
	exact, err := Evaluate(n, w, Options{Evaluator: EvalExactMVA})
	if err != nil {
		t.Fatal(err)
	}
	if diff := math.Abs(m.Power - exact.Power); diff > 1e-9 {
		t.Fatalf("oracle-rescued power %v vs exact %v", m.Power, exact.Power)
	}
	// The solver tag distinguishes the convolution rescue from the MVA one.
	st := eng.pool.Get().(*evalState)
	defer eng.pool.Put(st)
	sol, tier2, err := eng.solve(st, w)
	if err != nil || tier2 != TierExact {
		t.Fatalf("re-solve: tier %v err %v", tier2, err)
	}
	if sol.Solver != "convolution+fallback" {
		t.Fatalf("solver tag %q, want convolution+fallback", sol.Solver)
	}
}

// TestExactEngineRobustSharedCache: DimensionRobust scenario engines with
// structurally identical perturbed models share one oracle, and the
// engine-backed robust run matches the plain one.
func TestExactEngineRobustSharedCache(t *testing.T) {
	n := topo.Canada2Class(20, 20)
	scenarios := []Scenario{
		{Name: "nominal", Weight: 2},
		{Name: "twin", Weight: 1}, // identical perturbation: same structure
	}
	base := Options{Evaluator: EvalExactMVA, MaxWindow: 6}
	rd, err := DimensionRobust(n, scenarios, RobustMinimax, base)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewOracleCache(0)
	withEngine := base
	withEngine.ExactEngine = true
	withEngine.Oracles = cache
	re, err := DimensionRobust(n, scenarios, RobustMinimax, withEngine)
	if err != nil {
		t.Fatal(err)
	}
	if !rd.Windows.Equal(re.Windows) {
		t.Errorf("engine windows %v vs direct %v", re.Windows, rd.Windows)
	}
	if rel := math.Abs(re.WorstPower-rd.WorstPower) / rd.WorstPower; rel > 1e-9 {
		t.Errorf("engine worst power %v vs direct %v", re.WorstPower, rd.WorstPower)
	}
	cache.mu.Lock()
	oracles := len(cache.m)
	cache.mu.Unlock()
	if oracles != 1 {
		t.Errorf("structurally identical scenarios built %d oracles, want 1 shared", oracles)
	}
}

// TestExactEngineOversizedCandidate: a candidate beyond the oracle's
// lattice cap must still be answered (by the exact recursion), identically
// to a run without the engine.
func TestExactEngineOversizedCandidate(t *testing.T) {
	n := topo.Canada4Class(10, 10, 10, 10)
	// 41^4 > exactOracleCap: the oracle declines, ExactMultichain answers.
	w := numeric.IntVector{40, 40, 40, 40}
	if _, err := numeric.LatticeSize(w, exactOracleCap); err == nil {
		t.Fatalf("test vector %v fits the oracle cap; pick a larger one", w)
	}
	engined, err := NewEngine(n, Options{Evaluator: EvalExactMVA, ExactEngine: true})
	if err != nil {
		t.Fatal(err)
	}
	me, err := engined.Evaluate(w)
	if err != nil {
		t.Fatal(err)
	}
	md, err := Evaluate(n, w, Options{Evaluator: EvalExactMVA})
	if err != nil {
		t.Fatal(err)
	}
	if me.Power != md.Power {
		t.Errorf("oversized candidate: engine-run power %v vs direct %v", me.Power, md.Power)
	}
}
