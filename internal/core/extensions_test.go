package core

import (
	"math"
	"testing"

	"repro/internal/numeric"
	"repro/internal/sim"
	"repro/internal/topo"
)

func TestDimensionIsarithmic(t *testing.T) {
	n := topo.Canada2Class(40, 40)
	res, err := DimensionIsarithmic(n, sim.Config{
		Duration: 600, Warmup: 60, Seed: 9,
	}, 30, ExtOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Permits < 1 || res.Permits > 30 {
		t.Fatalf("permits = %d", res.Permits)
	}
	if res.Power <= 0 {
		t.Fatalf("power = %v", res.Power)
	}
	if res.Evaluations < 3 {
		t.Errorf("suspiciously few evaluations: %d", res.Evaluations)
	}
	// The dimensioned pool beats both a starved pool (1 permit) and a
	// floody one (30 permits) under the same seed.
	powerAt := func(p int) float64 {
		out, err := sim.Run(n, sim.Config{Duration: 600, Warmup: 60, Seed: 9, GlobalPermits: p})
		if err != nil {
			t.Fatal(err)
		}
		return out.Power
	}
	if res.Power < powerAt(1)-1e-9 {
		t.Errorf("dimensioned power %v below 1-permit power %v", res.Power, powerAt(1))
	}
	if res.Power < powerAt(30)-1e-9 {
		t.Errorf("dimensioned power %v below 30-permit power %v", res.Power, powerAt(30))
	}
}

// TestDimensionIsarithmicReplications: with Reps > 1 the search runs on
// replication means, surfaces the completed-replication count and a CI,
// and is deterministic at any worker count.
func TestDimensionIsarithmicReplications(t *testing.T) {
	n := topo.Canada2Class(40, 40)
	cfg := sim.Config{Duration: 300, Warmup: 30, Seed: 9}
	serial, err := DimensionIsarithmic(n, cfg, 30, ExtOptions{Reps: 3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := DimensionIsarithmic(n, cfg, 30, ExtOptions{Reps: 3, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if serial.Reps != 3 || parallel.Reps != 3 {
		t.Errorf("replication counts %d / %d, want 3", serial.Reps, parallel.Reps)
	}
	if serial.PowerCI95 <= 0 {
		t.Errorf("missing replication CI: %v", serial.PowerCI95)
	}
	if serial.Permits != parallel.Permits || serial.Power != parallel.Power || serial.PowerCI95 != parallel.PowerCI95 {
		t.Errorf("worker count changed the result: (%d, %v, %v) vs (%d, %v, %v)",
			serial.Permits, serial.Power, serial.PowerCI95,
			parallel.Permits, parallel.Power, parallel.PowerCI95)
	}
}

// TestSizeBuffersReplications: batched sizing is worker-count independent
// and never shrinks a limit below the single-run estimate by more than
// the histogram tail the extra replications resolve.
func TestSizeBuffersReplications(t *testing.T) {
	n := topo.Canada2Class(20, 20)
	cfg := sim.Config{Duration: 1000, Warmup: 100, Seed: 4}
	w := numeric.IntVector{4, 4}
	serial, err := SizeBuffers(n, w, 0.01, cfg, ExtOptions{Reps: 4, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := SizeBuffers(n, w, 0.01, cfg, ExtOptions{Reps: 4, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("worker count changed sizes: %v vs %v", serial, parallel)
		}
		if serial[i] < 0 || serial[i] > 8 {
			t.Errorf("node %d sized %d; window cap is 8", i, serial[i])
		}
	}
}

func TestDimensionIsarithmicErrors(t *testing.T) {
	n := topo.Canada2Class(20, 20)
	if _, err := DimensionIsarithmic(n, sim.Config{Duration: 10}, 0, ExtOptions{}); err == nil {
		t.Error("expected maxPermits error")
	}
	bad := topo.Canada2Class(20, 20)
	bad.Channels[0].Capacity = -1
	if _, err := DimensionIsarithmic(bad, sim.Config{Duration: 10}, 5, ExtOptions{}); err == nil {
		t.Error("expected validation error")
	}
	// Broken sim config surfaces as an error from the objective.
	if _, err := DimensionIsarithmic(n, sim.Config{}, 5, ExtOptions{}); err == nil {
		t.Error("expected sim config error")
	}
}

func TestSizeBuffers(t *testing.T) {
	n := topo.Canada2Class(20, 20)
	sizes, err := SizeBuffers(n, numeric.IntVector{4, 4}, 0.01, sim.Config{
		Duration: 2000, Warmup: 200, Seed: 4,
	}, ExtOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sizes) != 6 {
		t.Fatalf("got %d node sizes", len(sizes))
	}
	// With windows (4,4), no node can ever store more than 8 messages.
	for i, k := range sizes {
		if k < 0 || k > 8 {
			t.Errorf("node %d sized %d; window cap is 8", i, k)
		}
	}
	// The sized buffers admit ~99% of time: simulate with them and check
	// throughput barely degrades versus infinite buffers.
	free, err := sim.Run(n, sim.Config{Windows: numeric.IntVector{4, 4}, Duration: 2000, Warmup: 200, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	limited, err := sim.Run(n, sim.Config{
		Windows: numeric.IntVector{4, 4}, Duration: 2000, Warmup: 200, Seed: 4,
		NodeBuffers: sizes,
	})
	if err != nil {
		t.Fatal(err)
	}
	if limited.Throughput < 0.97*free.Throughput {
		t.Errorf("sized buffers lose throughput: %v vs %v", limited.Throughput, free.Throughput)
	}
	if _, err := SizeBuffers(n, nil, 0, sim.Config{Duration: 10}, ExtOptions{}); err == nil {
		t.Error("expected eps error")
	}
}

func TestChannelQueueQuantiles(t *testing.T) {
	n := topo.Canada2Class(20, 20)
	q, err := ChannelQueueQuantiles(n, numeric.IntVector{3, 3}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(q) != 7 {
		t.Fatalf("got %d channel quantiles", len(q))
	}
	// Quantiles are bounded by the total population 6 and are larger for
	// the busier 25 kb/s channels than for a lightly-used 50 kb/s one.
	for l, k := range q {
		if k < 0 || k > 6 {
			t.Errorf("channel %d quantile %d outside [0, 6]", l, k)
		}
	}
	if q[topo.ChMO] < q[topo.ChTM] {
		t.Errorf("slow channel quantile %d below fast channel %d", q[topo.ChMO], q[topo.ChTM])
	}
	// Tighter eps gives (weakly) larger quantiles.
	tight, err := ChannelQueueQuantiles(n, numeric.IntVector{3, 3}, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	for l := range q {
		if tight[l] < q[l] {
			t.Errorf("channel %d: tighter eps shrank quantile %d -> %d", l, q[l], tight[l])
		}
	}
	if _, err := ChannelQueueQuantiles(n, numeric.IntVector{3, 3}, 1.5); err == nil {
		t.Error("expected eps error")
	}
}

func TestEvaluateWithAckDelay(t *testing.T) {
	// A positive ack delay reduces attainable throughput at a fixed
	// window (credits spend time in flight) but never changes the
	// network-delay bookkeeping (ack station excluded).
	n := topo.Canada2Class(25, 25)
	base, err := Evaluate(n, numeric.IntVector{3, 3}, Options{Evaluator: EvalExactMVA})
	if err != nil {
		t.Fatal(err)
	}
	for r := range n.Classes {
		n.Classes[r].AckDelay = 0.1
	}
	acked, err := Evaluate(n, numeric.IntVector{3, 3}, Options{Evaluator: EvalExactMVA})
	if err != nil {
		t.Fatal(err)
	}
	if acked.Throughput >= base.Throughput {
		t.Errorf("ack delay did not reduce throughput: %v vs %v", acked.Throughput, base.Throughput)
	}
	// Network delay must not include the ack station's 0.1 s.
	if acked.Delay > base.Delay+0.02 {
		t.Errorf("ack latency leaked into network delay: %v vs %v", acked.Delay, base.Delay)
	}
}

func TestAckDelayNeedsBiggerWindow(t *testing.T) {
	// With credits in flight longer, the power-optimal window grows —
	// the bandwidth-delay product effect.
	slow := topo.Canada2Class(25, 25)
	for r := range slow.Classes {
		slow.Classes[r].AckDelay = 0.3
	}
	fast := topo.Canada2Class(25, 25)
	resSlow, err := Dimension(slow, Options{})
	if err != nil {
		t.Fatal(err)
	}
	resFast, err := Dimension(fast, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if resSlow.Windows[0] <= resFast.Windows[0] {
		t.Errorf("ack delay should enlarge the optimal window: %v vs %v",
			resSlow.Windows, resFast.Windows)
	}
}

func TestSimMatchesAnalyticWithAckDelay(t *testing.T) {
	// BCMP insensitivity check: the simulator's deterministic ack delay
	// against the analytic exponential IS station — the means agree.
	n := topo.Canada2Class(20, 20)
	for r := range n.Classes {
		n.Classes[r].AckDelay = 0.15
	}
	w := numeric.IntVector{4, 4}
	analytic, err := Evaluate(n, w, Options{Evaluator: EvalExactMVA})
	if err != nil {
		t.Fatal(err)
	}
	simRes, err := sim.Run(n, sim.Config{Windows: w, Duration: 10000, Warmup: 1000, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(simRes.Throughput-analytic.Throughput) / analytic.Throughput; rel > 0.03 {
		t.Errorf("throughput %v vs analytic %v (rel %v)", simRes.Throughput, analytic.Throughput, rel)
	}
	if rel := math.Abs(simRes.Delay-analytic.Delay) / analytic.Delay; rel > 0.06 {
		t.Errorf("delay %v vs analytic %v (rel %v)", simRes.Delay, analytic.Delay, rel)
	}
}
