package core

import (
	"errors"
	"fmt"

	"repro/internal/mva"
	"repro/internal/numeric"
)

// FallbackTier identifies which stage of the resilient evaluation chain
// answered for a candidate window vector. The chain exists because the
// approximate MVA fixed points can fail to converge on extreme window
// vectors (very large populations, near-saturated stations); without it a
// single such candidate poisons the whole dimensioning run — the search
// either aborts or, marking the point infeasible, walks around a region
// that is perfectly evaluable by a slightly more careful solver.
type FallbackTier int

const (
	// TierPrimary: the configured evaluator converged on the first try.
	TierPrimary FallbackTier = iota
	// TierDamped: the same evaluator, retried with halved damping and a
	// relaxed tolerance — the cheap rescue for oscillating fixed points.
	TierDamped
	// TierLinearizer: the Linearizer AMVA (or, when the primary evaluator
	// already is the Linearizer, a damped Schweitzer fixed point) — a
	// different iteration map that converges on many inputs the σ and
	// Schweitzer maps circle around.
	TierLinearizer
	// TierExact: the exact multichain recursion, attempted only when the
	// candidate's population lattice is small enough to enumerate.
	TierExact

	// NumFallbackTiers is the number of tiers in the chain.
	NumFallbackTiers = int(TierExact) + 1
)

func (t FallbackTier) String() string {
	switch t {
	case TierPrimary:
		return "primary"
	case TierDamped:
		return "damped-retry"
	case TierLinearizer:
		return "linearizer"
	case TierExact:
		return "exact"
	default:
		return fmt.Sprintf("FallbackTier(%d)", int(t))
	}
}

// FallbackCounts tallies successful evaluations per tier. Index with a
// FallbackTier.
type FallbackCounts [NumFallbackTiers]int64

// Rescued returns the number of evaluations answered below the primary
// tier — candidates that would have been lost without the chain.
func (c FallbackCounts) Rescued() int64 {
	var n int64
	for t := TierDamped; t < FallbackTier(NumFallbackTiers); t++ {
		n += c[t]
	}
	return n
}

func (c FallbackCounts) String() string {
	return fmt.Sprintf("primary %d, damped %d, linearizer %d, exact %d",
		c[TierPrimary], c[TierDamped], c[TierLinearizer], c[TierExact])
}

// Fallback-chain tuning. The retries deliberately relax no further than
// values that keep results deterministic and physically meaningful: the
// fixed point reached under damping or a 1e-6 tolerance agrees with the
// tight one wherever both exist.
const (
	// relaxedTol is the loosest convergence threshold a retry uses.
	relaxedTol = 1e-6
	// exactFallbackLattice caps the population-lattice size (product of
	// E_r+1) the exact tier will enumerate; beyond it the chain gives up
	// rather than spend seconds on one candidate.
	exactFallbackLattice = 1 << 17
)

// solveFallback runs the resilient chain after the primary solver returned
// primaryErr (known to wrap mva.ErrNotConverged). st's model populations
// are already set to the candidate. Any error that is NOT a convergence
// failure — a cancelled context above all — aborts the chain immediately.
func (e *Engine) solveFallback(st *evalState, warm *mva.WarmStart, primaryErr error) (*mva.Solution, FallbackTier, error) {
	// Tier 1: same method, halved damping, relaxed tolerance. Damping
	// rescues oscillating iterates; the relaxed threshold rescues limit
	// cycles whose diameter sits between 1e-8 and 1e-6.
	mo := e.opts.MVA
	mo.Prevalidated = true
	mo.Warm = warm
	mo.Sparse = e.sparse
	// Each tier gets a fresh watchdog allowance: the chain exists to rescue
	// candidates the primary budget gave up on, so tiers must not inherit
	// its already-exhausted deadline.
	mo.SweepBudget = e.sweepBudget()
	if mo.Damping <= 0 || mo.Damping > 1 {
		mo.Damping = 1
	}
	mo.Damping /= 2
	if mo.Tol < relaxedTol {
		mo.Tol = relaxedTol
	}
	var sol *mva.Solution
	var err error
	switch e.opts.Evaluator {
	case EvalLinearizerMVA:
		sol, err = mva.Linearizer(&st.model, mo)
	case EvalSchweitzerMVA:
		mo.Method = mva.Schweitzer
		mo.Workspace = st.ws
		sol, err = mva.Approximate(&st.model, mo)
	default:
		mo.Method = mva.SigmaHeuristic
		mo.Workspace = st.ws
		sol, err = mva.Approximate(&st.model, mo)
	}
	if err == nil {
		sol.Solver += "+damped"
		return sol, TierDamped, nil
	}
	if !errors.Is(err, mva.ErrNotConverged) {
		return nil, TierDamped, err
	}

	// Tier 2: a different iteration map. Linearizer for the σ/Schweitzer
	// primaries; a damped Schweitzer core when the primary already is the
	// Linearizer.
	mo.SweepBudget = e.sweepBudget()
	if e.opts.Evaluator == EvalLinearizerMVA {
		mo.Method = mva.Schweitzer
		mo.Workspace = st.ws
		sol, err = mva.Approximate(&st.model, mo)
		if err == nil {
			sol.Solver += "+fallback"
		}
	} else {
		lo := mo
		lo.Workspace = nil
		sol, err = mva.Linearizer(&st.model, lo)
		if err == nil {
			sol.Solver = "linearizer+fallback"
		}
	}
	if err == nil {
		return sol, TierLinearizer, nil
	}
	if !errors.Is(err, mva.ErrNotConverged) {
		return nil, TierLinearizer, err
	}

	// Tier 3: exact recursion, iteration-free by construction, affordable
	// only on small population lattices.
	pops := make(numeric.IntVector, len(st.model.Chains))
	for r := range st.model.Chains {
		pops[r] = st.model.Chains[r].Population
	}
	if _, lerr := numeric.LatticeSize(pops, exactFallbackLattice); lerr == nil {
		if e.conv != nil {
			if csol := e.conv.solve(&st.model); csol != nil {
				csol.Solver = "convolution+fallback"
				return csol, TierExact, nil
			}
		}
		sol, err = mva.ExactMultichain(&st.model)
		if err == nil {
			sol.Solver = "exact-mva+fallback"
			return sol, TierExact, nil
		}
	}
	// Every tier failed (or the exact lattice is too large): surface the
	// primary solver's error so callers see the original diagnosis.
	return nil, TierPrimary, primaryErr
}
