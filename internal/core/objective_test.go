package core

import (
	"math"
	"testing"

	"repro/internal/numeric"
	"repro/internal/topo"
)

func TestObjectiveKindStrings(t *testing.T) {
	if ObjNetworkPower.String() != "network-power" ||
		ObjMinClassPower.String() != "min-class-power" ||
		ObjSumClassPower.String() != "sum-class-power" ||
		ObjectiveKind(9).String() == "" {
		t.Error("ObjectiveKind strings wrong")
	}
}

func TestFairnessObjectiveProtectsWeakClass(t *testing.T) {
	// On the 4-class network the aggregate criterion squeezes the
	// long-route classes to windows of 1 (Table 4.12); the max-min
	// criterion must leave the weakest class strictly better off.
	n := topo.Canada4Class(20, 20, 20, 40)
	agg, err := Dimension(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fair, err := Dimension(n, Options{Objective: ObjMinClassPower})
	if err != nil {
		t.Fatal(err)
	}
	aggM, err := Evaluate(n, agg.Windows, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fairM, err := Evaluate(n, fair.Windows, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if fairM.MinClassPower() <= aggM.MinClassPower() {
		t.Errorf("max-min objective did not raise the weakest class: %v vs %v (windows %v vs %v)",
			fairM.MinClassPower(), aggM.MinClassPower(), fair.Windows, agg.Windows)
	}
	// The trade-off is real: aggregate power drops under the fairness
	// objective.
	if fairM.Power >= aggM.Power {
		t.Errorf("no trade-off: fairness windows have aggregate power %v >= %v", fairM.Power, aggM.Power)
	}
}

func TestSumClassPowerObjective(t *testing.T) {
	n := topo.Canada2Class(20, 20)
	res, err := Dimension(n, Options{Objective: ObjSumClassPower})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Evaluate(n, res.Windows, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Symmetric network: sum of class powers ~ 2x the per-class power;
	// sanity only.
	if m.SumClassPower() <= 0 {
		t.Errorf("sum-class power = %v", m.SumClassPower())
	}
	if math.Abs(m.ClassPower(0)-m.ClassPower(1)) > 0.05*m.ClassPower(0) {
		t.Errorf("asymmetric class powers on a symmetric network: %v vs %v",
			m.ClassPower(0), m.ClassPower(1))
	}
}

func TestObjectiveValueDegenerate(t *testing.T) {
	n := topo.Canada2Class(20, 20)
	m, err := Evaluate(n, numeric.IntVector{1, 1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []ObjectiveKind{ObjNetworkPower, ObjMinClassPower, ObjSumClassPower} {
		v := objectiveValue(m, kind)
		if v <= 0 || math.IsInf(v, 1) {
			t.Errorf("%v: objective %v for a healthy operating point", kind, v)
		}
	}
}
