package core

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/numeric"
	"repro/internal/topo"
)

// twoScenarioSet is a crafted pair pulling the optimum in opposite
// directions: the likely scenario is the nominal network, the unlikely
// one cuts the shared Winnipeg–Toronto trunk to a fraction of its
// capacity (where much smaller windows are optimal).
func twoScenarioSet(trunkFactor float64) []Scenario {
	capScale := []float64{1, 1, 1, 1, 1, 1, 1}
	capScale[topo.ChWT] = trunkFactor
	return []Scenario{
		{Name: "nominal", Weight: 0.95},
		{Name: "trunk-cut", CapacityScale: capScale, Weight: 0.05},
	}
}

func TestScenarioValidateAndApply(t *testing.T) {
	n := topo.Canada2Class(20, 20)
	sc := Scenario{
		Name:          "half-trunk",
		CapacityScale: []float64{1, 0.5, 1, 1, 1, 1, 1},
		RateScale:     []float64{2, 1},
	}
	p, err := sc.Apply(n)
	if err != nil {
		t.Fatal(err)
	}
	if p.Channels[topo.ChWT].Capacity != 0.5*n.Channels[topo.ChWT].Capacity {
		t.Errorf("trunk capacity not halved: %v", p.Channels[topo.ChWT].Capacity)
	}
	if p.Classes[0].Rate != 2*n.Classes[0].Rate {
		t.Errorf("class-0 rate not doubled: %v", p.Classes[0].Rate)
	}
	if p.Classes[1].Rate != n.Classes[1].Rate || p.Channels[0].Capacity != n.Channels[0].Capacity {
		t.Error("unscaled entries changed")
	}
	if !strings.HasSuffix(p.Name, "/half-trunk") {
		t.Errorf("perturbed name %q", p.Name)
	}
	// The original is untouched.
	if n.Channels[topo.ChWT].Capacity != 50000 {
		t.Errorf("Apply mutated the input network: %v", n.Channels[topo.ChWT].Capacity)
	}

	bad := []Scenario{
		{Name: "short", CapacityScale: []float64{0.5}},
		{Name: "boost", CapacityScale: []float64{1.5, 1, 1, 1, 1, 1, 1}},
		{Name: "zero", CapacityScale: []float64{0, 1, 1, 1, 1, 1, 1}},
		{Name: "rate0", RateScale: []float64{0, 1}},
		{Name: "rateinf", RateScale: []float64{math.Inf(1), 1}},
		{Name: "badweight", Weight: math.NaN()},
	}
	for _, sc := range bad {
		if _, err := sc.Apply(n); err == nil {
			t.Errorf("scenario %q accepted", sc.Name)
		}
	}
}

func TestScenarioFaultSpec(t *testing.T) {
	n := topo.Canada2Class(20, 20)
	sc := Scenario{
		Name:          "mixed",
		CapacityScale: []float64{1, 0.5, 1, 1, 1, 1, 1},
		RateScale:     []float64{2, 1},
	}
	f, err := sc.FaultSpec(n, 100, 900)
	if err != nil {
		t.Fatal(err)
	}
	// Factor-1 entries are skipped: one degradation, one surge.
	if len(f.Degradations) != 1 || f.Degradations[0].Channel != topo.ChWT || f.Degradations[0].Factor != 0.5 {
		t.Errorf("degradations %+v", f.Degradations)
	}
	if len(f.Surges) != 1 || f.Surges[0].Class != 0 || f.Surges[0].Factor != 2 {
		t.Errorf("surges %+v", f.Surges)
	}
	if f.Degradations[0].Start != 100 || f.Surges[0].End != 900 {
		t.Errorf("window not propagated: %+v %+v", f.Degradations[0], f.Surges[0])
	}
	if err := f.Validate(n); err != nil {
		t.Errorf("generated spec invalid: %v", err)
	}
	if _, err := sc.FaultSpec(n, 900, 100); err == nil {
		t.Error("inverted fault window accepted")
	}
	// An all-ones scenario yields an empty (harmless) spec.
	empty := Scenario{Name: "idle"}
	f, err = empty.FaultSpec(n, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Outages)+len(f.Degradations)+len(f.Surges) != 0 {
		t.Errorf("all-ones scenario produced faults: %+v", f)
	}
}

func TestParseScenarios(t *testing.T) {
	n := topo.Canada2Class(20, 20)
	data := []byte(`{"scenarios": [
		{"name": "nominal", "weight": 0.6},
		{"name": "trunk-degraded", "capacity_scale": {"WT": 0.5}, "weight": 0.2},
		{"name": "class1-surge", "rate_scale": {"class1": 2}, "weight": 0.2}
	]}`)
	scs, err := ParseScenarios(data, n)
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) != 3 {
		t.Fatalf("parsed %d scenarios", len(scs))
	}
	if scs[0].CapacityScale != nil || scs[0].RateScale != nil {
		t.Errorf("nominal scenario not identity: %+v", scs[0])
	}
	if scs[1].CapacityScale[topo.ChWT] != 0.5 || scs[1].CapacityScale[topo.ChEW] != 1 {
		t.Errorf("capacity scales %v", scs[1].CapacityScale)
	}
	if scs[2].RateScale[0] != 2 || scs[2].RateScale[1] != 1 {
		t.Errorf("rate scales %v", scs[2].RateScale)
	}

	if _, err := ParseScenarios([]byte(`{"scenarios": []}`), n); err == nil {
		t.Error("empty set accepted")
	}
	if _, err := ParseScenarios([]byte(`{"scenarios": [{"capacity_scale": {"nosuch": 0.5}}]}`), n); err == nil || !strings.Contains(err.Error(), `unknown channel "nosuch"`) {
		t.Errorf("unknown channel error: %v", err)
	}
	if _, err := ParseScenarios([]byte(`{"scenarios": [{"rate_scale": {"nosuch": 2}}]}`), n); err == nil || !strings.Contains(err.Error(), `unknown class "nosuch"`) {
		t.Errorf("unknown class error: %v", err)
	}
	if _, err := ParseScenarios([]byte(`{"scenarios": [{"name": "bad", "capacity_scale": {"WT": 1.5}}]}`), n); err == nil {
		t.Error("out-of-range factor accepted")
	}
}

// TestDimensionRobustMinimaxVsWeighted: on a scenario pair whose likely
// member wants large windows and whose unlikely member wants small ones,
// the two criteria pick different windows, and each wins on its own
// criterion: minimax has the better worst-scenario power, weighted the
// better weighted-mean power.
func TestDimensionRobustMinimaxVsWeighted(t *testing.T) {
	n := topo.Canada2Class(20, 20)
	scenarios := twoScenarioSet(0.25)
	mm, err := DimensionRobust(n, scenarios, RobustMinimax, Options{})
	if err != nil {
		t.Fatal(err)
	}
	wt, err := DimensionRobust(n, scenarios, RobustWeighted, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if mm.Windows.Equal(wt.Windows) {
		t.Fatalf("criteria agree on %v; the scenario pair is not discriminating", mm.Windows)
	}
	if mm.WorstPower < wt.WorstPower {
		t.Errorf("minimax worst power %v below weighted's %v", mm.WorstPower, wt.WorstPower)
	}
	if wt.WeightedPower < mm.WeightedPower {
		t.Errorf("weighted mean power %v below minimax's %v", wt.WeightedPower, mm.WeightedPower)
	}
	// Bookkeeping: the worst scenario under the trunk cut is the trunk cut.
	if mm.WorstScenario != 1 {
		t.Errorf("worst scenario %d, want the trunk cut", mm.WorstScenario)
	}
	if len(mm.ScenarioPower) != 2 || len(mm.PerScenario) != 2 {
		t.Fatalf("per-scenario columns: %v, %v", mm.ScenarioPower, mm.PerScenario)
	}
	if mm.WorstPower != mm.ScenarioPower[mm.WorstScenario] {
		t.Errorf("WorstPower %v != ScenarioPower[%d] = %v", mm.WorstPower, mm.WorstScenario, mm.ScenarioPower[mm.WorstScenario])
	}
}

// TestDimensionRobustSeededBeatsNominalWorst is the acceptance
// inequality: seeded from the nominal-optimal vector, the minimax result
// protects the worst scenario at least as well as the nominal choice.
func TestDimensionRobustSeededBeatsNominalWorst(t *testing.T) {
	n := topo.Canada4Class(20, 20, 20, 40)
	capScale := []float64{1, 1, 1, 1, 1, 1, 1}
	capScale[topo.ChWT] = 0.5
	scenarios := []Scenario{
		{Name: "nominal", Weight: 0.6},
		{Name: "trunk-degraded", CapacityScale: capScale, Weight: 0.2},
		{Name: "class4-surge", RateScale: []float64{1, 1, 1, 2}, Weight: 0.2},
	}
	nominal, err := Dimension(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	nominalPowers, err := EvaluateScenarios(n, scenarios, nominal.Windows, Options{})
	if err != nil {
		t.Fatal(err)
	}
	nominalWorst := math.Inf(1)
	for _, p := range nominalPowers {
		if p < nominalWorst {
			nominalWorst = p
		}
	}
	robust, err := DimensionRobust(n, scenarios, RobustMinimax, Options{InitialWindows: nominal.Windows})
	if err != nil {
		t.Fatal(err)
	}
	if robust.WorstPower < nominalWorst {
		t.Errorf("robust worst power %v below nominal-optimal's worst %v", robust.WorstPower, nominalWorst)
	}
}

// TestDimensionRobustWorkersDeterministic: the speculative-parallel
// search over scenario engines is bit-identical to the serial run.
func TestDimensionRobustWorkersDeterministic(t *testing.T) {
	n := topo.Canada2Class(25, 25)
	scenarios := twoScenarioSet(0.4)
	serial, err := DimensionRobust(n, scenarios, RobustMinimax, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := DimensionRobust(n, scenarios, RobustMinimax, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !serial.Windows.Equal(parallel.Windows) {
		t.Fatalf("worker count changed the optimum: %v vs %v", serial.Windows, parallel.Windows)
	}
	if serial.Search.BestValue != parallel.Search.BestValue {
		t.Fatalf("worker count changed the criterion value: %v vs %v", serial.Search.BestValue, parallel.Search.BestValue)
	}
	for i := range serial.ScenarioPower {
		if serial.ScenarioPower[i] != parallel.ScenarioPower[i] {
			t.Errorf("scenario %d power differs: %v vs %v", i, serial.ScenarioPower[i], parallel.ScenarioPower[i])
		}
	}
}

// TestDimensionRobustCancelledBestSoFar: cancellation mid-search returns
// the best committed vector with full per-scenario metrics plus the
// wrapped context error, mirroring Dimension's contract.
func TestDimensionRobustCancelledBestSoFar(t *testing.T) {
	n := topo.Canada2Class(20, 20)
	scenarios := twoScenarioSet(0.4)
	res, err := DimensionRobust(n, scenarios, RobustMinimax, Options{Context: &countdownCtx{remaining: 8}})
	if err == nil {
		t.Fatal("cancelled robust dimensioning returned nil error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	if res == nil || res.Windows == nil {
		t.Fatalf("no best-so-far result: %+v", res)
	}
	if len(res.PerScenario) != 2 || res.PerScenario[0] == nil || res.WorstPower <= 0 {
		t.Fatalf("best-so-far point lacks scenario metrics: %+v", res)
	}
	// Cancellation before any evaluation is terminal.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err = DimensionRobust(n, scenarios, RobustMinimax, Options{Context: ctx})
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if res != nil {
		t.Fatalf("result %+v from a never-started search", res)
	}
}

// TestDimensionRobustSingleNominalMatchesDimension: with one identity
// scenario both criteria reduce to plain Dimension.
func TestDimensionRobustSingleNominalMatchesDimension(t *testing.T) {
	n := topo.Canada2Class(25, 25)
	plain, err := Dimension(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []RobustKind{RobustMinimax, RobustWeighted} {
		res, err := DimensionRobust(n, []Scenario{{Name: "nominal"}}, kind, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Windows.Equal(plain.Windows) {
			t.Errorf("%v: robust windows %v vs plain %v", kind, res.Windows, plain.Windows)
		}
		// Same windows; the power values may differ within the AMVA
		// fixed-point tolerance (warm vs cold final evaluation).
		if math.Abs(res.WorstPower-plain.Metrics.Power) > 1e-4*plain.Metrics.Power {
			t.Errorf("%v: worst power %v vs plain %v", kind, res.WorstPower, plain.Metrics.Power)
		}
	}
}

// TestDimensionRobustExhaustive: the exhaustive search path works and
// agrees with the pattern search on a small box.
func TestDimensionRobustExhaustive(t *testing.T) {
	n := topo.Canada2Class(25, 25)
	scenarios := twoScenarioSet(0.4)
	opts := Options{MaxWindow: 8}
	pat, err := DimensionRobust(n, scenarios, RobustMinimax, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Search = ExhaustiveSearch
	opts.Workers = 4
	exh, err := DimensionRobust(n, scenarios, RobustMinimax, opts)
	if err != nil {
		t.Fatal(err)
	}
	if exh.Search.BestValue > pat.Search.BestValue {
		t.Errorf("exhaustive criterion %v worse than pattern's %v", exh.Search.BestValue, pat.Search.BestValue)
	}
}

func TestDimensionRobustErrors(t *testing.T) {
	n := topo.Canada2Class(20, 20)
	if _, err := DimensionRobust(n, nil, RobustMinimax, Options{}); err == nil {
		t.Error("empty scenario set accepted")
	}
	if _, err := DimensionRobust(n, []Scenario{{Name: "x"}}, RobustKind(9), Options{}); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := DimensionRobust(n, []Scenario{{Name: "x"}}, RobustMinimax, Options{BufferLimits: []int{1, 1, 1, 1, 1, 1}}); err == nil {
		t.Error("BufferLimits accepted")
	}
	if _, err := DimensionRobust(n, []Scenario{{Name: "bad", RateScale: []float64{0, 1}}}, RobustMinimax, Options{}); err == nil {
		t.Error("invalid scenario accepted")
	}
	bad := topo.Canada2Class(20, 20)
	bad.Channels[0].Capacity = -1
	if _, err := DimensionRobust(bad, []Scenario{{Name: "x"}}, RobustMinimax, Options{}); err == nil {
		t.Error("invalid network accepted")
	}
	if _, err := DimensionRobust(n, []Scenario{{Name: "x"}}, RobustMinimax, Options{InitialWindows: numeric.IntVector{1}}); err == nil {
		t.Error("short initial vector accepted")
	}
}

func TestRobustKindStrings(t *testing.T) {
	if RobustMinimax.String() != "minmax" || RobustWeighted.String() != "weighted" {
		t.Errorf("kind strings: %v, %v", RobustMinimax, RobustWeighted)
	}
	if !strings.Contains(RobustKind(9).String(), "9") {
		t.Errorf("unknown kind string %v", RobustKind(9))
	}
}
