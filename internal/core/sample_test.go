package core

import (
	"testing"

	"repro/internal/topo"
)

// TestSampleScenariosDeterministic: the same seed reproduces the same set
// bit-for-bit, a different seed a different one, and growing the count
// keeps the prefix (per-index SubSeed streams).
func TestSampleScenariosDeterministic(t *testing.T) {
	n := topo.Canada2Class(20, 20)
	opts := SampleOptions{Count: 8, Seed: 42, KeepDominated: true}
	a, err := SampleScenarios(n, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SampleScenarios(n, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 8 || len(b) != 8 {
		t.Fatalf("sampled %d and %d scenarios, want 8", len(a), len(b))
	}
	for i := range a {
		for l := range a[i].CapacityScale {
			if a[i].CapacityScale[l] != b[i].CapacityScale[l] {
				t.Fatalf("scenario %d channel %d differs across identical seeds", i, l)
			}
		}
		for r := range a[i].RateScale {
			if a[i].RateScale[r] != b[i].RateScale[r] {
				t.Fatalf("scenario %d class %d differs across identical seeds", i, r)
			}
		}
	}
	grown, err := SampleScenarios(n, SampleOptions{Count: 12, Seed: 42, KeepDominated: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if grown[i].CapacityScale[0] != a[i].CapacityScale[0] || grown[i].RateScale[0] != a[i].RateScale[0] {
			t.Fatalf("growing the count changed scenario %d", i)
		}
	}
	other, err := SampleScenarios(n, SampleOptions{Count: 8, Seed: 43, KeepDominated: true})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		for l := range a[i].CapacityScale {
			if a[i].CapacityScale[l] != other[i].CapacityScale[l] {
				same = false
			}
		}
	}
	if same {
		t.Error("different seeds produced identical capacity scales")
	}
}

// TestSampleScenariosValid: every sampled scenario passes validation and
// applies cleanly to the network, and scales stay inside the documented
// ranges.
func TestSampleScenariosValid(t *testing.T) {
	n := topo.Canada2Class(20, 20)
	scenarios, err := SampleScenarios(n, SampleOptions{
		Count: 20, Seed: 7, MaxDegradation: 0.4, MaxSurge: 0.3, KeepDominated: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range scenarios {
		if _, err := sc.Apply(n); err != nil {
			t.Fatalf("scenario %q does not apply: %v", sc.Name, err)
		}
		for l, f := range sc.CapacityScale {
			if f < 0.6 || f > 1 {
				t.Errorf("scenario %q channel %d capacity scale %v outside [0.6, 1]", sc.Name, l, f)
			}
		}
		for r, f := range sc.RateScale {
			if f < 1 || f > 1.3 {
				t.Errorf("scenario %q class %d rate scale %v outside [1, 1.3]", sc.Name, r, f)
			}
		}
	}
}

// TestSampleScenariosRejectsBadOptions covers the option validation.
func TestSampleScenariosRejectsBadOptions(t *testing.T) {
	n := topo.Canada2Class(20, 20)
	bad := []SampleOptions{
		{Count: 0},
		{Count: 3, MaxDegradation: 1.5},
		{Count: 3, MaxDegradation: -0.1},
		{Count: 3, MaxSurge: -1},
		{Count: 3, DegradeProb: 2},
		{Count: 3, SurgeProb: -0.5},
	}
	for i, o := range bad {
		if _, err := SampleScenarios(n, o); err == nil {
			t.Errorf("options %d (%+v): no error", i, o)
		}
	}
}

// TestPruneDominatedScenarios: a strictly harsher scenario absorbs milder
// ones, incomparable scenarios survive, duplicates keep their first
// occurrence, and nominal (all ones) is pruned whenever anything else is
// sampled.
func TestPruneDominatedScenarios(t *testing.T) {
	n := topo.Canada2Class(20, 20)
	nominal := Scenario{Name: "nominal"}
	mild := Scenario{Name: "mild", CapacityScale: []float64{1, 0.9, 1, 1, 1, 1, 1}}
	harsh := Scenario{Name: "harsh", CapacityScale: []float64{1, 0.7, 1, 1, 1, 1, 1}, RateScale: []float64{1.2, 1}}
	sideways := Scenario{Name: "sideways", CapacityScale: []float64{0.8, 1, 1, 1, 1, 1, 1}}
	dupe := Scenario{Name: "harsh-again", CapacityScale: []float64{1, 0.7, 1, 1, 1, 1, 1}, RateScale: []float64{1.2, 1}}

	kept, err := PruneDominatedScenarios(n, []Scenario{nominal, mild, harsh, sideways, dupe})
	if err != nil {
		t.Fatal(err)
	}
	names := make(map[string]bool, len(kept))
	for _, sc := range kept {
		names[sc.Name] = true
	}
	if len(kept) != 2 || !names["harsh"] || !names["sideways"] {
		t.Fatalf("kept %v, want exactly {harsh, sideways}", names)
	}
}

// TestSampleThenDimensionRobust: a sampled, pruned set drives
// DimensionRobust end to end.
func TestSampleThenDimensionRobust(t *testing.T) {
	n := topo.Canada2Class(20, 20)
	scenarios, err := SampleScenarios(n, SampleOptions{Count: 6, Seed: 11, MaxDegradation: 0.3, MaxSurge: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if len(scenarios) == 0 {
		t.Fatal("pruning removed every scenario")
	}
	res, err := DimensionRobust(n, scenarios, RobustMinimax, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Windows == nil || res.WorstPower <= 0 {
		t.Fatalf("degenerate robust result: %+v", res)
	}
}
