package core

import (
	"math"
	"testing"

	"repro/internal/numeric"
	"repro/internal/topo"
)

func TestEnumStrings(t *testing.T) {
	if EvalSigmaMVA.String() != "sigma-mva" || EvalSchweitzerMVA.String() != "schweitzer-mva" ||
		EvalExactMVA.String() != "exact-mva" || Evaluator(7).String() == "" {
		t.Error("Evaluator strings wrong")
	}
	if PatternSearch.String() != "pattern" || ExhaustiveSearch.String() != "exhaustive" ||
		SearchKind(7).String() == "" {
		t.Error("SearchKind strings wrong")
	}
}

func TestEvaluateCanada2(t *testing.T) {
	n := topo.Canada2Class(18, 18)
	m, err := Evaluate(n, numeric.IntVector{4, 4}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Throughput below both the offered 36 msg/s and the aggregate
	// bottleneck 50 msg/s; positive power in the paper's range.
	if m.Throughput <= 0 || m.Throughput >= 36 {
		t.Errorf("throughput = %v", m.Throughput)
	}
	if m.Power < 100 || m.Power > 300 {
		t.Errorf("power = %v outside plausible range", m.Power)
	}
	// Symmetric classes: symmetric per-class results.
	if math.Abs(m.ClassThroughput[0]-m.ClassThroughput[1]) > 1e-6 {
		t.Errorf("asymmetric class throughputs %v", m.ClassThroughput)
	}
	if math.Abs(m.ClassDelay[0]-m.ClassDelay[1]) > 1e-6 {
		t.Errorf("asymmetric class delays %v", m.ClassDelay)
	}
}

func TestEvaluateEvaluatorsAgreeRoughly(t *testing.T) {
	n := topo.Canada2Class(20, 20)
	w := numeric.IntVector{3, 3}
	sigma, err := Evaluate(n, w, Options{Evaluator: EvalSigmaMVA})
	if err != nil {
		t.Fatal(err)
	}
	schw, err := Evaluate(n, w, Options{Evaluator: EvalSchweitzerMVA})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := Evaluate(n, w, Options{Evaluator: EvalExactMVA})
	if err != nil {
		t.Fatal(err)
	}
	for name, m := range map[string]float64{"sigma": sigma.Power, "schweitzer": schw.Power} {
		rel := math.Abs(m-exact.Power) / exact.Power
		if rel > 0.08 {
			t.Errorf("%s power %v vs exact %v (rel %v)", name, m, exact.Power, rel)
		}
	}
}

func TestDimensionSymmetricLoads(t *testing.T) {
	// Table 4.7's first property: symmetric class loadings give
	// symmetric optimal windows.
	for _, s := range []float64{15, 25, 50} {
		n := topo.Canada2Class(s, s)
		res, err := Dimension(n, Options{})
		if err != nil {
			t.Fatalf("S=%v: %v", s, err)
		}
		if res.Windows[0] != res.Windows[1] {
			t.Errorf("S=%v: asymmetric windows %v", s, res.Windows)
		}
		if res.Metrics.Power <= 0 {
			t.Errorf("S=%v: power %v", s, res.Metrics.Power)
		}
	}
}

func TestDimensionWindowsShrinkWithLoad(t *testing.T) {
	// Table 4.7's second property: heavier traffic needs smaller windows.
	low, err := Dimension(topo.Canada2Class(12.5, 12.5), Options{})
	if err != nil {
		t.Fatal(err)
	}
	high, err := Dimension(topo.Canada2Class(75, 75), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if high.Windows[0] >= low.Windows[0] {
		t.Errorf("windows did not shrink: %v at low load, %v at high", low.Windows, high.Windows)
	}
	if high.Metrics.Power <= low.Metrics.Power {
		t.Errorf("max power did not grow with load: %v -> %v", low.Metrics.Power, high.Metrics.Power)
	}
}

func TestDimensionMatchesExhaustive(t *testing.T) {
	// The pattern search lands within 1% of the global optimum of its
	// own objective on the 2-class example (a symmetric start can miss a
	// diagonal move by a sliver — a limitation Hooke–Jeeves shares with
	// the thesis's APL search).
	n := topo.Canada2Class(20, 20)
	ps, err := Dimension(n, Options{MaxWindow: 8})
	if err != nil {
		t.Fatal(err)
	}
	ex, err := Dimension(n, Options{Search: ExhaustiveSearch, MaxWindow: 8})
	if err != nil {
		t.Fatal(err)
	}
	if ps.Search.BestValue > ex.Search.BestValue*1.01 {
		t.Errorf("pattern %v (F=%v) worse than exhaustive %v (F=%v)",
			ps.Windows, ps.Search.BestValue, ex.Windows, ex.Search.BestValue)
	}
	if ps.Search.Evaluations >= ex.Search.Evaluations {
		t.Errorf("pattern used %d evaluations, exhaustive %d", ps.Search.Evaluations, ex.Search.Evaluations)
	}
}

func TestDimensionBeatsKleinrockOn4Class(t *testing.T) {
	// Table 4.12's headline: WINDIM beats the (4,4,3,1) hop-count rule
	// when classes interact heavily.
	n := topo.Canada4Class(20, 20, 20, 40)
	res, err := Dimension(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	kw := KleinrockWindows(n)
	if !kw.Equal(numeric.IntVector{4, 4, 3, 1}) {
		t.Fatalf("KleinrockWindows = %v, want (4,4,3,1)", kw)
	}
	base, err := Evaluate(n, kw, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Power <= base.Power*1.2 {
		t.Errorf("WINDIM power %v does not clearly beat Kleinrock %v", res.Metrics.Power, base.Power)
	}
}

func TestDimensionExactEvaluatorSmall(t *testing.T) {
	n := topo.Canada2Class(18, 18)
	res, err := Dimension(n, Options{Evaluator: EvalExactMVA, MaxWindow: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Windows[0] != res.Windows[1] {
		t.Errorf("exact-MVA windows asymmetric: %v", res.Windows)
	}
}

func TestDimensionInitialWindowOverride(t *testing.T) {
	n := topo.Canada2Class(25, 25)
	res, err := Dimension(n, Options{InitialWindows: numeric.IntVector{8, 8}})
	if err != nil {
		t.Fatal(err)
	}
	def, err := Dimension(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Different starts converge to equally good settings on this smooth
	// landscape.
	if math.Abs(res.Search.BestValue-def.Search.BestValue) > 0.02*def.Search.BestValue {
		t.Errorf("start sensitivity: F=%v from (8,8) vs F=%v from hops", res.Search.BestValue, def.Search.BestValue)
	}
	if _, err := Dimension(n, Options{InitialWindows: numeric.IntVector{1}}); err == nil {
		t.Error("expected dimension error for wrong-length initial windows")
	}
}

func TestDimensionInvalidNetwork(t *testing.T) {
	n := topo.Canada2Class(10, 10)
	n.Channels[0].Capacity = 0
	if _, err := Dimension(n, Options{}); err == nil {
		t.Fatal("expected validation error")
	}
	if _, err := Evaluate(n, numeric.IntVector{1, 1}, Options{}); err == nil {
		t.Fatal("expected validation error from Evaluate")
	}
}

func TestDimensionParallelExhaustiveMatchesSerial(t *testing.T) {
	n := topo.Canada2Class(20, 20)
	serial, err := Dimension(n, Options{Search: ExhaustiveSearch, MaxWindow: 7})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Dimension(n, Options{Search: ExhaustiveSearch, MaxWindow: 7, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !par.Windows.Equal(serial.Windows) {
		t.Errorf("parallel %v vs serial %v", par.Windows, serial.Windows)
	}
	if math.Abs(par.Metrics.Power-serial.Metrics.Power) > 1e-12 {
		t.Errorf("powers differ: %v vs %v", par.Metrics.Power, serial.Metrics.Power)
	}
}

func TestDimensionCachesEvaluations(t *testing.T) {
	n := topo.Canada2Class(20, 20)
	res, err := Dimension(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Search.CacheHits == 0 {
		t.Error("expected the FLOC-style cache to be hit during the search")
	}
}
