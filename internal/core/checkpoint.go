package core

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"

	"repro/internal/netmodel"
	"repro/internal/pattern"
)

// ErrResume marks a rejected Options.ResumePath: the checkpoint file is
// missing, unreadable, corrupt, or was written for a different model or
// options. Callers that manage checkpoints themselves (the windimd
// service) detect it with errors.Is, discard the stale file and restart
// the search fresh instead of failing the job.
var ErrResume = errors.New("core: resume rejected")

// modelHash fingerprints everything a checkpoint's cached objective values
// and replayed trajectory depend on: the network spec, evaluator,
// objective, search box and start, solver tuning and — for robust runs —
// the scenario set and criterion. Two runs with equal hashes compute
// identical objectives at every lattice point, so their checkpoints are
// interchangeable; any difference makes resume unsafe and is rejected
// before a single cached value is used.
//
// Deliberately excluded: Workers (the trajectory is bit-identical at any
// worker count), Context and checkpoint paths (orchestration, not
// values), and EvalTimeout (the watchdog can reroute a slow candidate to
// a fallback tier, which already costs cross-machine reproducibility
// whether or not a checkpoint is involved — see Options.EvalTimeout).
func modelHash(n *netmodel.Network, opts Options, scenarios []Scenario, robust string) (string, error) {
	spec, err := n.MarshalSpec()
	if err != nil {
		return "", fmt.Errorf("core: hashing model: %w", err)
	}
	h := sha256.New()
	h.Write(spec)
	fmt.Fprintf(h, "|eval=%v|obj=%v|maxw=%d|maxh=%d|coldstart=%t|nofallback=%t",
		opts.Evaluator, opts.Objective, opts.MaxWindow, opts.MaxHalvings,
		opts.ColdStart, opts.DisableFallback)
	if opts.ExactEngine {
		// Convolution and exact-MVA values agree only to rounding, so
		// engine-backed caches are not interchangeable with plain ones.
		// Appended conditionally to leave pre-existing hashes unchanged.
		fmt.Fprintf(h, "|exactengine=true")
	}
	fmt.Fprintf(h, "|start=%v|step=%v|buffers=%v",
		opts.InitialWindows, opts.InitialStep, opts.BufferLimits)
	fmt.Fprintf(h, "|mva tol=%g damp=%g maxiter=%d",
		opts.MVA.Tol, opts.MVA.Damping, opts.MVA.MaxIter)
	fmt.Fprintf(h, "|robust=%s", robust)
	for _, sc := range scenarios {
		fmt.Fprintf(h, "|scenario %q cap=%v rate=%v w=%g",
			sc.Name, sc.CapacityScale, sc.RateScale, sc.Weight)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// searchCheckpointing resolves Options.CheckpointPath/ResumePath into the
// pattern-search checkpoint configuration and the loaded, hash-verified
// resume state. Both returns are nil when neither path is set.
func searchCheckpointing(n *netmodel.Network, opts Options, scenarios []Scenario, robust string) (*pattern.CheckpointOptions, *pattern.Checkpoint, error) {
	if opts.CheckpointPath == "" && opts.ResumePath == "" {
		return nil, nil, nil
	}
	if opts.Search == ExhaustiveSearch {
		// The exhaustive scan has no commit points (and no use for a memo
		// cache); refusing beats silently running without durability.
		return nil, nil, errors.New("core: checkpoints support the pattern search only")
	}
	hash, err := modelHash(n, opts, scenarios, robust)
	if err != nil {
		return nil, nil, err
	}
	var ckpt *pattern.CheckpointOptions
	if opts.CheckpointPath != "" {
		ckpt = &pattern.CheckpointOptions{
			Path:      opts.CheckpointPath,
			Every:     opts.CheckpointEvery,
			FullEvery: opts.CheckpointFullEvery,
			ModelHash: hash,
		}
	}
	var resume *pattern.Checkpoint
	if opts.ResumePath != "" {
		resume, err = pattern.LoadCheckpoint(opts.ResumePath)
		if err != nil {
			return nil, nil, fmt.Errorf("%w: %w", ErrResume, err)
		}
		if resume.ModelHash != hash {
			return nil, nil, fmt.Errorf("%w: checkpoint %s was written for a different model or options (hash %.12s…, this run is %.12s…)",
				ErrResume, opts.ResumePath, resume.ModelHash, hash)
		}
	}
	return ckpt, resume, nil
}
