package core

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/convolution"
	"repro/internal/mva"
	"repro/internal/netmodel"
	"repro/internal/numeric"
	"repro/internal/qnet"
)

// exactOracleCap bounds the population lattice of a single candidate the
// convolution oracle will answer; larger candidates fall through to the
// exact MVA recursion exactly as before the oracle existed. The cap is
// candidate-local — whether a window vector is served by convolution is a
// function of that vector alone, never of what else the search evaluated —
// which keeps the speculative-parallel search deterministic. It matches
// the exact fallback tier's own lattice cap.
const exactOracleCap = exactFallbackLattice

// errOracleDead marks a convOracle whose engine construction failed (for
// example a network outside the convolution solver's product form); every
// later query skips the shared engine and decides on a private box.
var errOracleDead = errors.New("core: convolution oracle disabled")

// convOracle wraps one shared convolution.Engine for one reference
// network: a single normalisation-constant lattice, grown lazily to the
// bounding box of the candidates it has answered, serving every exact
// evaluation of the search (and, via exactCache, every scenario engine of
// DimensionRobust built on the same structure). The lattice is rebuildable
// state derived from the network alone — it is never serialised into
// checkpoints; a resumed run rebuilds it on demand.
type convOracle struct {
	net     *qnet.Network
	workers int
	// maxBox, when non-nil, is a hard per-chain ceiling forwarded to every
	// engine the oracle builds (convolution.EngineOptions.MaxBox): a slab
	// worker of the sharded search sets it to its slab corner so that no
	// candidate — shared box or private fallback — can grow a lattice past
	// the slab's memory budget. Candidates beyond it fall through to the
	// exact MVA recursion, a point-local decision that preserves the
	// oracle's determinism contract.
	maxBox numeric.IntVector

	mu   sync.Mutex
	eng  *convolution.Engine
	dead bool
}

func newConvOracle(ref *qnet.Network, workers int, maxBox numeric.IntVector) *convOracle {
	if workers < 1 {
		workers = 1
	}
	return &convOracle{net: ref, workers: workers, maxBox: maxBox}
}

// solve answers the exact solution at the populations currently set in
// model's chains, or nil when the oracle cannot serve the candidate (a
// too-large lattice, an unsupported network, numerical trouble) and the
// caller should run the exact MVA recursion instead.
//
// Determinism: the capacity coefficients of the lattice are point-local
// (see convolution.capacityAt), so the value returned for a candidate
// never depends on the shared box's growth history — and when the shared
// box cannot answer (cumulative budget, instability introduced while
// growing toward a DIFFERENT candidate) the oracle retries on a private
// box of exactly the candidate's populations, which yields the same
// values. Whether and what the oracle answers is therefore a pure function
// of the candidate, as the speculative-parallel search requires.
func (o *convOracle) solve(model *qnet.Network) *mva.Solution {
	pops := make(numeric.IntVector, len(model.Chains))
	for r := range model.Chains {
		pops[r] = model.Chains[r].Population
	}
	if _, err := numeric.LatticeSize(pops, exactOracleCap); err != nil {
		return nil
	}
	if o.maxBox != nil {
		// Point-local slab guard: a candidate beyond the slab corner is
		// declined before any engine is touched, exactly as a too-large
		// lattice would be.
		for r, p := range pops {
			if r >= len(o.maxBox) || p > o.maxBox[r] {
				return nil
			}
		}
	}
	m, err := o.sharedMeans(pops)
	if err != nil {
		m, err = o.privateMeans(pops)
		if err != nil {
			return nil
		}
	}
	return meansSolution(m, model)
}

// sharedMeans evaluates on the long-lived engine, constructing it at the
// first candidate's box (convolution.Engine grows it from there).
func (o *convOracle) sharedMeans(pops numeric.IntVector) (*convolution.Means, error) {
	o.mu.Lock()
	if o.dead {
		o.mu.Unlock()
		return nil, errOracleDead
	}
	if o.eng == nil {
		eng, err := convolution.NewEngine(o.net, pops, convolution.EngineOptions{Workers: o.workers, MaxBox: o.maxBox})
		if err != nil {
			o.dead = true
			o.mu.Unlock()
			return nil, err
		}
		o.eng = eng
	}
	eng := o.eng
	o.mu.Unlock()
	// The engine synchronises internally: reads inside the box share a
	// read lock, growth serialises under a write lock.
	return eng.MeansAt(pops)
}

// privateMeans evaluates on a throwaway engine built exactly at the
// candidate — the deterministic fallback when the shared box cannot
// answer for reasons the candidate does not share.
func (o *convOracle) privateMeans(pops numeric.IntVector) (*convolution.Means, error) {
	eng, err := convolution.NewEngine(o.net, pops, convolution.EngineOptions{Workers: o.workers, Budget: exactOracleCap, MaxBox: o.maxBox})
	if err != nil {
		return nil, err
	}
	return eng.MeansAt(pops)
}

// meansSolution converts the engine's means into the mva.Solution shape
// the evaluation pipeline consumes. Queue times follow from Little's law
// per station and chain: t_ir = q_ir / (V_ir * lambda_r).
func meansSolution(m *convolution.Means, model *qnet.Network) *mva.Solution {
	sol := &mva.Solution{
		Throughput: m.Throughput,
		QueueLen:   m.QueueLen,
		QueueTime:  numeric.NewMatrix(model.N(), model.R()),
		Solver:     "convolution",
	}
	for i := 0; i < model.N(); i++ {
		for r := 0; r < model.R(); r++ {
			lam := m.Throughput[r] * model.Chains[r].Visits[i]
			if q := m.QueueLen.At(i, r); lam > 0 && q > 0 {
				sol.QueueTime.Set(i, r, q/lam)
			}
		}
	}
	return sol
}

// memoryBytes reports the oracle's retained lattice memory (0 until the
// first candidate builds the shared engine, or after construction failed).
func (o *convOracle) memoryBytes() int64 {
	o.mu.Lock()
	eng := o.eng
	o.mu.Unlock()
	if eng == nil {
		return 0
	}
	return eng.MemoryBytes()
}

// OracleCache shares convolution oracles across Engines keyed by the
// population-independent structure of their reference networks, so the
// per-scenario engines of one DimensionRobust run — and, in the windimd
// service, concurrent jobs over the same network — reuse a single lattice
// wherever the model structure matches.
//
// The cache is also the unit of memory accounting for multi-tenant
// admission control: Bytes sums the retained lattice memory of every
// cached oracle, and EvictTo drops least-recently-used oracles until the
// total fits a target. Eviction is always safe — an Engine holding an
// evicted oracle keeps using it (the lattice is rebuildable state derived
// from the network alone); eviction only prevents NEW engines from sharing
// it, so the memory is reclaimed when the last holder finishes.
type OracleCache struct {
	mu        sync.Mutex
	budget    int64
	seq       int64
	m         map[string]*oracleEntry
	evictions int64
}

type oracleEntry struct {
	oracle *convOracle
	last   int64 // recency: cache sequence at last oracleFor hit
}

// NewOracleCache builds a cache with the given memory budget in bytes;
// budget <= 0 means unbounded (the DimensionRobust default). The budget is
// advisory — the cache never refuses an oracle — callers enforce it by
// calling EvictTo/TrimToBudget at admission and completion points.
func NewOracleCache(budgetBytes int64) *OracleCache {
	return &OracleCache{budget: budgetBytes, m: map[string]*oracleEntry{}}
}

// Budget returns the configured memory budget (<= 0: unbounded).
func (c *OracleCache) Budget() int64 { return c.budget }

// OracleCacheStats is a point-in-time occupancy snapshot.
type OracleCacheStats struct {
	// Oracles is the number of cached oracles (including not-yet-built
	// ones whose lattices are still empty).
	Oracles int `json:"oracles"`
	// Bytes is the summed retained lattice memory of the cached oracles.
	Bytes int64 `json:"bytes"`
	// Evictions counts oracles dropped by EvictTo since construction.
	Evictions int64 `json:"evictions"`
}

// Stats reports cache occupancy for /stats-style introspection.
func (c *OracleCache) Stats() OracleCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := OracleCacheStats{Oracles: len(c.m), Evictions: c.evictions}
	for _, e := range c.m {
		s.Bytes += e.oracle.memoryBytes()
	}
	return s
}

// EvictTo drops least-recently-used oracles until the cache's retained
// bytes are at most target (target <= 0 empties the cache entirely) and
// returns the bytes freed. Oracles still referenced by running engines
// survive in those engines; only the shared map entry is dropped.
func (c *OracleCache) EvictTo(target int64) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	type sized struct {
		key   string
		last  int64
		bytes int64
	}
	entries := make([]sized, 0, len(c.m))
	var total int64
	for k, e := range c.m {
		b := e.oracle.memoryBytes()
		entries = append(entries, sized{key: k, last: e.last, bytes: b})
		total += b
	}
	if total <= target {
		return 0
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].last < entries[j].last })
	var freed int64
	for _, e := range entries {
		if total <= target {
			break
		}
		delete(c.m, e.key)
		c.evictions++
		total -= e.bytes
		freed += e.bytes
	}
	return freed
}

// TrimToBudget evicts down to the configured budget (a no-op when the
// cache is unbounded) and returns the bytes freed.
func (c *OracleCache) TrimToBudget() int64 {
	if c.budget <= 0 {
		return 0
	}
	return c.EvictTo(c.budget)
}

func (c *OracleCache) oracleFor(ref *qnet.Network, workers int) *convOracle {
	key := networkKey(ref)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seq++
	if e, ok := c.m[key]; ok {
		e.last = c.seq
		return e.oracle
	}
	o := newConvOracle(ref, workers, nil)
	c.m[key] = &oracleEntry{oracle: o, last: c.seq}
	return o
}

// EstimateOracleBytes conservatively estimates the lattice memory a
// convolution oracle for network n would retain if a search explored
// windows up to maxWindow per class — the admission-control gate the
// windimd service applies before letting an ExactEngine job near the
// shared cache. The estimate is the box's lattice point count (capped by
// the engine's own build budget, which the oracle never exceeds) times the
// per-point cost of the materialised arrays: prefix and suffix chains
// (stations+1 each) plus the doubled and leave-one-out convolutions
// (at most 2·stations), all float64.
func EstimateOracleBytes(n *netmodel.Network, maxWindow int) (int64, error) {
	if maxWindow <= 0 {
		maxWindow = 64
	}
	ones := numeric.NewIntVector(len(n.Classes))
	for i := range ones {
		ones[i] = 1
	}
	model, _, err := n.ClosedModel(ones)
	if err != nil {
		return 0, err
	}
	closed := model.EffectiveClosed()
	points := 1
	for range closed.Chains {
		if points > convolution.DefaultEngineBudget/(maxWindow+1) {
			points = convolution.DefaultEngineBudget
			break
		}
		points *= maxWindow + 1
	}
	if points > convolution.DefaultEngineBudget {
		points = convolution.DefaultEngineBudget
	}
	stations := closed.N()
	perPoint := int64(8 * (2*(stations+1) + 2*stations))
	return int64(points) * perPoint, nil
}

// networkKey fingerprints everything the convolution lattice depends on
// except the chain populations: station disciplines and capacity
// functions, and per-chain visit ratios and service times, all floats
// taken bit-exactly.
func networkKey(net *qnet.Network) string {
	h := sha256.New()
	for i := range net.Stations {
		st := &net.Stations[i]
		fmt.Fprintf(h, "s%d k=%d srv=%d ol=%x rf=", i, st.Kind, st.Servers, math.Float64bits(st.OpenLoad))
		for _, r := range st.RateFactors {
			fmt.Fprintf(h, "%x,", math.Float64bits(r))
		}
	}
	for r := range net.Chains {
		ch := &net.Chains[r]
		fmt.Fprintf(h, "|c%d v=", r)
		for _, v := range ch.Visits {
			fmt.Fprintf(h, "%x,", math.Float64bits(v))
		}
		fmt.Fprintf(h, " st=")
		for _, v := range ch.ServTime {
			fmt.Fprintf(h, "%x,", math.Float64bits(v))
		}
	}
	return string(h.Sum(nil))
}
