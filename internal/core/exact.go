package core

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/convolution"
	"repro/internal/mva"
	"repro/internal/numeric"
	"repro/internal/qnet"
)

// exactOracleCap bounds the population lattice of a single candidate the
// convolution oracle will answer; larger candidates fall through to the
// exact MVA recursion exactly as before the oracle existed. The cap is
// candidate-local — whether a window vector is served by convolution is a
// function of that vector alone, never of what else the search evaluated —
// which keeps the speculative-parallel search deterministic. It matches
// the exact fallback tier's own lattice cap.
const exactOracleCap = exactFallbackLattice

// errOracleDead marks a convOracle whose engine construction failed (for
// example a network outside the convolution solver's product form); every
// later query skips the shared engine and decides on a private box.
var errOracleDead = errors.New("core: convolution oracle disabled")

// convOracle wraps one shared convolution.Engine for one reference
// network: a single normalisation-constant lattice, grown lazily to the
// bounding box of the candidates it has answered, serving every exact
// evaluation of the search (and, via exactCache, every scenario engine of
// DimensionRobust built on the same structure). The lattice is rebuildable
// state derived from the network alone — it is never serialised into
// checkpoints; a resumed run rebuilds it on demand.
type convOracle struct {
	net     *qnet.Network
	workers int

	mu   sync.Mutex
	eng  *convolution.Engine
	dead bool
}

func newConvOracle(ref *qnet.Network, workers int) *convOracle {
	if workers < 1 {
		workers = 1
	}
	return &convOracle{net: ref, workers: workers}
}

// solve answers the exact solution at the populations currently set in
// model's chains, or nil when the oracle cannot serve the candidate (a
// too-large lattice, an unsupported network, numerical trouble) and the
// caller should run the exact MVA recursion instead.
//
// Determinism: the capacity coefficients of the lattice are point-local
// (see convolution.capacityAt), so the value returned for a candidate
// never depends on the shared box's growth history — and when the shared
// box cannot answer (cumulative budget, instability introduced while
// growing toward a DIFFERENT candidate) the oracle retries on a private
// box of exactly the candidate's populations, which yields the same
// values. Whether and what the oracle answers is therefore a pure function
// of the candidate, as the speculative-parallel search requires.
func (o *convOracle) solve(model *qnet.Network) *mva.Solution {
	pops := make(numeric.IntVector, len(model.Chains))
	for r := range model.Chains {
		pops[r] = model.Chains[r].Population
	}
	if _, err := numeric.LatticeSize(pops, exactOracleCap); err != nil {
		return nil
	}
	m, err := o.sharedMeans(pops)
	if err != nil {
		m, err = o.privateMeans(pops)
		if err != nil {
			return nil
		}
	}
	return meansSolution(m, model)
}

// sharedMeans evaluates on the long-lived engine, constructing it at the
// first candidate's box (convolution.Engine grows it from there).
func (o *convOracle) sharedMeans(pops numeric.IntVector) (*convolution.Means, error) {
	o.mu.Lock()
	if o.dead {
		o.mu.Unlock()
		return nil, errOracleDead
	}
	if o.eng == nil {
		eng, err := convolution.NewEngine(o.net, pops, convolution.EngineOptions{Workers: o.workers})
		if err != nil {
			o.dead = true
			o.mu.Unlock()
			return nil, err
		}
		o.eng = eng
	}
	eng := o.eng
	o.mu.Unlock()
	// The engine synchronises internally: reads inside the box share a
	// read lock, growth serialises under a write lock.
	return eng.MeansAt(pops)
}

// privateMeans evaluates on a throwaway engine built exactly at the
// candidate — the deterministic fallback when the shared box cannot
// answer for reasons the candidate does not share.
func (o *convOracle) privateMeans(pops numeric.IntVector) (*convolution.Means, error) {
	eng, err := convolution.NewEngine(o.net, pops, convolution.EngineOptions{Workers: o.workers, Budget: exactOracleCap})
	if err != nil {
		return nil, err
	}
	return eng.MeansAt(pops)
}

// meansSolution converts the engine's means into the mva.Solution shape
// the evaluation pipeline consumes. Queue times follow from Little's law
// per station and chain: t_ir = q_ir / (V_ir * lambda_r).
func meansSolution(m *convolution.Means, model *qnet.Network) *mva.Solution {
	sol := &mva.Solution{
		Throughput: m.Throughput,
		QueueLen:   m.QueueLen,
		QueueTime:  numeric.NewMatrix(model.N(), model.R()),
		Solver:     "convolution",
	}
	for i := 0; i < model.N(); i++ {
		for r := 0; r < model.R(); r++ {
			lam := m.Throughput[r] * model.Chains[r].Visits[i]
			if q := m.QueueLen.At(i, r); lam > 0 && q > 0 {
				sol.QueueTime.Set(i, r, q/lam)
			}
		}
	}
	return sol
}

// exactCache shares convolution oracles across Engines keyed by the
// population-independent structure of their reference networks, so the
// per-scenario engines of one DimensionRobust run reuse a single lattice
// wherever scenarios leave the model structure unchanged.
type exactCache struct {
	mu sync.Mutex
	m  map[string]*convOracle
}

func newExactCache() *exactCache { return &exactCache{m: map[string]*convOracle{}} }

func (c *exactCache) oracleFor(ref *qnet.Network, workers int) *convOracle {
	key := networkKey(ref)
	c.mu.Lock()
	defer c.mu.Unlock()
	if o, ok := c.m[key]; ok {
		return o
	}
	o := newConvOracle(ref, workers)
	c.m[key] = o
	return o
}

// networkKey fingerprints everything the convolution lattice depends on
// except the chain populations: station disciplines and capacity
// functions, and per-chain visit ratios and service times, all floats
// taken bit-exactly.
func networkKey(net *qnet.Network) string {
	h := sha256.New()
	for i := range net.Stations {
		st := &net.Stations[i]
		fmt.Fprintf(h, "s%d k=%d srv=%d ol=%x rf=", i, st.Kind, st.Servers, math.Float64bits(st.OpenLoad))
		for _, r := range st.RateFactors {
			fmt.Fprintf(h, "%x,", math.Float64bits(r))
		}
	}
	for r := range net.Chains {
		ch := &net.Chains[r]
		fmt.Fprintf(h, "|c%d v=", r)
		for _, v := range ch.Visits {
			fmt.Fprintf(h, "%x,", math.Float64bits(v))
		}
		fmt.Fprintf(h, " st=")
		for _, v := range ch.ServTime {
			fmt.Fprintf(h, "%x,", math.Float64bits(v))
		}
	}
	return string(h.Sum(nil))
}
