package core

import (
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/netmodel"
	"repro/internal/sim"
)

// Scenario is one analytic operating-condition perturbation: a named
// steady-state shadow of a sim.FaultSpec. Where a FaultSpec degrades a
// channel or surges a class over a time window of one simulation run, a
// Scenario applies the same factors for the whole steady state, which is
// exactly what the product-form evaluators can price. DimensionRobust
// optimises window vectors against a set of Scenarios; the corresponding
// FaultSpec (see FaultSpec) lets the simulator check the choice under the
// genuinely time-varying version of the same conditions.
type Scenario struct {
	Name string
	// CapacityScale[l] multiplies channel l's capacity, in (0, 1] — the
	// steady-state counterpart of a sim.Degradation. Nil means all ones.
	CapacityScale []float64
	// RateScale[r] multiplies class r's exogenous arrival rate; any
	// positive finite value (> 1 surge, < 1 lull) — the steady-state
	// counterpart of a sim.Surge. Nil means all ones.
	RateScale []float64
	// Weight is the scenario's probability weight under RobustWeighted;
	// <= 0 means 1. Weights are normalised over the scenario set, so only
	// ratios matter. RobustMinimax ignores weights.
	Weight float64
}

// validate checks the scenario against the network it perturbs.
func (sc *Scenario) validate(n *netmodel.Network) error {
	if sc.CapacityScale != nil && len(sc.CapacityScale) != len(n.Channels) {
		return fmt.Errorf("core: scenario %q: %d capacity scales for %d channels",
			sc.Name, len(sc.CapacityScale), len(n.Channels))
	}
	for l, f := range sc.CapacityScale {
		if math.IsNaN(f) || f <= 0 || f > 1 {
			return fmt.Errorf("core: scenario %q: capacity scale %v on channel %d outside (0, 1]", sc.Name, f, l)
		}
	}
	if sc.RateScale != nil && len(sc.RateScale) != len(n.Classes) {
		return fmt.Errorf("core: scenario %q: %d rate scales for %d classes",
			sc.Name, len(sc.RateScale), len(n.Classes))
	}
	for r, f := range sc.RateScale {
		if math.IsNaN(f) || math.IsInf(f, 0) || f <= 0 {
			return fmt.Errorf("core: scenario %q: rate scale %v on class %d; need a positive finite value", sc.Name, f, r)
		}
	}
	if math.IsNaN(sc.Weight) || math.IsInf(sc.Weight, 0) || sc.Weight < 0 {
		return fmt.Errorf("core: scenario %q: weight %v; need a non-negative finite value", sc.Name, sc.Weight)
	}
	return nil
}

// Apply returns a copy of the network with the scenario's capacity and
// rate scales folded in — the model DimensionRobust evaluates candidates
// against for this scenario. The copy shares route slices with the
// original (they are read-only throughout the repository).
func (sc *Scenario) Apply(n *netmodel.Network) (*netmodel.Network, error) {
	if err := sc.validate(n); err != nil {
		return nil, err
	}
	p := &netmodel.Network{
		Name:     n.Name + "/" + sc.Name,
		Nodes:    append([]netmodel.Node(nil), n.Nodes...),
		Channels: append([]netmodel.Channel(nil), n.Channels...),
		Classes:  append([]netmodel.Class(nil), n.Classes...),
	}
	for l := range sc.CapacityScale {
		p.Channels[l].Capacity *= sc.CapacityScale[l]
	}
	for r := range sc.RateScale {
		p.Classes[r].Rate *= sc.RateScale[r]
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("core: scenario %q perturbs the network invalid: %w", sc.Name, err)
	}
	return p, nil
}

// FaultSpec returns the time-varying mirror of the scenario: one
// degradation window per scaled channel and one surge window per scaled
// class, all spanning [start, end) of a simulation run. Simulating the
// nominal network under this spec realises the scenario's conditions for
// that window — the check experiments.RobustDimensioning runs on the
// windows the analytic scenarios picked.
func (sc *Scenario) FaultSpec(n *netmodel.Network, start, end float64) (*sim.FaultSpec, error) {
	if err := sc.validate(n); err != nil {
		return nil, err
	}
	if start < 0 || end <= start {
		return nil, fmt.Errorf("core: scenario %q: fault window [%v, %v); need 0 <= start < end", sc.Name, start, end)
	}
	f := &sim.FaultSpec{}
	for l, factor := range sc.CapacityScale {
		if factor == 1 {
			continue
		}
		f.Degradations = append(f.Degradations, sim.Degradation{Channel: l, Start: start, End: end, Factor: factor})
	}
	for r, factor := range sc.RateScale {
		if factor == 1 {
			continue
		}
		f.Surges = append(f.Surges, sim.Surge{Class: r, Start: start, End: end, Factor: factor})
	}
	return f, nil
}

// ScenarioSetSpec is the JSON wire form of a scenario set, with channels
// and classes referenced by name (the cmd/windim -scenarios input
// format). Factors absent from the maps default to 1.
type ScenarioSetSpec struct {
	Scenarios []ScenarioSpec `json:"scenarios"`
}

// ScenarioSpec is one scenario in a ScenarioSetSpec.
type ScenarioSpec struct {
	Name          string             `json:"name"`
	CapacityScale map[string]float64 `json:"capacity_scale,omitempty"`
	RateScale     map[string]float64 `json:"rate_scale,omitempty"`
	Weight        float64            `json:"weight,omitempty"`
}

// ParseScenarios decodes a JSON scenario set and resolves its channel and
// class names against the network, validating every scenario.
func ParseScenarios(data []byte, n *netmodel.Network) ([]Scenario, error) {
	var set ScenarioSetSpec
	if err := json.Unmarshal(data, &set); err != nil {
		return nil, fmt.Errorf("core: parsing scenario set: %w", err)
	}
	if len(set.Scenarios) == 0 {
		return nil, fmt.Errorf("core: scenario set is empty")
	}
	chanIdx := make(map[string]int, len(n.Channels))
	for l := range n.Channels {
		chanIdx[n.Channels[l].Name] = l
	}
	classIdx := make(map[string]int, len(n.Classes))
	for r := range n.Classes {
		classIdx[n.Classes[r].Name] = r
	}
	scenarios := make([]Scenario, 0, len(set.Scenarios))
	for i, ss := range set.Scenarios {
		sc := Scenario{Name: ss.Name, Weight: ss.Weight}
		if sc.Name == "" {
			sc.Name = fmt.Sprintf("scenario-%d", i)
		}
		if len(ss.CapacityScale) > 0 {
			sc.CapacityScale = ones(len(n.Channels))
			for name, f := range ss.CapacityScale {
				l, ok := chanIdx[name]
				if !ok {
					return nil, fmt.Errorf("core: scenario %q scales unknown channel %q", sc.Name, name)
				}
				sc.CapacityScale[l] = f
			}
		}
		if len(ss.RateScale) > 0 {
			sc.RateScale = ones(len(n.Classes))
			for name, f := range ss.RateScale {
				r, ok := classIdx[name]
				if !ok {
					return nil, fmt.Errorf("core: scenario %q scales unknown class %q", sc.Name, name)
				}
				sc.RateScale[r] = f
			}
		}
		if err := sc.validate(n); err != nil {
			return nil, err
		}
		scenarios = append(scenarios, sc)
	}
	return scenarios, nil
}

func ones(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 1
	}
	return v
}
