package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
)

// ErrQuorum marks a DimensionRobust abort caused by scenario degradation
// falling below the MinScenarios quorum. Watchdog trips or instability on
// one deployment's solver load often clear on a retry, so the windimd
// service classifies quorum aborts as transient and retries the job with
// backoff.
var ErrQuorum = errors.New("core: scenario quorum violated")

// DegradedScenario records one scenario excluded from a DimensionRobust
// run: which it was and why. Degraded scenarios stop contributing to the
// robust objective and to the final per-scenario report.
type DegradedScenario struct {
	Index  int    `json:"index"`
	Name   string `json:"name"`
	Reason string `json:"reason"`
}

// scenarioHealth tracks which scenarios of a DimensionRobust run are still
// active, enforcing the minimum-scenario quorum: robustness claims are
// only as strong as the scenario set actually evaluated, so the run
// degrades scenario by scenario — never silently below the quorum.
//
// Reads (isActive) happen on the objective hot path, concurrently under
// speculative search; writes happen on evaluation failures only.
type scenarioHealth struct {
	mu           sync.RWMutex
	names        []string
	active       []bool
	strikes      []int
	reasons      []string
	nActive      int
	quorum       int
	degradeAfter int
}

func newScenarioHealth(names []string, quorum, degradeAfter int) *scenarioHealth {
	if quorum <= 0 {
		quorum = 1
	}
	h := &scenarioHealth{
		names:        names,
		active:       make([]bool, len(names)),
		strikes:      make([]int, len(names)),
		reasons:      make([]string, len(names)),
		nActive:      len(names),
		quorum:       quorum,
		degradeAfter: degradeAfter,
	}
	for i := range h.active {
		h.active[i] = true
	}
	return h
}

func (h *scenarioHealth) isActive(i int) bool {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.active[i]
}

// degrade excludes scenario i, recording the reason. It fails — leaving
// the scenario active — when exclusion would drop the active count below
// the quorum; the caller must then surface the underlying failure instead
// of continuing with a hollowed-out scenario set.
func (h *scenarioHealth) degrade(i int, reason string) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.degradeLocked(i, reason)
}

func (h *scenarioHealth) degradeLocked(i int, reason string) error {
	if !h.active[i] {
		return nil
	}
	if h.nActive-1 < h.quorum {
		return fmt.Errorf("%w: scenario %q failed (%s) and degrading it would leave %d active scenarios, below the quorum of %d",
			ErrQuorum, h.names[i], reason, h.nActive-1, h.quorum)
	}
	h.active[i] = false
	h.reasons[i] = reason
	h.nActive--
	return nil
}

// strike counts one post-fallback convergence failure against scenario i
// and degrades it once Options.DegradeAfter strikes accumulate. No-op when
// strike counting is disabled.
func (h *scenarioHealth) strike(i int, reason string) error {
	if h.degradeAfter <= 0 {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.active[i] {
		return nil
	}
	h.strikes[i]++
	if h.strikes[i] < h.degradeAfter {
		return nil
	}
	return h.degradeLocked(i, fmt.Sprintf("%d non-converged candidates, last: %s", h.strikes[i], reason))
}

// degraded lists the excluded scenarios in index order.
func (h *scenarioHealth) degraded() []DegradedScenario {
	h.mu.RLock()
	defer h.mu.RUnlock()
	var out []DegradedScenario
	for i := range h.active {
		if !h.active[i] {
			out = append(out, DegradedScenario{Index: i, Name: h.names[i], Reason: h.reasons[i]})
		}
	}
	return out
}

// robustAux is the scenario-health state a robust run stores in its
// checkpoints' Aux field, so a resumed run does not re-fight battles
// already lost (or re-count strikes already struck).
type robustAux struct {
	Active  []bool   `json:"active"`
	Strikes []int    `json:"strikes,omitempty"`
	Reasons []string `json:"reasons,omitempty"`
}

// snapshotAux serialises the health state for a checkpoint. Called at
// commit points only (the pattern searcher's snapshot contract).
func (h *scenarioHealth) snapshotAux() json.RawMessage {
	h.mu.RLock()
	defer h.mu.RUnlock()
	data, err := json.Marshal(robustAux{
		Active:  append([]bool(nil), h.active...),
		Strikes: append([]int(nil), h.strikes...),
		Reasons: append([]string(nil), h.reasons...),
	})
	if err != nil {
		return nil
	}
	return data
}

// restoreAux loads the health state from a resumed checkpoint. Empty data
// (a checkpoint from a non-robust run, or one written before any commit)
// leaves everything active.
func (h *scenarioHealth) restoreAux(data json.RawMessage) error {
	if len(data) == 0 {
		return nil
	}
	var aux robustAux
	if err := json.Unmarshal(data, &aux); err != nil {
		return fmt.Errorf("core: checkpoint scenario state: %w", err)
	}
	if len(aux.Active) != len(h.active) {
		return fmt.Errorf("core: checkpoint records %d scenarios; this run has %d", len(aux.Active), len(h.active))
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.nActive = 0
	for i, a := range aux.Active {
		h.active[i] = a
		if a {
			h.nActive++
		}
	}
	if len(aux.Strikes) == len(h.strikes) {
		copy(h.strikes, aux.Strikes)
	}
	if len(aux.Reasons) == len(h.reasons) {
		copy(h.reasons, aux.Reasons)
	}
	if h.nActive < h.quorum {
		return fmt.Errorf("core: checkpoint has %d active scenarios, below the quorum of %d", h.nActive, h.quorum)
	}
	return nil
}
