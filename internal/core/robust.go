package core

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/mva"
	"repro/internal/netmodel"
	"repro/internal/numeric"
	"repro/internal/pattern"
	"repro/internal/power"
)

// RobustKind selects what DimensionRobust optimises across the scenario
// set.
type RobustKind int

const (
	// RobustMinimax maximises the worst-scenario power: the chosen
	// windows are the best guarantee when any scenario may occur and
	// none is more likely than another matters.
	RobustMinimax RobustKind = iota
	// RobustWeighted maximises the probability-weighted mean power
	// (scenario Weights, normalised): the best long-run average when the
	// scenarios occur with known frequencies.
	RobustWeighted
)

func (k RobustKind) String() string {
	switch k {
	case RobustMinimax:
		return "minmax"
	case RobustWeighted:
		return "weighted"
	default:
		return fmt.Sprintf("RobustKind(%d)", int(k))
	}
}

// RobustResult is the outcome of a DimensionRobust run.
type RobustResult struct {
	// Windows is the robust-optimal window vector.
	Windows numeric.IntVector
	// ScenarioPower[i] is the objective-criterion power at Windows under
	// scenario i; PerScenario[i] the full metrics.
	ScenarioPower []float64
	PerScenario   []*power.Metrics
	// WorstScenario indexes the scenario with the lowest power at
	// Windows; WorstPower is that power (the minimax criterion value).
	WorstScenario int
	WorstPower    float64
	// WeightedPower is the normalised weighted mean power at Windows
	// (the RobustWeighted criterion value, reported for either kind).
	WeightedPower float64
	// Search is the underlying optimiser trace.
	Search *pattern.Result
	// NonConverged counts candidate evaluations where some scenario's
	// fixed point failed even after the fallback chain (the candidate is
	// treated as infeasible). Speculative probes are included under
	// Workers > 1, as in Result.
	NonConverged int
	// Fallbacks sums, across the per-scenario engines, how many
	// evaluations each resilient-chain tier answered.
	Fallbacks FallbackCounts
	// Degraded lists scenarios excluded during the run (terminal
	// evaluation errors, or Options.DegradeAfter strike-outs); their
	// ScenarioPower entries are NaN and PerScenario entries nil. The
	// remaining WorstPower/WeightedPower are computed over the active
	// scenarios only.
	Degraded []DegradedScenario
	// WatchdogTrips sums, across the per-scenario engines, the candidate
	// solves the per-candidate watchdog cut short.
	WatchdogTrips int64
}

// robustWeights returns the normalised scenario weights (<= 0 means 1).
func robustWeights(scenarios []Scenario) []float64 {
	w := make([]float64, len(scenarios))
	total := 0.0
	for i := range scenarios {
		w[i] = scenarios[i].Weight
		if w[i] <= 0 {
			w[i] = 1
		}
		total += w[i]
	}
	for i := range w {
		w[i] /= total
	}
	return w
}

// DimensionRobust dimensions the window vector against a set of analytic
// scenarios instead of the single nominal operating point: every
// candidate is evaluated once per scenario on that scenario's perturbed
// model, and the search maximises either the worst-scenario power
// (RobustMinimax) or the weight-normalised mean power (RobustWeighted).
//
// The machinery is Dimension's, replicated per scenario: each scenario
// gets its own reusable Engine with its own warm-started AMVA state
// (committed together at every accepted base point), the resilient
// fallback chain rescues non-converging candidates per scenario, and
// opts.Context cancels the search with the best-so-far vector returned
// alongside the wrapped context error. Under opts.Workers > 1 the
// speculative-parallel pattern search stays bit-identical to the serial
// run, because every scenario engine re-seeds from its committed
// trajectory only.
//
// A candidate that fails to converge under ANY scenario is infeasible:
// robust windows must be evaluable everywhere they claim to protect.
// opts.InitialWindows seeds the search; starting from a nominal-optimal
// vector guarantees the minimax result protects the worst case at least
// as well as the nominal choice does. opts.BufferLimits is not supported
// here (set it on the nominal Dimension run instead).
func DimensionRobust(n *netmodel.Network, scenarios []Scenario, kind RobustKind, opts Options) (*RobustResult, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	if len(scenarios) == 0 {
		return nil, errors.New("core: DimensionRobust needs at least one scenario")
	}
	if kind != RobustMinimax && kind != RobustWeighted {
		return nil, fmt.Errorf("core: unknown robust kind %v", kind)
	}
	if opts.BufferLimits != nil {
		return nil, errors.New("core: DimensionRobust does not support BufferLimits")
	}
	if opts.Context != nil {
		opts.MVA.Context = opts.Context
	}
	if opts.MinScenarios > len(scenarios) {
		return nil, fmt.Errorf("core: quorum of %d exceeds the %d scenarios given", opts.MinScenarios, len(scenarios))
	}
	if opts.ExactEngine && opts.Oracles == nil {
		// One oracle cache for the whole run: scenario engines whose
		// perturbed models share a structure share a convolution lattice.
		opts.Oracles = NewOracleCache(0)
	}
	weights := robustWeights(scenarios)
	perturbed := make([]*netmodel.Network, len(scenarios))
	engines := make([]*Engine, len(scenarios))
	names := make([]string, len(scenarios))
	for i := range scenarios {
		p, err := scenarios[i].Apply(n)
		if err != nil {
			return nil, err
		}
		eng, err := NewEngine(p, opts)
		if err != nil {
			return nil, fmt.Errorf("core: scenario %q: %w", scenarios[i].Name, err)
		}
		perturbed[i] = p
		engines[i] = eng
		names[i] = scenarios[i].Name
	}
	health := newScenarioHealth(names, opts.MinScenarios, opts.DegradeAfter)
	ckptOpts, resume, err := searchCheckpointing(n, opts, scenarios, kind.String())
	if err != nil {
		return nil, err
	}
	if ckptOpts != nil {
		ckptOpts.Aux = health.snapshotAux
	}
	if resume != nil {
		if err := health.restoreAux(resume.Aux); err != nil {
			return nil, err
		}
	}

	nCls := len(n.Classes)
	maxW := opts.MaxWindow
	if maxW <= 0 {
		maxW = 64
	}
	hi := numeric.NewIntVector(nCls)
	lo := numeric.NewIntVector(nCls)
	for i := range hi {
		hi[i] = maxW
		lo[i] = 1
	}

	var nonConverged atomic.Int64
	// objective returns the value the search minimises: the largest
	// per-scenario 1/power for minimax, or 1 over the weighted mean power
	// — both over the ACTIVE scenarios, with weights renormalised as
	// scenarios degrade. While every scenario stays healthy the value is a
	// pure function of (committed warm seeds, candidate), so the
	// speculative search stays deterministic; a degradation event changes
	// the objective for all later candidates, which is the documented
	// price of continuing past a dead scenario.
	objective := func(x numeric.IntVector) (float64, error) {
		worst := 0.0
		weightedP := 0.0
		totalW := 0.0
		evaluated := 0
		for i, eng := range engines {
			if !health.isActive(i) {
				continue
			}
			v, err := eng.ObjectiveValue(x, opts.Objective)
			if err != nil {
				if errors.Is(err, mva.ErrNotConverged) {
					nonConverged.Add(1)
					// The candidate is infeasible as before; repeated
					// failures can additionally retire the scenario itself
					// (opt-in via DegradeAfter).
					if derr := health.strike(i, err.Error()); derr != nil {
						return 0, derr
					}
					return math.Inf(1), nil
				}
				if opts.Context != nil && opts.Context.Err() != nil {
					// Cancellation is never a scenario's fault.
					return 0, err
				}
				// A terminal failure confined to one scenario: exclude the
				// scenario (quorum permitting) and keep dimensioning on
				// the rest, rather than abort the whole run.
				if derr := health.degrade(i, err.Error()); derr != nil {
					return 0, derr
				}
				continue
			}
			if math.IsInf(v, 1) {
				return math.Inf(1), nil
			}
			if v > worst {
				worst = v
			}
			weightedP += weights[i] / v
			totalW += weights[i]
			evaluated++
		}
		if evaluated == 0 {
			// Unreachable while the quorum holds; defensive for quorum 0
			// misconfiguration slipping through.
			return 0, errors.New("core: no active scenario evaluated the candidate")
		}
		if kind == RobustMinimax {
			return worst, nil
		}
		return totalW / weightedP, nil
	}

	var sres *pattern.Result
	switch opts.Search {
	case ExhaustiveSearch:
		sres, err = pattern.ExhaustiveParallelCtx(opts.Context, objective, lo, hi, 0, opts.Workers)
	default:
		start := opts.InitialWindows
		if start == nil {
			start = n.HopVector()
		}
		if len(start) != nCls {
			return nil, fmt.Errorf("core: initial window vector has %d entries for %d classes", len(start), nCls)
		}
		popts := pattern.Options{
			InitialStep: opts.InitialStep,
			Lo:          lo,
			Hi:          hi,
			MaxHalvings: opts.MaxHalvings,
			Workers:     opts.Workers,
			Context:     opts.Context,
			Checkpoint:  ckptOpts,
			Resume:      resume,
		}
		if engines[0].useWarm || opts.OnCommit != nil {
			popts.OnCommit = func(x numeric.IntVector, fx float64) {
				if engines[0].useWarm {
					// Degraded engines skip the warm re-seed: they answer no
					// further evaluations.
					for i, eng := range engines {
						if health.isActive(i) {
							eng.Commit(x)
						}
					}
				}
				if opts.OnCommit != nil {
					opts.OnCommit(x, fx)
				}
			}
		}
		sres, err = pattern.Search(objective, start, popts)
	}
	searchErr := err
	if searchErr != nil && (sres == nil || sres.Best == nil) {
		return nil, searchErr
	}
	if sres.Best == nil || math.IsInf(sres.BestValue, 1) {
		return nil, fmt.Errorf("core: no window setting feasible under every scenario (evaluator %v)", opts.Evaluator)
	}

	res := &RobustResult{
		Windows:      sres.Best,
		Search:       sres,
		NonConverged: int(nonConverged.Load()),
	}
	for _, eng := range engines {
		counts := eng.FallbackCounts()
		for t := range counts {
			res.Fallbacks[t] += counts[t]
		}
		res.WatchdogTrips += eng.WatchdogTrips()
	}
	// Per-scenario metrics at the chosen windows, over the scenarios that
	// survived. After a cancellation the engines carry a dead context, so
	// re-evaluate with a context-free options copy (as Dimension does for
	// its partial result). A scenario that fails HERE — after the search
	// accepted the windows — degrades like a mid-search failure: recorded
	// and excluded, quorum permitting, instead of discarding the run.
	clean := opts
	clean.Context = nil
	clean.MVA.Context = nil
	res.ScenarioPower = make([]float64, len(scenarios))
	res.PerScenario = make([]*power.Metrics, len(scenarios))
	res.WorstPower = math.Inf(1)
	res.WorstScenario = -1
	weightedP := 0.0
	totalW := 0.0
	for i := range scenarios {
		if !health.isActive(i) {
			res.ScenarioPower[i] = math.NaN()
			continue
		}
		m, err := Evaluate(perturbed[i], sres.Best, clean)
		if err != nil {
			if derr := health.degrade(i, fmt.Sprintf("final evaluation at robust windows: %v", err)); derr != nil {
				return nil, fmt.Errorf("core: scenario %q at robust windows: %w", scenarios[i].Name, err)
			}
			res.ScenarioPower[i] = math.NaN()
			continue
		}
		p := criterionPower(m, opts.Objective)
		res.PerScenario[i] = m
		res.ScenarioPower[i] = p
		if p < res.WorstPower {
			res.WorstPower = p
			res.WorstScenario = i
		}
		weightedP += weights[i] * p
		totalW += weights[i]
	}
	if totalW > 0 {
		res.WeightedPower = weightedP / totalW
	}
	res.Degraded = health.degraded()
	return res, searchErr
}

// EvaluateScenarios returns the objective-criterion power of one window
// vector under each scenario — the per-scenario column a robust result is
// compared against (e.g. the nominal-optimal vector's exposure).
func EvaluateScenarios(n *netmodel.Network, scenarios []Scenario, windows numeric.IntVector, opts Options) ([]float64, error) {
	powers := make([]float64, len(scenarios))
	for i := range scenarios {
		p, err := scenarios[i].Apply(n)
		if err != nil {
			return nil, err
		}
		m, err := Evaluate(p, windows, opts)
		if err != nil {
			return nil, fmt.Errorf("core: scenario %q: %w", scenarios[i].Name, err)
		}
		powers[i] = criterionPower(m, opts.Objective)
	}
	return powers, nil
}

// criterionPower maps metrics to the power value the objective kind
// scores (the inverse of objectiveValue, without the infeasibility
// sentinel).
func criterionPower(m *power.Metrics, kind ObjectiveKind) float64 {
	switch kind {
	case ObjMinClassPower:
		return m.MinClassPower()
	case ObjSumClassPower:
		return m.SumClassPower()
	default:
		return m.Power
	}
}
