package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/mva"
	"repro/internal/netmodel"
	"repro/internal/numeric"
	"repro/internal/power"
	"repro/internal/qnet"
)

// Engine is a reusable per-network evaluator: it performs the Fig. 4.6
// closed-chain transformation, validation, and the mixed-network reduction
// ONCE at construction, then evaluates candidate window vectors by
// mutating only the chain populations of pooled model copies. Combined
// with the mva workspace (preallocated buffers, incremental σ curves) and
// the warm-start seed, the per-candidate cost drops from "build + validate
// + cold-solve" to a handful of warm fixed-point sweeps with near-zero
// allocations — the difference WINDIM's inner loop is measured by in
// BenchmarkEvaluateEngine and BenchmarkDimensionWarmVsCold.
//
// An Engine is safe for concurrent Evaluate/ObjectiveValue calls (each
// borrows a pooled evaluation state); Commit must not run concurrently
// with evaluations. pattern.Search's OnCommit hook guarantees exactly
// that: commits happen serially, after the pass barrier.
//
// Determinism: every evaluation between two commits seeds from the same
// committed WarmStart, never from another candidate's result, so the
// objective is a pure function of (committed trajectory, candidate). This
// is what makes speculative-parallel exploration bit-identical to the
// serial search.
type Engine struct {
	opts     Options
	nCls     int
	ref      *qnet.Network // prevalidated effective-closed reference model
	excluded [][]int
	useWarm  bool
	warm     atomic.Pointer[mva.WarmStart]
	pool     sync.Pool
}

// evalState is one borrowed evaluation context: a model view sharing the
// reference Stations but owning its Chains (so populations can be mutated
// without racing other borrowers), a solver workspace, and a Metrics whose
// slices are recycled by ObjectiveValue.
type evalState struct {
	model   qnet.Network
	ws      *mva.Workspace
	metrics power.Metrics
}

// NewEngine builds the evaluation engine for a network under the given
// WINDIM options (Evaluator and MVA settings are honoured; search-related
// fields are ignored). The closed-chain model is constructed at the
// all-ones window vector purely to fix its structure — windows enter only
// as chain populations afterwards.
func NewEngine(n *netmodel.Network, opts Options) (*Engine, error) {
	nCls := len(n.Classes)
	ones := numeric.NewIntVector(nCls)
	for i := range ones {
		ones[i] = 1
	}
	model, excluded, err := n.ClosedModel(ones)
	if err != nil {
		return nil, err
	}
	ref := model
	if opts.Evaluator != EvalExactMVA {
		// The approximate paths run with Prevalidated set, so the checks
		// and the open-load reduction happen here, once.
		ref, err = mva.Prevalidate(model)
		if err != nil {
			return nil, err
		}
	}
	e := &Engine{
		opts:     opts,
		nCls:     nCls,
		ref:      ref,
		excluded: excluded,
		// The exact evaluator re-validates per call and ColdStart asks for
		// reproductions of the legacy cold trajectory, so neither seeds
		// from previous candidates.
		useWarm: opts.Evaluator != EvalExactMVA && !opts.ColdStart,
	}
	e.pool.New = func() any {
		st := &evalState{
			model: qnet.Network{
				Stations: e.ref.Stations,
				Chains:   make([]qnet.Chain, len(e.ref.Chains)),
			},
			ws: mva.NewWorkspace(),
		}
		copy(st.model.Chains, e.ref.Chains)
		return st
	}
	return e, nil
}

// solve borrows nothing: st is caller-owned. It sets the populations and
// runs the configured solver, warm-seeded from the last committed base
// point when enabled.
func (e *Engine) solve(st *evalState, windows numeric.IntVector) (*mva.Solution, error) {
	if len(windows) != e.nCls {
		return nil, fmt.Errorf("core: %d windows for %d classes", len(windows), e.nCls)
	}
	for r := range st.model.Chains {
		if windows[r] < 0 {
			return nil, fmt.Errorf("core: negative window %d for class %d", windows[r], r)
		}
		st.model.Chains[r].Population = windows[r]
	}
	var warm *mva.WarmStart
	if e.useWarm {
		warm = e.warm.Load()
	}
	switch e.opts.Evaluator {
	case EvalExactMVA:
		return mva.ExactMultichain(&st.model)
	case EvalSchweitzerMVA:
		mo := e.opts.MVA
		mo.Method = mva.Schweitzer
		mo.Prevalidated = true
		mo.Workspace = st.ws
		mo.Warm = warm
		return mva.Approximate(&st.model, mo)
	case EvalLinearizerMVA:
		mo := e.opts.MVA
		mo.Prevalidated = true
		mo.Warm = warm
		return mva.Linearizer(&st.model, mo)
	default:
		mo := e.opts.MVA
		mo.Method = mva.SigmaHeuristic
		mo.Prevalidated = true
		mo.Workspace = st.ws
		mo.Warm = warm
		return mva.Approximate(&st.model, mo)
	}
}

// Evaluate solves the model at the given windows and returns freshly
// allocated power metrics (safe to retain).
func (e *Engine) Evaluate(windows numeric.IntVector) (*power.Metrics, error) {
	st := e.pool.Get().(*evalState)
	defer e.pool.Put(st)
	sol, err := e.solve(st, windows)
	if err != nil {
		return nil, err
	}
	m := &power.Metrics{}
	if err := power.FromSolutionInto(m, &st.model, sol, e.excluded); err != nil {
		return nil, err
	}
	return m, nil
}

// ObjectiveValue returns the WINDIM objective (1/power under the chosen
// criterion) at the given windows. This is the search hot path: metrics
// land in the pooled state's recycled slices, so a steady-state call
// allocates nothing.
func (e *Engine) ObjectiveValue(windows numeric.IntVector, kind ObjectiveKind) (float64, error) {
	st := e.pool.Get().(*evalState)
	defer e.pool.Put(st)
	sol, err := e.solve(st, windows)
	if err != nil {
		return 0, err
	}
	if err := power.FromSolutionInto(&st.metrics, &st.model, sol, e.excluded); err != nil {
		return 0, err
	}
	return objectiveValue(&st.metrics, kind), nil
}

// Commit promotes the solution at windows to the warm-start seed for
// subsequent evaluations. Intended as pattern.Options.OnCommit: the
// candidate was just accepted as a base point, its neighbours are the next
// probes, and no evaluation is in flight. The committed seed is re-solved
// from the PREVIOUS committed seed, so the warm chain depends only on the
// accepted trajectory — never on which speculative probes happened to run.
// A failed solve leaves the previous seed in place.
func (e *Engine) Commit(windows numeric.IntVector) {
	if !e.useWarm {
		return
	}
	st := e.pool.Get().(*evalState)
	defer e.pool.Put(st)
	sol, err := e.solve(st, windows)
	if err != nil {
		return
	}
	e.warm.Store(mva.WarmFromSolution(sol))
}

// ResetWarm discards the warm-start seed; the next evaluations use the
// cold initialisation until the next Commit.
func (e *Engine) ResetWarm() { e.warm.Store(nil) }
