package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/mva"
	"repro/internal/netmodel"
	"repro/internal/numeric"
	"repro/internal/power"
	"repro/internal/qnet"
)

// Engine is a reusable per-network evaluator: it performs the Fig. 4.6
// closed-chain transformation, validation, and the mixed-network reduction
// ONCE at construction, then evaluates candidate window vectors by
// mutating only the chain populations of pooled model copies. Combined
// with the mva workspace (preallocated buffers, incremental σ curves) and
// the warm-start seed, the per-candidate cost drops from "build + validate
// + cold-solve" to a handful of warm fixed-point sweeps with near-zero
// allocations — the difference WINDIM's inner loop is measured by in
// BenchmarkEvaluateEngine and BenchmarkDimensionWarmVsCold.
//
// An Engine is safe for concurrent Evaluate/ObjectiveValue calls (each
// borrows a pooled evaluation state); Commit must not run concurrently
// with evaluations. pattern.Search's OnCommit hook guarantees exactly
// that: commits happen serially, after the pass barrier.
//
// Determinism: every evaluation between two commits seeds from the same
// committed WarmStart, never from another candidate's result, so the
// objective is a pure function of (committed trajectory, candidate). This
// is what makes speculative-parallel exploration bit-identical to the
// serial search.
type Engine struct {
	opts Options
	nCls int
	ref  *qnet.Network // prevalidated effective-closed reference model
	// sparse is the reference model's compiled visit-list view, built once
	// here and passed to every approximate solve. Pooled model copies
	// share the reference's backing arrays, so one compilation serves all
	// borrowers (qnet.Sparse.Matches is identity-based).
	sparse   *qnet.Sparse
	excluded [][]int
	useWarm  bool
	useChain bool // resilient fallback chain on ErrNotConverged
	// dog, when non-nil, bounds each candidate solve by a deadline derived
	// from the rolling cost of recent candidates (Options.EvalTimeout).
	dog *watchdog
	// conv, when non-nil (Options.ExactEngine), answers exact evaluations
	// — the EvalExactMVA primary path and the TierExact fallback stage —
	// from a shared convolution lattice instead of a fresh exponential
	// recursion per candidate. Candidates it declines (lattice too large,
	// numerical trouble) fall through to mva.ExactMultichain as before.
	conv *convOracle
	warm atomic.Pointer[mva.WarmStart]
	pool sync.Pool
	// tiers counts successful evaluations per fallback tier (see
	// FallbackTier). Atomic: Evaluate/ObjectiveValue run concurrently.
	tiers [NumFallbackTiers]atomic.Int64
}

// evalState is one borrowed evaluation context: a model view sharing the
// reference Stations but owning its Chains (so populations can be mutated
// without racing other borrowers), a solver workspace, and a Metrics whose
// slices are recycled by ObjectiveValue.
type evalState struct {
	model   qnet.Network
	ws      *mva.Workspace
	metrics power.Metrics
}

// NewEngine builds the evaluation engine for a network under the given
// WINDIM options (Evaluator and MVA settings are honoured; search-related
// fields are ignored). The closed-chain model is constructed at the
// all-ones window vector purely to fix its structure — windows enter only
// as chain populations afterwards.
func NewEngine(n *netmodel.Network, opts Options) (*Engine, error) {
	nCls := len(n.Classes)
	ones := numeric.NewIntVector(nCls)
	for i := range ones {
		ones[i] = 1
	}
	model, excluded, err := n.ClosedModel(ones)
	if err != nil {
		return nil, err
	}
	ref := model
	if opts.Evaluator != EvalExactMVA {
		// The approximate paths run with Prevalidated set, so the checks
		// and the open-load reduction happen here, once.
		ref, err = mva.Prevalidate(model)
		if err != nil {
			return nil, err
		}
	}
	e := &Engine{
		opts:     opts,
		nCls:     nCls,
		ref:      ref,
		sparse:   qnet.Compile(ref),
		excluded: excluded,
		// The exact evaluator re-validates per call and ColdStart asks for
		// reproductions of the legacy cold trajectory, so neither seeds
		// from previous candidates.
		useWarm: opts.Evaluator != EvalExactMVA && !opts.ColdStart,
		// The exact recursion is iteration-free: there is nothing to fall
		// back from.
		useChain: opts.Evaluator != EvalExactMVA && !opts.DisableFallback,
	}
	if opts.Evaluator != EvalExactMVA {
		// Iteration-free exact evaluations cannot stall; the watchdog only
		// guards the fixed-point solvers.
		e.dog = newWatchdog(opts.EvalTimeout)
	}
	if opts.ExactEngine {
		if opts.OracleBox != nil {
			// A box-bounded oracle declines candidates an unbounded one
			// would serve, so it must never be shared through the cache.
			e.conv = newConvOracle(ref, opts.Workers, opts.OracleBox)
		} else {
			cache := opts.Oracles
			if cache == nil {
				cache = NewOracleCache(0)
			}
			e.conv = cache.oracleFor(ref, opts.Workers)
		}
	}
	e.pool.New = func() any {
		st := &evalState{
			model: qnet.Network{
				Stations: e.ref.Stations,
				Chains:   make([]qnet.Chain, len(e.ref.Chains)),
			},
			ws: mva.NewWorkspace(),
		}
		copy(st.model.Chains, e.ref.Chains)
		return st
	}
	return e, nil
}

// solve borrows nothing: st is caller-owned. It sets the populations and
// runs the configured solver, warm-seeded from the last committed base
// point when enabled. On a convergence failure the resilient fallback
// chain (fallback.go) takes over; the returned tier names who answered.
// Every tier is a deterministic function of (committed warm seed,
// candidate), so the chain preserves the engine's purity contract and the
// speculative-parallel search stays bit-identical to the serial one.
func (e *Engine) solve(st *evalState, windows numeric.IntVector) (*mva.Solution, FallbackTier, error) {
	if len(windows) != e.nCls {
		return nil, TierPrimary, fmt.Errorf("core: %d windows for %d classes", len(windows), e.nCls)
	}
	for r := range st.model.Chains {
		if windows[r] < 0 {
			return nil, TierPrimary, fmt.Errorf("core: negative window %d for class %d", windows[r], r)
		}
		st.model.Chains[r].Population = windows[r]
	}
	var warm *mva.WarmStart
	if e.useWarm {
		warm = e.warm.Load()
	}
	var began time.Time
	if e.dog != nil {
		began = time.Now()
	}
	budget := e.sweepBudget()
	var sol *mva.Solution
	var err error
	switch e.opts.Evaluator {
	case EvalExactMVA:
		if e.conv != nil {
			sol = e.conv.solve(&st.model)
		}
		if sol == nil {
			sol, err = mva.ExactMultichain(&st.model)
		}
	case EvalSchweitzerMVA:
		mo := e.opts.MVA
		mo.Method = mva.Schweitzer
		mo.Prevalidated = true
		mo.Workspace = st.ws
		mo.Warm = warm
		mo.Sparse = e.sparse
		mo.SweepBudget = budget
		sol, err = mva.Approximate(&st.model, mo)
	case EvalLinearizerMVA:
		mo := e.opts.MVA
		mo.Prevalidated = true
		mo.Warm = warm
		mo.Sparse = e.sparse
		mo.SweepBudget = budget
		sol, err = mva.Linearizer(&st.model, mo)
	default:
		mo := e.opts.MVA
		mo.Method = mva.SigmaHeuristic
		mo.Prevalidated = true
		mo.Workspace = st.ws
		mo.Warm = warm
		mo.Sparse = e.sparse
		mo.SweepBudget = budget
		sol, err = mva.Approximate(&st.model, mo)
	}
	if err == nil && e.dog != nil {
		e.dog.observe(time.Since(began))
	}
	if err != nil && e.useChain && errors.Is(err, mva.ErrNotConverged) {
		return e.solveFallback(st, warm, err)
	}
	return sol, TierPrimary, err
}

// sweepBudget returns a fresh per-solve watchdog budget for the mva
// solvers, or nil when the watchdog is disabled. The trip counter
// increments at most once per solve: the solver aborts on the first false.
func (e *Engine) sweepBudget() func(int) bool {
	if e.dog == nil {
		return nil
	}
	b := e.dog.budget()
	dog := e.dog
	return func(sweeps int) bool {
		if b(sweeps) {
			return true
		}
		dog.trips.Add(1)
		return false
	}
}

// WatchdogTrips reports how many candidate solves the per-candidate
// watchdog (Options.EvalTimeout) cut short into the fallback chain.
func (e *Engine) WatchdogTrips() int64 { return e.dog.Trips() }

// solveCounted is solve plus the per-tier bookkeeping shared by the
// public evaluation entry points.
func (e *Engine) solveCounted(st *evalState, windows numeric.IntVector) (*mva.Solution, FallbackTier, error) {
	sol, tier, err := e.solve(st, windows)
	if err == nil {
		e.tiers[tier].Add(1)
	}
	return sol, tier, err
}

// FallbackCounts reports how many successful evaluations each tier of the
// resilient chain has answered since the engine was built. Under
// speculative-parallel search the counts include discarded probes, like
// Result.NonConverged.
func (e *Engine) FallbackCounts() FallbackCounts {
	var c FallbackCounts
	for t := range e.tiers {
		c[t] = e.tiers[t].Load()
	}
	return c
}

// Evaluate solves the model at the given windows and returns freshly
// allocated power metrics (safe to retain).
func (e *Engine) Evaluate(windows numeric.IntVector) (*power.Metrics, error) {
	m, _, err := e.EvaluateWithTier(windows)
	return m, err
}

// EvaluateWithTier is Evaluate plus the fallback tier that answered —
// TierPrimary when the configured evaluator converged directly, a later
// tier when the resilient chain rescued the candidate.
func (e *Engine) EvaluateWithTier(windows numeric.IntVector) (*power.Metrics, FallbackTier, error) {
	st := e.pool.Get().(*evalState)
	defer e.pool.Put(st)
	sol, tier, err := e.solveCounted(st, windows)
	if err != nil {
		return nil, tier, err
	}
	m := &power.Metrics{}
	if err := power.FromSolutionInto(m, &st.model, sol, e.excluded); err != nil {
		return nil, tier, err
	}
	return m, tier, nil
}

// ObjectiveValue returns the WINDIM objective (1/power under the chosen
// criterion) at the given windows. This is the search hot path: metrics
// land in the pooled state's recycled slices, so a steady-state call
// allocates nothing.
func (e *Engine) ObjectiveValue(windows numeric.IntVector, kind ObjectiveKind) (float64, error) {
	st := e.pool.Get().(*evalState)
	defer e.pool.Put(st)
	sol, _, err := e.solveCounted(st, windows)
	if err != nil {
		return 0, err
	}
	if err := power.FromSolutionInto(&st.metrics, &st.model, sol, e.excluded); err != nil {
		return 0, err
	}
	return objectiveValue(&st.metrics, kind), nil
}

// Commit promotes the solution at windows to the warm-start seed for
// subsequent evaluations. Intended as pattern.Options.OnCommit: the
// candidate was just accepted as a base point, its neighbours are the next
// probes, and no evaluation is in flight. The committed seed is re-solved
// from the PREVIOUS committed seed, so the warm chain depends only on the
// accepted trajectory — never on which speculative probes happened to run.
// A failed solve leaves the previous seed in place.
func (e *Engine) Commit(windows numeric.IntVector) {
	if !e.useWarm {
		return
	}
	st := e.pool.Get().(*evalState)
	defer e.pool.Put(st)
	sol, _, err := e.solve(st, windows)
	if err != nil {
		return
	}
	e.warm.Store(mva.WarmFromSolution(sol))
}

// ResetWarm discards the warm-start seed; the next evaluations use the
// cold initialisation until the next Commit.
func (e *Engine) ResetWarm() { e.warm.Store(nil) }
