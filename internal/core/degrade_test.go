package core

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/mva"
	"repro/internal/topo"
)

func TestScenarioHealthQuorum(t *testing.T) {
	h := newScenarioHealth([]string{"a", "b", "c"}, 2, 0)
	if err := h.degrade(1, "broken"); err != nil {
		t.Fatal(err)
	}
	if h.isActive(1) || !h.isActive(0) || !h.isActive(2) {
		t.Fatal("wrong scenario degraded")
	}
	// Degrading again is idempotent.
	if err := h.degrade(1, "again"); err != nil {
		t.Fatal(err)
	}
	// One more degradation would leave 1 < quorum 2: refused, scenario
	// stays active.
	if err := h.degrade(2, "also broken"); err == nil || !strings.Contains(err.Error(), "quorum") {
		t.Fatalf("quorum break not refused: %v", err)
	}
	if !h.isActive(2) {
		t.Fatal("refused degradation still deactivated the scenario")
	}
	d := h.degraded()
	if len(d) != 1 || d[0].Index != 1 || d[0].Name != "b" || d[0].Reason != "broken" {
		t.Fatalf("degraded list: %+v", d)
	}
}

func TestScenarioHealthStrikes(t *testing.T) {
	h := newScenarioHealth([]string{"a", "b"}, 1, 3)
	for i := 0; i < 2; i++ {
		if err := h.strike(0, "did not converge"); err != nil {
			t.Fatal(err)
		}
		if !h.isActive(0) {
			t.Fatalf("degraded after %d strikes, threshold is 3", i+1)
		}
	}
	if err := h.strike(0, "did not converge"); err != nil {
		t.Fatal(err)
	}
	if h.isActive(0) {
		t.Fatal("still active after 3 strikes")
	}
	d := h.degraded()
	if len(d) != 1 || !strings.Contains(d[0].Reason, "3 non-converged") {
		t.Fatalf("strike-out reason: %+v", d)
	}
	// Disabled strike counting never degrades.
	h2 := newScenarioHealth([]string{"a"}, 1, 0)
	for i := 0; i < 100; i++ {
		if err := h2.strike(0, "x"); err != nil {
			t.Fatal(err)
		}
	}
	if !h2.isActive(0) {
		t.Fatal("DegradeAfter=0 degraded a scenario")
	}
}

func TestScenarioHealthAuxRoundTrip(t *testing.T) {
	h := newScenarioHealth([]string{"a", "b", "c"}, 1, 5)
	if err := h.degrade(2, "dead"); err != nil {
		t.Fatal(err)
	}
	if err := h.strike(0, "slow"); err != nil {
		t.Fatal(err)
	}
	aux := h.snapshotAux()

	restored := newScenarioHealth([]string{"a", "b", "c"}, 1, 5)
	if err := restored.restoreAux(aux); err != nil {
		t.Fatal(err)
	}
	if restored.isActive(2) || !restored.isActive(0) || !restored.isActive(1) {
		t.Fatal("active set not restored")
	}
	if restored.strikes[0] != 1 {
		t.Errorf("strikes not restored: %v", restored.strikes)
	}
	d := restored.degraded()
	if len(d) != 1 || d[0].Reason != "dead" {
		t.Fatalf("reasons not restored: %+v", d)
	}

	// Empty Aux (pre-commit checkpoint, or a non-robust one) is a no-op.
	fresh := newScenarioHealth([]string{"a"}, 1, 0)
	if err := fresh.restoreAux(nil); err != nil {
		t.Fatal(err)
	}
	if !fresh.isActive(0) {
		t.Fatal("empty aux changed state")
	}
	// Wrong scenario count is rejected.
	if err := fresh.restoreAux(aux); err == nil {
		t.Error("aux for 3 scenarios restored into 1")
	}
	// A restored state below the quorum is rejected.
	strict := newScenarioHealth([]string{"a", "b", "c"}, 3, 0)
	if err := strict.restoreAux(aux); err == nil || !strings.Contains(err.Error(), "quorum") {
		t.Errorf("below-quorum aux accepted: %v", err)
	}
	// Garbage is rejected.
	if err := fresh.restoreAux(json.RawMessage(`{"active": "yes"}`)); err == nil {
		t.Error("malformed aux accepted")
	}
}

// TestDimensionWatchdogRescuesStalls: an absurdly small EvalTimeout makes
// every fixed-point solve trip the watchdog; the fallback chain's exact
// tier (iteration-free, not subject to the deadline) still answers every
// candidate, so the run completes with trips and fallbacks on record
// instead of hanging or dying.
func TestDimensionWatchdogRescuesStalls(t *testing.T) {
	n := topo.Canada2Class(20, 20)
	res, err := Dimension(n, Options{EvalTimeout: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.WatchdogTrips == 0 {
		t.Error("1ns allowance tripped no watchdog")
	}
	if res.Fallbacks[TierExact] == 0 {
		t.Errorf("no candidate reached the exact tier: %v", res.Fallbacks)
	}
	if res.Metrics == nil || res.Metrics.Power <= 0 {
		t.Fatalf("no usable result under the watchdog: %+v", res.Metrics)
	}
}

// TestDimensionRobustWatchdogQuorum: with the fallback chain disabled every
// watchdog trip is a post-fallback convergence failure; one strike degrades
// the first scenario it hits, and with the quorum at the full set that
// degradation is refused — the run aborts with the quorum error instead of
// optimising against a hollowed-out set.
func TestDimensionRobustWatchdogQuorum(t *testing.T) {
	n := topo.Canada2Class(20, 20)
	scenarios := twoScenarioSet(0.4)
	_, err := DimensionRobust(n, scenarios, RobustMinimax, Options{
		EvalTimeout:     time.Nanosecond,
		DisableFallback: true,
		DegradeAfter:    1,
		MinScenarios:    2,
	})
	if err == nil || !strings.Contains(err.Error(), "quorum") {
		t.Fatalf("want quorum error, got %v", err)
	}
	// A quorum larger than the scenario set is rejected up front.
	if _, err := DimensionRobust(n, scenarios, RobustMinimax, Options{MinScenarios: 3}); err == nil {
		t.Error("quorum 3 of 2 scenarios accepted")
	}
}

// TestDimensionRobustSelectiveDegradation: a live end-to-end run in which
// exactly one scenario stops converging mid-search. Under a tight sweep
// budget with the fallback chain off, the lightly-cut trunk (0.15) needs
// more fixed-point sweeps than the deeply-cut one (0.10) — it converges at
// the start candidate but fails on a later one. With DegradeAfter 1 the
// failing scenario is excluded with a recorded reason and the search still
// returns a usable optimum over the survivor.
func TestDimensionRobustSelectiveDegradation(t *testing.T) {
	n := topo.Canada2Class(20, 20)
	mk := func(name string, cut float64) Scenario {
		sc := Scenario{Name: name, CapacityScale: ones(len(n.Channels))}
		sc.CapacityScale[topo.ChWT] = cut
		return sc
	}
	scenarios := []Scenario{mk("deep-cut", 0.10), mk("shallow-cut", 0.15)}
	res, err := DimensionRobust(n, scenarios, RobustMinimax, Options{
		DisableFallback: true,
		DegradeAfter:    1,
		MinScenarios:    1,
		MVA:             mva.Options{MaxIter: 20},
	})
	if err != nil {
		t.Fatalf("DimensionRobust: %v", err)
	}
	if len(res.Degraded) != 1 {
		t.Fatalf("want exactly one degraded scenario, got %+v", res.Degraded)
	}
	d := res.Degraded[0]
	if d.Index != 1 || d.Name != "shallow-cut" {
		t.Errorf("wrong scenario degraded: %+v", d)
	}
	if !strings.Contains(d.Reason, "non-converged") {
		t.Errorf("reason does not record the convergence failure: %q", d.Reason)
	}
	// The degraded scenario is absent from the final report...
	if res.PerScenario[1] != nil {
		t.Errorf("degraded scenario has final metrics: %+v", res.PerScenario[1])
	}
	if !math.IsNaN(res.ScenarioPower[1]) {
		t.Errorf("degraded scenario power = %v, want NaN", res.ScenarioPower[1])
	}
	// ...and the survivor carries the optimum.
	if res.WorstScenario != 0 {
		t.Errorf("worst scenario = %d, want 0", res.WorstScenario)
	}
	if res.PerScenario[0] == nil || res.PerScenario[0].Power <= 0 {
		t.Errorf("surviving scenario has no usable metrics: %+v", res.PerScenario[0])
	}
	if len(res.Windows) != len(n.Classes) {
		t.Errorf("windows %v", res.Windows)
	}
}
