package core

import (
	"math"
	"sync/atomic"
	"time"
)

// Per-candidate watchdog tuning.
const (
	// watchdogFactor scales the rolling mean solve time into the
	// per-candidate allowance: a candidate may take this many times the
	// recent average before the watchdog calls its fixed point stalled.
	// Generous on purpose — legitimate candidates near saturation need
	// several times the typical sweep count, and a premature trip only
	// costs a fallback-tier solve, not correctness.
	watchdogFactor = 8
	// watchdogAlpha is the EWMA weight of the newest observation in the
	// rolling cost estimate.
	watchdogAlpha = 0.2
)

// watchdog converts overlong candidate evaluations into convergence
// failures. Each solve gets a deadline of max(floor, watchdogFactor ×
// rolling mean of recent successful solve times); the deadline is polled
// through mva.Options.SweepBudget, so a trip surfaces as ErrNotConverged
// and flows into the resilient fallback chain (each tier gets a fresh
// allowance) instead of hanging the search.
//
// A tripped watchdog trades bit-reproducibility for liveness: whether a
// slow-but-convergent candidate is answered by the primary solver or a
// fallback tier now depends on wall-clock speed. The tiers agree within
// the solver tolerance wherever both converge, but runs on differently
// loaded machines may no longer be bit-identical — which is why the
// watchdog is off by default and enabled explicitly (Options.EvalTimeout).
type watchdog struct {
	floor time.Duration
	// meanNs is the EWMA of successful solve durations in nanoseconds,
	// stored as float64 bits. Zero means no observation yet.
	meanNs atomic.Uint64
	trips  atomic.Int64
}

func newWatchdog(floor time.Duration) *watchdog {
	if floor <= 0 {
		return nil
	}
	return &watchdog{floor: floor}
}

// allowance returns the current per-solve deadline budget.
func (w *watchdog) allowance() time.Duration {
	m := math.Float64frombits(w.meanNs.Load())
	a := time.Duration(watchdogFactor * m)
	if a < w.floor {
		return w.floor
	}
	return a
}

// observe folds a successful solve's duration into the rolling estimate.
func (w *watchdog) observe(d time.Duration) {
	nd := float64(d.Nanoseconds())
	for {
		old := w.meanNs.Load()
		m := math.Float64frombits(old)
		if m == 0 {
			m = nd
		} else {
			m = watchdogAlpha*nd + (1-watchdogAlpha)*m
		}
		if w.meanNs.CompareAndSwap(old, math.Float64bits(m)) {
			return
		}
	}
}

// budget returns a fresh mva.Options.SweepBudget closure holding one
// solve's deadline. Safe under concurrent solves: each caller gets its own
// deadline.
func (w *watchdog) budget() func(int) bool {
	if w == nil {
		return nil
	}
	deadline := time.Now().Add(w.allowance())
	return func(int) bool { return time.Now().Before(deadline) }
}

// Trips reports how many solves the watchdog has cut short.
func (w *watchdog) Trips() int64 {
	if w == nil {
		return 0
	}
	return w.trips.Load()
}
