package core

import (
	"testing"

	"repro/internal/numeric"
	"repro/internal/topo"
)

func TestDimensionWithBufferLimits(t *testing.T) {
	n := topo.Canada2Class(20, 20)
	// Unconstrained optimum is (4,4). Winnipeg and Toronto are transit
	// nodes for both classes; capping them at 4 forces E1+E2 <= 4.
	limits := make([]int, 6)
	limits[2] = 4 // Winnipeg
	limits[3] = 4 // Toronto
	res, err := Dimension(n, Options{BufferLimits: limits})
	if err != nil {
		t.Fatal(err)
	}
	if res.Windows[0]+res.Windows[1] > 4 {
		t.Errorf("windows %v violate the buffer constraint", res.Windows)
	}
	free, err := Dimension(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Power > free.Metrics.Power {
		t.Errorf("constrained power %v exceeds unconstrained %v", res.Metrics.Power, free.Metrics.Power)
	}
	if res.Metrics.Power <= 0 {
		t.Errorf("constrained power %v", res.Metrics.Power)
	}
}

func TestDimensionBufferLimitsWorstCaseSemantics(t *testing.T) {
	// Sinks never store: a cap on Ottawa (class 1's sink, unused
	// otherwise) must not constrain anything.
	n := topo.Canada2Class(20, 20)
	limits := make([]int, 6)
	limits[5] = 1 // Ottawa
	res, err := Dimension(n, Options{BufferLimits: limits})
	if err != nil {
		t.Fatal(err)
	}
	free, err := Dimension(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Windows.Equal(free.Windows) {
		t.Errorf("sink cap changed the answer: %v vs %v", res.Windows, free.Windows)
	}
}

func TestDimensionBufferLimitsInfeasible(t *testing.T) {
	n := topo.Canada2Class(20, 20)
	limits := make([]int, 6)
	limits[2] = 1 // Winnipeg carries both classes: needs >= 2
	if _, err := Dimension(n, Options{BufferLimits: limits}); err == nil {
		t.Fatal("expected infeasibility error")
	}
	if _, err := Dimension(n, Options{BufferLimits: []int{1}}); err == nil {
		t.Fatal("expected length error")
	}
}

func TestDimensionBufferLimitsInfeasibleStartRecovers(t *testing.T) {
	// Hop-count start (4,4) violates a total cap of 3 at Winnipeg; the
	// search must recover from the all-ones start.
	n := topo.Canada2Class(20, 20)
	limits := make([]int, 6)
	limits[2] = 3
	res, err := Dimension(n, Options{BufferLimits: limits})
	if err != nil {
		t.Fatal(err)
	}
	if res.Windows[0]+res.Windows[1] > 3 {
		t.Errorf("windows %v violate cap 3", res.Windows)
	}
	// It should use the full budget (1,2) or (2,1) rather than (1,1).
	if res.Windows.Sum() < 3 {
		m11, err := Evaluate(n, numeric.IntVector{1, 1}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Metrics.Power < m11.Power {
			t.Errorf("constrained search under-uses the budget: %v", res.Windows)
		}
	}
}
