package core

import (
	"context"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/numeric"
	"repro/internal/pattern"
	"repro/internal/topo"
)

// cancelAfterCommits wires the onCommit test hook to a context that dies
// once the pattern search has committed n base points — a deterministic
// stand-in for kill -9 at a known depth of the trajectory.
func cancelAfterCommits(n int, opts *Options) {
	ctx, cancel := context.WithCancel(context.Background())
	commits := 0
	opts.Context = ctx
	opts.OnCommit = func(numeric.IntVector, float64) {
		commits++
		if commits >= n {
			cancel()
		}
	}
}

// TestDimensionCheckpointResume is the tentpole's acceptance test: kill a
// dimensioning run after K commits, resume from the checkpoint, and land on
// windows and objective bit-identical to the uninterrupted run — serially
// and at Workers > 1, in every combination of interrupted and resumed
// worker counts the cache replay claims to support.
func TestDimensionCheckpointResume(t *testing.T) {
	n := topo.Canada2Class(20, 20)
	// Start far from the optimum so the search commits several base points
	// (the hop-count start is already optimal and commits only once).
	far := func() Options {
		return Options{
			InitialWindows: numeric.IntVector{16, 16},
			InitialStep:    numeric.IntVector{4, 4},
		}
	}
	ref, err := Dimension(n, far())
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Search.BasePoints) < 3 {
		t.Fatalf("reference run commits %d base points; the kill depths below need 3+", len(ref.Search.BasePoints))
	}
	for _, workers := range []int{1, 8} {
		for _, killAt := range []int{1, 2} {
			path := filepath.Join(t.TempDir(), "windim.ckpt")
			interrupted := far()
			interrupted.Workers = workers
			interrupted.CheckpointPath = path
			cancelAfterCommits(killAt, &interrupted)
			res, err := Dimension(n, interrupted)
			if err == nil {
				t.Fatalf("workers=%d killAt=%d: cancelled run returned nil error", workers, killAt)
			}
			if res == nil || res.Windows == nil {
				t.Fatalf("workers=%d killAt=%d: no best-so-far result", workers, killAt)
			}
			// Resume at the OTHER worker count: the checkpoint must be
			// interchangeable across parallelism.
			ropts := far()
			ropts.Workers = 9 - workers
			ropts.ResumePath = path
			resumed, err := Dimension(n, ropts)
			if err != nil {
				t.Fatalf("workers=%d killAt=%d: resume: %v", workers, killAt, err)
			}
			if !resumed.Windows.Equal(ref.Windows) {
				t.Errorf("workers=%d killAt=%d: resumed windows %v, uninterrupted %v",
					workers, killAt, resumed.Windows, ref.Windows)
			}
			if math.Float64bits(resumed.Search.BestValue) != math.Float64bits(ref.Search.BestValue) {
				t.Errorf("workers=%d killAt=%d: resumed objective %v, uninterrupted %v",
					workers, killAt, resumed.Search.BestValue, ref.Search.BestValue)
			}
			if math.Float64bits(resumed.Metrics.Power) != math.Float64bits(ref.Metrics.Power) {
				t.Errorf("workers=%d killAt=%d: resumed power %v, uninterrupted %v",
					workers, killAt, resumed.Metrics.Power, ref.Metrics.Power)
			}
			if resumed.Search.Evaluations >= ref.Search.Evaluations {
				t.Errorf("workers=%d killAt=%d: resume spent %d evaluations, uninterrupted %d — cache not replayed",
					workers, killAt, resumed.Search.Evaluations, ref.Search.Evaluations)
			}
		}
	}
}

// TestDimensionResumeRejectsMismatch: a checkpoint written for different
// options or a different network must not seed a resume.
// TestDimensionCheckpointFullEvery: the delta cadence plumbs through to
// the pattern layer — the sidecar appears during the run, the resumed
// search is bit-identical, and a finished run retires the sidecar.
// (Cancellation writes a final FULL snapshot, so crash-resume through the
// snapshot+delta merge itself is covered at the pattern layer, where a
// hard objective failure can be injected.)
func TestDimensionCheckpointFullEvery(t *testing.T) {
	n := topo.Canada2Class(20, 20)
	far := func() Options {
		return Options{
			InitialWindows:      numeric.IntVector{16, 16},
			InitialStep:         numeric.IntVector{4, 4},
			CheckpointFullEvery: 4,
		}
	}
	ref, err := Dimension(n, Options{
		InitialWindows: numeric.IntVector{16, 16},
		InitialStep:    numeric.IntVector{4, 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "windim.ckpt")
	opts := far()
	opts.CheckpointPath = path
	sidecarSeen := false
	cancelAfterCommits(2, &opts)
	inner := opts.OnCommit
	opts.OnCommit = func(x numeric.IntVector, fx float64) {
		if _, err := os.Stat(path + ".delta"); err == nil {
			sidecarSeen = true
		}
		inner(x, fx)
	}
	if _, err := Dimension(n, opts); err == nil {
		t.Fatal("cancelled run returned nil error")
	}
	if !sidecarSeen {
		t.Error("delta sidecar never appeared during the run")
	}
	ropts := far()
	ropts.CheckpointPath = path // keep checkpointing: the finished run must retire the sidecar
	ropts.ResumePath = path
	resumed, err := Dimension(n, ropts)
	if err != nil {
		t.Fatal(err)
	}
	if !resumed.Windows.Equal(ref.Windows) ||
		math.Float64bits(resumed.Search.BestValue) != math.Float64bits(ref.Search.BestValue) {
		t.Errorf("resumed windows %v (%v), uninterrupted %v (%v)",
			resumed.Windows, resumed.Search.BestValue, ref.Windows, ref.Search.BestValue)
	}
	if _, err := os.Stat(path + ".delta"); !os.IsNotExist(err) {
		t.Errorf("sidecar survived normal termination (stat err %v)", err)
	}
}

func TestDimensionResumeRejectsMismatch(t *testing.T) {
	n := topo.Canada2Class(20, 20)
	path := filepath.Join(t.TempDir(), "windim.ckpt")
	if _, err := Dimension(n, Options{CheckpointPath: path}); err != nil {
		t.Fatal(err)
	}
	if _, err := Dimension(n, Options{ResumePath: path, MaxWindow: 32}); err == nil {
		t.Error("resume with different MaxWindow accepted")
	}
	if _, err := Dimension(topo.Canada2Class(25, 25), Options{ResumePath: path}); err == nil {
		t.Error("resume against a different network accepted")
	}
	// The happy path still round-trips.
	if _, err := Dimension(n, Options{ResumePath: path}); err != nil {
		t.Errorf("matching resume rejected: %v", err)
	}
}

// TestDimensionResumeMissingFile: "resume" from nothing is an error, not a
// silent fresh start.
func TestDimensionResumeMissingFile(t *testing.T) {
	n := topo.Canada2Class(20, 20)
	path := filepath.Join(t.TempDir(), "nope.ckpt")
	if _, err := Dimension(n, Options{ResumePath: path}); err == nil {
		t.Fatal("missing checkpoint accepted")
	}
}

// TestDimensionCheckpointExhaustiveRejected: only the pattern search has
// commit points to checkpoint at.
func TestDimensionCheckpointExhaustiveRejected(t *testing.T) {
	n := topo.Canada2Class(20, 20)
	path := filepath.Join(t.TempDir(), "windim.ckpt")
	if _, err := Dimension(n, Options{Search: ExhaustiveSearch, CheckpointPath: path}); err == nil {
		t.Fatal("exhaustive checkpointing accepted")
	}
}

// TestDimensionRobustCheckpointResume: the robust run's checkpoint carries
// the per-scenario health in Aux, its hash covers the scenario set, and a
// killed run resumes to the bit-identical robust windows.
func TestDimensionRobustCheckpointResume(t *testing.T) {
	n := topo.Canada2Class(20, 20)
	scenarios := twoScenarioSet(0.4)
	ref, err := DimensionRobust(n, scenarios, RobustMinimax, Options{})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "robust.ckpt")
	interrupted := Options{CheckpointPath: path}
	cancelAfterCommits(1, &interrupted)
	if _, err := DimensionRobust(n, scenarios, RobustMinimax, interrupted); err == nil {
		t.Fatal("cancelled robust run returned nil error")
	}
	// The scenario set is part of the hash: a different set must be
	// rejected.
	if _, err := DimensionRobust(n, twoScenarioSet(0.5), RobustMinimax, Options{ResumePath: path}); err == nil {
		t.Error("resume with a different scenario set accepted")
	}
	// The robust kind is part of the hash too.
	if _, err := DimensionRobust(n, scenarios, RobustWeighted, Options{ResumePath: path}); err == nil {
		t.Error("resume with a different robust criterion accepted")
	}
	// And a robust checkpoint must not seed a nominal Dimension run.
	if _, err := Dimension(n, Options{ResumePath: path}); err == nil {
		t.Error("nominal resume from a robust checkpoint accepted")
	}
	res, err := DimensionRobust(n, scenarios, RobustMinimax, Options{ResumePath: path})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Windows.Equal(ref.Windows) {
		t.Errorf("resumed robust windows %v, uninterrupted %v", res.Windows, ref.Windows)
	}
	if math.Float64bits(res.WorstPower) != math.Float64bits(ref.WorstPower) {
		t.Errorf("resumed worst power %v, uninterrupted %v", res.WorstPower, ref.WorstPower)
	}
}

// TestDimensionRobustResumeRestoresDegradation: a checkpoint whose Aux
// marks a scenario degraded resumes with that scenario still excluded and
// reported, without re-fighting the lost battle.
func TestDimensionRobustResumeRestoresDegradation(t *testing.T) {
	n := topo.Canada2Class(20, 20)
	scenarios := twoScenarioSet(0.4)
	path := filepath.Join(t.TempDir(), "robust.ckpt")
	interrupted := Options{CheckpointPath: path}
	cancelAfterCommits(1, &interrupted)
	if _, err := DimensionRobust(n, scenarios, RobustMinimax, interrupted); err == nil {
		t.Fatal("cancelled robust run returned nil error")
	}
	// Inject a degradation into the checkpoint's Aux — the editable part a
	// crashed run would have recorded had the scenario died before the kill.
	ck, err := pattern.LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	health := newScenarioHealth([]string{scenarios[0].Name, scenarios[1].Name}, 1, 0)
	if err := health.degrade(1, "injected for test"); err != nil {
		t.Fatal(err)
	}
	ck.Aux = health.snapshotAux()
	if err := ck.Save(path); err != nil {
		t.Fatal(err)
	}
	res, err := DimensionRobust(n, scenarios, RobustMinimax, Options{ResumePath: path})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Degraded) != 1 || res.Degraded[0].Index != 1 || res.Degraded[0].Reason != "injected for test" {
		t.Fatalf("degradation not restored: %+v", res.Degraded)
	}
	if res.PerScenario[1] != nil || !math.IsNaN(res.ScenarioPower[1]) {
		t.Errorf("degraded scenario still reported metrics: %+v", res.ScenarioPower)
	}
	if res.WorstScenario != 0 || res.WorstPower <= 0 {
		t.Errorf("active scenario missing from result: worst=%d power=%v", res.WorstScenario, res.WorstPower)
	}
	// A quorum the restored state cannot meet is rejected up front.
	if _, err := DimensionRobust(n, scenarios, RobustMinimax, Options{ResumePath: path, MinScenarios: 2}); err == nil {
		t.Error("resume below quorum accepted")
	}
}
