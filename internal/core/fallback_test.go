package core

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/mva"
	"repro/internal/numeric"
	"repro/internal/topo"
)

// TestFallbackTierExact forces every iterative tier to fail (one sweep is
// never enough to meet a 1e-8 tolerance from a cold start) and checks the
// chain lands on the exact recursion, tagging tier and solver.
func TestFallbackTierExact(t *testing.T) {
	n := topo.Canada2Class(20, 20)
	for _, ev := range []Evaluator{EvalSigmaMVA, EvalSchweitzerMVA, EvalLinearizerMVA} {
		eng, err := NewEngine(n, Options{
			Evaluator: ev,
			MVA:       mva.Options{MaxIter: 1},
		})
		if err != nil {
			t.Fatal(err)
		}
		m, tier, err := eng.EvaluateWithTier(numeric.IntVector{4, 4})
		if err != nil {
			t.Fatalf("%v: fallback chain failed: %v", ev, err)
		}
		if tier != TierExact {
			t.Fatalf("%v: answered by tier %v, want %v", ev, tier, TierExact)
		}
		if m == nil || m.Power <= 0 {
			t.Fatalf("%v: degenerate metrics %+v", ev, m)
		}
		counts := eng.FallbackCounts()
		if counts[TierExact] != 1 || counts.Rescued() != 1 {
			t.Fatalf("%v: counts %v, want one exact rescue", ev, counts)
		}
	}
}

// TestFallbackAgreesWithConverged checks the rescue is not just an answer
// but the RIGHT answer: the exact tier's metrics at a candidate must match
// a healthy solver's metrics at the same candidate.
func TestFallbackAgreesWithConverged(t *testing.T) {
	n := topo.Canada2Class(20, 20)
	w := numeric.IntVector{4, 4}
	broken, err := NewEngine(n, Options{Evaluator: EvalSchweitzerMVA, MVA: mva.Options{MaxIter: 1}})
	if err != nil {
		t.Fatal(err)
	}
	rescued, tier, err := broken.EvaluateWithTier(w)
	if err != nil {
		t.Fatal(err)
	}
	if tier != TierExact {
		t.Fatalf("tier %v, want exact", tier)
	}
	exact, err := Evaluate(n, w, Options{Evaluator: EvalExactMVA})
	if err != nil {
		t.Fatal(err)
	}
	if diff := rescued.Power - exact.Power; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("rescued power %v vs exact %v", rescued.Power, exact.Power)
	}
}

// TestFallbackDisabled checks DisableFallback restores the old behaviour:
// the convergence failure surfaces unrescued.
func TestFallbackDisabled(t *testing.T) {
	n := topo.Canada2Class(20, 20)
	eng, err := NewEngine(n, Options{
		Evaluator:       EvalSchweitzerMVA,
		MVA:             mva.Options{MaxIter: 1},
		DisableFallback: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, tier, err := eng.EvaluateWithTier(numeric.IntVector{4, 4})
	if !errors.Is(err, mva.ErrNotConverged) {
		t.Fatalf("want ErrNotConverged, got %v", err)
	}
	if tier != TierPrimary {
		t.Fatalf("tier %v on a disabled chain", tier)
	}
}

// TestFallbackSolverTag checks the Solution.Solver tier suffix on the
// damped retry: MaxIter large enough for the damped pass to converge is
// hard to force directly, so probe via mva directly that tags survive, and
// via the chain that exact runs carry the fallback marker.
func TestFallbackSolverTag(t *testing.T) {
	n := topo.Canada2Class(20, 20)
	model, _, err := n.ClosedModel(numeric.IntVector{4, 4})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := mva.Approximate(model, mva.Options{Method: mva.Schweitzer})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Solver != "schweitzer" {
		t.Fatalf("primary solver tag %q", sol.Solver)
	}
	exact, err := mva.ExactMultichain(model)
	if err != nil {
		t.Fatal(err)
	}
	if exact.Solver != "exact-mva" {
		t.Fatalf("exact solver tag %q", exact.Solver)
	}
	lin, err := mva.Linearizer(model, mva.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(lin.Solver, "linearizer") {
		t.Fatalf("linearizer solver tag %q", lin.Solver)
	}
}

// TestDimensionThroughFallback is the acceptance scenario: a dimensioning
// run whose every candidate fails the primary (and damped, and Linearizer)
// solve still completes via the exact tier, and the Result records the
// rescues.
func TestDimensionThroughFallback(t *testing.T) {
	n := topo.Canada2Class(20, 20)
	res, err := Dimension(n, Options{
		Evaluator: EvalSchweitzerMVA,
		MaxWindow: 8,
		MVA:       mva.Options{MaxIter: 1},
	})
	if err != nil {
		t.Fatalf("dimensioning did not survive the failing solver: %v", err)
	}
	if res.NonConverged != 0 {
		t.Fatalf("%d candidates left non-converged despite the chain", res.NonConverged)
	}
	if res.Fallbacks.Rescued() == 0 {
		t.Fatal("no rescues recorded")
	}
	if res.Fallbacks[TierPrimary] != 0 {
		t.Fatalf("primary tier answered %d times with a one-sweep budget", res.Fallbacks[TierPrimary])
	}
	// The rescued run must land on the same windows a healthy run finds.
	healthy, err := Dimension(n, Options{Evaluator: EvalSchweitzerMVA, MaxWindow: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Windows.Equal(healthy.Windows) {
		t.Fatalf("rescued optimum %v vs healthy %v", res.Windows, healthy.Windows)
	}
}

// countdownCtx cancels after a fixed number of Err() polls, making
// mid-search cancellation deterministic.
type countdownCtx struct {
	mu        sync.Mutex
	remaining int
}

func (c *countdownCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *countdownCtx) Done() <-chan struct{}       { return nil }
func (c *countdownCtx) Value(any) any               { return nil }
func (c *countdownCtx) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.remaining <= 0 {
		return context.Canceled
	}
	c.remaining--
	return nil
}

// TestDimensionCancelledBestSoFar checks the tentpole's cancellation
// contract end to end: a context that dies mid-search still yields the
// best window vector committed so far, with metrics, plus the ctx error.
func TestDimensionCancelledBestSoFar(t *testing.T) {
	n := topo.Canada2Class(20, 20)
	// Enough polls for the initial evaluation and first commit (one
	// pattern-eval poll plus at most a few in-solver polls), far too few
	// for the search to finish (a full canada2 run makes 13+ polls).
	res, err := Dimension(n, Options{Context: &countdownCtx{remaining: 5}})
	if err == nil {
		t.Fatal("cancelled dimensioning returned nil error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	if res == nil || res.Windows == nil {
		t.Fatalf("no best-so-far result: %+v", res)
	}
	if res.Metrics == nil || res.Metrics.Power <= 0 {
		t.Fatalf("best-so-far point has no usable metrics: %+v", res.Metrics)
	}
}

// TestDimensionCancelledBeforeStart: cancellation before any evaluation is
// terminal — no partial result exists to return.
func TestDimensionCancelledBeforeStart(t *testing.T) {
	n := topo.Canada2Class(20, 20)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Dimension(n, Options{Context: ctx})
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if res != nil {
		t.Fatalf("result %+v from a never-started search", res)
	}
}

// TestDimensionUncancelledContext: a live context must not change the
// result at all.
func TestDimensionUncancelledContext(t *testing.T) {
	n := topo.Canada2Class(20, 20)
	plain, err := Dimension(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctxed, err := Dimension(n, Options{Context: context.Background()})
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Windows.Equal(ctxed.Windows) {
		t.Fatalf("context changed the optimum: %v vs %v", plain.Windows, ctxed.Windows)
	}
	if plain.Search.Evaluations != ctxed.Search.Evaluations {
		t.Fatalf("context changed the trajectory: %d vs %d evaluations",
			plain.Search.Evaluations, ctxed.Search.Evaluations)
	}
}
