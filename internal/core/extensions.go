package core

// Extensions beyond the thesis's WINDIM: Chapter 5 names the dimensioning
// of local (buffer) and isarithmic (global permit) flow-control limits as
// the natural next steps. This file provides both, built on the
// repository's simulator and exact solvers:
//
//   - DimensionIsarithmic searches the global permit pool size for
//     maximum simulated power (no product-form model exists for
//     isarithmic control, so the evaluator is the simulator);
//   - SizeBuffers derives per-node storage limits K_i from simulated
//     occupancy distributions;
//   - ChannelQueueQuantiles derives per-channel queue-length quantiles
//     from the exact product-form marginal distributions (convolution
//     algorithm), the analytic counterpart for the windowed network.

import (
	"fmt"

	"repro/internal/convolution"
	"repro/internal/netmodel"
	"repro/internal/numeric"
	"repro/internal/pattern"
	"repro/internal/sim"
)

// IsarithmicResult reports a permit-pool dimensioning run.
type IsarithmicResult struct {
	// Permits is the power-optimal pool size.
	Permits int
	// Power is the simulated power at Permits.
	Power float64
	// Evaluations counts simulation runs.
	Evaluations int
}

// DimensionIsarithmic finds the isarithmic permit pool size that
// maximises simulated network power, holding the per-class windows of
// simCfg fixed (set them to 0 to study pure isarithmic control). The
// search is a 1-D pattern search over [1, maxPermits] with a common
// random seed across candidates. simCfg.Duration must be set; short
// durations trade accuracy for speed.
func DimensionIsarithmic(n *netmodel.Network, simCfg sim.Config, maxPermits int) (*IsarithmicResult, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	if maxPermits < 1 {
		return nil, fmt.Errorf("core: maxPermits must be >= 1, got %d", maxPermits)
	}
	res := &IsarithmicResult{}
	objective := func(x numeric.IntVector) (float64, error) {
		cfg := simCfg
		cfg.GlobalPermits = x[0]
		out, err := sim.Run(n, cfg)
		if err != nil {
			return 0, err
		}
		res.Evaluations++
		m := out.Power
		if m <= 0 {
			return 1e18, nil
		}
		return 1 / m, nil
	}
	// Start at the total hop count: one permit per hop of every route is
	// the isarithmic analogue of the hop-count window rule.
	start := n.HopVector().Sum()
	if start > maxPermits {
		start = maxPermits
	}
	sres, err := pattern.Search(objective, numeric.IntVector{start}, pattern.Options{
		InitialStep: numeric.IntVector{2},
		Hi:          numeric.IntVector{maxPermits},
		MaxHalvings: 2,
	})
	if err != nil {
		return nil, err
	}
	res.Permits = sres.Best[0]
	res.Power = 1 / sres.BestValue
	return res, nil
}

// SizeBuffers returns, per node, the smallest storage limit K_i whose
// simulated exceedance probability P(occupancy_i > K_i) is at most eps,
// under the given windows (nil = the network's own). This dimensions the
// local flow-control limits so that blocking is rare at the chosen
// windows — the interplay §2.3 warns about (windows larger than buffers
// make the end-to-end control "totally ineffective").
//
// Two caveats callers must respect:
//
//   - the quantiles are measured open-loop (no blocking); once the
//     limits are imposed, stalled channels concentrate occupancy
//     upstream, so the closed-loop performance can fall well short of
//     eps's promise. Verify with sim.Run using the returned limits and
//     tighten eps until the unconstrained power is recovered (see
//     examples/arpa);
//   - nodes that never store messages (pure sinks) size to 0, which
//     sim.Config interprets as "unlimited" — equivalent for such nodes.
func SizeBuffers(n *netmodel.Network, windows numeric.IntVector, eps float64, simCfg sim.Config) ([]int, error) {
	if eps <= 0 || eps >= 1 {
		return nil, fmt.Errorf("core: eps must be in (0, 1), got %v", eps)
	}
	cfg := simCfg
	cfg.Windows = windows
	cfg.NodeBuffers = nil // measure the unconstrained occupancy
	out, err := sim.Run(n, cfg)
	if err != nil {
		return nil, err
	}
	sizes := make([]int, len(out.NodeOccupancy))
	for i, hist := range out.NodeOccupancy {
		sizes[i] = quantileFromHistogram(hist, eps)
	}
	return sizes, nil
}

// quantileFromHistogram returns the smallest k with
// sum_{j>k} hist[j] <= eps.
func quantileFromHistogram(hist []float64, eps float64) int {
	tail := 0.0
	for _, p := range hist {
		tail += p
	}
	// tail currently ~1; walk k upward removing mass.
	for k := 0; k < len(hist); k++ {
		tail -= hist[k]
		if tail <= eps {
			return k
		}
	}
	return len(hist) - 1
}

// ChannelQueueQuantiles returns, per channel, the smallest k with
// P(queue length at the channel > k) <= eps under the exact product-form
// solution of the windowed closed model. Usable when the window lattice
// is small enough for the convolution algorithm.
func ChannelQueueQuantiles(n *netmodel.Network, windows numeric.IntVector, eps float64) ([]int, error) {
	if eps <= 0 || eps >= 1 {
		return nil, fmt.Errorf("core: eps must be in (0, 1), got %v", eps)
	}
	model, _, err := n.ClosedModel(windows)
	if err != nil {
		return nil, err
	}
	sol, err := convolution.Solve(model)
	if err != nil {
		return nil, err
	}
	quantiles := make([]int, len(n.Channels))
	for l := range n.Channels {
		quantiles[l] = quantileFromHistogram(sol.Marginal[l], eps)
	}
	return quantiles, nil
}
