package core

// Extensions beyond the thesis's WINDIM: Chapter 5 names the dimensioning
// of local (buffer) and isarithmic (global permit) flow-control limits as
// the natural next steps. This file provides both, built on the
// repository's simulator and exact solvers:
//
//   - DimensionIsarithmic searches the global permit pool size for
//     maximum simulated power (no product-form model exists for
//     isarithmic control, so the evaluator is the simulator, batched
//     over independent replications via sim.RunReplications);
//   - SizeBuffers derives per-node storage limits K_i from simulated
//     occupancy distributions;
//   - ChannelQueueQuantiles derives per-channel queue-length quantiles
//     from the exact product-form marginal distributions (convolution
//     algorithm), the analytic counterpart for the windowed network.

import (
	"context"
	"fmt"

	"repro/internal/convolution"
	"repro/internal/netmodel"
	"repro/internal/numeric"
	"repro/internal/pattern"
	"repro/internal/sim"
)

// ExtOptions configures the simulation-backed dimensioning extensions:
// every candidate (or measurement) runs Reps independent replications
// via sim.RunReplications across Workers goroutines, so the searches get
// replication-mean objectives with confidence intervals and multi-core
// speedup while staying deterministic at any worker count. The zero
// value reproduces the old single-run behaviour.
type ExtOptions struct {
	// Reps is the number of independent replications per simulation
	// (per-replication seeds derived with rng.SubSeed); <= 0 means 1.
	Reps int
	// Workers bounds the goroutines running replications; <= 0 means
	// Reps (fully parallel).
	Workers int
	// Context, when non-nil, cancels the run: between candidate
	// evaluations the pattern search returns best-so-far with a wrapped
	// context error, and a cancellation mid-batch aborts with the batch
	// error.
	Context context.Context
}

func (e ExtOptions) withDefaults() ExtOptions {
	if e.Reps <= 0 {
		e.Reps = 1
	}
	if e.Workers <= 0 {
		e.Workers = e.Reps
	}
	return e
}

// runBatch is the shared simulation body of the extensions: Reps
// replications of cfg, failures tolerated as long as at least one
// replication completes.
func (e ExtOptions) runBatch(n *netmodel.Network, cfg sim.Config) (*sim.BatchResult, error) {
	return sim.RunReplications(e.Context, n, cfg, e.Reps, e.Workers)
}

// IsarithmicResult reports a permit-pool dimensioning run.
type IsarithmicResult struct {
	// Permits is the power-optimal pool size.
	Permits int
	// Power is the simulated power at Permits (mean over replications),
	// with PowerCI95 the Student-t 95% half-width (0 for single
	// replications).
	Power     float64
	PowerCI95 float64
	// Reps is the number of completed replications behind each
	// candidate's power.
	Reps int
	// Evaluations counts candidate pool sizes simulated (each costing
	// Reps replications).
	Evaluations int
}

// DimensionIsarithmic finds the isarithmic permit pool size that
// maximises simulated network power, holding the per-class windows of
// simCfg fixed (set them to 0 to study pure isarithmic control). The
// search is a 1-D pattern search over [1, maxPermits] with a common
// random seed across candidates; each candidate's power is the mean of
// ext.Reps independent replications (common sub-seeds across candidates,
// so the comparison variance cancels). simCfg.Duration must be set;
// short durations and few replications trade accuracy for speed.
func DimensionIsarithmic(n *netmodel.Network, simCfg sim.Config, maxPermits int, ext ExtOptions) (*IsarithmicResult, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	if maxPermits < 1 {
		return nil, fmt.Errorf("core: maxPermits must be >= 1, got %d", maxPermits)
	}
	ext = ext.withDefaults()
	res := &IsarithmicResult{}
	objective := func(x numeric.IntVector) (float64, error) {
		cfg := simCfg
		cfg.GlobalPermits = x[0]
		out, err := ext.runBatch(n, cfg)
		if err != nil {
			return 0, err
		}
		res.Evaluations++
		m := out.Power
		if m <= 0 {
			return 1e18, nil
		}
		return 1 / m, nil
	}
	// Start at the total hop count: one permit per hop of every route is
	// the isarithmic analogue of the hop-count window rule.
	start := n.HopVector().Sum()
	if start > maxPermits {
		start = maxPermits
	}
	sres, err := pattern.Search(objective, numeric.IntVector{start}, pattern.Options{
		InitialStep: numeric.IntVector{2},
		Hi:          numeric.IntVector{maxPermits},
		MaxHalvings: 2,
		Context:     ext.Context,
	})
	if err != nil {
		return nil, err
	}
	res.Permits = sres.Best[0]
	res.Power = 1 / sres.BestValue
	// One final batch at the optimum for the confidence interval and the
	// completed-replication count (the search tracks only means).
	cfg := simCfg
	cfg.GlobalPermits = res.Permits
	final, err := ext.runBatch(n, cfg)
	if err != nil {
		return nil, err
	}
	res.PowerCI95 = final.PowerCI95
	res.Reps = final.Completed
	return res, nil
}

// SizeBuffers returns, per node, the smallest storage limit K_i whose
// simulated exceedance probability P(occupancy_i > K_i) is at most eps,
// under the given windows (nil = the network's own). This dimensions the
// local flow-control limits so that blocking is rare at the chosen
// windows — the interplay §2.3 warns about (windows larger than buffers
// make the end-to-end control "totally ineffective").
//
// Two caveats callers must respect:
//
//   - the quantiles are measured open-loop (no blocking); once the
//     limits are imposed, stalled channels concentrate occupancy
//     upstream, so the closed-loop performance can fall well short of
//     eps's promise. Verify with sim.Run using the returned limits and
//     tighten eps until the unconstrained power is recovered (see
//     examples/arpa);
//   - nodes that never store messages (pure sinks) size to 0, which
//     sim.Config interprets as "unlimited" — equivalent for such nodes.
//
// With ext.Reps > 1 the occupancy distributions are averaged over the
// completed replications before the quantile is taken, so rare tail
// states are estimated from Reps times the sample mass of a single run.
func SizeBuffers(n *netmodel.Network, windows numeric.IntVector, eps float64, simCfg sim.Config, ext ExtOptions) ([]int, error) {
	if eps <= 0 || eps >= 1 {
		return nil, fmt.Errorf("core: eps must be in (0, 1), got %v", eps)
	}
	ext = ext.withDefaults()
	cfg := simCfg
	cfg.Windows = windows
	cfg.NodeBuffers = nil // measure the unconstrained occupancy
	batch, err := ext.runBatch(n, cfg)
	if err != nil {
		return nil, err
	}
	hists := averageOccupancy(batch, len(n.Nodes))
	sizes := make([]int, len(hists))
	for i, hist := range hists {
		sizes[i] = quantileFromHistogram(hist, eps)
	}
	return sizes, nil
}

// averageOccupancy averages the per-node occupancy histograms over the
// batch's completed replications (histograms may differ in length across
// replications; shorter ones contribute zero tail mass).
func averageOccupancy(batch *sim.BatchResult, nNodes int) [][]float64 {
	hists := make([][]float64, nNodes)
	for _, rep := range batch.Reps {
		if rep.Err != nil {
			continue
		}
		for i, h := range rep.Result.NodeOccupancy {
			if len(h) > len(hists[i]) {
				grown := make([]float64, len(h))
				copy(grown, hists[i])
				hists[i] = grown
			}
			for k, p := range h {
				hists[i][k] += p
			}
		}
	}
	inv := 1 / float64(batch.Completed)
	for i := range hists {
		for k := range hists[i] {
			hists[i][k] *= inv
		}
	}
	return hists
}

// quantileFromHistogram returns the smallest k with
// sum_{j>k} hist[j] <= eps.
func quantileFromHistogram(hist []float64, eps float64) int {
	tail := 0.0
	for _, p := range hist {
		tail += p
	}
	// tail currently ~1; walk k upward removing mass.
	for k := 0; k < len(hist); k++ {
		tail -= hist[k]
		if tail <= eps {
			return k
		}
	}
	return len(hist) - 1
}

// ChannelQueueQuantiles returns, per channel, the smallest k with
// P(queue length at the channel > k) <= eps under the exact product-form
// solution of the windowed closed model. Usable when the window lattice
// is small enough for the convolution algorithm.
func ChannelQueueQuantiles(n *netmodel.Network, windows numeric.IntVector, eps float64) ([]int, error) {
	if eps <= 0 || eps >= 1 {
		return nil, fmt.Errorf("core: eps must be in (0, 1), got %v", eps)
	}
	model, _, err := n.ClosedModel(windows)
	if err != nil {
		return nil, err
	}
	sol, err := convolution.Solve(model)
	if err != nil {
		return nil, err
	}
	quantiles := make([]int, len(n.Channels))
	for l := range n.Channels {
		quantiles[l] = quantileFromHistogram(sol.Marginal[l], eps)
	}
	return quantiles, nil
}
