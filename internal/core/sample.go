package core

import (
	"fmt"
	"math"

	"repro/internal/netmodel"
	"repro/internal/rng"
)

// Defaults for SampleOptions zero values.
const (
	sampleDefaultMaxDegradation = 0.5
	sampleDefaultMaxSurge       = 0.5
	sampleDefaultPerturbProb    = 0.35
)

// SampleOptions configures SampleScenarios.
type SampleOptions struct {
	// Count is the number of raw scenarios drawn (before dominance
	// pruning); must be >= 1.
	Count int
	// Seed drives the deterministic PCG sampling. Scenario i is drawn
	// from the SubSeed(Seed, i) stream, so scenario k is the same vector
	// whatever Count is — growing a set keeps its prefix.
	Seed uint64
	// MaxDegradation bounds how far a degraded channel's capacity falls:
	// scales are uniform on [1-MaxDegradation, 1). Must lie in (0, 1);
	// 0 means 0.5.
	MaxDegradation float64
	// MaxSurge bounds class surges: rate scales are uniform on
	// (1, 1+MaxSurge]. Must be positive; 0 means 0.5.
	MaxSurge float64
	// DegradeProb and SurgeProb are the per-channel and per-class
	// probabilities of being perturbed in a scenario. In [0, 1]; 0 means
	// 0.35.
	DegradeProb float64
	SurgeProb   float64
	// KeepDominated disables the dominance pruning (see
	// PruneDominatedScenarios) of the sampled set.
	KeepDominated bool
}

func (o SampleOptions) withDefaults() (SampleOptions, error) {
	if o.Count < 1 {
		return o, fmt.Errorf("core: sample count %d; need >= 1", o.Count)
	}
	if o.MaxDegradation == 0 {
		o.MaxDegradation = sampleDefaultMaxDegradation
	}
	if o.MaxSurge == 0 {
		o.MaxSurge = sampleDefaultMaxSurge
	}
	if o.DegradeProb == 0 {
		o.DegradeProb = sampleDefaultPerturbProb
	}
	if o.SurgeProb == 0 {
		o.SurgeProb = sampleDefaultPerturbProb
	}
	if math.IsNaN(o.MaxDegradation) || o.MaxDegradation <= 0 || o.MaxDegradation >= 1 {
		return o, fmt.Errorf("core: max degradation %v outside (0, 1)", o.MaxDegradation)
	}
	if math.IsNaN(o.MaxSurge) || o.MaxSurge <= 0 || math.IsInf(o.MaxSurge, 0) {
		return o, fmt.Errorf("core: max surge %v; need a positive finite value", o.MaxSurge)
	}
	if math.IsNaN(o.DegradeProb) || o.DegradeProb < 0 || o.DegradeProb > 1 {
		return o, fmt.Errorf("core: degrade probability %v outside [0, 1]", o.DegradeProb)
	}
	if math.IsNaN(o.SurgeProb) || o.SurgeProb < 0 || o.SurgeProb > 1 {
		return o, fmt.Errorf("core: surge probability %v outside [0, 1]", o.SurgeProb)
	}
	return o, nil
}

// SampleScenarios draws a deterministic random scenario set for the
// network: each scenario independently degrades each channel's capacity
// with probability DegradeProb (uniform scale in [1-MaxDegradation, 1))
// and surges each class's arrival rate with probability SurgeProb
// (uniform scale in (1, 1+MaxSurge]). All scenarios carry weight 1.
//
// Unless KeepDominated is set, scenarios that are pointwise no harsher
// than another sampled scenario are pruned (see
// PruneDominatedScenarios): for the minimax criterion only the stress
// frontier can decide the optimum, so the pruned set dimensions the same
// windows at a fraction of the per-candidate cost.
func SampleScenarios(n *netmodel.Network, opts SampleOptions) ([]Scenario, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	scenarios := make([]Scenario, 0, opts.Count)
	for i := 0; i < opts.Count; i++ {
		st := rng.New(rng.SubSeed(opts.Seed, uint64(i)))
		sc := Scenario{
			Name:          fmt.Sprintf("sample-%d", i),
			CapacityScale: ones(len(n.Channels)),
			RateScale:     ones(len(n.Classes)),
			Weight:        1,
		}
		for l := range sc.CapacityScale {
			if st.Float64() < opts.DegradeProb {
				sc.CapacityScale[l] = 1 - opts.MaxDegradation*st.Float64()
			}
		}
		for r := range sc.RateScale {
			if st.Float64() < opts.SurgeProb {
				sc.RateScale[r] = 1 + opts.MaxSurge*st.Float64()
			}
		}
		if err := sc.validate(n); err != nil {
			return nil, err
		}
		scenarios = append(scenarios, sc)
	}
	if opts.KeepDominated {
		return scenarios, nil
	}
	return PruneDominatedScenarios(n, scenarios)
}

// PruneDominatedScenarios removes every scenario that another scenario in
// the set dominates. Scenario A dominates B when A is pointwise at least
// as stressful — capacity scales no larger on every channel AND rate
// scales no smaller on every class; under the monotone assumption that
// less capacity and more offered load never raise power, B's constraint
// is then implied by A's, so the minimax optimum over the pruned set
// equals the one over the full set. Exact duplicates keep their first
// occurrence. The heuristic targets RobustMinimax; a RobustWeighted run
// should keep the full set (every weight contributes to the mean).
func PruneDominatedScenarios(n *netmodel.Network, scenarios []Scenario) ([]Scenario, error) {
	caps := make([][]float64, len(scenarios))
	rates := make([][]float64, len(scenarios))
	for i := range scenarios {
		if err := scenarios[i].validate(n); err != nil {
			return nil, err
		}
		caps[i] = scenarios[i].CapacityScale
		if caps[i] == nil {
			caps[i] = ones(len(n.Channels))
		}
		rates[i] = scenarios[i].RateScale
		if rates[i] == nil {
			rates[i] = ones(len(n.Classes))
		}
	}
	// dominates reports whether scenario a is pointwise at least as
	// stressful as b.
	dominates := func(a, b int) bool {
		for l := range caps[a] {
			if caps[a][l] > caps[b][l] {
				return false
			}
		}
		for r := range rates[a] {
			if rates[a][r] < rates[b][r] {
				return false
			}
		}
		return true
	}
	kept := make([]Scenario, 0, len(scenarios))
	for i := range scenarios {
		dominated := false
		for j := range scenarios {
			if i == j {
				continue
			}
			if !dominates(j, i) {
				continue
			}
			// Mutual dominance = identical stress vectors: keep the
			// earlier one.
			if dominates(i, j) && i < j {
				continue
			}
			dominated = true
			break
		}
		if !dominated {
			kept = append(kept, scenarios[i])
		}
	}
	return kept, nil
}
