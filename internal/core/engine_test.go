package core

import (
	"math"
	"testing"

	"repro/internal/numeric"
	"repro/internal/topo"
)

func TestEngineMatchesEvaluate(t *testing.T) {
	n := topo.Canada2Class(15, 20)
	for _, ev := range []Evaluator{EvalSigmaMVA, EvalSchweitzerMVA, EvalLinearizerMVA, EvalExactMVA} {
		opts := Options{Evaluator: ev}
		eng, err := NewEngine(n, opts)
		if err != nil {
			t.Fatalf("%v: %v", ev, err)
		}
		for _, w := range []numeric.IntVector{{1, 1}, {3, 2}, {2, 5}, {3, 2}} {
			legacy, err := Evaluate(n, w, opts)
			if err != nil {
				t.Fatalf("%v %v: %v", ev, w, err)
			}
			got, err := eng.Evaluate(w)
			if err != nil {
				t.Fatalf("%v %v: %v", ev, w, err)
			}
			// With no committed warm seed the engine replays the legacy
			// path (workspace and prevalidation are bit-faithful), so the
			// metrics must agree exactly.
			if got.Power != legacy.Power || got.Throughput != legacy.Throughput || got.Delay != legacy.Delay {
				t.Errorf("%v %v: engine (P=%v, T=%v, D=%v) vs legacy (P=%v, T=%v, D=%v)",
					ev, w, got.Power, got.Throughput, got.Delay, legacy.Power, legacy.Throughput, legacy.Delay)
			}
			v, err := eng.ObjectiveValue(w, ObjNetworkPower)
			if err != nil {
				t.Fatal(err)
			}
			if v != objectiveValue(legacy, ObjNetworkPower) {
				t.Errorf("%v %v: objective %v vs legacy %v", ev, w, v, objectiveValue(legacy, ObjNetworkPower))
			}
		}
	}
}

func TestEngineCommitWarmStaysAtFixedPoint(t *testing.T) {
	n := topo.Canada2Class(15, 15)
	eng, err := NewEngine(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := eng.Evaluate(numeric.IntVector{3, 3})
	if err != nil {
		t.Fatal(err)
	}
	// Commit a neighbour and re-evaluate: the warm-seeded solve must land
	// on the same fixed point to solver tolerance.
	eng.Commit(numeric.IntVector{2, 3})
	warm, err := eng.Evaluate(numeric.IntVector{3, 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(warm.Power-cold.Power) > 1e-4*cold.Power {
		t.Errorf("warm power %v drifted from cold %v", warm.Power, cold.Power)
	}
	// ResetWarm restores the exact cold values.
	eng.ResetWarm()
	again, err := eng.Evaluate(numeric.IntVector{3, 3})
	if err != nil {
		t.Fatal(err)
	}
	if again.Power != cold.Power {
		t.Errorf("after ResetWarm power %v, want cold %v", again.Power, cold.Power)
	}
}

func TestEngineRejectsBadWindows(t *testing.T) {
	n := topo.Canada2Class(15, 15)
	eng, err := NewEngine(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Evaluate(numeric.IntVector{1}); err == nil {
		t.Error("expected dimension error")
	}
	if _, err := eng.Evaluate(numeric.IntVector{-1, 2}); err == nil {
		t.Error("expected negative-window error")
	}
}

// raceEnabled is set by race_test.go; the race detector instruments
// allocations, so counting them is only meaningful without it.
var raceEnabled bool

func TestEngineObjectiveValueAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	n := topo.Canada2Class(15, 15)
	eng, err := NewEngine(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	w := numeric.IntVector{3, 3}
	if _, err := eng.ObjectiveValue(w, ObjNetworkPower); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := eng.ObjectiveValue(w, ObjNetworkPower); err != nil {
			t.Fatal(err)
		}
	})
	// The hot path reuses pooled model copies, solver workspaces, and
	// metrics slices; a couple of incidental allocations (pool interface
	// boxing) are tolerated, bulk matrix work is not.
	if allocs > 4 {
		t.Errorf("ObjectiveValue allocates %v per call in steady state", allocs)
	}
}

func dimensionTrajectory(t *testing.T, opts Options, s1, s2, s3, s4 float64, fourClass bool) *Result {
	t.Helper()
	var res *Result
	var err error
	if fourClass {
		res, err = Dimension(topo.Canada4Class(s1, s2, s3, s4), opts)
	} else {
		res, err = Dimension(topo.Canada2Class(s1, s2), opts)
	}
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestDimensionParallelPatternMatchesSerial(t *testing.T) {
	cases := []struct {
		fourClass      bool
		s1, s2, s3, s4 float64
	}{
		{false, 15, 15, 0, 0},
		{false, 7, 18, 0, 0},
		{true, 9.957, 4.419, 7.656, 7.968},
		{true, 20, 20, 20, 40},
	}
	for _, ev := range []Evaluator{EvalSigmaMVA, EvalSchweitzerMVA} {
		for _, c := range cases {
			serial := dimensionTrajectory(t, Options{Evaluator: ev}, c.s1, c.s2, c.s3, c.s4, c.fourClass)
			for _, workers := range []int{2, 4, 8} {
				par := dimensionTrajectory(t, Options{Evaluator: ev, Workers: workers}, c.s1, c.s2, c.s3, c.s4, c.fourClass)
				if !par.Windows.Equal(serial.Windows) {
					t.Errorf("%v %+v workers=%d: windows %v vs serial %v", ev, c, workers, par.Windows, serial.Windows)
				}
				if par.Search.BestValue != serial.Search.BestValue {
					t.Errorf("%v %+v workers=%d: best value %v vs %v", ev, c, workers, par.Search.BestValue, serial.Search.BestValue)
				}
				if par.Search.Evaluations != serial.Search.Evaluations || par.Search.CacheHits != serial.Search.CacheHits {
					t.Errorf("%v %+v workers=%d: evals/hits %d/%d vs serial %d/%d", ev, c, workers,
						par.Search.Evaluations, par.Search.CacheHits, serial.Search.Evaluations, serial.Search.CacheHits)
				}
				if len(par.Search.BasePoints) != len(serial.Search.BasePoints) {
					t.Fatalf("%v %+v workers=%d: %d base points vs %d", ev, c, workers,
						len(par.Search.BasePoints), len(serial.Search.BasePoints))
				}
				for i := range serial.Search.BasePoints {
					if !par.Search.BasePoints[i].Equal(serial.Search.BasePoints[i]) {
						t.Errorf("%v %+v workers=%d: base point %d = %v vs %v", ev, c, workers, i,
							par.Search.BasePoints[i], serial.Search.BasePoints[i])
					}
				}
			}
		}
	}
}

func TestDimensionWarmMatchesColdWindows(t *testing.T) {
	// Warm-started candidate values agree with cold ones to solver
	// tolerance, so the dimensioned windows must come out identical.
	for _, s := range []float64{12.5, 20, 37.5, 75} {
		n := topo.Canada2Class(s, s)
		warm, err := Dimension(n, Options{})
		if err != nil {
			t.Fatal(err)
		}
		cold, err := Dimension(n, Options{ColdStart: true})
		if err != nil {
			t.Fatal(err)
		}
		if !warm.Windows.Equal(cold.Windows) {
			t.Errorf("S=%v: warm windows %v vs cold %v", s, warm.Windows, cold.Windows)
		}
		if math.Abs(warm.Metrics.Power-cold.Metrics.Power) > 1e-6*cold.Metrics.Power {
			t.Errorf("S=%v: warm power %v vs cold %v", s, warm.Metrics.Power, cold.Metrics.Power)
		}
	}
}

func BenchmarkEvaluateEngine(b *testing.B) {
	n := topo.Canada4Class(9.957, 4.419, 7.656, 7.968)
	w := numeric.IntVector{4, 4, 3, 2}
	b.Run("legacy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Evaluate(n, w, Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("engine", func(b *testing.B) {
		eng, err := NewEngine(n, Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.ObjectiveValue(w, ObjNetworkPower); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkDimensionWarmVsCold(b *testing.B) {
	n := topo.Canada2Class(20, 20)
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Dimension(n, Options{ColdStart: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Dimension(n, Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
