package core

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/mva"
	"repro/internal/netmodel"
	"repro/internal/numeric"
	"repro/internal/pattern"
	"repro/internal/power"
)

// BoxScanner is the exhaustive-search workhorse factored out of Dimension
// so that other drivers — above all the slab workers of the sharded
// search (internal/shard) — can scan arbitrary sub-boxes of the window
// lattice against exactly the objective Dimension uses: the evaluation
// engine is built once, candidate values map mva.ErrNotConverged to +Inf
// (infeasible) with a running tally, and buffer-limit feasibility is
// applied before any solve.
//
// Determinism: exhaustive scans never commit base points, so the engine's
// warm-start seed stays empty and every candidate value is a pure
// function of the candidate alone. Scans of disjoint sub-boxes therefore
// compute values bit-identical to one scan of the union — the contract
// the sharded search's deterministic merge rests on.
type BoxScanner struct {
	opts         Options
	eng          *Engine
	feasible     func(numeric.IntVector) bool
	nonConverged atomic.Int64
	evaluations  atomic.Int64
}

// NewBoxScanner validates the network and builds the evaluation engine
// under the given options (Search-related fields are ignored; Context,
// Workers, Evaluator, ExactEngine, OracleBox, BufferLimits and MVA
// settings are honoured).
func NewBoxScanner(n *netmodel.Network, opts Options) (*BoxScanner, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	if opts.Context != nil {
		opts.MVA.Context = opts.Context
	}
	feasible, err := bufferFeasibility(n, opts.BufferLimits)
	if err != nil {
		return nil, err
	}
	eng, err := NewEngine(n, opts)
	if err != nil {
		return nil, err
	}
	return &BoxScanner{opts: opts, eng: eng, feasible: feasible}, nil
}

// objective is the candidate evaluation Dimension and the sharded workers
// share: buffer-infeasible and non-converging candidates are +Inf, any
// other evaluation error aborts the scan.
func (b *BoxScanner) objective(x numeric.IntVector) (float64, error) {
	b.evaluations.Add(1)
	if b.feasible != nil && !b.feasible(x) {
		return math.Inf(1), nil
	}
	v, err := b.eng.ObjectiveValue(x, b.opts.Objective)
	if err != nil {
		if errors.Is(err, mva.ErrNotConverged) {
			b.nonConverged.Add(1)
			return math.Inf(1), nil
		}
		return 0, err
	}
	return v, nil
}

// Scan exhaustively evaluates the closed box [lo, hi] and returns the
// minimiser under the usual tie-break (equal values resolve to the
// earliest lattice point). The scan parallelises across Options.Workers
// and honours Options.Context.
func (b *BoxScanner) Scan(lo, hi numeric.IntVector) (*pattern.Result, error) {
	return pattern.ExhaustiveParallelCtx(b.opts.Context, b.objective, lo, hi, 0, b.opts.Workers)
}

// Metrics evaluates the power metrics at windows on the scanner's engine
// — the same path Dimension reports its optimum through.
func (b *BoxScanner) Metrics(windows numeric.IntVector) (*power.Metrics, error) {
	return b.eng.Evaluate(windows)
}

// Evaluations counts candidate evaluations across all Scans (including
// buffer-infeasible candidates rejected before any solve).
func (b *BoxScanner) Evaluations() int { return int(b.evaluations.Load()) }

// NonConverged counts candidate evaluations that failed to converge even
// after the fallback chain, across all Scans so far.
func (b *BoxScanner) NonConverged() int { return int(b.nonConverged.Load()) }

// FallbackCounts reports the engine's per-tier evaluation tallies.
func (b *BoxScanner) FallbackCounts() FallbackCounts { return b.eng.FallbackCounts() }

// WatchdogTrips reports solves cut short by the per-candidate watchdog.
func (b *BoxScanner) WatchdogTrips() int64 { return b.eng.WatchdogTrips() }

// bufferFeasibility compiles Options.BufferLimits into the §2.3
// consistency predicate: for every node with a storage limit, the windows
// of all classes that can store messages there (every route node except
// the sink) must fit. A nil limits slice means no constraint (nil
// predicate).
func bufferFeasibility(n *netmodel.Network, limits []int) (func(numeric.IntVector) bool, error) {
	if limits == nil {
		return nil, nil
	}
	if len(limits) != len(n.Nodes) {
		return nil, fmt.Errorf("core: %d buffer limits for %d nodes", len(limits), len(n.Nodes))
	}
	// storers[i] lists the classes that can store messages at node i
	// (every route node except the sink).
	storers := make([][]int, len(n.Nodes))
	for r := range n.Classes {
		nodes, err := n.RouteNodes(r)
		if err != nil {
			return nil, err
		}
		for _, v := range nodes[:len(nodes)-1] {
			storers[v] = append(storers[v], r)
		}
	}
	return func(x numeric.IntVector) bool {
		for i, k := range limits {
			if k <= 0 {
				continue
			}
			sum := 0
			for _, r := range storers[i] {
				sum += x[r]
			}
			if sum > k {
				return false
			}
		}
		return true
	}, nil
}
