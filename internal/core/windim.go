// Package core implements WINDIM (Ch. 4 §4.4): dimensioning of the
// end-to-end flow-control windows of a message-switched network so that
// the network power P = throughput/delay is maximised.
//
// WINDIM is the composition of three pieces built elsewhere in this
// repository: the Fig. 4.6 closed-chain transformation
// (internal/netmodel), a per-candidate performance evaluation by
// approximate mean value analysis (internal/mva), and a Hooke–Jeeves
// pattern search over integer window vectors (internal/pattern)
// initialised at Kleinrock's hop-count windows.
package core

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/mva"
	"repro/internal/netmodel"
	"repro/internal/numeric"
	"repro/internal/pattern"
	"repro/internal/power"
)

// Evaluator selects the model solved for each candidate window vector.
type Evaluator int

const (
	// EvalSigmaMVA is the thesis's evaluator: the σ-heuristic
	// approximate MVA (linear in window sizes).
	EvalSigmaMVA Evaluator = iota
	// EvalSchweitzerMVA uses the Schweitzer–Bard approximate MVA.
	EvalSchweitzerMVA
	// EvalExactMVA uses the exact multichain recursion — exponential in
	// the number of classes, usable only for small networks; it is the
	// reference WINDIM is measured against in the ablation experiments.
	EvalExactMVA
	// EvalLinearizerMVA uses the Linearizer AMVA (Chandy–Neuse 1982), a
	// post-thesis refinement included for the ablation study.
	EvalLinearizerMVA
)

func (e Evaluator) String() string {
	switch e {
	case EvalSigmaMVA:
		return "sigma-mva"
	case EvalSchweitzerMVA:
		return "schweitzer-mva"
	case EvalExactMVA:
		return "exact-mva"
	case EvalLinearizerMVA:
		return "linearizer-mva"
	default:
		return fmt.Sprintf("Evaluator(%d)", int(e))
	}
}

// ObjectiveKind selects what Dimension maximises.
type ObjectiveKind int

const (
	// ObjNetworkPower is the thesis's criterion: total throughput over
	// mean network delay.
	ObjNetworkPower ObjectiveKind = iota
	// ObjMinClassPower maximises the weakest class's own power
	// lambda_r/T_r — a max-min fairness variant: the aggregate criterion
	// will happily starve a long-route class to fatten the total
	// (visible in Table 4.12's (1,1,1,4) settings).
	ObjMinClassPower
	// ObjSumClassPower maximises the sum of per-class powers.
	ObjSumClassPower
)

func (o ObjectiveKind) String() string {
	switch o {
	case ObjNetworkPower:
		return "network-power"
	case ObjMinClassPower:
		return "min-class-power"
	case ObjSumClassPower:
		return "sum-class-power"
	default:
		return fmt.Sprintf("ObjectiveKind(%d)", int(o))
	}
}

// objectiveValue maps metrics to the value the search minimises.
func objectiveValue(m *power.Metrics, kind ObjectiveKind) float64 {
	var p float64
	switch kind {
	case ObjMinClassPower:
		p = m.MinClassPower()
	case ObjSumClassPower:
		p = m.SumClassPower()
	default:
		p = m.Power
	}
	if p <= 0 || math.IsNaN(p) {
		return math.Inf(1)
	}
	return 1 / p
}

// SearchKind selects the optimiser.
type SearchKind int

const (
	// PatternSearch is the thesis's Hooke–Jeeves direct search.
	PatternSearch SearchKind = iota
	// ExhaustiveSearch scans the whole window box; only feasible for
	// small networks, used to probe the global optimality of the pattern
	// search (as the thesis does for Fig. 4.9).
	ExhaustiveSearch
)

func (s SearchKind) String() string {
	switch s {
	case PatternSearch:
		return "pattern"
	case ExhaustiveSearch:
		return "exhaustive"
	default:
		return fmt.Sprintf("SearchKind(%d)", int(s))
	}
}

// Options configures WINDIM. The zero value reproduces the thesis:
// σ-heuristic MVA evaluations, pattern search from the hop-count windows
// with unit steps and KMAX = 2, windows bounded to [1, MaxWindow].
type Options struct {
	Evaluator Evaluator
	Search    SearchKind
	// Objective selects the criterion to maximise (default: the
	// thesis's network power).
	Objective ObjectiveKind
	// InitialWindows overrides the hop-count starting vector.
	InitialWindows numeric.IntVector
	// InitialStep overrides the all-ones starting step of the pattern
	// search.
	InitialStep numeric.IntVector
	// MaxWindow bounds every window from above; <= 0 means 64 (far above
	// any power-optimal setting for the networks considered — optima
	// shrink, not grow, with load).
	MaxWindow int
	// MaxHalvings is the pattern search KMAX; 0 means 2.
	MaxHalvings int
	// Workers parallelises candidate evaluation across goroutines: the
	// exhaustive search splits its box across Workers, and the pattern
	// search evaluates each pass's exploratory probes speculatively in
	// parallel while committing accepts in serial order, so its trajectory
	// (windows, evaluations, cache behaviour) is identical to the serial
	// run. Analytic evaluations are pure functions of the candidate, so
	// both are safe. <= 1 is serial.
	Workers int
	// ExactEngine routes exact evaluations — the EvalExactMVA primary
	// path and the TierExact stage of the resilient fallback chain —
	// through a shared incremental convolution engine
	// (convolution.Engine): one normalisation-constant lattice per search,
	// grown to the bounding box of the candidates seen, answers each
	// candidate inside the box by slice reads instead of a fresh
	// exponential recursion. Convolution agrees with the exact MVA
	// recursion to ordinary rounding (~1e-12 relative), so enabling the
	// engine can move results within solver tolerance; it is off by
	// default to preserve the historical per-candidate trajectories
	// bit-for-bit. The lattice cache is rebuildable state: it is never
	// serialised into checkpoints, and a resumed run rebuilds it on
	// demand. Candidates whose own lattice exceeds the oracle's cap fall
	// through to mva.ExactMultichain exactly as without the engine.
	ExactEngine bool
	// ColdStart disables warm-starting the approximate solvers from the
	// last accepted base point. Warm starts change per-candidate values
	// only within the solver tolerance (the fixed point is the same);
	// ColdStart forces the exact legacy trajectory, at roughly the cold
	// sweep count per candidate.
	ColdStart bool
	// DisableFallback turns off the resilient solver chain: a candidate
	// whose primary fixed point returns mva.ErrNotConverged then fails
	// immediately (and is treated as infeasible by the search) instead of
	// being retried damped, by Linearizer, or by the exact recursion. The
	// chain is on by default because it only runs where the primary
	// solver has already failed — it cannot change any converging result.
	DisableFallback bool
	// Context, when non-nil, bounds the dimensioning run: it is threaded
	// through the pattern/exhaustive search and into the MVA fixed-point
	// loops, so both long searches and stuck solves honour deadlines. On
	// cancellation Dimension returns the best-so-far Result (when the
	// search had committed at least one base point) TOGETHER WITH a
	// non-nil error wrapping ctx.Err() — callers wanting partial answers
	// must check the Result before the error.
	Context context.Context
	// EvalTimeout arms the per-candidate watchdog: each candidate solve
	// gets a wall-clock allowance of max(EvalTimeout, 8× the rolling mean
	// of recent solve times); a solve that exceeds it is abandoned as
	// mva.ErrNotConverged and flows into the fallback chain (each tier
	// with a fresh allowance), so one pathological fixed point cannot
	// stall the whole run. Trips are reported in Result.WatchdogTrips.
	// Wall-clock deadlines trade bit-reproducibility across machines for
	// liveness, so the watchdog is off by default (<= 0). Ignored by the
	// iteration-free exact evaluator.
	EvalTimeout time.Duration
	// CheckpointPath, when non-empty, makes the pattern search durable:
	// its state (memo cache, best point, step, per-scenario progress for
	// DimensionRobust) is written atomically to this file every
	// CheckpointEvery commits (<= 0: every commit) and at termination or
	// cancellation. Only PatternSearch supports checkpoints.
	CheckpointPath string
	// CheckpointEvery is the commit cadence of checkpoint writes.
	CheckpointEvery int
	// CheckpointFullEvery spaces full snapshots among the durable writes:
	// writes between them append compact delta records (only the memo-cache
	// entries learned since the previous write) to CheckpointPath+".delta",
	// making a per-commit cadence near-free on long searches. Resume reads
	// snapshot + sidecar transparently. <= 1 writes a full snapshot every
	// time (the historical behaviour).
	CheckpointFullEvery int
	// ResumePath, when non-empty, resumes from a checkpoint written by a
	// previous run of the SAME model and options: the memo cache is
	// preloaded and the search replays its trajectory out of it (warm
	// starts recommitted along the way), converging to a result
	// bit-identical to an uninterrupted run at any worker count. A hash
	// of the network and options is verified before any cached value is
	// used; a mismatch is an error. A missing file is also an error —
	// "resume" silently starting fresh would mask typos.
	ResumePath string
	// BufferLimits, when non-nil, constrains the search to window
	// vectors that cannot overflow the given per-node storage limits
	// even in the worst case: for every node i with limit K_i > 0, the
	// windows of all classes that can store messages at node i (source
	// and transit nodes of their route; the sink never stores) must sum
	// to at most K_i. This is §2.3's consistency rule — windows beyond
	// buffer capacity make end-to-end control "totally ineffective".
	// Length must equal the node count; entries <= 0 mean unlimited.
	BufferLimits []int
	// MVA carries tolerance/iteration settings for the approximate
	// evaluators (Method is overridden by Evaluator).
	MVA mva.Options
	// DegradeAfter enables strike-based scenario degradation in
	// DimensionRobust: a scenario whose evaluation fails to converge (even
	// after the fallback chain) on this many distinct candidates is
	// excluded from the rest of the run — with its reason recorded in
	// RobustResult.Degraded — instead of vetoing every candidate it
	// touches. 0 (the default) disables strike counting; under Workers > 1
	// the strike order can depend on speculative probe scheduling, so
	// enabling it may cost bit-reproducibility. Terminal (non-convergence)
	// evaluation errors degrade a scenario immediately regardless.
	DegradeAfter int
	// MinScenarios is the quorum DimensionRobust must retain: a
	// degradation that would leave fewer active scenarios aborts the run
	// instead of silently optimising against a hollowed-out set. <= 0
	// means 1.
	MinScenarios int

	// OnCommit, when non-nil, runs serially after every committed base
	// point of the pattern search (after warm-seed promotion), with the
	// accepted window vector and its objective value (1/power under the
	// chosen criterion). This is the progress stream of a long search: the
	// windimd service forwards each commit to its job event feed, and the
	// checkpoint tests use it to cancel a run after exactly K commits.
	OnCommit func(x numeric.IntVector, fx float64)
	// OracleBox, when non-nil, hard-bounds the convolution oracle of an
	// ExactEngine run to the given per-class corner: no candidate — shared
	// box or private fallback — may grow a lattice beyond it; candidates
	// outside the corner fall through to the exact MVA recursion. A slab
	// worker of the sharded exhaustive search (internal/shard) sets it to
	// its slab corner so every worker's memory footprint is bounded by the
	// slab it was assigned, not the full search box. The bound is
	// point-local, so it never changes the value computed for an in-box
	// candidate. A non-nil OracleBox forces a private (uncached) oracle.
	OracleBox numeric.IntVector
	// Oracles, when non-nil, shares convolution oracles across the engines
	// built from these options: DimensionRobust sets it so scenarios with
	// identical station/chain structure reuse one lattice, and the windimd
	// service passes one budgeted cache to every job so concurrent
	// searches over the same network share lattices under a global memory
	// budget. Nil with ExactEngine set builds a private unbounded cache.
	Oracles *OracleCache
}

// Result is the outcome of a WINDIM run.
type Result struct {
	// Windows is the dimensioned window vector E_opt.
	Windows numeric.IntVector
	// Metrics holds the performance at Windows.
	Metrics *power.Metrics
	// Search is the underlying optimiser trace.
	Search *pattern.Result
	// NonConverged counts candidate evaluations whose approximate MVA
	// fixed point failed to converge EVEN AFTER the fallback chain
	// (treated as infeasible points). Under Workers > 1 speculative
	// probes the committed trajectory never consumed are counted too, so
	// the tally can exceed the serial run's; the search trajectory itself
	// is unaffected.
	NonConverged int
	// Fallbacks tallies, per tier of the resilient chain, how many
	// candidate evaluations each tier answered (Fallbacks[TierPrimary] is
	// the ordinary converging majority). Like NonConverged, speculative
	// probes are included.
	Fallbacks FallbackCounts
	// WatchdogTrips counts candidate solves the per-candidate watchdog
	// (Options.EvalTimeout) cut short into the fallback chain.
	WatchdogTrips int64
}

// Evaluate solves the closed-chain model of the network at the given
// window vector and returns its power metrics.
func Evaluate(n *netmodel.Network, windows numeric.IntVector, opts Options) (*power.Metrics, error) {
	model, sources, err := n.ClosedModel(windows)
	if err != nil {
		return nil, err
	}
	var sol *mva.Solution
	switch opts.Evaluator {
	case EvalExactMVA:
		sol, err = mva.ExactMultichain(model)
	case EvalSchweitzerMVA:
		mo := opts.MVA
		mo.Method = mva.Schweitzer
		sol, err = mva.Approximate(model, mo)
	case EvalLinearizerMVA:
		sol, err = mva.Linearizer(model, opts.MVA)
	default:
		mo := opts.MVA
		mo.Method = mva.SigmaHeuristic
		sol, err = mva.Approximate(model, mo)
	}
	if err != nil {
		return nil, err
	}
	return power.FromSolution(model, sol, sources)
}

// Dimension runs WINDIM on the network and returns the power-optimal
// window settings.
func Dimension(n *netmodel.Network, opts Options) (*Result, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	nCls := len(n.Classes)
	maxW := opts.MaxWindow
	if maxW <= 0 {
		maxW = 64
	}
	hi := numeric.NewIntVector(nCls)
	lo := numeric.NewIntVector(nCls)
	for i := range hi {
		hi[i] = maxW
		lo[i] = 1
	}
	feasible, err := bufferFeasibility(n, opts.BufferLimits)
	if err != nil {
		return nil, err
	}
	if opts.Context != nil {
		// Thread the deadline into the MVA fixed-point loops too, so a
		// single stuck solve cannot outlive the search's cancellation.
		opts.MVA.Context = opts.Context
	}
	eng, err := NewEngine(n, opts)
	if err != nil {
		return nil, err
	}
	res := &Result{}
	// A non-converged fixed point marks the candidate as infeasible (+Inf)
	// rather than aborting the search; see BoxScanner.objective.
	scan := &BoxScanner{opts: opts, eng: eng, feasible: feasible}
	objective := scan.objective

	ckptOpts, resume, err := searchCheckpointing(n, opts, nil, "")
	if err != nil {
		return nil, err
	}

	var sres *pattern.Result
	switch opts.Search {
	case ExhaustiveSearch:
		sres, err = scan.Scan(lo, hi)
	default:
		start := opts.InitialWindows
		if start == nil {
			start = n.HopVector()
		}
		if len(start) != nCls {
			return nil, fmt.Errorf("core: initial window vector has %d entries for %d classes", len(start), nCls)
		}
		if feasible != nil && !feasible(start) {
			// The hop-count start can violate tight buffer limits; fall
			// back to the all-ones vector, the smallest live setting.
			ones := numeric.NewIntVector(nCls)
			for i := range ones {
				ones[i] = 1
			}
			if !feasible(ones) {
				return nil, fmt.Errorf("core: buffer limits admit no window setting (even all-ones overflows some node)")
			}
			start = ones
		}
		popts := pattern.Options{
			InitialStep: opts.InitialStep,
			Lo:          lo,
			Hi:          hi,
			MaxHalvings: opts.MaxHalvings,
			Workers:     opts.Workers,
			Context:     opts.Context,
			Checkpoint:  ckptOpts,
			Resume:      resume,
		}
		if eng.useWarm || opts.OnCommit != nil {
			popts.OnCommit = func(x numeric.IntVector, fx float64) {
				if eng.useWarm {
					eng.Commit(x)
				}
				if opts.OnCommit != nil {
					opts.OnCommit(x, fx)
				}
			}
		}
		sres, err = pattern.Search(objective, start, popts)
	}
	// A cancelled search may still carry a best-so-far point; any other
	// error (or cancellation before the first commit) is terminal.
	searchErr := err
	if searchErr != nil && (sres == nil || sres.Best == nil) {
		return nil, searchErr
	}
	if sres.Best == nil || math.IsInf(sres.BestValue, 1) {
		return nil, fmt.Errorf("core: no feasible window setting found (evaluator %v)", opts.Evaluator)
	}
	var metrics *power.Metrics
	if searchErr != nil {
		// The engine's solvers carry the (now dead) context; re-evaluate
		// the best-so-far point with a context-free copy of the options so
		// the partial Result still reports its metrics.
		clean := opts
		clean.Context = nil
		clean.MVA.Context = nil
		metrics, err = Evaluate(n, sres.Best, clean)
	} else {
		metrics, err = eng.Evaluate(sres.Best)
	}
	if err != nil {
		return nil, err
	}
	res.Windows = sres.Best
	res.Metrics = metrics
	res.Search = sres
	res.NonConverged = scan.NonConverged()
	res.Fallbacks = eng.FallbackCounts()
	res.WatchdogTrips = eng.WatchdogTrips()
	return res, searchErr
}

// KleinrockWindows returns the hop-count window vector (E_r = number of
// hops of class r), the rule of [52] used both as WINDIM's starting point
// and as the baseline P_4431 column of Table 4.12.
func KleinrockWindows(n *netmodel.Network) numeric.IntVector {
	return n.HopVector()
}
