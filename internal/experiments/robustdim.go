package experiments

import (
	"context"
	"fmt"
	"io"
	"math"

	"repro/internal/core"
	"repro/internal/numeric"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/topo"
)

// RobustDimensioningRow compares the nominal-optimal and robust-optimal
// window vectors under one scenario, both analytically (the perturbed
// product-form model DimensionRobust optimises against) and by
// simulation (the nominal network with the scenario's FaultSpec shadow
// injected for most of the run).
type RobustDimensioningRow struct {
	Scenario string
	Weight   float64
	// AnalyticNominal and AnalyticRobust are the perturbed model's power
	// at the nominal-optimal and robust-optimal windows.
	AnalyticNominal float64
	AnalyticRobust  float64
	// SimNominal/SimRobust are simulated powers under the scenario's
	// fault-spec shadow, replication means with Student-t 95% half-widths.
	SimNominal     float64
	SimNominalCI95 float64
	SimRobust      float64
	SimRobustCI95  float64
	// Reps is the number of completed replications behind each simulated
	// power.
	Reps int
}

// RobustDimensioningResult is the full experiment outcome.
type RobustDimensioningResult struct {
	NominalWindows numeric.IntVector
	RobustWindows  numeric.IntVector
	Rows           []RobustDimensioningRow
	// NominalWorst and RobustWorst are the worst analytic per-scenario
	// powers of the two vectors. Because the robust search is seeded from
	// the nominal optimum, RobustWorst >= NominalWorst always holds —
	// the minimax guarantee this experiment demonstrates.
	NominalWorst float64
	RobustWorst  float64
	// WorstScenario names the scenario attaining RobustWorst.
	WorstScenario string
}

// robustDimScenarios is the experiment's scenario set on the thesis's
// 4-class network: the nominal operating point, a degraded
// Winnipeg–Toronto trunk (the channel every long route shares), and a
// doubled class-4 load (the short heavy class the aggregate criterion
// leans on).
func robustDimScenarios() []core.Scenario {
	capScale := []float64{1, 1, 1, 1, 1, 1, 1}
	capScale[topo.ChWT] = 0.6
	return []core.Scenario{
		{Name: "nominal", Weight: 0.6},
		{Name: "trunk-degraded", CapacityScale: capScale, Weight: 0.2},
		{Name: "class4-surge", RateScale: []float64{1, 1, 1, 2}, Weight: 0.2},
	}
}

// RobustDimensioning compares nominal-optimal against minimax-robust
// window dimensioning on the 4-class Canada network: WINDIM's vector is
// optimal for the operating point it was dimensioned at, but a scenario
// set (degraded trunk, surged class) can punish it; DimensionRobust
// seeded from the nominal vector finds the windows with the best
// worst-scenario power. Each scenario is then checked in simulation by
// injecting its FaultSpec shadow (degradation + surge windows spanning
// the post-warmup run) into the nominal network, reps replications per
// cell (reps <= 0 means 1) with 95% confidence intervals.
func RobustDimensioning(seed uint64, reps int) (*RobustDimensioningResult, error) {
	if reps <= 0 {
		reps = 1
	}
	n := topo.Canada4Class(20, 20, 20, 40)
	scenarios := robustDimScenarios()

	nominal, err := core.Dimension(n, core.Options{})
	if err != nil {
		return nil, err
	}
	robust, err := core.DimensionRobust(n, scenarios, core.RobustMinimax, core.Options{
		InitialWindows: nominal.Windows,
	})
	if err != nil {
		return nil, err
	}
	nominalPowers, err := core.EvaluateScenarios(n, scenarios, nominal.Windows, core.Options{})
	if err != nil {
		return nil, err
	}

	res := &RobustDimensioningResult{
		NominalWindows: nominal.Windows,
		RobustWindows:  robust.Windows,
		NominalWorst:   math.Inf(1),
		RobustWorst:    robust.WorstPower,
		WorstScenario:  scenarios[robust.WorstScenario].Name,
	}
	base := sim.Config{Duration: 6000, Warmup: 600, Seed: seed}
	// simPower simulates one window vector under one scenario's fault-spec
	// shadow, active from the end of warmup to the end of the run.
	simPower := func(sc *core.Scenario, windows numeric.IntVector) (float64, float64, int, error) {
		f, err := sc.FaultSpec(n, base.Warmup, base.Duration)
		if err != nil {
			return 0, 0, 0, err
		}
		cfg := base
		cfg.Windows = windows
		cfg.Faults = f
		b, err := sim.RunReplications(context.Background(), n, cfg, reps, reps)
		if err != nil {
			return 0, 0, 0, fmt.Errorf("robust dimensioning %q: %w", sc.Name, err)
		}
		if b.Failed > 0 {
			return 0, 0, 0, fmt.Errorf("robust dimensioning %q: %d/%d replications failed: %w",
				sc.Name, b.Failed, reps, firstReplicationErr(b))
		}
		return b.Power, b.PowerCI95, b.Completed, nil
	}
	for i := range scenarios {
		sc := &scenarios[i]
		if nominalPowers[i] < res.NominalWorst {
			res.NominalWorst = nominalPowers[i]
		}
		simNom, ciNom, done, err := simPower(sc, nominal.Windows)
		if err != nil {
			return nil, err
		}
		simRob, ciRob, _, err := simPower(sc, robust.Windows)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, RobustDimensioningRow{
			Scenario:        sc.Name,
			Weight:          sc.Weight,
			AnalyticNominal: nominalPowers[i],
			AnalyticRobust:  robust.ScenarioPower[i],
			SimNominal:      simNom,
			SimNominalCI95:  ciNom,
			SimRobust:       simRob,
			SimRobustCI95:   ciRob,
			Reps:            done,
		})
	}
	return res, nil
}

// RenderRobustDimensioning prints the per-scenario comparison and the
// worst-case summary.
func RenderRobustDimensioning(w io.Writer, res *RobustDimensioningResult) error {
	t := &report.Table{
		Title: fmt.Sprintf("Robust dimensioning — nominal windows %s vs minimax-robust %s (4-class network, S = 20,20,20,40)",
			report.Windows(res.NominalWindows), report.Windows(res.RobustWindows)),
		Headers: []string{"Scenario", "Weight", "P(nominal) model", "P(robust) model", "P(nominal) sim", "P(robust) sim"},
	}
	withCI := func(p, ci float64) string {
		s := report.Float(p, 1)
		if ci > 0 {
			s += " ±" + report.Float(ci, 1)
		}
		return s
	}
	for _, r := range res.Rows {
		t.AddRow(r.Scenario, report.Float(r.Weight, 2),
			report.Float(r.AnalyticNominal, 1), report.Float(r.AnalyticRobust, 1),
			withCI(r.SimNominal, r.SimNominalCI95), withCI(r.SimRobust, r.SimRobustCI95))
	}
	if _, err := t.WriteTo(w); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "\nworst scenario %q: power %s robust vs %s nominal\n",
		res.WorstScenario, report.Float(res.RobustWorst, 1), report.Float(res.NominalWorst, 1))
	return err
}
