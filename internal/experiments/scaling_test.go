package experiments

import (
	"strings"
	"testing"
)

func TestScaling(t *testing.T) {
	r, err := Scaling(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Windows) != 6 {
		t.Fatalf("windows = %v", r.Windows)
	}
	// WINDIM at least matches the hop rule it starts from.
	if r.PowerOpt < r.PowerHop-1e-6 {
		t.Errorf("P_opt %v below hop-rule power %v", r.PowerOpt, r.PowerHop)
	}
	// Cross-solver agreement at the chosen windows: Linearizer and the
	// simulator both within ~10%% of the sigma evaluation.
	if rel := abs(r.PowerLinearizer-r.PowerOpt) / r.PowerOpt; rel > 0.10 {
		t.Errorf("linearizer power %v vs sigma %v", r.PowerLinearizer, r.PowerOpt)
	}
	if rel := abs(r.SimPower-r.PowerOpt) / r.PowerOpt; rel > 0.10 {
		t.Errorf("sim power %v vs sigma %v", r.SimPower, r.PowerOpt)
	}
	var b strings.Builder
	if err := RenderScaling(&b, 8, r); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "10-node") {
		t.Error("render missing title")
	}
}
