package experiments

import (
	"strings"
	"testing"
)

func TestRobustDimensioning(t *testing.T) {
	res, err := RobustDimensioning(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("got %d scenarios", len(res.Rows))
	}
	// The acceptance inequality: seeded from the nominal optimum, the
	// minimax windows protect the worst scenario at least as well.
	if res.RobustWorst < res.NominalWorst {
		t.Errorf("robust worst power %v below nominal-optimal's worst %v",
			res.RobustWorst, res.NominalWorst)
	}
	if res.NominalWindows == nil || res.RobustWindows == nil {
		t.Fatalf("missing window vectors: %v / %v", res.NominalWindows, res.RobustWindows)
	}
	if res.WorstScenario == "" {
		t.Error("worst scenario unnamed")
	}
	for _, r := range res.Rows {
		if r.AnalyticNominal <= 0 || r.AnalyticRobust <= 0 {
			t.Errorf("%s: degenerate analytic powers %v / %v", r.Scenario, r.AnalyticNominal, r.AnalyticRobust)
		}
		if r.SimNominal <= 0 || r.SimRobust <= 0 {
			t.Errorf("%s: degenerate simulated powers %v / %v", r.Scenario, r.SimNominal, r.SimRobust)
		}
		if r.Reps != 2 {
			t.Errorf("%s: %d replications, want 2", r.Scenario, r.Reps)
		}
		if r.SimNominalCI95 <= 0 || r.SimRobustCI95 <= 0 {
			t.Errorf("%s: missing replication CIs (%v / %v)", r.Scenario, r.SimNominalCI95, r.SimRobustCI95)
		}
	}
	// The fault-spec shadow actually bites: the degraded trunk must cost
	// simulated power relative to the clean nominal row. (The class-4
	// surge can RAISE power — more load on a 1-hop class lifts throughput
	// faster than delay — so only the degradation row is a one-sided
	// check.)
	if res.Rows[1].SimNominal >= res.Rows[0].SimNominal {
		t.Errorf("degraded-trunk simulated power %v not below nominal row's %v — the fault shadow has no effect",
			res.Rows[1].SimNominal, res.Rows[0].SimNominal)
	}
	var b strings.Builder
	if err := RenderRobustDimensioning(&b, res); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "Robust dimensioning") || !strings.Contains(out, "worst scenario") {
		t.Errorf("render missing sections:\n%s", out)
	}
}
