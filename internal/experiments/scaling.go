package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/topo"
)

// ScalingResult reports the larger-network study: WINDIM on the 10-node
// ARPANET-style mesh with six interacting virtual channels — the
// Chapter 5 claim that the example-network insights extend to larger
// networks, exercised on a case where exact analysis of every search
// candidate is already prohibitive.
type ScalingResult struct {
	// Windows is the dimensioned vector (six classes).
	Windows []int
	// HopRule is the Kleinrock baseline vector.
	HopRule []int
	// PowerOpt and PowerHop are σ-AMVA powers at the two settings.
	PowerOpt, PowerHop float64
	// PowerLinearizer is the Linearizer's power at the dimensioned
	// windows (post-thesis cross-check).
	PowerLinearizer float64
	// SimPower is the simulator's power at the dimensioned windows.
	SimPower float64
	// Evaluations counts WINDIM objective evaluations.
	Evaluations int
}

// Scaling runs the larger-network study at the given per-class rate.
func Scaling(rate float64, seed uint64) (*ScalingResult, error) {
	rates := []float64{rate, rate, rate, rate, rate, rate}
	n, err := topo.Arpa(rates)
	if err != nil {
		return nil, err
	}
	res, err := core.Dimension(n, core.Options{})
	if err != nil {
		return nil, fmt.Errorf("scaling: %w", err)
	}
	hop := core.KleinrockWindows(n)
	base, err := core.Evaluate(n, hop, core.Options{})
	if err != nil {
		return nil, err
	}
	lin, err := core.Evaluate(n, res.Windows, core.Options{Evaluator: core.EvalLinearizerMVA})
	if err != nil {
		return nil, err
	}
	simRes, err := sim.Run(n, sim.Config{
		Windows: res.Windows, Duration: 3000, Warmup: 300, Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	return &ScalingResult{
		Windows:         res.Windows,
		HopRule:         hop,
		PowerOpt:        res.Metrics.Power,
		PowerHop:        base.Power,
		PowerLinearizer: lin.Power,
		SimPower:        simRes.Power,
		Evaluations:     res.Search.Evaluations,
	}, nil
}

// RenderScaling prints the larger-network study.
func RenderScaling(w io.Writer, rate float64, r *ScalingResult) error {
	t := &report.Table{
		Title:   fmt.Sprintf("Scaling — 10-node ARPANET-style mesh, 6 classes at %g msg/s each", rate),
		Headers: []string{"Quantity", "Value"},
	}
	t.AddRow("WINDIM windows", report.Windows(r.Windows))
	t.AddRow("hop-count rule", report.Windows(r.HopRule))
	t.AddRow("power at WINDIM windows (sigma AMVA)", report.Float(r.PowerOpt, 1))
	t.AddRow("power at hop-count rule (sigma AMVA)", report.Float(r.PowerHop, 1))
	t.AddRow("power at WINDIM windows (Linearizer)", report.Float(r.PowerLinearizer, 1))
	t.AddRow("power at WINDIM windows (simulated)", report.Float(r.SimPower, 1))
	t.AddRow("objective evaluations", fmt.Sprint(r.Evaluations))
	_, err := t.WriteTo(w)
	return err
}
