// Package experiments regenerates every table and figure of the thesis's
// evaluation (Ch. 4 §4.5), plus the validation and ablation studies
// DESIGN.md commits to. Each experiment returns both structured data and
// a rendered report, so cmd/paperbench can print it and the root
// benchmarks can time it.
package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/mva"
	"repro/internal/numeric"
	"repro/internal/power"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/topo"
)

// Table47Row is one row of Table 4.7 (symmetric loadings, 2-class).
type Table47Row struct {
	S1, S2  float64
	Total   float64
	Windows numeric.IntVector
	Power   float64
	// Evaluations counts the objective evaluations WINDIM spent on the row
	// (cache hits excluded) — the cost metric the perf trajectory tracks.
	Evaluations int
}

// Table47Rates are the symmetric per-class rates of Table 4.7.
// The thesis's rows run from 25 to 150 msg/s of total traffic.
var Table47Rates = []float64{12.5, 15.5, 18, 20, 22.5, 25, 37.5, 50, 62.5, 75}

// Table47 dimensions the 2-class network across symmetric loads.
func Table47(opts core.Options) ([]Table47Row, error) {
	rows := make([]Table47Row, 0, len(Table47Rates))
	for _, s := range Table47Rates {
		n := topo.Canada2Class(s, s)
		res, err := core.Dimension(n, opts)
		if err != nil {
			return nil, fmt.Errorf("table 4.7 at S=%v: %w", s, err)
		}
		rows = append(rows, Table47Row{
			S1: s, S2: s, Total: 2 * s,
			Windows: res.Windows, Power: res.Metrics.Power,
			Evaluations: res.Search.Evaluations,
		})
	}
	return rows, nil
}

// RenderTable47 prints rows in the thesis's layout.
func RenderTable47(w io.Writer, rows []Table47Row) error {
	t := &report.Table{
		Title:   "Table 4.7 — Effect of symmetrical class loadings on optimal window settings (2-class network)",
		Headers: []string{"S1 (msg/s)", "S2 (msg/s)", "S1+S2", "Optimal windows", "Network power"},
	}
	for _, r := range rows {
		t.AddRow(report.Float(r.S1, 1), report.Float(r.S2, 1), report.Float(r.Total, 0),
			report.Windows(r.Windows), report.Float(r.Power, 0))
	}
	_, err := t.WriteTo(w)
	return err
}

// Table48Row is one row of Table 4.8 (dissimilar loadings, 2-class).
type Table48Row struct {
	S1, S2  float64
	Total   float64
	Ratio   float64
	Windows numeric.IntVector
	Power   float64
	// Evaluations counts the objective evaluations WINDIM spent on the row.
	Evaluations int
}

// Table48Loads are the (S1, S2) pairs of Table 4.8.
var Table48Loads = [][2]float64{
	{12, 13}, {10, 15}, {8.4, 16.6}, {7, 18}, {5, 20},
	{18, 18}, {15, 21}, {12, 24}, {9, 27},
}

// Table48 dimensions the 2-class network across dissimilar loads.
func Table48(opts core.Options) ([]Table48Row, error) {
	rows := make([]Table48Row, 0, len(Table48Loads))
	for _, p := range Table48Loads {
		n := topo.Canada2Class(p[0], p[1])
		res, err := core.Dimension(n, opts)
		if err != nil {
			return nil, fmt.Errorf("table 4.8 at S=%v: %w", p, err)
		}
		rows = append(rows, Table48Row{
			S1: p[0], S2: p[1], Total: p[0] + p[1], Ratio: p[1] / p[0],
			Windows: res.Windows, Power: res.Metrics.Power,
			Evaluations: res.Search.Evaluations,
		})
	}
	return rows, nil
}

// RenderTable48 prints rows in the thesis's layout.
func RenderTable48(w io.Writer, rows []Table48Row) error {
	t := &report.Table{
		Title:   "Table 4.8 — Effect of dissimilar class loadings on optimal window settings (2-class network)",
		Headers: []string{"S1 (msg/s)", "S2 (msg/s)", "S1+S2", "S2/S1", "Optimal windows", "Network power"},
	}
	for _, r := range rows {
		t.AddRow(report.Float(r.S1, 1), report.Float(r.S2, 1), report.Float(r.Total, 0),
			report.Float(r.Ratio, 2), report.Windows(r.Windows), report.Float(r.Power, 0))
	}
	_, err := t.WriteTo(w)
	return err
}

// Fig49Series holds power-versus-load curves for fixed window settings
// (Fig. 4.9).
type Fig49Series struct {
	Window int       // the symmetric setting (E, E)
	Rates  []float64 // S1 = S2 sweep
	Power  []float64
}

// Fig49Windows are the fixed symmetric windows plotted in Fig. 4.9.
var Fig49Windows = []int{1, 2, 3, 4, 5, 6, 7}

// Fig49Rates is the arrival-rate sweep of Fig. 4.9.
var Fig49Rates = []float64{2.5, 5, 7.5, 10, 12.5, 15, 17.5, 20, 22.5, 25, 30, 35, 40, 50, 60, 75, 90, 100}

// Fig49 sweeps power against symmetric load for each fixed window. The
// sweep is rate-outer: each rate's network is turned into one core.Engine
// and every window evaluated against it, so the model is built and
// validated once per rate instead of once per point.
func Fig49(opts core.Options) ([]Fig49Series, error) {
	out := make([]Fig49Series, len(Fig49Windows))
	for i, e := range Fig49Windows {
		out[i] = Fig49Series{Window: e}
	}
	for _, rate := range Fig49Rates {
		n := topo.Canada2Class(rate, rate)
		eng, err := core.NewEngine(n, opts)
		if err != nil {
			return nil, fmt.Errorf("fig 4.9 at S=%v: %w", rate, err)
		}
		for i, e := range Fig49Windows {
			m, err := eng.Evaluate(numeric.IntVector{e, e})
			if err != nil {
				return nil, fmt.Errorf("fig 4.9 at E=%d S=%v: %w", e, rate, err)
			}
			out[i].Rates = append(out[i].Rates, rate)
			out[i].Power = append(out[i].Power, m.Power)
		}
	}
	return out, nil
}

// RenderFig49 prints the curves as an ASCII chart plus a data table.
func RenderFig49(w io.Writer, series []Fig49Series) error {
	chart := make([]report.Series, 0, len(series))
	for _, s := range series {
		chart = append(chart, report.Series{
			Name:   fmt.Sprintf("E=(%d,%d)", s.Window, s.Window),
			X:      s.Rates,
			Y:      s.Power,
			Marker: byte('0' + s.Window),
		})
	}
	if err := report.Chart(w, "Fig. 4.9 — Network power vs class arrival rate S1=S2", 72, 18, chart...); err != nil {
		return err
	}
	t := &report.Table{Headers: append([]string{"S1=S2"}, windowHeaders(series)...)}
	for i, rate := range series[0].Rates {
		cells := []string{report.Float(rate, 1)}
		for _, s := range series {
			cells = append(cells, report.Float(s.Power[i], 1))
		}
		t.AddRow(cells...)
	}
	_, err := t.WriteTo(w)
	return err
}

func windowHeaders(series []Fig49Series) []string {
	hs := make([]string, len(series))
	for i, s := range series {
		hs[i] = fmt.Sprintf("P(E=%d,%d)", s.Window, s.Window)
	}
	return hs
}

// Table412Row is one row of Table 4.12 (4-class network).
type Table412Row struct {
	S       [4]float64
	Total   float64
	Windows numeric.IntVector
	PowerOp float64
	P4431   float64
}

// Table412Rates are the eight arrival-rate vectors of Table 4.12.
var Table412Rates = [][4]float64{
	{6, 6, 6, 12},
	{9.957, 4.419, 7.656, 7.968},
	{17.61, 3.56, 3, 5.83},
	{12.50, 12.50, 12.50, 25},
	{21.24, 9.86, 18.85, 12.55},
	{33.59, 1.70, 24.15, 3.06},
	{20, 20, 20, 40},
	{28.18, 38.02, 2.87, 30.93},
}

// Table412 dimensions the 4-class network and compares against the
// Kleinrock hop-count baseline (4, 4, 3, 1).
func Table412(opts core.Options) ([]Table412Row, error) {
	rows := make([]Table412Row, 0, len(Table412Rates))
	for _, s := range Table412Rates {
		n := topo.Canada4Class(s[0], s[1], s[2], s[3])
		res, err := core.Dimension(n, opts)
		if err != nil {
			return nil, fmt.Errorf("table 4.12 at S=%v: %w", s, err)
		}
		base, err := core.Evaluate(n, core.KleinrockWindows(n), opts)
		if err != nil {
			return nil, fmt.Errorf("table 4.12 baseline at S=%v: %w", s, err)
		}
		rows = append(rows, Table412Row{
			S: s, Total: s[0] + s[1] + s[2] + s[3],
			Windows: res.Windows, PowerOp: res.Metrics.Power, P4431: base.Power,
		})
	}
	return rows, nil
}

// RenderTable412 prints rows in the thesis's layout.
func RenderTable412(w io.Writer, rows []Table412Row) error {
	t := &report.Table{
		Title:   "Table 4.12 — Effect of traffic arrival rates on optimal window settings (4-class network)",
		Headers: []string{"S1", "S2", "S3", "S4", "Total", "E_op", "P_op", "P_4431"},
	}
	for _, r := range rows {
		t.AddRow(
			report.Float(r.S[0], 2), report.Float(r.S[1], 2), report.Float(r.S[2], 2), report.Float(r.S[3], 2),
			report.Float(r.Total, 1), report.Windows(r.Windows),
			report.Float(r.PowerOp, 0), report.Float(r.P4431, 0))
	}
	_, err := t.WriteTo(w)
	return err
}

// Fig21Point is one operating point of the throughput-vs-offered-load
// curve (the qualitative Fig. 2.1).
type Fig21Point struct {
	Offered    float64
	Throughput float64
	Deadlocked bool
}

// Fig21Config parameterises the congestion experiment.
type Fig21Config struct {
	// Window applied to every class; 0 disables end-to-end control.
	Window int
	// Buffers is the per-node storage limit K_i.
	Buffers int
	// Seed, Duration, Warmup as in sim.Config.
	Seed     uint64
	Duration float64
	Warmup   float64
}

// Fig21Rates is the offered-load sweep (per class, msg/s).
var Fig21Rates = []float64{5, 10, 15, 20, 25, 30, 35, 40, 50, 60}

// Fig21 simulates the 2-class network with finite node buffers across
// offered loads, with and without windows, showing the Fig. 2.1 shape:
// without flow control, throughput peaks and then collapses as buffers
// fill and store-and-forward blocking spreads; windows hold it up.
func Fig21(cfg Fig21Config) ([]Fig21Point, error) {
	if cfg.Duration == 0 {
		cfg.Duration = 400
		cfg.Warmup = 50
	}
	points := make([]Fig21Point, 0, len(Fig21Rates))
	for _, rate := range Fig21Rates {
		n := topo.Canada2Class(rate, rate)
		buffers := make([]int, len(n.Nodes))
		for i := range buffers {
			buffers[i] = cfg.Buffers
		}
		res, err := sim.Run(n, sim.Config{
			Windows:     numeric.IntVector{cfg.Window, cfg.Window},
			Seed:        cfg.Seed,
			Duration:    cfg.Duration,
			Warmup:      cfg.Warmup,
			Source:      sim.SourceBacklogged,
			NodeBuffers: buffers,
		})
		if err != nil {
			return nil, fmt.Errorf("fig 2.1 at S=%v: %w", rate, err)
		}
		points = append(points, Fig21Point{
			Offered:    2 * rate,
			Throughput: res.Throughput,
			Deadlocked: res.Deadlocked,
		})
	}
	return points, nil
}

// RenderFig21 prints controlled and uncontrolled curves side by side.
func RenderFig21(w io.Writer, uncontrolled, controlled []Fig21Point) error {
	mk := func(points []Fig21Point) (xs, ys []float64) {
		for _, p := range points {
			xs = append(xs, p.Offered)
			ys = append(ys, p.Throughput)
		}
		return
	}
	ux, uy := mk(uncontrolled)
	cx, cy := mk(controlled)
	if err := report.Chart(w, "Fig. 2.1 — Throughput vs offered load (finite buffers)", 72, 14,
		report.Series{Name: "no flow control", X: ux, Y: uy, Marker: 'x'},
		report.Series{Name: "windows dimensioned", X: cx, Y: cy, Marker: 'o'},
	); err != nil {
		return err
	}
	t := &report.Table{Headers: []string{"Offered (msg/s)", "Thruput, no control", "deadlock", "Thruput, windows", "deadlock"}}
	for i := range uncontrolled {
		t.AddRow(
			report.Float(uncontrolled[i].Offered, 1),
			report.Float(uncontrolled[i].Throughput, 2), fmt.Sprint(uncontrolled[i].Deadlocked),
			report.Float(controlled[i].Throughput, 2), fmt.Sprint(controlled[i].Deadlocked))
	}
	_, err := t.WriteTo(w)
	return err
}

// ValidationRow compares the solvers on one window setting of the 2-class
// network.
type ValidationRow struct {
	Windows    numeric.IntVector
	ExactPower float64
	SigmaPower float64
	SchwPower  float64
	SimPower   float64
	SimCI      float64 // 95% CI half-width on the simulated delay, seconds
}

// Validate cross-checks the sigma-heuristic, Schweitzer AMVA and the
// simulator against exact MVA on the 2-class network at the given load.
func Validate(s float64, seed uint64) ([]ValidationRow, error) {
	var rows []ValidationRow
	for _, e := range []int{1, 2, 3, 4, 5, 6} {
		n := topo.Canada2Class(s, s)
		w := numeric.IntVector{e, e}
		exact, err := core.Evaluate(n, w, core.Options{Evaluator: core.EvalExactMVA})
		if err != nil {
			return nil, err
		}
		sig, err := core.Evaluate(n, w, core.Options{Evaluator: core.EvalSigmaMVA})
		if err != nil {
			return nil, err
		}
		schw, err := core.Evaluate(n, w, core.Options{Evaluator: core.EvalSchweitzerMVA})
		if err != nil {
			return nil, err
		}
		simRes, err := sim.Run(n, sim.Config{Windows: w, Seed: seed, Duration: 3000, Warmup: 300})
		if err != nil {
			return nil, err
		}
		ci := 0.0
		for _, c := range simRes.PerClass {
			ci += c.DelayCI95
		}
		rows = append(rows, ValidationRow{
			Windows:    w,
			ExactPower: exact.Power,
			SigmaPower: sig.Power,
			SchwPower:  schw.Power,
			SimPower:   simRes.Power,
			SimCI:      ci / float64(len(simRes.PerClass)),
		})
	}
	return rows, nil
}

// RenderValidation prints the cross-solver comparison.
func RenderValidation(w io.Writer, s float64, rows []ValidationRow) error {
	t := &report.Table{
		Title:   fmt.Sprintf("Validation — power by solver, 2-class network at S1=S2=%v msg/s", s),
		Headers: []string{"Windows", "Exact MVA", "Sigma AMVA", "Schweitzer", "Simulation", "sim delay CI95 (s)"},
	}
	for _, r := range rows {
		t.AddRow(report.Windows(r.Windows),
			report.Float(r.ExactPower, 1), report.Float(r.SigmaPower, 1),
			report.Float(r.SchwPower, 1), report.Float(r.SimPower, 1),
			report.Float(r.SimCI, 4))
	}
	_, err := t.WriteTo(w)
	return err
}

// AblationRow compares WINDIM variants on one network.
type AblationRow struct {
	Name        string
	Windows     numeric.IntVector
	Power       float64
	Evaluations int
}

// Ablation runs WINDIM on the 4-class network with each evaluator and
// each initialisation, and against exhaustive search with the exact
// evaluator — quantifying what the thesis's design choices buy.
func Ablation(s [4]float64) ([]AblationRow, error) {
	n := topo.Canada4Class(s[0], s[1], s[2], s[3])
	var rows []AblationRow
	type variant struct {
		name string
		opts core.Options
	}
	variants := []variant{
		{"pattern + sigma AMVA (thesis)", core.Options{}},
		{"pattern + Schweitzer AMVA", core.Options{Evaluator: core.EvalSchweitzerMVA}},
		{"pattern + Linearizer AMVA", core.Options{Evaluator: core.EvalLinearizerMVA}},
		{"pattern + sigma, bottleneck init", core.Options{MVA: mva.Options{Init: mva.Bottleneck}}},
		{"pattern + exact MVA", core.Options{Evaluator: core.EvalExactMVA, MaxWindow: 8}},
		{"exhaustive + exact MVA (reference)", core.Options{Evaluator: core.EvalExactMVA, Search: core.ExhaustiveSearch, MaxWindow: 6}},
	}
	for _, v := range variants {
		res, err := core.Dimension(n, v.opts)
		if err != nil {
			return nil, fmt.Errorf("ablation %q: %w", v.name, err)
		}
		// Judge every variant's chosen windows under the same exact
		// model so powers are comparable.
		judged, err := core.Evaluate(n, res.Windows, core.Options{Evaluator: core.EvalExactMVA})
		var p float64
		if err == nil {
			p = judged.Power
		} else {
			p = res.Metrics.Power
		}
		rows = append(rows, AblationRow{
			Name: v.name, Windows: res.Windows, Power: p,
			Evaluations: res.Search.Evaluations,
		})
	}
	return rows, nil
}

// RenderAblation prints the ablation table.
func RenderAblation(w io.Writer, s [4]float64, rows []AblationRow) error {
	t := &report.Table{
		Title:   fmt.Sprintf("Ablation — WINDIM variants on the 4-class network at S=%v (power judged by exact MVA)", s),
		Headers: []string{"Variant", "Windows", "Power (exact)", "Objective evals"},
	}
	for _, r := range rows {
		t.AddRow(r.Name, report.Windows(r.Windows), report.Float(r.Power, 1), fmt.Sprint(r.Evaluations))
	}
	_, err := t.WriteTo(w)
	return err
}

// KleinrockCheck verifies eq. 4.21's optimum on a p-hop tandem: the
// closed-chain model's power-optimal window equals the hop count when
// there is no cross-traffic. Returns (modelOptimal, hopRule) pairs.
func KleinrockCheck(hops int, rate float64) (numeric.IntVector, int, error) {
	n, err := topo.Tandem(hops, 50000, rate, 1000)
	if err != nil {
		return nil, 0, err
	}
	res, err := core.Dimension(n, core.Options{Evaluator: core.EvalExactMVA, Search: core.ExhaustiveSearch, MaxWindow: 3*hops + 4})
	if err != nil {
		return nil, 0, err
	}
	k := power.Kleinrock{Hops: hops, Mu: 50}
	return res.Windows, k.OptimalWindow(), nil
}
