package experiments

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func TestTable47ShapeMatchesPaper(t *testing.T) {
	rows, err := Table47(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Table47Rates) {
		t.Fatalf("got %d rows", len(rows))
	}
	prevWindow := 1 << 30
	prevPower := 0.0
	for _, r := range rows {
		// Symmetric loads give symmetric windows.
		if r.Windows[0] != r.Windows[1] {
			t.Errorf("S=%v: asymmetric windows %v", r.S1, r.Windows)
		}
		// Windows shrink (weakly) as load rises.
		if r.Windows[0] > prevWindow {
			t.Errorf("S=%v: window grew to %v", r.S1, r.Windows)
		}
		prevWindow = r.Windows[0]
		// Maximum power grows with load.
		if r.Power < prevPower-1e-9 {
			t.Errorf("S=%v: power fell to %v from %v", r.S1, r.Power, prevPower)
		}
		prevPower = r.Power
		// Power magnitude in the paper's band (they report 159..196).
		if r.Power < 100 || r.Power > 300 {
			t.Errorf("S=%v: power %v outside the plausible band", r.S1, r.Power)
		}
	}
	// The spread across the table: paper goes 5 -> 2.
	if rows[0].Windows[0] < 3 || rows[len(rows)-1].Windows[0] > 3 {
		t.Errorf("window range %v..%v does not bracket the paper's trend",
			rows[0].Windows, rows[len(rows)-1].Windows)
	}
	var b strings.Builder
	if err := RenderTable47(&b, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Table 4.7") {
		t.Error("render missing title")
	}
}

func TestTable48ShapeMatchesPaper(t *testing.T) {
	rows, err := Table48(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Within each total-load group, power degrades as the loads become
	// more dissimilar (paper: 159 -> 138 at total 25; 179 -> 161 at 36).
	groups := map[float64][]Table48Row{}
	for _, r := range rows {
		groups[r.Total] = append(groups[r.Total], r)
	}
	for total, g := range groups {
		for i := 1; i < len(g); i++ {
			if g[i].Power > g[i-1].Power+1e-9 {
				t.Errorf("total %v: power rose from %v to %v as ratio grew %v -> %v",
					total, g[i-1].Power, g[i].Power, g[i-1].Ratio, g[i].Ratio)
			}
		}
		// Windows stay close to the symmetric optimum even at ratio 3-4
		// (the paper's "insensitivity" observation): no window drifts by
		// more than 2 from the group's symmetric row.
		sym := g[0].Windows
		for _, r := range g {
			for k := range r.Windows {
				d := r.Windows[k] - sym[k]
				if d < -2 || d > 2 {
					t.Errorf("total %v ratio %v: windows %v far from symmetric %v",
						total, r.Ratio, r.Windows, sym)
				}
			}
		}
	}
	var b strings.Builder
	if err := RenderTable48(&b, rows); err != nil {
		t.Fatal(err)
	}
}

func TestFig49ShapeMatchesPaper(t *testing.T) {
	series, err := Fig49(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	bySize := map[int]Fig49Series{}
	for _, s := range series {
		bySize[s.Window] = s
	}
	// Small windows: power grows monotonically to a plateau.
	small := bySize[1]
	for i := 1; i < len(small.Power); i++ {
		if small.Power[i] < small.Power[i-1]-1e-6 {
			t.Errorf("E=1: power fell at S=%v", small.Rates[i])
		}
	}
	// Large windows: power rises to a knee then falls (rise-and-fall of
	// Fig. 4.9).
	large := bySize[7]
	peakAt, peak := 0, 0.0
	for i, p := range large.Power {
		if p > peak {
			peak, peakAt = p, i
		}
	}
	if peakAt == 0 || peakAt == len(large.Power)-1 {
		t.Errorf("E=7: no interior peak (peak at index %d)", peakAt)
	}
	if last := large.Power[len(large.Power)-1]; last > 0.95*peak {
		t.Errorf("E=7: power does not degrade after the knee (peak %v, final %v)", peak, last)
	}
	// Beyond the knee the large window is inferior to the well-chosen
	// small one (paper: windows above (5,5) are dominated).
	moderate := bySize[3]
	lastIdx := len(large.Power) - 1
	if large.Power[lastIdx] > moderate.Power[lastIdx] {
		t.Errorf("E=7 (%v) beats E=3 (%v) at max load", large.Power[lastIdx], moderate.Power[lastIdx])
	}
	var b strings.Builder
	if err := RenderFig49(&b, series); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Fig. 4.9") {
		t.Error("render missing title")
	}
}

func TestTable412ShapeMatchesPaper(t *testing.T) {
	rows, err := Table412(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Table412Rates) {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		// WINDIM never loses to the hop-count rule.
		if r.PowerOp < r.P4431-1e-6 {
			t.Errorf("S=%v: P_op %v below P_4431 %v", r.S, r.PowerOp, r.P4431)
		}
	}
	// Within each total-load group, the capacity-proportional rates
	// (1:1:1:2) give the highest optimal power — the thesis's
	// observation.
	groups := map[float64][]Table412Row{}
	for _, r := range rows {
		groups[r.Total] = append(groups[r.Total], r)
	}
	for total, g := range groups {
		if len(g) < 2 {
			continue
		}
		if g[0].PowerOp < g[1].PowerOp {
			t.Errorf("total %v: proportional rates %v do not maximise power (%v < %v)",
				total, g[0].S, g[0].PowerOp, g[1].PowerOp)
		}
	}
	// The headline gap: at the heaviest proportional load the optimum
	// roughly doubles the baseline (paper: 599 vs 277).
	heavy := rows[6]
	if heavy.PowerOp < 1.5*heavy.P4431 {
		t.Errorf("heavy row: P_op %v vs P_4431 %v lacks the paper's gap", heavy.PowerOp, heavy.P4431)
	}
	var b strings.Builder
	if err := RenderTable412(&b, rows); err != nil {
		t.Fatal(err)
	}
}

func TestFig21CongestionCollapse(t *testing.T) {
	uncontrolled, err := Fig21(Fig21Config{Window: 0, Buffers: 4, Seed: 5, Duration: 300, Warmup: 30})
	if err != nil {
		t.Fatal(err)
	}
	controlled, err := Fig21(Fig21Config{Window: 3, Buffers: 4, Seed: 5, Duration: 300, Warmup: 30})
	if err != nil {
		t.Fatal(err)
	}
	// Uncontrolled: throughput at extreme load falls below its peak
	// (congestion), controlled: stays near its peak.
	peakU, lastU := 0.0, uncontrolled[len(uncontrolled)-1].Throughput
	for _, p := range uncontrolled {
		if p.Throughput > peakU {
			peakU = p.Throughput
		}
	}
	if lastU > 0.9*peakU {
		t.Errorf("no congestion shape: uncontrolled last %v vs peak %v", lastU, peakU)
	}
	lastC := controlled[len(controlled)-1].Throughput
	if lastC < lastU {
		t.Errorf("windows (%v) should beat no control (%v) at overload", lastC, lastU)
	}
	var b strings.Builder
	if err := RenderFig21(&b, uncontrolled, controlled); err != nil {
		t.Fatal(err)
	}
}

func TestValidateAgreement(t *testing.T) {
	rows, err := Validate(20, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		relSig := abs(r.SigmaPower-r.ExactPower) / r.ExactPower
		relSim := abs(r.SimPower-r.ExactPower) / r.ExactPower
		if relSig > 0.08 {
			t.Errorf("windows %v: sigma power %v vs exact %v", r.Windows, r.SigmaPower, r.ExactPower)
		}
		if relSim > 0.10 {
			t.Errorf("windows %v: sim power %v vs exact %v", r.Windows, r.SimPower, r.ExactPower)
		}
	}
	var b strings.Builder
	if err := RenderValidation(&b, 20, rows); err != nil {
		t.Fatal(err)
	}
}

func TestAblation(t *testing.T) {
	rows, err := Ablation([4]float64{6, 6, 6, 12})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("got %d variants", len(rows))
	}
	// The exhaustive exact reference is at least as good as every other
	// variant (same judge).
	ref := rows[len(rows)-1].Power
	for _, r := range rows[:len(rows)-1] {
		if r.Power > ref*1.001 {
			t.Errorf("%s power %v exceeds exhaustive reference %v", r.Name, r.Power, ref)
		}
	}
	// The thesis's configuration lands within 10%% of the reference.
	if rows[0].Power < 0.9*ref {
		t.Errorf("thesis variant power %v far below reference %v", rows[0].Power, ref)
	}
	var b strings.Builder
	if err := RenderAblation(&b, [4]float64{6, 6, 6, 12}, rows); err != nil {
		t.Fatal(err)
	}
}

func TestKleinrockCheck(t *testing.T) {
	// With light cross-traffic-free tandems the model optimum is near
	// the hop count (exactly Hops under eq. 4.21's assumptions; the
	// closed-chain model adds the source queue, so allow +-2).
	for _, hops := range []int{2, 4} {
		opt, rule, err := KleinrockCheck(hops, 25)
		if err != nil {
			t.Fatal(err)
		}
		if rule != hops {
			t.Errorf("hop rule = %d", rule)
		}
		if opt[0] < hops-2 || opt[0] > hops+2 {
			t.Errorf("hops=%d: model optimum %v far from hop rule", hops, opt)
		}
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
