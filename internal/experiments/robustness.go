package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/topo"
)

// RobustnessRow reports one assumption-breaking scenario: simulated power
// at the WINDIM windows and at the Kleinrock hop-count windows.
type RobustnessRow struct {
	Scenario string
	PowerOpt float64
	PowerHop float64
}

// Robustness answers the question the thesis leaves open: do the windows
// dimensioned under the product-form model stay good when its
// assumptions break? The 4-class network is dimensioned once under the
// model (exponential resampled lengths, Poisson sources), then both the
// WINDIM and the hop-rule settings are simulated under progressively
// less ideal traffic. The dimensioning is robust if the WINDIM settings
// keep their advantage in every row.
func Robustness(seed uint64) ([]RobustnessRow, error) {
	n := topo.Canada4Class(20, 20, 20, 40)
	res, err := core.Dimension(n, core.Options{})
	if err != nil {
		return nil, err
	}
	hop := core.KleinrockWindows(n)
	base := sim.Config{Duration: 6000, Warmup: 600, Seed: seed}
	scenarios := []struct {
		name string
		mod  func(*sim.Config)
	}{
		{"model-faithful (exp lengths, Poisson)", func(*sim.Config) {}},
		{"deterministic lengths", func(c *sim.Config) { c.LengthCV = 0.01 }},
		{"hyperexponential lengths (CV 2)", func(c *sim.Config) { c.LengthCV = 2 }},
		{"correlated lengths across hops", func(c *sim.Config) { c.CorrelatedLengths = true }},
		{"bursty sources (B=6)", func(c *sim.Config) { c.Burstiness = 6; c.BurstOn = 0.5 }},
		{"bursty + correlated + CV 2", func(c *sim.Config) {
			c.Burstiness = 6
			c.BurstOn = 0.5
			c.CorrelatedLengths = true
			c.LengthCV = 2
		}},
	}
	rows := make([]RobustnessRow, 0, len(scenarios))
	for _, sc := range scenarios {
		cfgOpt := base
		sc.mod(&cfgOpt)
		cfgOpt.Windows = res.Windows
		opt, err := sim.Run(n, cfgOpt)
		if err != nil {
			return nil, fmt.Errorf("robustness %q: %w", sc.name, err)
		}
		cfgHop := base
		sc.mod(&cfgHop)
		cfgHop.Windows = hop
		hopRes, err := sim.Run(n, cfgHop)
		if err != nil {
			return nil, fmt.Errorf("robustness %q: %w", sc.name, err)
		}
		rows = append(rows, RobustnessRow{
			Scenario: sc.name,
			PowerOpt: opt.Power,
			PowerHop: hopRes.Power,
		})
	}
	return rows, nil
}

// RenderRobustness prints the scenario table.
func RenderRobustness(w io.Writer, rows []RobustnessRow) error {
	t := &report.Table{
		Title:   "Robustness — simulated power of WINDIM vs hop-rule windows as model assumptions break (4-class network, S = 20,20,20,40)",
		Headers: []string{"Scenario", "P(WINDIM)", "P(hop rule)", "Advantage"},
	}
	for _, r := range rows {
		adv := 0.0
		if r.PowerHop > 0 {
			adv = r.PowerOpt / r.PowerHop
		}
		t.AddRow(r.Scenario, report.Float(r.PowerOpt, 1), report.Float(r.PowerHop, 1),
			report.Float(adv, 2)+"x")
	}
	_, err := t.WriteTo(w)
	return err
}
