package experiments

import (
	"context"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/numeric"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/topo"
)

// RobustnessRow reports one assumption-breaking scenario: simulated power
// at the WINDIM windows and at the Kleinrock hop-count windows, each
// averaged over the replications with a Student-t 95% half-width.
type RobustnessRow struct {
	Scenario string
	PowerOpt float64
	PowerHop float64
	// OptCI95 and HopCI95 are the 95% half-widths across replications
	// (0 when the row ran a single replication).
	OptCI95 float64
	HopCI95 float64
	// Reps is the number of completed replications behind each power.
	Reps int
}

// Robustness answers the question the thesis leaves open: do the windows
// dimensioned under the product-form model stay good when its
// assumptions break? The 4-class network is dimensioned once under the
// model (exponential resampled lengths, Poisson sources), then both the
// WINDIM and the hop-rule settings are simulated under progressively
// less ideal traffic — including injected link outages and capacity
// degradations the analytic model cannot express at all. Each scenario
// runs reps independent replications (reps <= 0 means 1) so every power
// carries a confidence interval. The dimensioning is robust if the
// WINDIM settings keep their advantage in every row.
func Robustness(seed uint64, reps int) ([]RobustnessRow, error) {
	if reps <= 0 {
		reps = 1
	}
	n := topo.Canada4Class(20, 20, 20, 40)
	res, err := core.Dimension(n, core.Options{})
	if err != nil {
		return nil, err
	}
	hop := core.KleinrockWindows(n)
	base := sim.Config{Duration: 6000, Warmup: 600, Seed: seed}
	// simPower runs one window setting under one scenario config and
	// returns the replication-mean power with its CI — the single body
	// both the WINDIM and the hop-rule columns share.
	simPower := func(name string, mod func(*sim.Config), windows numeric.IntVector) (float64, float64, int, error) {
		cfg := base
		mod(&cfg)
		cfg.Windows = windows
		b, err := sim.RunReplications(context.Background(), n, cfg, reps, reps)
		if err != nil {
			return 0, 0, 0, fmt.Errorf("robustness %q: %w", name, err)
		}
		if b.Failed > 0 {
			return 0, 0, 0, fmt.Errorf("robustness %q: %d/%d replications failed: %w",
				name, b.Failed, reps, firstReplicationErr(b))
		}
		return b.Power, b.PowerCI95, b.Completed, nil
	}
	scenarios := []struct {
		name string
		mod  func(*sim.Config)
	}{
		{"model-faithful (exp lengths, Poisson)", func(*sim.Config) {}},
		{"deterministic lengths", func(c *sim.Config) { c.LengthCV = 0.01 }},
		{"hyperexponential lengths (CV 2)", func(c *sim.Config) { c.LengthCV = 2 }},
		{"correlated lengths across hops", func(c *sim.Config) { c.CorrelatedLengths = true }},
		{"bursty sources (B=6)", func(c *sim.Config) { c.Burstiness = 6; c.BurstOn = 0.5 }},
		{"bursty + correlated + CV 2", func(c *sim.Config) {
			c.Burstiness = 6
			c.BurstOn = 0.5
			c.CorrelatedLengths = true
			c.LengthCV = 2
		}},
		// Fault scenarios: conditions outside the queueing model entirely.
		// Channel 0 carries traffic in every class configuration of the
		// Canada net, so both window settings feel the fault.
		{"link outage (channel 0 down 600 s)", func(c *sim.Config) {
			c.Faults = &sim.FaultSpec{Outages: []sim.Outage{{Channel: 0, Start: 2000, End: 2600}}}
		}},
		{"degraded trunk (channel 0 at half rate 2000 s)", func(c *sim.Config) {
			c.Faults = &sim.FaultSpec{Degradations: []sim.Degradation{{Channel: 0, Start: 2000, End: 4000, Factor: 0.5}}}
		}},
	}
	rows := make([]RobustnessRow, 0, len(scenarios))
	for _, sc := range scenarios {
		pOpt, ciOpt, done, err := simPower(sc.name, sc.mod, res.Windows)
		if err != nil {
			return nil, err
		}
		pHop, ciHop, _, err := simPower(sc.name, sc.mod, hop)
		if err != nil {
			return nil, err
		}
		rows = append(rows, RobustnessRow{
			Scenario: sc.name,
			PowerOpt: pOpt,
			PowerHop: pHop,
			OptCI95:  ciOpt,
			HopCI95:  ciHop,
			Reps:     done,
		})
	}
	return rows, nil
}

func firstReplicationErr(b *sim.BatchResult) error {
	for i := range b.Reps {
		if b.Reps[i].Err != nil {
			return b.Reps[i].Err
		}
	}
	return nil
}

// RenderRobustness prints the scenario table.
func RenderRobustness(w io.Writer, rows []RobustnessRow) error {
	t := &report.Table{
		Title:   "Robustness — simulated power of WINDIM vs hop-rule windows as model assumptions break (4-class network, S = 20,20,20,40)",
		Headers: []string{"Scenario", "P(WINDIM)", "P(hop rule)", "Advantage"},
	}
	withCI := func(p, ci float64) string {
		s := report.Float(p, 1)
		if ci > 0 {
			s += " ±" + report.Float(ci, 1)
		}
		return s
	}
	for _, r := range rows {
		adv := 0.0
		if r.PowerHop > 0 {
			adv = r.PowerOpt / r.PowerHop
		}
		t.AddRow(r.Scenario, withCI(r.PowerOpt, r.OptCI95), withCI(r.PowerHop, r.HopCI95),
			report.Float(adv, 2)+"x")
	}
	_, err := t.WriteTo(w)
	return err
}
