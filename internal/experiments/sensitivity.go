package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/numeric"
	"repro/internal/report"
	"repro/internal/topo"
)

// SensitivityRow reports one operating load of the sensitivity study.
type SensitivityRow struct {
	// S is the symmetric per-class rate the network actually runs at.
	S float64
	// PowerStatic is the power of the windows dimensioned once at the
	// design load.
	PowerStatic float64
	// PowerTuned is the power of the windows re-dimensioned for S.
	PowerTuned float64
	// TunedWindows are the per-load optimal windows.
	TunedWindows numeric.IntVector
	// Regret is 1 - PowerStatic/PowerTuned: the cost of not adapting.
	Regret float64
}

// Sensitivity quantifies §4.5's practicality argument: "instantaneous
// window sizing is virtually impractical, and so the window settings
// should be as insensitive to traffic fluctuations as possible". The
// 2-class network is dimensioned once at designLoad; the table reports
// how much power that static setting gives away as the actual load
// drifts across sweep, versus re-dimensioning at every load.
func Sensitivity(designLoad float64, sweep []float64, opts core.Options) (numeric.IntVector, []SensitivityRow, error) {
	design := topo.Canada2Class(designLoad, designLoad)
	res, err := core.Dimension(design, opts)
	if err != nil {
		return nil, nil, fmt.Errorf("sensitivity design point: %w", err)
	}
	static := res.Windows
	rows := make([]SensitivityRow, 0, len(sweep))
	for _, s := range sweep {
		n := topo.Canada2Class(s, s)
		eng, err := core.NewEngine(n, opts)
		if err != nil {
			return nil, nil, fmt.Errorf("sensitivity at S=%v: %w", s, err)
		}
		atStatic, err := eng.Evaluate(static)
		if err != nil {
			return nil, nil, fmt.Errorf("sensitivity at S=%v: %w", s, err)
		}
		tuned, err := core.Dimension(n, opts)
		if err != nil {
			return nil, nil, fmt.Errorf("sensitivity tuning at S=%v: %w", s, err)
		}
		row := SensitivityRow{
			S:            s,
			PowerStatic:  atStatic.Power,
			PowerTuned:   tuned.Metrics.Power,
			TunedWindows: tuned.Windows,
		}
		if row.PowerTuned > 0 {
			row.Regret = 1 - row.PowerStatic/row.PowerTuned
		}
		rows = append(rows, row)
	}
	return static, rows, nil
}

// DefaultSensitivitySweep is the load range of the study (the Table 4.7
// span plus a light-traffic point).
var DefaultSensitivitySweep = []float64{5, 10, 15, 20, 25, 37.5, 50, 75}

// RenderSensitivity prints the study.
func RenderSensitivity(w io.Writer, designLoad float64, static numeric.IntVector, rows []SensitivityRow) error {
	t := &report.Table{
		Title: fmt.Sprintf(
			"Sensitivity — windows %s dimensioned at S1=S2=%g, operated across loads (2-class network)",
			report.Windows(static), designLoad),
		Headers: []string{"S1=S2", "P(static)", "P(re-tuned)", "tuned windows", "regret"},
	}
	for _, r := range rows {
		t.AddRow(report.Float(r.S, 1), report.Float(r.PowerStatic, 1),
			report.Float(r.PowerTuned, 1), report.Windows(r.TunedWindows),
			report.Float(100*r.Regret, 1)+"%")
	}
	_, err := t.WriteTo(w)
	return err
}
