package experiments

import (
	"strings"
	"testing"
)

func TestRobustness(t *testing.T) {
	rows, err := Robustness(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("got %d scenarios", len(rows))
	}
	for _, r := range rows {
		if r.PowerOpt <= 0 || r.PowerHop <= 0 {
			t.Errorf("%s: degenerate powers %v / %v", r.Scenario, r.PowerOpt, r.PowerHop)
			continue
		}
		if r.Reps != 2 {
			t.Errorf("%s: %d replications, want 2", r.Scenario, r.Reps)
		}
		if r.OptCI95 <= 0 || r.HopCI95 <= 0 {
			t.Errorf("%s: missing replication CIs (%v / %v)", r.Scenario, r.OptCI95, r.HopCI95)
		}
		// The dimensioned windows keep a clear advantage in every
		// scenario — the robustness claim itself.
		if r.PowerOpt < 1.2*r.PowerHop {
			t.Errorf("%s: WINDIM %v vs hop rule %v — advantage lost", r.Scenario, r.PowerOpt, r.PowerHop)
		}
	}
	// The model-faithful row tracks the analytic optimum (~597).
	if rows[0].PowerOpt < 500 || rows[0].PowerOpt > 700 {
		t.Errorf("model-faithful power %v outside the expected band", rows[0].PowerOpt)
	}
	var b strings.Builder
	if err := RenderRobustness(&b, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Robustness") {
		t.Error("render missing title")
	}
}
