package experiments

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func TestSensitivity(t *testing.T) {
	static, rows, err := Sensitivity(20, DefaultSensitivitySweep, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(DefaultSensitivitySweep) {
		t.Fatalf("got %d rows", len(rows))
	}
	if len(static) != 2 {
		t.Fatalf("static windows = %v", static)
	}
	for _, r := range rows {
		// Re-tuning can never lose to the static setting (same
		// evaluator, superset search).
		if r.PowerStatic > r.PowerTuned*1.001 {
			t.Errorf("S=%v: static %v beats tuned %v", r.S, r.PowerStatic, r.PowerTuned)
		}
		if r.Regret < -1e-6 || r.Regret > 0.5 {
			t.Errorf("S=%v: regret %v out of band", r.S, r.Regret)
		}
	}
	// The thesis's insensitivity claim: across the Table 4.7 load span
	// (within a factor ~4 of the design point) the static setting gives
	// up only a few percent.
	for _, r := range rows {
		if r.S >= 10 && r.S <= 75 && r.Regret > 0.10 {
			t.Errorf("S=%v: regret %.1f%% breaks the insensitivity claim", r.S, 100*r.Regret)
		}
	}
	var b strings.Builder
	if err := RenderSensitivity(&b, 20, static, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Sensitivity") {
		t.Error("render missing title")
	}
}
