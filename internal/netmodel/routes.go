package netmodel

import (
	"container/heap"
	"fmt"
)

// ShortestRoute returns the channel sequence of a minimum-delay route
// from node from to node to, treating channels as half-duplex edges
// weighted by their no-load transmission time for a message of the given
// mean length (meanLength/Capacity). Ties break deterministically by
// channel index. It returns an error when no route exists.
//
// The thesis fixes routes by hand for its 6-node examples; this helper
// scales route construction to the larger networks Chapter 5 points at.
func (n *Network) ShortestRoute(from, to int, meanLength float64) ([]int, error) {
	if from < 0 || from >= len(n.Nodes) || to < 0 || to >= len(n.Nodes) {
		return nil, fmt.Errorf("netmodel: route endpoints (%d, %d) out of range [0, %d)", from, to, len(n.Nodes))
	}
	if meanLength <= 0 {
		return nil, fmt.Errorf("netmodel: mean length %v must be positive", meanLength)
	}
	if from == to {
		return nil, fmt.Errorf("netmodel: route endpoints coincide (node %d)", from)
	}
	// Adjacency: per node, the incident channels.
	adj := make([][]int, len(n.Nodes))
	for l, ch := range n.Channels {
		adj[ch.From] = append(adj[ch.From], l)
		adj[ch.To] = append(adj[ch.To], l)
	}
	const unreached = -1
	dist := make([]float64, len(n.Nodes))
	via := make([]int, len(n.Nodes)) // channel used to reach the node
	done := make([]bool, len(n.Nodes))
	for i := range dist {
		dist[i] = -1
		via[i] = unreached
	}
	pq := &nodeHeap{}
	heap.Push(pq, nodeDist{node: from, dist: 0})
	dist[from] = 0
	for pq.Len() > 0 {
		cur := heap.Pop(pq).(nodeDist)
		if done[cur.node] {
			continue
		}
		done[cur.node] = true
		if cur.node == to {
			break
		}
		for _, l := range adj[cur.node] {
			ch := &n.Channels[l]
			next := ch.To
			if next == cur.node {
				next = ch.From
			}
			if done[next] {
				continue
			}
			w := meanLength / ch.Capacity
			nd := cur.dist + w
			if dist[next] < 0 || nd < dist[next] {
				dist[next] = nd
				via[next] = l
				heap.Push(pq, nodeDist{node: next, dist: nd})
			}
		}
	}
	if via[to] == unreached {
		return nil, fmt.Errorf("netmodel: no route from node %d (%s) to node %d (%s)",
			from, n.Nodes[from].Name, to, n.Nodes[to].Name)
	}
	// Walk back from the sink.
	var rev []int
	cur := to
	for cur != from {
		l := via[cur]
		rev = append(rev, l)
		ch := &n.Channels[l]
		if ch.To == cur {
			cur = ch.From
		} else {
			cur = ch.To
		}
	}
	route := make([]int, len(rev))
	for i := range rev {
		route[i] = rev[len(rev)-1-i]
	}
	return route, nil
}

// AddClass appends a class routed by ShortestRoute between the named
// nodes and returns its index.
func (n *Network) AddClass(name string, fromNode, toNode string, rate, meanLength float64, window int) (int, error) {
	from, to := -1, -1
	for i := range n.Nodes {
		if n.Nodes[i].Name == fromNode {
			from = i
		}
		if n.Nodes[i].Name == toNode {
			to = i
		}
	}
	if from < 0 {
		return 0, fmt.Errorf("netmodel: unknown node %q", fromNode)
	}
	if to < 0 {
		return 0, fmt.Errorf("netmodel: unknown node %q", toNode)
	}
	route, err := n.ShortestRoute(from, to, meanLength)
	if err != nil {
		return 0, err
	}
	n.Classes = append(n.Classes, Class{
		Name: name, Rate: rate, MeanLength: meanLength,
		Route: route, Window: window,
	})
	return len(n.Classes) - 1, nil
}

type nodeDist struct {
	node int
	dist float64
}

type nodeHeap []nodeDist

func (h nodeHeap) Len() int { return len(h) }
func (h nodeHeap) Less(i, j int) bool {
	if h[i].dist != h[j].dist {
		return h[i].dist < h[j].dist
	}
	return h[i].node < h[j].node
}
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(nodeDist)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}
