package netmodel

import (
	"math"
	"strings"
	"testing"
)

func TestOpenAnalysisLine(t *testing.T) {
	n := line3() // channels at 50 and 25 msg/s, class rate 10
	m, err := n.OpenAnalysis()
	if err != nil {
		t.Fatal(err)
	}
	// rho: 10/50 = 0.2 and 10/25 = 0.4; delays 1/40 and 1/15.
	if math.Abs(m.ChannelUtilization[0]-0.2) > 1e-12 || math.Abs(m.ChannelUtilization[1]-0.4) > 1e-12 {
		t.Errorf("utilisations = %v", m.ChannelUtilization)
	}
	want := 1.0/40 + 1.0/15
	if math.Abs(m.ClassDelay[0]-want) > 1e-12 {
		t.Errorf("class delay = %v, want %v", m.ClassDelay[0], want)
	}
	if math.Abs(m.Delay-want) > 1e-12 || m.Throughput != 10 {
		t.Errorf("network delay %v throughput %v", m.Delay, m.Throughput)
	}
	if math.Abs(m.Power-10/want) > 1e-9 {
		t.Errorf("power = %v", m.Power)
	}
}

func TestOpenAnalysisSharedChannel(t *testing.T) {
	n := line3()
	n.Classes = append(n.Classes, Class{
		Name: "c2", Rate: 5, MeanLength: 1000, Route: []int{0}, Window: 1,
	})
	m, err := n.OpenAnalysis()
	if err != nil {
		t.Fatal(err)
	}
	// Channel 0 carries 15 msg/s at mu=50.
	if math.Abs(m.ChannelUtilization[0]-0.3) > 1e-12 {
		t.Errorf("shared channel utilisation = %v", m.ChannelUtilization[0])
	}
	// Class 2 delay is only channel 0's sojourn.
	if math.Abs(m.ClassDelay[1]-1.0/35) > 1e-12 {
		t.Errorf("class 2 delay = %v", m.ClassDelay[1])
	}
}

func TestOpenAnalysisSaturation(t *testing.T) {
	n := line3()
	n.Classes[0].Rate = 30 // channel bc has mu = 25
	_, err := n.OpenAnalysis()
	if err == nil || !strings.Contains(err.Error(), "saturated") {
		t.Fatalf("expected saturation error, got %v", err)
	}
}

func TestOpenAnalysisInvalid(t *testing.T) {
	n := line3()
	n.Channels[0].Capacity = 0
	if _, err := n.OpenAnalysis(); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestClosedModelWithAckStation(t *testing.T) {
	n := line3()
	n.Classes[0].AckDelay = 0.05
	model, excluded, err := n.ClosedModel(nil)
	if err != nil {
		t.Fatal(err)
	}
	// 2 channels + 1 source + 1 ack.
	if model.N() != 4 {
		t.Fatalf("stations = %d, want 4", model.N())
	}
	if len(excluded[0]) != 2 || excluded[0][0] != 2 || excluded[0][1] != 3 {
		t.Errorf("excluded = %v", excluded)
	}
	if model.Stations[3].Kind.String() != "IS" {
		t.Errorf("ack station kind = %v", model.Stations[3].Kind)
	}
	if got := model.Chains[0].ServTime[3]; got != 0.05 {
		t.Errorf("ack service time = %v", got)
	}
	// Chain visits 4 stations cyclically.
	if model.Chains[0].Visits[3] != 1 {
		t.Error("chain does not visit the ack station")
	}
}

func TestValidateRejectsBadAckDelay(t *testing.T) {
	n := line3()
	n.Classes[0].AckDelay = -1
	if err := n.Validate(); err == nil || !strings.Contains(err.Error(), "ack delay") {
		t.Fatalf("expected ack-delay error, got %v", err)
	}
	n.Classes[0].AckDelay = math.Inf(1)
	if err := n.Validate(); err == nil {
		t.Fatal("expected error for infinite ack delay")
	}
}
