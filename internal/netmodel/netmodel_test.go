package netmodel

import (
	"math"
	"strings"
	"testing"

	"repro/internal/numeric"
	"repro/internal/qnet"
)

// line3 returns a 3-node line network with one 2-hop class.
func line3() *Network {
	return &Network{
		Name:  "line3",
		Nodes: []Node{{Name: "a"}, {Name: "b"}, {Name: "c"}},
		Channels: []Channel{
			{Name: "ab", From: 0, To: 1, Capacity: 50000},
			{Name: "bc", From: 1, To: 2, Capacity: 25000},
		},
		Classes: []Class{{
			Name: "c1", Rate: 10, MeanLength: 1000,
			Route: []int{0, 1}, Window: 2,
		}},
	}
}

func TestValidateOK(t *testing.T) {
	if err := line3().Validate(); err != nil {
		t.Fatalf("valid network rejected: %v", err)
	}
}

func TestValidateFailures(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Network)
		substr string
	}{
		{"no nodes", func(n *Network) { n.Nodes = nil }, "no nodes"},
		{"no channels", func(n *Network) { n.Channels = nil }, "no channels"},
		{"no classes", func(n *Network) { n.Classes = nil }, "no classes"},
		{"bad endpoint", func(n *Network) { n.Channels[0].To = 9 }, "out of range"},
		{"self loop", func(n *Network) { n.Channels[0].To = 0 }, "self-loop"},
		{"zero capacity", func(n *Network) { n.Channels[0].Capacity = 0 }, "capacity"},
		{"zero rate", func(n *Network) { n.Classes[0].Rate = 0 }, "arrival rate"},
		{"nan length", func(n *Network) { n.Classes[0].MeanLength = math.NaN() }, "mean length"},
		{"negative window", func(n *Network) { n.Classes[0].Window = -2 }, "negative window"},
		{"empty route", func(n *Network) { n.Classes[0].Route = nil }, "empty route"},
		{"bad channel ref", func(n *Network) { n.Classes[0].Route = []int{0, 5} }, "references channel"},
		{"duplicate channel", func(n *Network) { n.Classes[0].Route = []int{0, 0} }, "twice"},
	}
	for _, c := range cases {
		n := line3()
		c.mutate(n)
		err := n.Validate()
		if err == nil {
			t.Errorf("%s: expected error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.substr) {
			t.Errorf("%s: error %q lacks %q", c.name, err, c.substr)
		}
	}
}

func TestValidateDiscontinuousRoute(t *testing.T) {
	n := line3()
	n.Channels = append(n.Channels, Channel{Name: "far", From: 0, To: 2, Capacity: 1000})
	n.Nodes = append(n.Nodes, Node{Name: "d"})
	n.Channels = append(n.Channels, Channel{Name: "cd", From: 2, To: 3, Capacity: 1000})
	// Route ab (0-1) then cd (2-3): no shared node.
	n.Classes[0].Route = []int{0, 3}
	if err := n.Validate(); err == nil || !strings.Contains(err.Error(), "discontinuous") {
		t.Fatalf("expected discontinuity error, got %v", err)
	}
}

func TestValidateSharedChannelLengthMismatch(t *testing.T) {
	n := line3()
	n.Classes = append(n.Classes, Class{
		Name: "c2", Rate: 5, MeanLength: 2000, Route: []int{0}, Window: 1,
	})
	if err := n.Validate(); err == nil || !strings.Contains(err.Error(), "different mean lengths") {
		t.Fatalf("expected length-mismatch error, got %v", err)
	}
}

func TestRouteNodesForward(t *testing.T) {
	n := line3()
	nodes, err := n.RouteNodes(0)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2}
	for i := range want {
		if nodes[i] != want[i] {
			t.Fatalf("RouteNodes = %v, want %v", nodes, want)
		}
	}
}

func TestRouteNodesReverseTraversal(t *testing.T) {
	// Half-duplex: a route may traverse a channel against its From->To
	// orientation.
	n := line3()
	n.Classes[0].Route = []int{1, 0} // c -> b -> a
	nodes, err := n.RouteNodes(0)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{2, 1, 0}
	for i := range want {
		if nodes[i] != want[i] {
			t.Fatalf("RouteNodes = %v, want %v", nodes, want)
		}
	}
	if err := n.Validate(); err != nil {
		t.Fatalf("reverse route should validate: %v", err)
	}
}

func TestRouteNodesSingleHop(t *testing.T) {
	n := line3()
	n.Classes[0].Route = []int{1}
	nodes, err := n.RouteNodes(0)
	if err != nil {
		t.Fatal(err)
	}
	if nodes[0] != 1 || nodes[1] != 2 {
		t.Errorf("RouteNodes = %v", nodes)
	}
}

func TestHopsAndVectors(t *testing.T) {
	n := line3()
	if n.Hops(0) != 2 {
		t.Errorf("Hops = %d", n.Hops(0))
	}
	if hv := n.HopVector(); !hv.Equal(numeric.IntVector{2}) {
		t.Errorf("HopVector = %v", hv)
	}
	if w := n.Windows(); !w.Equal(numeric.IntVector{2}) {
		t.Errorf("Windows = %v", w)
	}
}

func TestRates(t *testing.T) {
	n := line3()
	if got := n.ChannelServiceRate(0, 0); math.Abs(got-50) > 1e-12 {
		t.Errorf("ChannelServiceRate = %v, want 50", got)
	}
	if got := n.BottleneckRate(0); math.Abs(got-25) > 1e-12 {
		t.Errorf("BottleneckRate = %v, want 25", got)
	}
}

func TestClosedModelShape(t *testing.T) {
	n := line3()
	model, sources, err := n.ClosedModel(nil)
	if err != nil {
		t.Fatal(err)
	}
	if model.N() != 3 { // 2 channels + 1 source
		t.Errorf("stations = %d, want 3", model.N())
	}
	if len(sources) != 1 || len(sources[0]) != 1 || sources[0][0] != 2 {
		t.Errorf("sources = %v", sources)
	}
	ch := model.Chains[0]
	if ch.Population != 2 {
		t.Errorf("population = %d, want window 2", ch.Population)
	}
	// Service times: link ab = 1000/50000 = 0.02 s, bc = 0.04 s,
	// source = 1/rate = 0.1 s.
	if math.Abs(ch.ServTime[0]-0.02) > 1e-12 || math.Abs(ch.ServTime[1]-0.04) > 1e-12 {
		t.Errorf("link service times = %v", ch.ServTime)
	}
	if math.Abs(ch.ServTime[2]-0.1) > 1e-12 {
		t.Errorf("source service time = %v", ch.ServTime[2])
	}
	if err := model.Validate(); err != nil {
		t.Errorf("generated model invalid: %v", err)
	}
	if model.Stations[2].Kind != qnet.FCFS {
		t.Errorf("source station kind = %v", model.Stations[2].Kind)
	}
}

func TestClosedModelWindowOverride(t *testing.T) {
	n := line3()
	model, _, err := n.ClosedModel(numeric.IntVector{7})
	if err != nil {
		t.Fatal(err)
	}
	if model.Chains[0].Population != 7 {
		t.Errorf("population = %d", model.Chains[0].Population)
	}
	if _, _, err := n.ClosedModel(numeric.IntVector{1, 2}); err == nil {
		t.Error("expected dimension error")
	}
	if _, _, err := n.ClosedModel(numeric.IntVector{-1}); err == nil {
		t.Error("expected negative-window error")
	}
}

func TestClosedModelInvalidNetwork(t *testing.T) {
	n := line3()
	n.Channels[0].Capacity = -5
	if _, _, err := n.ClosedModel(nil); err == nil {
		t.Fatal("expected validation error")
	}
}
