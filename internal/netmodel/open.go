package netmodel

import (
	"fmt"
	"math"
)

// OpenMetrics is the analytic solution of the network with no flow
// control and infinite buffers: the classic open Jackson/Kleinrock model
// in which each channel is an independent M/M/1 queue fed by the classes
// routed over it (Ch. 3 §3.3.2 applied to fixed routes).
type OpenMetrics struct {
	// ChannelUtilization[l] is rho_l = lambda_l * length / capacity.
	ChannelUtilization []float64
	// ChannelDelay[l] is the mean M/M/1 sojourn time at channel l in
	// seconds.
	ChannelDelay []float64
	// ClassDelay[r] is class r's end-to-end network delay (sum over its
	// route).
	ClassDelay []float64
	// Throughput equals the total offered rate (an open stable network
	// delivers what it is offered).
	Throughput float64
	// Delay is the throughput-weighted mean network delay.
	Delay float64
	// Power is Throughput/Delay.
	Power float64
}

// OpenAnalysis solves the uncontrolled open model. It returns an error
// (naming the first saturated channel) when some channel's utilisation
// reaches 1 — the regime where flow control stops being optional.
func (n *Network) OpenAnalysis() (*OpenMetrics, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	nL := len(n.Channels)
	m := &OpenMetrics{
		ChannelUtilization: make([]float64, nL),
		ChannelDelay:       make([]float64, nL),
		ClassDelay:         make([]float64, len(n.Classes)),
	}
	// Aggregate per-channel arrival rates.
	lambda := make([]float64, nL)
	for r := range n.Classes {
		for _, l := range n.Classes[r].Route {
			lambda[l] += n.Classes[r].Rate
		}
	}
	for l := range n.Channels {
		if lambda[l] == 0 {
			continue
		}
		// All classes sharing a channel have equal mean length (enforced
		// by Validate), so one service rate per channel suffices.
		var mu float64
		for r := range n.Classes {
			uses := false
			for _, hop := range n.Classes[r].Route {
				if hop == l {
					uses = true
					break
				}
			}
			if uses {
				mu = n.ChannelServiceRate(l, r)
				break
			}
		}
		// Background cross-traffic adds lambda_bg = Background * mu.
		lambdaBg := n.Channels[l].Background * mu
		rho := (lambda[l] + lambdaBg) / mu
		m.ChannelUtilization[l] = rho
		if rho >= 1 {
			return nil, fmt.Errorf("netmodel: channel %d (%s) saturated at utilisation %.3f; the open model has no finite delay",
				l, n.Channels[l].Name, rho)
		}
		m.ChannelDelay[l] = 1 / (mu - lambda[l] - lambdaBg)
	}
	totalWeighted := 0.0
	for r := range n.Classes {
		d := 0.0
		for _, l := range n.Classes[r].Route {
			d += m.ChannelDelay[l]
		}
		m.ClassDelay[r] = d
		m.Throughput += n.Classes[r].Rate
		totalWeighted += n.Classes[r].Rate * d
	}
	if m.Throughput > 0 {
		m.Delay = totalWeighted / m.Throughput
	}
	if m.Delay > 0 && !math.IsInf(m.Delay, 0) {
		m.Power = m.Throughput / m.Delay
	}
	return m, nil
}
