package netmodel

import (
	"strings"
	"testing"
)

const sampleSpec = `{
  "name": "line3",
  "nodes": ["a", "b", "c"],
  "channels": [
    {"name": "ab", "from": "a", "to": "b", "capacity_bps": 50000},
    {"name": "bc", "from": "b", "to": "c", "capacity_bps": 25000}
  ],
  "classes": [
    {"name": "c1", "rate_msg_per_sec": 10, "mean_length_bits": 1000,
     "route": ["ab", "bc"], "window": 3}
  ]
}`

func TestParseSpec(t *testing.T) {
	n, err := ParseSpec([]byte(sampleSpec))
	if err != nil {
		t.Fatal(err)
	}
	if n.Name != "line3" || len(n.Nodes) != 3 || len(n.Channels) != 2 || len(n.Classes) != 1 {
		t.Fatalf("parsed shape wrong: %+v", n)
	}
	if n.Classes[0].Window != 3 || n.Classes[0].Route[1] != 1 {
		t.Errorf("class = %+v", n.Classes[0])
	}
	if n.Channels[1].From != 1 || n.Channels[1].To != 2 {
		t.Errorf("channel bc endpoints = %d,%d", n.Channels[1].From, n.Channels[1].To)
	}
}

func TestParseSpecErrors(t *testing.T) {
	cases := []struct{ name, body, substr string }{
		{"bad json", `{`, "parsing spec"},
		{"unknown node", strings.Replace(sampleSpec, `"from": "a"`, `"from": "zz"`, 1), "unknown node"},
		{"unknown channel", strings.Replace(sampleSpec, `"route": ["ab", "bc"]`, `"route": ["ab", "zz"]`, 1), "unknown channel"},
		{"dup node", strings.Replace(sampleSpec, `["a", "b", "c"]`, `["a", "a", "c"]`, 1), "duplicate node"},
		{"dup channel", strings.Replace(sampleSpec, `"name": "bc"`, `"name": "ab"`, 1), "duplicate channel"},
		{"empty node name", strings.Replace(sampleSpec, `["a", "b", "c"]`, `["a", "", "c"]`, 1), "empty name"},
		{"empty channel name", strings.Replace(sampleSpec, `{"name": "ab",`, `{"name": "",`, 1), "empty name"},
		{"invalid network", strings.Replace(sampleSpec, `"capacity_bps": 50000`, `"capacity_bps": 0`, 1), "capacity"},
	}
	for _, c := range cases {
		if _, err := ParseSpec([]byte(c.body)); err == nil {
			t.Errorf("%s: expected error", c.name)
		} else if !strings.Contains(err.Error(), c.substr) {
			t.Errorf("%s: error %q lacks %q", c.name, err, c.substr)
		}
	}
}

func TestSpecRoundTrip(t *testing.T) {
	orig, err := ParseSpec([]byte(sampleSpec))
	if err != nil {
		t.Fatal(err)
	}
	data, err := orig.MarshalSpec()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseSpec(data)
	if err != nil {
		t.Fatalf("re-parsing marshalled spec: %v", err)
	}
	if back.Name != orig.Name || len(back.Channels) != len(orig.Channels) {
		t.Fatal("round trip changed shape")
	}
	for i := range orig.Channels {
		if orig.Channels[i] != back.Channels[i] {
			t.Errorf("channel %d: %+v vs %+v", i, orig.Channels[i], back.Channels[i])
		}
	}
	for r := range orig.Classes {
		a, b := orig.Classes[r], back.Classes[r]
		if a.Name != b.Name || a.Rate != b.Rate || a.Window != b.Window || len(a.Route) != len(b.Route) {
			t.Errorf("class %d changed: %+v vs %+v", r, a, b)
		}
		for k := range a.Route {
			if a.Route[k] != b.Route[k] {
				t.Errorf("class %d route hop %d: %d vs %d", r, k, a.Route[k], b.Route[k])
			}
		}
	}
}
