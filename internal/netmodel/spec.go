package netmodel

import (
	"encoding/json"
	"fmt"
)

// Spec is the JSON wire form of a Network, with channels referenced by
// name so that hand-written specs stay readable. It is the input format
// of the cmd/windim, cmd/qsolve and cmd/netsim tools.
type Spec struct {
	Name     string        `json:"name"`
	Nodes    []string      `json:"nodes"`
	Channels []ChannelSpec `json:"channels"`
	Classes  []ClassSpec   `json:"classes"`
}

// ChannelSpec describes one channel in a Spec.
type ChannelSpec struct {
	Name       string  `json:"name"`
	From       string  `json:"from"`
	To         string  `json:"to"`
	Capacity   float64 `json:"capacity_bps"`
	Background float64 `json:"background_util,omitempty"`
	PropDelay  float64 `json:"prop_delay_sec,omitempty"`
}

// ClassSpec describes one message class in a Spec.
type ClassSpec struct {
	Name       string   `json:"name"`
	Rate       float64  `json:"rate_msg_per_sec"`
	MeanLength float64  `json:"mean_length_bits"`
	Route      []string `json:"route"`
	Window     int      `json:"window,omitempty"`
	AckDelay   float64  `json:"ack_delay_sec,omitempty"`
}

// ParseSpec decodes and resolves a JSON network spec, returning a
// validated Network.
func ParseSpec(data []byte) (*Network, error) {
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("netmodel: parsing spec: %w", err)
	}
	return s.Resolve()
}

// Resolve converts the spec's name references into a validated Network.
func (s *Spec) Resolve() (*Network, error) {
	n := &Network{Name: s.Name}
	nodeIdx := make(map[string]int, len(s.Nodes))
	for i, name := range s.Nodes {
		if name == "" {
			return nil, fmt.Errorf("netmodel: node %d has an empty name", i)
		}
		if _, dup := nodeIdx[name]; dup {
			return nil, fmt.Errorf("netmodel: duplicate node name %q", name)
		}
		nodeIdx[name] = i
		n.Nodes = append(n.Nodes, Node{Name: name})
	}
	chanIdx := make(map[string]int, len(s.Channels))
	for i, cs := range s.Channels {
		if cs.Name == "" {
			return nil, fmt.Errorf("netmodel: channel %d has an empty name", i)
		}
		if _, dup := chanIdx[cs.Name]; dup {
			return nil, fmt.Errorf("netmodel: duplicate channel name %q", cs.Name)
		}
		from, ok := nodeIdx[cs.From]
		if !ok {
			return nil, fmt.Errorf("netmodel: channel %q references unknown node %q", cs.Name, cs.From)
		}
		to, ok := nodeIdx[cs.To]
		if !ok {
			return nil, fmt.Errorf("netmodel: channel %q references unknown node %q", cs.Name, cs.To)
		}
		chanIdx[cs.Name] = i
		n.Channels = append(n.Channels, Channel{
			Name: cs.Name, From: from, To: to,
			Capacity: cs.Capacity, Background: cs.Background,
			PropDelay: cs.PropDelay,
		})
	}
	for _, cl := range s.Classes {
		route := make([]int, 0, len(cl.Route))
		for _, chName := range cl.Route {
			l, ok := chanIdx[chName]
			if !ok {
				return nil, fmt.Errorf("netmodel: class %q routes over unknown channel %q", cl.Name, chName)
			}
			route = append(route, l)
		}
		n.Classes = append(n.Classes, Class{
			Name:       cl.Name,
			Rate:       cl.Rate,
			MeanLength: cl.MeanLength,
			Route:      route,
			Window:     cl.Window,
			AckDelay:   cl.AckDelay,
		})
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	return n, nil
}

// ToSpec converts the network back into its wire form (the inverse of
// Spec.Resolve for valid networks).
func (n *Network) ToSpec() *Spec {
	s := &Spec{Name: n.Name}
	for _, nd := range n.Nodes {
		s.Nodes = append(s.Nodes, nd.Name)
	}
	for _, ch := range n.Channels {
		s.Channels = append(s.Channels, ChannelSpec{
			Name:       ch.Name,
			From:       n.Nodes[ch.From].Name,
			To:         n.Nodes[ch.To].Name,
			Capacity:   ch.Capacity,
			Background: ch.Background,
			PropDelay:  ch.PropDelay,
		})
	}
	for _, cl := range n.Classes {
		cs := ClassSpec{
			Name:       cl.Name,
			Rate:       cl.Rate,
			MeanLength: cl.MeanLength,
			Window:     cl.Window,
			AckDelay:   cl.AckDelay,
		}
		for _, l := range cl.Route {
			cs.Route = append(cs.Route, n.Channels[l].Name)
		}
		s.Classes = append(s.Classes, cs)
	}
	return s
}

// MarshalSpec renders the network as indented JSON.
func (n *Network) MarshalSpec() ([]byte, error) {
	return json.MarshalIndent(n.ToSpec(), "", "  ")
}
