package netmodel

import "testing"

// FuzzParseSpec checks the spec parser never panics and that anything it
// accepts survives a marshal/parse round trip.
func FuzzParseSpec(f *testing.F) {
	f.Add([]byte(sampleSpec))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"nodes": ["a"]}`))
	f.Add([]byte(`{"name": 3}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{"nodes": ["a","b"], "channels": [{"name":"c","from":"a","to":"b","capacity_bps":1}], "classes": [{"name":"x","rate_msg_per_sec":1,"mean_length_bits":1,"route":["c"]}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		n, err := ParseSpec(data)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		// Accepted networks are valid and round-trip.
		if err := n.Validate(); err != nil {
			t.Fatalf("ParseSpec accepted an invalid network: %v", err)
		}
		out, err := n.MarshalSpec()
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		if _, err := ParseSpec(out); err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
	})
}
