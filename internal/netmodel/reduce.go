package netmodel

import "fmt"

// Reduction reports what Reduce removed or rewrote.
type Reduction struct {
	// ChannelsPruned counts channels carried by no class route. Their
	// closed-model stations have zero visits for every chain, so removing
	// them cannot change any chain's solution.
	ChannelsPruned int
	// NodesPruned counts nodes touched by no remaining channel.
	NodesPruned int
	// DelaysMerged counts channels whose propagation delay was folded
	// onto another channel traversed by exactly the same class set. A
	// route visits each channel at most once (validated), so every class
	// in the set accumulates the identical total pure delay either way —
	// the merge only collapses several IS stations into one.
	DelaysMerged int
}

// Total returns the number of individual rewrites performed.
func (r Reduction) Total() int { return r.ChannelsPruned + r.NodesPruned + r.DelaysMerged }

func (r Reduction) String() string {
	return fmt.Sprintf("pruned %d channels, %d nodes; merged %d propagation delays",
		r.ChannelsPruned, r.NodesPruned, r.DelaysMerged)
}

// Reduce returns an equivalent network with provably exact model
// reductions applied: channels used by no class are pruned, nodes touched
// by no remaining channel are pruned, and positive propagation delays of
// channels sharing an identical using-class set are accumulated onto the
// first channel of each group. Relative channel, node, and class order is
// preserved, so per-class results and per-channel results of surviving
// channels are directly comparable against the original network.
//
// Deliberately NOT performed: collapsing chains of queueing (FCFS)
// channels into single aggregated-demand channels. That is exact for open
// chains but not under closed window control — a window-W class on two
// tandem channels has strictly lower throughput than on one channel with
// the summed demand (see DESIGN.md §10.4) — so Reduce only removes model
// elements that contribute exactly nothing.
//
// When no rule applies, Reduce returns the original network pointer
// unchanged with a zero Reduction.
func Reduce(n *Network) (*Network, *Reduction, error) {
	if err := n.Validate(); err != nil {
		return nil, nil, fmt.Errorf("netmodel: reduce: %w", err)
	}
	red := &Reduction{}

	// Using-class sets, as bitset keys for grouping.
	words := (len(n.Classes) + 63) / 64
	userKey := make([]string, len(n.Channels))
	used := make([]bool, len(n.Channels))
	{
		sets := make([][]uint64, len(n.Channels))
		for l := range sets {
			sets[l] = make([]uint64, words)
		}
		for r, c := range n.Classes {
			for _, l := range c.Route {
				sets[l][r/64] |= 1 << (r % 64)
				used[l] = true
			}
		}
		buf := make([]byte, 8*words)
		for l := range sets {
			for w, v := range sets[l] {
				for b := 0; b < 8; b++ {
					buf[8*w+b] = byte(v >> (8 * b))
				}
			}
			userKey[l] = string(buf)
		}
	}

	// Rule 1: fold each group of same-user channels' propagation delays
	// onto the group's first member. Applied before pruning so the counts
	// refer to channels that survive.
	newDelay := make([]float64, len(n.Channels))
	firstOf := make(map[string]int)
	for l, ch := range n.Channels {
		if !used[l] || ch.PropDelay <= 0 {
			newDelay[l] = ch.PropDelay
			continue
		}
		if f, ok := firstOf[userKey[l]]; ok {
			newDelay[f] += ch.PropDelay
			newDelay[l] = 0
			red.DelaysMerged++
		} else {
			firstOf[userKey[l]] = l
			newDelay[l] = ch.PropDelay
		}
	}

	// Rule 2: prune unused channels.
	chanMap := make([]int, len(n.Channels)) // old -> new, -1 pruned
	kept := 0
	for l := range n.Channels {
		if used[l] {
			chanMap[l] = kept
			kept++
		} else {
			chanMap[l] = -1
			red.ChannelsPruned++
		}
	}

	// Rule 3: prune nodes no surviving channel touches.
	nodeUsed := make([]bool, len(n.Nodes))
	for l, ch := range n.Channels {
		if used[l] {
			nodeUsed[ch.From] = true
			nodeUsed[ch.To] = true
		}
	}
	nodeMap := make([]int, len(n.Nodes))
	keptNodes := 0
	for i := range n.Nodes {
		if nodeUsed[i] {
			nodeMap[i] = keptNodes
			keptNodes++
		} else {
			nodeMap[i] = -1
			red.NodesPruned++
		}
	}

	if red.Total() == 0 {
		return n, red, nil
	}

	out := &Network{Name: n.Name}
	out.Nodes = make([]Node, 0, keptNodes)
	for i, nd := range n.Nodes {
		if nodeMap[i] >= 0 {
			out.Nodes = append(out.Nodes, nd)
		}
	}
	out.Channels = make([]Channel, 0, kept)
	for l, ch := range n.Channels {
		if chanMap[l] < 0 {
			continue
		}
		ch.From = nodeMap[ch.From]
		ch.To = nodeMap[ch.To]
		ch.PropDelay = newDelay[l]
		out.Channels = append(out.Channels, ch)
	}
	out.Classes = make([]Class, len(n.Classes))
	for r, c := range n.Classes {
		route := make([]int, len(c.Route))
		for h, l := range c.Route {
			route[h] = chanMap[l]
		}
		c.Route = route
		out.Classes[r] = c
	}
	if err := out.Validate(); err != nil {
		return nil, nil, fmt.Errorf("netmodel: reduce produced an invalid network: %w", err)
	}
	return out, red, nil
}
