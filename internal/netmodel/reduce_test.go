package netmodel_test

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/netmodel"
	"repro/internal/power"
	"repro/internal/topo"
)

func evalMetrics(t *testing.T, n *netmodel.Network) *power.Metrics {
	t.Helper()
	eng, err := core.NewEngine(n, core.Options{})
	if err != nil {
		t.Fatalf("%s: NewEngine: %v", n.Name, err)
	}
	m, err := eng.Evaluate(n.HopVector())
	if err != nil {
		t.Fatalf("%s: Evaluate: %v", n.Name, err)
	}
	return m
}

func relDiff(a, b float64) float64 {
	if a == b {
		return 0
	}
	return math.Abs(a-b) / math.Max(math.Abs(a), math.Abs(b))
}

func metricsClose(t *testing.T, tag string, a, b *power.Metrics, tol float64) {
	t.Helper()
	for r := range a.ClassThroughput {
		if relDiff(a.ClassThroughput[r], b.ClassThroughput[r]) > tol {
			t.Errorf("%s class %d: throughput %v vs %v", tag, r, a.ClassThroughput[r], b.ClassThroughput[r])
		}
		if relDiff(a.ClassDelay[r], b.ClassDelay[r]) > tol {
			t.Errorf("%s class %d: delay %v vs %v", tag, r, a.ClassDelay[r], b.ClassDelay[r])
		}
	}
	if relDiff(a.Power, b.Power) > tol {
		t.Errorf("%s: power %v vs %v", tag, a.Power, b.Power)
	}
}

// TestReduceNoOp: on the thesis's Canadian backbone every channel is used,
// every node is connected, and there are no propagation delays — Reduce
// must return the original pointer untouched.
func TestReduceNoOp(t *testing.T) {
	for _, n := range []*netmodel.Network{
		topo.Canada2Class(4, 4),
		topo.Canada4Class(2, 2, 2, 2),
	} {
		out, red, err := netmodel.Reduce(n)
		if err != nil {
			t.Fatalf("%s: %v", n.Name, err)
		}
		if out != n {
			t.Errorf("%s: no-op reduction must return the original network pointer", n.Name)
		}
		if red.Total() != 0 {
			t.Errorf("%s: expected zero reduction, got %v", n.Name, red)
		}
	}
}

// TestReducePruneExactOnCanada: canada4 padded with unused channels and an
// isolated node must reduce back to a model whose per-class solution is
// bit-identical — the pruned stations carried zero closed-chain visits.
func TestReducePruneExactOnCanada(t *testing.T) {
	n := topo.Canada4Class(2, 2, 2, 2)
	base := evalMetrics(t, n)

	aug := &netmodel.Network{Name: n.Name + "+junk"}
	aug.Nodes = append(append([]netmodel.Node{}, n.Nodes...), netmodel.Node{Name: "isolated"})
	aug.Channels = append(append([]netmodel.Channel{}, n.Channels...),
		netmodel.Channel{Name: "junk1", From: 0, To: 2, Capacity: 50_000},
		netmodel.Channel{Name: "junk2", From: 1, To: len(n.Nodes), Capacity: 50_000},
	)
	aug.Classes = n.Classes

	reduced, red, err := netmodel.Reduce(aug)
	if err != nil {
		t.Fatal(err)
	}
	if red.ChannelsPruned != 2 || red.NodesPruned != 1 || red.DelaysMerged != 0 {
		t.Fatalf("reduction %v, want 2 channels + 1 node pruned", red)
	}
	if len(reduced.Channels) != len(n.Channels) || len(reduced.Nodes) != len(n.Nodes) {
		t.Fatalf("reduced to %d channels/%d nodes, want %d/%d",
			len(reduced.Channels), len(reduced.Nodes), len(n.Channels), len(n.Nodes))
	}
	for l := range reduced.Channels {
		if reduced.Channels[l].Name != n.Channels[l].Name {
			t.Fatalf("channel order not preserved: %d is %q, want %q",
				l, reduced.Channels[l].Name, n.Channels[l].Name)
		}
	}
	got := evalMetrics(t, reduced)
	metricsClose(t, "canada4 pruned", base, got, 0) // exactly equal
}

// TestReduceDelayMerge: on a tandem all channels carry the same single
// class, so all propagation delays fold onto the first channel; the total
// pure delay per class is unchanged and the solution agrees to rounding.
func TestReduceDelayMerge(t *testing.T) {
	n, err := topo.Tandem(4, 50_000, 8, topo.MessageLength)
	if err != nil {
		t.Fatal(err)
	}
	for l := range n.Channels {
		n.Channels[l].PropDelay = 0.01 * float64(l+1)
	}
	base := evalMetrics(t, n)

	reduced, red, err := netmodel.Reduce(n)
	if err != nil {
		t.Fatal(err)
	}
	if red.DelaysMerged != 3 || red.ChannelsPruned != 0 || red.NodesPruned != 0 {
		t.Fatalf("reduction %v, want 3 delays merged", red)
	}
	wantSum := 0.01 * (1 + 2 + 3 + 4)
	if relDiff(reduced.Channels[0].PropDelay, wantSum) > 1e-15 {
		t.Fatalf("merged delay %v, want %v", reduced.Channels[0].PropDelay, wantSum)
	}
	for l := 1; l < len(reduced.Channels); l++ {
		if reduced.Channels[l].PropDelay != 0 {
			t.Fatalf("channel %d delay %v, want 0 after merge", l, reduced.Channels[l].PropDelay)
		}
	}
	got := evalMetrics(t, reduced)
	// Summing delays before vs after the solve reassociates floating-point
	// additions; agreement is to rounding, not bitwise.
	metricsClose(t, "tandem merged", base, got, 1e-9)
}

// TestReduceGeneratedMesh: generated topologies with random unused
// channels spliced in reduce to networks solving identically.
func TestReduceGeneratedMesh(t *testing.T) {
	n, err := topo.Mesh(10, 4, 8, topo.GenConfig{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	base := evalMetrics(t, n)
	aug := &netmodel.Network{Name: n.Name, Nodes: n.Nodes, Classes: n.Classes}
	aug.Channels = append(append([]netmodel.Channel{}, n.Channels...),
		netmodel.Channel{Name: "spare", From: 0, To: 5, Capacity: 50_000})
	reduced, red, err := netmodel.Reduce(aug)
	if err != nil {
		t.Fatal(err)
	}
	// The spare channel plus any generated channels off every shortest
	// path are pruned together.
	if red.ChannelsPruned < 1 {
		t.Fatalf("reduction %v, want at least the spare channel pruned", red)
	}
	for _, ch := range reduced.Channels {
		if ch.Name == "spare" {
			t.Fatal("spare channel survived reduction")
		}
	}
	metricsClose(t, "mesh pruned", base, evalMetrics(t, reduced), 0)
}

// TestReduceInvalid: Reduce validates its input.
func TestReduceInvalid(t *testing.T) {
	bad := &netmodel.Network{Name: "bad", Nodes: []netmodel.Node{{Name: "a"}}}
	bad.Channels = []netmodel.Channel{{Name: "loop", From: 0, To: 0, Capacity: 1}}
	if _, _, err := netmodel.Reduce(bad); err == nil {
		t.Fatal("expected validation error")
	}
}
