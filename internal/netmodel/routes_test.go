package netmodel

import "testing"

// diamond builds a 4-node diamond: a-b-d (fast) and a-c-d (slow).
func diamond() *Network {
	return &Network{
		Name:  "diamond",
		Nodes: []Node{{Name: "a"}, {Name: "b"}, {Name: "c"}, {Name: "d"}},
		Channels: []Channel{
			{Name: "ab", From: 0, To: 1, Capacity: 50000},
			{Name: "bd", From: 1, To: 3, Capacity: 50000},
			{Name: "ac", From: 0, To: 2, Capacity: 10000},
			{Name: "cd", From: 2, To: 3, Capacity: 10000},
		},
		Classes: []Class{{
			Name: "seed", Rate: 1, MeanLength: 1000, Route: []int{0}, Window: 1,
		}},
	}
}

func TestShortestRoutePrefersFastPath(t *testing.T) {
	n := diamond()
	route, err := n.ShortestRoute(0, 3, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(route) != 2 || route[0] != 0 || route[1] != 1 {
		t.Errorf("route = %v, want [0 1] (the 50 kb/s path)", route)
	}
}

func TestShortestRouteReverseDirection(t *testing.T) {
	// Half-duplex: the same channels serve d -> a.
	n := diamond()
	route, err := n.ShortestRoute(3, 0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(route) != 2 || route[0] != 1 || route[1] != 0 {
		t.Errorf("route = %v, want [1 0]", route)
	}
}

func TestShortestRouteErrors(t *testing.T) {
	n := diamond()
	if _, err := n.ShortestRoute(0, 0, 1000); err == nil {
		t.Error("expected error for coinciding endpoints")
	}
	if _, err := n.ShortestRoute(-1, 3, 1000); err == nil {
		t.Error("expected range error")
	}
	if _, err := n.ShortestRoute(0, 3, 0); err == nil {
		t.Error("expected mean-length error")
	}
	// Disconnected node.
	n.Nodes = append(n.Nodes, Node{Name: "island"})
	if _, err := n.ShortestRoute(0, 4, 1000); err == nil {
		t.Error("expected no-route error")
	}
}

func TestAddClass(t *testing.T) {
	n := diamond()
	i, err := n.AddClass("vc", "a", "d", 5, 1000, 3)
	if err != nil {
		t.Fatal(err)
	}
	c := n.Classes[i]
	if c.Window != 3 || c.Rate != 5 || len(c.Route) != 2 {
		t.Errorf("class = %+v", c)
	}
	if err := n.Validate(); err != nil {
		t.Fatalf("network with added class invalid: %v", err)
	}
	if _, err := n.AddClass("bad", "zz", "d", 1, 1000, 1); err == nil {
		t.Error("expected unknown-node error")
	}
	if _, err := n.AddClass("bad", "a", "zz", 1, 1000, 1); err == nil {
		t.Error("expected unknown-node error")
	}
}

func TestShortestRouteIsContinuousWalk(t *testing.T) {
	// Routes from ShortestRoute must pass RouteNodes' continuity check
	// on a mesh with many alternatives.
	n := diamond()
	n.Channels = append(n.Channels, Channel{Name: "bc", From: 1, To: 2, Capacity: 50000})
	if _, err := n.AddClass("vc2", "c", "b", 2, 1000, 1); err != nil {
		t.Fatal(err)
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
}
