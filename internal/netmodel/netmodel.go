// Package netmodel describes message-switched store-and-forward networks
// at the level the thesis's Chapter 4 examples use: switching nodes,
// half-duplex channels with bit-rate capacities, and message classes
// (virtual channels) with Poisson arrivals, exponential message lengths
// and fixed routes.
//
// Its central operation is ClosedModel, the Fig. 4.6 / Fig. 4.11
// transformation: end-to-end window flow control closes each virtual
// channel into a cyclic routing chain whose population is the window
// size, visiting one FCFS queue per channel on the route plus a source
// queue whose exponential service rate is the class's exogenous arrival
// rate (the "reentrant queue from sink to source" of the APL programs).
package netmodel

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/numeric"
	"repro/internal/qnet"
)

// Node is a switching node (an IMP/TIP-style store-and-forward computer).
type Node struct {
	Name string
}

// Channel is a unidirectional (half-duplex) communication channel between
// two switching nodes.
type Channel struct {
	Name string
	// From and To are node indices.
	From, To int
	// Capacity is the channel capacity in bits/second.
	Capacity float64
	// Background is the fraction of the channel's capacity consumed by
	// uncontrolled cross-traffic (an open chain in the §3.3.3 sense), in
	// [0, 1). The analytic solvers apply the mixed-network reduction
	// (service inflation by 1/(1-Background)); the simulator injects an
	// explicit single-hop Poisson stream of that utilisation.
	Background float64
	// PropDelay is the channel's one-way propagation delay in seconds
	// (zero for the thesis's terrestrial links; ~0.27 s for a
	// geostationary satellite hop). Modelled as a per-channel IS station
	// in the closed chain and as an in-flight delay in the simulator;
	// it counts toward the network delay, and it inflates the
	// bandwidth-delay product the window must cover.
	PropDelay float64
}

// Class is one message class: a virtual channel from a source node to a
// sink node with end-to-end window flow control.
type Class struct {
	Name string
	// Rate is the exogenous Poisson message arrival rate S_r in
	// messages/second.
	Rate float64
	// MeanLength is the mean (exponential) message length in bits.
	MeanLength float64
	// Route lists the channel indices traversed from source to sink.
	Route []int
	// Window is the end-to-end window size E_r (maximum unacknowledged
	// messages on the virtual channel). Zero means "to be dimensioned".
	Window int
	// AckDelay is the end-to-end acknowledgement latency in seconds: the
	// time between delivery at the sink and the credit returning to the
	// source. The thesis assumes instantaneous acknowledgements
	// (AckDelay 0); a positive value adds a pure-delay (IS) station to
	// the closed chain — by BCMP insensitivity only its mean matters.
	AckDelay float64
}

// Network is a message-switched network with end-to-end window flow
// control.
type Network struct {
	Name     string
	Nodes    []Node
	Channels []Channel
	Classes  []Class
}

// Hops returns the number of store-and-forward hops of class r (the
// length of its route) — Kleinrock's rule-of-thumb window.
func (n *Network) Hops(r int) int { return len(n.Classes[r].Route) }

// HopVector returns every class's hop count, the thesis's initial
// window-setting vector (Θ_1, ..., Θ_R).
func (n *Network) HopVector() numeric.IntVector {
	v := numeric.NewIntVector(len(n.Classes))
	for r := range n.Classes {
		v[r] = n.Hops(r)
	}
	return v
}

// Windows returns the current window vector.
func (n *Network) Windows() numeric.IntVector {
	v := numeric.NewIntVector(len(n.Classes))
	for r := range n.Classes {
		v[r] = n.Classes[r].Window
	}
	return v
}

// ChannelServiceRate returns channel l's service rate in messages/second
// for messages of class r: Capacity / MeanLength.
func (n *Network) ChannelServiceRate(l, r int) float64 {
	return n.Channels[l].Capacity / n.Classes[r].MeanLength
}

// BottleneckRate returns the smallest channel service rate along class
// r's route — the saturation throughput of the virtual channel.
func (n *Network) BottleneckRate(r int) float64 {
	min := math.Inf(1)
	for _, l := range n.Classes[r].Route {
		if mu := n.ChannelServiceRate(l, r); mu < min {
			min = mu
		}
	}
	return min
}

// Validate checks structural well-formedness: positive capacities, rates
// and lengths; route continuity across node adjacency; and the product
// form requirement that classes sharing a channel have the same mean
// message length (the FCFS class-independence condition the thesis's
// examples satisfy with 1000-bit messages everywhere).
func (n *Network) Validate() error {
	if len(n.Nodes) == 0 {
		return errors.New("netmodel: network has no nodes")
	}
	if len(n.Channels) == 0 {
		return errors.New("netmodel: network has no channels")
	}
	if len(n.Classes) == 0 {
		return errors.New("netmodel: network has no classes")
	}
	for i, ch := range n.Channels {
		if ch.From < 0 || ch.From >= len(n.Nodes) || ch.To < 0 || ch.To >= len(n.Nodes) {
			return fmt.Errorf("netmodel: channel %d (%s) endpoints (%d,%d) out of range", i, ch.Name, ch.From, ch.To)
		}
		if ch.From == ch.To {
			return fmt.Errorf("netmodel: channel %d (%s) is a self-loop", i, ch.Name)
		}
		if ch.Capacity <= 0 || math.IsNaN(ch.Capacity) || math.IsInf(ch.Capacity, 0) {
			return fmt.Errorf("netmodel: channel %d (%s) capacity %v; need positive finite bits/s", i, ch.Name, ch.Capacity)
		}
		if ch.Background < 0 || ch.Background >= 1 || math.IsNaN(ch.Background) {
			return fmt.Errorf("netmodel: channel %d (%s) background load %v outside [0, 1)", i, ch.Name, ch.Background)
		}
		if ch.PropDelay < 0 || math.IsNaN(ch.PropDelay) || math.IsInf(ch.PropDelay, 0) {
			return fmt.Errorf("netmodel: channel %d (%s) propagation delay %v; need non-negative finite seconds", i, ch.Name, ch.PropDelay)
		}
	}
	for r, c := range n.Classes {
		if c.Rate <= 0 || math.IsNaN(c.Rate) || math.IsInf(c.Rate, 0) {
			return fmt.Errorf("netmodel: class %d (%s) arrival rate %v; need positive finite msg/s", r, c.Name, c.Rate)
		}
		if c.MeanLength <= 0 || math.IsNaN(c.MeanLength) || math.IsInf(c.MeanLength, 0) {
			return fmt.Errorf("netmodel: class %d (%s) mean length %v; need positive finite bits", r, c.Name, c.MeanLength)
		}
		if c.Window < 0 {
			return fmt.Errorf("netmodel: class %d (%s) negative window %d", r, c.Name, c.Window)
		}
		if c.AckDelay < 0 || math.IsNaN(c.AckDelay) || math.IsInf(c.AckDelay, 0) {
			return fmt.Errorf("netmodel: class %d (%s) ack delay %v; need non-negative finite seconds", r, c.Name, c.AckDelay)
		}
		if len(c.Route) == 0 {
			return fmt.Errorf("netmodel: class %d (%s) has an empty route", r, c.Name)
		}
		seen := make(map[int]bool, len(c.Route))
		for k, l := range c.Route {
			if l < 0 || l >= len(n.Channels) {
				return fmt.Errorf("netmodel: class %d (%s) route hop %d references channel %d of %d", r, c.Name, k, l, len(n.Channels))
			}
			if seen[l] {
				return fmt.Errorf("netmodel: class %d (%s) traverses channel %d twice", r, c.Name, l)
			}
			seen[l] = true
		}
		if _, err := n.RouteNodes(r); err != nil {
			return err
		}
	}
	// Classes sharing a channel must agree on mean length (FCFS class
	// independence).
	for l := range n.Channels {
		first := -1.0
		firstClass := -1
		for r, c := range n.Classes {
			uses := false
			for _, hop := range c.Route {
				if hop == l {
					uses = true
					break
				}
			}
			if !uses {
				continue
			}
			if first < 0 {
				first, firstClass = c.MeanLength, r
			} else if math.Abs(c.MeanLength-first) > 1e-9*first {
				return fmt.Errorf("netmodel: classes %d and %d share FCFS channel %d (%s) with different mean lengths (%v vs %v bits); product form requires equal means",
					firstClass, r, l, n.Channels[l].Name, first, c.MeanLength)
			}
		}
	}
	return nil
}

// RouteNodes reconstructs the node walk of class r's route. Channels are
// half-duplex — a single queue serving either direction, the reading
// under which the thesis's 4-class example reuses its 7 channels — so a
// route may traverse a channel in either orientation; consecutive
// channels must share a node. The returned slice has len(route)+1 nodes,
// source first.
func (n *Network) RouteNodes(r int) ([]int, error) {
	c := &n.Classes[r]
	if len(c.Route) == 0 {
		return nil, fmt.Errorf("netmodel: class %d (%s) has an empty route", r, c.Name)
	}
	first := n.Channels[c.Route[0]]
	if len(c.Route) == 1 {
		return []int{first.From, first.To}, nil
	}
	second := n.Channels[c.Route[1]]
	touches := func(ch Channel, node int) bool { return ch.From == node || ch.To == node }
	var start int
	switch {
	case touches(second, first.To):
		start = first.From
	case touches(second, first.From):
		start = first.To
	default:
		return nil, fmt.Errorf("netmodel: class %d (%s) route is discontinuous between channels %s and %s",
			r, c.Name, first.Name, second.Name)
	}
	nodes := make([]int, 0, len(c.Route)+1)
	nodes = append(nodes, start)
	cur := start
	for k, l := range c.Route {
		ch := n.Channels[l]
		switch cur {
		case ch.From:
			cur = ch.To
		case ch.To:
			cur = ch.From
		default:
			return nil, fmt.Errorf("netmodel: class %d (%s) route is discontinuous at hop %d (channel %s does not touch node %d)",
				r, c.Name, k, ch.Name, cur)
		}
		nodes = append(nodes, cur)
	}
	return nodes, nil
}

// ClosedModel converts the network with the given window vector into its
// closed multichain queueing model: stations 0..L-1 are the channels'
// FCFS queues, stations L..L+R-1 are the per-class source queues (service
// rate S_r), and chain r cycles source_r, its route, and — when the class
// has a positive AckDelay — a per-class IS acknowledgement station.
//
// It returns the model and, per chain, the station indices excluded from
// the network-delay computation (the source queue, and the ack station if
// present: both belong to the reentrant sink→source path, V(r) = Q(r) −
// reentrant in the thesis's notation). A nil windows vector uses the
// classes' own Window fields.
func (n *Network) ClosedModel(windows numeric.IntVector) (*qnet.Network, [][]int, error) {
	if err := n.Validate(); err != nil {
		return nil, nil, err
	}
	if windows == nil {
		windows = n.Windows()
	}
	if len(windows) != len(n.Classes) {
		return nil, nil, fmt.Errorf("netmodel: %d windows for %d classes", len(windows), len(n.Classes))
	}
	nL, nR := len(n.Channels), len(n.Classes)
	nAck := 0
	for r := range n.Classes {
		if n.Classes[r].AckDelay > 0 {
			nAck++
		}
	}
	nProp := 0
	for l := range n.Channels {
		if n.Channels[l].PropDelay > 0 {
			nProp++
		}
	}
	nStations := nL + nR + nProp + nAck
	net := &qnet.Network{
		Stations: make([]qnet.Station, nL+nR, nStations),
		Chains:   make([]qnet.Chain, nR),
	}
	for l := range n.Channels {
		net.Stations[l] = qnet.Station{
			Name:     "ch:" + n.Channels[l].Name,
			OpenLoad: n.Channels[l].Background,
		}
	}
	// One IS station per channel with propagation delay, shared by every
	// class crossing it; part of the network delay (not excluded).
	propStation := make(map[int]int, nProp)
	for l := range n.Channels {
		if n.Channels[l].PropDelay > 0 {
			propStation[l] = len(net.Stations)
			net.Stations = append(net.Stations, qnet.Station{
				Name: "prop:" + n.Channels[l].Name,
				Kind: qnet.IS,
			})
		}
	}
	excluded := make([][]int, nR)
	for r := range n.Classes {
		c := &n.Classes[r]
		src := nL + r
		excluded[r] = []int{src}
		net.Stations[src] = qnet.Station{Name: "src:" + c.Name}
		if windows[r] < 0 {
			return nil, nil, fmt.Errorf("netmodel: negative window %d for class %d", windows[r], r)
		}
		route := make([]int, 0, 2*len(c.Route)+2)
		servTimes := make([]float64, 0, 2*len(c.Route)+2)
		route = append(route, src)
		servTimes = append(servTimes, 1/c.Rate)
		for _, l := range c.Route {
			route = append(route, l)
			servTimes = append(servTimes, c.MeanLength/n.Channels[l].Capacity)
			if ps, ok := propStation[l]; ok {
				route = append(route, ps)
				servTimes = append(servTimes, n.Channels[l].PropDelay)
			}
		}
		if c.AckDelay > 0 {
			ack := len(net.Stations)
			net.Stations = append(net.Stations, qnet.Station{Name: "ack:" + c.Name, Kind: qnet.IS})
			excluded[r] = append(excluded[r], ack)
			route = append(route, ack)
			servTimes = append(servTimes, c.AckDelay)
		}
		chain, err := qnet.CyclicChain(c.Name, nStations, windows[r], route, servTimes)
		if err != nil {
			return nil, nil, err
		}
		net.Chains[r] = chain
	}
	// CyclicChain sized every chain's vectors for nStations; trim is not
	// needed, but chains built before later ack stations were appended
	// must still match the final station count.
	if len(net.Stations) != nStations {
		return nil, nil, fmt.Errorf("netmodel: internal station-count mismatch (%d != %d)", len(net.Stations), nStations)
	}
	if err := net.Validate(); err != nil {
		return nil, nil, fmt.Errorf("netmodel: generated model invalid: %w", err)
	}
	return net, excluded, nil
}
