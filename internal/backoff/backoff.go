// Package backoff holds the retry-pacing policy shared by the windimd
// job runner (internal/service) and the sharded-search coordinator
// (internal/shard). It sits below both so the coordinator can pace
// relaunches with the daemon's discipline while the daemon drives
// kind:"shard" jobs through the coordinator — no import cycle.
package backoff

import (
	"math/rand/v2"
	"time"
)

// Delay is the exponential backoff before the next attempt after
// `retries` recorded failures: base 100ms doubling per retry, capped at
// 5s, plus up to 50% uniform jitter so a burst of failing jobs does not
// retry in lockstep. Negative counts are clamped to zero (the first
// retry's delay) — a caller miscounting must get a sane pause, not a
// negative-shift panic.
func Delay(retries int) time.Duration {
	if retries < 0 {
		retries = 0
	}
	base := 100 * time.Millisecond << min(retries, 6)
	if base > 5*time.Second {
		base = 5 * time.Second
	}
	return base + time.Duration(rand.Int64N(int64(base)/2+1))
}
