// Package power implements the thesis's performance criterion — the
// network "power" P = throughput / mean network delay (Giessler et al.
// [5]) — together with Kleinrock's p-hop M/M/1 reference model (eq. 4.21)
// whose optimum motivates the hop-count window rule used to initialise
// WINDIM.
package power

import (
	"fmt"
	"math"

	"repro/internal/mva"
	"repro/internal/qnet"
)

// Metrics summarises a window-controlled network's performance at one
// operating point.
type Metrics struct {
	// ClassThroughput[r] is chain r's throughput in messages/second.
	ClassThroughput []float64
	// ClassDelay[r] is chain r's mean network delay in seconds (time in
	// the network's link queues; the source queue is excluded, V(r) =
	// Q(r) - source in the thesis's notation).
	ClassDelay []float64
	// Throughput is the total network throughput (messages/second).
	Throughput float64
	// Delay is the average network delay over all messages:
	// sum_r N_r(network) / sum_r lambda_r (Little over the network
	// queues).
	Delay float64
	// Power is Throughput / Delay; the WINDIM objective is 1/Power.
	Power float64
}

// FromSolution derives power metrics from a solved closed-chain model.
// excluded[r] lists the station indices of chain r's reentrant sink→source
// path (source queue, acknowledgement station) left out of the network
// delay; a nil entry counts every station as network.
func FromSolution(net *qnet.Network, sol *mva.Solution, excluded [][]int) (*Metrics, error) {
	m := &Metrics{}
	if err := FromSolutionInto(m, net, sol, excluded); err != nil {
		return nil, err
	}
	return m, nil
}

// FromSolutionInto is FromSolution writing into a caller-owned Metrics,
// reusing its slices when they are large enough — the zero-allocation path
// core.Engine takes for every search candidate.
func FromSolutionInto(m *Metrics, net *qnet.Network, sol *mva.Solution, excluded [][]int) error {
	if len(excluded) != net.R() {
		return fmt.Errorf("power: %d exclusion lists for %d chains", len(excluded), net.R())
	}
	nCh := net.R()
	if cap(m.ClassThroughput) >= nCh && cap(m.ClassDelay) >= nCh {
		m.ClassThroughput = m.ClassThroughput[:nCh]
		m.ClassDelay = m.ClassDelay[:nCh]
	} else {
		m.ClassThroughput = make([]float64, nCh)
		m.ClassDelay = make([]float64, nCh)
	}
	m.Throughput, m.Delay, m.Power = 0, 0, 0
	totalN := 0.0
	for r := 0; r < nCh; r++ {
		lam := sol.Throughput[r]
		m.ClassThroughput[r] = lam
		m.Throughput += lam
		n := 0.0
		for i := 0; i < net.N(); i++ {
			skip := false
			for _, e := range excluded[r] {
				if i == e {
					skip = true
					break
				}
			}
			if skip {
				continue
			}
			n += sol.QueueLen.At(i, r)
		}
		totalN += n
		m.ClassDelay[r] = 0
		if lam > 0 {
			m.ClassDelay[r] = n / lam
		}
	}
	if m.Throughput > 0 {
		m.Delay = totalN / m.Throughput
	}
	if m.Delay > 0 {
		m.Power = m.Throughput / m.Delay
	}
	return nil
}

// Objective returns the WINDIM objective F = 1/P = Delay/Throughput, with
// +Inf for degenerate operating points (zero throughput), so that the
// pattern search treats them as maximally undesirable.
func (m *Metrics) Objective() float64 {
	if m.Power <= 0 || math.IsNaN(m.Power) {
		return math.Inf(1)
	}
	return 1 / m.Power
}

// ClassPower returns chain r's own power P_r = lambda_r / T_r, or 0 when
// the chain carries no traffic.
func (m *Metrics) ClassPower(r int) float64 {
	if m.ClassDelay[r] <= 0 {
		return 0
	}
	return m.ClassThroughput[r] / m.ClassDelay[r]
}

// MinClassPower returns the smallest per-class power — the fairness
// criterion of the dimensioning extension (maximising it protects the
// weakest virtual channel instead of the aggregate).
func (m *Metrics) MinClassPower() float64 {
	min := math.Inf(1)
	for r := range m.ClassThroughput {
		if p := m.ClassPower(r); p < min {
			min = p
		}
	}
	if math.IsInf(min, 1) {
		return 0
	}
	return min
}

// SumClassPower returns the sum of per-class powers, a per-channel
// alternative to the thesis's aggregate ratio.
func (m *Metrics) SumClassPower() float64 {
	s := 0.0
	for r := range m.ClassThroughput {
		s += m.ClassPower(r)
	}
	return s
}

// Kleinrock is the p-hop M/M/1 reference model of [52] (Ch. 4 §4.6): a
// chain of Hops identical M/M/1 queues with aggregate capacity Mu
// messages/second per hop and instantaneous end-to-end acknowledgements.
type Kleinrock struct {
	// Hops is the number of store-and-forward hops on the virtual
	// channel.
	Hops int
	// Mu is the per-hop service rate in messages/second.
	Mu float64
}

// Delay returns the model's total average network delay at network
// throughput lambda (eq. 4.21): T = Hops / (Mu - lambda). It returns +Inf
// at or beyond saturation.
func (k Kleinrock) Delay(lambda float64) float64 {
	if lambda >= k.Mu {
		return math.Inf(1)
	}
	return float64(k.Hops) / (k.Mu - lambda)
}

// ThroughputForWindow returns the throughput lambda(E) implied by a
// window of E messages over the channel: Little's law over the closed
// loop gives E = lambda * T(lambda), so lambda = E*Mu/(Hops+E).
func (k Kleinrock) ThroughputForWindow(e int) float64 {
	if e <= 0 {
		return 0
	}
	return float64(e) * k.Mu / (float64(k.Hops) + float64(e))
}

// PowerForWindow returns P(E) = lambda(E)/T(lambda(E)) for a window of E.
func (k Kleinrock) PowerForWindow(e int) float64 {
	lam := k.ThroughputForWindow(e)
	t := k.Delay(lam)
	if t <= 0 || math.IsInf(t, 1) {
		return 0
	}
	return lam / t
}

// OptimalWindow returns the window maximising the model's power. For the
// p-hop M/M/1 chain the optimum is exactly E = Hops (lambda = Mu/2), the
// rule the thesis credits to Kleinrock and uses to initialise WINDIM and
// as the Table 4.12 baseline (the "(4 4 3 1)" settings).
func (k Kleinrock) OptimalWindow() int { return k.Hops }
