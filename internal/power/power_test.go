package power

import (
	"math"
	"testing"

	"repro/internal/mva"
	"repro/internal/qnet"
)

// sourceAndLink is a 2-station closed chain: station 0 models the source
// (rate S), station 1 a link.
func sourceAndLink(pop int, srcRate, linkRate float64) *qnet.Network {
	return &qnet.Network{
		Stations: []qnet.Station{{Name: "source"}, {Name: "link"}},
		Chains: []qnet.Chain{{
			Name: "vc", Population: pop,
			Visits:   []float64{1, 1},
			ServTime: []float64{1 / srcRate, 1 / linkRate},
		}},
	}
}

func TestFromSolutionExcludesSource(t *testing.T) {
	net := sourceAndLink(3, 10, 20)
	sol, err := mva.ExactMultichain(net)
	if err != nil {
		t.Fatal(err)
	}
	m, err := FromSolution(net, sol, [][]int{{0}})
	if err != nil {
		t.Fatal(err)
	}
	lam := sol.Throughput[0]
	nLink := sol.QueueLen.At(1, 0)
	if math.Abs(m.Throughput-lam) > 1e-12 {
		t.Errorf("throughput = %v, want %v", m.Throughput, lam)
	}
	if math.Abs(m.Delay-nLink/lam) > 1e-12 {
		t.Errorf("delay = %v, want %v", m.Delay, nLink/lam)
	}
	if math.Abs(m.Power-m.Throughput/m.Delay) > 1e-9 {
		t.Errorf("power inconsistent: %v", m.Power)
	}
	if math.Abs(m.ClassDelay[0]-m.Delay) > 1e-12 {
		t.Errorf("single-class delay %v != network delay %v", m.ClassDelay[0], m.Delay)
	}
}

func TestFromSolutionNoSource(t *testing.T) {
	net := sourceAndLink(2, 10, 20)
	sol, err := mva.ExactMultichain(net)
	if err != nil {
		t.Fatal(err)
	}
	m, err := FromSolution(net, sol, [][]int{nil})
	if err != nil {
		t.Fatal(err)
	}
	// All stations count: total N = population.
	wantDelay := 2.0 / sol.Throughput[0]
	if math.Abs(m.Delay-wantDelay) > 1e-9 {
		t.Errorf("delay = %v, want %v", m.Delay, wantDelay)
	}
}

func TestFromSolutionMultichain(t *testing.T) {
	net := sourceAndLink(2, 10, 40)
	net.Chains = append(net.Chains, net.Chains[0])
	net.Chains[1].Name = "vc2"
	net.Chains[1].Population = 3
	sol, err := mva.ExactMultichain(net)
	if err != nil {
		t.Fatal(err)
	}
	m, err := FromSolution(net, sol, [][]int{{0}, {0}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Throughput-(sol.Throughput[0]+sol.Throughput[1])) > 1e-12 {
		t.Errorf("total throughput = %v", m.Throughput)
	}
	// Network delay is the throughput-weighted average of class delays.
	want := (m.ClassThroughput[0]*m.ClassDelay[0] + m.ClassThroughput[1]*m.ClassDelay[1]) / m.Throughput
	if math.Abs(m.Delay-want) > 1e-12 {
		t.Errorf("delay = %v, want %v", m.Delay, want)
	}
}

func TestFromSolutionDimensionError(t *testing.T) {
	net := sourceAndLink(2, 10, 20)
	sol, err := mva.ExactMultichain(net)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromSolution(net, sol, [][]int{{0}, {1}}); err == nil {
		t.Fatal("expected dimension error")
	}
}

func TestClassPowerAggregates(t *testing.T) {
	m := &Metrics{
		ClassThroughput: []float64{10, 20, 0},
		ClassDelay:      []float64{0.5, 0.1, 0},
	}
	if got := m.ClassPower(0); math.Abs(got-20) > 1e-12 {
		t.Errorf("ClassPower(0) = %v, want 20", got)
	}
	if got := m.ClassPower(1); math.Abs(got-200) > 1e-12 {
		t.Errorf("ClassPower(1) = %v, want 200", got)
	}
	if got := m.ClassPower(2); got != 0 {
		t.Errorf("dead class power = %v", got)
	}
	if got := m.MinClassPower(); got != 0 {
		t.Errorf("MinClassPower = %v, want 0 (dead class)", got)
	}
	if got := m.SumClassPower(); math.Abs(got-220) > 1e-12 {
		t.Errorf("SumClassPower = %v, want 220", got)
	}
	// All-alive case.
	m2 := &Metrics{
		ClassThroughput: []float64{10, 20},
		ClassDelay:      []float64{0.5, 0.1},
	}
	if got := m2.MinClassPower(); math.Abs(got-20) > 1e-12 {
		t.Errorf("MinClassPower = %v, want 20", got)
	}
	// Empty metrics.
	empty := &Metrics{}
	if empty.MinClassPower() != 0 || empty.SumClassPower() != 0 {
		t.Error("empty metrics should give zero class powers")
	}
}

func TestObjective(t *testing.T) {
	m := &Metrics{Power: 4}
	if got := m.Objective(); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("Objective = %v", got)
	}
	zero := &Metrics{}
	if !math.IsInf(zero.Objective(), 1) {
		t.Error("zero power should give +Inf objective")
	}
}

func TestKleinrockDelay(t *testing.T) {
	k := Kleinrock{Hops: 4, Mu: 50}
	if got := k.Delay(0); math.Abs(got-4.0/50) > 1e-12 {
		t.Errorf("Delay(0) = %v", got)
	}
	if got := k.Delay(25); math.Abs(got-4.0/25) > 1e-12 {
		t.Errorf("Delay(25) = %v", got)
	}
	if !math.IsInf(k.Delay(50), 1) || !math.IsInf(k.Delay(60), 1) {
		t.Error("saturated delay should be +Inf")
	}
}

func TestKleinrockThroughputForWindow(t *testing.T) {
	k := Kleinrock{Hops: 4, Mu: 50}
	// E = Hops gives lambda = Mu/2: the optimality condition of [52].
	if got := k.ThroughputForWindow(4); math.Abs(got-25) > 1e-12 {
		t.Errorf("lambda(E=Hops) = %v, want 25", got)
	}
	if got := k.ThroughputForWindow(0); got != 0 {
		t.Errorf("lambda(0) = %v", got)
	}
	// Monotone in E, below Mu.
	prev := 0.0
	for e := 1; e <= 50; e++ {
		lam := k.ThroughputForWindow(e)
		if lam <= prev || lam >= k.Mu {
			t.Fatalf("lambda(%d) = %v not monotone/bounded", e, lam)
		}
		prev = lam
	}
}

func TestKleinrockOptimalWindowMaximisesPower(t *testing.T) {
	for _, hops := range []int{1, 2, 3, 5, 8} {
		k := Kleinrock{Hops: hops, Mu: 40}
		best := k.OptimalWindow()
		if best != hops {
			t.Errorf("OptimalWindow = %d, want %d", best, hops)
		}
		pBest := k.PowerForWindow(best)
		for e := 1; e <= 3*hops+5; e++ {
			if p := k.PowerForWindow(e); p > pBest+1e-9 {
				t.Errorf("hops %d: power(%d)=%v exceeds power(opt=%d)=%v", hops, e, p, best, pBest)
			}
		}
	}
}

func TestKleinrockPowerForWindowEdge(t *testing.T) {
	k := Kleinrock{Hops: 3, Mu: 10}
	if got := k.PowerForWindow(0); got != 0 {
		t.Errorf("PowerForWindow(0) = %v", got)
	}
}
