package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seeds diverged at step %d", i)
		}
	}
}

func TestSeedSensitivity(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("streams with different seeds agree on %d/100 outputs", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c0 := parent.Split(0)
	c1 := parent.Split(1)
	// Children must differ from each other.
	diff := false
	for i := 0; i < 32; i++ {
		if c0.Uint64() != c1.Uint64() {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("sibling child streams are identical")
	}
	// Splitting must not perturb the parent.
	p1 := New(7)
	_ = p1.Split(0)
	p2 := New(7)
	for i := 0; i < 100; i++ {
		if p1.Uint64() != p2.Uint64() {
			t.Fatal("Split perturbed the parent stream")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 100000; i++ {
		x := s.Float64()
		if x < 0 || x >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", x)
		}
	}
}

func TestFloat64Uniformity(t *testing.T) {
	s := New(11)
	const n = 200000
	var buckets [10]int
	for i := 0; i < n; i++ {
		buckets[int(s.Float64()*10)]++
	}
	for i, c := range buckets {
		frac := float64(c) / n
		if math.Abs(frac-0.1) > 0.01 {
			t.Errorf("bucket %d has fraction %v, want ~0.1", i, frac)
		}
	}
}

func TestExpMoments(t *testing.T) {
	s := New(5)
	const n = 500000
	rate := 4.0
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := s.Exp(rate)
		if x < 0 {
			t.Fatalf("negative exponential variate %v", x)
		}
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-0.25) > 0.005 {
		t.Errorf("Exp mean = %v, want 0.25", mean)
	}
	if math.Abs(variance-0.0625) > 0.005 {
		t.Errorf("Exp variance = %v, want 0.0625", variance)
	}
}

func TestExpPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for rate <= 0")
		}
	}()
	New(1).Exp(0)
}

func TestIntnBoundsAndUniformity(t *testing.T) {
	s := New(9)
	var counts [7]int
	const n = 140000
	for i := 0; i < n; i++ {
		v := s.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		counts[v]++
	}
	for i, c := range counts {
		frac := float64(c) / n
		if math.Abs(frac-1.0/7) > 0.01 {
			t.Errorf("Intn bucket %d fraction %v", i, frac)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n <= 0")
		}
	}()
	New(1).Intn(0)
}

func TestPoissonMoments(t *testing.T) {
	for _, mean := range []float64{0.5, 3, 12, 60} {
		s := New(uint64(100 * mean))
		const n = 200000
		sum, sumSq := 0.0, 0.0
		for i := 0; i < n; i++ {
			x := float64(s.Poisson(mean))
			sum += x
			sumSq += x * x
		}
		m := sum / n
		v := sumSq/n - m*m
		if math.Abs(m-mean) > 0.05*mean+0.02 {
			t.Errorf("Poisson(%v) mean = %v", mean, m)
		}
		if math.Abs(v-mean) > 0.08*mean+0.05 {
			t.Errorf("Poisson(%v) variance = %v", mean, v)
		}
	}
	if got := New(1).Poisson(0); got != 0 {
		t.Errorf("Poisson(0) = %d", got)
	}
	if got := New(1).Poisson(-1); got != 0 {
		t.Errorf("Poisson(-1) = %d", got)
	}
}

func TestNormalMoments(t *testing.T) {
	s := New(13)
	const n = 400000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := s.Normal()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("Normal mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("Normal variance = %v", variance)
	}
}

func TestChoose(t *testing.T) {
	s := New(21)
	weights := []float64{1, 0, 3}
	var counts [3]int
	const n = 100000
	for i := 0; i < n; i++ {
		counts[s.Choose(weights)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight branch chosen %d times", counts[1])
	}
	frac0 := float64(counts[0]) / n
	if math.Abs(frac0-0.25) > 0.01 {
		t.Errorf("branch 0 fraction = %v, want 0.25", frac0)
	}
}

func TestChoosePanics(t *testing.T) {
	for _, weights := range [][]float64{nil, {}, {0, 0}, {1, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for weights %v", weights)
				}
			}()
			New(1).Choose(weights)
		}()
	}
}

// Property: Intn is always within bounds for any positive n and seed.
func TestIntnProperty(t *testing.T) {
	f := func(seed uint64, n16 uint16) bool {
		n := int(n16) + 1
		s := New(seed)
		for i := 0; i < 50; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Reseed must leave a stream indistinguishable from a freshly
// constructed one — the contract that lets the simulator's reset re-arm
// pooled streams without reallocating.
func TestReseedMatchesNew(t *testing.T) {
	s := New(1)
	for i := 0; i < 100; i++ {
		s.Uint64() // dirty the state
	}
	s.Reseed(42)
	fresh := New(42)
	for i := 0; i < 1000; i++ {
		if s.Uint64() != fresh.Uint64() {
			t.Fatalf("Reseed(42) diverged from New(42) at step %d", i)
		}
	}
}

func TestReseedSeqMatchesNewSeq(t *testing.T) {
	s := NewSeq(9, 3)
	s.Float64()
	s.ReseedSeq(7, 11)
	fresh := NewSeq(7, 11)
	for i := 0; i < 1000; i++ {
		if s.Uint64() != fresh.Uint64() {
			t.Fatalf("ReseedSeq(7, 11) diverged from NewSeq(7, 11) at step %d", i)
		}
	}
}

func TestSplitIntoMatchesSplit(t *testing.T) {
	parent := New(123)
	var child Stream
	for i := uint64(0); i < 20; i++ {
		want := parent.Split(i)
		parent.SplitInto(i, &child)
		for k := 0; k < 200; k++ {
			if child.Uint64() != want.Uint64() {
				t.Fatalf("SplitInto(%d) diverged from Split(%d) at step %d", i, i, k)
			}
		}
	}
}

// ExpMean(m) and Exp(1/m) sample the same variate from the same state up
// to one rounding (x*m vs x/(1/m)); parallel streams must agree to a few
// ulps on every draw.
func TestExpMeanMatchesExp(t *testing.T) {
	a, b := New(77), New(77)
	const mean = 0.37
	for i := 0; i < 100000; i++ {
		x, y := a.ExpMean(mean), b.Exp(1/mean)
		if diff := math.Abs(x - y); diff > 4e-16*(1+x) {
			t.Fatalf("draw %d: ExpMean %v vs Exp %v (diff %v)", i, x, y, diff)
		}
	}
}

// TestExpDistribution checks the ziggurat-sampled exponential against the
// exact CDF at several quantiles, including deep tail points that only
// the base-layer inversion path can reach. Binomial std dev at n=500000
// is at most ~7e-4; the 5e-3 tolerances are ~7 sigma.
func TestExpDistribution(t *testing.T) {
	s := New(2024)
	const n = 500000
	quantiles := []float64{0.1, 0.5, 1, 2, 4, 8, 12}
	counts := make([]int, len(quantiles))
	maxSeen := 0.0
	for i := 0; i < n; i++ {
		x := s.ExpMean(1)
		if x > maxSeen {
			maxSeen = x
		}
		for q, thr := range quantiles {
			if x <= thr {
				counts[q]++
			}
		}
	}
	for q, thr := range quantiles {
		got := float64(counts[q]) / n
		want := 1 - math.Exp(-thr)
		if math.Abs(got-want) > 5e-3 {
			t.Errorf("P(X <= %v) = %v, want %v", thr, got, want)
		}
	}
	// The ziggurat's tail path must actually fire: beyond zigR only
	// inversion sampling reaches, and 500k draws all but surely exceed it.
	if maxSeen <= zigR {
		t.Errorf("no draw beyond the ziggurat base layer (max %v <= %v)", maxSeen, zigR)
	}
}

func TestExpMeanPanicsOnBadMean(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mean <= 0")
		}
	}()
	New(1).ExpMean(-1)
}
