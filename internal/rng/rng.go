// Package rng provides deterministic pseudo-random streams for the
// discrete-event simulator.
//
// The generator is PCG-XSH-RR (O'Neill 2014), implemented locally so that
// simulation runs are reproducible across Go versions: the standard
// library reserves the right to change math/rand's sequence, which would
// silently move every regression baseline in this repository.
//
// Each simulation entity (per-class arrival process, per-link service
// process, ...) draws from its own Stream, derived from a master seed by
// SplitMix64 so that changing one entity's consumption pattern does not
// perturb any other entity's variates (common random numbers).
package rng

import "math"

// Stream is a single deterministic PCG-32 random stream.
// The zero value is NOT usable; construct with New or Split.
type Stream struct {
	state uint64
	inc   uint64 // stream selector, always odd
	seed  uint64 // construction seed, kept so Split can derive children
}

const pcgMult = 6364136223846793005

// defaultSeq is the sequence selector New uses.
const defaultSeq = 0xda3e39cb94b95bdb

// New returns a stream seeded from seed with the default sequence
// selector.
func New(seed uint64) *Stream {
	return NewSeq(seed, defaultSeq)
}

// NewSeq returns a stream seeded from seed on sequence seq. Distinct seq
// values give statistically independent streams for the same seed.
func NewSeq(seed, seq uint64) *Stream {
	s := &Stream{}
	s.ReseedSeq(seed, seq)
	return s
}

// Reseed reinitialises s in place to the exact state New(seed) returns,
// without allocating. It exists for hot loops that rebuild a fixed set of
// streams once per replication (the simulator's reusable runner state).
func (s *Stream) Reseed(seed uint64) {
	s.ReseedSeq(seed, defaultSeq)
}

// ReseedSeq reinitialises s in place to the exact state NewSeq(seed, seq)
// returns, without allocating.
func (s *Stream) ReseedSeq(seed, seq uint64) {
	s.inc = seq<<1 | 1
	s.seed = seed
	s.state = 0
	s.next() // advance past the all-zeros state per PCG reference init
	s.state += seed
	s.next()
}

// Split derives the i-th child stream. Children of the same parent with
// distinct indices are independent; splitting does not perturb the parent
// and does not depend on how much of the parent has been consumed.
func (s *Stream) Split(i uint64) *Stream {
	child := &Stream{}
	s.SplitInto(i, child)
	return child
}

// SplitInto writes the i-th child stream into child without allocating:
// child ends in the exact state s.Split(i) would return. Like Split it
// neither perturbs nor depends on the parent's consumption.
func (s *Stream) SplitInto(i uint64, child *Stream) {
	// SplitMix64 over (seed, inc, i) gives seed and sequence for the
	// child.
	h := splitMix64(s.seed ^ splitMix64(s.inc) ^ splitMix64(^i))
	child.ReseedSeq(h, splitMix64(h+i))
}

// SubSeed derives the i-th replication seed from a master seed.
// SubSeed(seed, 0) == seed, so the first replication of a batch reproduces
// the plain single run with the same master seed; higher indices are
// SplitMix64-scrambled, giving streams statistically independent of the
// master's and of each other's. The derivation depends only on (seed, i),
// never on execution order, which is what makes batched replications
// deterministic under any worker count.
func SubSeed(seed, i uint64) uint64 {
	if i == 0 {
		return seed
	}
	return splitMix64(seed ^ splitMix64(i*0x9e3779b97f4a7c15))
}

func splitMix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// next advances the PCG state and returns 32 output bits.
func (s *Stream) next() uint32 {
	old := s.state
	s.state = old*pcgMult + s.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint32(old >> 59)
	return xorshifted>>rot | xorshifted<<((-rot)&31)
}

// Uint64 returns a uniformly distributed 64-bit value.
func (s *Stream) Uint64() uint64 {
	return uint64(s.next())<<32 | uint64(s.next())
}

// Float64 returns a uniform variate in [0, 1) with 53 random bits.
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Ziggurat tables for the standard exponential density (Marsaglia &
// Tsang 2000), 256 layers: zigKe are the 32-bit acceptance thresholds,
// zigWe the per-layer scale factors and zigFe the density at each layer
// edge. Built once at init from the published recurrence rather than
// pasted in, so the tables are exactly self-consistent in this binary's
// arithmetic.
var (
	zigKe [256]uint32
	zigWe [256]float64
	zigFe [256]float64
)

// zigR is the right edge of the base ziggurat layer.
const zigR = 7.69711747013104972

func init() {
	const m = 1 << 32
	const v = 0.0039496598225815571993 // area of each layer
	de, te := zigR, zigR
	q := v / math.Exp(-de)
	zigKe[0] = uint32(de / q * m)
	zigKe[1] = 0
	zigWe[0] = q / m
	zigWe[255] = de / m
	zigFe[0] = 1
	zigFe[255] = math.Exp(-de)
	for i := 254; i >= 1; i-- {
		de = -math.Log(v/de + math.Exp(-de))
		zigKe[i+1] = uint32(de / te * m)
		te = de
		zigFe[i] = math.Exp(-de)
		zigWe[i] = de / m
	}
}

// Exp returns an exponential variate with the given rate (mean 1/rate).
// It panics if rate <= 0: a non-positive rate is always a caller bug in
// this codebase (a zero-capacity channel must be rejected at model
// validation, long before sampling).
//
// Sampling uses the 256-layer exponential ziggurat: ~98% of draws cost
// one 32-bit generator step and one multiply, no logarithm. The method is
// exact (rejection, not approximation) — the returned variates are
// exponential to full floating-point fidelity, and the simulator's event
// loop spends its time on simulation instead of math.Log.
func (s *Stream) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exp requires rate > 0")
	}
	return s.expUnit() / rate
}

// ExpMean returns an exponential variate with the given mean (> 0). It
// draws the same distribution as Exp(1/mean) with one division fewer;
// the simulator's event loop is division-bound enough for the spelling
// to matter.
func (s *Stream) ExpMean(mean float64) float64 {
	if mean <= 0 {
		panic("rng: ExpMean requires mean > 0")
	}
	return s.expUnit() * mean
}

// expUnit returns a standard (rate-1) exponential variate.
func (s *Stream) expUnit() float64 {
	for {
		j := s.next()
		i := j & 255
		x := float64(j) * zigWe[i]
		if j < zigKe[i] {
			return x // inside the layer rectangle: accept outright
		}
		if i == 0 {
			// Base-layer tail: beyond zigR the residual is itself
			// exponential (memorylessness), sampled by inversion.
			return zigR - math.Log(1-s.Float64())
		}
		// Wedge: accept x with probability proportional to how far the
		// density at x pokes above the layer's lower edge.
		if zigFe[i]+s.Float64()*(zigFe[i-1]-zigFe[i]) < math.Exp(-x) {
			return x
		}
	}
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn requires n > 0")
	}
	// Lemire's nearly-divisionless bounded rejection on 32 bits when the
	// bound fits, otherwise modulo on 64 bits (n never approaches 2^63 in
	// this repository, so bias is negligible there).
	if n <= 1<<31-1 {
		bound := uint32(n)
		for {
			v := s.next()
			prod := uint64(v) * uint64(bound)
			low := uint32(prod)
			if low >= bound || low >= uint32(-bound)%bound {
				return int(prod >> 32)
			}
		}
	}
	return int(s.Uint64() % uint64(n))
}

// Poisson returns a Poisson variate with the given mean. For small means
// it uses Knuth's product method; for large means, the normal
// approximation with continuity correction (adequate for workload
// generation, where mean > 30 variates are bulk counts).
func (s *Stream) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean < 30 {
		limit := math.Exp(-mean)
		k := 0
		p := 1.0
		for {
			p *= s.Float64()
			if p <= limit {
				return k
			}
			k++
		}
	}
	v := mean + math.Sqrt(mean)*s.Normal() + 0.5
	if v < 0 {
		return 0
	}
	return int(v)
}

// Normal returns a standard normal variate (Marsaglia polar method).
func (s *Stream) Normal() float64 {
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q > 0 && q < 1 {
			return u * math.Sqrt(-2*math.Log(q)/q)
		}
	}
}

// Choose returns an index in [0, len(weights)) with probability
// proportional to weights[i]. It panics if the weights are empty, any is
// negative, or all are zero; routing probability rows are validated at
// model construction so this is a programmer-error guard.
func (s *Stream) Choose(weights []float64) int {
	total := 0.0
	for i, w := range weights {
		if w < 0 {
			panic("rng: negative weight at index " + itoa(i))
		}
		total += w
	}
	if len(weights) == 0 || total == 0 {
		panic("rng: Choose requires a positive total weight")
	}
	x := s.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1 // floating-point tail
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	neg := i < 0
	if neg {
		i = -i
	}
	var b [20]byte
	p := len(b)
	for i > 0 {
		p--
		b[p] = byte('0' + i%10)
		i /= 10
	}
	if neg {
		p--
		b[p] = '-'
	}
	return string(b[p:])
}
