package topo

import (
	"fmt"
	"sort"

	"repro/internal/netmodel"
	"repro/internal/rng"
)

// GenConfig parameterises the synthetic topology generators. The zero
// value gives thesis-scale defaults: 50 kbit/s channels, 1000-bit
// messages, loads scaled so the busiest channel runs at 50% utilisation.
type GenConfig struct {
	// Capacity is the channel capacity in bits/s. <= 0 means 50 kbit/s.
	Capacity float64
	// MeanLength is the mean message length in bits, identical for every
	// class (classes sharing an FCFS channel must agree). <= 0 means 1000.
	MeanLength float64
	// MaxUtil in (0, 1) is the peak channel utilisation the uniform class
	// arrival rates are scaled to. <= 0 means 0.5.
	MaxUtil float64
	// PropDelay is the per-channel one-way propagation delay in seconds.
	PropDelay float64
	// Seed drives every random choice through rng substreams, so a fixed
	// (generator, parameters, seed) triple is bit-reproducible.
	Seed uint64
}

func (c GenConfig) withDefaults() GenConfig {
	if c.Capacity <= 0 {
		c.Capacity = 50_000
	}
	if c.MeanLength <= 0 {
		c.MeanLength = MessageLength
	}
	if c.MaxUtil <= 0 || c.MaxUtil >= 1 {
		c.MaxUtil = 0.5
	}
	return c
}

// Clos returns a two-level leaf–spine (folded Clos / fat-tree pod)
// network: every leaf connects to every spine, giving leaves*spines
// half-duplex channels, and each of the classes virtual channels runs
// leaf→spine→leaf through a uniformly chosen spine. This is the dense,
// shallow-topology stress case: hundreds of channels, 2-hop routes, heavy
// channel sharing.
func Clos(leaves, spines, classes int, cfg GenConfig) (*netmodel.Network, error) {
	if leaves < 2 || spines < 1 {
		return nil, fmt.Errorf("topo: clos needs >= 2 leaves and >= 1 spine, got %d/%d", leaves, spines)
	}
	if classes < 1 {
		return nil, fmt.Errorf("topo: clos needs >= 1 class, got %d", classes)
	}
	cfg = cfg.withDefaults()
	net := &netmodel.Network{Name: fmt.Sprintf("clos-%dx%d", leaves, spines)}
	for l := 0; l < leaves; l++ {
		net.Nodes = append(net.Nodes, netmodel.Node{Name: fmt.Sprintf("leaf%d", l)})
	}
	for s := 0; s < spines; s++ {
		net.Nodes = append(net.Nodes, netmodel.Node{Name: fmt.Sprintf("spine%d", s)})
	}
	// Channel l*spines+s joins leaf l and spine s.
	for l := 0; l < leaves; l++ {
		for s := 0; s < spines; s++ {
			net.Channels = append(net.Channels, netmodel.Channel{
				Name: fmt.Sprintf("l%ds%d", l, s), From: l, To: leaves + s,
				Capacity: cfg.Capacity, PropDelay: cfg.PropDelay,
			})
		}
	}
	cs := rng.New(cfg.Seed).Split(1)
	for k := 0; k < classes; k++ {
		src := cs.Intn(leaves)
		dst := cs.Intn(leaves - 1)
		if dst >= src {
			dst++
		}
		spine := cs.Intn(spines)
		net.Classes = append(net.Classes, netmodel.Class{
			Name: fmt.Sprintf("class%d", k), Rate: 1, MeanLength: cfg.MeanLength,
			Route: []int{src*spines + spine, dst*spines + spine},
		})
	}
	scaleRates(net, cfg.MaxUtil)
	return net, nil
}

// ScaleFree returns a Barabási–Albert preferential-attachment network:
// growth starts from an (m+1)-clique and every new node attaches to m
// distinct existing nodes with probability proportional to degree, giving
// the heavy-tailed degree distribution of real internets — a few hub
// nodes carry most routes. Classes run between uniform random node pairs
// along deterministic BFS shortest paths.
func ScaleFree(nodes, m, classes int, cfg GenConfig) (*netmodel.Network, error) {
	if m < 1 || nodes < m+2 {
		return nil, fmt.Errorf("topo: scale-free needs m >= 1 and nodes >= m+2, got nodes=%d m=%d", nodes, m)
	}
	if classes < 1 {
		return nil, fmt.Errorf("topo: scale-free needs >= 1 class, got %d", classes)
	}
	cfg = cfg.withDefaults()
	net := &netmodel.Network{Name: fmt.Sprintf("scalefree-%d", nodes)}
	for i := 0; i < nodes; i++ {
		net.Nodes = append(net.Nodes, netmodel.Node{Name: fmt.Sprintf("n%d", i)})
	}
	gs := rng.New(cfg.Seed).Split(0)
	// targets holds one entry per edge endpoint; sampling it uniformly is
	// degree-proportional attachment.
	var targets []int
	addEdge := func(a, b int) {
		net.Channels = append(net.Channels, netmodel.Channel{
			Name: fmt.Sprintf("e%d", len(net.Channels)), From: a, To: b,
			Capacity: cfg.Capacity, PropDelay: cfg.PropDelay,
		})
		targets = append(targets, a, b)
	}
	for a := 0; a <= m; a++ {
		for b := a + 1; b <= m; b++ {
			addEdge(a, b)
		}
	}
	for v := m + 1; v < nodes; v++ {
		chosen := map[int]bool{}
		for len(chosen) < m {
			t := targets[gs.Intn(len(targets))]
			if t != v && !chosen[t] {
				chosen[t] = true
			}
		}
		// Attach in sorted order so the channel list does not depend on
		// map iteration.
		picks := make([]int, 0, m)
		for t := range chosen {
			picks = append(picks, t)
		}
		sort.Ints(picks)
		for _, t := range picks {
			addEdge(v, t)
		}
	}
	if err := addBFSClasses(net, classes, rng.New(cfg.Seed).Split(1), cfg); err != nil {
		return nil, err
	}
	scaleRates(net, cfg.MaxUtil)
	return net, nil
}

// Mesh returns a seeded random mesh: a ring over all nodes (guaranteeing
// connectivity) plus extra distinct random chords, with classes between
// uniform random node pairs along deterministic BFS shortest paths — the
// irregular wide-area case the Canadian backbone is a 6-node instance of.
func Mesh(nodes, extra, classes int, cfg GenConfig) (*netmodel.Network, error) {
	if nodes < 3 {
		return nil, fmt.Errorf("topo: mesh needs >= 3 nodes, got %d", nodes)
	}
	if classes < 1 {
		return nil, fmt.Errorf("topo: mesh needs >= 1 class, got %d", classes)
	}
	maxExtra := nodes*(nodes-1)/2 - nodes
	if extra < 0 || extra > maxExtra {
		return nil, fmt.Errorf("topo: mesh extra channels %d outside [0, %d]", extra, maxExtra)
	}
	cfg = cfg.withDefaults()
	net := &netmodel.Network{Name: fmt.Sprintf("mesh-%d", nodes)}
	for i := 0; i < nodes; i++ {
		net.Nodes = append(net.Nodes, netmodel.Node{Name: fmt.Sprintf("n%d", i)})
	}
	have := map[[2]int]bool{}
	addEdge := func(a, b int) {
		if a > b {
			a, b = b, a
		}
		have[[2]int{a, b}] = true
		net.Channels = append(net.Channels, netmodel.Channel{
			Name: fmt.Sprintf("e%d", len(net.Channels)), From: a, To: b,
			Capacity: cfg.Capacity, PropDelay: cfg.PropDelay,
		})
	}
	for i := 0; i < nodes; i++ {
		addEdge(i, (i+1)%nodes)
	}
	gs := rng.New(cfg.Seed).Split(0)
	for added := 0; added < extra; {
		a, b := gs.Intn(nodes), gs.Intn(nodes)
		if a == b {
			continue
		}
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		if have[[2]int{lo, hi}] {
			continue
		}
		addEdge(a, b)
		added++
	}
	if err := addBFSClasses(net, classes, rng.New(cfg.Seed).Split(1), cfg); err != nil {
		return nil, err
	}
	scaleRates(net, cfg.MaxUtil)
	return net, nil
}

// addBFSClasses appends classes between random distinct node pairs, routed
// on the breadth-first shortest path. Adjacency is scanned in channel
// order, so routes are a deterministic function of the topology and the
// stream.
func addBFSClasses(net *netmodel.Network, classes int, s *rng.Stream, cfg GenConfig) error {
	nodes := len(net.Nodes)
	adj := make([][][2]int, nodes) // adj[v] = (neighbor, channel)
	for l, ch := range net.Channels {
		adj[ch.From] = append(adj[ch.From], [2]int{ch.To, l})
		adj[ch.To] = append(adj[ch.To], [2]int{ch.From, l})
	}
	for k := 0; k < classes; k++ {
		src := s.Intn(nodes)
		dst := s.Intn(nodes - 1)
		if dst >= src {
			dst++
		}
		route, err := bfsRoute(adj, src, dst)
		if err != nil {
			return fmt.Errorf("topo: %s: %w", net.Name, err)
		}
		net.Classes = append(net.Classes, netmodel.Class{
			Name: fmt.Sprintf("class%d", k), Rate: 1, MeanLength: cfg.MeanLength,
			Route: route,
		})
	}
	return nil
}

// bfsRoute returns the channel indices of the first breadth-first
// shortest path from src to dst.
func bfsRoute(adj [][][2]int, src, dst int) ([]int, error) {
	prev := make([][2]int, len(adj)) // (previous node, channel into here)
	seen := make([]bool, len(adj))
	seen[src] = true
	queue := []int{src}
	for len(queue) > 0 && !seen[dst] {
		v := queue[0]
		queue = queue[1:]
		for _, nb := range adj[v] {
			if !seen[nb[0]] {
				seen[nb[0]] = true
				prev[nb[0]] = [2]int{v, nb[1]}
				queue = append(queue, nb[0])
			}
		}
	}
	if !seen[dst] {
		return nil, fmt.Errorf("no path from node %d to node %d", src, dst)
	}
	var rev []int
	for v := dst; v != src; v = prev[v][0] {
		rev = append(rev, prev[v][1])
	}
	route := make([]int, len(rev))
	for i, l := range rev {
		route[len(rev)-1-i] = l
	}
	return route, nil
}

// scaleRates sets every class's arrival rate to the uniform value at
// which the busiest channel's offered utilisation equals maxUtil, keeping
// generated networks inside the stable region at any scale.
func scaleRates(net *netmodel.Network, maxUtil float64) {
	peak := 0.0
	util := make([]float64, len(net.Channels))
	for _, c := range net.Classes {
		for _, l := range c.Route {
			util[l] += c.Rate * c.MeanLength / net.Channels[l].Capacity
			if util[l] > peak {
				peak = util[l]
			}
		}
	}
	if peak <= 0 {
		return
	}
	scale := maxUtil / peak
	for r := range net.Classes {
		net.Classes[r].Rate *= scale
	}
}
