// Package topo provides the thesis's example networks and a few synthetic
// topology generators for tests, examples and benchmarks.
//
// The 6-node Canadian network of Figs. 4.5/4.10 is reconstructed from the
// text: seven half-duplex channels (channels modelled as single FCFS
// queues serving either direction), five at 50 kbit/s and two at
// 25 kbit/s, with 1000-bit exponential messages. The reconstruction is
// pinned down by four facts in the thesis: the 2-class model has 9 queues
// and the 4-class model 11 (so both use the same 7 channels); the class
// hop counts are (4, 4, 3, 1) (the Kleinrock baseline of Table 4.12);
// the two classes of the first example interact at a single queue
// ("little interaction"); and symmetric loads give symmetric optimal
// windows (so each 4-hop route sees capacities {50, 50, 50, 25}).
package topo

import (
	"fmt"

	"repro/internal/netmodel"
)

// Channel indices of the Canadian network, in the order they are created.
const (
	ChEW = iota // Edmonton–Winnipeg, 50 kb/s
	ChWT        // Winnipeg–Toronto, 50 kb/s (the shared channel)
	ChTM        // Toronto–Montreal, 50 kb/s
	ChMW        // Montreal–Winnipeg, 50 kb/s
	ChTE        // Toronto–Edmonton, 50 kb/s
	ChMO        // Montreal–Ottawa, 25 kb/s
	ChEV        // Edmonton–Vancouver, 25 kb/s
)

// canadaBase builds the 6-node, 7-channel backbone shared by both
// Chapter 4 examples.
func canadaBase(name string) *netmodel.Network {
	nodes := []netmodel.Node{
		{Name: "Vancouver"}, // 0
		{Name: "Edmonton"},  // 1
		{Name: "Winnipeg"},  // 2
		{Name: "Toronto"},   // 3
		{Name: "Montreal"},  // 4
		{Name: "Ottawa"},    // 5
	}
	const k = 1000.0
	channels := []netmodel.Channel{
		{Name: "EW", From: 1, To: 2, Capacity: 50 * k},
		{Name: "WT", From: 2, To: 3, Capacity: 50 * k},
		{Name: "TM", From: 3, To: 4, Capacity: 50 * k},
		{Name: "MW", From: 4, To: 2, Capacity: 50 * k},
		{Name: "TE", From: 3, To: 1, Capacity: 50 * k},
		{Name: "MO", From: 4, To: 5, Capacity: 25 * k},
		{Name: "EV", From: 1, To: 0, Capacity: 25 * k},
	}
	return &netmodel.Network{Name: name, Nodes: nodes, Channels: channels}
}

// MessageLength is the mean message length (bits) of all classes in the
// thesis's examples.
const MessageLength = 1000

// Canada2Class returns the Fig. 4.5 network: class 1 Edmonton→Ottawa via
// Winnipeg, Toronto and Montreal; class 2 Montreal→Vancouver via
// Winnipeg, Toronto and Edmonton. s1 and s2 are the Poisson arrival rates
// in messages/second. Windows start at 0 (undimensioned).
func Canada2Class(s1, s2 float64) *netmodel.Network {
	n := canadaBase("canada-2class")
	n.Classes = []netmodel.Class{
		{
			Name: "class1", Rate: s1, MeanLength: MessageLength,
			Route: []int{ChEW, ChWT, ChTM, ChMO},
		},
		{
			Name: "class2", Rate: s2, MeanLength: MessageLength,
			Route: []int{ChMW, ChWT, ChTE, ChEV},
		},
	}
	return n
}

// Canada4Class returns the Fig. 4.10 network: classes 1 and 2 as in
// Canada2Class, class 3 Vancouver→Montreal via Edmonton and Winnipeg,
// class 4 Toronto→Winnipeg direct.
func Canada4Class(s1, s2, s3, s4 float64) *netmodel.Network {
	n := Canada2Class(s1, s2)
	n.Name = "canada-4class"
	n.Classes = append(n.Classes,
		netmodel.Class{
			Name: "class3", Rate: s3, MeanLength: MessageLength,
			Route: []int{ChEV, ChEW, ChMW},
		},
		netmodel.Class{
			Name: "class4", Rate: s4, MeanLength: MessageLength,
			Route: []int{ChWT},
		},
	)
	return n
}

// Tandem returns a linear network of hops channels, one class traversing
// all of them: the p-hop virtual channel of Kleinrock's reference model.
// Every channel has the given capacity (bits/s); messages are meanLength
// bits with Poisson rate rate.
func Tandem(hops int, capacity, rate, meanLength float64) (*netmodel.Network, error) {
	if hops < 1 {
		return nil, fmt.Errorf("topo: tandem needs at least 1 hop, got %d", hops)
	}
	n := &netmodel.Network{Name: fmt.Sprintf("tandem-%d", hops)}
	for i := 0; i <= hops; i++ {
		n.Nodes = append(n.Nodes, netmodel.Node{Name: fmt.Sprintf("n%d", i)})
	}
	route := make([]int, hops)
	for i := 0; i < hops; i++ {
		n.Channels = append(n.Channels, netmodel.Channel{
			Name: fmt.Sprintf("ch%d", i), From: i, To: i + 1, Capacity: capacity,
		})
		route[i] = i
	}
	n.Classes = []netmodel.Class{{
		Name: "class1", Rate: rate, MeanLength: meanLength, Route: route,
	}}
	return n, nil
}

// Ring returns a ring of n nodes with n channels and n classes, class i
// travelling hops channels clockwise starting at node i. All classes
// share the ring's channels, giving heavy interaction.
func Ring(n, hops int, capacity, rate, meanLength float64) (*netmodel.Network, error) {
	if n < 3 {
		return nil, fmt.Errorf("topo: ring needs at least 3 nodes, got %d", n)
	}
	if hops < 1 || hops >= n {
		return nil, fmt.Errorf("topo: ring hop count %d outside [1, %d]", hops, n-1)
	}
	net := &netmodel.Network{Name: fmt.Sprintf("ring-%d", n)}
	for i := 0; i < n; i++ {
		net.Nodes = append(net.Nodes, netmodel.Node{Name: fmt.Sprintf("n%d", i)})
	}
	for i := 0; i < n; i++ {
		net.Channels = append(net.Channels, netmodel.Channel{
			Name: fmt.Sprintf("ch%d", i), From: i, To: (i + 1) % n, Capacity: capacity,
		})
	}
	for i := 0; i < n; i++ {
		route := make([]int, hops)
		for h := 0; h < hops; h++ {
			route[h] = (i + h) % n
		}
		net.Classes = append(net.Classes, netmodel.Class{
			Name: fmt.Sprintf("class%d", i), Rate: rate, MeanLength: meanLength, Route: route,
		})
	}
	return net, nil
}

// Star returns a hub-and-spoke network: leaves nodes around a hub, with
// one class per ordered leaf pair given in pairs, each class crossing two
// channels (leaf→hub, hub→leaf). Spoke channels have the given capacity.
func Star(leaves int, pairs [][2]int, capacity, rate, meanLength float64) (*netmodel.Network, error) {
	if leaves < 2 {
		return nil, fmt.Errorf("topo: star needs at least 2 leaves, got %d", leaves)
	}
	net := &netmodel.Network{Name: fmt.Sprintf("star-%d", leaves)}
	net.Nodes = append(net.Nodes, netmodel.Node{Name: "hub"})
	for i := 0; i < leaves; i++ {
		net.Nodes = append(net.Nodes, netmodel.Node{Name: fmt.Sprintf("leaf%d", i)})
	}
	// Channel 2i: leaf i -> hub; channel 2i+1: hub -> leaf i.
	for i := 0; i < leaves; i++ {
		net.Channels = append(net.Channels,
			netmodel.Channel{Name: fmt.Sprintf("up%d", i), From: i + 1, To: 0, Capacity: capacity},
			netmodel.Channel{Name: fmt.Sprintf("down%d", i), From: 0, To: i + 1, Capacity: capacity},
		)
	}
	for k, p := range pairs {
		a, b := p[0], p[1]
		if a < 0 || a >= leaves || b < 0 || b >= leaves || a == b {
			return nil, fmt.Errorf("topo: star pair %d = (%d,%d) invalid for %d leaves", k, a, b, leaves)
		}
		net.Classes = append(net.Classes, netmodel.Class{
			Name: fmt.Sprintf("class%d", k), Rate: rate, MeanLength: meanLength,
			Route: []int{2 * a, 2*b + 1},
		})
	}
	if len(net.Classes) == 0 {
		return nil, fmt.Errorf("topo: star needs at least one class pair")
	}
	return net, nil
}
