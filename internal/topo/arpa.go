package topo

import (
	"fmt"

	"repro/internal/netmodel"
)

// Arpa returns a 10-node mesh patterned on the early ARPANET (Fig. 2.3
// of the thesis shows the 1976 network; this is the classic 1970-era
// West–East backbone shape): 13 half-duplex 50 kb/s channels and, by
// default, six cross-country virtual channels routed by shortest path.
// rates gives the per-class arrival rates (len 6); nil uses 8 msg/s for
// every class.
//
// The network is the repository's "larger network" test bed for the
// Chapter 5 claim that WINDIM's insights extend beyond the 6-node
// examples: exact analysis of six interacting chains is already
// infeasible (a 9^6-point lattice per candidate), while the σ-heuristic
// evaluation stays linear.
func Arpa(rates []float64) (*netmodel.Network, error) {
	names := []string{
		"UCLA", "SRI", "UCSB", "UTAH", "RAND",
		"SDC", "BBN", "MIT", "HARV", "LINC",
	}
	n := &netmodel.Network{Name: "arpa-10"}
	for _, nm := range names {
		n.Nodes = append(n.Nodes, netmodel.Node{Name: nm})
	}
	idx := func(name string) int {
		for i := range names {
			if names[i] == name {
				return i
			}
		}
		panic("topo: unknown arpa node " + name)
	}
	edges := [][2]string{
		{"UCLA", "SRI"}, {"UCLA", "UCSB"}, {"UCLA", "RAND"},
		{"SRI", "UCSB"}, {"SRI", "UTAH"},
		{"UTAH", "SDC"}, {"UTAH", "MIT"},
		{"RAND", "SDC"}, {"RAND", "BBN"},
		{"BBN", "MIT"}, {"BBN", "HARV"},
		{"MIT", "LINC"}, {"HARV", "LINC"},
	}
	const k = 1000.0
	for _, e := range edges {
		n.Channels = append(n.Channels, netmodel.Channel{
			Name: e[0] + "-" + e[1], From: idx(e[0]), To: idx(e[1]), Capacity: 50 * k,
		})
	}
	pairs := [][2]string{
		{"UCLA", "MIT"},  // west -> east, long
		{"HARV", "UCSB"}, // east -> west, long
		{"SRI", "LINC"},  // west -> east, long
		{"SDC", "BBN"},   // mid-length
		{"UCLA", "UTAH"}, // short, western cluster
		{"MIT", "HARV"},  // short, eastern cluster
	}
	if rates == nil {
		rates = []float64{8, 8, 8, 8, 8, 8}
	}
	if len(rates) != len(pairs) {
		return nil, fmt.Errorf("topo: arpa needs %d rates, got %d", len(pairs), len(rates))
	}
	for i, p := range pairs {
		if _, err := n.AddClass(
			fmt.Sprintf("vc-%s-%s", p[0], p[1]), p[0], p[1],
			rates[i], MessageLength, 0); err != nil {
			return nil, err
		}
	}
	if err := n.Validate(); err != nil {
		return nil, fmt.Errorf("topo: arpa network invalid: %w", err)
	}
	return n, nil
}
