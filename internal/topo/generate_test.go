package topo_test

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/netmodel"
	"repro/internal/topo"
)

// generators enumerates the three families at small, solver-friendly
// scale; every property test below runs over all of them.
func generators(seed uint64) map[string]func() (*netmodel.Network, error) {
	cfg := topo.GenConfig{Seed: seed}
	return map[string]func() (*netmodel.Network, error){
		"clos":      func() (*netmodel.Network, error) { return topo.Clos(6, 3, 12, cfg) },
		"scalefree": func() (*netmodel.Network, error) { return topo.ScaleFree(16, 2, 10, cfg) },
		"mesh":      func() (*netmodel.Network, error) { return topo.Mesh(12, 5, 10, cfg) },
	}
}

// TestGenerateDeterministic: a fixed (generator, parameters, seed) triple
// must reproduce the identical network, and a different seed must not.
func TestGenerateDeterministic(t *testing.T) {
	for name, gen := range generators(42) {
		a, err := gen()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, err := gen()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: same seed produced different networks", name)
		}
		c, err := generators(43)[name]()
		if err != nil {
			t.Fatalf("%s seed 43: %v", name, err)
		}
		if reflect.DeepEqual(a, c) {
			t.Errorf("%s: different seeds produced identical networks", name)
		}
	}
}

// TestGenerateCounts: node, channel, and class counts must match the spec
// arithmetic of each family.
func TestGenerateCounts(t *testing.T) {
	clos, err := topo.Clos(6, 3, 12, topo.GenConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(clos.Nodes) != 9 || len(clos.Channels) != 18 || len(clos.Classes) != 12 {
		t.Errorf("clos: %d nodes, %d channels, %d classes; want 9/18/12",
			len(clos.Nodes), len(clos.Channels), len(clos.Classes))
	}
	for r := range clos.Classes {
		if clos.Hops(r) != 2 {
			t.Errorf("clos class %d: %d hops, want 2 (leaf-spine-leaf)", r, clos.Hops(r))
		}
	}

	sf, err := topo.ScaleFree(16, 2, 10, topo.GenConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// (m+1)-clique then m edges per remaining node.
	wantCh := 2*3/2 + (16-3)*2
	if len(sf.Nodes) != 16 || len(sf.Channels) != wantCh || len(sf.Classes) != 10 {
		t.Errorf("scalefree: %d nodes, %d channels, %d classes; want 16/%d/10",
			len(sf.Nodes), len(sf.Channels), len(sf.Classes), wantCh)
	}

	mesh, err := topo.Mesh(12, 5, 10, topo.GenConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(mesh.Nodes) != 12 || len(mesh.Channels) != 17 || len(mesh.Classes) != 10 {
		t.Errorf("mesh: %d nodes, %d channels, %d classes; want 12/17/10",
			len(mesh.Nodes), len(mesh.Channels), len(mesh.Classes))
	}
}

// TestGenerateValidAndLoaded: every generated network must pass the full
// netmodel validation, and the uniform rate scaling must put the busiest
// channel exactly at the configured peak utilisation.
func TestGenerateValidAndLoaded(t *testing.T) {
	for name, gen := range generators(7) {
		n, err := gen()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := n.Validate(); err != nil {
			t.Errorf("%s: generated network fails validation: %v", name, err)
			continue
		}
		util := make([]float64, len(n.Channels))
		peak := 0.0
		for _, c := range n.Classes {
			for _, l := range c.Route {
				util[l] += c.Rate * c.MeanLength / n.Channels[l].Capacity
				if util[l] > peak {
					peak = util[l]
				}
			}
		}
		if math.Abs(peak-0.5) > 1e-12 {
			t.Errorf("%s: peak channel utilisation %v, want 0.5", name, peak)
		}
	}
}

// TestGenerateSolvesWithoutFallback: at small scale the generated networks
// must be directly solvable — the engine's primary AMVA evaluator converges
// at the hop-count window vector without touching the fallback chain.
func TestGenerateSolvesWithoutFallback(t *testing.T) {
	for name, gen := range generators(11) {
		n, err := gen()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		eng, err := core.NewEngine(n, core.Options{})
		if err != nil {
			t.Fatalf("%s: NewEngine: %v", name, err)
		}
		if _, err := eng.Evaluate(n.HopVector()); err != nil {
			t.Fatalf("%s: evaluate at hop windows: %v", name, err)
		}
		if r := eng.FallbackCounts().Rescued(); r != 0 {
			t.Errorf("%s: %d evaluations needed the fallback chain", name, r)
		}
	}
}

// TestGenerateArgumentErrors: out-of-range specs must be rejected with
// errors, not panics or degenerate networks.
func TestGenerateArgumentErrors(t *testing.T) {
	cases := []struct {
		name string
		f    func() (*netmodel.Network, error)
	}{
		{"clos leaves", func() (*netmodel.Network, error) { return topo.Clos(1, 3, 4, topo.GenConfig{}) }},
		{"clos classes", func() (*netmodel.Network, error) { return topo.Clos(4, 3, 0, topo.GenConfig{}) }},
		{"scalefree m", func() (*netmodel.Network, error) { return topo.ScaleFree(10, 0, 4, topo.GenConfig{}) }},
		{"scalefree nodes", func() (*netmodel.Network, error) { return topo.ScaleFree(3, 2, 4, topo.GenConfig{}) }},
		{"mesh nodes", func() (*netmodel.Network, error) { return topo.Mesh(2, 0, 4, topo.GenConfig{}) }},
		{"mesh extra", func() (*netmodel.Network, error) { return topo.Mesh(6, 100, 4, topo.GenConfig{}) }},
	}
	for _, c := range cases {
		if _, err := c.f(); err == nil {
			t.Errorf("%s: expected an error", c.name)
		}
	}
}

// TestGenerateScales is a smoke check that the generators handle the
// paperbench scale — hundreds of stations, dozens of chains — and still
// validate.
func TestGenerateScales(t *testing.T) {
	if testing.Short() {
		t.Skip("large-topology generation in -short mode")
	}
	n, err := topo.Clos(12, 6, 48, topo.GenConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(n.Channels) != 72 || len(n.Classes) != 48 {
		t.Fatalf("clos(12,6,48): %d channels, %d classes", len(n.Channels), len(n.Classes))
	}
	m, err := topo.Mesh(64, 64, 96, topo.GenConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}
