package topo

import "testing"

func TestArpaStructure(t *testing.T) {
	n, err := Arpa(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Validate(); err != nil {
		t.Fatalf("arpa invalid: %v", err)
	}
	if len(n.Nodes) != 10 || len(n.Channels) != 13 || len(n.Classes) != 6 {
		t.Fatalf("shape: %d nodes, %d channels, %d classes",
			len(n.Nodes), len(n.Channels), len(n.Classes))
	}
	// Long routes actually cross the network (>= 3 hops each).
	for r := 0; r < 3; r++ {
		if n.Hops(r) < 3 {
			t.Errorf("class %d hops = %d, expected a long route", r, n.Hops(r))
		}
	}
	// The short eastern pair is 2 hops (via BBN or LINC).
	if n.Hops(5) != 2 {
		t.Errorf("MIT-HARV hops = %d, want 2", n.Hops(5))
	}
}

func TestArpaRates(t *testing.T) {
	n, err := Arpa([]float64{1, 2, 3, 4, 5, 6})
	if err != nil {
		t.Fatal(err)
	}
	if n.Classes[3].Rate != 4 {
		t.Errorf("rate = %v", n.Classes[3].Rate)
	}
	if _, err := Arpa([]float64{1, 2}); err == nil {
		t.Error("expected rate-count error")
	}
}
