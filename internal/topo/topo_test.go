package topo

import (
	"math"
	"testing"

	"repro/internal/numeric"
)

func TestCanada2ClassStructure(t *testing.T) {
	n := Canada2Class(12.5, 12.5)
	if err := n.Validate(); err != nil {
		t.Fatalf("Canada2Class invalid: %v", err)
	}
	if len(n.Nodes) != 6 || len(n.Channels) != 7 || len(n.Classes) != 2 {
		t.Fatalf("shape: %d nodes, %d channels, %d classes", len(n.Nodes), len(n.Channels), len(n.Classes))
	}
	// Both classes have 4 hops.
	if !n.HopVector().Equal(numeric.IntVector{4, 4}) {
		t.Errorf("HopVector = %v", n.HopVector())
	}
	// Five 50 kb/s channels, two 25 kb/s.
	n50, n25 := 0, 0
	for _, ch := range n.Channels {
		switch ch.Capacity {
		case 50000:
			n50++
		case 25000:
			n25++
		}
	}
	if n50 != 5 || n25 != 2 {
		t.Errorf("capacities: %d at 50k, %d at 25k", n50, n25)
	}
	// Both classes bottleneck at 25 msg/s (symmetric parameters).
	for r := 0; r < 2; r++ {
		if got := n.BottleneckRate(r); math.Abs(got-25) > 1e-12 {
			t.Errorf("class %d bottleneck = %v, want 25", r, got)
		}
	}
	// Classes interact at exactly one channel (the thesis's "little
	// interaction"): WT.
	shared := 0
	use := map[int][2]bool{}
	for r, c := range n.Classes {
		for _, l := range c.Route {
			u := use[l]
			u[r] = true
			use[l] = u
		}
	}
	for l, u := range use {
		if u[0] && u[1] {
			shared++
			if l != ChWT {
				t.Errorf("unexpected shared channel %d", l)
			}
		}
	}
	if shared != 1 {
		t.Errorf("classes share %d channels, want 1", shared)
	}
	// The closed model has 9 queues (7 channels + 2 sources), as in
	// Fig. 4.6.
	model, sources, err := n.ClosedModel(numeric.IntVector{5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if model.N() != 9 || len(sources) != 2 {
		t.Errorf("closed model has %d stations, %d sources", model.N(), len(sources))
	}
}

func TestCanada4ClassStructure(t *testing.T) {
	n := Canada4Class(6, 6, 6, 12)
	if err := n.Validate(); err != nil {
		t.Fatalf("Canada4Class invalid: %v", err)
	}
	// Hop counts (4, 4, 3, 1): the Kleinrock baseline of Table 4.12.
	if !n.HopVector().Equal(numeric.IntVector{4, 4, 3, 1}) {
		t.Errorf("HopVector = %v", n.HopVector())
	}
	// Same 7 channels: the closed model has 11 queues (Fig. 4.11).
	model, _, err := n.ClosedModel(numeric.IntVector{4, 4, 3, 1})
	if err != nil {
		t.Fatal(err)
	}
	if model.N() != 11 {
		t.Errorf("closed model has %d stations, want 11", model.N())
	}
	// Bottlenecks 25, 25, 25, 50: arrival ratio 1:1:1:2 maximises power
	// in Table 4.12.
	want := []float64{25, 25, 25, 50}
	for r := range want {
		if got := n.BottleneckRate(r); math.Abs(got-want[r]) > 1e-12 {
			t.Errorf("class %d bottleneck = %v, want %v", r, got, want[r])
		}
	}
}

func TestTandem(t *testing.T) {
	n, err := Tandem(4, 50000, 10, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(n.Channels) != 4 || n.Hops(0) != 4 {
		t.Errorf("tandem shape wrong")
	}
	if _, err := Tandem(0, 1, 1, 1); err == nil {
		t.Error("expected error for 0 hops")
	}
}

func TestRing(t *testing.T) {
	n, err := Ring(5, 2, 50000, 5, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(n.Channels) != 5 || len(n.Classes) != 5 {
		t.Errorf("ring shape wrong")
	}
	for r := range n.Classes {
		if n.Hops(r) != 2 {
			t.Errorf("class %d hops = %d", r, n.Hops(r))
		}
	}
	if _, err := Ring(2, 1, 1, 1, 1); err == nil {
		t.Error("expected error for tiny ring")
	}
	if _, err := Ring(5, 5, 1, 1, 1); err == nil {
		t.Error("expected error for hops >= n")
	}
}

func TestStar(t *testing.T) {
	n, err := Star(4, [][2]int{{0, 1}, {2, 3}, {1, 2}}, 50000, 8, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(n.Channels) != 8 || len(n.Classes) != 3 {
		t.Errorf("star shape wrong: %d channels, %d classes", len(n.Channels), len(n.Classes))
	}
	for r := range n.Classes {
		if n.Hops(r) != 2 {
			t.Errorf("class %d hops = %d", r, n.Hops(r))
		}
	}
	if _, err := Star(1, [][2]int{{0, 1}}, 1, 1, 1); err == nil {
		t.Error("expected error for 1 leaf")
	}
	if _, err := Star(3, [][2]int{{0, 0}}, 1, 1, 1); err == nil {
		t.Error("expected error for degenerate pair")
	}
	if _, err := Star(3, nil, 1, 1, 1); err == nil {
		t.Error("expected error for no classes")
	}
}
