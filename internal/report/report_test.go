package report

import (
	"math"
	"strings"
	"testing"

	"repro/internal/numeric"
)

func TestTableRendering(t *testing.T) {
	tbl := &Table{Title: "T", Headers: []string{"a", "bee"}}
	tbl.AddRow("1", "2")
	tbl.AddRow("333") // short row padded
	if tbl.Rows() != 2 {
		t.Errorf("Rows = %d", tbl.Rows())
	}
	var b strings.Builder
	if _, err := tbl.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // title, header, rule, 2 rows -> 5? title+header+rule+2 = 5
		if len(lines) != 5 {
			t.Fatalf("unexpected line count %d:\n%s", len(lines), out)
		}
	}
	if !strings.HasPrefix(lines[0], "T") {
		t.Errorf("missing title: %q", lines[0])
	}
	if !strings.Contains(out, "333") || !strings.Contains(out, "bee") {
		t.Errorf("content missing:\n%s", out)
	}
	// Columns aligned: header and first row share the column-2 offset.
	hIdx := strings.Index(lines[1], "bee")
	rIdx := strings.Index(lines[3], "2")
	if hIdx != rIdx {
		t.Errorf("misaligned columns: header at %d, row at %d\n%s", hIdx, rIdx, out)
	}
}

func TestFloat(t *testing.T) {
	if Float(3.14159, 2) != "3.14" {
		t.Errorf("Float = %q", Float(3.14159, 2))
	}
	if Float(math.NaN(), 2) != "nan" {
		t.Error("NaN formatting")
	}
	if Float(math.Inf(1), 0) != "inf" || Float(math.Inf(-1), 0) != "-inf" {
		t.Error("Inf formatting")
	}
}

func TestWindows(t *testing.T) {
	if got := Windows(numeric.IntVector{1, 1, 1, 4}); got != "1 1 1 4" {
		t.Errorf("Windows = %q", got)
	}
}

func TestChart(t *testing.T) {
	var b strings.Builder
	err := Chart(&b, "demo", 20, 6,
		Series{Name: "up", X: []float64{0, 1, 2}, Y: []float64{0, 1, 2}, Marker: 'u'},
		Series{Name: "down", X: []float64{0, 1, 2}, Y: []float64{2, 1, 0}, Marker: 'd'},
	)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "u up") || !strings.Contains(out, "d down") {
		t.Errorf("chart output missing pieces:\n%s", out)
	}
	if strings.Count(out, "u") < 3 {
		t.Errorf("markers not plotted:\n%s", out)
	}
}

func TestChartRejectsEmpty(t *testing.T) {
	var b strings.Builder
	if err := Chart(&b, "empty", 20, 6, Series{Name: "nan", X: []float64{1}, Y: []float64{math.NaN()}}); err == nil {
		t.Fatal("expected error for unplottable chart")
	}
}

func TestCSV(t *testing.T) {
	var b strings.Builder
	err := CSV(&b,
		Series{Name: "a", X: []float64{1, 2}, Y: []float64{10, 20}},
		Series{Name: "b", X: []float64{2, 1}, Y: []float64{200, 100}},
	)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if lines[0] != "x,a,b" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "1,10,100" || lines[2] != "2,20,200" {
		t.Errorf("rows = %v", lines[1:])
	}
}
