// Package report renders fixed-width text tables and ASCII charts for the
// benchmark harness — the tooling that prints the same rows and series the
// thesis's Tables 4.7/4.8/4.12 and Fig. 4.9 report.
package report

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"repro/internal/numeric"
)

// Table is a simple fixed-width text table.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// AddRow appends a row; cells beyond the header count are dropped, short
// rows are padded.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// WriteTo renders the table.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(pad(c, widths[i]))
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	rule := make([]string, len(t.Headers))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	line(rule)
	for _, row := range t.rows {
		line(row)
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Float formats x with the given number of decimals, rendering NaN and
// infinities readably.
func Float(x float64, decimals int) string {
	if math.IsNaN(x) {
		return "nan"
	}
	if math.IsInf(x, 1) {
		return "inf"
	}
	if math.IsInf(x, -1) {
		return "-inf"
	}
	return strconv.FormatFloat(x, 'f', decimals, 64)
}

// Windows renders a window vector as the thesis prints it: "5 5" or
// "1 1 1 4".
func Windows(v numeric.IntVector) string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = strconv.Itoa(x)
	}
	return strings.Join(parts, " ")
}

// Series is one named data series of an ASCII chart.
type Series struct {
	Name   string
	X, Y   []float64
	Marker byte
}

// Chart renders the series on a width x height character grid with a
// shared linear scale, plus a legend and axis extents — enough to show
// the rise-and-fall shape of Fig. 4.9 in terminal output.
func Chart(w io.Writer, title string, width, height int, series ...Series) error {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	any := false
	for _, s := range series {
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) || math.IsInf(s.Y[i], 0) {
				continue
			}
			any = true
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, s.Y[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	if !any {
		return fmt.Errorf("report: chart %q has no plottable points", title)
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for _, s := range series {
		marker := s.Marker
		if marker == 0 {
			marker = '*'
		}
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) || math.IsInf(s.Y[i], 0) {
				continue
			}
			col := int((s.X[i] - minX) / (maxX - minX) * float64(width-1))
			row := height - 1 - int((s.Y[i]-minY)/(maxY-minY)*float64(height-1))
			grid[row][col] = marker
		}
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	fmt.Fprintf(&b, "y: %s .. %s\n", Float(minY, 1), Float(maxY, 1))
	for _, row := range grid {
		b.WriteString("|")
		b.Write(row)
		b.WriteString("|\n")
	}
	fmt.Fprintf(&b, "x: %s .. %s\n", Float(minX, 1), Float(maxX, 1))
	for _, s := range series {
		marker := s.Marker
		if marker == 0 {
			marker = '*'
		}
		fmt.Fprintf(&b, "  %c %s\n", marker, s.Name)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// CSV writes the series as a wide CSV: x, then one column per series
// (rows are the union of x values; series are sampled by exact x match).
func CSV(w io.Writer, series ...Series) error {
	seen := map[float64]bool{}
	var xs []float64
	for _, s := range series {
		for _, x := range s.X {
			if !seen[x] {
				seen[x] = true
				xs = append(xs, x)
			}
		}
	}
	sortFloats(xs)
	var b strings.Builder
	b.WriteString("x")
	for _, s := range series {
		b.WriteString(",")
		b.WriteString(s.Name)
	}
	b.WriteByte('\n')
	for _, x := range xs {
		b.WriteString(strconv.FormatFloat(x, 'g', -1, 64))
		for _, s := range series {
			b.WriteString(",")
			found := false
			for i := range s.X {
				if s.X[i] == x {
					b.WriteString(strconv.FormatFloat(s.Y[i], 'g', -1, 64))
					found = true
					break
				}
			}
			if !found {
				// Empty cell for a series without this x.
				_ = found
			}
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func sortFloats(xs []float64) {
	// Insertion sort: the series here have tens of points.
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
