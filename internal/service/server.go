package service

import (
	"context"
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/netmodel"
	"repro/internal/numeric"
	"repro/internal/shard/transport"
)

// Config tunes the daemon. The zero value of any field takes the
// documented default; Spool is required.
type Config struct {
	// Spool is the journal directory: one fsynced record and (while
	// running) one search checkpoint per job. Restarting a daemon on the
	// same spool resumes whatever a crash interrupted.
	Spool string
	// MaxJobs is the worker-pool size: at most this many jobs dimension
	// concurrently (default 2).
	MaxJobs int
	// QueueDepth bounds the admitted-but-not-running backlog; a full
	// queue rejects submissions with 429 (default 16).
	QueueDepth int
	// MemoryBudget caps the shared convolution-oracle cache in bytes.
	// Admission of exact-engine jobs first tries LRU eviction of idle
	// oracles, then rejects with 429 + Retry-After when live jobs pin too
	// much of the budget. 0 means unbounded.
	MemoryBudget int64
	// JobTimeout bounds each attempt of a job unless its spec says
	// otherwise; on expiry the job returns best-so-far windows marked
	// partial. 0 means no deadline.
	JobTimeout time.Duration
	// EvalTimeout is the default per-candidate watchdog allowance
	// (core.Options.EvalTimeout). 0 leaves the watchdog disarmed.
	EvalTimeout time.Duration
	// MaxRetries caps automatic retries of transient failures per job
	// unless the spec overrides it (default 2).
	MaxRetries int
	// MaxSearchWorkers clamps the per-job search parallelism a spec may
	// request (default 4).
	MaxSearchWorkers int
	// CheckpointEvery / CheckpointFullEvery set the durable checkpoint
	// cadence (defaults 1 — every commit — and 8).
	CheckpointEvery     int
	CheckpointFullEvery int
	// ShardWorkerArgv overrides the worker command of kind:"shard" jobs;
	// empty means this executable with -shard-worker (which windimd
	// dispatches before flag parsing).
	ShardWorkerArgv []string
	// ShardTransport overrides the worker transport of kind:"shard" jobs;
	// nil means local worker processes. Tests inject the fake transport
	// here to run shard jobs in-process.
	ShardTransport transport.Transport
	// Logf receives operational log lines (default log.Printf).
	Logf func(format string, args ...any)
}

func (c *Config) fillDefaults() {
	if c.MaxJobs <= 0 {
		c.MaxJobs = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	switch {
	case c.MaxRetries < 0:
		// Negative disables retries; per-job max_retries can still ask
		// for them.
		c.MaxRetries = 0
	case c.MaxRetries == 0:
		c.MaxRetries = 2
	}
	if c.MaxSearchWorkers <= 0 {
		c.MaxSearchWorkers = 4
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 1
	}
	if c.CheckpointFullEvery <= 0 {
		c.CheckpointFullEvery = 8
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
}

// Event is one entry of a job's live progress feed, streamed as NDJSON
// from GET /jobs/{id}/events. Commit events carry the accepted base
// point and its power, straight from the search's OnCommit hook.
type Event struct {
	Seq     int       `json:"seq"`
	Type    string    `json:"type"` // queued|started|resumed|commit|retry|done|failed|canceled
	At      time.Time `json:"at"`
	Attempt int       `json:"attempt,omitempty"`
	Windows []int     `json:"windows,omitempty"`
	Power   float64   `json:"power,omitempty"`
	Error   string    `json:"error,omitempty"`
}

// job is the in-memory side of a journal record: the parsed spec, the
// live event feed, and the cancel handle of the running attempt.
type job struct {
	id         string
	parsed     *Job
	structHash string

	mu           sync.Mutex
	rec          *Record
	cancel       context.CancelCauseFunc // non-nil while an attempt runs
	userCanceled bool
	pinned       int64 // oracle-budget bytes reserved until terminal
	// ckptDiscarded counts checkpoints of this job that resume found
	// unusable (stale or torn beyond repair) and quarantined.
	ckptDiscarded int64
	events        []Event
	notify        chan struct{} // closed and replaced on every event
	closed        bool
	done          chan struct{}
}

func newJob(id string, parsed *Job, rec *Record) *job {
	return &job{id: id, parsed: parsed, rec: rec,
		notify: make(chan struct{}), done: make(chan struct{})}
}

// emit appends an event and wakes every streaming reader.
func (j *job) emit(ev Event) {
	j.mu.Lock()
	ev.Seq = len(j.events) + 1
	ev.At = time.Now().UTC()
	j.events = append(j.events, ev)
	close(j.notify)
	j.notify = make(chan struct{})
	j.mu.Unlock()
}

// close marks the event feed complete (the job is terminal).
func (j *job) close() {
	j.mu.Lock()
	if !j.closed {
		j.closed = true
		close(j.done)
	}
	j.mu.Unlock()
}

// eventsSince returns the events after seq, a channel that closes when
// more arrive, and whether the feed is complete.
func (j *job) eventsSince(seq int) ([]Event, <-chan struct{}, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if seq > len(j.events) {
		seq = len(j.events)
	}
	evs := append([]Event(nil), j.events[seq:]...)
	return evs, j.notify, j.closed
}

// Server is the windimd daemon: a bounded worker pool over a crash-safe
// job journal, fronted by a JSON HTTP API.
type Server struct {
	cfg     Config
	journal *Journal
	oracles *core.OracleCache
	mux     *http.ServeMux
	started time.Time

	ctx    context.Context
	cancel context.CancelCauseFunc
	wg     sync.WaitGroup
	queue  chan *job

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string // job ids in admission order
	warm     map[string]numeric.IntVector
	draining bool
	badRecs  int

	queuedGauge    atomic.Int64
	oraclePinned   atomic.Int64 // summed estimates of live exact-engine jobs
	running        atomic.Int64
	admitted       atomic.Int64
	rejectedQueue  atomic.Int64
	rejectedMemory atomic.Int64
	retriesTotal   atomic.Int64
	panicsTotal    atomic.Int64
	resumedTotal   atomic.Int64
	watchdogTotal  atomic.Int64
	fallbackTotal  atomic.Int64
	degradedTotal  atomic.Int64
	// ckptDiscardedTotal counts checkpoints quarantined as unusable at
	// resume across all jobs (the per-job split is in Stats.JobsDetail).
	ckptDiscardedTotal atomic.Int64
}

// New opens the spool, re-admits every job a previous daemon left queued
// or running (rebuilding the warm-start index from finished records), and
// starts the worker pool.
func New(cfg Config) (*Server, error) {
	cfg.fillDefaults()
	journal, err := OpenJournal(cfg.Spool)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancelCause(context.Background())
	s := &Server{
		cfg:     cfg,
		journal: journal,
		oracles: core.NewOracleCache(cfg.MemoryBudget),
		started: time.Now(),
		ctx:     ctx,
		cancel:  cancel,
		jobs:    make(map[string]*job),
		warm:    make(map[string]numeric.IntVector),
	}
	pending, err := s.recoverSpool()
	if err != nil {
		cancel(nil)
		return nil, err
	}
	// The queue must hold the recovered backlog in addition to the
	// admission window: restarts never drop jobs for queue depth.
	s.queue = make(chan *job, cfg.QueueDepth+len(pending))
	for _, j := range pending {
		s.queuedGauge.Add(1)
		s.queue <- j
	}
	s.mux = s.routes()
	s.wg.Add(cfg.MaxJobs)
	for range cfg.MaxJobs {
		go s.worker()
	}
	return s, nil
}

// recoverSpool scans the journal and rebuilds in-memory state: terminal
// records are kept for listing (done ones feed the warm-start index),
// queued and running records become the pending backlog — running ones
// are exactly the jobs a crash interrupted, and their checkpoints make
// the re-run converge bit-identically to the uninterrupted run.
func (s *Server) recoverSpool() ([]*job, error) {
	records, bad, err := s.journal.Scan()
	if err != nil {
		return nil, err
	}
	s.badRecs = len(bad)
	for _, name := range bad {
		s.logf("spool: skipping unreadable record %s", name)
	}
	var pending []*job
	for _, rec := range records {
		parsed, perr := ParseJob(rec.Spec)
		if rec.State.Terminal() {
			j := newJob(rec.ID, parsed, rec)
			j.close()
			s.jobs[rec.ID] = j
			s.order = append(s.order, rec.ID)
			if perr == nil && rec.State == StateDone && rec.Result != nil &&
				!rec.Result.Partial && len(rec.Result.Windows) > 0 {
				if h := structuralHash(parsed.Net); h != "" {
					j.structHash = h
					s.warm[h] = append(numeric.IntVector(nil), rec.Result.Windows...)
				}
			}
			continue
		}
		if perr != nil {
			// The record was admitted by a daemon that understood it; if
			// this one cannot, failing the job beats wedging the spool.
			rec.State = StateFailed
			rec.Error = fmt.Sprintf("respooling: %v", perr)
			if werr := s.journal.Write(rec); werr != nil {
				s.logf("spool: %s: %v", rec.ID, werr)
			}
			j := newJob(rec.ID, nil, rec)
			j.close()
			s.jobs[rec.ID] = j
			s.order = append(s.order, rec.ID)
			continue
		}
		wasRunning := rec.State == StateRunning
		rec.State = StateQueued
		if wasRunning {
			if werr := s.journal.Write(rec); werr != nil {
				s.logf("spool: %s: %v", rec.ID, werr)
			}
		}
		j := newJob(rec.ID, parsed, rec)
		j.structHash = structuralHash(parsed.Net)
		// Shard jobs' exact-engine lattices live in their worker processes,
		// slab-bounded, never in the daemon's oracle cache — no pin.
		if parsed.Spec.ExactEngine && !parsed.Sharded() && s.oracles.Budget() > 0 {
			maxw := parsed.Spec.MaxWindow
			if maxw <= 0 {
				maxw = 64
			}
			// Re-pin the budget reservation the previous daemon held;
			// recovered jobs are never dropped for memory, a restart
			// merely delays new admissions until they finish.
			if est, eerr := core.EstimateOracleBytes(parsed.Net, maxw); eerr == nil {
				j.pinned = est
				s.oraclePinned.Add(est)
			}
		}
		s.jobs[rec.ID] = j
		s.order = append(s.order, rec.ID)
		pending = append(pending, j)
		if wasRunning {
			s.logf("spool: resuming interrupted job %s", rec.ID)
		} else {
			s.logf("spool: re-admitting queued job %s", rec.ID)
		}
	}
	return pending, nil
}

// structuralHash fingerprints a network's structure with the arrival
// rates canonicalised away: the warm-start index must match a job whose
// traffic drifted but whose topology, routes and capacities did not.
func structuralHash(n *netmodel.Network) string {
	if n == nil {
		return ""
	}
	c := netmodel.Network{
		Name:     n.Name,
		Nodes:    n.Nodes,
		Channels: n.Channels,
		Classes:  append([]netmodel.Class(nil), n.Classes...),
	}
	for r := range c.Classes {
		c.Classes[r].Rate = 1
	}
	spec, err := c.MarshalSpec()
	if err != nil {
		return ""
	}
	sum := sha256.Sum256(spec)
	return hex.EncodeToString(sum[:])
}

func (s *Server) logf(format string, args ...any) { s.cfg.Logf(format, args...) }

// releasePin returns a terminal job's oracle-budget reservation.
func (s *Server) releasePin(j *job) {
	j.mu.Lock()
	pinned := j.pinned
	j.pinned = 0
	j.mu.Unlock()
	if pinned > 0 {
		s.oraclePinned.Add(-pinned)
	}
}

// journalWrite persists a job's current record.
func (s *Server) journalWrite(j *job) error {
	j.mu.Lock()
	rec := *j.rec
	j.mu.Unlock()
	return s.journal.Write(&rec)
}

// lookup finds a job by id.
func (s *Server) lookup(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// Drain stops admissions, cancels every running job (their best-so-far
// state is already checkpointed), waits for the pool to idle (bounded by
// ctx), and rewrites interrupted jobs back to queued so the next daemon
// picks them up. Safe to call once; returns ctx.Err() if the pool did
// not settle in time.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.cancel(errDrain)
	idle := make(chan struct{})
	go func() { s.wg.Wait(); close(idle) }()
	select {
	case <-idle:
	case <-ctx.Done():
		return ctx.Err()
	}
	s.mu.Lock()
	jobs := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	for _, j := range jobs {
		j.mu.Lock()
		interrupted := j.rec.State == StateRunning
		if interrupted {
			j.rec.State = StateQueued
		}
		j.mu.Unlock()
		if interrupted {
			if err := s.journalWrite(j); err != nil {
				s.logf("drain: %s: %v", j.id, err)
			}
		}
	}
	return nil
}

// Kill aborts the daemon as a crash would: running jobs are cancelled
// mid-attempt and NO journal transitions are written, leaving the spool
// exactly as a SIGKILL at that instant. Tests use it to exercise the
// restart-resume path in-process.
func (s *Server) Kill() {
	s.cancel(errCrash)
	s.wg.Wait()
}

// ---- HTTP API ----

func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleGet)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /stats", s.handleStats)
	return mux
}

// ServeHTTP makes the Server an http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func randomID() string {
	var b [6]byte
	rand.Read(b[:])
	return "job-" + hex.EncodeToString(b[:])
}

// handleSubmit is the admission path: parse and validate, check the
// daemon is accepting, the id is free, the oracle memory budget can fit
// the job (evicting idle oracles first), and the queue has room — in
// that order, so every rejection names its real cause. The record is
// journalled durably before the 202 goes out: an accepted job survives
// any crash after the response.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	data, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	if len(data) > maxSpecBytes {
		writeError(w, http.StatusRequestEntityTooLarge, "job spec exceeds %d bytes", maxSpecBytes)
		return
	}
	parsed, err := ParseJob(data)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "draining: not accepting jobs")
		return
	}
	id := parsed.Spec.ID
	if id == "" {
		id = randomID()
		for s.jobs[id] != nil {
			id = randomID()
		}
	} else if s.jobs[id] != nil {
		s.mu.Unlock()
		writeError(w, http.StatusConflict, "job %q already exists", id)
		return
	}

	// Admission gate 1: the exact-engine memory budget. Every live
	// exact-engine job pins its estimated oracle lattice size against the
	// budget until it reaches a terminal state; a job that can never fit
	// is refused outright, one that cannot fit NOW — because running jobs
	// pin the rest — is pushed back with Retry-After rather than letting
	// the oracle cache blow past the budget mid-run.
	var pinBytes int64
	// Shard jobs run their exact evaluations in worker processes with
	// slab-bounded lattices; the daemon's oracle budget is not involved.
	if parsed.Spec.ExactEngine && !parsed.Sharded() && s.oracles.Budget() > 0 {
		budget := s.oracles.Budget()
		maxw := parsed.Spec.MaxWindow
		if maxw <= 0 {
			maxw = 64
		}
		est, eerr := core.EstimateOracleBytes(parsed.Net, maxw)
		if eerr != nil {
			s.mu.Unlock()
			writeError(w, http.StatusBadRequest, "estimating oracle size: %v", eerr)
			return
		}
		if est > budget {
			s.mu.Unlock()
			writeError(w, http.StatusUnprocessableEntity,
				"job needs an estimated %d oracle bytes; the budget is %d", est, budget)
			return
		}
		if pinned := s.oraclePinned.Load(); pinned+est > budget {
			s.mu.Unlock()
			s.rejectedMemory.Add(1)
			w.Header().Set("Retry-After", "5")
			writeError(w, http.StatusTooManyRequests,
				"oracle memory budget exhausted (%d of %d bytes pinned by live jobs; job needs %d)",
				pinned, budget, est)
			return
		}
		pinBytes = est
		s.oraclePinned.Add(est)
		// Make room in fact, not only in accounting: push finished jobs'
		// idle oracles out of the cache (running ones keep theirs alive
		// through their engines either way).
		s.oracles.EvictTo(budget - s.oraclePinned.Load())
	}

	// Admission gate 2: the bounded queue.
	if s.queuedGauge.Load() >= int64(s.cfg.QueueDepth) {
		s.mu.Unlock()
		s.rejectedQueue.Add(1)
		w.Header().Set("Retry-After", "5")
		writeError(w, http.StatusTooManyRequests, "job queue full (%d queued)", s.cfg.QueueDepth)
		return
	}

	rec := &Record{
		ID:      id,
		State:   StateQueued,
		Spec:    json.RawMessage(parsed.Raw),
		Created: time.Now().UTC(),
	}
	hash := structuralHash(parsed.Net)
	if start := parsed.startVector(); start != nil {
		rec.Start = start
	} else if prev, ok := s.warm[hash]; ok && !parsed.Sharded() && len(prev) == len(parsed.Net.Classes) {
		// Exhaustive shard jobs scan the whole box; a warm start would be
		// meaningless, so only pattern-search jobs take one.
		// Online re-dimensioning: the same structure was solved before,
		// so start from its optimum instead of the hop-count rule — when
		// traffic drifted modestly the new optimum is nearby.
		rec.Start = append([]int(nil), prev...)
		rec.WarmStart = true
	}
	j := newJob(id, parsed, rec)
	j.structHash = hash
	j.pinned = pinBytes
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.queuedGauge.Add(1)
	s.mu.Unlock()

	if err := s.journal.Write(rec); err != nil {
		s.mu.Lock()
		delete(s.jobs, id)
		s.order = s.order[:len(s.order)-1]
		s.queuedGauge.Add(-1)
		s.mu.Unlock()
		s.releasePin(j)
		writeError(w, http.StatusInternalServerError, "journalling job: %v", err)
		return
	}
	s.admitted.Add(1)
	j.emit(Event{Type: "queued"})
	select {
	case s.queue <- j:
	default:
		// Unreachable while the gauge invariant holds (the channel has
		// QueueDepth capacity beyond the recovered backlog).
		s.logf("job %s: queue overflow past admission gate", id)
	}
	w.Header().Set("Location", "/jobs/"+id)
	writeJSON(w, http.StatusAccepted, map[string]any{
		"id": id, "state": StateQueued, "warm_start": rec.WarmStart,
	})
}

// jobSummary is one row of GET /jobs.
type jobSummary struct {
	ID       string    `json:"id"`
	State    State     `json:"state"`
	Created  time.Time `json:"created"`
	Attempts int       `json:"attempts,omitempty"`
	Retries  int       `json:"retries,omitempty"`
	Error    string    `json:"error,omitempty"`
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	jobs := make([]*job, 0, len(s.order))
	for _, id := range s.order {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	out := make([]jobSummary, 0, len(jobs))
	for _, j := range jobs {
		j.mu.Lock()
		out = append(out, jobSummary{
			ID: j.id, State: j.rec.State, Created: j.rec.Created,
			Attempts: j.rec.Attempts, Retries: len(j.rec.Retries), Error: j.rec.Error,
		})
		j.mu.Unlock()
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	j.mu.Lock()
	rec := *j.rec
	j.mu.Unlock()
	writeJSON(w, http.StatusOK, &rec)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	j.mu.Lock()
	switch {
	case j.rec.State.Terminal():
		state := j.rec.State
		j.mu.Unlock()
		writeJSON(w, http.StatusOK, map[string]any{"id": j.id, "state": state})
	case j.cancel != nil:
		cancel := j.cancel
		j.userCanceled = true
		j.mu.Unlock()
		cancel(errCanceled)
		writeJSON(w, http.StatusAccepted, map[string]any{"id": j.id, "state": "canceling"})
	case j.rec.State == StateQueued:
		j.userCanceled = true
		j.rec.State = StateCanceled
		j.rec.Error = errCanceled.Error()
		j.mu.Unlock()
		if err := s.journalWrite(j); err != nil {
			s.logf("job %s: journal: %v", j.id, err)
		}
		s.journal.RetireCheckpoint(j.id)
		s.releasePin(j)
		j.emit(Event{Type: "canceled", Error: errCanceled.Error()})
		j.close()
		writeJSON(w, http.StatusOK, map[string]any{"id": j.id, "state": StateCanceled})
	default:
		// Running, but the attempt has not installed its cancel handle
		// yet; the flag is honoured the moment it does.
		j.userCanceled = true
		j.mu.Unlock()
		writeJSON(w, http.StatusAccepted, map[string]any{"id": j.id, "state": "canceling"})
	}
}

// handleEvents streams a job's progress as NDJSON: everything so far,
// then live events as the search commits base points, until the job ends
// or the client goes away.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	seq := 0
	for {
		evs, notify, closed := j.eventsSince(seq)
		for _, ev := range evs {
			if err := enc.Encode(ev); err != nil {
				return
			}
			seq = ev.Seq
		}
		if flusher != nil {
			flusher.Flush()
		}
		if closed {
			return
		}
		select {
		case <-notify:
		case <-r.Context().Done():
			return
		case <-s.ctx.Done():
			return
		}
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// Stats is the GET /stats payload: queue and pool occupancy, admission
// and resilience counters, and the oracle cache's budget position.
type Stats struct {
	UptimeSeconds float64               `json:"uptime_seconds"`
	Draining      bool                  `json:"draining"`
	Jobs          map[State]int         `json:"jobs"`
	Queued        int64                 `json:"queued"`
	QueueDepth    int                   `json:"queue_depth"`
	Running       int64                 `json:"running"`
	WorkerSlots   int                   `json:"worker_slots"`
	Admitted      int64                 `json:"admitted"`
	RejectedQueue int64                 `json:"rejected_queue"`
	RejectedMem   int64                 `json:"rejected_memory"`
	Retries       int64                 `json:"retries"`
	Panics        int64                 `json:"panics"`
	Resumed       int64                 `json:"resumed"`
	WatchdogTrips int64                 `json:"watchdog_trips"`
	Fallbacks     int64                 `json:"fallbacks_rescued"`
	Degraded      int64                 `json:"degraded_scenarios"`
	OracleCache   core.OracleCacheStats `json:"oracle_cache"`
	OracleBudget  int64                 `json:"oracle_budget"`
	OraclePinned  int64                 `json:"oracle_pinned"`
	BadRecords    int                   `json:"bad_records,omitempty"`
	// CheckpointsDiscarded counts checkpoints quarantined as unusable at
	// resume across all jobs since the daemon started.
	CheckpointsDiscarded int64 `json:"checkpoints_discarded"`
	// JobsDetail breaks the resilience counters down per job, in admission
	// order: retries taken, watchdog trips and fallback rescues of the
	// finished result, and checkpoints quarantined at resume.
	JobsDetail []JobStat `json:"jobs_detail"`
}

// JobStat is one job's row in Stats.JobsDetail.
type JobStat struct {
	ID       string `json:"id"`
	State    State  `json:"state"`
	Attempts int    `json:"attempts"`
	Retries  int    `json:"retries"`
	// WatchdogTrips and FallbacksRescued come from the job's result and
	// are populated once it finishes.
	WatchdogTrips    int64 `json:"watchdog_trips"`
	FallbacksRescued int64 `json:"fallbacks_rescued"`
	// CheckpointsDiscarded counts this job's checkpoints that resume found
	// unusable and quarantined.
	CheckpointsDiscarded int64 `json:"checkpoints_discarded"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := Stats{
		UptimeSeconds:        time.Since(s.started).Seconds(),
		Jobs:                 make(map[State]int),
		Queued:               s.queuedGauge.Load(),
		QueueDepth:           s.cfg.QueueDepth,
		Running:              s.running.Load(),
		WorkerSlots:          s.cfg.MaxJobs,
		Admitted:             s.admitted.Load(),
		RejectedQueue:        s.rejectedQueue.Load(),
		RejectedMem:          s.rejectedMemory.Load(),
		Retries:              s.retriesTotal.Load(),
		Panics:               s.panicsTotal.Load(),
		Resumed:              s.resumedTotal.Load(),
		WatchdogTrips:        s.watchdogTotal.Load(),
		Fallbacks:            s.fallbackTotal.Load(),
		Degraded:             s.degradedTotal.Load(),
		OracleCache:          s.oracles.Stats(),
		OracleBudget:         s.oracles.Budget(),
		OraclePinned:         s.oraclePinned.Load(),
		CheckpointsDiscarded: s.ckptDiscardedTotal.Load(),
	}
	s.mu.Lock()
	st.Draining = s.draining
	st.BadRecords = s.badRecs
	jobs := make([]*job, 0, len(s.order))
	for _, id := range s.order {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	st.JobsDetail = make([]JobStat, 0, len(jobs))
	for _, j := range jobs {
		j.mu.Lock()
		st.Jobs[j.rec.State]++
		row := JobStat{
			ID:                   j.id,
			State:                j.rec.State,
			Attempts:             j.rec.Attempts,
			Retries:              len(j.rec.Retries),
			CheckpointsDiscarded: j.ckptDiscarded,
		}
		if j.rec.Result != nil {
			row.WatchdogTrips = j.rec.Result.WatchdogTrips
			row.FallbacksRescued = j.rec.Result.FallbacksRescued
		}
		j.mu.Unlock()
		st.JobsDetail = append(st.JobsDetail, row)
	}
	writeJSON(w, http.StatusOK, &st)
}
