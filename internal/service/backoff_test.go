package service

import (
	"testing"
	"time"
)

// backoffBase is the deterministic floor BackoffDelay jitters on top of:
// 100ms doubling per attempt, capped at 5s.
func backoffBase(attempt int) time.Duration {
	if attempt < 0 {
		attempt = 0
	}
	shift := attempt
	if shift > 6 {
		shift = 6
	}
	base := 100 * time.Millisecond << shift
	if base > 5*time.Second {
		base = 5 * time.Second
	}
	return base
}

// TestBackoffDelayEnvelope pins the contract every retry loop in the
// daemon and the shard coordinator relies on: for attempt n the delay is
// base(n) plus up to 50% jitter — never below the deterministic base,
// never above 1.5x of it.
func TestBackoffDelayEnvelope(t *testing.T) {
	for attempt := 0; attempt <= 12; attempt++ {
		base := backoffBase(attempt)
		for i := 0; i < 64; i++ {
			d := BackoffDelay(attempt)
			if d < base || d > base+base/2 {
				t.Fatalf("attempt %d: delay %v outside [%v, %v]", attempt, d, base, base+base/2)
			}
		}
	}
}

// TestBackoffDelayAttemptZero: the first retry waits on the order of
// 100ms — long enough to let a transient clear, short enough not to
// stall a healthy queue.
func TestBackoffDelayAttemptZero(t *testing.T) {
	for i := 0; i < 64; i++ {
		d := BackoffDelay(0)
		if d < 100*time.Millisecond || d > 150*time.Millisecond {
			t.Fatalf("attempt 0: delay %v outside [100ms, 150ms]", d)
		}
	}
}

// TestBackoffDelayCap: the base stops growing at 5s, so even absurd
// attempt counts (a job retried for hours) never wait beyond 7.5s —
// and never overflow into a negative shift.
func TestBackoffDelayCap(t *testing.T) {
	for _, attempt := range []int{6, 7, 20, 63, 1 << 20} {
		for i := 0; i < 16; i++ {
			d := BackoffDelay(attempt)
			if d < 5*time.Second || d > 7500*time.Millisecond {
				t.Fatalf("attempt %d: delay %v outside [5s, 7.5s]", attempt, d)
			}
		}
	}
}

// TestBackoffDelayMonotonicFloor: the lower envelope never shrinks as
// attempts accumulate — later retries always wait at least as long as
// earlier ones could.
func TestBackoffDelayMonotonicFloor(t *testing.T) {
	prev := time.Duration(0)
	for attempt := 0; attempt <= 10; attempt++ {
		base := backoffBase(attempt)
		if base < prev {
			t.Fatalf("base(%d) = %v below base(%d) = %v", attempt, base, attempt-1, prev)
		}
		prev = base
	}
}

// TestBackoffDelayNegativeAttempt: callers sometimes compute
// "failures - 1" style arguments; a negative attempt must behave like
// attempt 0, not panic on a negative shift.
func TestBackoffDelayNegativeAttempt(t *testing.T) {
	for _, attempt := range []int{-1, -5, -1 << 30} {
		d := BackoffDelay(attempt)
		if d < 100*time.Millisecond || d > 150*time.Millisecond {
			t.Fatalf("attempt %d: delay %v outside attempt-0 envelope", attempt, d)
		}
	}
}

// TestBackoffDelayJitters: the jitter must actually spread retries —
// identical delays across a large sample would synchronise every
// worker's relaunch into the thundering herd the jitter exists to break.
func TestBackoffDelayJitters(t *testing.T) {
	seen := map[time.Duration]bool{}
	for i := 0; i < 256; i++ {
		seen[BackoffDelay(3)] = true
	}
	if len(seen) < 2 {
		t.Fatalf("256 samples produced %d distinct delays; jitter missing", len(seen))
	}
}
