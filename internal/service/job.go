// Package service implements windimd: a crash-safe, multi-tenant
// dimensioning daemon around the WINDIM machinery in internal/core.
//
// A job is a network (inline spec, built-in example, or synthetic
// topology), an optional scenario set, and search options, submitted as
// JSON over HTTP. Jobs run on a bounded worker pool with admission
// control (queue depth, a global convolution-oracle memory budget with
// LRU eviction), per-job fault containment (context deadlines, the
// per-candidate watchdog, panic recovery, retries with exponential
// backoff), and a crash-safe journal: every job persists as an fsynced
// record in a spool directory next to its pattern-search checkpoint, so
// a killed daemon resumes interrupted jobs on restart and converges to
// the bit-identical result an uninterrupted run would have produced.
package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/netmodel"
	"repro/internal/numeric"
)

// maxSpecBytes bounds a job submission; a dimensioning request is a few
// KB of topology and scenarios, never megabytes.
const maxSpecBytes = 1 << 20

// JobSpec is the JSON wire form of a dimensioning job. Exactly one of
// Network (an inline netmodel spec), Example (a built-in name), or Topo
// (a generator spec, see cliutil.ParseTopo) names the network; everything
// else is optional and zero values reproduce windim's defaults.
type JobSpec struct {
	// ID names the job; [A-Za-z0-9._-], at most 64 runes. Empty means the
	// server assigns a random one. IDs are also spool file names.
	ID string `json:"id,omitempty"`
	// Kind selects the search machinery: "dimension" (default) runs the
	// pattern search in-process; "shard" runs the sharded exhaustive
	// search — the internal/shard coordinator supervising worker
	// processes over a per-job spool kept next to the journal record.
	Kind string `json:"kind,omitempty"`
	// Shard tunes kind:"shard" jobs; nil takes every coordinator default.
	Shard *ShardSpec `json:"shard,omitempty"`
	// Network is an inline JSON network spec (netmodel.ParseSpec).
	Network json.RawMessage `json:"network,omitempty"`
	// Example is a built-in example name: canada2, canada4, tandemN.
	Example string `json:"example,omitempty"`
	// Topo generates a synthetic topology: clos:L,S,C | scalefree:N,M,C |
	// mesh:N,E,C, seeded by TopoSeed (same spec and seed, same network).
	Topo     string `json:"topo,omitempty"`
	TopoSeed uint64 `json:"topo_seed,omitempty"`
	// Rates overrides the per-class arrival rates — the knob an online
	// re-dimensioning loop turns as measured traffic drifts. Not allowed
	// with Topo (generated rates are utilisation-scaled).
	Rates []float64 `json:"rates,omitempty"`
	// Scenarios, when present, is a core.ScenarioSetSpec; the job then
	// dimensions robustly against it under the Robust criterion.
	Scenarios json.RawMessage `json:"scenarios,omitempty"`
	// Robust is the robust criterion with Scenarios: "minmax" (default)
	// or "weighted".
	Robust string `json:"robust,omitempty"`
	// Evaluator: "sigma" (default), "schweitzer", "linearizer", "exact".
	Evaluator string `json:"evaluator,omitempty"`
	// Objective: "power" (default), "min-class", "sum-class".
	Objective string `json:"objective,omitempty"`
	// MaxWindow bounds every window from above (0 = the core default 64).
	MaxWindow int `json:"max_window,omitempty"`
	// Start overrides the initial window vector. When absent the server
	// warm-starts from the last optimum it solved for the same network
	// structure (if any), falling back to the hop-count rule.
	Start []int `json:"start,omitempty"`
	// Workers parallelises candidate evaluation inside this job's search
	// (clamped by the server; the trajectory is worker-count-independent).
	Workers int `json:"workers,omitempty"`
	// ExactEngine routes exact evaluations through the server's shared,
	// memory-budgeted convolution-oracle cache.
	ExactEngine bool `json:"exact_engine,omitempty"`
	// EvalTimeoutMS arms the per-candidate watchdog (0 = server default).
	EvalTimeoutMS int64 `json:"eval_timeout_ms,omitempty"`
	// TimeoutMS bounds each attempt of the job (0 = server default). On
	// expiry the job completes with its best-so-far windows, marked
	// partial.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// MaxRetries caps automatic retries after transient failures; nil
	// means the server default, 0 disables retries.
	MaxRetries *int `json:"max_retries,omitempty"`
	// DegradeAfter/MinScenarios tune graceful scenario degradation for
	// robust jobs (see core.Options).
	DegradeAfter int `json:"degrade_after,omitempty"`
	MinScenarios int `json:"min_scenarios,omitempty"`
	// CheckpointEvery is the commit cadence of durable checkpoint writes
	// (0 = every commit).
	CheckpointEvery int `json:"checkpoint_every,omitempty"`
}

// ShardSpec is the wire form of a kind:"shard" job's coordinator knobs
// (see internal/shard.Options). Zero values take coordinator defaults.
type ShardSpec struct {
	// Procs bounds concurrently running worker processes (0 = 2).
	Procs int `json:"procs,omitempty"`
	// Slabs is the partition arity (0 = 2×procs, clamped to the axis).
	Slabs int `json:"slabs,omitempty"`
	// Axis is the class axis to partition; nil (or -1) picks the widest.
	Axis *int `json:"axis,omitempty"`
	// SlabRetries bounds relaunches per slab beyond the first attempt;
	// nil means the coordinator default (2), 0 disables slab retries.
	SlabRetries *int `json:"slab_retries,omitempty"`
	// AllowLost tolerates up to this many lost slabs, degrading
	// gracefully with recorded reasons.
	AllowLost int `json:"allow_lost,omitempty"`
	// MaxHostsLost tolerates up to this many permanently lost worker
	// hosts, redistributing their slabs.
	MaxHostsLost int `json:"max_hosts_lost,omitempty"`
	// LeaseTTLMS is the slab lease renewal deadline (0 = default 10s).
	LeaseTTLMS int64 `json:"lease_ttl_ms,omitempty"`
	// SlabDeadlineMS is the per-stride progress deadline before a worker
	// is presumed hung and its slab reassigned (0 = default 2m).
	SlabDeadlineMS int64 `json:"slab_deadline_ms,omitempty"`
}

// Job is a parsed, validated job: the resolved network and scenario set
// plus the core options fragments the runner assembles per attempt.
type Job struct {
	Spec JobSpec
	// Raw is the normalised spec as persisted in the journal, so a
	// restarted daemon re-parses exactly what was admitted.
	Raw []byte
	Net *netmodel.Network
	// Scenarios is non-empty for robust jobs; Kind is its criterion.
	Scenarios []core.Scenario
	Kind      core.RobustKind
	Evaluator core.Evaluator
	Objective core.ObjectiveKind
}

// Robust reports whether the job dimensions against a scenario set.
func (j *Job) Robust() bool { return len(j.Scenarios) > 0 }

// Sharded reports whether the job runs the sharded exhaustive search.
func (j *Job) Sharded() bool { return j.Spec.Kind == "shard" }

// validID reports whether id is safe as a job name and spool file stem.
func validID(id string) bool {
	if id == "" || len(id) > 64 {
		return false
	}
	for _, c := range id {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	// Dot-leading names hide in directory listings and "." / ".." are
	// path navigation; refuse the whole family.
	return id[0] != '.'
}

// ParseJob decodes and fully validates a job submission: unknown fields
// are rejected (a misspelled option silently ignored is a misdimensioned
// network), the network is resolved and validated, scenario and option
// names are checked, and vector lengths are verified against the network.
// Malformed input of any shape returns an error, never a panic.
func ParseJob(data []byte) (*Job, error) {
	if len(data) > maxSpecBytes {
		return nil, fmt.Errorf("service: job spec is %d bytes; the limit is %d", len(data), maxSpecBytes)
	}
	var spec JobSpec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("service: parsing job spec: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("service: trailing data after job spec")
	}
	if spec.ID != "" && !validID(spec.ID) {
		return nil, fmt.Errorf("service: job id %q: need 1-64 characters of [A-Za-z0-9._-], not starting with a dot", spec.ID)
	}

	sources := 0
	for _, set := range []bool{len(spec.Network) > 0, spec.Example != "", spec.Topo != ""} {
		if set {
			sources++
		}
	}
	if sources != 1 {
		return nil, fmt.Errorf("service: exactly one of network, example, topo must be given")
	}
	var n *netmodel.Network
	var err error
	switch {
	case len(spec.Network) > 0:
		n, err = netmodel.ParseSpec(spec.Network)
	case spec.Example != "":
		n, err = cliutil.BuiltinExample(spec.Example)
	default:
		n, err = cliutil.ParseTopo(spec.Topo, spec.TopoSeed)
	}
	if err != nil {
		return nil, fmt.Errorf("service: resolving job network: %w", err)
	}
	if spec.Rates != nil {
		if spec.Topo != "" {
			return nil, fmt.Errorf("service: rates do not apply to generated topologies (their rates are utilisation-scaled)")
		}
		if len(spec.Rates) != len(n.Classes) {
			return nil, fmt.Errorf("service: %d rates for %d classes", len(spec.Rates), len(n.Classes))
		}
		for r := range n.Classes {
			n.Classes[r].Rate = spec.Rates[r]
		}
	}
	if err := n.Validate(); err != nil {
		return nil, fmt.Errorf("service: job network invalid: %w", err)
	}

	job := &Job{Spec: spec, Net: n}
	if len(spec.Scenarios) > 0 {
		job.Scenarios, err = core.ParseScenarios(spec.Scenarios, n)
		if err != nil {
			return nil, fmt.Errorf("service: job scenarios: %w", err)
		}
	}
	switch spec.Robust {
	case "", "minmax":
		job.Kind = core.RobustMinimax
	case "weighted":
		job.Kind = core.RobustWeighted
	default:
		return nil, fmt.Errorf("service: unknown robust criterion %q (want minmax or weighted)", spec.Robust)
	}
	if spec.Robust != "" && len(spec.Scenarios) == 0 {
		return nil, fmt.Errorf("service: robust criterion given without scenarios")
	}
	switch spec.Evaluator {
	case "", "sigma":
		job.Evaluator = core.EvalSigmaMVA
	case "schweitzer":
		job.Evaluator = core.EvalSchweitzerMVA
	case "linearizer":
		job.Evaluator = core.EvalLinearizerMVA
	case "exact":
		job.Evaluator = core.EvalExactMVA
	default:
		return nil, fmt.Errorf("service: unknown evaluator %q", spec.Evaluator)
	}
	switch spec.Objective {
	case "", "power":
		job.Objective = core.ObjNetworkPower
	case "min-class":
		job.Objective = core.ObjMinClassPower
	case "sum-class":
		job.Objective = core.ObjSumClassPower
	default:
		return nil, fmt.Errorf("service: unknown objective %q", spec.Objective)
	}
	switch spec.Kind {
	case "", "dimension":
		if spec.Shard != nil {
			return nil, fmt.Errorf("service: shard settings require kind \"shard\"")
		}
	case "shard":
		// The sharded coordinator runs the exhaustive search over the full
		// window box: scenario sets, start vectors, and the per-candidate
		// watchdog belong to the pattern search and would be silently
		// meaningless here — reject rather than ignore.
		if len(spec.Scenarios) > 0 {
			return nil, fmt.Errorf("service: kind \"shard\" does not take scenarios (the exhaustive search is not robust)")
		}
		if spec.Start != nil {
			return nil, fmt.Errorf("service: kind \"shard\" does not take a start vector (the exhaustive search scans the whole box)")
		}
		if spec.EvalTimeoutMS != 0 {
			return nil, fmt.Errorf("service: kind \"shard\" does not take eval_timeout_ms (the coordinator's slab deadline handles stuck workers)")
		}
		if sh := spec.Shard; sh != nil {
			if sh.Procs < 0 || sh.Slabs < 0 || sh.AllowLost < 0 || sh.MaxHostsLost < 0 ||
				sh.LeaseTTLMS < 0 || sh.SlabDeadlineMS < 0 {
				return nil, fmt.Errorf("service: negative shard settings")
			}
			if sh.Axis != nil && (*sh.Axis < -1 || *sh.Axis >= len(n.Classes)) {
				return nil, fmt.Errorf("service: shard axis %d out of range for %d classes", *sh.Axis, len(n.Classes))
			}
			if sh.SlabRetries != nil && *sh.SlabRetries < 0 {
				return nil, fmt.Errorf("service: negative slab_retries %d", *sh.SlabRetries)
			}
		}
	default:
		return nil, fmt.Errorf("service: unknown job kind %q (want dimension or shard)", spec.Kind)
	}
	if spec.MaxWindow < 0 {
		return nil, fmt.Errorf("service: negative max_window %d", spec.MaxWindow)
	}
	if spec.Start != nil {
		if len(spec.Start) != len(n.Classes) {
			return nil, fmt.Errorf("service: start vector has %d entries for %d classes", len(spec.Start), len(n.Classes))
		}
		for i, w := range spec.Start {
			if w < 1 {
				return nil, fmt.Errorf("service: start window %d at index %d; windows are at least 1", w, i)
			}
		}
	}
	if spec.Workers < 0 {
		return nil, fmt.Errorf("service: negative workers %d", spec.Workers)
	}
	for name, ms := range map[string]int64{"eval_timeout_ms": spec.EvalTimeoutMS, "timeout_ms": spec.TimeoutMS} {
		if ms < 0 {
			return nil, fmt.Errorf("service: negative %s %d", name, ms)
		}
	}
	if spec.MaxRetries != nil && *spec.MaxRetries < 0 {
		return nil, fmt.Errorf("service: negative max_retries %d", *spec.MaxRetries)
	}
	if spec.DegradeAfter < 0 || spec.MinScenarios < 0 {
		return nil, fmt.Errorf("service: negative degradation settings")
	}
	if spec.CheckpointEvery < 0 {
		return nil, fmt.Errorf("service: negative checkpoint_every %d", spec.CheckpointEvery)
	}
	job.Raw, err = json.Marshal(spec)
	if err != nil {
		return nil, fmt.Errorf("service: normalising job spec: %w", err)
	}
	return job, nil
}

// startVector returns the explicit start as a numeric vector, or nil.
func (j *Job) startVector() numeric.IntVector {
	if j.Spec.Start == nil {
		return nil
	}
	return append(numeric.IntVector(nil), j.Spec.Start...)
}

// evalTimeout returns the spec's watchdog allowance or def.
func (j *Job) evalTimeout(def time.Duration) time.Duration {
	if j.Spec.EvalTimeoutMS > 0 {
		return time.Duration(j.Spec.EvalTimeoutMS) * time.Millisecond
	}
	return def
}

// timeout returns the spec's per-attempt deadline or def.
func (j *Job) timeout(def time.Duration) time.Duration {
	if j.Spec.TimeoutMS > 0 {
		return time.Duration(j.Spec.TimeoutMS) * time.Millisecond
	}
	return def
}
