package service

import (
	"context"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/shard"
)

// shardWorkerArgv resolves the worker command of kind:"shard" jobs: the
// configured override, or this very executable in worker mode (windimd
// dispatches its hidden -shard-worker flag before anything else).
func (s *Server) shardWorkerArgv() ([]string, error) {
	if len(s.cfg.ShardWorkerArgv) > 0 {
		return s.cfg.ShardWorkerArgv, nil
	}
	exe, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("service: resolving shard worker binary: %w", err)
	}
	return []string{exe, "-shard-worker"}, nil
}

// dimensionSharded runs one attempt of a kind:"shard" job through the
// sharded-search coordinator (internal/shard). The coordinator's spool
// lives next to the job's journal record, so the daemon's own resume
// machinery composes with the coordinator's: a drain, crash, or
// transient failure re-runs the coordinator over the same spool, which
// recovers finished slabs, adopts live leases, and resumes interrupted
// slabs from their checkpoints — converging to the same bit-identical
// result an uninterrupted run would have produced.
func (s *Server) dimensionSharded(j *job, ctx context.Context) (*JobResult, error) {
	argv, err := s.shardWorkerArgv()
	if err != nil {
		return nil, err
	}
	workers := j.parsed.Spec.Workers
	if workers > s.cfg.MaxSearchWorkers {
		workers = s.cfg.MaxSearchWorkers
	}
	copts := core.Options{
		Evaluator:   j.parsed.Evaluator,
		Objective:   j.parsed.Objective,
		Search:      core.ExhaustiveSearch,
		MaxWindow:   j.parsed.Spec.MaxWindow,
		Workers:     workers,
		ExactEngine: j.parsed.Spec.ExactEngine,
	}
	sopts := shard.Options{
		Dir:        s.journal.ShardDir(j.id),
		WorkerArgv: argv,
		Transport:  s.cfg.ShardTransport,
		Axis:       -1,
		MaxRetries: -1, // coordinator default
		Context:    ctx,
		OnEvent: func(ev shard.Event) {
			// Fold the coordinator's stream into the job's event feed under
			// a "shard-" type prefix; seq and time are re-stamped there.
			j.emit(Event{Type: "shard-" + ev.Type, Attempt: ev.Attempt,
				Windows: append([]int(nil), ev.Windows...), Error: ev.Error})
		},
		Logf: func(format string, args ...any) {
			s.logf("job "+j.id+": "+format, args...)
		},
	}
	if sp := j.parsed.Spec.Shard; sp != nil {
		sopts.Procs = sp.Procs
		sopts.Slabs = sp.Slabs
		sopts.AllowLost = sp.AllowLost
		sopts.MaxHostsLost = sp.MaxHostsLost
		if sp.Axis != nil {
			sopts.Axis = *sp.Axis
		}
		if sp.SlabRetries != nil {
			sopts.MaxRetries = *sp.SlabRetries
		}
		sopts.LeaseTTL = time.Duration(sp.LeaseTTLMS) * time.Millisecond
		sopts.SlabDeadline = time.Duration(sp.SlabDeadlineMS) * time.Millisecond
	}
	res, err := shard.Run(j.parsed.Net, copts, sopts)
	if err != nil {
		return nil, err
	}
	out := &JobResult{
		Windows:      append([]int(nil), res.Windows...),
		Evaluations:  res.Evaluations,
		NonConverged: res.NonConverged,
	}
	if res.Metrics != nil {
		out.Power = res.Metrics.Power
		out.Throughput = res.Metrics.Throughput
		out.Delay = res.Metrics.Delay
	}
	// Lost slabs and hosts surface through the same degradation channel
	// robust jobs use, so /stats and job records need no new vocabulary.
	for _, d := range res.Degraded {
		out.Degraded = append(out.Degraded, fmt.Sprintf("slab %d: %s", d.Slab, d.Reason))
	}
	for _, h := range res.HostsLost {
		out.Degraded = append(out.Degraded, fmt.Sprintf("host %s: abandoned, slabs redistributed", h))
	}
	return out, nil
}
