package service

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/shard"
	"repro/internal/shard/transport"
)

// shardConfig wires the daemon to an in-process fake fleet: kind:"shard"
// jobs launch their slab workers as goroutines, no re-exec needed.
func shardConfig(t *testing.T, spool string, hosts ...string) Config {
	t.Helper()
	if len(hosts) == 0 {
		hosts = []string{"sim0", "sim1"}
	}
	fk, err := transport.NewFake(hosts, shard.WorkerEnvMain, os.Getenv(transport.ChaosEnv))
	if err != nil {
		t.Fatal(err)
	}
	cfg := quietConfig(spool)
	cfg.ShardTransport = fk
	cfg.ShardWorkerArgv = []string{"in-process"}
	return cfg
}

// shardBaseline runs the single-process exhaustive search a shard job
// must reproduce bit-for-bit.
func shardBaseline(t *testing.T, spec string) *core.Result {
	t.Helper()
	parsed, err := ParseJob([]byte(spec))
	if err != nil {
		t.Fatalf("ParseJob: %v", err)
	}
	res, err := core.Dimension(parsed.Net, core.Options{
		Evaluator: parsed.Evaluator,
		Objective: parsed.Objective,
		Search:    core.ExhaustiveSearch,
		MaxWindow: parsed.Spec.MaxWindow,
		Workers:   parsed.Spec.Workers,
	})
	if err != nil {
		t.Fatalf("baseline Dimension: %v", err)
	}
	return res
}

// The short lease TTL keeps the restart test fast: the dead run's
// parked worker is reclaimed after 1s instead of the 10s default.
const shardJobSpec = `{"id": "sj", "example": "canada2", "kind": "shard",
	"max_window": 6, "workers": 2,
	"shard": {"procs": 2, "slabs": 3, "lease_ttl_ms": 1000}}`

func TestShardJobMatchesExhaustive(t *testing.T) {
	base := shardBaseline(t, shardJobSpec)
	s := newTestServer(t, shardConfig(t, t.TempDir()))
	id, code, out := submitJob(t, s, shardJobSpec)
	if code != 202 {
		t.Fatalf("submit: %d %v", code, out)
	}
	rec := waitTerminal(t, s, id)
	if rec.State != StateDone {
		t.Fatalf("job ended %s (%s)", rec.State, rec.Error)
	}
	res := rec.Result
	if res == nil {
		t.Fatal("no result")
	}
	if got, want := res.Windows, []int(base.Windows); len(got) != len(want) {
		t.Fatalf("windows %v, baseline %v", got, want)
	}
	for i := range res.Windows {
		if res.Windows[i] != base.Windows[i] {
			t.Fatalf("windows %v, baseline %v", res.Windows, base.Windows)
		}
	}
	if got, want := math.Float64bits(res.Power), math.Float64bits(base.Metrics.Power); got != want {
		t.Fatalf("power %x not bit-identical to baseline %x", got, want)
	}
	if got, want := res.Evaluations, base.Search.Evaluations; got != want {
		t.Fatalf("evaluations %d, baseline %d", got, want)
	}
	if len(res.Degraded) != 0 {
		t.Fatalf("clean run degraded: %v", res.Degraded)
	}

	// The coordinator's spool is retired with the checkpoint; the journal
	// record remains the durable result.
	if _, err := os.Stat(s.journal.ShardDir(id)); !os.IsNotExist(err) {
		t.Fatal("shard spool not retired after completion")
	}
	// The coordinator's stream surfaced in the job's event feed under the
	// shard- prefix.
	j := s.lookup(id)
	evs, _, _ := j.eventsSince(0)
	sawShard := false
	for _, ev := range evs {
		if strings.HasPrefix(ev.Type, "shard-") {
			sawShard = true
			break
		}
	}
	if !sawShard {
		t.Fatalf("no shard- events in the feed: %+v", evs)
	}
}

// TestShardJobKillRestartResume: a daemon killed while a shard job has a
// worker parked mid-slab must, on restart over the same spool, resume
// the coordinator — recovering finished slabs, re-running the rest — and
// converge to the bit-identical exhaustive optimum.
func TestShardJobKillRestartResume(t *testing.T) {
	base := shardBaseline(t, shardJobSpec)
	spool := t.TempDir()
	// The hang fault (one-shot, marker in the shard spool) parks slab
	// 1's worker, guaranteeing the kill lands mid-run.
	t.Setenv(shard.EnvFault, "hang:slab1")
	s1 := newTestServer(t, shardConfig(t, spool))
	id, code, out := submitJob(t, s1, shardJobSpec)
	if code != 202 {
		t.Fatalf("submit: %d %v", code, out)
	}
	dir := s1.journal.ShardDir(id)
	waitFor(t, "slabs 0 and 2 done, slab 1 parked", func() bool {
		for _, f := range []string{"slab0.res", "slab2.res", "slab1.fault-hang.fired"} {
			if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
				return false
			}
		}
		return true
	})
	s1.Kill()

	t.Setenv(shard.EnvFault, "") // the fault marker alone gates the re-run
	s2 := newTestServer(t, shardConfig(t, spool))
	rec := waitTerminal(t, s2, id)
	if rec.State != StateDone {
		t.Fatalf("restarted job ended %s (%s)", rec.State, rec.Error)
	}
	res := rec.Result
	if !res.Resumed {
		t.Fatal("restarted run not marked resumed")
	}
	for i := range res.Windows {
		if res.Windows[i] != base.Windows[i] {
			t.Fatalf("windows %v, baseline %v", res.Windows, base.Windows)
		}
	}
	if got, want := math.Float64bits(res.Power), math.Float64bits(base.Metrics.Power); got != want {
		t.Fatalf("resumed power %x not bit-identical to baseline %x", got, want)
	}
	if got, want := res.Evaluations, base.Search.Evaluations; got != want {
		t.Fatalf("resumed evaluations %d, baseline %d (candidate scanned twice or skipped)", got, want)
	}
}

func TestParseJobShardValidation(t *testing.T) {
	good := `{"example": "canada2", "kind": "shard", "max_window": 6,
		"shard": {"procs": 2, "slabs": 3, "axis": -1, "slab_retries": 1,
		"allow_lost": 1, "max_hosts_lost": 1, "lease_ttl_ms": 500, "slab_deadline_ms": 1000}}`
	j, err := ParseJob([]byte(good))
	if err != nil {
		t.Fatalf("good shard spec rejected: %v", err)
	}
	if !j.Sharded() || j.Spec.Shard == nil || *j.Spec.Shard.Axis != -1 {
		t.Fatalf("shard spec mangled: %+v", j.Spec)
	}
	for name, spec := range map[string]string{
		"shard settings without kind": `{"example": "canada2", "shard": {"procs": 2}}`,
		"shard settings on dimension": `{"example": "canada2", "kind": "dimension", "shard": {}}`,
		"unknown kind":                `{"example": "canada2", "kind": "turbo"}`,
		"shard with scenarios":        `{"example": "canada2", "kind": "shard", "scenarios": {"scenarios": [{"name": "s", "rate_scale": 1.5}]}}`,
		"shard with start":            `{"example": "canada2", "kind": "shard", "start": [2, 2]}`,
		"shard with eval timeout":     `{"example": "canada2", "kind": "shard", "eval_timeout_ms": 50}`,
		"negative procs":              `{"example": "canada2", "kind": "shard", "shard": {"procs": -1}}`,
		"negative lease ttl":          `{"example": "canada2", "kind": "shard", "shard": {"lease_ttl_ms": -5}}`,
		"axis out of range":           `{"example": "canada2", "kind": "shard", "shard": {"axis": 2}}`,
		"axis below -1":               `{"example": "canada2", "kind": "shard", "shard": {"axis": -2}}`,
		"negative slab retries":       `{"example": "canada2", "kind": "shard", "shard": {"slab_retries": -1}}`,
	} {
		if _, err := ParseJob([]byte(spec)); err == nil {
			t.Errorf("ParseJob accepted %s", name)
		}
	}
}

// TestJournalShardDirRetired: retiring a job's checkpoint also removes
// its coordinator spool, and the journal scan never mistakes the spool
// directory for a record.
func TestJournalShardDirRetired(t *testing.T) {
	j, err := OpenJournal(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Write(&Record{ID: "x", State: StateRunning, Spec: []byte(`{}`), Created: time.Now()}); err != nil {
		t.Fatal(err)
	}
	dir := j.ShardDir("x")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	recs, bad, err := j.Scan()
	if err != nil || len(bad) != 0 || len(recs) != 1 {
		t.Fatalf("scan with shard spool present: recs=%d bad=%v err=%v", len(recs), bad, err)
	}
	j.RetireCheckpoint("x")
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Fatal("shard spool survived retirement")
	}
	if _, err := j.Load("x"); err != nil {
		t.Fatalf("record lost with the spool: %v", err)
	}
}
