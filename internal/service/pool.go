package service

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"time"

	"repro/internal/backoff"
	"repro/internal/convolution"
	"repro/internal/core"
	"repro/internal/mva"
	"repro/internal/numeric"
	"repro/internal/shard"
)

// Cancellation causes. The runner distinguishes who killed an attempt:
// a drain leaves the job in the journal for the next daemon to resume, a
// user cancel retires it, a deadline converts best-so-far into a partial
// result, and a test crash abandons everything mid-flight.
var (
	errDrain    = errors.New("service: draining")
	errCrash    = errors.New("service: crash")
	errCanceled = errors.New("service: canceled by request")
	errDeadline = errors.New("service: job deadline exceeded")
	errPanic    = errors.New("service: evaluator panic")
)

// transientErr reports whether a failed attempt is worth retrying:
// numerical instability, non-convergence, scenario-quorum aborts (often
// watchdog trips under load), evaluator panics, and exhausted shard
// fault budgets (a re-run over the same spool recovers finished slabs
// and retries only the remainder) can all clear on a fresh attempt;
// spec errors and infeasible networks cannot.
func transientErr(err error) bool {
	return errors.Is(err, convolution.ErrUnstable) ||
		errors.Is(err, mva.ErrNotConverged) ||
		errors.Is(err, core.ErrQuorum) ||
		errors.Is(err, shard.ErrBudget) ||
		errors.Is(err, errPanic)
}

// BackoffDelay is the exponential backoff before retry attempt n (1-based
// count of recorded retries): base 100ms doubling per retry, capped at
// 5s, plus up to 50% uniform jitter so a burst of failing jobs does not
// retry in lockstep. Negative counts clamp to zero. The implementation
// lives in internal/backoff, shared with the sharded-search coordinator
// (internal/shard), which paces worker relaunches and host-blacklist
// probes with the same discipline.
func BackoffDelay(retries int) time.Duration { return backoff.Delay(retries) }

// worker is one slot of the bounded pool: it drains the queue until the
// server context dies (drain or crash).
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.ctx.Done():
			return
		case j := <-s.queue:
			s.queuedGauge.Add(-1)
			s.runJob(j)
		}
	}
}

// runJob drives one job through attempts, retries and terminal states.
// Every fault is contained to this job: panics are recovered per attempt,
// transient errors retry with backoff (recorded in the journal), and only
// a drain or crash returns with the job still live — deliberately, so the
// next daemon resumes it.
func (s *Server) runJob(j *job) {
	if s.ctx.Err() != nil {
		return // drained while queued; the record stays queued
	}
	j.mu.Lock()
	if j.rec.State.Terminal() {
		j.mu.Unlock()
		return // canceled while queued
	}
	j.mu.Unlock()
	s.running.Add(1)
	defer s.running.Add(-1)
	maxRetries := s.cfg.MaxRetries
	if j.parsed.Spec.MaxRetries != nil {
		maxRetries = *j.parsed.Spec.MaxRetries
	}
	for {
		// A shard job's resumable state is its coordinator spool (keyed by
		// the durable manifest), a dimension job's its search checkpoint.
		resumable := s.journal.CheckpointPath(j.id)
		if j.parsed.Sharded() {
			resumable = shard.ManifestPath(s.journal.ShardDir(j.id))
		}
		resume := false
		if _, err := os.Stat(resumable); err == nil {
			resume = true
		}
		j.mu.Lock()
		if j.rec.State.Terminal() {
			j.mu.Unlock()
			return
		}
		if j.userCanceled {
			j.mu.Unlock()
			s.finishTerminal(j, StateCanceled, errCanceled.Error())
			return
		}
		j.rec.Attempts++
		j.rec.State = StateRunning
		attempt := j.rec.Attempts
		j.mu.Unlock()
		if err := s.journalWrite(j); err != nil {
			s.logf("job %s: journal: %v", j.id, err)
		}
		typ := "started"
		if resume {
			typ = "resumed"
			s.resumedTotal.Add(1)
		}
		j.emit(Event{Type: typ, Attempt: attempt})

		res, err := s.runAttempt(j, resume)
		if err == nil {
			s.finishDone(j, res)
			return
		}
		switch {
		case errors.Is(err, errCrash), errors.Is(err, errDrain):
			// The journal still says running; Drain rewrites it to queued,
			// a crash leaves it for the restart scan. Either way the next
			// daemon resumes from the checkpoint.
			return
		case errors.Is(err, errCanceled):
			s.finishTerminal(j, StateCanceled, err.Error())
			return
		}
		j.mu.Lock()
		retries := len(j.rec.Retries)
		j.mu.Unlock()
		if !transientErr(err) || retries >= maxRetries {
			s.finishTerminal(j, StateFailed, err.Error())
			return
		}
		delay := BackoffDelay(retries)
		j.mu.Lock()
		j.rec.Retries = append(j.rec.Retries, Retry{
			Attempt:   attempt,
			Error:     err.Error(),
			BackoffMS: delay.Milliseconds(),
			At:        time.Now().UTC(),
		})
		j.mu.Unlock()
		s.retriesTotal.Add(1)
		if werr := s.journalWrite(j); werr != nil {
			s.logf("job %s: journal: %v", j.id, werr)
		}
		j.emit(Event{Type: "retry", Attempt: attempt, Error: err.Error()})
		select {
		case <-time.After(delay):
		case <-s.ctx.Done():
			return
		}
	}
}

// runAttempt executes one attempt of the job under its own context, with
// panic containment. A nil error means res is the job's outcome (possibly
// a partial, deadline-bounded one); otherwise the error is already
// resolved to its cancellation cause where one applies.
func (s *Server) runAttempt(j *job, resume bool) (res *JobResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			s.panicsTotal.Add(1)
			res, err = nil, fmt.Errorf("%w: %v", errPanic, r)
		}
	}()
	ctx, cancel := context.WithCancelCause(s.ctx)
	defer cancel(nil)
	if d := j.parsed.timeout(s.cfg.JobTimeout); d > 0 {
		var tcancel context.CancelFunc
		ctx, tcancel = context.WithTimeoutCause(ctx, d, errDeadline)
		defer tcancel()
	}
	j.mu.Lock()
	j.cancel = cancel
	canceled := j.userCanceled
	start := append(numeric.IntVector(nil), j.rec.Start...)
	if j.rec.Start == nil {
		start = nil
	}
	j.mu.Unlock()
	if canceled {
		// A DELETE raced the attempt start before the cancel handle was
		// installed; honour it now.
		cancel(errCanceled)
	}
	defer func() {
		j.mu.Lock()
		j.cancel = nil
		j.mu.Unlock()
	}()

	if j.parsed.Sharded() {
		// The sharded coordinator has its own resume discipline: re-running
		// over the per-job spool recovers finished slabs, adopts live
		// leases, and resumes the rest from their checkpoints.
		res, err = s.dimensionSharded(j, ctx)
		if err == nil {
			res.Resumed = resume
			return res, nil
		}
		if ctx.Err() != nil {
			return nil, context.Cause(ctx)
		}
		return nil, err
	}

	opts := s.searchOptions(j, ctx, start)
	if resume {
		opts.ResumePath = s.journal.CheckpointPath(j.id)
	}
	res, err = s.dimension(j, opts)
	if err != nil && errors.Is(err, core.ErrResume) {
		// The checkpoint is stale or torn beyond use (e.g. written by an
		// older binary). Losing the search prefix beats losing the job.
		s.logf("job %s: discarding unusable checkpoint: %v", j.id, err)
		j.mu.Lock()
		j.ckptDiscarded++
		j.mu.Unlock()
		s.ckptDiscardedTotal.Add(1)
		s.journal.RetireCheckpoint(j.id)
		opts.ResumePath = ""
		res, err = s.dimension(j, opts)
	}
	if err == nil {
		res.Resumed = resume
		j.mu.Lock()
		res.WarmStarted = j.rec.WarmStart
		j.mu.Unlock()
		return res, nil
	}
	if ctx.Err() != nil {
		cause := context.Cause(ctx)
		if errors.Is(cause, errDeadline) && res != nil && len(res.Windows) > 0 {
			// The deadline expired but the search had committed a base
			// point: ship the best-so-far answer, marked partial, instead
			// of failing a job the caller bounded on purpose.
			res.Partial = true
			res.Note = errDeadline.Error()
			res.Resumed = resume
			return res, nil
		}
		return nil, cause
	}
	return nil, err
}

// searchOptions assembles the core options of one attempt.
func (s *Server) searchOptions(j *job, ctx context.Context, start numeric.IntVector) core.Options {
	workers := j.parsed.Spec.Workers
	if workers > s.cfg.MaxSearchWorkers {
		workers = s.cfg.MaxSearchWorkers
	}
	every := j.parsed.Spec.CheckpointEvery
	if every <= 0 {
		every = s.cfg.CheckpointEvery
	}
	opts := core.Options{
		Evaluator:           j.parsed.Evaluator,
		Objective:           j.parsed.Objective,
		Search:              core.PatternSearch,
		InitialWindows:      start,
		MaxWindow:           j.parsed.Spec.MaxWindow,
		Workers:             workers,
		ExactEngine:         j.parsed.Spec.ExactEngine,
		EvalTimeout:         j.parsed.evalTimeout(s.cfg.EvalTimeout),
		DegradeAfter:        j.parsed.Spec.DegradeAfter,
		MinScenarios:        j.parsed.Spec.MinScenarios,
		Context:             ctx,
		CheckpointPath:      s.journal.CheckpointPath(j.id),
		CheckpointEvery:     every,
		CheckpointFullEvery: s.cfg.CheckpointFullEvery,
		OnCommit: func(x numeric.IntVector, fx float64) {
			ev := Event{Type: "commit", Windows: append([]int(nil), x...)}
			if fx > 0 && !math.IsInf(fx, 0) && !math.IsNaN(fx) {
				ev.Power = 1 / fx
			}
			j.emit(ev)
		},
	}
	if opts.ExactEngine {
		opts.Oracles = s.oracles
	}
	return opts
}

// dimension runs the search itself — plain or robust — and folds the
// outcome into a JobResult. On a cancelled search with a best-so-far
// point, the partial result is returned ALONGSIDE the error, matching
// core's contract; runAttempt decides what to do with the pair.
func (s *Server) dimension(j *job, opts core.Options) (*JobResult, error) {
	if j.parsed.Robust() {
		rr, err := core.DimensionRobust(j.parsed.Net, j.parsed.Scenarios, j.parsed.Kind, opts)
		if rr == nil {
			return nil, err
		}
		res := &JobResult{
			Windows:          append([]int(nil), rr.Windows...),
			Power:            rr.WeightedPower,
			NonConverged:     rr.NonConverged,
			FallbacksRescued: rr.Fallbacks.Rescued(),
			WatchdogTrips:    rr.WatchdogTrips,
			WorstPower:       rr.WorstPower,
		}
		if rr.Search != nil {
			res.Evaluations = rr.Search.Evaluations
			res.CacheHits = rr.Search.CacheHits
		}
		if rr.WorstScenario >= 0 && rr.WorstScenario < len(j.parsed.Scenarios) {
			res.WorstScenario = j.parsed.Scenarios[rr.WorstScenario].Name
		}
		for _, d := range rr.Degraded {
			res.Degraded = append(res.Degraded, fmt.Sprintf("%s: %s", d.Name, d.Reason))
		}
		return res, err
	}
	r, err := core.Dimension(j.parsed.Net, opts)
	if r == nil {
		return nil, err
	}
	res := &JobResult{
		Windows:          append([]int(nil), r.Windows...),
		NonConverged:     r.NonConverged,
		FallbacksRescued: r.Fallbacks.Rescued(),
		WatchdogTrips:    r.WatchdogTrips,
	}
	if r.Metrics != nil {
		res.Power = r.Metrics.Power
		res.Throughput = r.Metrics.Throughput
		res.Delay = r.Metrics.Delay
	}
	if r.Search != nil {
		res.Evaluations = r.Search.Evaluations
		res.CacheHits = r.Search.CacheHits
	}
	return res, err
}

// finishDone retires a successfully finished job: journal the result,
// drop the checkpoint, feed the warm-start index, and release oracle
// memory down to the budget now that the job no longer pins its lattice.
func (s *Server) finishDone(j *job, res *JobResult) {
	j.mu.Lock()
	j.rec.State = StateDone
	j.rec.Result = res
	j.rec.Error = ""
	j.mu.Unlock()
	if err := s.journalWrite(j); err != nil {
		s.logf("job %s: journal: %v", j.id, err)
	}
	s.journal.RetireCheckpoint(j.id)
	s.accountResult(res)
	if !res.Partial && len(res.Windows) > 0 && j.structHash != "" {
		s.mu.Lock()
		s.warm[j.structHash] = append(numeric.IntVector(nil), res.Windows...)
		s.mu.Unlock()
	}
	s.releasePin(j)
	s.oracles.TrimToBudget()
	j.emit(Event{Type: "done", Windows: append([]int(nil), res.Windows...), Power: res.Power})
	// close is the completion barrier: every effect of the job — journal
	// record, checkpoint retirement, warm index, budget release — is
	// visible before the feed closes.
	j.close()
}

// finishTerminal retires a job in a non-done terminal state.
func (s *Server) finishTerminal(j *job, state State, msg string) {
	j.mu.Lock()
	j.rec.State = state
	j.rec.Error = msg
	j.mu.Unlock()
	if err := s.journalWrite(j); err != nil {
		s.logf("job %s: journal: %v", j.id, err)
	}
	s.journal.RetireCheckpoint(j.id)
	s.releasePin(j)
	s.oracles.TrimToBudget()
	j.emit(Event{Type: string(state), Error: msg})
	j.close()
}

// accountResult folds a finished job's resilience counters into the
// server totals /stats reports.
func (s *Server) accountResult(res *JobResult) {
	s.watchdogTotal.Add(res.WatchdogTrips)
	s.fallbackTotal.Add(res.FallbacksRescued)
	s.degradedTotal.Add(int64(len(res.Degraded)))
}
