package service

import (
	"strings"
	"testing"
)

func TestParseJobValid(t *testing.T) {
	cases := []struct {
		name string
		spec string
	}{
		{"example", `{"example": "canada2"}`},
		{"example with options", `{"id": "j1", "example": "canada4", "evaluator": "schweitzer", "objective": "min-class", "max_window": 8, "workers": 2}`},
		{"topo", `{"topo": "mesh:8,4,4", "topo_seed": 7}`},
		{"rates override", `{"example": "canada2", "rates": [24, 18]}`},
		{"explicit start", `{"example": "canada2", "start": [3, 3]}`},
		{"robust", `{"example": "canada2", "scenarios": {"scenarios": [{"name": "nominal"}, {"name": "cut", "capacity_scale": {"WT": 0.5}}]}, "robust": "minmax"}`},
		{"exact engine", `{"example": "canada2", "evaluator": "exact", "exact_engine": true, "max_window": 6}`},
		{"timeouts and retries", `{"example": "canada2", "timeout_ms": 5000, "eval_timeout_ms": 100, "max_retries": 0}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			job, err := ParseJob([]byte(tc.spec))
			if err != nil {
				t.Fatalf("ParseJob(%s): %v", tc.spec, err)
			}
			if job.Net == nil {
				t.Fatal("parsed job has no network")
			}
			// The normalised form must be re-admissible: a restarted
			// daemon parses Raw straight from the journal.
			if _, err := ParseJob(job.Raw); err != nil {
				t.Fatalf("normalised spec does not re-parse: %v", err)
			}
		})
	}
}

func TestParseJobRejects(t *testing.T) {
	cases := []struct {
		name, spec, want string
	}{
		{"empty", `{}`, "exactly one of"},
		{"two sources", `{"example": "canada2", "topo": "mesh:8,4,4"}`, "exactly one of"},
		{"unknown field", `{"example": "canada2", "windows": [4, 4]}`, "unknown field"},
		{"trailing data", `{"example": "canada2"} {"example": "canada2"}`, "trailing data"},
		{"bad id", `{"id": "../../etc/passwd", "example": "canada2"}`, "job id"},
		{"dot id", `{"id": ".hidden", "example": "canada2"}`, "job id"},
		{"unknown example", `{"example": "usa9"}`, "unknown example"},
		{"bad topo", `{"topo": "torus:2,2,2"}`, "topology family"},
		{"rates on topo", `{"topo": "mesh:8,4,4", "rates": [1, 2, 3, 4]}`, "rates do not apply"},
		{"rates length", `{"example": "canada2", "rates": [1]}`, "2 classes"},
		{"bad evaluator", `{"example": "canada2", "evaluator": "magic"}`, "unknown evaluator"},
		{"bad objective", `{"example": "canada2", "objective": "profit"}`, "unknown objective"},
		{"robust without scenarios", `{"example": "canada2", "robust": "minmax"}`, "without scenarios"},
		{"bad robust", `{"example": "canada2", "scenarios": {"scenarios": [{"name": "a"}]}, "robust": "median"}`, "robust criterion"},
		{"start length", `{"example": "canada2", "start": [1, 2, 3]}`, "start vector"},
		{"start below one", `{"example": "canada2", "start": [0, 4]}`, "at least 1"},
		{"negative max_window", `{"example": "canada2", "max_window": -1}`, "max_window"},
		{"negative workers", `{"example": "canada2", "workers": -2}`, "workers"},
		{"negative timeout", `{"example": "canada2", "timeout_ms": -5}`, "timeout_ms"},
		{"negative retries", `{"example": "canada2", "max_retries": -1}`, "max_retries"},
		{"not json", `windows go brr`, "parsing job spec"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseJob([]byte(tc.spec))
			if err == nil {
				t.Fatalf("ParseJob(%s) accepted", tc.spec)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("ParseJob(%s) = %v, want mention of %q", tc.spec, err, tc.want)
			}
		})
	}
}

func TestValidID(t *testing.T) {
	for id, want := range map[string]bool{
		"job-1":                 true,
		"a":                     true,
		"A.b_c-9":               true,
		"":                      false,
		".":                     false,
		"..":                    false,
		".hidden":               false,
		"a/b":                   false,
		"a b":                   false,
		strings.Repeat("x", 64): true,
		strings.Repeat("x", 65): false,
	} {
		if got := validID(id); got != want {
			t.Errorf("validID(%q) = %t, want %t", id, got, want)
		}
	}
}

// FuzzParseJob checks the job parser never panics on arbitrary input and
// that every spec it accepts yields a resolved network and survives the
// normalise/re-parse round trip the journal depends on.
func FuzzParseJob(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"example": "canada2"}`))
	f.Add([]byte(`{"id": "j1", "example": "canada4", "evaluator": "exact", "exact_engine": true, "max_window": 6}`))
	f.Add([]byte(`{"topo": "clos:4,2,8", "topo_seed": 3}`))
	f.Add([]byte(`{"example": "canada2", "rates": [24, 18], "start": [3, 3], "workers": 2}`))
	f.Add([]byte(`{"example": "canada2", "scenarios": {"scenarios": [{"name": "cut", "capacity_scale": {"WT": 0.5}}]}, "robust": "weighted"}`))
	f.Add([]byte(`{"example": "canada2", "max_retries": 0, "timeout_ms": 1000}`))
	f.Add([]byte(`{"network": {"nodes": []}}`))
	f.Add([]byte(`{"example": "tandem4", "start": [0]}`))
	f.Add([]byte(`null`))
	f.Fuzz(func(t *testing.T, data []byte) {
		job, err := ParseJob(data)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		if job.Net == nil {
			t.Fatal("accepted job without a network")
		}
		if len(job.Spec.Start) != 0 && len(job.Spec.Start) != len(job.Net.Classes) {
			t.Fatal("accepted start vector of the wrong length")
		}
		again, err := ParseJob(job.Raw)
		if err != nil {
			t.Fatalf("normalised spec does not re-parse: %v", err)
		}
		if again.Robust() != job.Robust() {
			t.Fatal("re-parse changed robustness")
		}
	})
}
