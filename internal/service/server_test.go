package service

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/cliutil"
	"repro/internal/core"
)

const testWait = 90 * time.Second

func quietConfig(spool string) Config {
	return Config{Spool: spool, Logf: func(string, ...any) {}}
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Kill)
	return s
}

// do runs one request through the server's handler and decodes the JSON
// response body.
func do(t *testing.T, s *Server, method, path, body string) (int, map[string]any, *httptest.ResponseRecorder) {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	var out map[string]any
	if w.Body.Len() > 0 {
		if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
			t.Fatalf("%s %s: bad JSON response %q: %v", method, path, w.Body.String(), err)
		}
	}
	return w.Code, out, w
}

func submitJob(t *testing.T, s *Server, spec string) (string, int, map[string]any) {
	t.Helper()
	code, out, _ := do(t, s, "POST", "/jobs", spec)
	id, _ := out["id"].(string)
	return id, code, out
}

// recordOf snapshots a job's record.
func recordOf(t *testing.T, s *Server, id string) Record {
	t.Helper()
	j := s.lookup(id)
	if j == nil {
		t.Fatalf("no job %s", id)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return *j.rec
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(testWait)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func waitTerminal(t *testing.T, s *Server, id string) Record {
	t.Helper()
	// The closed event feed is the completion barrier: journal record,
	// checkpoint retirement and budget release are all visible by then.
	waitFor(t, "job "+id+" to finish", func() bool {
		j := s.lookup(id)
		if j == nil {
			return false
		}
		j.mu.Lock()
		defer j.mu.Unlock()
		return j.closed && j.rec.State.Terminal()
	})
	return recordOf(t, s, id)
}

func waitCommits(t *testing.T, s *Server, id string, n int) {
	t.Helper()
	waitFor(t, fmt.Sprintf("%d commits on %s", n, id), func() bool {
		j := s.lookup(id)
		if j == nil {
			return false
		}
		evs, _, _ := j.eventsSince(0)
		commits := 0
		for _, ev := range evs {
			if ev.Type == "commit" {
				commits++
			}
		}
		return commits >= n
	})
}

func TestSubmitLifecycle(t *testing.T) {
	s := newTestServer(t, quietConfig(t.TempDir()))
	id, code, out := submitJob(t, s, `{"id": "lc", "example": "canada2"}`)
	if code != 202 || id != "lc" {
		t.Fatalf("submit: %d %v", code, out)
	}
	rec := waitTerminal(t, s, id)
	if rec.State != StateDone {
		t.Fatalf("job ended %s (%s)", rec.State, rec.Error)
	}
	if rec.Result == nil || len(rec.Result.Windows) != 2 || rec.Result.Power <= 0 {
		t.Fatalf("bad result: %+v", rec.Result)
	}
	if rec.Result.Evaluations <= 0 {
		t.Fatalf("no evaluations recorded: %+v", rec.Result)
	}

	// The record survives on disk with the result; the checkpoint is
	// retired.
	onDisk, err := s.journal.Load(id)
	if err != nil {
		t.Fatal(err)
	}
	if onDisk.State != StateDone || onDisk.Result == nil {
		t.Fatalf("journal record not terminal: %+v", onDisk)
	}
	if _, err := os.Stat(s.journal.CheckpointPath(id)); !os.IsNotExist(err) {
		t.Fatal("checkpoint not retired after completion")
	}

	// GET endpoints agree.
	code, _, w := do(t, s, "GET", "/jobs/lc", "")
	if code != 200 || !strings.Contains(w.Body.String(), `"done"`) {
		t.Fatalf("GET /jobs/lc: %d %s", code, w.Body.String())
	}
	code, out, _ = do(t, s, "GET", "/jobs", "")
	if code != 200 || len(out["jobs"].([]any)) != 1 {
		t.Fatalf("GET /jobs: %d %v", code, out)
	}
	code, _, _ = do(t, s, "GET", "/jobs/nope", "")
	if code != 404 {
		t.Fatalf("GET /jobs/nope: %d", code)
	}

	// The event stream replays the whole history and terminates (the job
	// is done): queued, started, at least one commit, done.
	req := httptest.NewRequest("GET", "/jobs/lc/events", nil)
	ew := httptest.NewRecorder()
	s.ServeHTTP(ew, req)
	var types []string
	sc := bufio.NewScanner(ew.Body)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		types = append(types, ev.Type)
	}
	joined := strings.Join(types, ",")
	for _, want := range []string{"queued", "started", "commit", "done"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("event stream %v missing %q", types, want)
		}
	}

	// Duplicate ids are refused; a health check passes.
	if _, code, _ = submitJob(t, s, `{"id": "lc", "example": "canada2"}`); code != 409 {
		t.Fatalf("duplicate id: %d", code)
	}
	if code, _, _ = do(t, s, "GET", "/healthz", ""); code != 200 {
		t.Fatalf("healthz: %d", code)
	}
}

// longJobSpec is a search long enough to be interrupted reliably: an
// 80-class mesh whose pattern search runs for hundreds of milliseconds
// while its first commits land within the first few.
func longJobSpec(id string) string {
	return fmt.Sprintf(`{"id": %q, "topo": "mesh:100,50,80", "topo_seed": 3}`, id)
}

// TestKillResumeBitIdentical is the crash-safety acceptance check: a
// daemon SIGKILLed mid-search (simulated in-process by Kill, which
// cancels without any journal transition) and restarted on the same
// spool must resume the interrupted job and converge to the
// bit-identical result of a never-interrupted run.
func TestKillResumeBitIdentical(t *testing.T) {
	// Reference: the same job, uninterrupted, on its own spool.
	ref := newTestServer(t, quietConfig(t.TempDir()))
	refID, code, out := submitJob(t, ref, longJobSpec("ref"))
	if code != 202 {
		t.Fatalf("submit: %d %v", code, out)
	}
	refRec := waitTerminal(t, ref, refID)
	if refRec.State != StateDone {
		t.Fatalf("reference job ended %s (%s)", refRec.State, refRec.Error)
	}

	// Crash run: kill after a few commits, mid-search.
	spool := t.TempDir()
	crash := newTestServer(t, quietConfig(spool))
	id, code, _ := submitJob(t, crash, longJobSpec("crash"))
	if code != 202 {
		t.Fatalf("submit: %d", code)
	}
	waitCommits(t, crash, id, 3)
	crash.Kill()
	onDisk, err := crash.journal.Load(id)
	if err != nil {
		t.Fatal(err)
	}
	if onDisk.State.Terminal() {
		t.Fatalf("job finished before the kill (state %s); the test needs a longer search", onDisk.State)
	}
	if _, err := os.Stat(crash.journal.CheckpointPath(id)); err != nil {
		t.Fatalf("no checkpoint at kill time: %v", err)
	}

	// Restart on the same spool: the job is re-admitted and resumed
	// automatically.
	restarted := newTestServer(t, quietConfig(spool))
	rec := waitTerminal(t, restarted, id)
	if rec.State != StateDone {
		t.Fatalf("resumed job ended %s (%s)", rec.State, rec.Error)
	}
	if !rec.Result.Resumed {
		t.Fatal("resumed job not marked Resumed")
	}
	if fmt.Sprint(rec.Result.Windows) != fmt.Sprint(refRec.Result.Windows) {
		t.Fatalf("windows diverge: resumed %v, reference %v", rec.Result.Windows, refRec.Result.Windows)
	}
	if math.Float64bits(rec.Result.Power) != math.Float64bits(refRec.Result.Power) {
		t.Fatalf("power diverges: resumed %x, reference %x", rec.Result.Power, refRec.Result.Power)
	}
}

// TestDrainRequeuesAndResumes checks the graceful-drain path: a drained
// daemon rewrites its running jobs to queued, stops admitting, and a
// restart completes them from their checkpoints.
func TestDrainRequeuesAndResumes(t *testing.T) {
	spool := t.TempDir()
	s := newTestServer(t, quietConfig(spool))
	id, code, _ := submitJob(t, s, longJobSpec("drainee"))
	if code != 202 {
		t.Fatalf("submit: %d", code)
	}
	waitCommits(t, s, id, 2)
	if err := s.Drain(t.Context()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if code, _, _ := do(t, s, "GET", "/healthz", ""); code != 503 {
		t.Fatalf("healthz while draining: %d", code)
	}
	if _, code, _ := submitJob(t, s, `{"example": "canada2"}`); code != 503 {
		t.Fatalf("submission while draining: %d", code)
	}
	onDisk, err := s.journal.Load(id)
	if err != nil {
		t.Fatal(err)
	}
	if onDisk.State != StateQueued {
		t.Fatalf("drained job journalled as %s, want queued", onDisk.State)
	}

	restarted := newTestServer(t, quietConfig(spool))
	rec := waitTerminal(t, restarted, id)
	if rec.State != StateDone {
		t.Fatalf("drained job ended %s (%s)", rec.State, rec.Error)
	}
	if !rec.Result.Resumed {
		t.Fatal("drained job did not resume from its checkpoint")
	}
}

// TestWarmStartBeatsHopCount checks online re-dimensioning: after a job
// finishes, a resubmission for the same network structure with drifted
// traffic starts from the previous optimum and converges in fewer
// evaluations than the hop-count start does.
func TestWarmStartBeatsHopCount(t *testing.T) {
	s := newTestServer(t, quietConfig(t.TempDir()))
	id1, code, _ := submitJob(t, s, `{"id": "base", "example": "canada2", "rates": [40, 40]}`)
	if code != 202 {
		t.Fatalf("submit: %d", code)
	}
	if rec := waitTerminal(t, s, id1); rec.State != StateDone {
		t.Fatalf("base job ended %s (%s)", rec.State, rec.Error)
	}

	// Drifted traffic, no explicit start: warm-started from base's
	// optimum.
	id2, code, out := submitJob(t, s, `{"id": "drift", "example": "canada2", "rates": [42, 38]}`)
	if code != 202 {
		t.Fatalf("submit: %d", code)
	}
	if ws, _ := out["warm_start"].(bool); !ws {
		t.Fatalf("drifted resubmission not warm-started: %v", out)
	}
	warm := waitTerminal(t, s, id2)
	if warm.State != StateDone || !warm.Result.WarmStarted {
		t.Fatalf("warm job: %+v", warm.Result)
	}

	// The control: identical drifted job forced onto the hop-count start.
	n, err := cliutil.BuiltinExample("canada2")
	if err != nil {
		t.Fatal(err)
	}
	hops := n.HopVector()
	id3, code, _ := submitJob(t, s, fmt.Sprintf(
		`{"id": "cold", "example": "canada2", "rates": [42, 38], "start": [%d, %d]}`, hops[0], hops[1]))
	if code != 202 {
		t.Fatalf("submit: %d", code)
	}
	cold := waitTerminal(t, s, id3)
	if cold.State != StateDone {
		t.Fatalf("cold job ended %s (%s)", cold.State, cold.Error)
	}
	if fmt.Sprint(warm.Result.Windows) != fmt.Sprint(cold.Result.Windows) {
		t.Fatalf("warm and cold runs found different optima: %v vs %v",
			warm.Result.Windows, cold.Result.Windows)
	}
	if warm.Result.Evaluations >= cold.Result.Evaluations {
		t.Fatalf("warm start took %d evaluations, hop-count start %d; expected fewer",
			warm.Result.Evaluations, cold.Result.Evaluations)
	}
}

// TestAdmissionMemoryBudget checks multi-tenant admission control: with
// a budget below two oracles' worth, the second exact-engine job is
// rejected with 429 + Retry-After while the first is live, admitted once
// it finishes, and the first job's idle oracle is evicted to make room.
func TestAdmissionMemoryBudget(t *testing.T) {
	n, err := cliutil.BuiltinExample("canada2")
	if err != nil {
		t.Fatal(err)
	}
	est, err := core.EstimateOracleBytes(n, 6)
	if err != nil {
		t.Fatal(err)
	}
	cfg := quietConfig(t.TempDir())
	cfg.MaxJobs = 1
	cfg.MemoryBudget = est + est/2 // below two oracles' worth
	s := newTestServer(t, cfg)

	spec := func(id string) string {
		return fmt.Sprintf(`{"id": %q, "example": "canada2", "evaluator": "exact", "exact_engine": true, "max_window": 6}`, id)
	}
	idA, code, _ := submitJob(t, s, spec("exact-a"))
	if code != 202 {
		t.Fatalf("first exact job: %d", code)
	}
	// While A is live its estimate pins the budget: B cannot fit.
	_, code, out := submitJob(t, s, spec("exact-b"))
	if code != 429 {
		t.Fatalf("second exact job while first live: %d %v", code, out)
	}
	var st Stats
	_, _, w := do(t, s, "GET", "/stats", "")
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.RejectedMem != 1 || st.OraclePinned != est {
		t.Fatalf("stats after rejection: %+v", st)
	}

	// A job that can never fit is told so, not told to retry.
	big, err := core.EstimateOracleBytes(n, 64)
	if err != nil {
		t.Fatal(err)
	}
	if big <= cfg.MemoryBudget {
		t.Fatalf("test premise broken: max_window 64 estimate %d fits budget %d", big, cfg.MemoryBudget)
	}
	if _, code, _ = submitJob(t, s, `{"example": "canada2", "evaluator": "exact", "exact_engine": true}`); code != 422 {
		t.Fatalf("never-fitting job: %d", code)
	}

	if rec := waitTerminal(t, s, idA); rec.State != StateDone {
		t.Fatalf("first exact job ended %s (%s)", rec.State, rec.Error)
	}
	// A finished: its pin is released, B is admitted, and A's idle
	// oracle is evicted from the cache to make room in fact.
	idB, code, _ := submitJob(t, s, spec("exact-b"))
	if code != 202 {
		t.Fatalf("second exact job after first done: %d", code)
	}
	if rec := waitTerminal(t, s, idB); rec.State != StateDone {
		t.Fatalf("second exact job ended %s (%s)", rec.State, rec.Error)
	}
	_, _, w = do(t, s, "GET", "/stats", "")
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.OracleCache.Evictions < 1 {
		t.Fatalf("no oracle evictions recorded: %+v", st)
	}
	if st.OraclePinned != 0 {
		t.Fatalf("pins leaked: %+v", st)
	}
}

// TestAdmissionQueueBound checks the bounded queue and both cancel
// paths: with one worker slot busy and a queue of one, a third job is
// rejected with 429; the queued job cancels instantly, the running one
// on its next context check.
func TestAdmissionQueueBound(t *testing.T) {
	cfg := quietConfig(t.TempDir())
	cfg.MaxJobs = 1
	cfg.QueueDepth = 1
	s := newTestServer(t, cfg)

	idL, code, _ := submitJob(t, s, longJobSpec("long"))
	if code != 202 {
		t.Fatalf("long job: %d", code)
	}
	waitFor(t, "long job to start", func() bool {
		return recordOf(t, s, idL).State == StateRunning
	})
	idQ, code, _ := submitJob(t, s, `{"id": "waiting", "example": "canada2"}`)
	if code != 202 {
		t.Fatalf("queued job: %d", code)
	}
	_, code, _ = submitJob(t, s, `{"example": "canada2"}`)
	if code != 429 {
		t.Fatalf("over-queue job: %d", code)
	}
	var st Stats
	_, _, w := do(t, s, "GET", "/stats", "")
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.RejectedQueue != 1 || st.Queued != 1 || st.Running != 1 {
		t.Fatalf("stats: %+v", st)
	}

	// Cancel the queued job: immediate terminal state, no attempt run.
	code, out, _ := do(t, s, "DELETE", "/jobs/"+idQ, "")
	if code != 200 || out["state"] != "canceled" {
		t.Fatalf("cancel queued: %d %v", code, out)
	}
	if rec := recordOf(t, s, idQ); rec.Attempts != 0 {
		t.Fatalf("canceled queued job ran %d attempts", rec.Attempts)
	}
	// Cancel the running job: acknowledged, then terminal without retry
	// (user cancellation is not a transient failure).
	code, _, _ = do(t, s, "DELETE", "/jobs/"+idL, "")
	if code != 202 && code != 200 {
		t.Fatalf("cancel running: %d", code)
	}
	rec := waitTerminal(t, s, idL)
	if rec.State != StateCanceled || len(rec.Retries) != 0 {
		t.Fatalf("canceled running job: state %s, %d retries", rec.State, len(rec.Retries))
	}
}

// TestFaultContainment checks that a job whose evaluation panics fails
// alone — with its retries and backoff recorded in the journal — while a
// healthy job sharing the pool completes normally.
func TestFaultContainment(t *testing.T) {
	cfg := quietConfig(t.TempDir())
	cfg.MaxJobs = 2
	s := newTestServer(t, cfg)

	// A crafted in-memory job with no network: the evaluator panics on
	// the nil dereference, standing in for any evaluator-layer panic.
	rec := &Record{ID: "boom", State: StateQueued, Spec: json.RawMessage(`{}`), Created: time.Now().UTC()}
	if err := s.journal.Write(rec); err != nil {
		t.Fatal(err)
	}
	boom := newJob("boom", &Job{Spec: JobSpec{ID: "boom"}}, rec)
	s.mu.Lock()
	s.jobs["boom"] = boom
	s.order = append(s.order, "boom")
	s.mu.Unlock()
	s.queuedGauge.Add(1)
	s.queue <- boom

	healthyID, code, _ := submitJob(t, s, `{"id": "healthy", "example": "canada2"}`)
	if code != 202 {
		t.Fatalf("healthy job: %d", code)
	}

	boomRec := waitTerminal(t, s, "boom")
	if boomRec.State != StateFailed || !strings.Contains(boomRec.Error, "panic") {
		t.Fatalf("panicking job: state %s, error %q", boomRec.State, boomRec.Error)
	}
	if len(boomRec.Retries) != s.cfg.MaxRetries {
		t.Fatalf("recorded %d retries, want %d", len(boomRec.Retries), s.cfg.MaxRetries)
	}
	for i, r := range boomRec.Retries {
		if r.BackoffMS <= 0 || r.Error == "" || r.Attempt != i+1 {
			t.Fatalf("retry %d malformed: %+v", i, r)
		}
	}
	if boomRec.Attempts != s.cfg.MaxRetries+1 {
		t.Fatalf("ran %d attempts, want %d", boomRec.Attempts, s.cfg.MaxRetries+1)
	}

	healthy := waitTerminal(t, s, healthyID)
	if healthy.State != StateDone {
		t.Fatalf("healthy job ended %s (%s) alongside the panicking one", healthy.State, healthy.Error)
	}
	var st Stats
	_, _, w := do(t, s, "GET", "/stats", "")
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Panics != int64(s.cfg.MaxRetries+1) || st.Retries != int64(s.cfg.MaxRetries) {
		t.Fatalf("stats after containment: %+v", st)
	}
}

// TestJobDeadlinePartialResult checks per-job deadlines: a bounded job
// whose search outlives timeout_ms completes with best-so-far windows
// marked partial instead of failing.
func TestJobDeadlinePartialResult(t *testing.T) {
	s := newTestServer(t, quietConfig(t.TempDir()))
	id, code, _ := submitJob(t, s,
		`{"id": "bounded", "topo": "mesh:100,50,80", "topo_seed": 5, "timeout_ms": 100}`)
	if code != 202 {
		t.Fatalf("submit: %d", code)
	}
	rec := waitTerminal(t, s, id)
	if rec.State != StateDone {
		t.Fatalf("bounded job ended %s (%s)", rec.State, rec.Error)
	}
	if !rec.Result.Partial || len(rec.Result.Windows) == 0 {
		t.Fatalf("expected a partial best-so-far result, got %+v", rec.Result)
	}
}
