package service

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestJournalRoundTrip(t *testing.T) {
	j, err := OpenJournal(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rec := &Record{
		ID:      "job-1",
		State:   StateRunning,
		Spec:    json.RawMessage(`{"example": "canada2"}`),
		Start:   []int{3, 3},
		Created: time.Now().UTC(),
		Retries: []Retry{{Attempt: 1, Error: "boom", BackoffMS: 100}},
	}
	if err := j.Write(rec); err != nil {
		t.Fatal(err)
	}
	got, err := j.Load("job-1")
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateRunning || len(got.Start) != 2 || len(got.Retries) != 1 {
		t.Fatalf("loaded record mismatch: %+v", got)
	}
	if got.Updated.IsZero() {
		t.Fatal("Write did not stamp Updated")
	}
}

func TestJournalScanOrderAndBadRecords(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	base := time.Now().UTC()
	for i, id := range []string{"newer", "older"} {
		rec := &Record{ID: id, State: StateQueued, Spec: json.RawMessage(`{}`),
			Created: base.Add(time.Duration(1-i) * time.Minute)}
		if err := j.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	// A torn or corrupt record must be reported, not fatal.
	if err := os.WriteFile(filepath.Join(dir, "corrupt.job"), []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	// A record whose body names another id is corrupt too.
	if err := os.WriteFile(filepath.Join(dir, "stray.job"), []byte(`{"id": "other"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	records, bad, err := j.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 2 || records[0].ID != "older" || records[1].ID != "newer" {
		t.Fatalf("scan order wrong: %+v", records)
	}
	if len(bad) != 2 {
		t.Fatalf("expected 2 bad records, got %v", bad)
	}
}

func TestJournalRetireCheckpoint(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	ckpt := j.CheckpointPath("job-1")
	for _, p := range []string{ckpt, ckpt + ".delta"} {
		if err := os.WriteFile(p, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	j.RetireCheckpoint("job-1")
	for _, p := range []string{ckpt, ckpt + ".delta"} {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Fatalf("%s survived retirement", p)
		}
	}
}
