package service

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/pattern"
)

// State is a job's lifecycle position. Transitions:
//
//	queued -> running -> done | failed | canceled
//	running -> queued          (graceful drain: re-run after restart)
//
// A crash freezes a job at queued or running; the restart scan re-admits
// both, resuming running jobs from their checkpoints.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Retry records one failed attempt of a job that was retried.
type Retry struct {
	// Attempt is the 1-based attempt that failed.
	Attempt int `json:"attempt"`
	// Error is the transient failure that triggered the retry.
	Error string `json:"error"`
	// BackoffMS is the delay (jitter included) before the next attempt.
	BackoffMS int64     `json:"backoff_ms"`
	At        time.Time `json:"at"`
}

// JobResult is the durable outcome of a finished job.
type JobResult struct {
	Windows    []int   `json:"windows"`
	Power      float64 `json:"power"`
	Throughput float64 `json:"throughput,omitempty"`
	Delay      float64 `json:"delay,omitempty"`
	// Evaluations/CacheHits describe the search that produced Windows.
	Evaluations int `json:"evaluations,omitempty"`
	CacheHits   int `json:"cache_hits,omitempty"`
	// NonConverged, FallbacksRescued, WatchdogTrips and Degraded surface
	// the resilience machinery's activity during the run.
	NonConverged     int      `json:"non_converged,omitempty"`
	FallbacksRescued int64    `json:"fallbacks_rescued,omitempty"`
	WatchdogTrips    int64    `json:"watchdog_trips,omitempty"`
	Degraded         []string `json:"degraded,omitempty"`
	// Robust results only: the worst scenario and its power at Windows.
	WorstScenario string  `json:"worst_scenario,omitempty"`
	WorstPower    float64 `json:"worst_power,omitempty"`
	// WarmStarted marks a search seeded from a previous optimum for the
	// same network structure instead of the hop-count rule; Resumed marks
	// a run replayed from a crash checkpoint.
	WarmStarted bool `json:"warm_started,omitempty"`
	Resumed     bool `json:"resumed,omitempty"`
	// Partial marks a best-so-far answer returned at the job's deadline
	// rather than a converged optimum; Note carries the cause.
	Partial bool   `json:"partial,omitempty"`
	Note    string `json:"note,omitempty"`
}

// Record is a job's durable journal entry: everything a restarted daemon
// needs to list, resume, or report the job. Records are written with the
// same temp+fsync+rename+dirsync protocol as pattern checkpoints, so a
// crash at any instant leaves the previous complete record or the new one.
type Record struct {
	ID    string          `json:"id"`
	State State           `json:"state"`
	Spec  json.RawMessage `json:"spec"`
	// Start pins the resolved initial window vector (warm start or
	// explicit) at admission time: resumes must present the identical
	// vector or the checkpoint's model hash will not match.
	Start []int `json:"start,omitempty"`
	// WarmStart marks Start as coming from the warm-start index rather
	// than the submitted spec.
	WarmStart bool `json:"warm_start,omitempty"`
	// Attempts counts started attempts (including the current one).
	Attempts int        `json:"attempts,omitempty"`
	Retries  []Retry    `json:"retries,omitempty"`
	Created  time.Time  `json:"created"`
	Updated  time.Time  `json:"updated"`
	Result   *JobResult `json:"result,omitempty"`
	Error    string     `json:"error,omitempty"`
}

const (
	recordSuffix     = ".job"
	checkpointSuffix = ".ckpt"
	shardDirSuffix   = ".shard"
)

// Journal is the spool-directory job journal. Each job owns two files:
// <id>.job (the fsynced record) and <id>.ckpt (+.ckpt.delta), the
// pattern-search checkpoint written by the running search itself.
type Journal struct {
	dir string
}

// OpenJournal opens (creating if needed) the spool directory.
func OpenJournal(dir string) (*Journal, error) {
	if dir == "" {
		return nil, fmt.Errorf("service: empty spool directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("service: spool directory: %w", err)
	}
	return &Journal{dir: dir}, nil
}

// Dir returns the spool directory.
func (j *Journal) Dir() string { return j.dir }

// RecordPath returns the journal file of a job id.
func (j *Journal) RecordPath(id string) string {
	return filepath.Join(j.dir, id+recordSuffix)
}

// CheckpointPath returns the search checkpoint file of a job id.
func (j *Journal) CheckpointPath(id string) string {
	return filepath.Join(j.dir, id+checkpointSuffix)
}

// ShardDir returns the coordinator spool of a kind:"shard" job —
// manifest, leases, slab checkpoints and results — kept next to the
// job record so restarts resume it. The journal scan skips directories,
// so spools never masquerade as records.
func (j *Journal) ShardDir(id string) string {
	return filepath.Join(j.dir, id+shardDirSuffix)
}

// Write persists the record durably: temp file, fsync, rename, directory
// sync — a crash immediately after Write cannot lose the record.
func (j *Journal) Write(r *Record) error {
	r.Updated = time.Now().UTC()
	data, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("service: marshal job record: %w", err)
	}
	path := j.RecordPath(r.ID)
	tmp, err := os.CreateTemp(j.dir, "."+r.ID+".tmp-*")
	if err != nil {
		return fmt.Errorf("service: job record temp file: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		return cleanup(fmt.Errorf("service: write job record: %w", err))
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(fmt.Errorf("service: sync job record: %w", err))
	}
	if err := tmp.Close(); err != nil {
		return cleanup(fmt.Errorf("service: close job record: %w", err))
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("service: publish job record: %w", err)
	}
	if err := pattern.SyncDir(j.dir); err != nil {
		return fmt.Errorf("service: sync spool directory: %w", err)
	}
	return nil
}

// Load reads and decodes one job record.
func (j *Journal) Load(id string) (*Record, error) {
	data, err := os.ReadFile(j.RecordPath(id))
	if err != nil {
		return nil, err
	}
	var r Record
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("service: job record %s: %w", id, err)
	}
	if r.ID != id {
		return nil, fmt.Errorf("service: job record %s names id %q", id, r.ID)
	}
	return &r, nil
}

// Scan lists every readable job record in the spool, oldest first.
// Unreadable records are returned in bad (by file name) rather than
// aborting the scan: one corrupt record must not take the daemon down
// with every healthy job it still holds.
func (j *Journal) Scan() (records []*Record, bad []string, err error) {
	entries, err := os.ReadDir(j.dir)
	if err != nil {
		return nil, nil, fmt.Errorf("service: scanning spool: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, recordSuffix) || strings.HasPrefix(name, ".") {
			continue
		}
		id := strings.TrimSuffix(name, recordSuffix)
		r, lerr := j.Load(id)
		if lerr != nil {
			bad = append(bad, name)
			continue
		}
		records = append(records, r)
	}
	sort.Slice(records, func(a, b int) bool {
		if !records[a].Created.Equal(records[b].Created) {
			return records[a].Created.Before(records[b].Created)
		}
		return records[a].ID < records[b].ID
	})
	return records, bad, nil
}

// RetireCheckpoint removes a finished job's resumable state — the
// search checkpoint with its delta sidecar, and a shard job's
// coordinator spool; the journal record (with its result) remains.
// Best-effort: leftovers are ignored by every later run (terminal jobs
// never resume).
func (j *Journal) RetireCheckpoint(id string) {
	os.Remove(j.CheckpointPath(id))
	os.Remove(j.CheckpointPath(id) + ".delta")
	os.RemoveAll(j.ShardDir(id))
}
