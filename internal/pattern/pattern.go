// Package pattern implements the Hooke–Jeeves pattern search (Ch. 4 §4.3)
// on integer lattices — the direct-search engine inside WINDIM — plus an
// exhaustive box search used to probe global optimality on small problems
// (the thesis does this for Fig. 4.9).
//
// The search alternates exploratory moves (perturb one coordinate at a
// time by the current step) and pattern moves (repeat the combined
// successful move, doubling along established ridges), halving the step
// when exploration fails, exactly as in the thesis's APL WINDIM program —
// including its FLOC/FSTR evaluation cache, realised here as a map from
// lattice points to objective values.
package pattern

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"sync"

	"repro/internal/numeric"
)

// Objective evaluates the function to MINIMISE at an integer point.
// Returning an error aborts the search.
type Objective func(x numeric.IntVector) (float64, error)

// Options configures the search. The zero value searches with unit
// initial steps, lower bound 1 in every dimension (windows are at least
// one message), no upper bound, and KMAX = 2 step halvings.
type Options struct {
	// InitialStep gives per-dimension starting steps (>= 1). Nil means
	// all ones.
	InitialStep numeric.IntVector
	// Lo is the per-dimension lower bound (inclusive). Nil means all
	// ones.
	Lo numeric.IntVector
	// Hi is the per-dimension upper bound (inclusive). Nil means
	// unbounded above.
	Hi numeric.IntVector
	// MaxHalvings is the KMAX of the APL program: the search ends after
	// this many step reductions fail to make progress. < 0 means 0;
	// 0 is interpreted as the default 2.
	MaxHalvings int
	// MaxEvaluations bounds objective calls (cache hits excluded);
	// <= 0 means 100000. Under speculative exploration (Workers > 1) the
	// bound applies to the committed serial trajectory: discarded
	// speculative probes call the objective without consuming budget.
	MaxEvaluations int
	// Workers > 1 enables speculative-parallel exploration: the up-to-2R
	// exploratory probes of each pass are evaluated concurrently by at
	// most Workers goroutines, then acceptance decisions replay in exact
	// serial order against the speculative results. The objective must be
	// safe for concurrent calls and a pure function of its argument; in
	// return the search trajectory — Best, BestValue, BasePoints,
	// Evaluations, CacheHits, and the memo-cache contents — is
	// bit-identical to the serial search. Probes the serial order never
	// reaches are wasted objective calls (the price of speculation); their
	// values, and any errors they return, are discarded. <= 1 is serial.
	Workers int
	// OnCommit, when non-nil, is invoked serially each time the search
	// commits a new base point (including the clamped start point), with a
	// private copy of the point and its objective value. All speculative
	// evaluations of the enclosing pass have completed by the time it
	// runs, so the callback may safely mutate state the objective reads —
	// core.Engine promotes its warm-start seed here.
	OnCommit func(x numeric.IntVector, fx float64)
	// Context, when non-nil, makes the search cancellable: it is polled
	// before every objective evaluation, and on cancellation Search
	// returns the BEST-SO-FAR result (current base point, its value, the
	// trace accumulated so far) together with a non-nil error wrapping
	// ctx.Err(). A long dimensioning run under a deadline therefore
	// degrades to "the best windows found in the time allowed" instead of
	// nothing. nil means never cancelled.
	Context context.Context
	// Checkpoint, when non-nil, enables durable checkpoints: a snapshot of
	// the search state is written atomically to Checkpoint.Path on the
	// configured commit cadence, at cancellation, and at termination.
	// Snapshots are taken only at commit points — after the pass barrier —
	// so they never observe a partially evaluated pass.
	Checkpoint *CheckpointOptions
	// Resume, when non-nil, preloads the memo cache from a checkpoint
	// before the search starts. The search still runs from its start
	// point; the previously explored trajectory replays out of the cache
	// without objective calls (OnCommit still fires along it, rebuilding
	// warm-start state), so the result is bit-identical to an
	// uninterrupted run at any worker count. The checkpoint's dimension
	// must match the start point; validating ModelHash against the current
	// model is the caller's job (core does it).
	Resume *Checkpoint
}

func (o Options) withDefaults(dim int) (Options, error) {
	if o.InitialStep == nil {
		o.InitialStep = numeric.NewIntVector(dim)
		for i := range o.InitialStep {
			o.InitialStep[i] = 1
		}
	}
	if o.Lo == nil {
		o.Lo = numeric.NewIntVector(dim)
		for i := range o.Lo {
			o.Lo[i] = 1
		}
	}
	if len(o.InitialStep) != dim || len(o.Lo) != dim || (o.Hi != nil && len(o.Hi) != dim) {
		return o, fmt.Errorf("pattern: option dimensions do not match start point dimension %d", dim)
	}
	for i, s := range o.InitialStep {
		if s < 1 {
			return o, fmt.Errorf("pattern: initial step %d at dimension %d; need >= 1", s, i)
		}
	}
	if o.Hi != nil {
		for i := range o.Hi {
			if o.Hi[i] < o.Lo[i] {
				return o, fmt.Errorf("pattern: empty box at dimension %d: [%d, %d]", i, o.Lo[i], o.Hi[i])
			}
		}
	}
	if o.MaxHalvings == 0 {
		o.MaxHalvings = 2
	} else if o.MaxHalvings < 0 {
		o.MaxHalvings = 0
	}
	if o.MaxEvaluations <= 0 {
		o.MaxEvaluations = 100000
	}
	return o, nil
}

// Result reports the search outcome.
type Result struct {
	// Best is the best point found.
	Best numeric.IntVector
	// BestValue is the objective at Best.
	BestValue float64
	// Evaluations counts real objective calls.
	Evaluations int
	// CacheHits counts evaluations answered from the memo table.
	CacheHits int
	// BasePoints traces the accepted base points, starting with the
	// (clamped) start point.
	BasePoints []numeric.IntVector
}

// ErrBudget is wrapped in the error returned when MaxEvaluations is
// exhausted before the search terminates.
var ErrBudget = errors.New("pattern: evaluation budget exhausted")

type searcher struct {
	obj    Objective
	opts   Options
	cache  map[string]float64
	result *Result
	sem    chan struct{} // nil when serial; bounds speculative goroutines

	// Snapshot state for checkpointing, maintained by Search's main loop.
	ckpt     *CheckpointOptions
	start    numeric.IntVector
	base     numeric.IntVector
	fBase    float64
	step     numeric.IntVector
	halvings int
	commits  int
	doneOK   bool // set when the search terminated normally

	// Delta-checkpoint state (ckpt.FullEvery > 1): cache entries learned
	// since the last durable write, the open sidecar handle, and the count
	// of durable writes (used to space full snapshots).
	pending  map[string]JSONFloat
	delta    *os.File
	durables int
}

// future is one speculative objective evaluation in flight.
type future struct {
	done chan struct{}
	v    float64
	err  error
}

// speculation holds the in-flight exploratory probes of one pass.
type speculation struct {
	futures map[string]*future
	wg      sync.WaitGroup
}

// wait blocks until every speculative goroutine of the pass has finished,
// consumed or not. explore defers it so that no objective call is in
// flight when the pass returns — the barrier OnCommit's contract (and
// core.Engine's warm-seed promotion) relies on.
func (sp *speculation) wait() {
	if sp != nil {
		sp.wg.Wait()
	}
}

// inBox reports whether x lies inside the [Lo, Hi] search box.
func (s *searcher) inBox(x numeric.IntVector) bool {
	for i := range x {
		if x[i] < s.opts.Lo[i] || (s.opts.Hi != nil && x[i] > s.opts.Hi[i]) {
			return false
		}
	}
	return true
}

// speculate launches the up-to-2R exploratory probes about x concurrently.
// Points outside the box or already memoised are skipped — the serial
// replay answers those without calling the objective. The WHOLE probe is
// box-checked, not just the perturbed coordinate: a pattern-move base can
// itself sit outside the box, and its out-of-box neighbours must never
// reach the objective — the serial replay answers them +Inf, and an
// objective with side effects on failure (scenario degradation in
// core.DimensionRobust) must not observe points the serial search would
// never feed it.
func (s *searcher) speculate(x numeric.IntVector, step numeric.IntVector) *speculation {
	sp := &speculation{futures: make(map[string]*future, 2*len(x))}
	for i := range x {
		for _, dir := range [2]int{1, -1} {
			p := x.Clone()
			p[i] += dir * step[i]
			if !s.inBox(p) {
				continue
			}
			key := p.Key()
			if _, ok := s.cache[key]; ok {
				continue
			}
			if _, ok := sp.futures[key]; ok {
				continue
			}
			f := &future{done: make(chan struct{})}
			sp.futures[key] = f
			sp.wg.Add(1)
			go func(p numeric.IntVector, f *future) {
				defer sp.wg.Done()
				defer close(f.done)
				s.sem <- struct{}{}
				defer func() { <-s.sem }()
				f.v, f.err = s.obj(p)
			}(p, f)
		}
	}
	return sp
}

// eval returns the (memoised) objective at x; out-of-box points are +Inf
// and never reach the objective. When sp carries a speculative result for
// x it is consumed in place of a fresh objective call; budget accounting
// and cache insertion happen exactly as in the serial search.
func (s *searcher) eval(x numeric.IntVector, sp *speculation) (float64, error) {
	if ctx := s.opts.Context; ctx != nil {
		if err := ctx.Err(); err != nil {
			return 0, fmt.Errorf("pattern: search cancelled: %w", err)
		}
	}
	if !s.inBox(x) {
		return math.Inf(1), nil
	}
	key := x.Key()
	if v, ok := s.cache[key]; ok {
		s.result.CacheHits++
		return v, nil
	}
	if s.result.Evaluations >= s.opts.MaxEvaluations {
		return 0, fmt.Errorf("%w (%d evaluations)", ErrBudget, s.result.Evaluations)
	}
	s.result.Evaluations++
	var v float64
	var err error
	if sp != nil {
		if f, ok := sp.futures[key]; ok {
			<-f.done
			v, err = f.v, f.err
		} else {
			v, err = s.obj(x.Clone())
		}
	} else {
		v, err = s.obj(x.Clone())
	}
	if err != nil {
		return 0, err
	}
	if math.IsNaN(v) {
		v = math.Inf(1)
	}
	s.cache[key] = v
	if s.pending != nil {
		s.pending[key] = JSONFloat(v)
	}
	return v, nil
}

// commit records a newly accepted base point, notifies OnCommit and, on
// the configured cadence, writes a checkpoint. The write follows OnCommit
// so the snapshot's Aux callback sees the caller's post-commit state.
func (s *searcher) commit(x numeric.IntVector, fx float64) error {
	s.base = x
	s.fBase = fx
	s.commits++
	s.result.BasePoints = append(s.result.BasePoints, x.Clone())
	if s.opts.OnCommit != nil {
		s.opts.OnCommit(x.Clone(), fx)
	}
	return s.writeCheckpoint(false)
}

// explore performs one exploratory pass about x (value fx): each
// coordinate in turn is increased then decreased by its step, keeping any
// strict improvement. It returns the final point and value. With Workers
// > 1 the pass's probes are evaluated speculatively in parallel first;
// the serial loop below then replays acceptance decisions against the
// speculative results, so the trajectory is identical to the serial pass.
func (s *searcher) explore(x numeric.IntVector, fx float64, step numeric.IntVector) (numeric.IntVector, float64, error) {
	var sp *speculation
	if s.sem != nil {
		sp = s.speculate(x, step)
		defer sp.wait()
	}
	cur := x.Clone()
	for i := range cur {
		orig := cur[i]
		cur[i] = orig + step[i]
		fp, err := s.eval(cur, sp)
		if err != nil {
			return nil, 0, err
		}
		if fp < fx {
			fx = fp
			continue
		}
		cur[i] = orig - step[i]
		fm, err := s.eval(cur, sp)
		if err != nil {
			return nil, 0, err
		}
		if fm < fx {
			fx = fm
			continue
		}
		cur[i] = orig
	}
	return cur, fx, nil
}

// Search minimises the objective starting from start.
func Search(obj Objective, start numeric.IntVector, opts Options) (*Result, error) {
	if obj == nil {
		return nil, errors.New("pattern: nil objective")
	}
	if len(start) == 0 {
		return nil, errors.New("pattern: empty start point")
	}
	opts, err := opts.withDefaults(len(start))
	if err != nil {
		return nil, err
	}
	s := &searcher{obj: obj, opts: opts, cache: make(map[string]float64), result: &Result{}, ckpt: opts.Checkpoint}
	if s.ckpt != nil && s.ckpt.FullEvery > 1 {
		s.pending = make(map[string]JSONFloat)
	}
	defer s.closeDelta()
	if opts.Workers > 1 {
		s.sem = make(chan struct{}, opts.Workers)
	}
	if rc := opts.Resume; rc != nil {
		if rc.Dim != len(start) {
			return nil, fmt.Errorf("pattern: resume checkpoint dimension %d does not match start dimension %d", rc.Dim, len(start))
		}
		// Preload the memo cache; the replayed trajectory is answered from
		// it without objective calls.
		for k, v := range rc.Visited {
			s.cache[k] = float64(v)
		}
	}

	// Clamp the start into the box.
	base := start.Clone()
	for i := range base {
		if base[i] < opts.Lo[i] {
			base[i] = opts.Lo[i]
		}
		if opts.Hi != nil && base[i] > opts.Hi[i] {
			base[i] = opts.Hi[i]
		}
	}
	s.start = base.Clone()
	fBase, err := s.eval(base, nil)
	if err != nil {
		return nil, err
	}
	if math.IsInf(fBase, 1) {
		return nil, errors.New("pattern: objective is +Inf at the start point")
	}
	s.step = opts.InitialStep.Clone()
	if err := s.commit(base, fBase); err != nil {
		// A checkpoint path that cannot be written is a configuration
		// error; failing fast beats discovering it at the first crash.
		return nil, err
	}

	// fail maps an error out of the search loop. Cancellation degrades to
	// the best-so-far result — the committed base point is always a fully
	// evaluated, feasible setting — while every other error (a broken
	// objective, an exhausted budget) aborts with no result, as before.
	fail := func(err error) (*Result, error) {
		if ctx := s.opts.Context; ctx != nil && ctx.Err() != nil {
			s.result.Best = base
			s.result.BestValue = fBase
			err = fmt.Errorf("pattern: search cancelled at best-so-far %v: %w", base, ctx.Err())
			// A final snapshot so a resumed run replays everything learned
			// up to the cancellation, not just up to the last cadence hit.
			if werr := s.writeCheckpoint(true); werr != nil {
				err = fmt.Errorf("%w (final checkpoint write failed: %v)", err, werr)
			}
			return s.result, err
		}
		return nil, err
	}

	for {
		cand, fCand, err := s.explore(base, fBase, s.step)
		if err != nil {
			return fail(err)
		}
		if fCand < fBase {
			// Pattern phase: repeat the combined move, exploring about
			// each projected point (Fig. 4.3/4.4).
			prev := base
			base, fBase = cand, fCand
			if err := s.commit(base, fBase); err != nil {
				return fail(err)
			}
			for {
				probe := base.Clone()
				for i := range probe {
					probe[i] += base[i] - prev[i]
				}
				fProbe, err := s.eval(probe, nil)
				if err != nil {
					return fail(err)
				}
				cand2, fCand2, err := s.explore(probe, fProbe, s.step)
				if err != nil {
					return fail(err)
				}
				if fCand2 < fBase {
					prev = base
					base, fBase = cand2, fCand2
					if err := s.commit(base, fBase); err != nil {
						return fail(err)
					}
					continue
				}
				break
			}
			continue
		}
		// Exploration failed: halve the step (integer floor at 1) and
		// count the reduction, as the APL program's K counter does.
		if s.halvings >= opts.MaxHalvings {
			break
		}
		s.halvings++
		for i := range s.step {
			if s.step[i] > 1 {
				s.step[i] /= 2
			}
		}
	}
	s.result.Best = base
	s.result.BestValue = fBase
	s.base, s.fBase = base, fBase
	s.doneOK = true
	if err := s.writeCheckpoint(true); err != nil {
		return s.result, fmt.Errorf("pattern: search finished but final checkpoint write failed: %w", err)
	}
	return s.result, nil
}

// ExhaustiveParallel evaluates the objective at every point of the box
// [lo, hi] across the given number of worker goroutines and returns the
// minimiser (ties broken by lattice order, matching Exhaustive). The
// objective must be safe for concurrent use — the analytic evaluators in
// this repository are pure functions of their arguments, so WINDIM's
// objectives qualify. workers < 2 falls back to the serial Exhaustive.
func ExhaustiveParallel(obj Objective, lo, hi numeric.IntVector, maxPoints, workers int) (*Result, error) {
	return ExhaustiveParallelCtx(nil, obj, lo, hi, maxPoints, workers)
}

// ExhaustiveParallelCtx is ExhaustiveParallel with cancellation: ctx (nil
// = never cancelled) is polled while scanning, and on cancellation the
// best point among the evaluations that completed is returned together
// with a non-nil error wrapping ctx.Err() (or a nil Best if nothing
// finished).
func ExhaustiveParallelCtx(ctx context.Context, obj Objective, lo, hi numeric.IntVector, maxPoints, workers int) (*Result, error) {
	if workers < 2 {
		return ExhaustiveCtx(ctx, obj, lo, hi, maxPoints)
	}
	if obj == nil {
		return nil, errors.New("pattern: nil objective")
	}
	if len(lo) == 0 || len(lo) != len(hi) {
		return nil, fmt.Errorf("pattern: box dimensions %d vs %d", len(lo), len(hi))
	}
	if maxPoints <= 0 {
		maxPoints = 1 << 20
	}
	span := numeric.NewIntVector(len(lo))
	for i := range lo {
		if hi[i] < lo[i] {
			return nil, fmt.Errorf("pattern: empty box at dimension %d", i)
		}
		span[i] = hi[i] - lo[i]
	}
	if _, err := numeric.LatticeSize(span, maxPoints); err != nil {
		return nil, fmt.Errorf("pattern: exhaustive box too large: %w", err)
	}
	var points []numeric.IntVector
	numeric.LatticeWalk(span, func(p numeric.IntVector) {
		x := p.Clone()
		for i := range x {
			x[i] += lo[i]
		}
		points = append(points, x)
	})

	type partial struct {
		best    numeric.IntVector
		bestVal float64
		bestIdx int
		done    int // points actually evaluated (for cancelled scans)
		err     error
	}
	if workers > len(points) {
		workers = len(points)
	}
	parts := make([]partial, workers)
	var wg sync.WaitGroup
	chunk := (len(points) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		start := w * chunk
		end := start + chunk
		if end > len(points) {
			end = len(points)
		}
		wg.Add(1)
		go func(w, start, end int) {
			defer wg.Done()
			p := &parts[w]
			p.bestVal = math.Inf(1)
			p.bestIdx = -1
			for i := start; i < end; i++ {
				if ctx != nil && ctx.Err() != nil {
					p.done = i - start
					return
				}
				v, err := obj(points[i])
				if err != nil {
					p.err = err
					return
				}
				if v < p.bestVal {
					p.bestVal = v
					p.best = points[i]
					p.bestIdx = i
				}
				p.done = i - start + 1
			}
		}(w, start, end)
	}
	wg.Wait()
	res := &Result{BestValue: math.Inf(1)}
	bestIdx := -1
	cancelled := ctx != nil && ctx.Err() != nil
	for w := range parts {
		if parts[w].err != nil && !cancelled {
			return nil, parts[w].err
		}
		res.Evaluations += parts[w].done
		// Strict improvement, or equal value at an earlier lattice index,
		// reproduces the serial tie-break.
		if parts[w].bestIdx >= 0 &&
			(parts[w].bestVal < res.BestValue ||
				(parts[w].bestVal == res.BestValue && parts[w].bestIdx < bestIdx)) {
			res.BestValue = parts[w].bestVal
			res.Best = parts[w].best
			bestIdx = parts[w].bestIdx
		}
	}
	if cancelled {
		if math.IsInf(res.BestValue, 1) {
			res.Best = nil
		}
		return res, fmt.Errorf("pattern: exhaustive scan cancelled after %d evaluations: %w", res.Evaluations, ctx.Err())
	}
	return res, nil
}

// Exhaustive evaluates the objective at every point of the box [lo, hi]
// and returns the minimiser. Intended for global-optimality probes on
// small boxes; the number of points is capped at maxPoints (<= 0 means
// 1e6).
func Exhaustive(obj Objective, lo, hi numeric.IntVector, maxPoints int) (*Result, error) {
	return ExhaustiveCtx(nil, obj, lo, hi, maxPoints)
}

// ExhaustiveCtx is Exhaustive with cancellation: ctx (nil = never
// cancelled) is polled before each evaluation, and on cancellation the
// best point found so far is returned together with a non-nil error
// wrapping ctx.Err() (a nil Best if nothing was evaluated).
func ExhaustiveCtx(ctx context.Context, obj Objective, lo, hi numeric.IntVector, maxPoints int) (*Result, error) {
	if obj == nil {
		return nil, errors.New("pattern: nil objective")
	}
	if len(lo) == 0 || len(lo) != len(hi) {
		return nil, fmt.Errorf("pattern: box dimensions %d vs %d", len(lo), len(hi))
	}
	if maxPoints <= 0 {
		maxPoints = 1 << 20
	}
	span := numeric.NewIntVector(len(lo))
	for i := range lo {
		if hi[i] < lo[i] {
			return nil, fmt.Errorf("pattern: empty box at dimension %d", i)
		}
		span[i] = hi[i] - lo[i]
	}
	if _, err := numeric.LatticeSize(span, maxPoints); err != nil {
		return nil, fmt.Errorf("pattern: exhaustive box too large: %w", err)
	}
	res := &Result{BestValue: math.Inf(1)}
	var firstErr error
	cancelled := false
	numeric.LatticeWalkUntil(span, func(p numeric.IntVector) bool {
		if ctx != nil && ctx.Err() != nil {
			cancelled = true
			return false
		}
		x := p.Clone()
		for i := range x {
			x[i] += lo[i]
		}
		res.Evaluations++
		v, err := obj(x)
		if err != nil {
			firstErr = err
			return false
		}
		if v < res.BestValue {
			res.BestValue = v
			res.Best = x
		}
		return true
	})
	if cancelled {
		return res, fmt.Errorf("pattern: exhaustive scan cancelled after %d evaluations: %w", res.Evaluations, ctx.Err())
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return res, nil
}
