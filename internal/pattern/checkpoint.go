package pattern

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// CheckpointVersion is the format version this package writes; Load
// rejects files written by a different (future) version rather than
// guessing at their semantics.
const CheckpointVersion = 1

// checkpointKind tags the file so other tools (and humans) can tell what
// produced it.
const checkpointKind = "pattern-search"

// JSONFloat is a float64 whose JSON form round-trips bit-exactly,
// including the non-finite values encoding/json rejects: finite values use
// the shortest decimal that parses back to the same bits, ±Inf and NaN are
// encoded as the strings "+Inf", "-Inf" and "NaN". The memo cache stores
// +Inf for infeasible candidates, so checkpoints need the full range.
type JSONFloat float64

// MarshalJSON implements json.Marshaler.
func (f JSONFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	switch {
	case math.IsInf(v, 1):
		return []byte(`"+Inf"`), nil
	case math.IsInf(v, -1):
		return []byte(`"-Inf"`), nil
	case math.IsNaN(v):
		return []byte(`"NaN"`), nil
	}
	return strconv.AppendFloat(nil, v, 'g', -1, 64), nil
}

// UnmarshalJSON implements json.Unmarshaler.
func (f *JSONFloat) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		switch s {
		case "+Inf", "Inf":
			*f = JSONFloat(math.Inf(1))
		case "-Inf":
			*f = JSONFloat(math.Inf(-1))
		case "NaN":
			*f = JSONFloat(math.NaN())
		default:
			return fmt.Errorf("pattern: invalid float string %q in checkpoint", s)
		}
		return nil
	}
	v, err := strconv.ParseFloat(string(b), 64)
	if err != nil {
		return fmt.Errorf("pattern: invalid float %q in checkpoint", b)
	}
	*f = JSONFloat(v)
	return nil
}

// Checkpoint is the durable state of a pattern search: a versioned,
// self-describing snapshot written atomically on a commit cadence and fed
// back through Options.Resume after a crash, kill or deadline.
//
// The load-bearing field is Visited — the full memo cache (FLOC/FSTR table)
// at snapshot time. Resume does not fast-forward to Best: it preloads the
// cache and lets the search REPLAY from its start point. Every decision of
// the replayed trajectory is answered from the cache (no objective calls),
// so the search reaches the interruption frontier in memo-lookup time and
// then continues exactly as the uninterrupted run would have: warm-start
// engines re-commit along the identical base-point trajectory, rebuilding
// the exact solver seeds the frontier evaluations would have seen. The
// final Best/BestValue/BasePoints are therefore bit-identical to the
// uninterrupted run at any worker count. Best, Step and the counters are
// recorded for inspection and sanity checks, not for control flow.
type Checkpoint struct {
	Version   int    `json:"version"`
	Kind      string `json:"kind"`
	// ModelHash identifies the (network, options) pair the cached values
	// were computed for; resuming against a different model is rejected by
	// core before any stale value can poison a search.
	ModelHash string `json:"model_hash,omitempty"`
	// Dim is the dimension of the search lattice; every vector field and
	// every Visited key must agree with it.
	Dim int `json:"dim"`
	// Start is the (clamped) start point the recorded trajectory grew from.
	Start []int `json:"start,omitempty"`
	// Best/BestValue are the base point and objective at snapshot time.
	Best      []int     `json:"best,omitempty"`
	BestValue JSONFloat `json:"best_value,omitempty"`
	// Step and Halvings are the pattern-search step state at snapshot time.
	Step     []int `json:"step,omitempty"`
	Halvings int   `json:"halvings,omitempty"`
	// Commits and Evaluations count committed base points and real
	// objective calls of the run that wrote the snapshot.
	Commits     int `json:"commits,omitempty"`
	Evaluations int `json:"evaluations,omitempty"`
	// Done marks a checkpoint written at normal termination: resuming from
	// it replays to the final answer without any objective calls.
	Done bool `json:"done,omitempty"`
	// Visited is the memoised objective cache, keyed by
	// numeric.IntVector.Key() ("w1,w2,...").
	Visited map[string]JSONFloat `json:"visited"`
	// Aux carries caller state verbatim (core stores per-scenario
	// degradation progress for DimensionRobust here).
	Aux json.RawMessage `json:"aux,omitempty"`
}

// CheckpointOptions configures durable checkpointing of a Search run.
type CheckpointOptions struct {
	// Path is the checkpoint file; writes go to a temp file in the same
	// directory followed by an atomic rename, so a reader (or a resumed
	// run) never observes a partially written checkpoint.
	Path string
	// Every is the commit cadence: a snapshot is written every Every-th
	// committed base point (<= 0 means every commit). Termination and
	// cancellation always write a final snapshot regardless of cadence.
	Every int
	// ModelHash is stamped into every snapshot (see Checkpoint.ModelHash).
	ModelHash string
	// Aux, when non-nil, is called at snapshot time (serially, never
	// concurrent with objective evaluations) to capture caller state.
	Aux func() json.RawMessage
}

// LoadCheckpoint reads and validates a checkpoint file.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cp, err := ParseCheckpoint(data)
	if err != nil {
		return nil, fmt.Errorf("pattern: checkpoint %s: %w", path, err)
	}
	return cp, nil
}

// ParseCheckpoint decodes a checkpoint and validates its internal
// consistency (version, kind, dimensions, key syntax). Malformed input of
// any shape returns an error, never a panic: checkpoints may come from
// disk written by older binaries or truncated by failed copies.
func ParseCheckpoint(data []byte) (*Checkpoint, error) {
	var cp Checkpoint
	if err := json.Unmarshal(data, &cp); err != nil {
		return nil, fmt.Errorf("parsing checkpoint: %w", err)
	}
	if cp.Version != CheckpointVersion {
		return nil, fmt.Errorf("unsupported checkpoint version %d (this binary writes %d)", cp.Version, CheckpointVersion)
	}
	if cp.Kind != checkpointKind {
		return nil, fmt.Errorf("checkpoint kind %q is not %q", cp.Kind, checkpointKind)
	}
	if cp.Dim < 1 {
		return nil, fmt.Errorf("checkpoint dimension %d; need >= 1", cp.Dim)
	}
	for _, v := range [][]int{cp.Start, cp.Best, cp.Step} {
		if v != nil && len(v) != cp.Dim {
			return nil, fmt.Errorf("checkpoint vector length %d does not match dimension %d", len(v), cp.Dim)
		}
	}
	for k := range cp.Visited {
		if !validPointKey(k, cp.Dim) {
			return nil, fmt.Errorf("checkpoint visited key %q is not a %d-dimensional lattice point", k, cp.Dim)
		}
	}
	return &cp, nil
}

// validPointKey reports whether k is a well-formed IntVector.Key() of the
// given dimension.
func validPointKey(k string, dim int) bool {
	parts := strings.Split(k, ",")
	if len(parts) != dim {
		return false
	}
	for _, p := range parts {
		if _, err := strconv.Atoi(p); err != nil {
			return false
		}
	}
	return true
}

// Save writes the checkpoint atomically: marshal, write to a temp file in
// the destination directory, fsync, rename. A crash at any instant leaves
// either the previous complete checkpoint or the new complete one on disk
// — never a torn file.
func (cp *Checkpoint) Save(path string) error {
	data, err := json.Marshal(cp)
	if err != nil {
		return fmt.Errorf("pattern: marshal checkpoint: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("pattern: checkpoint temp file: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		return cleanup(fmt.Errorf("pattern: write checkpoint: %w", err))
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(fmt.Errorf("pattern: sync checkpoint: %w", err))
	}
	if err := tmp.Close(); err != nil {
		return cleanup(fmt.Errorf("pattern: close checkpoint: %w", err))
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("pattern: publish checkpoint: %w", err)
	}
	return nil
}

// snapshot builds the current checkpoint state. Called only from commit
// points and termination, where the pass barrier guarantees no objective
// evaluation (and hence no cache mutation) is in flight.
func (s *searcher) snapshot(done bool) *Checkpoint {
	cp := &Checkpoint{
		Version:     CheckpointVersion,
		Kind:        checkpointKind,
		ModelHash:   s.ckpt.ModelHash,
		Dim:         len(s.start),
		Start:       append([]int(nil), s.start...),
		Best:        append([]int(nil), s.base...),
		BestValue:   JSONFloat(s.fBase),
		Step:        append([]int(nil), s.step...),
		Halvings:    s.halvings,
		Commits:     s.commits,
		Evaluations: s.result.Evaluations,
		Done:        done,
		Visited:     make(map[string]JSONFloat, len(s.cache)),
	}
	for k, v := range s.cache {
		cp.Visited[k] = JSONFloat(v)
	}
	if s.ckpt.Aux != nil {
		cp.Aux = s.ckpt.Aux()
	}
	return cp
}

// writeCheckpoint persists the current state when checkpointing is
// configured; final (termination/cancellation) writes ignore the cadence.
func (s *searcher) writeCheckpoint(final bool) error {
	if s.ckpt == nil {
		return nil
	}
	every := s.ckpt.Every
	if every <= 0 {
		every = 1
	}
	if !final && s.commits%every != 0 {
		return nil
	}
	return s.snapshot(final && s.doneOK).Save(s.ckpt.Path)
}
