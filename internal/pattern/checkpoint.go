package pattern

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// CheckpointVersion is the format version this package writes; Load
// rejects files written by a different (future) version rather than
// guessing at their semantics.
const CheckpointVersion = 1

// checkpointKind tags the file so other tools (and humans) can tell what
// produced it.
const checkpointKind = "pattern-search"

// deltaKind tags the append-only sidecar holding incremental records
// between full snapshots; deltaSuffix is appended to CheckpointOptions.Path
// to name it.
const (
	deltaKind   = "pattern-search-delta"
	deltaSuffix = ".delta"
)

// JSONFloat is a float64 whose JSON form round-trips bit-exactly,
// including the non-finite values encoding/json rejects: finite values use
// the shortest decimal that parses back to the same bits, ±Inf and NaN are
// encoded as the strings "+Inf", "-Inf" and "NaN". The memo cache stores
// +Inf for infeasible candidates, so checkpoints need the full range.
type JSONFloat float64

// MarshalJSON implements json.Marshaler.
func (f JSONFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	switch {
	case math.IsInf(v, 1):
		return []byte(`"+Inf"`), nil
	case math.IsInf(v, -1):
		return []byte(`"-Inf"`), nil
	case math.IsNaN(v):
		return []byte(`"NaN"`), nil
	}
	return strconv.AppendFloat(nil, v, 'g', -1, 64), nil
}

// UnmarshalJSON implements json.Unmarshaler.
func (f *JSONFloat) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		switch s {
		case "+Inf", "Inf":
			*f = JSONFloat(math.Inf(1))
		case "-Inf":
			*f = JSONFloat(math.Inf(-1))
		case "NaN":
			*f = JSONFloat(math.NaN())
		default:
			return fmt.Errorf("pattern: invalid float string %q in checkpoint", s)
		}
		return nil
	}
	v, err := strconv.ParseFloat(string(b), 64)
	if err != nil {
		return fmt.Errorf("pattern: invalid float %q in checkpoint", b)
	}
	*f = JSONFloat(v)
	return nil
}

// Checkpoint is the durable state of a pattern search: a versioned,
// self-describing snapshot written atomically on a commit cadence and fed
// back through Options.Resume after a crash, kill or deadline.
//
// The load-bearing field is Visited — the full memo cache (FLOC/FSTR table)
// at snapshot time. Resume does not fast-forward to Best: it preloads the
// cache and lets the search REPLAY from its start point. Every decision of
// the replayed trajectory is answered from the cache (no objective calls),
// so the search reaches the interruption frontier in memo-lookup time and
// then continues exactly as the uninterrupted run would have: warm-start
// engines re-commit along the identical base-point trajectory, rebuilding
// the exact solver seeds the frontier evaluations would have seen. The
// final Best/BestValue/BasePoints are therefore bit-identical to the
// uninterrupted run at any worker count. Best, Step and the counters are
// recorded for inspection and sanity checks, not for control flow.
type Checkpoint struct {
	Version int    `json:"version"`
	Kind    string `json:"kind"`
	// ModelHash identifies the (network, options) pair the cached values
	// were computed for; resuming against a different model is rejected by
	// core before any stale value can poison a search.
	ModelHash string `json:"model_hash,omitempty"`
	// Dim is the dimension of the search lattice; every vector field and
	// every Visited key must agree with it.
	Dim int `json:"dim"`
	// Start is the (clamped) start point the recorded trajectory grew from.
	Start []int `json:"start,omitempty"`
	// Best/BestValue are the base point and objective at snapshot time.
	Best      []int     `json:"best,omitempty"`
	BestValue JSONFloat `json:"best_value,omitempty"`
	// Step and Halvings are the pattern-search step state at snapshot time.
	Step     []int `json:"step,omitempty"`
	Halvings int   `json:"halvings,omitempty"`
	// Commits and Evaluations count committed base points and real
	// objective calls of the run that wrote the snapshot.
	Commits     int `json:"commits,omitempty"`
	Evaluations int `json:"evaluations,omitempty"`
	// Done marks a checkpoint written at normal termination: resuming from
	// it replays to the final answer without any objective calls.
	Done bool `json:"done,omitempty"`
	// Visited is the memoised objective cache, keyed by
	// numeric.IntVector.Key() ("w1,w2,...").
	Visited map[string]JSONFloat `json:"visited"`
	// Aux carries caller state verbatim (core stores per-scenario
	// degradation progress for DimensionRobust here).
	Aux json.RawMessage `json:"aux,omitempty"`
}

// CheckpointOptions configures durable checkpointing of a Search run.
type CheckpointOptions struct {
	// Path is the checkpoint file; writes go to a temp file in the same
	// directory followed by an atomic rename, so a reader (or a resumed
	// run) never observes a partially written checkpoint.
	Path string
	// Every is the commit cadence: a snapshot is written every Every-th
	// committed base point (<= 0 means every commit). Termination and
	// cancellation always write a final snapshot regardless of cadence.
	Every int
	// ModelHash is stamped into every snapshot (see Checkpoint.ModelHash).
	ModelHash string
	// FullEvery spaces FULL snapshots among the durable writes: every
	// FullEvery-th durable write re-serialises the whole state; the writes
	// between append one compact delta record — only the memo-cache entries
	// learned since the previous durable write — to the sidecar file
	// Path+".delta". A full snapshot costs O(|Visited|) per write, so a
	// per-commit cadence (Every = 1) on a long search rewrites an
	// ever-growing cache every commit; with deltas the same cadence costs
	// O(new entries), which is near-free. LoadCheckpoint replays snapshot +
	// sidecar transparently, so resume semantics are unchanged; a torn
	// final record (crash mid-append) is dropped, losing at most that one
	// delta. Termination and cancellation always write a full snapshot.
	// <= 1 means every durable write is a full snapshot and no sidecar is
	// kept (the historical behaviour).
	FullEvery int
	// Aux, when non-nil, is called at snapshot time (serially, never
	// concurrent with objective evaluations) to capture caller state.
	Aux func() json.RawMessage
}

// deltaHeader is the first line of a delta sidecar. BaseCommits ties the
// records to the full snapshot they extend: a sidecar whose BaseCommits
// does not equal the snapshot's Commits is stale (e.g. a crash landed
// between a snapshot rename and the sidecar reset) and is ignored whole.
type deltaHeader struct {
	Version     int    `json:"version"`
	Kind        string `json:"kind"`
	ModelHash   string `json:"model_hash,omitempty"`
	Dim         int    `json:"dim"`
	BaseCommits int    `json:"base_commits"`
}

// deltaRecord is one appended line: the state advance of a single durable
// write. Visited carries only the cache entries added since the previous
// durable write; the scalar fields mirror the snapshot's for inspection.
type deltaRecord struct {
	Commit      int                  `json:"commit"`
	Best        []int                `json:"best,omitempty"`
	BestValue   JSONFloat            `json:"best_value,omitempty"`
	Step        []int                `json:"step,omitempty"`
	Halvings    int                  `json:"halvings,omitempty"`
	Evaluations int                  `json:"evaluations,omitempty"`
	Visited     map[string]JSONFloat `json:"visited,omitempty"`
}

// LoadCheckpoint reads and validates a checkpoint file, then folds in any
// delta sidecar (path+".delta") written since the snapshot: records are
// replayed in append order, so the returned Checkpoint is equivalent to
// the full snapshot a FullEvery = 1 run would have written at the last
// durable write. A stale sidecar (left by a crash, or belonging to an
// older snapshot) is detected by its header and ignored.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cp, err := ParseCheckpoint(data)
	if err != nil {
		return nil, fmt.Errorf("pattern: checkpoint %s: %w", path, err)
	}
	if err := cp.mergeDeltas(path + deltaSuffix); err != nil {
		return nil, fmt.Errorf("pattern: checkpoint %s: %w", path, err)
	}
	return cp, nil
}

// mergeDeltas applies the sidecar at path to cp. A missing sidecar, a torn
// header, or a header that does not match cp (different model hash or base
// commit count — a stale file) leave cp untouched. A torn FINAL record is
// dropped: the append protocol fsyncs line by line, so only the last line
// can be incomplete; corruption anywhere earlier is a real error.
func (cp *Checkpoint) mergeDeltas(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("reading delta sidecar: %w", err)
	}
	lines := strings.Split(string(data), "\n")
	// A trailing newline (the normal case) yields one empty final element.
	for len(lines) > 0 && lines[len(lines)-1] == "" {
		lines = lines[:len(lines)-1]
	}
	if len(lines) == 0 {
		return nil
	}
	var hdr deltaHeader
	if err := json.Unmarshal([]byte(lines[0]), &hdr); err != nil {
		// Crash mid-header-write: the sidecar carries nothing yet.
		return nil
	}
	if hdr.Kind != deltaKind || hdr.Version != CheckpointVersion ||
		hdr.ModelHash != cp.ModelHash || hdr.BaseCommits != cp.Commits {
		return nil
	}
	if hdr.Dim != cp.Dim {
		return fmt.Errorf("delta sidecar dimension %d does not match snapshot dimension %d", hdr.Dim, cp.Dim)
	}
	if cp.Visited == nil {
		cp.Visited = make(map[string]JSONFloat)
	}
	for i, line := range lines[1:] {
		var rec deltaRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			if i == len(lines)-2 {
				return nil // torn final append — lose that one delta
			}
			return fmt.Errorf("delta record %d corrupt: %w", i+1, err)
		}
		for _, v := range [][]int{rec.Best, rec.Step} {
			if v != nil && len(v) != cp.Dim {
				return fmt.Errorf("delta record %d vector length %d does not match dimension %d", i+1, len(v), cp.Dim)
			}
		}
		for k, v := range rec.Visited {
			if !ValidPointKey(k, cp.Dim) {
				return fmt.Errorf("delta record %d visited key %q is not a %d-dimensional lattice point", i+1, k, cp.Dim)
			}
			cp.Visited[k] = v
		}
		if rec.Commit > cp.Commits {
			cp.Commits = rec.Commit
			if rec.Best != nil {
				cp.Best = rec.Best
			}
			cp.BestValue = rec.BestValue
			if rec.Step != nil {
				cp.Step = rec.Step
			}
			cp.Halvings = rec.Halvings
			cp.Evaluations = rec.Evaluations
		}
	}
	return nil
}

// ParseCheckpoint decodes a checkpoint and validates its internal
// consistency (version, kind, dimensions, key syntax). Malformed input of
// any shape returns an error, never a panic: checkpoints may come from
// disk written by older binaries or truncated by failed copies.
func ParseCheckpoint(data []byte) (*Checkpoint, error) {
	var cp Checkpoint
	if err := json.Unmarshal(data, &cp); err != nil {
		return nil, fmt.Errorf("parsing checkpoint: %w", err)
	}
	if cp.Version != CheckpointVersion {
		return nil, fmt.Errorf("unsupported checkpoint version %d (this binary writes %d)", cp.Version, CheckpointVersion)
	}
	if cp.Kind != checkpointKind {
		return nil, fmt.Errorf("checkpoint kind %q is not %q", cp.Kind, checkpointKind)
	}
	if cp.Dim < 1 {
		return nil, fmt.Errorf("checkpoint dimension %d; need >= 1", cp.Dim)
	}
	for _, v := range [][]int{cp.Start, cp.Best, cp.Step} {
		if v != nil && len(v) != cp.Dim {
			return nil, fmt.Errorf("checkpoint vector length %d does not match dimension %d", len(v), cp.Dim)
		}
	}
	for k := range cp.Visited {
		if !ValidPointKey(k, cp.Dim) {
			return nil, fmt.Errorf("checkpoint visited key %q is not a %d-dimensional lattice point", k, cp.Dim)
		}
	}
	return &cp, nil
}

// ValidPointKey reports whether k is a well-formed IntVector.Key() of the
// given dimension. Exported for the other durable wire formats built on
// point keys (the sharded search's slab checkpoints in internal/shard),
// so their parse hardening matches the checkpoint loader's.
func ValidPointKey(k string, dim int) bool {
	parts := strings.Split(k, ",")
	if len(parts) != dim {
		return false
	}
	for _, p := range parts {
		if _, err := strconv.Atoi(p); err != nil {
			return false
		}
	}
	return true
}

// Save writes the checkpoint atomically: marshal, write to a temp file in
// the destination directory, fsync, rename. A crash at any instant leaves
// either the previous complete checkpoint or the new complete one on disk
// — never a torn file.
func (cp *Checkpoint) Save(path string) error {
	data, err := json.Marshal(cp)
	if err != nil {
		return fmt.Errorf("pattern: marshal checkpoint: %w", err)
	}
	return WriteDurable(path, data)
}

// WriteDurable publishes data at path atomically and durably: write to a
// temp file in the destination directory, fsync, rename, fsync the
// directory. A crash at any instant leaves either the previous complete
// file or the new complete one on disk — never a torn write. Shared by
// every durable artifact in the repository that is replaced wholesale
// (checkpoints here, the sharded search's manifests and slab results).
func WriteDurable(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("pattern: durable temp file: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		return cleanup(fmt.Errorf("pattern: durable write: %w", err))
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(fmt.Errorf("pattern: durable sync: %w", err))
	}
	if err := tmp.Close(); err != nil {
		return cleanup(fmt.Errorf("pattern: durable close: %w", err))
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("pattern: durable publish: %w", err)
	}
	// The rename is durable only once the directory entry is: without the
	// directory sync a crash immediately after the write can roll the file
	// back to the previous version — or, for a first write, to nothing.
	if err := SyncDir(dir); err != nil {
		return fmt.Errorf("pattern: sync durable directory: %w", err)
	}
	return nil
}

// SyncDir fsyncs a directory, making previously renamed or created entries
// in it durable. Shared with the windimd job journal, which uses the same
// temp+fsync+rename+dirsync protocol for its spool records.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// snapshot builds the current checkpoint state. Called only from commit
// points and termination, where the pass barrier guarantees no objective
// evaluation (and hence no cache mutation) is in flight.
func (s *searcher) snapshot(done bool) *Checkpoint {
	cp := &Checkpoint{
		Version:     CheckpointVersion,
		Kind:        checkpointKind,
		ModelHash:   s.ckpt.ModelHash,
		Dim:         len(s.start),
		Start:       append([]int(nil), s.start...),
		Best:        append([]int(nil), s.base...),
		BestValue:   JSONFloat(s.fBase),
		Step:        append([]int(nil), s.step...),
		Halvings:    s.halvings,
		Commits:     s.commits,
		Evaluations: s.result.Evaluations,
		Done:        done,
		Visited:     make(map[string]JSONFloat, len(s.cache)),
	}
	for k, v := range s.cache {
		cp.Visited[k] = JSONFloat(v)
	}
	if s.ckpt.Aux != nil {
		cp.Aux = s.ckpt.Aux()
	}
	return cp
}

// writeCheckpoint persists the current state when checkpointing is
// configured; final (termination/cancellation) writes ignore the cadence
// and always produce a full snapshot. Between full snapshots (FullEvery >
// 1), durable writes append delta records to the sidecar instead of
// re-serialising the whole memo cache.
func (s *searcher) writeCheckpoint(final bool) error {
	if s.ckpt == nil {
		return nil
	}
	every := s.ckpt.Every
	if every <= 0 {
		every = 1
	}
	if !final && s.commits%every != 0 {
		return nil
	}
	full := final || s.ckpt.FullEvery <= 1 || s.durables%s.ckpt.FullEvery == 0 || s.delta == nil
	s.durables++
	if full {
		return s.writeFull(final)
	}
	return s.appendDelta()
}

// writeFull writes a full snapshot and, in delta mode, resets the sidecar
// to extend the new snapshot (or removes it after the final write — a
// finished checkpoint needs no deltas). The snapshot rename lands before
// the sidecar reset, so a crash between the two leaves a sidecar whose
// BaseCommits no longer matches — mergeDeltas ignores it.
func (s *searcher) writeFull(final bool) error {
	if err := s.snapshot(final && s.doneOK).Save(s.ckpt.Path); err != nil {
		return err
	}
	if s.pending == nil {
		return nil
	}
	clear(s.pending)
	if final {
		s.closeDelta()
		os.Remove(s.ckpt.Path + deltaSuffix) // best-effort: a stale leftover is ignored at load
		return nil
	}
	return s.resetDelta()
}

// resetDelta truncates (or creates) the sidecar and writes its header,
// keeping the file handle open for subsequent appends.
func (s *searcher) resetDelta() error {
	s.closeDelta()
	f, err := os.OpenFile(s.ckpt.Path+deltaSuffix, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("pattern: delta sidecar: %w", err)
	}
	hdr := deltaHeader{
		Version:     CheckpointVersion,
		Kind:        deltaKind,
		ModelHash:   s.ckpt.ModelHash,
		Dim:         len(s.start),
		BaseCommits: s.commits,
	}
	if err := appendLine(f, hdr); err != nil {
		f.Close()
		return fmt.Errorf("pattern: delta sidecar header: %w", err)
	}
	// Appends fsync the file, but a freshly created sidecar also needs its
	// directory entry made durable, or a crash loses the whole file.
	if err := SyncDir(filepath.Dir(s.ckpt.Path)); err != nil {
		f.Close()
		return fmt.Errorf("pattern: sync delta sidecar directory: %w", err)
	}
	s.delta = f
	return nil
}

// appendDelta appends one record carrying the cache entries learned since
// the previous durable write. A write with nothing new (every probe of the
// pass was a cache hit — the steady state of a resume replay) is skipped
// entirely: Visited is the load-bearing state, and the scalar fields are
// advisory.
func (s *searcher) appendDelta() error {
	if len(s.pending) == 0 {
		return nil
	}
	rec := deltaRecord{
		Commit:      s.commits,
		Best:        append([]int(nil), s.base...),
		BestValue:   JSONFloat(s.fBase),
		Step:        append([]int(nil), s.step...),
		Halvings:    s.halvings,
		Evaluations: s.result.Evaluations,
		Visited:     s.pending,
	}
	if err := appendLine(s.delta, rec); err != nil {
		return fmt.Errorf("pattern: delta append: %w", err)
	}
	clear(s.pending)
	return nil
}

// appendLine marshals v, appends it to f as one newline-terminated record
// and fsyncs, so every completed append survives a crash and only the
// in-flight final line can ever be torn.
func appendLine(f *os.File, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(data, '\n')); err != nil {
		return err
	}
	return f.Sync()
}

// closeDelta releases the sidecar handle; safe to call at any time.
func (s *searcher) closeDelta() {
	if s.delta != nil {
		s.delta.Close()
		s.delta = nil
	}
}
