package pattern

import (
	"context"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/numeric"
)

// quad2 is a smooth 2-D objective with its lattice optimum at (7, 12).
func quad2(x numeric.IntVector) (float64, error) {
	dx, dy := float64(x[0]-7), float64(x[1]-12)
	return dx*dx + dy*dy + 3, nil
}

func TestJSONFloatRoundTrip(t *testing.T) {
	values := []float64{0, 1, -2.5, 1e-300, math.MaxFloat64, math.Pi, math.Inf(1), math.Inf(-1), math.NaN(), 0.1}
	for _, v := range values {
		data, err := json.Marshal(JSONFloat(v))
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		var back JSONFloat
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if math.Float64bits(float64(back)) != math.Float64bits(v) {
			t.Errorf("%v round-tripped to %v (%s)", v, float64(back), data)
		}
	}
	var f JSONFloat
	for _, bad := range []string{`"fast"`, `"1e"`, `[]`, `""`} {
		if err := json.Unmarshal([]byte(bad), &f); err == nil {
			t.Errorf("accepted %s", bad)
		}
	}
}

func TestParseCheckpointRejects(t *testing.T) {
	bad := []string{
		`{"version": 2, "kind": "pattern-search", "dim": 1}`,
		`{"version": 1, "kind": "exhaustive", "dim": 1}`,
		`{"version": 1, "kind": "pattern-search", "dim": 0}`,
		`{"version": 1, "kind": "pattern-search", "dim": 2, "best": [1]}`,
		`{"version": 1, "kind": "pattern-search", "dim": 2, "visited": {"1": 0}}`,
		`{"version": 1, "kind": "pattern-search", "dim": 2, "visited": {"1,x": 0}}`,
		`not json`,
	}
	for _, in := range bad {
		if _, err := ParseCheckpoint([]byte(in)); err == nil {
			t.Errorf("accepted %s", in)
		}
	}
}

// TestCheckpointSaveLoad: Save publishes atomically (no temp litter), Load
// restores every field including non-finite cache values.
func TestCheckpointSaveLoad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "search.ckpt")
	cp := &Checkpoint{
		Version: CheckpointVersion, Kind: "pattern-search", ModelHash: "abc",
		Dim: 2, Start: []int{4, 4}, Best: []int{7, 12}, BestValue: 3,
		Step: []int{2, 2}, Halvings: 1, Commits: 5, Evaluations: 17,
		Visited: map[string]JSONFloat{"7,12": 3, "0,-1": JSONFloat(math.Inf(1))},
		Aux:     json.RawMessage(`{"active":[true]}`),
	}
	if err := cp.Save(path); err != nil {
		t.Fatal(err)
	}
	// Overwrite must also work (the steady-state path).
	cp.Commits = 6
	if err := cp.Save(path); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("temp file %s left behind", e.Name())
		}
	}
	back, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.ModelHash != "abc" || back.Commits != 6 || back.Halvings != 1 ||
		back.Best[0] != 7 || back.Best[1] != 12 || float64(back.BestValue) != 3 {
		t.Fatalf("loaded checkpoint differs: %+v", back)
	}
	if !math.IsInf(float64(back.Visited["0,-1"]), 1) {
		t.Errorf("infeasible cache value lost: %v", back.Visited["0,-1"])
	}
	if string(back.Aux) != `{"active":[true]}` {
		t.Errorf("aux lost: %s", back.Aux)
	}
}

// cancelAfter builds an objective wrapper and context: the context cancels
// once the objective has been called n times, so the search dies at a
// deterministic depth into its trajectory.
func cancelAfter(n int64) (Objective, context.Context) {
	ctx, cancel := context.WithCancel(context.Background())
	var calls int64
	obj := func(x numeric.IntVector) (float64, error) {
		if atomic.AddInt64(&calls, 1) >= n {
			cancel()
		}
		return quad2(x)
	}
	return obj, ctx
}

// TestSearchCheckpointResume is the tentpole's core guarantee at the
// pattern layer: kill the search at several depths, resume from the
// checkpoint, and land on the bit-identical result of the uninterrupted
// run — serially and with speculative workers.
func TestSearchCheckpointResume(t *testing.T) {
	start := numeric.IntVector{2, 2}
	base := Options{InitialStep: numeric.IntVector{4, 4}, MaxHalvings: 3}
	ref, err := Search(quad2, start, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 8} {
		for _, killAt := range []int64{2, 5, 9} {
			path := filepath.Join(t.TempDir(), "search.ckpt")
			obj, ctx := cancelAfter(killAt)
			opts := base
			opts.Workers = workers
			opts.Context = ctx
			opts.Checkpoint = &CheckpointOptions{Path: path, ModelHash: "h"}
			if _, err := Search(obj, start, opts); err == nil {
				t.Fatalf("workers=%d killAt=%d: search survived cancellation", workers, killAt)
			}
			ck, err := LoadCheckpoint(path)
			if err != nil {
				t.Fatalf("workers=%d killAt=%d: %v", workers, killAt, err)
			}
			if ck.Done {
				t.Fatalf("workers=%d killAt=%d: cancelled checkpoint marked done", workers, killAt)
			}
			if ck.ModelHash != "h" {
				t.Fatalf("model hash lost: %q", ck.ModelHash)
			}
			resumed := base
			resumed.Workers = workers
			resumed.Resume = ck
			res, err := Search(quad2, start, resumed)
			if err != nil {
				t.Fatalf("workers=%d killAt=%d: resume: %v", workers, killAt, err)
			}
			if !res.Best.Equal(ref.Best) ||
				math.Float64bits(res.BestValue) != math.Float64bits(ref.BestValue) {
				t.Errorf("workers=%d killAt=%d: resumed best %v (%v) vs uninterrupted %v (%v)",
					workers, killAt, res.Best, res.BestValue, ref.Best, ref.BestValue)
			}
			if len(res.BasePoints) != len(ref.BasePoints) {
				t.Fatalf("workers=%d killAt=%d: trajectory lengths %d vs %d",
					workers, killAt, len(res.BasePoints), len(ref.BasePoints))
			}
			for i := range res.BasePoints {
				if !res.BasePoints[i].Equal(ref.BasePoints[i]) {
					t.Errorf("workers=%d killAt=%d: base point %d: %v vs %v",
						workers, killAt, i, res.BasePoints[i], ref.BasePoints[i])
				}
			}
			if res.Evaluations >= ref.Evaluations {
				t.Errorf("workers=%d killAt=%d: resume made %d objective calls, uninterrupted made %d — no replay happened",
					workers, killAt, res.Evaluations, ref.Evaluations)
			}
		}
	}
}

// TestSearchResumeFromDone: a checkpoint written at normal termination
// replays to the final answer with zero objective calls.
func TestSearchResumeFromDone(t *testing.T) {
	path := filepath.Join(t.TempDir(), "search.ckpt")
	start := numeric.IntVector{2, 2}
	opts := Options{InitialStep: numeric.IntVector{4, 4}, Checkpoint: &CheckpointOptions{Path: path}}
	ref, err := Search(quad2, start, opts)
	if err != nil {
		t.Fatal(err)
	}
	ck, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if !ck.Done {
		t.Fatal("final checkpoint not marked done")
	}
	calls := 0
	counting := func(x numeric.IntVector) (float64, error) { calls++; return quad2(x) }
	res, err := Search(counting, start, Options{InitialStep: numeric.IntVector{4, 4}, Resume: ck})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 0 {
		t.Errorf("resume from a done checkpoint made %d objective calls", calls)
	}
	if !res.Best.Equal(ref.Best) || math.Float64bits(res.BestValue) != math.Float64bits(ref.BestValue) {
		t.Errorf("resumed %v (%v) vs original %v (%v)", res.Best, res.BestValue, ref.Best, ref.BestValue)
	}
}

// TestSearchResumeDimensionMismatch: a checkpoint of the wrong dimension is
// rejected before any evaluation.
func TestSearchResumeDimensionMismatch(t *testing.T) {
	ck := &Checkpoint{Version: CheckpointVersion, Kind: "pattern-search", Dim: 3}
	if _, err := Search(quad2, numeric.IntVector{2, 2}, Options{Resume: ck}); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}

// TestSearchCheckpointCadence: Every > 1 skips intermediate commits but the
// final snapshot always lands.
func TestSearchCheckpointCadence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "search.ckpt")
	writes := 0
	// Count writes by watching the file's inode change is fragile; instead
	// count via Aux, which is invoked exactly once per snapshot.
	opts := Options{
		InitialStep: numeric.IntVector{4, 4},
		Checkpoint: &CheckpointOptions{
			Path: path, Every: 1000,
			Aux: func() json.RawMessage { writes++; return nil },
		},
	}
	if _, err := Search(quad2, numeric.IntVector{2, 2}, opts); err != nil {
		t.Fatal(err)
	}
	if writes != 1 {
		t.Errorf("cadence 1000 wrote %d snapshots, want only the final one", writes)
	}
	ck, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if !ck.Done {
		t.Error("final snapshot not marked done")
	}
}

// TestSearchCheckpointBadPath: an unwritable checkpoint path fails fast at
// the first commit, not at the first crash.
func TestSearchCheckpointBadPath(t *testing.T) {
	opts := Options{Checkpoint: &CheckpointOptions{Path: filepath.Join(t.TempDir(), "no", "such", "dir", "x.ckpt")}}
	if _, err := Search(quad2, numeric.IntVector{2, 2}, opts); err == nil {
		t.Fatal("unwritable checkpoint path accepted")
	}
}
