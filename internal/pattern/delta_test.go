package pattern

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/numeric"
)

var errKill = errors.New("simulated crash")

// killAfter builds an objective that fails hard after n calls — unlike
// cancellation, a hard failure writes NO final snapshot, so whatever the
// cadence left on disk (snapshot + delta sidecar) is all a resume gets:
// exactly the crash scenario the sidecar exists for.
func killAfter(n int) Objective {
	calls := 0
	return func(x numeric.IntVector) (float64, error) {
		calls++
		if calls > n {
			return 0, errKill
		}
		return quad2(x)
	}
}

// deltaOptions is the per-commit durable cadence with full snapshots only
// every 4th write — the configuration the sidecar makes near-free.
func deltaOptions(path string) Options {
	return Options{
		InitialStep: numeric.IntVector{4, 4}, MaxHalvings: 3,
		Checkpoint: &CheckpointOptions{Path: path, Every: 1, FullEvery: 4, ModelHash: "h"},
	}
}

// TestSearchDeltaResume: crash the search at several depths with delta
// checkpointing on, resume from snapshot+sidecar, and land on the
// bit-identical result of the uninterrupted run at any worker count.
func TestSearchDeltaResume(t *testing.T) {
	start := numeric.IntVector{2, 2}
	ref, err := Search(quad2, start, Options{InitialStep: numeric.IntVector{4, 4}, MaxHalvings: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, killAt := range []int{4, 7, 11, 15} {
		for _, workers := range []int{1, 8} {
			path := filepath.Join(t.TempDir(), "search.ckpt")
			opts := deltaOptions(path)
			if _, err := Search(killAfter(killAt), start, opts); !errors.Is(err, errKill) {
				t.Fatalf("killAt=%d: want simulated crash, got %v", killAt, err)
			}
			ck, err := LoadCheckpoint(path)
			if err != nil {
				t.Fatalf("killAt=%d: %v", killAt, err)
			}
			resumed := Options{InitialStep: numeric.IntVector{4, 4}, MaxHalvings: 3, Workers: workers, Resume: ck}
			res, err := Search(quad2, start, resumed)
			if err != nil {
				t.Fatalf("killAt=%d workers=%d: resume: %v", killAt, workers, err)
			}
			if !res.Best.Equal(ref.Best) || math.Float64bits(res.BestValue) != math.Float64bits(ref.BestValue) {
				t.Errorf("killAt=%d workers=%d: resumed best %v (%v) vs uninterrupted %v (%v)",
					killAt, workers, res.Best, res.BestValue, ref.Best, ref.BestValue)
			}
			if res.Evaluations >= ref.Evaluations {
				t.Errorf("killAt=%d workers=%d: resume made %d objective calls, uninterrupted %d — cache not replayed",
					killAt, workers, res.Evaluations, ref.Evaluations)
			}
		}
	}
}

// TestDeltaMergeMatchesFullSnapshots: the merged view of snapshot+sidecar
// must carry the same memo cache as a run checkpointed with full snapshots
// at every commit, crashed at the same call.
func TestDeltaMergeMatchesFullSnapshots(t *testing.T) {
	start := numeric.IntVector{2, 2}
	const killAt = 11
	deltaPath := filepath.Join(t.TempDir(), "delta.ckpt")
	fullPath := filepath.Join(t.TempDir(), "full.ckpt")
	if _, err := Search(killAfter(killAt), start, deltaOptions(deltaPath)); !errors.Is(err, errKill) {
		t.Fatalf("delta run: %v", err)
	}
	fullOpts := deltaOptions(fullPath)
	fullOpts.Checkpoint.FullEvery = 0 // classic: every durable write is full
	if _, err := Search(killAfter(killAt), start, fullOpts); !errors.Is(err, errKill) {
		t.Fatalf("full run: %v", err)
	}
	merged, err := LoadCheckpoint(deltaPath)
	if err != nil {
		t.Fatal(err)
	}
	full, err := LoadCheckpoint(fullPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.Visited) != len(full.Visited) {
		t.Fatalf("merged cache has %d entries, full-snapshot cache %d", len(merged.Visited), len(full.Visited))
	}
	for k, v := range full.Visited {
		mv, ok := merged.Visited[k]
		if !ok || math.Float64bits(float64(mv)) != math.Float64bits(float64(v)) {
			t.Errorf("visited[%q]: merged %v, full %v (present %v)", k, mv, v, ok)
		}
	}
	if merged.Commits != full.Commits || merged.Halvings != full.Halvings {
		t.Errorf("merged commits/halvings %d/%d vs full %d/%d",
			merged.Commits, merged.Halvings, full.Commits, full.Halvings)
	}
}

// TestDeltaTornFinalLine: a crash mid-append leaves a torn last line; the
// loader drops it (losing at most that one delta) and resume still works.
func TestDeltaTornFinalLine(t *testing.T) {
	start := numeric.IntVector{2, 2}
	path := filepath.Join(t.TempDir(), "search.ckpt")
	if _, err := Search(killAfter(11), start, deltaOptions(path)); !errors.Is(err, errKill) {
		t.Fatal("want simulated crash")
	}
	clean, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path+deltaSuffix, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"commit":99,"visited":{"5,`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	torn, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatalf("torn final line rejected: %v", err)
	}
	if len(torn.Visited) != len(clean.Visited) || torn.Commits != clean.Commits {
		t.Errorf("torn merge %d entries / %d commits, clean %d / %d",
			len(torn.Visited), torn.Commits, len(clean.Visited), clean.Commits)
	}
	// Corruption anywhere BEFORE the final line is a real error.
	if err := os.WriteFile(path+deltaSuffix+".tmp", nil, 0o644); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path + deltaSuffix)
	if err != nil {
		t.Fatal(err)
	}
	lines := []byte("garbage\n")
	// Keep the header, inject garbage, then a valid-looking record.
	hdrEnd := 0
	for i, b := range data {
		if b == '\n' {
			hdrEnd = i + 1
			break
		}
	}
	corrupt := append(append(append([]byte(nil), data[:hdrEnd]...), lines...), `{"commit":3}`+"\n"...)
	if err := os.WriteFile(path+deltaSuffix, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(path); err == nil {
		t.Error("mid-file corruption accepted")
	}
}

// TestDeltaStaleSidecarIgnored: a sidecar whose header does not extend THIS
// snapshot (wrong base commits or model hash — e.g. left behind by a crash
// between a snapshot rename and the sidecar reset) is ignored whole.
func TestDeltaStaleSidecarIgnored(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "search.ckpt")
	cp := &Checkpoint{
		Version: CheckpointVersion, Kind: checkpointKind, ModelHash: "h",
		Dim: 2, Commits: 5, Visited: map[string]JSONFloat{"1,1": 2},
	}
	if err := cp.Save(path); err != nil {
		t.Fatal(err)
	}
	for _, hdr := range []string{
		`{"version":1,"kind":"pattern-search-delta","model_hash":"h","dim":2,"base_commits":3}`,
		`{"version":1,"kind":"pattern-search-delta","model_hash":"other","dim":2,"base_commits":5}`,
		`{"ver`, // torn header: crash during the sidecar reset itself
	} {
		sidecar := hdr + "\n" + `{"commit":6,"visited":{"9,9":1}}` + "\n"
		if err := os.WriteFile(path+deltaSuffix, []byte(sidecar), 0o644); err != nil {
			t.Fatal(err)
		}
		got, err := LoadCheckpoint(path)
		if err != nil {
			t.Fatalf("header %q: %v", hdr, err)
		}
		if _, leaked := got.Visited["9,9"]; leaked || got.Commits != 5 {
			t.Errorf("header %q: stale sidecar applied (%d entries, %d commits)", hdr, len(got.Visited), got.Commits)
		}
	}
}

// TestDeltaWritesAreCheap: with FullEvery = 8 and a per-commit cadence,
// full snapshots (the expensive writes, counted via Aux) must be a small
// fraction of the durable writes, and a normally terminated run must leave
// no sidecar behind.
func TestDeltaWritesAreCheap(t *testing.T) {
	path := filepath.Join(t.TempDir(), "search.ckpt")
	fullWrites := 0
	opts := Options{
		// Unit steps from far away: the pattern phase crawls, committing
		// dozens of base points on the way to (7, 12).
		InitialStep: numeric.IntVector{1, 1}, MaxHalvings: 2,
		Checkpoint: &CheckpointOptions{
			Path: path, Every: 1, FullEvery: 8,
			Aux: func() json.RawMessage { fullWrites++; return nil },
		},
	}
	res, err := Search(quad2, numeric.IntVector{200, 260}, opts)
	if err != nil {
		t.Fatal(err)
	}
	commits := len(res.BasePoints)
	if commits < 8 {
		t.Fatalf("test needs a longer trajectory, got %d commits", commits)
	}
	if want := commits/8 + 2; fullWrites > want {
		t.Errorf("%d full snapshots over %d commits; want at most %d", fullWrites, commits, want)
	}
	if _, err := os.Stat(path + deltaSuffix); !os.IsNotExist(err) {
		t.Errorf("sidecar left behind after normal termination (stat err %v)", err)
	}
	ck, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if !ck.Done || !numeric.IntVector(ck.Best).Equal(res.Best) {
		t.Errorf("final snapshot done=%v best=%v, want done best %v", ck.Done, ck.Best, res.Best)
	}
}

// TestDeltaRoundTripValues: non-finite cache values survive the delta path
// (the sidecar reuses the JSONFloat codec).
func TestDeltaRoundTripValues(t *testing.T) {
	start := numeric.IntVector{2, 2}
	path := filepath.Join(t.TempDir(), "search.ckpt")
	calls := 0
	spiky := func(x numeric.IntVector) (float64, error) {
		calls++
		if calls > 14 {
			return 0, errKill
		}
		if x[0] == 6 && x[1] == 2 {
			// The first exploratory probe from (2,2) with step (4,4):
			// guaranteed evaluated, and cached as +Inf in a delta record.
			return math.Inf(1), nil
		}
		return quad2(x)
	}
	opts := deltaOptions(path)
	if _, err := Search(spiky, start, opts); !errors.Is(err, errKill) {
		t.Fatal("want simulated crash")
	}
	ck, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	v, ok := ck.Visited["6,2"]
	if !ok {
		t.Skipf("trajectory never visited the spike point; visited %d points", len(ck.Visited))
	}
	if !math.IsInf(float64(v), 1) {
		t.Errorf("infeasible value round-tripped to %v", float64(v))
	}
	_ = fmt.Sprintf("%v", v)
}
