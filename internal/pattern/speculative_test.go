package pattern

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"repro/internal/numeric"
)

func TestParallelTrajectoryEqualsSerial(t *testing.T) {
	f := func(seed int64) bool {
		s := seed
		next := func() float64 {
			s = s*6364136223846793005 + 1442695040888963407
			return float64(uint64(s)>>11) / float64(1<<53)
		}
		cx := float64(int(next()*15) + 1)
		cy := float64(int(next()*15) + 1)
		cz := float64(int(next()*15) + 1)
		obj := func(x numeric.IntVector) (float64, error) {
			dx, dy, dz := float64(x[0])-cx, float64(x[1])-cy, float64(x[2])-cz
			return dx*dx + 2*dy*dy + 0.5*dz*dz + 0.25*dx*dy, nil
		}
		opts := Options{Hi: numeric.IntVector{20, 20, 20}, InitialStep: numeric.IntVector{4, 4, 4}, MaxHalvings: 3}
		serial, err := Search(obj, numeric.IntVector{1, 1, 1}, opts)
		if err != nil {
			return false
		}
		for _, w := range []int{2, 4, 8} {
			po := opts
			po.Workers = w
			par, err := Search(obj, numeric.IntVector{1, 1, 1}, po)
			if err != nil {
				return false
			}
			// The determinism guarantee covers the full trajectory, cache
			// accounting included.
			if !par.Best.Equal(serial.Best) || par.BestValue != serial.BestValue ||
				par.Evaluations != serial.Evaluations || par.CacheHits != serial.CacheHits ||
				len(par.BasePoints) != len(serial.BasePoints) {
				return false
			}
			for i := range serial.BasePoints {
				if !par.BasePoints[i].Equal(serial.BasePoints[i]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestParallelActuallyRunsConcurrently(t *testing.T) {
	// Two probes must overlap in time: every objective call except the
	// (serial) start-point evaluation blocks until a second call is in
	// flight. A serial search would deadlock on the first probe; the
	// 2R = 4 speculative probes of the first pass satisfy it immediately.
	start := numeric.IntVector{5, 5}
	var inFlight atomic.Int32
	ready := make(chan struct{})
	var once sync.Once
	obj := func(x numeric.IntVector) (float64, error) {
		if x.Equal(start) {
			return quadraticVal(x, 3, 3), nil
		}
		if inFlight.Add(1) >= 2 {
			once.Do(func() { close(ready) })
		}
		<-ready
		inFlight.Add(-1)
		return quadraticVal(x, 3, 3), nil
	}
	res, err := Search(obj, numeric.IntVector{5, 5}, Options{Workers: 4, Hi: numeric.IntVector{9, 9}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Best.Equal(numeric.IntVector{3, 3}) {
		t.Errorf("Best = %v", res.Best)
	}
}

func TestParallelBudgetMidPatternMove(t *testing.T) {
	// A descent ridge exhausts the budget during the pattern phase; serial
	// and parallel must fail identically with ErrBudget.
	obj := func(x numeric.IntVector) (float64, error) {
		return -float64(x[0]) - float64(x[1]), nil
	}
	for _, w := range []int{1, 4} {
		_, err := Search(obj, numeric.IntVector{1, 1},
			Options{Workers: w, MaxEvaluations: 23})
		if !errors.Is(err, ErrBudget) {
			t.Fatalf("workers=%d: expected ErrBudget, got %v", w, err)
		}
	}
}

func TestBudgetExhaustsAtExactCount(t *testing.T) {
	// ErrBudget must fire with the objective called exactly MaxEvaluations
	// times (mid-pattern-move on this unbounded descent).
	var calls atomic.Int64
	obj := func(x numeric.IntVector) (float64, error) {
		calls.Add(1)
		return -float64(x[0]), nil
	}
	const budget = 17
	_, err := Search(obj, numeric.IntVector{1}, Options{MaxEvaluations: budget})
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("expected ErrBudget, got %v", err)
	}
	if calls.Load() != budget {
		t.Errorf("objective called %d times under budget %d", calls.Load(), budget)
	}
}

func TestParallelObjectiveErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	obj := func(x numeric.IntVector) (float64, error) {
		if x[0] >= 4 {
			return 0, boom
		}
		return -float64(x[0]), nil
	}
	_, err := Search(obj, numeric.IntVector{1}, Options{Workers: 4})
	if !errors.Is(err, boom) {
		t.Fatalf("expected boom, got %v", err)
	}
}

func TestParallelUncommittedProbeErrorsDiscarded(t *testing.T) {
	// From the start (2,2) the first coordinate's probes fail and the
	// second coordinate's +step improves, so the serial replay never
	// consumes the -step probe at (2,1). That speculative call erroring
	// must NOT fail the search: wasted probes are discarded, errors and
	// values alike.
	obj := func(x numeric.IntVector) (float64, error) {
		if x[1] == 1 {
			return 0, errors.New("speculative probe must be discarded")
		}
		return quadraticVal(x, 2, 9), nil
	}
	res, err := Search(obj, numeric.IntVector{2, 2},
		Options{Workers: 4, Hi: numeric.IntVector{9, 9}, Lo: numeric.IntVector{2, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Best.Equal(numeric.IntVector{2, 9}) {
		t.Errorf("Best = %v", res.Best)
	}
}

func TestOnCommitTraceMatchesBasePoints(t *testing.T) {
	for _, w := range []int{1, 4} {
		var trace []numeric.IntVector
		var vals []float64
		opts := Options{
			Workers: w,
			Hi:      numeric.IntVector{20, 20},
			OnCommit: func(x numeric.IntVector, fx float64) {
				trace = append(trace, x)
				vals = append(vals, fx)
			},
		}
		res, err := Search(quadratic(12, 5), numeric.IntVector{1, 1}, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(trace) != len(res.BasePoints) {
			t.Fatalf("workers=%d: %d commits for %d base points", w, len(trace), len(res.BasePoints))
		}
		for i := range trace {
			if !trace[i].Equal(res.BasePoints[i]) {
				t.Errorf("workers=%d: commit %d = %v, base point %v", w, i, trace[i], res.BasePoints[i])
			}
			if want := quadraticVal(trace[i], 12, 5); vals[i] != want {
				t.Errorf("workers=%d: commit %d value %v, want %v", w, i, vals[i], want)
			}
		}
		if !trace[len(trace)-1].Equal(res.Best) {
			t.Errorf("workers=%d: last commit %v != Best %v", w, trace[len(trace)-1], res.Best)
		}
	}
}

func TestExhaustiveStopsAfterFirstError(t *testing.T) {
	// Satellite regression: the lattice walk must stop at the first
	// objective error instead of walking (and cloning) the rest of the box.
	var calls atomic.Int64
	boom := errors.New("boom")
	obj := func(x numeric.IntVector) (float64, error) {
		if calls.Add(1) == 3 {
			return 0, boom
		}
		return 0, nil
	}
	_, err := Exhaustive(obj, numeric.IntVector{1, 1}, numeric.IntVector{10, 10}, 0)
	if !errors.Is(err, boom) {
		t.Fatalf("expected boom, got %v", err)
	}
	if calls.Load() != 3 {
		t.Errorf("objective called %d times, want exactly 3 (stop on first error)", calls.Load())
	}
}
