package pattern

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/numeric"
)

// countdownCtx is a context.Context that reports cancellation after its
// Err method has been consulted a fixed number of times. It makes
// mid-search cancellation deterministic: no goroutines, no timers.
type countdownCtx struct {
	mu        sync.Mutex
	remaining int
}

func (c *countdownCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *countdownCtx) Done() <-chan struct{}       { return nil }
func (c *countdownCtx) Value(any) any               { return nil }
func (c *countdownCtx) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.remaining <= 0 {
		return context.Canceled
	}
	c.remaining--
	return nil
}

// ctxQuadratic is a smooth objective with minimum at (7, 7).
func ctxQuadratic(x numeric.IntVector) (float64, error) {
	dx, dy := float64(x[0]-7), float64(x[1]-7)
	return dx*dx + dy*dy + 1, nil
}

func TestSearchCancelledReturnsBestSoFar(t *testing.T) {
	// Allow the initial evaluation plus a handful of exploratory probes,
	// then cancel: the search must hand back the last committed base
	// point, not nothing.
	ctx := &countdownCtx{remaining: 4}
	res, err := Search(ctxQuadratic, numeric.IntVector{1, 1}, Options{
		Lo:      numeric.IntVector{1, 1},
		Hi:      numeric.IntVector{20, 20},
		Context: ctx,
	})
	if err == nil {
		t.Fatal("cancelled search returned nil error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	if res == nil || res.Best == nil {
		t.Fatalf("cancelled search returned no best-so-far result: %+v", res)
	}
	if math.IsInf(res.BestValue, 1) || math.IsNaN(res.BestValue) {
		t.Fatalf("best-so-far value %v is not a real evaluation", res.BestValue)
	}
	if len(res.BasePoints) == 0 {
		t.Fatal("no base point was committed before cancellation")
	}
}

func TestSearchCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Search(ctxQuadratic, numeric.IntVector{1, 1}, Options{
		Lo:      numeric.IntVector{1, 1},
		Hi:      numeric.IntVector{20, 20},
		Context: ctx,
	})
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if res != nil {
		t.Fatalf("no point was evaluated, yet got result %+v", res)
	}
}

func TestSearchNilContextUnchanged(t *testing.T) {
	// The zero Options must behave exactly as before the Context field
	// existed.
	res, err := Search(ctxQuadratic, numeric.IntVector{1, 1}, Options{
		Lo: numeric.IntVector{1, 1},
		Hi: numeric.IntVector{20, 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best[0] != 7 || res.Best[1] != 7 {
		t.Fatalf("optimum %v, want (7, 7)", res.Best)
	}
}

func TestExhaustiveCtxCancelled(t *testing.T) {
	lo := numeric.IntVector{1, 1}
	hi := numeric.IntVector{30, 30}
	// Cancel partway through the scan; the partial best must come with a
	// wrapped ctx error and a positive evaluation count.
	for _, workers := range []int{1, 4} {
		ctx := &countdownCtx{remaining: 50}
		res, err := ExhaustiveParallelCtx(ctx, ctxQuadratic, lo, hi, 0, workers)
		if err == nil || !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: want context.Canceled, got %v", workers, err)
		}
		if res == nil {
			t.Fatalf("workers=%d: no partial result", workers)
		}
		if res.Best == nil {
			t.Fatalf("workers=%d: nothing evaluated before cancellation", workers)
		}
		if res.Evaluations <= 0 || res.Evaluations >= 30*30 {
			t.Fatalf("workers=%d: %d evaluations, want a partial scan", workers, res.Evaluations)
		}
	}
}

func TestExhaustiveCtxComplete(t *testing.T) {
	// An un-cancelled context changes nothing.
	res, err := ExhaustiveParallelCtx(context.Background(), ctxQuadratic,
		numeric.IntVector{1, 1}, numeric.IntVector{10, 10}, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best[0] != 7 || res.Best[1] != 7 {
		t.Fatalf("optimum %v, want (7, 7)", res.Best)
	}
	if res.Evaluations != 100 {
		t.Fatalf("%d evaluations, want 100", res.Evaluations)
	}
}
