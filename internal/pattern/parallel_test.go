package pattern

import (
	"errors"
	"sync/atomic"
	"testing"

	"repro/internal/numeric"
)

func TestExhaustiveParallelMatchesSerial(t *testing.T) {
	obj := quadratic(4, 6)
	serial, err := Exhaustive(obj, numeric.IntVector{1, 1}, numeric.IntVector{9, 9}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 16} {
		par, err := ExhaustiveParallel(obj, numeric.IntVector{1, 1}, numeric.IntVector{9, 9}, 0, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !par.Best.Equal(serial.Best) || par.BestValue != serial.BestValue {
			t.Errorf("workers=%d: (%v, %v) vs serial (%v, %v)",
				workers, par.Best, par.BestValue, serial.Best, serial.BestValue)
		}
		if par.Evaluations != serial.Evaluations {
			t.Errorf("workers=%d: %d evaluations vs %d", workers, par.Evaluations, serial.Evaluations)
		}
	}
}

func TestExhaustiveParallelTieBreak(t *testing.T) {
	// A flat objective: serial keeps the first lattice point; parallel
	// must agree.
	flat := func(x numeric.IntVector) (float64, error) { return 1.0, nil }
	serial, err := Exhaustive(flat, numeric.IntVector{1, 1}, numeric.IntVector{4, 4}, 0)
	if err != nil {
		t.Fatal(err)
	}
	par, err := ExhaustiveParallel(flat, numeric.IntVector{1, 1}, numeric.IntVector{4, 4}, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !par.Best.Equal(serial.Best) {
		t.Errorf("tie-break differs: %v vs %v", par.Best, serial.Best)
	}
}

func TestExhaustiveParallelConcurrencyActuallyHappens(t *testing.T) {
	var calls atomic.Int64
	obj := func(x numeric.IntVector) (float64, error) {
		calls.Add(1)
		return float64(x[0]), nil
	}
	res, err := ExhaustiveParallel(obj, numeric.IntVector{1}, numeric.IntVector{100}, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 100 || res.Best[0] != 1 {
		t.Errorf("calls=%d best=%v", calls.Load(), res.Best)
	}
}

func TestExhaustiveParallelErrors(t *testing.T) {
	boom := errors.New("boom")
	objErr := func(x numeric.IntVector) (float64, error) {
		if x[0] == 3 {
			return 0, boom
		}
		return 0, nil
	}
	if _, err := ExhaustiveParallel(objErr, numeric.IntVector{1}, numeric.IntVector{5}, 0, 2); !errors.Is(err, boom) {
		t.Errorf("expected boom, got %v", err)
	}
	if _, err := ExhaustiveParallel(nil, numeric.IntVector{1}, numeric.IntVector{2}, 0, 2); err == nil {
		t.Error("expected nil-objective error")
	}
	if _, err := ExhaustiveParallel(quadratic(1), numeric.IntVector{3}, numeric.IntVector{1}, 0, 2); err == nil {
		t.Error("expected empty-box error")
	}
	if _, err := ExhaustiveParallel(quadratic(1, 1), numeric.IntVector{1, 1}, numeric.IntVector{500, 500}, 100, 2); err == nil {
		t.Error("expected size-cap error")
	}
	// workers < 2 falls back to serial.
	res, err := ExhaustiveParallel(quadratic(2), numeric.IntVector{1}, numeric.IntVector{5}, 0, 1)
	if err != nil || res.Best[0] != 2 {
		t.Errorf("serial fallback: %v, %v", res, err)
	}
}

func TestExhaustiveParallelMoreWorkersThanPoints(t *testing.T) {
	res, err := ExhaustiveParallel(quadratic(1), numeric.IntVector{1}, numeric.IntVector{3}, 0, 64)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best[0] != 1 {
		t.Errorf("Best = %v", res.Best)
	}
}
