package pattern

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/numeric"
)

// quadratic returns an objective with minimum at the given point.
func quadratic(min ...int) Objective {
	return func(x numeric.IntVector) (float64, error) {
		s := 0.0
		for i := range x {
			d := float64(x[i] - min[i])
			s += d * d
		}
		return s, nil
	}
}

func TestSearchFindsQuadraticMinimum(t *testing.T) {
	res, err := Search(quadratic(6, 3), numeric.IntVector{1, 1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Best.Equal(numeric.IntVector{6, 3}) {
		t.Errorf("Best = %v, want (6,3)", res.Best)
	}
	if res.BestValue != 0 {
		t.Errorf("BestValue = %v", res.BestValue)
	}
	if len(res.BasePoints) < 2 {
		t.Errorf("expected several base points, got %d", len(res.BasePoints))
	}
}

func TestSearchLargeStepsAccelerate(t *testing.T) {
	target := []int{40, 40}
	small, err := Search(quadratic(target...), numeric.IntVector{1, 1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Search(quadratic(target...), numeric.IntVector{1, 1},
		Options{InitialStep: numeric.IntVector{8, 8}, MaxHalvings: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !small.Best.Equal(numeric.IntVector(target)) || !big.Best.Equal(numeric.IntVector(target)) {
		t.Fatalf("missed minimum: small %v big %v", small.Best, big.Best)
	}
	// The pattern move doubles along the ridge, so evaluation counts stay
	// modest either way; larger steps must not be worse by much.
	if big.Evaluations > small.Evaluations*2 {
		t.Errorf("big-step search used %d evals vs %d", big.Evaluations, small.Evaluations)
	}
}

func TestSearchRespectsBounds(t *testing.T) {
	// Unconstrained minimum at (0, 0) but the default box floors at 1.
	res, err := Search(quadratic(0, 0), numeric.IntVector{4, 4}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Best.Equal(numeric.IntVector{1, 1}) {
		t.Errorf("Best = %v, want (1,1)", res.Best)
	}
	// Upper bound clamps too.
	res2, err := Search(quadratic(9, 9), numeric.IntVector{2, 2},
		Options{Hi: numeric.IntVector{5, 5}})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Best.Equal(numeric.IntVector{5, 5}) {
		t.Errorf("Best = %v, want (5,5)", res2.Best)
	}
}

func TestSearchClampsStart(t *testing.T) {
	res, err := Search(quadratic(3), numeric.IntVector{-10},
		Options{Hi: numeric.IntVector{8}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Best.Equal(numeric.IntVector{3}) {
		t.Errorf("Best = %v", res.Best)
	}
}

func TestSearchMemoisation(t *testing.T) {
	calls := map[string]int{}
	obj := func(x numeric.IntVector) (float64, error) {
		calls[x.Key()]++
		return quadraticVal(x, 4, 4), nil
	}
	res, err := Search(obj, numeric.IntVector{1, 1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for k, c := range calls {
		if c > 1 {
			t.Errorf("point %s evaluated %d times; cache should dedupe", k, c)
		}
	}
	if res.CacheHits == 0 {
		t.Error("expected some cache hits")
	}
}

func quadraticVal(x numeric.IntVector, min ...int) float64 {
	s := 0.0
	for i := range x {
		d := float64(x[i] - min[i])
		s += d * d
	}
	return s
}

func TestSearchObjectiveError(t *testing.T) {
	boom := errors.New("boom")
	obj := func(x numeric.IntVector) (float64, error) {
		if x[0] > 2 {
			return 0, boom
		}
		return -float64(x[0]), nil
	}
	if _, err := Search(obj, numeric.IntVector{1}, Options{}); !errors.Is(err, boom) {
		t.Fatalf("expected objective error, got %v", err)
	}
}

func TestSearchEvaluationBudget(t *testing.T) {
	// Unbounded descent: objective decreases forever, budget must stop it.
	obj := func(x numeric.IntVector) (float64, error) { return -float64(x[0]), nil }
	_, err := Search(obj, numeric.IntVector{1}, Options{MaxEvaluations: 25})
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("expected ErrBudget, got %v", err)
	}
}

func TestSearchOptionValidation(t *testing.T) {
	if _, err := Search(nil, numeric.IntVector{1}, Options{}); err == nil {
		t.Error("expected nil-objective error")
	}
	if _, err := Search(quadratic(1), numeric.IntVector{}, Options{}); err == nil {
		t.Error("expected empty-start error")
	}
	if _, err := Search(quadratic(1), numeric.IntVector{1},
		Options{InitialStep: numeric.IntVector{0}}); err == nil {
		t.Error("expected bad-step error")
	}
	if _, err := Search(quadratic(1), numeric.IntVector{1},
		Options{Lo: numeric.IntVector{5}, Hi: numeric.IntVector{2}}); err == nil {
		t.Error("expected empty-box error")
	}
	if _, err := Search(quadratic(1, 1), numeric.IntVector{1, 1},
		Options{Lo: numeric.IntVector{1}}); err == nil {
		t.Error("expected dimension error")
	}
}

func TestSearchNaNTreatedAsInf(t *testing.T) {
	obj := func(x numeric.IntVector) (float64, error) {
		if x[0] == 2 {
			return math.NaN(), nil
		}
		return quadraticVal(x, 5), nil
	}
	res, err := Search(obj, numeric.IntVector{1}, Options{InitialStep: numeric.IntVector{2}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best[0] == 2 {
		t.Error("NaN point selected as best")
	}
}

// Property: the search never returns a point worse than its start.
func TestSearchNeverWorseProperty(t *testing.T) {
	f := func(seed int64, sx, sy uint8) bool {
		s := seed
		next := func() float64 {
			s = s*6364136223846793005 + 1442695040888963407
			return float64(uint64(s)>>11) / float64(1<<53)
		}
		// Random smooth-ish bowl with random centre and tilt.
		cx := float64(int(next()*20) + 1)
		cy := float64(int(next()*20) + 1)
		ax := next() + 0.5
		ay := next() + 0.5
		obj := func(x numeric.IntVector) (float64, error) {
			dx, dy := float64(x[0])-cx, float64(x[1])-cy
			return ax*dx*dx + ay*dy*dy + 0.3*dx*dy, nil
		}
		start := numeric.IntVector{int(sx%20) + 1, int(sy%20) + 1}
		fStart, _ := obj(start)
		res, err := Search(obj, start, Options{})
		if err != nil {
			return false
		}
		return res.BestValue <= fStart+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestExhaustive(t *testing.T) {
	res, err := Exhaustive(quadratic(3, 7), numeric.IntVector{1, 1}, numeric.IntVector{10, 10}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Best.Equal(numeric.IntVector{3, 7}) {
		t.Errorf("Best = %v", res.Best)
	}
	if res.Evaluations != 100 {
		t.Errorf("Evaluations = %d, want 100", res.Evaluations)
	}
}

func TestExhaustiveErrors(t *testing.T) {
	if _, err := Exhaustive(nil, numeric.IntVector{1}, numeric.IntVector{2}, 0); err == nil {
		t.Error("expected nil-objective error")
	}
	if _, err := Exhaustive(quadratic(1), numeric.IntVector{1}, numeric.IntVector{1, 2}, 0); err == nil {
		t.Error("expected dimension error")
	}
	if _, err := Exhaustive(quadratic(1), numeric.IntVector{3}, numeric.IntVector{1}, 0); err == nil {
		t.Error("expected empty-box error")
	}
	if _, err := Exhaustive(quadratic(1, 1), numeric.IntVector{1, 1}, numeric.IntVector{1000, 1000}, 100); err == nil {
		t.Error("expected size-cap error")
	}
	boom := errors.New("boom")
	objErr := func(x numeric.IntVector) (float64, error) { return 0, boom }
	if _, err := Exhaustive(objErr, numeric.IntVector{1}, numeric.IntVector{3}, 0); !errors.Is(err, boom) {
		t.Errorf("expected boom, got %v", err)
	}
}

// Pattern search matches exhaustive search on random separable bowls
// (convex integer problems are its home turf).
func TestSearchMatchesExhaustiveOnBowls(t *testing.T) {
	f := func(seed int64) bool {
		s := seed
		next := func() float64 {
			s = s*6364136223846793005 + 1442695040888963407
			return float64(uint64(s)>>11) / float64(1<<53)
		}
		cx := float64(int(next()*8) + 1)
		cy := float64(int(next()*8) + 1)
		obj := func(x numeric.IntVector) (float64, error) {
			dx, dy := float64(x[0])-cx, float64(x[1])-cy
			return dx*dx + 2*dy*dy, nil
		}
		ex, err := Exhaustive(obj, numeric.IntVector{1, 1}, numeric.IntVector{9, 9}, 0)
		if err != nil {
			return false
		}
		ps, err := Search(obj, numeric.IntVector{1, 1}, Options{Hi: numeric.IntVector{9, 9}})
		if err != nil {
			return false
		}
		return ps.BestValue <= ex.BestValue+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
