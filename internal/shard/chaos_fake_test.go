package shard

// Multi-host chaos: the fake transport runs workers as in-process
// goroutines over simulated hosts, so machine loss and network
// partitions — failure modes a process transport cannot fake — become
// deterministic test fixtures. Every scenario still ends in the same
// acceptance check: the merged result bit-identical to the
// single-process exhaustive run.

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/pattern"
	"repro/internal/shard/transport"
)

// fakeShardOptions builds coordinator options over an in-process fake
// fleet. Faults ride ExtraEnv exactly as they would over a real
// transport; chaos is the fake's own host-level injection.
func fakeShardOptions(t *testing.T, fleet []string, chaos, faults string) (Options, *transport.Fake) {
	t.Helper()
	fk, err := transport.NewFake(fleet, WorkerEnvMain, chaos)
	if err != nil {
		t.Fatalf("NewFake: %v", err)
	}
	opts := Options{
		Dir:          filepath.Join(t.TempDir(), "spool"),
		WorkerArgv:   []string{"in-process"},
		Transport:    fk,
		Procs:        2,
		Slabs:        3,
		Axis:         -1,
		MaxRetries:   5,
		LeaseTTL:     2 * time.Second,
		SlabDeadline: 400 * time.Millisecond,
		KillGrace:    150 * time.Millisecond,
		PollEvery:    10 * time.Millisecond,
		Logf:         t.Logf,
	}
	if faults != "" {
		opts.ExtraEnv = []string{EnvFault + "=" + faults}
	}
	return opts, fk
}

// TestFakeTransportMultiHostChaos loses one host for good mid-slab and
// partitions another behind a live worker, on a three-host fleet. The
// hang faults park each victim worker mid-slab so the injected failure
// deterministically lands while the slab is incomplete. The run must
// degrade across the surviving host and still merge bit-identically.
func TestFakeTransportMultiHostChaos(t *testing.T) {
	base := baseline(t)
	opts, _ := fakeShardOptions(t, []string{"sim0", "sim1", "sim2"},
		"hostdown:slab0,partition:slab1", "hang:slab0,hang:slab1")
	opts.MaxHostsLost = 2
	res, err := Run(testNetwork(), testCoreOptions(), opts)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	assertMatchesBaseline(t, res, base)
	// Both victim slabs needed a relaunch: the downed host's worker died
	// without an exit status, the partitioned one was superseded after
	// the kill could not reach it.
	if res.Retries < 2 {
		t.Errorf("retries = %d, want >= 2 (hostdown + partition)", res.Retries)
	}
	if res.Superseded < 1 {
		t.Errorf("superseded = %d, want >= 1 (unreachable worker behind the partition)", res.Superseded)
	}
	if len(res.Degraded) != 0 {
		t.Errorf("slabs lost despite healthy capacity: %+v", res.Degraded)
	}
}

// TestZombieSurvivesCoordinatorRestart is the PR's acceptance scenario:
// a zombie worker (ignores all fencing) behind a partition, PLUS a
// coordinator crash at the exact moment the zombie's slab is abandoned.
// The restarted coordinator adopts the spool, relaunches the slab under
// a higher epoch — which wakes the zombie into writing its stale-epoch
// result — and the merge must fence that write out: windows, power bits
// and the total evaluation count all match the uninterrupted run.
func TestZombieSurvivesCoordinatorRestart(t *testing.T) {
	base := baseline(t)
	opts, _ := fakeShardOptions(t, []string{"sim0", "sim1"},
		"partition:slab1", "zombie:slab1")
	opts.LeaseTTL = time.Second

	// Run 1: cancel the coordinator the moment it gives up on the
	// zombie's attempt — a crash mid-recovery, the worst instant.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opts.Context = ctx
	opts.OnEvent = func(ev Event) {
		if ev.Type == EventSuperseded && ev.Slab == 1 {
			cancel()
		}
	}
	if _, err := Run(testNetwork(), testCoreOptions(), opts); err == nil {
		t.Fatal("run 1 finished despite being cancelled at supersession")
	}

	// Run 2: a fresh coordinator and a fresh transport over the same
	// spool (chaos and fault markers are one-shot and survive there).
	// The zombie goroutine from run 1 is still alive, polling the lease
	// for the supersession that triggers its stale write.
	opts2, _ := fakeShardOptions(t, []string{"sim0", "sim1"},
		"partition:slab1", "zombie:slab1")
	opts2.Dir = opts.Dir
	opts2.LeaseTTL = time.Second
	res, err := Run(testNetwork(), testCoreOptions(), opts2)
	if err != nil {
		t.Fatalf("run 2: %v", err)
	}
	assertMatchesBaseline(t, res, base)
	if res.Recovered < 1 {
		t.Errorf("recovered = %d, want >= 1 (run 1's finished slabs)", res.Recovered)
	}
	if len(res.Degraded) != 0 {
		t.Errorf("slabs lost: %+v", res.Degraded)
	}
}

// TestPartitionedWorkerSelfFences drives the worker side of the fence
// over the real process transport: a worker whose lease file becomes
// unreachable (partition fault) must self-terminate with ExitFenced once
// it cannot re-prove ownership within the TTL — never write a result —
// and the relaunch must still merge bit-identically.
func TestPartitionedWorkerSelfFences(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	base := baseline(t)
	opts := testShardOptions(t, EnvFault+"=partition:slab0")
	opts.LeaseTTL = 300 * time.Millisecond
	res, err := Run(testNetwork(), testCoreOptions(), opts)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	assertMatchesBaseline(t, res, base)
	if res.Fenced < 1 {
		t.Errorf("fenced = %d, want >= 1 (partitioned worker must self-fence)", res.Fenced)
	}
	if res.Retries < 1 {
		t.Errorf("retries = %d, want >= 1 (fenced slab relaunched)", res.Retries)
	}
}

// TestCoordinatorAdoptsLiveLease restarts the partition-tolerance story
// from the coordinator side: a spool holding a LIVE lease for slab 0
// (its owner launched by a previous coordinator incarnation) must be
// adopted — watched for its result — never double-launched.
func TestCoordinatorAdoptsLiveLease(t *testing.T) {
	base := baseline(t)
	opts, fk := fakeShardOptions(t, []string{"sim0", "sim1"}, "", "")
	n, copts := testNetwork(), testCoreOptions()

	// Stage the spool a dead coordinator left behind: the manifest
	// (byte-identical to what plan() writes) and a live lease for slab 0
	// held by a worker this coordinator did not launch.
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		t.Fatal(err)
	}
	planOpts := opts
	m, err := buildManifest(n, copts, &planOpts)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')
	if err := pattern.WriteDurable(manifestPath(opts.Dir), data); err != nil {
		t.Fatal(err)
	}
	hash := Hash(data)
	lease, err := acquireLease(opts.Dir, 0, hash, 1, "previous-incarnation", 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	stopRenew := make(chan struct{})
	renewDone := make(chan struct{})
	go func() {
		defer close(renewDone)
		for {
			select {
			case <-stopRenew:
				return
			case <-time.After(100 * time.Millisecond):
				_ = renewLease(opts.Dir, lease)
			}
		}
	}()

	out := make(chan struct {
		res *Result
		err error
	}, 1)
	go func() {
		res, err := Run(n, copts, opts)
		out <- struct {
			res *Result
			err error
		}{res, err}
	}()

	// The coordinator must finish slabs 1 and 2 while slab 0 stays
	// adopted behind its live lease.
	waitForFiles(t, resultPath(opts.Dir, 1), resultPath(opts.Dir, 2))

	// Now the adopted owner completes its slab under a higher epoch (the
	// epoch its own relaunch would have been granted).
	close(stopRenew)
	<-renewDone
	code := WorkerEnvMain(context.Background(), []string{
		EnvDir + "=" + opts.Dir,
		EnvSlab + "=0",
		EnvEpoch + "=2",
		EnvLeaseTTL + "=5000",
	})
	if code != ExitOK {
		t.Fatalf("adopted worker exited %d", code)
	}

	r := <-out
	if r.err != nil {
		t.Fatalf("Run: %v", r.err)
	}
	assertMatchesBaseline(t, r.res, base)
	if r.res.Adopted != 1 {
		t.Errorf("adopted = %d, want 1", r.res.Adopted)
	}
	if got := fk.Launches("sim0") + fk.Launches("sim1"); got != 2 {
		t.Errorf("launched %d workers, want 2 (slab 0 must not be double-launched)", got)
	}
}

func waitForFiles(t *testing.T, paths ...string) {
	t.Helper()
	deadline := time.Now().Add(time.Minute)
	for _, p := range paths {
		for {
			if _, err := os.Stat(p); err == nil {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", p)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
}
