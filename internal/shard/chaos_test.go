package shard

// Chaos-path tests: each injects a fault through the SHARD_FAULT worker
// contract (or kills processes outright) and requires the run to end in
// a merged optimum bit-identical (Float64bits-equal power) to the
// unsharded core.Dimension run — crash recovery must never cost
// determinism.

import (
	"context"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/numeric"
	"repro/internal/pattern"
)

func TestChaosCrashMidSlab(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	base := baseline(t)
	// Slab 1's worker dies abruptly (exit without result) after its first
	// completed, fsynced stride; the relaunch must resume from the slab
	// checkpoint and finish.
	opts := testShardOptions(t, EnvFault+"=crash:slab1")
	res, err := Run(testNetwork(), testCoreOptions(), opts)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	assertMatchesBaseline(t, res, base)
	if res.Retries < 1 {
		t.Fatalf("crash was not retried: %+v", res)
	}
	// The resumed attempt must not have re-scanned the checkpointed
	// stride — evaluation totals already match the baseline exactly via
	// assertMatchesBaseline, which is only possible without rescans.
	data, err := os.ReadFile(ckptPath(opts.Dir, 1))
	if err != nil {
		t.Fatalf("slab 1 checkpoint: %v", err)
	}
	cp, err := ParseSlabCheckpoint(data)
	if err != nil {
		t.Fatalf("slab 1 checkpoint: %v", err)
	}
	if cp.Last == nil {
		t.Fatal("slab 1 checkpoint has no records")
	}
}

func TestChaosHungWorkerSIGKILLed(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	base := baseline(t)
	// Slab 2's worker stalls silently past the deadline mid-slab; the
	// coordinator must SIGKILL it, reassign the slab, and still merge a
	// bit-identical optimum. The deadline also bounds worker startup
	// (parse manifest, build the network, first stride), which the race
	// detector slows ~10×, so keep it generous enough that only the
	// injected hang — a 10-minute stall — trips it.
	opts := testShardOptions(t, EnvFault+"=hang:slab2")
	opts.SlabDeadline = 3 * time.Second
	res, err := Run(testNetwork(), testCoreOptions(), opts)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	assertMatchesBaseline(t, res, base)
	if res.Reassigned < 1 {
		t.Fatalf("hung worker was not reassigned: %+v", res)
	}
}

func TestChaosTornSlabResult(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	base := baseline(t)
	// Slab 0's worker exits 0 leaving a truncated result file: the
	// coordinator must quarantine it (rename aside, never trust it) and
	// re-run the slab, which resumes from the checkpoint.
	opts := testShardOptions(t, EnvFault+"=torn:slab0")
	res, err := Run(testNetwork(), testCoreOptions(), opts)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	assertMatchesBaseline(t, res, base)
	if res.Quarantined < 1 || res.Retries < 1 {
		t.Fatalf("torn result not quarantined and retried: %+v", res)
	}
	matches, err := filepath.Glob(resultPath(opts.Dir, 0) + ".quarantine-*")
	if err != nil || len(matches) == 0 {
		t.Fatalf("quarantined file not kept as evidence: %v %v", matches, err)
	}
}

func TestChaosSlabLostDegradesGracefully(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	// Slab 1 crashes on every attempt. Within the AllowLost quota the run
	// must degrade gracefully: record the slab and reason, and merge the
	// optimum of the SURVIVING slabs only.
	opts := testShardOptions(t, EnvFault+"=crash-always:slab1")
	opts.MaxRetries = 1
	opts.AllowLost = 1
	res, err := Run(testNetwork(), testCoreOptions(), opts)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Degraded) != 1 || res.Degraded[0].Slab != 1 {
		t.Fatalf("degradation not recorded: %+v", res.Degraded)
	}
	if !strings.Contains(res.Degraded[0].Reason, "attempts failed") {
		t.Fatalf("degradation reason empty: %q", res.Degraded[0].Reason)
	}

	// The merged optimum must equal the best over slabs 0 and 2 computed
	// in-process — graceful degradation is still deterministic.
	m, err := ParseManifest(mustRead(t, manifestPath(opts.Dir)))
	if err != nil {
		t.Fatal(err)
	}
	scanner, err := core.NewBoxScanner(testNetwork(), testCoreOptions())
	if err != nil {
		t.Fatal(err)
	}
	var best numeric.IntVector
	bestV := 0.0
	for _, k := range []int{0, 2} {
		lo, hi := m.slabBox(k)
		sres, err := scanner.Scan(lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		if sres.Best != nil && improves(sres.BestValue, sres.Best, bestV, best) {
			best, bestV = sres.Best, sres.BestValue
		}
	}
	if res.Windows.Key() != best.Key() {
		t.Fatalf("degraded merge %s, surviving-slab optimum %s", res.Windows.Key(), best.Key())
	}
	if math.Float64bits(res.BestValue) != math.Float64bits(bestV) {
		t.Fatalf("degraded merge value %v, surviving-slab optimum %v", res.BestValue, bestV)
	}
}

func TestChaosSlabLostBeyondQuotaFails(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	opts := testShardOptions(t, EnvFault+"=crash-always:slab1")
	opts.MaxRetries = 1
	opts.AllowLost = 0
	_, err := Run(testNetwork(), testCoreOptions(), opts)
	if err == nil || !strings.Contains(err.Error(), "degradation quota") {
		t.Fatalf("lost slab beyond quota: err = %v", err)
	}
}

func TestChaosLaunchFailureExhaustsRetries(t *testing.T) {
	opts := testShardOptions(t)
	opts.WorkerArgv = []string{"/nonexistent/worker/binary"}
	opts.MaxRetries = 1
	_, err := Run(testNetwork(), testCoreOptions(), opts)
	if err == nil || !strings.Contains(err.Error(), "degradation quota") {
		t.Fatalf("unlaunchable worker: err = %v", err)
	}
}

func TestChaosDrainAndResume(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	base := baseline(t)
	// First run is cancelled mid-search while slab 2's worker is wedged
	// in a hang: the drain must SIGTERM every live worker (the hung one
	// included — its signal context fires) and fail with the cause.
	opts := testShardOptions(t, EnvFault+"=hang:slab2")
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	opts.Context = ctx
	_, err := Run(testNetwork(), testCoreOptions(), opts)
	if err == nil || !strings.Contains(err.Error(), "drained") {
		t.Fatalf("cancelled run: err = %v", err)
	}

	// Re-running over the same spool resumes: completed slabs recover
	// from their results, the drained slab from its checkpoint (the hang
	// marker has fired, so it runs clean) — and the merge is still
	// bit-identical.
	opts.Context = nil
	res, err := Run(testNetwork(), testCoreOptions(), opts)
	if err != nil {
		t.Fatalf("resumed Run: %v", err)
	}
	assertMatchesBaseline(t, res, base)
}

// TestChaosProgressStream checks the NDJSON event stream stays parseable
// and consistent with the service event spine across a faulty run.
func TestChaosProgressStream(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	var buf strings.Builder
	opts := testShardOptions(t, EnvFault+"=crash:slab1")
	opts.Progress = &buf
	if _, err := Run(testNetwork(), testCoreOptions(), opts); err != nil {
		t.Fatalf("Run: %v", err)
	}
	seen := map[string]int{}
	seq := 0
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var e Event
		if err := jsonUnmarshalStrict(line, &e); err != nil {
			t.Fatalf("bad event line %q: %v", line, err)
		}
		if e.Seq != seq+1 {
			t.Fatalf("event seq %d after %d", e.Seq, seq)
		}
		seq = e.Seq
		if e.At.IsZero() {
			t.Fatalf("event without timestamp: %q", line)
		}
		seen[e.Type]++
	}
	for _, want := range []string{EventPlan, EventLaunched, EventRetry, EventDone, EventMerged} {
		if seen[want] == 0 {
			t.Fatalf("event stream missing %q: %v", want, seen)
		}
	}
}

func jsonUnmarshalStrict(line string, e *Event) error {
	dec := json.NewDecoder(strings.NewReader(line))
	dec.DisallowUnknownFields()
	return dec.Decode(e)
}

func mustRead(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestWriteDurableRoundTrip pins the durable-write contract the spool
// rests on (exported from internal/pattern for this package).
func TestWriteDurableRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x")
	if err := pattern.WriteDurable(path, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if string(mustRead(t, path)) != "hello" {
		t.Fatal("durable write lost bytes")
	}
	if err := pattern.WriteDurable(path, []byte("goodbye")); err != nil {
		t.Fatal(err)
	}
	if string(mustRead(t, path)) != "goodbye" {
		t.Fatal("durable overwrite lost bytes")
	}
}
