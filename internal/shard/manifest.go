// Package shard implements the fault-tolerant sharded exhaustive search:
// a coordinator slab-partitions the window box along one class axis,
// launches worker processes over a fsynced spool directory, and merges
// the per-slab optima into a result bit-identical to the single-process
// exhaustive run.
//
// Wire formats. Coordinator and workers communicate exclusively through
// durable files in the spool directory:
//
//   - manifest.json — the search definition (network spec, evaluator,
//     objective, box, axis, slab partition), written once with the
//     temp+fsync+rename+dirsync protocol. Its SHA-256 is the manifest
//     hash stamped into every other artifact, so a worker can never
//     apply a stale slab assignment to a different search.
//   - slab<k>.res — one slab's final optimum, written durably by the
//     worker that finished it. The coordinator validates it against the
//     manifest before merging; an unparsable or mismatched file is
//     quarantined (renamed aside) and the slab re-run.
//   - slab<k>.ckpt — the slab's delta checkpoint: a fsynced append-only
//     NDJSON file (header line + one cumulative record per completed
//     stride) in the discipline of internal/pattern's delta sidecar. A
//     relaunched worker resumes from the last intact record; a torn
//     final line (crash mid-append) loses at most one stride.
//   - slab<k>.hb — the worker's progress heartbeat (current stride).
//     Advisory, not fsynced: the coordinator reassigns a slab whose
//     heartbeat has not advanced within the slab deadline.
//
// Merge determinism. Within a slab the exhaustive scan resolves ties to
// the earliest lattice point, and the lattice order restricted to a
// sub-box is the global lexicographic order, so merging slab optima by
// (value, then lexicographically smallest window vector) reproduces the
// single-process tie-break exactly. Exhaustive scans never commit warm
// starts, so every candidate value is a pure function of the candidate —
// which makes the per-slab optima, and therefore the merged optimum,
// bit-identical across any partition.
package shard

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/netmodel"
	"repro/internal/numeric"
	"repro/internal/pattern"
)

// FormatVersion is the wire-format version of every spool artifact;
// parsers reject files written by a different (past or future) version
// rather than guessing at their semantics. Version 2 added lease
// fencing: slab<k>.lease files and the fencing epoch stamped into every
// checkpoint record and slab result.
const FormatVersion = 2

const (
	manifestKind = "shard-manifest"
	resultKind   = "shard-slab-result"
	ckptKind     = "shard-slab-checkpoint"
)

// Size caps for the durable artifacts; anything larger is rejected as
// corrupt before json sees it.
const (
	maxManifestBytes = 1 << 20
	maxResultBytes   = 1 << 16
	maxCkptBytes     = 1 << 24
)

// Spool file naming.
const manifestName = "manifest.json"

func manifestPath(dir string) string { return filepath.Join(dir, manifestName) }

// ManifestPath returns the manifest file of a spool directory. Its
// existence is the resumability signal: a spool holding a manifest has
// a planned (possibly partial) run that Run will resume rather than
// replan.
func ManifestPath(dir string) string { return manifestPath(dir) }
func resultPath(dir string, slab int) string {
	return filepath.Join(dir, fmt.Sprintf("slab%d.res", slab))
}
func ckptPath(dir string, slab int) string {
	return filepath.Join(dir, fmt.Sprintf("slab%d.ckpt", slab))
}
func hbPath(dir string, slab int) string {
	return filepath.Join(dir, fmt.Sprintf("slab%d.hb", slab))
}
func faultMarkerPath(dir string, slab int, kind string) string {
	return filepath.Join(dir, fmt.Sprintf("slab%d.fault-%s.fired", slab, kind))
}

// SlabRange is one slab's closed interval of values along the partition
// axis: windows with Lo[axis] <= w[axis] and From <= w[axis] <= To.
type SlabRange struct {
	From int `json:"from"`
	To   int `json:"to"`
}

// Manifest is the search definition shared by coordinator and workers.
// It captures everything a worker needs to evaluate candidates exactly
// as the single-process run would: the network spec and the
// reproducibility-safe evaluation options. Options that trade
// reproducibility (EvalTimeout) or are not serialised (BufferLimits, MVA
// tuning) are rejected by the coordinator instead of silently diverging.
type Manifest struct {
	Version int    `json:"version"`
	Kind    string `json:"kind"`
	// Network is the netmodel JSON spec of the network being dimensioned.
	Network json.RawMessage `json:"network"`
	// Evaluator and Objective are the CLI-canonical names (sigma,
	// schweitzer, linearizer, exact; power, min-class, sum-class).
	Evaluator   string `json:"evaluator"`
	Objective   string `json:"objective"`
	ExactEngine bool   `json:"exact_engine,omitempty"`
	NoFallback  bool   `json:"no_fallback,omitempty"`
	// Workers is the per-worker search parallelism (goroutines inside one
	// slab scan), not the process count.
	Workers int `json:"workers,omitempty"`
	// Lo and Hi are the closed global search box, one entry per class.
	Lo []int `json:"lo"`
	Hi []int `json:"hi"`
	// Axis is the class index the box is partitioned along.
	Axis int `json:"axis"`
	// Slabs partitions [Lo[Axis], Hi[Axis]] into contiguous, ascending,
	// non-overlapping ranges — exactly covering the interval, so the
	// union of slab boxes is the global box and no candidate is scanned
	// twice.
	Slabs []SlabRange `json:"slabs"`
}

// ParseManifest decodes and validates a manifest. Unknown fields, bad
// versions, malformed boxes and non-partitioning slab sets are all
// rejected: a worker must never run against a half-understood search
// definition.
func ParseManifest(data []byte) (*Manifest, error) {
	if len(data) > maxManifestBytes {
		return nil, fmt.Errorf("shard: manifest exceeds %d bytes", maxManifestBytes)
	}
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var m Manifest
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("shard: parsing manifest: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("shard: trailing data after manifest")
	}
	if m.Version != FormatVersion {
		return nil, fmt.Errorf("shard: manifest version %d, want %d", m.Version, FormatVersion)
	}
	if m.Kind != manifestKind {
		return nil, fmt.Errorf("shard: manifest kind %q, want %q", m.Kind, manifestKind)
	}
	if len(m.Network) == 0 || string(m.Network) == "null" {
		return nil, fmt.Errorf("shard: manifest has no network spec")
	}
	if _, err := parseEvaluator(m.Evaluator); err != nil {
		return nil, err
	}
	if _, err := parseObjective(m.Objective); err != nil {
		return nil, err
	}
	dim := len(m.Lo)
	if dim == 0 || len(m.Hi) != dim {
		return nil, fmt.Errorf("shard: manifest box has lo dim %d, hi dim %d", dim, len(m.Hi))
	}
	for i := range m.Lo {
		if m.Lo[i] < 0 || m.Hi[i] < m.Lo[i] {
			return nil, fmt.Errorf("shard: manifest box axis %d has invalid range [%d, %d]", i, m.Lo[i], m.Hi[i])
		}
	}
	if m.Axis < 0 || m.Axis >= dim {
		return nil, fmt.Errorf("shard: manifest axis %d out of range for dimension %d", m.Axis, dim)
	}
	if len(m.Slabs) == 0 {
		return nil, fmt.Errorf("shard: manifest has no slabs")
	}
	want := m.Lo[m.Axis]
	for k, s := range m.Slabs {
		if s.From != want || s.To < s.From {
			return nil, fmt.Errorf("shard: slab %d range [%d, %d] does not partition [%d, %d]",
				k, s.From, s.To, m.Lo[m.Axis], m.Hi[m.Axis])
		}
		want = s.To + 1
	}
	if want != m.Hi[m.Axis]+1 {
		return nil, fmt.Errorf("shard: slabs cover up to %d, want %d", want-1, m.Hi[m.Axis])
	}
	return &m, nil
}

// Hash is the manifest identity: the SHA-256 of the manifest file's
// exact bytes, stamped into slab checkpoints and results so no artifact
// of one search can ever be applied to another.
func Hash(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// network resolves the embedded spec.
func (m *Manifest) network() (*netmodel.Network, error) {
	n, err := netmodel.ParseSpec(m.Network)
	if err != nil {
		return nil, fmt.Errorf("shard: manifest network: %w", err)
	}
	return n, nil
}

// coreOptions reconstructs the evaluation options a worker runs with.
func (m *Manifest) coreOptions() (core.Options, error) {
	ev, err := parseEvaluator(m.Evaluator)
	if err != nil {
		return core.Options{}, err
	}
	obj, err := parseObjective(m.Objective)
	if err != nil {
		return core.Options{}, err
	}
	return core.Options{
		Evaluator:       ev,
		Objective:       obj,
		Search:          core.ExhaustiveSearch,
		Workers:         m.Workers,
		ExactEngine:     m.ExactEngine,
		DisableFallback: m.NoFallback,
	}, nil
}

// slabBox returns slab k's closed sub-box: the global box with the
// partition axis restricted to the slab's range.
func (m *Manifest) slabBox(k int) (lo, hi numeric.IntVector) {
	lo = append(numeric.IntVector(nil), m.Lo...)
	hi = append(numeric.IntVector(nil), m.Hi...)
	lo[m.Axis] = m.Slabs[k].From
	hi[m.Axis] = m.Slabs[k].To
	return lo, hi
}

func parseEvaluator(s string) (core.Evaluator, error) {
	switch s {
	case "sigma":
		return core.EvalSigmaMVA, nil
	case "schweitzer":
		return core.EvalSchweitzerMVA, nil
	case "linearizer":
		return core.EvalLinearizerMVA, nil
	case "exact":
		return core.EvalExactMVA, nil
	}
	return 0, fmt.Errorf("shard: unknown evaluator %q", s)
}

func evaluatorName(e core.Evaluator) (string, error) {
	switch e {
	case core.EvalSigmaMVA:
		return "sigma", nil
	case core.EvalSchweitzerMVA:
		return "schweitzer", nil
	case core.EvalLinearizerMVA:
		return "linearizer", nil
	case core.EvalExactMVA:
		return "exact", nil
	}
	return "", fmt.Errorf("shard: unserialisable evaluator %v", e)
}

func parseObjective(s string) (core.ObjectiveKind, error) {
	switch s {
	case "power":
		return core.ObjNetworkPower, nil
	case "min-class":
		return core.ObjMinClassPower, nil
	case "sum-class":
		return core.ObjSumClassPower, nil
	}
	return 0, fmt.Errorf("shard: unknown objective %q", s)
}

func objectiveName(o core.ObjectiveKind) (string, error) {
	switch o {
	case core.ObjNetworkPower:
		return "power", nil
	case core.ObjMinClassPower:
		return "min-class", nil
	case core.ObjSumClassPower:
		return "sum-class", nil
	}
	return "", fmt.Errorf("shard: unserialisable objective %v", o)
}

// SlabResult is one slab's final optimum, written durably by the worker
// that completed the scan and merged by the coordinator.
type SlabResult struct {
	Version      int    `json:"version"`
	Kind         string `json:"kind"`
	ManifestHash string `json:"manifest_hash"`
	Slab         int    `json:"slab"`
	// Epoch is the fencing epoch of the lease under which this result was
	// written. The coordinator refuses results whose epoch is not the
	// slab's current lease epoch — the fence that keeps a zombie worker's
	// output out of the merge.
	Epoch int `json:"epoch"`
	// Best is the slab's minimiser (nil when every candidate in the slab
	// is infeasible), BestValue its objective value.
	Best      []int             `json:"best,omitempty"`
	BestValue pattern.JSONFloat `json:"best_value"`
	// Evaluations and NonConverged total the slab's candidate
	// evaluations across every attempt that contributed a stride.
	Evaluations  int `json:"evaluations"`
	NonConverged int `json:"non_converged,omitempty"`
	// Strides is the number of completed stride scans (= the slab's axis
	// width when the scan ran to completion).
	Strides int `json:"strides"`
	// Resumed marks a result assembled by a worker that picked up a
	// previous attempt's checkpoint.
	Resumed bool `json:"resumed,omitempty"`
}

// ParseSlabResult decodes and validates one slab-result file on its own
// (manifest-independent checks only; ValidateFor ties it to a search).
// This is the hostile-input surface the coordinator parses after a
// worker crash, so it is strict: unknown fields, bad versions, malformed
// hashes and negative counters are all corrupt.
func ParseSlabResult(data []byte) (*SlabResult, error) {
	if len(data) > maxResultBytes {
		return nil, fmt.Errorf("shard: slab result exceeds %d bytes", maxResultBytes)
	}
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var r SlabResult
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("shard: parsing slab result: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("shard: trailing data after slab result")
	}
	if r.Version != FormatVersion {
		return nil, fmt.Errorf("shard: slab result version %d, want %d", r.Version, FormatVersion)
	}
	if r.Kind != resultKind {
		return nil, fmt.Errorf("shard: slab result kind %q, want %q", r.Kind, resultKind)
	}
	if !validHash(r.ManifestHash) {
		return nil, fmt.Errorf("shard: slab result manifest hash %q is not a sha256 hex digest", r.ManifestHash)
	}
	if r.Slab < 0 {
		return nil, fmt.Errorf("shard: negative slab index %d", r.Slab)
	}
	if r.Epoch < 1 {
		return nil, fmt.Errorf("shard: slab result epoch %d below 1", r.Epoch)
	}
	if r.Evaluations < 0 || r.NonConverged < 0 || r.Strides < 0 {
		return nil, fmt.Errorf("shard: negative counters in slab result")
	}
	for _, w := range r.Best {
		if w < 0 {
			return nil, fmt.Errorf("shard: negative window in slab result best %v", r.Best)
		}
	}
	return &r, nil
}

// ValidateFor ties a parsed slab result to a specific search: the
// manifest hash, slab index, window dimension and slab bounds must all
// agree, or the file belongs to some other (or corrupted) run.
func (r *SlabResult) ValidateFor(m *Manifest, hash string, slab int) error {
	if r.ManifestHash != hash {
		return fmt.Errorf("shard: slab result written for manifest %.12s…, this search is %.12s…", r.ManifestHash, hash)
	}
	if r.Slab != slab {
		return fmt.Errorf("shard: slab result names slab %d, expected %d", r.Slab, slab)
	}
	if r.Best != nil {
		if len(r.Best) != len(m.Lo) {
			return fmt.Errorf("shard: slab result best has %d windows for %d classes", len(r.Best), len(m.Lo))
		}
		lo, hi := m.slabBox(slab)
		for i, w := range r.Best {
			if w < lo[i] || w > hi[i] {
				return fmt.Errorf("shard: slab result best %v outside slab box [%v, %v]", r.Best, lo, hi)
			}
		}
	}
	width := m.Slabs[slab].To - m.Slabs[slab].From + 1
	if r.Strides != width {
		return fmt.Errorf("shard: slab result covers %d strides of %d", r.Strides, width)
	}
	return nil
}

// ckptHeader is the first line of a slab checkpoint file. Epoch is the
// fencing epoch of the attempt that (re)established the file; each
// relaunch rewrites the durable prefix with its own epoch.
type ckptHeader struct {
	Version      int    `json:"version"`
	Kind         string `json:"kind"`
	ManifestHash string `json:"manifest_hash"`
	Slab         int    `json:"slab"`
	Epoch        int    `json:"epoch"`
	Dim          int    `json:"dim"`
}

// ckptRecord is one appended line: the slab's cumulative state after one
// completed stride (a full scan of one axis value). Best uses the
// IntVector.Key form ("w1,w2,...") validated by pattern.ValidPointKey,
// like the pattern-search checkpoint cache keys. Each record repeats the
// writing epoch: a record appended by a fenced-out zombie (stale epoch
// onto a file a newer attempt rewrote is impossible — the rename
// orphaned its fd — but a zombie re-running openSlabCkpt is not) is
// detected and dropped like a torn tail.
type ckptRecord struct {
	Stride       int               `json:"stride"`
	Epoch        int               `json:"epoch"`
	Best         string            `json:"best,omitempty"`
	BestValue    pattern.JSONFloat `json:"best_value"`
	Evaluations  int               `json:"evaluations"`
	NonConverged int               `json:"non_converged,omitempty"`
}

// SlabCheckpoint is the replayable state of one slab: the header and the
// last intact cumulative record. A torn final line (crash mid-append) is
// dropped, losing at most one stride of progress.
type SlabCheckpoint struct {
	Header ckptHeader
	// Last is the newest intact record (nil when the file holds only a
	// header); Records counts the intact records kept.
	Last    *ckptRecord
	Records int
	// TornTail marks a final line that did not parse and was dropped.
	TornTail bool
}

// ParseSlabCheckpoint decodes a slab checkpoint file. The header must be
// intact (a checkpoint whose identity cannot be established is useless);
// record lines are consumed until the first torn one, which only a
// crash mid-append can produce, so everything after it is suspect.
func ParseSlabCheckpoint(data []byte) (*SlabCheckpoint, error) {
	if len(data) > maxCkptBytes {
		return nil, fmt.Errorf("shard: slab checkpoint exceeds %d bytes", maxCkptBytes)
	}
	lines := strings.Split(string(data), "\n")
	if len(lines) == 0 || strings.TrimSpace(lines[0]) == "" {
		return nil, fmt.Errorf("shard: slab checkpoint has no header")
	}
	cp := &SlabCheckpoint{}
	hdec := json.NewDecoder(strings.NewReader(lines[0]))
	hdec.DisallowUnknownFields()
	if err := hdec.Decode(&cp.Header); err != nil {
		return nil, fmt.Errorf("shard: slab checkpoint header: %w", err)
	}
	h := &cp.Header
	if h.Version != FormatVersion {
		return nil, fmt.Errorf("shard: slab checkpoint version %d, want %d", h.Version, FormatVersion)
	}
	if h.Kind != ckptKind {
		return nil, fmt.Errorf("shard: slab checkpoint kind %q, want %q", h.Kind, ckptKind)
	}
	if !validHash(h.ManifestHash) {
		return nil, fmt.Errorf("shard: slab checkpoint manifest hash %q is not a sha256 hex digest", h.ManifestHash)
	}
	if h.Slab < 0 || h.Dim <= 0 {
		return nil, fmt.Errorf("shard: slab checkpoint slab %d dim %d", h.Slab, h.Dim)
	}
	if h.Epoch < 1 {
		return nil, fmt.Errorf("shard: slab checkpoint epoch %d below 1", h.Epoch)
	}
	prev := -1 << 62
	for _, line := range lines[1:] {
		if strings.TrimSpace(line) == "" {
			continue
		}
		dec := json.NewDecoder(strings.NewReader(line))
		dec.DisallowUnknownFields()
		var rec ckptRecord
		if err := dec.Decode(&rec); err != nil || dec.More() {
			// Only the in-flight final line can be torn; stop here.
			cp.TornTail = true
			break
		}
		if rec.Epoch != h.Epoch {
			// A record from any epoch but the one that established this
			// file is a protocol violator's append (a zombie that skipped
			// the prefix rewrite). Drop it and everything after it, like a
			// torn tail: the prefix up to here is still trustworthy.
			cp.TornTail = true
			break
		}
		if rec.Stride <= prev {
			return nil, fmt.Errorf("shard: slab checkpoint stride %d does not advance past %d", rec.Stride, prev)
		}
		if rec.Best != "" && !pattern.ValidPointKey(rec.Best, h.Dim) {
			return nil, fmt.Errorf("shard: slab checkpoint best %q is not a %d-dimensional lattice point", rec.Best, h.Dim)
		}
		if rec.Evaluations < 0 || rec.NonConverged < 0 {
			return nil, fmt.Errorf("shard: negative counters in slab checkpoint record")
		}
		prev = rec.Stride
		r := rec
		cp.Last = &r
		cp.Records++
	}
	return cp, nil
}

// validHash reports whether s looks like a sha256 hex digest.
func validHash(s string) bool {
	if len(s) != sha256.Size*2 {
		return false
	}
	_, err := hex.DecodeString(s)
	return err == nil
}

// parsePointKey decodes an IntVector.Key form ("w1,w2,...") already
// vetted by pattern.ValidPointKey.
func parsePointKey(k string, dim int) (numeric.IntVector, error) {
	if !pattern.ValidPointKey(k, dim) {
		return nil, fmt.Errorf("shard: %q is not a %d-dimensional lattice point", k, dim)
	}
	parts := strings.Split(k, ",")
	v := make(numeric.IntVector, dim)
	for i, p := range parts {
		w, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("shard: point key %q: %w", k, err)
		}
		v[i] = w
	}
	return v, nil
}

// lexLess is the global lattice order restricted to points: strict
// lexicographic comparison, leftmost axis most significant — the order
// numeric.LatticeIndex ranks the box in.
func lexLess(a, b numeric.IntVector) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// improves implements the deterministic merge rule shared by the
// worker's cross-stride fold and the coordinator's cross-slab fold:
// candidate (v, p) beats incumbent (bestV, best) on a strictly smaller
// value, or an equal value at a lexicographically earlier point. Because
// within-slab scans already resolve ties to the earliest lattice point,
// folding slab optima with this rule reproduces the single-process
// tie-break bit-for-bit.
func improves(v float64, p numeric.IntVector, bestV float64, best numeric.IntVector) bool {
	if p == nil {
		return false
	}
	if best == nil {
		return true
	}
	if v != bestV {
		return v < bestV
	}
	return lexLess(p, best)
}
